package core

import (
	"fmt"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/update"
)

// execModify implements Algorithm 2 (Section 5.2): the MODIFY
// operation is decomposed into its DELETE, INSERT and WHERE parts;
// the WHERE pattern becomes a SELECT that is translated to SQL and
// evaluated on the relational data; for every result binding one
// DELETE DATA and one INSERT DATA operation are instantiated from the
// templates and translated with Algorithm 1. The whole MODIFY runs in
// one transaction.
//
// The Section 5.2 optimization drops a deletion when the insert
// template writes the same subject and property with a different
// object: the delete would set an attribute to NULL that the insert
// immediately overwrites.
func (m *Mediator) execModify(tx *rdb.Tx, op update.Modify) (*OpResult, error) {
	res := &OpResult{Operation: op.Kind()}

	// Steps 1-3: extract the parts; step 4: build the SELECT.
	q := &sparql.Query{Form: sparql.FormSelect, Star: true, Where: op.Where, Limit: -1, Offset: -1}

	// Step 5: translate the SELECT to SQL. BGP-only patterns go
	// through the paper's translateSelect; anything richer evaluates
	// over the virtual view (same relational data, no materialized
	// triples).
	var sols sparql.Solutions
	if st, err := m.TranslateSelect(tx, op.Where, nil); err == nil {
		res.SQL = append(res.SQL, st.SQL)
		sols, err = st.Run(tx)
		if err != nil {
			return res, err
		}
	} else {
		var eerr error
		sols, eerr = sparql.Eval(m.VirtualGraph(tx), q)
		if eerr != nil {
			return res, fmt.Errorf("core: MODIFY WHERE evaluation: %w", eerr)
		}
	}
	res.Bindings = len(sols)

	// Step 7: per binding, build and execute DELETE DATA and INSERT
	// DATA operations.
	err := m.applyModifyBindings(sols, op.Delete, op.Insert, res,
		func(kind string, triples []rdf.Triple) (*OpResult, error) {
			if kind == "DELETE DATA" {
				return m.execDeleteData(tx, update.DeleteData{Triples: triples})
			}
			return m.execInsertData(tx, update.InsertData{Triples: triples})
		})
	return res, err
}

// applyModifyBindings is Algorithm 2's per-binding loop: instantiate
// both templates for every WHERE solution, apply the Section 5.2
// redundant-delete decision, and execute the DELETE DATA / INSERT
// DATA pair, accumulating SQL and row counts into res. The uncompiled
// path (execModify) and the compiled ModifyPlan executor share this
// loop through the execOp callback, so their per-binding semantics
// cannot drift.
func (m *Mediator) applyModifyBindings(sols sparql.Solutions, del, ins []sparql.TriplePattern, res *OpResult,
	execOp func(kind string, triples []rdf.Triple) (*OpResult, error)) error {
	for _, b := range sols {
		deleteTriples := instantiateTemplate(del, b)
		insertTriples := instantiateTemplate(ins, b)
		if !m.opts.DisableModifyOptimization {
			deleteTriples = m.dropRedundantDeletes(deleteTriples, insertTriples)
		}
		for _, part := range []struct {
			kind    string
			triples []rdf.Triple
		}{{"DELETE DATA", deleteTriples}, {"INSERT DATA", insertTriples}} {
			if len(part.triples) == 0 {
				continue
			}
			r, err := execOp(part.kind, part.triples)
			if r != nil {
				res.SQL = append(res.SQL, r.SQL...)
				res.RowsAffected += r.RowsAffected
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// instantiateTemplate substitutes a binding into template patterns,
// skipping patterns with unbound variables (standard template
// semantics).
func instantiateTemplate(tmpl []sparql.TriplePattern, b sparql.Binding) []rdf.Triple {
	var out []rdf.Triple
	for _, tp := range tmpl {
		if t, ok := tp.Instantiate(b); ok {
			out = append(out, t)
		}
	}
	return out
}

// dropRedundantDeletes implements the Section 5.2 optimization:
// remove deletions whose triple differs from some insertion only in
// the object — the subsequent insert overwrites the attribute anyway,
// so the delete (an UPDATE ... = NULL) is redundant. The optimization
// only applies to single-valued attribute properties: link-table
// properties hold many objects per subject, so deleting one and
// inserting another are independent row operations.
func (m *Mediator) dropRedundantDeletes(deletes, inserts []rdf.Triple) []rdf.Triple {
	if len(deletes) == 0 || len(inserts) == 0 {
		return deletes
	}
	type sp struct{ s, p rdf.Term }
	overwritten := make(map[sp]bool, len(inserts))
	for _, ins := range inserts {
		if _, isLink := m.mapping.LinkTableForProperty(ins.P); isLink {
			continue
		}
		overwritten[sp{ins.S, ins.P}] = true
	}
	var kept []rdf.Triple
	for _, del := range deletes {
		if overwritten[sp{del.S, del.P}] && !containsTriple(inserts, del) {
			continue // differs only in object: redundant
		}
		kept = append(kept, del)
	}
	return kept
}

func containsTriple(ts []rdf.Triple, t rdf.Triple) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}
