package sqlexec

import (
	"errors"
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
)

// paperDDL is the Figure 1 schema expressed in SQL.
const paperDDL = `
CREATE TABLE team (
  id INTEGER PRIMARY KEY,
  name VARCHAR,
  code VARCHAR
);
CREATE TABLE publisher (
  id INTEGER PRIMARY KEY,
  name VARCHAR
);
CREATE TABLE pubtype (
  id INTEGER PRIMARY KEY,
  type VARCHAR
);
CREATE TABLE author (
  id INTEGER PRIMARY KEY,
  title VARCHAR,
  email VARCHAR,
  firstname VARCHAR,
  lastname VARCHAR NOT NULL,
  team INTEGER REFERENCES team
);
CREATE TABLE publication (
  id INTEGER PRIMARY KEY,
  title VARCHAR NOT NULL,
  year INTEGER NOT NULL,
  type INTEGER REFERENCES pubtype,
  publisher INTEGER REFERENCES publisher
);
CREATE TABLE publication_author (
  id INTEGER PRIMARY KEY AUTO_INCREMENT,
  publication INTEGER NOT NULL REFERENCES publication,
  author INTEGER NOT NULL REFERENCES author
);
`

func paperDB(t testing.TB) *rdb.Database {
	t.Helper()
	db := rdb.NewDatabase("publications")
	if _, err := Run(db, paperDDL); err != nil {
		t.Fatalf("DDL: %v", err)
	}
	return db
}

// seedListing16 loads the data of the paper's Listing 16 (sorted
// INSERT order).
const listing16 = `
INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');
INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');
INSERT INTO publisher (id, name) VALUES (3, 'Springer');
INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'Relational...', 2009, 4, 3);
INSERT INTO author (id, title, firstname, lastname, email, team)
  VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);
INSERT INTO publication_author (id, publication, author) VALUES (1, 12, 6);
`

func TestRunListing16(t *testing.T) {
	db := paperDB(t)
	results, err := Run(db, listing16)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.RowsAffected != 1 {
			t.Errorf("statement %d affected %d rows", i, r.RowsAffected)
		}
	}
	if db.TotalRows() != 6 {
		t.Errorf("total rows = %d", db.TotalRows())
	}
}

func TestRunUnsortedListing16Fails(t *testing.T) {
	// The same statements in the order of Listing 15's triples (the
	// publication before its pubtype/publisher) violate immediate FK
	// checking — the phenomenon Algorithm 1's sorting step exists for.
	db := paperDB(t)
	unsorted := `
INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'Relational...', 2009, 4, 3);
INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');
`
	_, err := Run(db, unsorted)
	var ce *rdb.ConstraintError
	if !errors.As(err, &ce) || ce.Kind != rdb.ViolationForeignKey {
		t.Fatalf("err = %v, want FK violation", err)
	}
}

func TestExecPaperListing18Update(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, listing16); err != nil {
		t.Fatal(err)
	}
	// The paper's Listing 18.
	res, err := Run(db, `UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch'`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RowsAffected != 1 {
		t.Errorf("affected = %d", res[0].RowsAffected)
	}
	rs, err := Query(db, `SELECT email FROM author WHERE id = 6`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || !rs.Rows[0][0].IsNull() {
		t.Errorf("email = %v", rs.Rows)
	}
	// Re-running the same UPDATE matches nothing (email is NULL now).
	res, _ = Run(db, `UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch'`)
	if res[0].RowsAffected != 0 {
		t.Errorf("second update affected %d", res[0].RowsAffected)
	}
}

func TestSelectJoinAcrossPaperSchema(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, listing16); err != nil {
		t.Fatal(err)
	}
	rs, err := Query(db, `
SELECT p.title, a.lastname, t.name
FROM publication p
JOIN publication_author pa ON pa.publication = p.id
JOIN author a ON pa.author = a.id
JOIN team t ON a.team = t.id
WHERE p.year = 2009`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	row := rs.Rows[0]
	if row[0] != rdb.String_("Relational...") || row[1] != rdb.String_("Hert") || row[2] != rdb.String_("Software Engineering") {
		t.Errorf("row = %v", row)
	}
}

func TestSelectOrderLimitDistinct(t *testing.T) {
	db := paperDB(t)
	Run(db, `
INSERT INTO team (id, name, code) VALUES (1, 'B', 'b'), (2, 'A', 'a'), (3, 'A', 'c'), (4, NULL, 'd');
`)
	rs, err := Query(db, `SELECT name FROM team ORDER BY name`)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs sort first.
	if !rs.Rows[0][0].IsNull() || rs.Rows[1][0] != rdb.String_("A") {
		t.Errorf("order = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT DISTINCT name FROM team WHERE name IS NOT NULL ORDER BY name DESC`)
	if len(rs.Rows) != 2 || rs.Rows[0][0] != rdb.String_("B") {
		t.Errorf("distinct desc = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team ORDER BY id LIMIT 2 OFFSET 1`)
	if len(rs.Rows) != 2 || rs.Rows[0][0] != rdb.Int(2) {
		t.Errorf("paged = %v", rs.Rows)
	}
}

func TestSelectCount(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	rs, err := Query(db, `SELECT COUNT(*) FROM author`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != rdb.Int(1) {
		t.Errorf("count = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT COUNT(*) AS n FROM team WHERE code LIKE 'SE%'`)
	if rs.Columns[0] != "n" || rs.Rows[0][0] != rdb.Int(1) {
		t.Errorf("aliased count = %v %v", rs.Columns, rs.Rows)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES (1, NULL, 'x'), (2, 'A', 'y')`)
	// name = NULL is never true.
	rs, _ := Query(db, `SELECT id FROM team WHERE name = NULL`)
	if len(rs.Rows) != 0 {
		t.Errorf("= NULL matched %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team WHERE name IS NULL`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.Int(1) {
		t.Errorf("IS NULL = %v", rs.Rows)
	}
	// NULL OR TRUE = TRUE; NULL AND TRUE = NULL (not true).
	rs, _ = Query(db, `SELECT id FROM team WHERE name = 'missing' OR code = 'x'`)
	if len(rs.Rows) != 1 {
		t.Errorf("OR with null operand = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team WHERE name = NULL AND code = 'x'`)
	if len(rs.Rows) != 0 {
		t.Errorf("AND with null = %v", rs.Rows)
	}
	// NOT NULL is NULL (not true).
	rs, _ = Query(db, `SELECT id FROM team WHERE NOT (name = NULL)`)
	if len(rs.Rows) != 0 {
		t.Errorf("NOT NULL = %v", rs.Rows)
	}
}

func TestUpdateExpressionsAndArithmetic(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	_, err := Run(db, `UPDATE publication SET year = year + 1 WHERE id = 12`)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := Query(db, `SELECT year FROM publication WHERE id = 12`)
	if rs.Rows[0][0] != rdb.Int(2010) {
		t.Errorf("year = %v", rs.Rows[0][0])
	}
	rs, _ = Query(db, `SELECT year * 2 - 10 AS x, year / 2 FROM publication`)
	if rs.Rows[0][0] != rdb.Int(4010) {
		t.Errorf("arith = %v", rs.Rows[0])
	}
	if rs.Rows[0][1] != rdb.Float(1005) {
		t.Errorf("div = %v", rs.Rows[0][1])
	}
	if rs.Columns[0] != "x" {
		t.Errorf("alias = %v", rs.Columns)
	}
}

func TestDeleteCascadeOrderMatters(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	// Deleting the author while publication_author references it fails.
	_, err := Run(db, `DELETE FROM author WHERE id = 6`)
	var ce *rdb.ConstraintError
	if !errors.As(err, &ce) || ce.Kind != rdb.ViolationRestrict {
		t.Fatalf("err = %v", err)
	}
	// Child-first order works.
	if _, err := Run(db, `DELETE FROM publication_author; DELETE FROM author WHERE id = 6`); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionAtomicityThroughRunTx(t *testing.T) {
	db := paperDB(t)
	tx := db.Begin()
	_, err := RunTx(tx, `
INSERT INTO team (id, name, code) VALUES (5, 'SE', 'S');
INSERT INTO author (id, lastname, team) VALUES (6, 'Hert', 99);
`)
	if err == nil {
		t.Fatal("expected FK violation")
	}
	tx.Rollback()
	if db.TotalRows() != 0 {
		t.Errorf("rows after rollback = %d", db.TotalRows())
	}
}

func TestRunTxRejectsDDL(t *testing.T) {
	db := paperDB(t)
	err := db.Update(func(tx *rdb.Tx) error {
		_, err := RunTx(tx, `CREATE TABLE x (id INTEGER PRIMARY KEY)`)
		return err
	})
	if err == nil {
		t.Fatal("DDL inside transaction must be rejected")
	}
}

func TestAmbiguousAndUnknownColumns(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	if _, err := Query(db, `SELECT id FROM author JOIN team ON author.team = team.id`); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column err = %v", err)
	}
	if _, err := Query(db, `SELECT bogus FROM author`); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := Query(db, `SELECT x.id FROM author`); err == nil {
		t.Error("unknown alias must fail")
	}
	if _, err := Query(db, `SELECT id FROM nope`); err == nil {
		t.Error("unknown table must fail")
	}
}

func TestSelectStarQualifiedColumns(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	rs, err := Query(db, `SELECT * FROM author a JOIN team t ON a.team = t.id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 9 { // 6 author + 3 team
		t.Fatalf("columns = %v", rs.Columns)
	}
	if rs.Columns[0] != "a.id" || rs.Columns[6] != "t.id" {
		t.Errorf("qualified star columns = %v", rs.Columns)
	}
	// Single table star keeps plain names.
	rs, _ = Query(db, `SELECT * FROM team`)
	if rs.Columns[0] != "id" {
		t.Errorf("single star = %v", rs.Columns)
	}
}

func TestResultSetFormat(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	rs, _ := Query(db, `SELECT id, lastname FROM author`)
	out := rs.Format()
	if !strings.Contains(out, "lastname") || !strings.Contains(out, "Hert") {
		t.Errorf("format:\n%s", out)
	}
}

func TestCountMixedWithColumnsFails(t *testing.T) {
	db := paperDB(t)
	if _, err := Query(db, `SELECT COUNT(*), id FROM team`); err == nil {
		t.Error("mixed COUNT must fail")
	}
}

func TestInsertColumnCountMismatch(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, `INSERT INTO team (id, name) VALUES (1)`); err == nil {
		t.Error("column/value count mismatch must fail")
	}
}

func TestRunStopsAtFirstError(t *testing.T) {
	db := paperDB(t)
	results, err := Run(db, `
INSERT INTO team (id, name, code) VALUES (1, 'A', 'a');
INSERT INTO team (id, name, code) VALUES (1, 'B', 'b');
INSERT INTO team (id, name, code) VALUES (2, 'C', 'c');
`)
	if err == nil {
		t.Fatal("expected PK violation")
	}
	if len(results) != 1 {
		t.Errorf("results before error = %d", len(results))
	}
	// Auto-commit: the first insert persisted, the third never ran.
	if n, _ := db.RowCount("team"); n != 1 {
		t.Errorf("rows = %d", n)
	}
}

func BenchmarkInsertSQLStatement(b *testing.B) {
	db := paperDB(b)
	Run(db, `INSERT INTO team (id, name, code) VALUES (5, 'SE', 'S')`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.Update(func(tx *rdb.Tx) error {
			_, err := ExecSQL(tx, `INSERT INTO author (id, title, firstname, lastname, email, team) `+
				`VALUES (`+itoa(i)+`, 'Mr', 'M', 'H', 'h@e', 5)`)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}

func BenchmarkSelectJoin(b *testing.B) {
	db := paperDB(b)
	tx := db.Begin()
	RunTx(tx, `INSERT INTO team (id, name, code) VALUES (1, 'SE', 'S')`)
	for i := 0; i < 1000; i++ {
		if _, err := RunTx(tx, `INSERT INTO author (id, lastname, team) VALUES (`+itoa(i)+`, 'L`+itoa(i%50)+`', 1)`); err != nil {
			b.Fatal(err)
		}
	}
	tx.Commit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(db, `SELECT a.id FROM author a JOIN team t ON a.team = t.id WHERE a.lastname = 'L7'`); err != nil {
			b.Fatal(err)
		}
	}
}
