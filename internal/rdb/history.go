package rdb

import (
	"fmt"
	"sync"
)

// Bounded snapshot history for AS OF reads.
//
// Every publish — on main or on a branch — already produces an
// immutable dbSnapshot; structural sharing in the persistent tries
// makes retaining one nearly free (a map of table-version pointers
// plus the O(log n) trie nodes the commit touched). The history is a
// ring of the most recent Options.HistoryDepth published snapshots,
// keyed by version (the global commit seq), so ViewAt can pin any
// retained version for a lock-free historical read. When the ring is
// full the oldest retained snapshot is evicted; an AS OF read of an
// evicted version fails with a VersionError that distinguishes
// "evicted" from "never published".
//
// The ring is rebuilt on recovery from whatever the checkpoint and the
// WAL replay re-publish: versions older than the newest checkpoint are
// not retained across a restart (their snapshots were never serialized
// row-by-row — only the refs a branch pins survive in the manifest).

// DefaultHistoryDepth is the retained-snapshot count when
// Options.HistoryDepth is zero.
const DefaultHistoryDepth = 64

// history is the bounded snapshot ring. A cap of 0 disables retention
// (only the live heads are readable).
type history struct {
	mu        sync.Mutex
	cap       int
	ring      []*dbSnapshot
	next      int
	snaps     map[uint64]*dbSnapshot
	evictions uint64
}

// init fixes the ring capacity from Options.HistoryDepth: zero means
// DefaultHistoryDepth, negative disables retention.
func (h *history) init(depth int) {
	switch {
	case depth == 0:
		h.cap = DefaultHistoryDepth
	case depth < 0:
		h.cap = 0
	default:
		h.cap = depth
	}
	if h.cap > 0 {
		h.snaps = make(map[uint64]*dbSnapshot, h.cap)
	}
}

// record retains a just-published snapshot, evicting the oldest
// retained one when the ring is full.
func (h *history) record(s *dbSnapshot) {
	if h.cap == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.ring) < h.cap {
		h.ring = append(h.ring, s)
	} else {
		delete(h.snaps, h.ring[h.next].version)
		h.evictions++
		h.ring[h.next] = s
	}
	h.snaps[s.version] = s
	h.next++
	if h.next >= h.cap {
		h.next = 0
	}
}

// reset empties the ring (recovery discards the interim snapshots the
// restore phase publishes and re-seeds with the restored heads).
func (h *history) reset() {
	if h.cap == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ring = h.ring[:0]
	h.next = 0
	h.evictions = 0
	h.snaps = make(map[uint64]*dbSnapshot, h.cap)
}

// lookup returns the retained snapshot published as the given version.
func (h *history) lookup(version uint64) (*dbSnapshot, bool) {
	if h.cap == 0 {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.snaps[version]
	return s, ok
}

// stats reports the ring's occupancy under its lock.
func (h *history) stats() (retained int, oldest, newest uint64, evictions uint64) {
	if h.cap == 0 {
		return 0, 0, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.ring {
		if oldest == 0 || s.version < oldest {
			oldest = s.version
		}
		if s.version > newest {
			newest = s.version
		}
	}
	return len(h.ring), oldest, newest, h.evictions
}

// VersionError reports an AS OF read of a version that is not
// retained: either it was evicted from the bounded history ring (or
// lost across a restart), or it was never published at all.
type VersionError struct {
	Version uint64
	// Evicted is true when the version was published at some point but
	// is no longer retained; false when it is beyond the current commit
	// sequence.
	Evicted bool
}

// Error implements error.
func (e *VersionError) Error() string {
	if e.Evicted {
		return fmt.Sprintf("rdb: snapshot version %d is no longer retained", e.Version)
	}
	return fmt.Sprintf("rdb: snapshot version %d has not been published", e.Version)
}

// HistoryStats is the operator-facing view of the commit DAG layer,
// surfaced through /healthz.
type HistoryStats struct {
	// Head and Seq identify the main head: Head is its snapshot
	// version, Seq the global commit sequence (they differ when branch
	// publishes consumed later numbers).
	Head uint64
	Seq  uint64
	// Depth is the configured retention bound, Retained the snapshots
	// currently held, Oldest/Newest their version range, Evictions the
	// count of snapshots dropped because the ring was full.
	Depth     int
	Retained  int
	Oldest    uint64
	Newest    uint64
	Evictions uint64
	// Branches is the live named-ref count.
	Branches int
}

// HistoryStats reports the snapshot-history and branch counters.
func (db *Database) HistoryStats() HistoryStats {
	retained, oldest, newest, evictions := db.hist.stats()
	db.refMu.RLock()
	branches := len(db.refs)
	db.refMu.RUnlock()
	return HistoryStats{
		Head:      db.snapshot().version,
		Seq:       db.seq.Load(),
		Depth:     db.hist.cap,
		Retained:  retained,
		Oldest:    oldest,
		Newest:    newest,
		Evictions: evictions,
		Branches:  branches,
	}
}
