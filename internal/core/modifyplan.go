package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/sqlgen"
	"ontoaccess/internal/update"
)

// This file extends the compiled-plan pipeline to MODIFY (Algorithm 2,
// Section 5.2). A ModifyPlan is the shape-level artifact of the whole
// operation: the WHERE basic graph pattern is translated once into a
// parameterized SELECT template, the DELETE/INSERT templates are
// normalized with their literals and IRI keys lifted into parameter
// slots, and the write set (every table the templates can touch) plus
// the read set (every table the SELECT scans) are derived up front so
// re-execution runs under rdb.BeginWriteRead per-table locks instead
// of the whole-database lock.
//
// Per binding, the instantiated DELETE DATA / INSERT DATA operations
// flow through the same compiled-data-plan machinery as standalone
// requests (planForShape / bindGroups / execBound): the first binding
// compiles the per-binding shape, every later binding — and every
// later execution of the MODIFY — re-executes it with direct storage
// operations, no SQL re-parse. The Section 5.2 redundant-delete
// decision runs on the instantiated triples through the same
// dropRedundantDeletes as the uncompiled path, so the two paths stay
// in lockstep statement for statement.
//
// The WHERE clause may carry comparison FILTERs: they lower into the
// parameterized SELECT template through the same filter machinery as
// compiled queries, with the literal constants lifted into parameter
// slots. Anything the compiler cannot prove equivalent — OPTIONAL and
// UNION patterns, non-comparison FILTER shapes, blank nodes, templates
// whose target tables cannot be determined from the shape — takes the
// uncompiled path. A compiled
// execution that discovers a shape assumption broken by its parameters
// (a URI identifying a different table, an operation reaching outside
// the declared lock set) aborts with errPlanStale and is transparently
// re-run uncompiled.

// selectTemplate is the compiled WHERE SELECT: the rendered spec with
// parameter marks, the deferred value sources, and the decode
// bindings. The SQL text is re-rendered per argument vector; its
// structure never changes.
type selectTemplate struct {
	spec sqlgen.SelectSpec
	srcs []valueSrc
	// checks lists the occurrence templates of each parameterized
	// constant subject; all occurrences must bind to the same URI, and
	// the bound URIs of distinct subject nodes must stay distinct —
	// also against constURIs, the unparameterized constant subjects.
	// (The translator merges equal subjects into one node, so a
	// collision changes the SELECT's structure.)
	checks    [][][]shapeSeg
	constURIs []string
	vars      []string
	bindings  []varBinding
}

// ModifyPlan is a compiled MODIFY operation, keyed on the request
// shape and re-executable with fresh parameter bindings. Like
// UpdatePlan it pins mapping and schema pointers captured at compile
// time; DDL on a mediated database is unsupported after construction.
type ModifyPlan struct {
	key   string
	slots int
	// writeTables is the exact write lock set: every table reachable
	// from the DELETE and INSERT templates. lockSig is the precomputed
	// scheduler routing key over both lock sets.
	writeTables []string
	lockSig     string
	// readTables are the tables the WHERE SELECT scans (shared locks,
	// on top of the write set's foreign-key closure).
	readTables []string
	// shardable marks write tables eligible for keyed (shard) write
	// locks. The touched primary keys — and their lock shards — are
	// known before execution for constant template subjects, and for
	// variable subjects whose WHERE pattern pins the primary key through
	// an equality condition (varKeys records that condition per
	// variable). Shardable tables written by at least one subject whose
	// key cannot be determined up front stay under whole-table locks
	// (unkeyed).
	shardable map[string]bool
	varKeys   map[string]varKeyCond
	unkeyed   map[string]bool
	sel       selectTemplate
	del, ins  []normPattern
}

// varKeyCond is the WHERE equality that pins a variable template
// subject's primary key: the subject's table and either a compile-time
// constant or a 1-based parameter mark into the plan's bind sources.
type varKeyCond struct {
	table string
	value rdb.Value
	param int
}

// Kind returns the operation kind the plan compiles.
func (p *ModifyPlan) Kind() string { return "MODIFY" }

// Key returns the normalized request shape the plan is cached under.
func (p *ModifyPlan) Key() string { return p.key }

// Slots returns the number of parameter slots.
func (p *ModifyPlan) Slots() int { return p.slots }

// Tables returns the declared write set.
func (p *ModifyPlan) Tables() []string {
	out := make([]string, len(p.writeTables))
	copy(out, p.writeTables)
	return out
}

// ReadTables returns the declared read set (the WHERE SELECT's
// tables).
func (p *ModifyPlan) ReadTables() []string {
	out := make([]string, len(p.readTables))
	copy(out, p.readTables)
	return out
}

// Explain renders the compiled shape with ?n parameter markers.
func (p *ModifyPlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "MODIFY plan: %d slot(s), writes %s, reads %s\n",
		p.slots, strings.Join(p.writeTables, ", "), strings.Join(p.readTables, ", "))
	fmt.Fprintf(&b, "  WHERE SELECT template over %s\n", p.sel.spec.From)
	for _, sec := range []struct {
		tag string
		nps []normPattern
	}{{"DELETE", p.del}, {"INSERT", p.ins}} {
		for _, np := range sec.nps {
			fmt.Fprintf(&b, "  %s %s %s %s\n", sec.tag,
				describePatTerm(np.s), describePatTerm(np.p), describePatTerm(np.o))
		}
	}
	return b.String()
}

func describePatTerm(t normPatTerm) string {
	if t.isVar {
		return "?" + t.v
	}
	if t.segs == nil {
		return t.term.Value
	}
	v := valueSrc{segs: t.segs}
	return v.describe()
}

// ---- compilation ---------------------------------------------------

// compileModifyPlan builds a ModifyPlan from a normalized MODIFY.
// Shapes the compiler cannot prove equivalent to the uncompiled path
// return errUnplannable.
func (m *Mediator) compileModifyPlan(key string, slots int, op update.Modify, nm *normModify) (*ModifyPlan, error) {
	if m.topoPos == nil {
		return nil, errUnplannable
	}
	p := &ModifyPlan{key: key, slots: slots, del: nm.del, ins: nm.ins}
	comp := &selectCompile{nm: nm.where, fconds: nm.fconds}
	var st *SelectTranslation
	var spec *sqlgen.SelectSpec
	err := m.db.View(func(tx *rdb.Tx) error {
		var terr error
		st, spec, terr = m.translateSelect(tx, op.Where, nil, comp)
		return terr
	})
	if err != nil {
		return nil, errUnplannable
	}
	p.sel = selectTemplate{
		spec: *spec, srcs: comp.srcs, checks: comp.checks, constURIs: comp.constURIs,
		vars: st.Vars, bindings: st.bindings,
	}
	reads := map[string]bool{spec.From: true}
	for _, j := range spec.Joins {
		reads[j.Table] = true
	}
	// The templates' target tables are a shape-level property: subject
	// variables are pinned to tables by the WHERE translation, constant
	// subjects identify their table through the mapping. Template
	// triples using a variable the WHERE never binds can never
	// instantiate and are excluded.
	varTM := make(map[string]*r3m.TableMap, len(p.sel.vars))
	boundVar := make(map[string]bool, len(p.sel.vars))
	for i, v := range p.sel.vars {
		boundVar[v] = true
		b := p.sel.bindings[i]
		switch {
		case b.kind == bindSubject:
			varTM[v] = b.tm
		case b.refTM != nil:
			varTM[v] = b.refTM
		}
	}
	writes := map[string]bool{}
	for _, sec := range [][]normPattern{nm.del, nm.ins} {
		for _, np := range sec {
			if patternNeverInstantiates(np, boundVar) {
				continue
			}
			if np.p.isVar || !np.p.term.IsIRI() {
				return nil, errUnplannable
			}
			var tm *r3m.TableMap
			switch {
			case np.s.isVar:
				tm = varTM[np.s.v] // nil for literal-valued variables
			case np.s.term.IsIRI():
				if t, _, err := m.mapping.IdentifyTable(np.s.term.Value); err == nil {
					tm = t
				}
			}
			if tm == nil {
				return nil, errUnplannable
			}
			writes[tm.Name] = true
			if lt, ok := m.mapping.LinkTableForProperty(np.p.term); ok {
				writes[lt.Name] = true
			}
		}
	}
	p.writeTables = sortedTableNames(writes)
	p.readTables = sortedTableNames(reads)
	p.lockSig = lockSignature(p.writeTables, p.readTables)
	for _, t := range p.writeTables {
		if m.db.ShardableTable(t) {
			if p.shardable == nil {
				p.shardable = make(map[string]bool, len(p.writeTables))
			}
			p.shardable[t] = true
		}
	}
	if len(p.shardable) > 0 {
		p.compileSubjectKeys(varTM)
	}
	return p, nil
}

// compileSubjectKeys resolves, per variable template subject, the
// WHERE condition that pins its primary key — the keyed-narrowing
// analysis for variable-subject MODIFYs. A variable subject projects
// its node's primary-key column, so an equality condition on that
// column (lowered from a pattern like `?e :id "7"`, parameterized or
// not) determines the row the templates touch before execution.
// Shardable tables written through at least one subject with no such
// condition are recorded in unkeyed and stay whole-table locked.
func (p *ModifyPlan) compileSubjectKeys(varTM map[string]*r3m.TableMap) {
	for _, sec := range [][]normPattern{p.del, p.ins} {
		for _, np := range sec {
			if !np.s.isVar {
				continue
			}
			v := np.s.v
			if _, done := p.varKeys[v]; done {
				continue
			}
			tm := varTM[v]
			if tm == nil || !p.shardable[tm.Name] {
				continue
			}
			vk, ok := p.pinnedSubjectKey(v, tm.Name)
			if !ok {
				if p.unkeyed == nil {
					p.unkeyed = make(map[string]bool)
				}
				p.unkeyed[tm.Name] = true
				continue
			}
			if p.varKeys == nil {
				p.varKeys = make(map[string]varKeyCond)
			}
			p.varKeys[v] = vk
		}
	}
}

// pinnedSubjectKey scans the compiled SELECT's conditions for a plain
// equality on the subject variable's primary-key column. Conditions
// promoted to JOIN ... ON never qualify (they carry OtherColumn), nor
// do null tests, disjunctions or arithmetic comparisons.
func (p *ModifyPlan) pinnedSubjectKey(v, table string) (varKeyCond, bool) {
	for i, name := range p.sel.vars {
		if name != v {
			continue
		}
		b := p.sel.bindings[i]
		if b.kind != bindSubject {
			return varKeyCond{}, false
		}
		col := b.alias + "." + b.col
		for _, w := range p.sel.spec.Where {
			if w.Column != col || w.Op != sqlgen.CmpEq ||
				w.OtherColumn != "" || w.IsNull || w.NotNull ||
				len(w.Or) > 0 || w.LeftExpr != nil {
				continue
			}
			return varKeyCond{table: table, value: w.Value, param: w.Param}, true
		}
		return varKeyCond{}, false
	}
	return varKeyCond{}, false
}

// patternNeverInstantiates reports whether a template triple uses a
// variable the WHERE pattern never binds; such triples are skipped by
// template instantiation in every solution.
func patternNeverInstantiates(np normPattern, bound map[string]bool) bool {
	for _, t := range []normPatTerm{np.s, np.p, np.o} {
		if t.isVar && !bound[t.v] {
			return true
		}
	}
	return false
}

func sortedTableNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---- binding -------------------------------------------------------

// boundModify is a ModifyPlan instantiated with one argument vector:
// the WHERE SELECT lowered straight to the executable AST (the SQL
// text is rendered for reporting only, never re-parsed) and the
// materialized templates. The per-solution work stays data-dependent
// and runs at execution time.
type boundModify struct {
	sql      string
	stmt     sqlparser.Statement
	del, ins []sparql.TriplePattern
	// shards is the keyed lock demand computed from the bound template
	// subjects; nil when the plan runs under whole-table locks.
	shards []rdb.TableShards
}

// bindSpec instantiates a compiled SELECT template, verifying the
// shape assumptions re-binding could break, and returns the spec with
// every parameter slot filled. Shared by MODIFY and query plans.
func (t *selectTemplate) bindSpec(m *Mediator, args []string) (sqlgen.SelectSpec, error) {
	seen := make(map[string]bool, len(t.checks)+len(t.constURIs))
	for _, uri := range t.constURIs {
		seen[uri] = true
	}
	for _, occs := range t.checks {
		uri := bindSegs(occs[0], args)
		for _, occ := range occs[1:] {
			if bindSegs(occ, args) != uri {
				return sqlgen.SelectSpec{}, errPlanStale
			}
		}
		// Subject nodes that were distinct at compile time must stay
		// distinct: the translator merges equal subjects into one node,
		// so colliding arguments change the SELECT's structure.
		if seen[uri] {
			return sqlgen.SelectSpec{}, errPlanStale
		}
		seen[uri] = true
	}
	where := make([]sqlgen.WhereSpec, len(t.spec.Where))
	copy(where, t.spec.Where)
	for i := range where {
		if where[i].Param > 0 {
			v, err := m.bindValue(&t.srcs[where[i].Param-1], "", args)
			if err != nil {
				return sqlgen.SelectSpec{}, err
			}
			where[i].Value = v
			where[i].Param = 0
		}
	}
	spec := t.spec
	spec.Where = where
	return spec, nil
}

// bind instantiates the plan, verifying the shape assumptions
// re-binding could break. Callers treat every error as "not plannable
// for these parameters" and fall back to the uncompiled path, which
// reproduces the paper's behaviour (including falling back to virtual
// RDF view evaluation when the WHERE does not translate for these
// values).
func (p *ModifyPlan) bind(m *Mediator, args []string) (*boundModify, error) {
	if len(args) != p.slots {
		return nil, errPlanStale
	}
	spec, err := p.sel.bindSpec(m, args)
	if err != nil {
		return nil, err
	}
	stmt, err := specSelect(&spec)
	if err != nil {
		return nil, err
	}
	return &boundModify{
		sql:    sqlgen.Select(spec),
		stmt:   stmt,
		del:    materializePatterns(p.del, args),
		ins:    materializePatterns(p.ins, args),
		shards: p.writeShards(m, args),
	}, nil
}

// writeShards computes the bound MODIFY's per-table lock demand from
// the instantiated template subjects: shardable write tables narrow
// to the shards their subjects' primary keys hash to, the rest stay
// whole-table. Constant subjects identify their key through the
// mapping; variable subjects use the primary-key equality their WHERE
// pattern pinned at compile time (varKeys). Any subject that fails to
// identify its key bails to nil (all whole-table) — always correct,
// never wrong. The WHERE SELECT and the per-binding data operations
// are checked dynamically by the transaction layer; an access outside
// the declared shards surfaces as a lock error and the operation
// re-runs uncompiled.
func (p *ModifyPlan) writeShards(m *Mediator, args []string) []rdb.TableShards {
	if len(p.shardable) == 0 {
		return nil
	}
	masks := make(map[string]rdb.ShardSet, len(p.shardable))
	for _, sec := range [][]normPattern{p.del, p.ins} {
		for _, np := range sec {
			if np.s.isVar {
				vk, ok := p.varKeys[np.s.v]
				if !ok {
					// Unpinned subject: its table is excluded below (or was
					// never shardable / never instantiates).
					continue
				}
				pk := vk.value
				if vk.param > 0 {
					v, err := m.bindValue(&p.sel.srcs[vk.param-1], "", args)
					if err != nil {
						return nil
					}
					pk = v
				}
				s, ok := m.db.ShardOfPK(vk.table, pk)
				if !ok {
					return nil
				}
				masks[vk.table] = masks[vk.table].With(s)
				continue
			}
			uri := np.s.term.Value
			if np.s.segs != nil {
				uri = bindSegs(np.s.segs, args)
			}
			tm, vals, err := m.mapping.IdentifyTable(uri)
			if err != nil {
				return nil
			}
			if !p.shardable[tm.Name] {
				continue
			}
			schema, ok := m.db.Schema(tm.Name)
			if !ok {
				return nil
			}
			pk, err := m.keyValueFromPattern(schema, vals, uri, "")
			if err != nil {
				return nil
			}
			s, ok := m.db.ShardOfPK(tm.Name, pk)
			if !ok {
				return nil
			}
			masks[tm.Name] = masks[tm.Name].With(s)
		}
	}
	for t := range p.unkeyed {
		delete(masks, t)
	}
	if len(masks) == 0 {
		return nil
	}
	out := make([]rdb.TableShards, len(p.writeTables))
	for i, t := range p.writeTables {
		out[i] = rdb.TableShards{Table: t, Shards: masks[t]}
	}
	return out
}

// materializePatterns rebuilds concrete template patterns from their
// normalized form and the argument vector.
func materializePatterns(nps []normPattern, args []string) []sparql.TriplePattern {
	if nps == nil {
		return nil
	}
	out := make([]sparql.TriplePattern, len(nps))
	for i, np := range nps {
		out[i] = sparql.TriplePattern{
			S: materializeTerm(np.s, args),
			P: materializeTerm(np.p, args),
			O: materializeTerm(np.o, args),
		}
	}
	return out
}

func materializeTerm(t normPatTerm, args []string) sparql.PatternTerm {
	if t.isVar {
		return sparql.VarTerm(t.v)
	}
	term := t.term
	if t.segs != nil {
		term.Value = bindSegs(t.segs, args)
	}
	return sparql.ConstTerm(term)
}

// ---- execution -----------------------------------------------------

// execBound runs the bound plan inside its per-table transaction,
// mirroring execModify step for step: evaluate the compiled SELECT,
// then per binding instantiate both templates, drop redundant deletes,
// and execute the DELETE DATA / INSERT DATA pair.
func (p *ModifyPlan) execBound(m *Mediator, tx *rdb.Tx, bm *boundModify) (*OpResult, error) {
	res := &OpResult{Operation: "MODIFY"}
	st := &SelectTranslation{SQL: bm.sql, Vars: p.sel.vars, bindings: p.sel.bindings, m: m}
	res.SQL = append(res.SQL, st.SQL)
	sols, err := st.runParsed(tx, bm.stmt)
	if err != nil {
		return res, err
	}
	res.Bindings = len(sols)
	cover := make(map[string]bool, len(p.writeTables))
	for _, t := range p.writeTables {
		cover[t] = true
	}
	err = m.applyModifyBindings(sols, bm.del, bm.ins, res,
		func(kind string, triples []rdf.Triple) (*OpResult, error) {
			return m.execCompiledDataOp(tx, kind, triples, cover)
		})
	return res, err
}

// execCompiledDataOp executes one per-binding data operation inside
// the MODIFY's transaction. Plannable shapes run through the compiled
// data-plan executor (shape-cached across bindings and executions);
// unplannable ones fall back to the full Algorithm 1 translation in
// the same transaction. Both produce byte-identical SQL and feedback.
// An operation whose tables are not covered by the plan's declared
// write set — a shape assumption broken by this argument vector —
// surfaces as errPlanStale, which aborts the compiled execution in
// favour of the uncompiled whole-database path.
func (m *Mediator) execCompiledDataOp(tx *rdb.Tx, kind string, triples []rdf.Triple, cover map[string]bool) (*OpResult, error) {
	res, err := m.execCompiledDataOpInner(tx, kind, triples, cover)
	if err != nil {
		var le *rdb.LockError
		if errors.As(err, &le) {
			return res, errPlanStale
		}
	}
	return res, err
}

func (m *Mediator) execCompiledDataOpInner(tx *rdb.Tx, kind string, triples []rdf.Triple, cover map[string]bool) (*OpResult, error) {
	if key, args, nts, ok := normalizeDataOp(kind, triples); ok {
		// Schema lookups resolve through the open transaction: the
		// database-level accessor would re-take the catalog lock this
		// goroutine already holds shared.
		if plan, ok := m.planForShape(kind, key, len(args), nts, txSchema(tx)); ok {
			for _, t := range plan.writeTables {
				if !cover[t] {
					return nil, errPlanStale
				}
			}
			bound, err := plan.bindGroups(m, args)
			switch {
			case err == nil:
				return plan.execBound(m, tx, bound)
			case errors.Is(err, errPlanStale):
				// Re-binding broke a shape assumption; the uncompiled
				// translation below is authoritative.
			default:
				return &OpResult{Operation: kind}, err
			}
		}
	}
	if kind == "INSERT DATA" {
		return m.execInsertData(tx, update.InsertData{Triples: triples})
	}
	return m.execDeleteData(tx, update.DeleteData{Triples: triples})
}

// ---- mediator integration ------------------------------------------

// modifyPlanForShape returns the cached or freshly compiled plan for a
// MODIFY shape, with negative caching for unplannable shapes.
func (m *Mediator) modifyPlanForShape(key string, slots int, op update.Modify, nm *normModify) (*ModifyPlan, bool) {
	if plan, hit := m.mplans.get(key); hit {
		return plan, plan != nil
	}
	plan, err := m.compileModifyPlan(key, slots, op, nm)
	if err != nil {
		m.mplans.put(key, nil)
		return nil, false
	}
	m.mplans.put(key, plan)
	return plan, true
}

// runPlannedModify executes a bound MODIFY plan under the plan's
// declared locks — through the group-commit scheduler when batching
// is on, in its own transaction otherwise. handled is false when
// execution went stale — the caller re-runs the operation uncompiled.
// (In a batch the stale operation has already been rolled back to its
// savepoint, so the fallback never double-applies.)
func (m *Mediator) runPlannedModify(plan *ModifyPlan, bm *boundModify) (*OpResult, error, bool) {
	res, err := m.runLocked(plan.lockSig, plan.writeTables, plan.readTables, bm.shards,
		func(tx *rdb.Tx) (*OpResult, error) {
			return plan.execBound(m, tx, bm)
		})
	if err != nil {
		var le *rdb.LockError
		if errors.Is(err, errPlanStale) || errors.As(err, &le) {
			if bm.shards != nil && errors.As(err, &le) && le.Keyed {
				m.keyedFallbacks.Add(1)
			}
			return nil, nil, false
		}
		return res, err, true
	}
	return res, nil, true
}

// tryPlannedModify attempts the compiled path for a MODIFY operation.
func (m *Mediator) tryPlannedModify(op update.Modify) (*OpResult, error, bool) {
	key, args, nm, ok := normalizeModify(op)
	if !ok {
		return nil, nil, false
	}
	plan, ok := m.modifyPlanForShape(key, len(args), op, nm)
	if !ok {
		return nil, nil, false
	}
	bm, err := plan.bind(m, args)
	if err != nil {
		return nil, nil, false
	}
	return m.runPlannedModify(plan, bm)
}

// ModifyPlanCacheStats reports the MODIFY plan cache's counters.
func (m *Mediator) ModifyPlanCacheStats() CacheStats {
	if m.mplans == nil {
		return CacheStats{}
	}
	return m.mplans.snapshot()
}

// ModifyPlanFor compiles (or fetches) the plan for the given MODIFY
// request without executing it — introspection for tests and tooling.
func (m *Mediator) ModifyPlanFor(src string) (*ModifyPlan, error) {
	req, err := update.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(req.Ops) != 1 {
		return nil, fmt.Errorf("core: ModifyPlanFor expects exactly one operation")
	}
	mo, ok := req.Ops[0].(update.Modify)
	if !ok {
		return nil, fmt.Errorf("core: ModifyPlanFor expects a MODIFY operation")
	}
	key, args, nm, ok := normalizeModify(mo)
	if !ok {
		return nil, errUnplannable
	}
	plan, ok := m.modifyPlanForShape(key, len(args), mo, nm)
	if !ok {
		return nil, errUnplannable
	}
	return plan, nil
}
