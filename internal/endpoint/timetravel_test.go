package endpoint

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"ontoaccess/internal/workload"
)

func getPath(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

const mboxQuery = `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`

// TestTimeTravelQueryAndExport drives ?asOf= on /sparql and /export:
// after a MODIFY, the head read shows the new state while an AS OF
// read of the pre-MODIFY version reproduces the old response exactly.
func TestTimeTravelQueryAndExport(t *testing.T) {
	s, m := newServer(t)
	if rec := post(t, s, "/update", "application/sparql-update", workload.Listing15); rec.Code != http.StatusOK {
		t.Fatalf("seed status = %d:\n%s", rec.Code, rec.Body)
	}
	v1 := m.DB().SnapshotVersion()
	q := url.QueryEscape(workload.Prologue + mboxQuery)
	before := getPath(t, s, "/sparql?query="+q)
	if !strings.Contains(before.Body.String(), "hert@ifi.uzh.ch") {
		t.Fatalf("head before modify:\n%s", before.Body)
	}

	if rec := post(t, s, "/update", "application/sparql-update", workload.Listing11); rec.Code != http.StatusOK {
		t.Fatalf("modify status = %d:\n%s", rec.Code, rec.Body)
	}
	if rec := getPath(t, s, "/sparql?query="+q); !strings.Contains(rec.Body.String(), "hert@example.com") {
		t.Errorf("head after modify:\n%s", rec.Body)
	}
	// The pinned historical read is byte-identical to the pre-MODIFY
	// response.
	asOf := getPath(t, s, fmt.Sprintf("/sparql?query=%s&asOf=%d", q, v1))
	if asOf.Code != http.StatusOK {
		t.Fatalf("asOf status = %d:\n%s", asOf.Code, asOf.Body)
	}
	if asOf.Body.String() != before.Body.String() {
		t.Errorf("asOf read differs from the original response:\n%s\nvs\n%s", asOf.Body, before.Body)
	}

	exp := getPath(t, s, fmt.Sprintf("/export?asOf=%d", v1))
	if !strings.Contains(exp.Body.String(), "hert@ifi.uzh.ch") {
		t.Errorf("asOf export:\n%s", exp.Body)
	}
	if rec := getPath(t, s, "/export"); !strings.Contains(rec.Body.String(), "hert@example.com") {
		t.Errorf("head export:\n%s", rec.Body)
	}

	// Target validation.
	if rec := getPath(t, s, "/sparql?query="+q+"&asOf=999999"); rec.Code != http.StatusNotFound {
		t.Errorf("unpublished version: status = %d:\n%s", rec.Code, rec.Body)
	}
	if rec := getPath(t, s, "/sparql?query="+q+"&asOf=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed version: status = %d", rec.Code)
	}
	if rec := getPath(t, s, fmt.Sprintf("/sparql?query=%s&asOf=%d&branch=dev", q, v1)); rec.Code != http.StatusBadRequest {
		t.Errorf("asOf+branch: status = %d", rec.Code)
	}
	if rec := getPath(t, s, "/export?branch=nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown branch export: status = %d", rec.Code)
	}
	if rec := post(t, s, "/update?asOf="+fmt.Sprint(v1), "application/sparql-update", workload.Listing11); rec.Code != http.StatusBadRequest {
		t.Errorf("write to asOf target: status = %d:\n%s", rec.Code, rec.Body)
	}
}

// TestBranchAdminSurface walks the /branches lifecycle: create, write
// through /update?branch=, read isolation between branch and main,
// diff, fast-forward merge, drop.
func TestBranchAdminSurface(t *testing.T) {
	s, _ := newServer(t)
	if rec := post(t, s, "/update", "application/sparql-update", workload.Listing15); rec.Code != http.StatusOK {
		t.Fatalf("seed status = %d:\n%s", rec.Code, rec.Body)
	}
	if rec := post(t, s, "/branches?action=create&name=dev", "text/plain", ""); rec.Code != http.StatusOK {
		t.Fatalf("create: status = %d:\n%s", rec.Code, rec.Body)
	}
	if rec := getPath(t, s, "/branches"); !strings.Contains(rec.Body.String(), "dev head=") ||
		!strings.Contains(rec.Body.String(), "main head=") {
		t.Errorf("branch list:\n%s", rec.Body)
	}

	// A write addressed at the branch is invisible on main.
	if rec := post(t, s, "/update?branch=dev", "application/sparql-update", workload.Listing11); rec.Code != http.StatusOK {
		t.Fatalf("branch write: status = %d:\n%s", rec.Code, rec.Body)
	}
	q := url.QueryEscape(workload.Prologue + mboxQuery)
	if rec := getPath(t, s, "/sparql?query="+q); !strings.Contains(rec.Body.String(), "hert@ifi.uzh.ch") {
		t.Errorf("main sees the branch write:\n%s", rec.Body)
	}
	if rec := getPath(t, s, "/sparql?query="+q+"&branch=dev"); !strings.Contains(rec.Body.String(), "hert@example.com") {
		t.Errorf("branch read misses its write:\n%s", rec.Body)
	}

	// The diff reports the changed author row.
	diff := getPath(t, s, "/branches?diff&from=main&to=dev")
	if diff.Code != http.StatusOK || !strings.Contains(diff.Body.String(), "table author: +0 -0 ~1") {
		t.Errorf("diff status %d:\n%s", diff.Code, diff.Body)
	}

	// Main did not move since the fork, so the merge fast-forwards and
	// main adopts the branch state.
	merge := post(t, s, "/branches?action=merge&from=dev&into=main", "text/plain", "")
	if merge.Code != http.StatusOK || !strings.Contains(merge.Body.String(), "fast-forward") {
		t.Fatalf("merge status %d:\n%s", merge.Code, merge.Body)
	}
	if rec := getPath(t, s, "/sparql?query="+q); !strings.Contains(rec.Body.String(), "hert@example.com") {
		t.Errorf("main after merge:\n%s", rec.Body)
	}

	if rec := post(t, s, "/branches?action=drop&name=dev", "text/plain", ""); rec.Code != http.StatusOK {
		t.Fatalf("drop: status = %d:\n%s", rec.Code, rec.Body)
	}
	if rec := getPath(t, s, "/sparql?query="+q+"&branch=dev"); rec.Code != http.StatusNotFound {
		t.Errorf("dropped branch read: status = %d", rec.Code)
	}
	if rec := post(t, s, "/branches?action=create&name=bad/name", "text/plain", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("invalid name: status = %d", rec.Code)
	}
	if rec := post(t, s, "/branches?action=nonsense", "text/plain", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown action: status = %d", rec.Code)
	}
	if rec := post(t, s, "/branches?action=merge&from=ghost&into=main", "text/plain", ""); rec.Code < 400 {
		t.Errorf("merge of unknown branch: status = %d", rec.Code)
	}
}

// TestHealthHistoryStats checks the commit-DAG block on /healthz.
func TestHealthHistoryStats(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	post(t, s, "/branches?action=create&name=dev", "text/plain", "")
	rec := getPath(t, s, "/healthz")
	body := rec.Body.String()
	for _, want := range []string{"history: seq ", "snapshots retained", "branches: 1 named refs"} {
		if !strings.Contains(body, want) {
			t.Errorf("health body lacks %q:\n%s", want, body)
		}
	}
}
