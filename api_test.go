package ontoaccess

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
	"ontoaccess/internal/update"
	"ontoaccess/internal/workload"
)

// TestPublicAPIQuickstart drives the facade exactly like the README
// quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	db, err := NewDatabase("demo", `
CREATE TABLE city (
  id INTEGER PRIMARY KEY,
  name VARCHAR NOT NULL,
  population INTEGER
);`)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := GenerateMapping(db, r3m.GenerateOptions{
		URIPrefix: "http://example.org/data/",
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(db, mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteString(`
PREFIX ont: <http://example.org/ontology#>
PREFIX d: <http://example.org/data/>
INSERT DATA { d:city1 ont:cityName "Zurich" ; ont:cityPopulation "421878" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SQL()) != 1 || !strings.HasPrefix(res.SQL()[0], "INSERT INTO city") {
		t.Errorf("SQL = %v", res.SQL())
	}
	qr, err := m.Query(`
PREFIX ont: <http://example.org/ontology#>
SELECT ?n WHERE { ?c ont:cityName ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Solutions) != 1 || qr.Solutions[0]["n"].Value != "Zurich" {
		t.Errorf("solutions = %v", qr.Solutions)
	}
	// Violations surface through the facade types.
	_, err = m.ExecuteString(`
PREFIX ont: <http://example.org/ontology#>
PREFIX d: <http://example.org/data/>
INSERT DATA { d:city2 ont:cityPopulation "1" . }`)
	var v *Violation
	if !errors.As(err, &v) || v.Column != "name" {
		t.Fatalf("err = %v, want *Violation on name", err)
	}
}

func TestLoadMappingFacade(t *testing.T) {
	mapping, err := LoadMapping(workload.MappingTTL)
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping.Tables) != 5 {
		t.Errorf("tables = %d", len(mapping.Tables))
	}
	if _, err := LoadMapping("not turtle"); err == nil {
		t.Error("bad mapping accepted")
	}
	if _, err := NewDatabase("x", "not sql"); err == nil {
		t.Error("bad DDL accepted")
	}
}

// TestRandomStreamBijectivity is the system-level property test:
// for arbitrary seeds, a generated update stream leaves the mediated
// RDF view and the native triple store in the same state.
func TestRandomStreamBijectivity(t *testing.T) {
	f := func(seed int64) bool {
		m, err := workload.NewMediator(Options{})
		if err != nil {
			return false
		}
		native := triplestore.New()
		g := workload.NewGenerator(seed)
		stream := append(g.SetupRequests(), g.Stream(40, 1)...)
		for _, src := range stream {
			if _, err := m.ExecuteString(src); err != nil {
				t.Logf("mediator rejected: %v", err)
				return false
			}
			req, err := update.Parse(src)
			if err != nil {
				return false
			}
			if _, err := update.Apply(native, req); err != nil {
				return false
			}
		}
		exported, err := m.Export()
		if err != nil {
			return false
		}
		nativeGraph := native.Graph()
		exported.Each(func(tr rdf.Triple) bool {
			if tr.P == rdf.IRI(rdf.RDFType) {
				nativeGraph.Add(tr)
			}
			return true
		})
		return exported.Equal(nativeGraph)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestEndpointThroughFacade wires the HTTP server from the facade.
func TestEndpointThroughFacade(t *testing.T) {
	m, err := workload.NewMediator(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if NewServer(m) == nil {
		t.Fatal("NewServer returned nil")
	}
}
