package core

import (
	"errors"
	"strings"
	"testing"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/rdf"
)

func wantViolation(t *testing.T, err error, constraint string, hintPart string) *feedback.Violation {
	t.Helper()
	if err == nil {
		t.Fatal("expected a violation, got success")
	}
	var v *feedback.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v (%T), want *feedback.Violation", err, err)
	}
	if v.Constraint != constraint {
		t.Fatalf("constraint = %q, want %q (err: %v)", v.Constraint, constraint, v)
	}
	if hintPart != "" && !strings.Contains(v.Hint, hintPart) {
		t.Errorf("hint %q does not mention %q", v.Hint, hintPart)
	}
	return v
}

// The paper's Section 3: "a certain amount of data is known about
// each entity (attributes declared as mandatory)" — inserting an
// author without a lastname must be rejected with rich feedback
// before reaching the database.
func TestInsertMissingMandatoryAttribute(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author9 foaf:firstName "Anon" . }`)
	v := wantViolation(t, err, "NotNull", "mandatory")
	if v.Table != "author" || v.Column != "lastname" {
		t.Errorf("violation at %s.%s, want author.lastname", v.Table, v.Column)
	}
	if v.Property != "http://xmlns.com/foaf/0.1/family_name" {
		t.Errorf("violation property = %q", v.Property)
	}
	if v.Subject != "http://example.org/db/author9" {
		t.Errorf("violation subject = %q", v.Subject)
	}
	// And it reached no data.
	if m.DB().TotalRows() != 0 {
		t.Error("rejected request must not change the database")
	}
}

// Section 3's other headline: a NOT NULL attribute cannot be removed
// without deleting the entity.
func TestDeleteMandatoryAttributeRejected(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, paperPrologue+`
INSERT DATA { ex:author8 foaf:family_name "Gall" ; foaf:firstName "Harald" . }`)
	_, err := m.ExecuteString(paperPrologue + `
DELETE DATA { ex:author8 foaf:family_name "Gall" . }`)
	v := wantViolation(t, err, "NotNull", "deleting the whole entity")
	if v.Column != "lastname" {
		t.Errorf("column = %q", v.Column)
	}
	// Deleting everything (family_name and firstName) is fine: a row
	// delete.
	res := mustExec(t, m, paperPrologue+`
DELETE DATA { ex:author8 foaf:family_name "Gall" ; foaf:firstName "Harald" . }`)
	if res.Ops[0].SQL[0] != "DELETE FROM author WHERE id = 8;" {
		t.Errorf("SQL = %v", res.Ops[0].SQL)
	}
}

func TestUnknownPropertyForClass(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:team1 foaf:firstName "nope" ; foaf:name "X" . }`)
	wantViolation(t, err, "Mapping", "no attribute mapped")
}

func TestUnmappedSubjectURI(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { <http://other.org/thing1> foaf:name "X" . }`)
	wantViolation(t, err, "Mapping", "URI pattern")
}

func TestBlankNodeSubjectRejected(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { _:b foaf:name "X" . }`)
	wantViolation(t, err, "Mapping", "blank nodes")
}

func TestWrongClassTypeTriple(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:team1 a foaf:Person ; foaf:name "X" . }`)
	wantViolation(t, err, "Mapping", "belong to class")
}

func TestForeignKeyObjectWrongClass(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	// ont:team must point at a team, not a publisher URI.
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author1 foaf:family_name "X" ; ont:team ex:publisher3 . }`)
	wantViolation(t, err, "Mapping", "URI pattern")
}

func TestForeignKeyObjectLiteralRejected(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author1 foaf:family_name "X" ; ont:team "5" . }`)
	wantViolation(t, err, "Mapping", "instance URI")
}

func TestDanglingForeignKeyCaughtByEngine(t *testing.T) {
	m := paperMediator(t, Options{})
	// team5 does not exist: the mapping-level checks pass, the engine
	// raises the FK violation, and it is enriched with the subject.
	_, err := m.ExecuteString(listing9)
	v := wantViolation(t, err, "ForeignKey", "referenced entity")
	if v.RefTable != "team" || v.Subject != "http://example.org/db/author6" {
		t.Errorf("violation = %+v", v)
	}
}

func TestTypeViolationLiteral(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:pub1 dc:title "T" ; ont:pubYear "not-a-year" . }`)
	v := wantViolation(t, err, "Type", "integer")
	if v.Column != "year" {
		t.Errorf("column = %q", v.Column)
	}
}

func TestConflictingValuesForOneAttribute(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:team1 foaf:name "A" , "B" . }`)
	wantViolation(t, err, "Mapping", "one value per attribute")
}

func TestDuplicateIdenticalTripleIsFine(t *testing.T) {
	m := paperMediator(t, Options{})
	if _, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:team1 foaf:name "A" , "A" . }`); err != nil {
		t.Fatalf("identical duplicate triple must be tolerated: %v", err)
	}
}

func TestDeleteNonExistentEntity(t *testing.T) {
	m := paperMediator(t, Options{})
	_, err := m.ExecuteString(paperPrologue + `
DELETE DATA { ex:team1 foaf:name "A" . }`)
	wantViolation(t, err, "Mapping", "does not exist")
}

func TestDeleteMismatchedValue(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	_, err := m.ExecuteString(paperPrologue + `
DELETE DATA { ex:team5 foaf:name "Wrong Name" . }`)
	wantViolation(t, err, "Mapping", "not present")
}

func TestDeleteTypeTripleRequiresFullCoverage(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	_, err := m.ExecuteString(paperPrologue + `
DELETE DATA { ex:team5 a foaf:Group . }`)
	wantViolation(t, err, "Mapping", "all its remaining data")
	// With all data covered, the type triple deletes the row.
	res := mustExec(t, m, paperPrologue+`
DELETE DATA { ex:team5 a foaf:Group ;
  foaf:name "Software Engineering" ; ont:teamCode "SEAL" . }`)
	if res.Ops[0].SQL[0] != "DELETE FROM team WHERE id = 5;" {
		t.Errorf("SQL = %v", res.Ops[0].SQL)
	}
}

func TestDeleteLinkTriple(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res := mustExec(t, m, paperPrologue+`
DELETE DATA { ex:pub12 dc:creator ex:author6 . }`)
	want := "DELETE FROM publication_author WHERE publication = 12 AND author = 6;"
	if len(res.Ops[0].SQL) != 1 || res.Ops[0].SQL[0] != want {
		t.Fatalf("SQL = %v", res.Ops[0].SQL)
	}
	// Deleting it again: violation (relationship not present).
	_, err := m.ExecuteString(paperPrologue + `
DELETE DATA { ex:pub12 dc:creator ex:author6 . }`)
	wantViolation(t, err, "Mapping", "not present")
}

func TestInsertLinkTripleIdempotent(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res := mustExec(t, m, paperPrologue+`
INSERT DATA { ex:pub12 dc:creator ex:author6 . }`)
	if len(res.Ops[0].SQL) != 0 {
		t.Errorf("duplicate link insert generated SQL: %v", res.Ops[0].SQL)
	}
	rs, _ := sqlexec.Query(m.DB(), `SELECT COUNT(*) FROM publication_author`)
	if rs.Rows[0][0] != rdb.Int(1) {
		t.Errorf("link rows = %v", rs.Rows[0][0])
	}
}

func TestLinkSubjectWrongClass(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	// dc:creator subjects must be publications.
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author6 dc:creator ex:author6 . }`)
	wantViolation(t, err, "Mapping", "instances of")
}

func TestValuePrefixViolation(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author1 foaf:family_name "X" ; foaf:mbox <http://not-a-mailto/x> . }`)
	wantViolation(t, err, "Mapping", "mailto:")
}

func TestMediatorRejectsMisalignedMapping(t *testing.T) {
	db := rdb.NewDatabase("d")
	if _, err := sqlexec.Run(db, `CREATE TABLE team (id INTEGER PRIMARY KEY, name VARCHAR)`); err != nil {
		t.Fatal(err)
	}
	mk := func(mutate func(m *r3m.Mapping)) error {
		m := &r3m.Mapping{
			URIPrefix: "http://e/",
			Tables: []*r3m.TableMap{{
				Name: "team", Class: rdf.IRI("http://o/Team"), URIPattern: "team%%id%%",
				Attributes: []*r3m.AttributeMap{
					{Name: "id", Constraints: []r3m.Constraint{{Kind: r3m.ConstraintPrimaryKey}}},
					{Name: "name", Property: rdf.IRI("http://o/name")},
				},
			}},
		}
		mutate(m)
		m.Reindex()
		_, err := New(db, m, Options{})
		return err
	}
	if err := mk(func(*r3m.Mapping) {}); err != nil {
		t.Fatalf("aligned mapping rejected: %v", err)
	}
	if err := mk(func(m *r3m.Mapping) { m.Tables[0].Name = "nope" }); err == nil {
		t.Error("missing table accepted")
	}
	if err := mk(func(m *r3m.Mapping) { m.Tables[0].Attributes[1].Name = "bogus" }); err == nil {
		t.Error("missing attribute accepted")
	}
	if err := mk(func(m *r3m.Mapping) {
		m.Tables[0].Attributes[1].Constraints = []r3m.Constraint{{Kind: r3m.ConstraintPrimaryKey}}
	}); err == nil {
		t.Error("phantom primary key accepted")
	}
	if err := mk(func(m *r3m.Mapping) {
		m.Tables[0].Attributes[1].IsObject = true
		m.Tables[0].Attributes[1].Constraints = []r3m.Constraint{{Kind: r3m.ConstraintForeignKey, References: "team"}}
	}); err == nil {
		t.Error("phantom foreign key accepted")
	}
}

func TestFailedOperationRollsBackAtomically(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	before := m.DB().TotalRows()
	// One request, one operation: valid team insert + invalid author
	// insert (missing lastname) — the whole operation must roll back.
	_, err := m.ExecuteString(paperPrologue + `
INSERT DATA {
  ex:team7 foaf:name "Valid Team" .
  ex:author9 foaf:firstName "Anon" .
}`)
	if err == nil {
		t.Fatal("expected violation")
	}
	if m.DB().TotalRows() != before {
		t.Errorf("rows changed from %d to %d despite rollback", before, m.DB().TotalRows())
	}
}

func TestRequestStopsAtFirstFailingOperation(t *testing.T) {
	m := paperMediator(t, Options{})
	res, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:team1 foaf:name "One" . }
INSERT DATA { ex:author9 foaf:firstName "Anon" . }
INSERT DATA { ex:team2 foaf:name "Two" . }`)
	if err == nil {
		t.Fatal("expected violation in second operation")
	}
	// First op committed, second rolled back, third never ran.
	if n, _ := m.DB().RowCount("team"); n != 1 {
		t.Errorf("team rows = %d, want 1", n)
	}
	if res.Report == nil || res.Report.OK {
		t.Error("failure report missing")
	}
	if len(res.Report.Violations) != 1 {
		t.Errorf("violations = %d", len(res.Report.Violations))
	}
}

func TestFeedbackReportContent(t *testing.T) {
	m := paperMediator(t, Options{})
	res, err := m.ExecuteString(paperPrologue + `
INSERT DATA { ex:author9 foaf:firstName "Anon" . }`)
	if err == nil {
		t.Fatal("expected violation")
	}
	rep := res.Report
	if rep.OK || rep.Operation != "INSERT DATA" {
		t.Errorf("report = %+v", rep)
	}
	ttl := rep.Turtle()
	for _, want := range []string{"fb:Failure", "fb:NotNullViolation", `"author"`, `"lastname"`, "fb:hint"} {
		if !strings.Contains(ttl, want) {
			t.Errorf("feedback Turtle missing %s:\n%s", want, ttl)
		}
	}
	// Success reports too.
	res = mustExec(t, m, seedTeam5)
	if !res.Report.OK || !strings.Contains(res.Report.Turtle(), "fb:Success") {
		t.Errorf("success report = %+v", res.Report)
	}
}

func TestClearOperation(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	if m.DB().TotalRows() == 0 {
		t.Fatal("seed failed")
	}
	mustExec(t, m, `CLEAR`)
	if m.DB().TotalRows() != 0 {
		t.Errorf("rows after CLEAR = %d", m.DB().TotalRows())
	}
}
