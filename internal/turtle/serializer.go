package turtle

import (
	"io"
	"sort"
	"strings"

	"ontoaccess/internal/rdf"
)

// Serialize renders a graph as a Turtle document using the given
// prefix map (nil means no prefixes). Output is deterministic:
// subjects sorted, rdf:type first among predicates, then predicates
// and objects sorted. Blank-node objects are emitted by label
// (_:label), not inlined, which keeps the serializer total on
// arbitrary graphs (cyclic blank structures included).
func Serialize(g *rdf.Graph, prefixes *rdf.PrefixMap) string {
	var b strings.Builder
	_ = Write(&b, g, prefixes) // strings.Builder never errors
	return b.String()
}

// Write streams the same Turtle document Serialize returns into w,
// one subject block at a time: transient memory is bounded by the
// largest block (plus the subject grouping index), not the rendered
// document. The HTTP endpoint uses it to serve CONSTRUCT and /export
// responses without buffering the payload.
func Write(w io.Writer, g *rdf.Graph, prefixes *rdf.PrefixMap) error {
	var b strings.Builder
	if prefixes != nil {
		for _, bind := range prefixes.Bindings() {
			b.WriteString("@prefix ")
			b.WriteString(bind[0])
			b.WriteString(": <")
			b.WriteString(bind[1])
			b.WriteString("> .\n")
		}
		if prefixes.Len() > 0 {
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}

	// Group triples by subject.
	bySubject := make(map[rdf.Term][]rdf.Triple)
	var subjects []rdf.Term
	for _, t := range g.Triples() {
		if _, seen := bySubject[t.S]; !seen {
			subjects = append(subjects, t.S)
		}
		bySubject[t.S] = append(bySubject[t.S], t)
	}
	sort.Slice(subjects, func(i, j int) bool { return rdf.CompareTerms(subjects[i], subjects[j]) < 0 })

	for si, subj := range subjects {
		b.Reset()
		if si > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(renderTerm(subj, prefixes))
		writeSubjectBlock(&b, bySubject[subj], prefixes)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSubjectBlock(b *strings.Builder, triples []rdf.Triple, prefixes *rdf.PrefixMap) {
	// Group by predicate, putting rdf:type first.
	byPred := make(map[rdf.Term][]rdf.Term)
	var preds []rdf.Term
	for _, t := range triples {
		if _, seen := byPred[t.P]; !seen {
			preds = append(preds, t.P)
		}
		byPred[t.P] = append(byPred[t.P], t.O)
	}
	typePred := rdf.IRI(rdf.RDFType)
	sort.Slice(preds, func(i, j int) bool {
		if preds[i] == typePred {
			return preds[j] != typePred
		}
		if preds[j] == typePred {
			return false
		}
		return rdf.CompareTerms(preds[i], preds[j]) < 0
	})

	for pi, pred := range preds {
		if pi == 0 {
			b.WriteByte(' ')
		} else {
			b.WriteString(" ;\n    ")
		}
		if pred == typePred {
			b.WriteString("a")
		} else {
			b.WriteString(renderTerm(pred, prefixes))
		}
		objs := byPred[pred]
		sort.Slice(objs, func(i, j int) bool { return rdf.CompareTerms(objs[i], objs[j]) < 0 })
		for oi, o := range objs {
			if oi == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(" ,\n        ")
			}
			b.WriteString(renderTerm(o, prefixes))
		}
	}
	b.WriteString(" .\n")
}

// renderTerm renders a term in Turtle syntax, compacting IRIs through
// the prefix map and using shorthand for integers and booleans.
func renderTerm(t rdf.Term, prefixes *rdf.PrefixMap) string {
	switch t.Kind {
	case rdf.KindIRI:
		if prefixes != nil {
			if pn, ok := prefixes.Compact(t.Value); ok {
				return pn
			}
		}
		return "<" + t.Value + ">"
	case rdf.KindBlank:
		return "_:" + t.Value
	case rdf.KindLiteral:
		switch {
		case t.Lang != "":
			return `"` + rdf.EscapeLiteral(t.Value) + `"@` + t.Lang
		case t.Datatype == rdf.XSDBoolean && (t.Value == "true" || t.Value == "false"):
			return t.Value
		case t.Datatype == rdf.XSDInteger && isCanonicalInteger(t.Value):
			return t.Value
		case t.Datatype == "" || t.Datatype == rdf.XSDString:
			return `"` + rdf.EscapeLiteral(t.Value) + `"`
		default:
			dt := "<" + t.Datatype + ">"
			if prefixes != nil {
				if pn, ok := prefixes.Compact(t.Datatype); ok {
					dt = pn
				}
			}
			return `"` + rdf.EscapeLiteral(t.Value) + `"^^` + dt
		}
	default:
		return "?!invalid"
	}
}

func isCanonicalInteger(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '-' || s[0] == '+' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	for ; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
