-- Figure 1: the relational schema of the paper's publication
-- database. Six tables: five entity tables plus the N:M link table
-- publication_author. Foreign keys are single-column and reference
-- the target table's primary key, matching the subset the embedded
-- engine supports.
CREATE TABLE team (
  id INTEGER PRIMARY KEY,
  name VARCHAR,
  code VARCHAR
);

CREATE TABLE publisher (
  id INTEGER PRIMARY KEY,
  name VARCHAR
);

CREATE TABLE pubtype (
  id INTEGER PRIMARY KEY,
  type VARCHAR
);

CREATE TABLE author (
  id INTEGER PRIMARY KEY,
  title VARCHAR,
  email VARCHAR,
  firstname VARCHAR,
  lastname VARCHAR NOT NULL,
  team INTEGER REFERENCES team
);

CREATE TABLE publication (
  id INTEGER PRIMARY KEY,
  title VARCHAR NOT NULL,
  year INTEGER NOT NULL,
  type INTEGER REFERENCES pubtype,
  publisher INTEGER REFERENCES publisher
);

CREATE TABLE publication_author (
  id INTEGER PRIMARY KEY AUTO_INCREMENT,
  publication INTEGER NOT NULL REFERENCES publication,
  author INTEGER NOT NULL REFERENCES author
);
