package sqlexec

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
)

// env is the row environment for expression evaluation: one entry per
// table in FROM/JOIN order.
type env struct {
	tables []envTable
}

type envTable struct {
	name   string // effective name (alias if given), lower-cased
	schema *rdb.TableSchema
	row    []rdb.Value
}

func singleEnv(name string, schema *rdb.TableSchema, row []rdb.Value) *env {
	return &env{tables: []envTable{{name: strings.ToLower(name), schema: schema, row: row}}}
}

// resolve finds the value of a column reference, enforcing uniqueness
// for unqualified names across joined tables.
func (e *env) resolve(ref sqlparser.ColRef) (rdb.Value, error) {
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for _, t := range e.tables {
			if t.name == want {
				ci := t.schema.ColumnIndex(ref.Column)
				if ci < 0 {
					return rdb.Null, &rdb.TableError{Table: ref.Table, Column: ref.Column}
				}
				return t.row[ci], nil
			}
		}
		return rdb.Null, fmt.Errorf("sqlexec: unknown table or alias %q", ref.Table)
	}
	found := -1
	var val rdb.Value
	for _, t := range e.tables {
		if ci := t.schema.ColumnIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return rdb.Null, fmt.Errorf("sqlexec: ambiguous column %q", ref.Column)
			}
			found = 1
			val = t.row[ci]
		}
	}
	if found < 0 {
		return rdb.Null, fmt.Errorf("sqlexec: unknown column %q", ref.Column)
	}
	return val, nil
}

// evalExpr evaluates an expression with SQL three-valued logic:
// comparisons involving NULL yield NULL, which WHERE treats as not
// true.
func evalExpr(e *env, expr sqlparser.Expr) (rdb.Value, error) {
	switch x := expr.(type) {
	case sqlparser.Lit:
		return x.Value, nil
	case sqlparser.ColRef:
		return e.resolve(x)
	case sqlparser.Neg:
		v, err := evalExpr(e, x.Inner)
		if err != nil || v.IsNull() {
			return rdb.Null, err
		}
		switch v.Kind {
		case rdb.KInt:
			return rdb.Int(-v.I), nil
		case rdb.KFloat:
			return rdb.Float(-v.F), nil
		}
		return rdb.Null, fmt.Errorf("sqlexec: cannot negate %s", v.Kind)
	case sqlparser.Not:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		if v.IsNull() {
			return rdb.Null, nil
		}
		if v.Kind != rdb.KBool {
			return rdb.Null, fmt.Errorf("sqlexec: NOT applied to %s", v.Kind)
		}
		return rdb.Bool(!v.B), nil
	case sqlparser.IsNull:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return rdb.Bool(res), nil
	case sqlparser.InList:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		if v.IsNull() {
			return rdb.Null, nil
		}
		found := false
		for _, item := range x.Values {
			if rdb.Equal(v, item) {
				found = true
				break
			}
		}
		if x.Negate {
			found = !found
		}
		return rdb.Bool(found), nil
	case sqlparser.Binary:
		return evalBinary(e, x)
	default:
		return rdb.Null, fmt.Errorf("sqlexec: unsupported expression %T", expr)
	}
}

func evalBinary(e *env, x sqlparser.Binary) (rdb.Value, error) {
	// AND/OR implement SQL three-valued logic with short-circuit
	// behaviour consistent with it.
	if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
		l, err := evalExpr(e, x.Left)
		if err != nil {
			return rdb.Null, err
		}
		r, err := evalExpr(e, x.Right)
		if err != nil {
			return rdb.Null, err
		}
		lb, lok := boolOf(l)
		rb, rok := boolOf(r)
		if x.Op == sqlparser.OpAnd {
			switch {
			case lok && !lb, rok && !rb:
				return rdb.Bool(false), nil
			case lok && rok:
				return rdb.Bool(true), nil
			default:
				return rdb.Null, nil
			}
		}
		switch {
		case lok && lb, rok && rb:
			return rdb.Bool(true), nil
		case lok && rok:
			return rdb.Bool(false), nil
		default:
			return rdb.Null, nil
		}
	}

	l, err := evalExpr(e, x.Left)
	if err != nil {
		return rdb.Null, err
	}
	r, err := evalExpr(e, x.Right)
	if err != nil {
		return rdb.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return rdb.Null, nil // NULL propagates through comparisons and arithmetic
	}
	switch x.Op {
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		c, err := rdb.Compare(l, r)
		if err != nil {
			return rdb.Null, err
		}
		var res bool
		switch x.Op {
		case sqlparser.OpEq:
			res = c == 0
		case sqlparser.OpNe:
			res = c != 0
		case sqlparser.OpLt:
			res = c < 0
		case sqlparser.OpLe:
			res = c <= 0
		case sqlparser.OpGt:
			res = c > 0
		case sqlparser.OpGe:
			res = c >= 0
		}
		return rdb.Bool(res), nil
	case sqlparser.OpLike:
		if l.Kind != rdb.KString || r.Kind != rdb.KString {
			return rdb.Null, fmt.Errorf("sqlexec: LIKE requires strings")
		}
		return rdb.Bool(sqlparser.LikeToMatcher(r.S)(l.S)), nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
		lf, err := l.AsFloat()
		if err != nil {
			return rdb.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return rdb.Null, err
		}
		var v float64
		switch x.Op {
		case sqlparser.OpAdd:
			v = lf + rf
		case sqlparser.OpSub:
			v = lf - rf
		case sqlparser.OpMul:
			v = lf * rf
		case sqlparser.OpDiv:
			if rf == 0 {
				return rdb.Null, fmt.Errorf("sqlexec: division by zero")
			}
			v = lf / rf
		}
		// Integer operands keep integer typing only when the float64
		// result converts back exactly — on overflow the conversion is
		// implementation-defined, and the SPARQL evaluator's identical
		// guard promotes to double there, so the engines stay aligned.
		if l.Kind == rdb.KInt && r.Kind == rdb.KInt && x.Op != sqlparser.OpDiv && v == float64(int64(v)) {
			return rdb.Int(int64(v)), nil
		}
		return rdb.Float(v), nil
	}
	return rdb.Null, fmt.Errorf("sqlexec: unsupported operator %d", x.Op)
}

func boolOf(v rdb.Value) (bool, bool) {
	if v.Kind == rdb.KBool {
		return v.B, true
	}
	return false, false
}

func isTrue(v rdb.Value) bool { return v.Kind == rdb.KBool && v.B }

// ---- streaming executor ---------------------------------------------
//
// execSelect plans and runs a SELECT as a streaming pipeline of scans
// and joins instead of materializing the full cross product:
//
//   - single-table WHERE conjuncts are pushed down to the scan that
//     produces their table's rows (an equality against an indexed
//     column turns the base scan into an index probe);
//   - equi-joins probe the joined table's primary-key or secondary
//     index per outer row, falling back to a one-time hash build when
//     the join column carries no index, and to a filtered nested loop
//     when the ON clause is not a typed equi-join;
//   - join order is planned greedily: among the joins whose ON
//     dependencies are satisfied, index-backed ones are placed first,
//     ties keeping textual order;
//   - with no ORDER BY, execution stops as soon as LIMIT/OFFSET is
//     satisfied — an ASK probe compiled as LIMIT 1 touches one row;
//   - ORDER BY + LIMIT keeps only the top offset+limit rows in a
//     bounded heap instead of materializing and sorting everything.
//
// While placement keeps textual order — always the case for
// translator-emitted SQL, whose joins are all index-backed and
// therefore tie — rows stream in exactly the order the nested-loop
// baseline produces (scans and index probes both visit ascending
// internal ids), so the compiled and uncompiled read paths return
// byte-identical result sets. A reorder (an indexed join overtaking a
// textually-earlier hash join, reachable only from hand-written SQL)
// changes the inter-row order but never the row multiset; it stays
// deterministic for a given statement. SelectNaive keeps the original
// executor as the comparison baseline.
//
// Error parity. The optimizations above reorder *evaluation*, and an
// expression evaluation can fail (cross-type comparison, LIKE on a
// non-string, division by zero, unknown column). The naive executor
// materializes every join, then evaluates the whole WHERE expression
// on every surviving row — so it surfaces the first error in (row,
// textual) order, and a conjunct that is false does not suppress an
// error in its neighbour. To return exactly the same errors (and the
// same first error), the planner statically classifies every
// expression as infallible — provably unable to raise an evaluation
// error for any row, given the column types — or fallible:
//
//   - a fallible or unresolvable ON conjunct delegates the whole
//     statement to SelectNaive (join-phase errors depend on the
//     naive executor's breadth-first join construction order);
//   - a fallible WHERE conjunct switches off predicate pushdown and
//     early LIMIT termination: placement stays textual and the
//     original WHERE expression is evaluated on each fully joined
//     row, in baseline row order — deferring every per-row predicate
//     error to exactly the point where the naive executor would
//     raise it;
//   - fallible projection items or ORDER BY keys switch off early
//     termination and the top-K heap respectively (the baseline
//     projects and sorts everything, surfacing errors past the
//     LIMIT cutoff).
//
// Translator-emitted SQL is infallible by construction (typed
// same-class comparisons only), so the compiled read path always runs
// the fully optimized pipeline.
//
// Cost-based join ordering. When every conjunct is statically
// resolved and infallible, all joins are inner and no aggregation is
// requested, the planner ignores textual order entirely: ON and
// WHERE conjuncts are pooled (interchangeable across inner joins)
// and tables — the FROM table included — are placed greedily by
// estimated cardinality, computed from the statistics the MVCC table
// versions maintain for free (row counts, per-index distinct counts;
// see internal/rdb stats.go). An index-backed equality estimates
// rows/distinct, a hash-joinable equality estimates the full row
// count, and a table with no join condition to the placed set pays a
// cartesian penalty. The solution-order contract survives
// reordering: each fully joined row is collected with its per-table
// internal row ids, the collection is sorted by the id tuple in
// textual table order — exactly the order the textual nested loop
// would have emitted, since every access path visits ascending ids —
// and then replayed through the normal emission logic (projection,
// DISTINCT, ORDER BY, LIMIT). A reordered plan therefore returns
// byte-identical rows in byte-identical order to textual placement,
// just faster. SelectTextual forces textual placement and is the
// measurement baseline (BenchmarkB16_JoinOrdering).
//
// LEFT OUTER JOIN runs in textual placement: per outer row, the
// candidate rows stream through the join's ON conditions; if none
// matches, the row is extended with an all-NULL tuple. WHERE
// conjuncts mentioning a left-joined table are never pushed into its
// scan, hash build or probe — they filter after the match-or-null
// extension, preserving SQL's ON-then-WHERE semantics.
//
// GROUP BY / COUNT / SUM / AVG / MIN / MAX aggregate in one
// streaming pass at the emit point (groups in first-appearance
// order), in both the pipeline and the naive baseline — the two
// share the aggregator, so results and errors agree by construction.

type accessKind int

const (
	accessScan accessKind = iota
	accessProbe
	accessHash
)

type colLoc struct{ ti, ci int }

// selStep is one table of the pipeline in placement order.
type selStep struct {
	ti     int // index into refs/schemas (original position)
	access accessKind
	// probe/hash: the joined table's column and the outer column
	// feeding the probe value.
	probeCol  int
	probeName string
	probeType rdb.ColType
	left      colLoc
	// base-table literal probe (already normalized to storage kind).
	lit *rdb.Value
	// impossible short-circuits the whole query (a typed equality that
	// can never hold, e.g. probing an INTEGER key with 5.5).
	impossible bool
	// leftOuter marks a LEFT OUTER JOIN step: outer rows with no
	// ON-matching candidate survive, NULL-extended.
	leftOuter bool
	// on holds a left step's non-probe ON conjuncts — they decide
	// matching, before the null extension; inner steps keep such
	// conjuncts in residual instead (equivalent for inner joins).
	on []sqlparser.Expr
	// preds are single-table conjuncts pushed down to this step;
	// residual are multi-table or unresolvable conjuncts assigned to
	// the earliest step where their tables are all placed. On a left
	// step, residual conjuncts run after the match-or-null extension
	// (WHERE semantics) and preds stay empty.
	preds    []sqlparser.Expr
	residual []sqlparser.Expr
}

type tableMeta struct {
	eff    string // effective name as written
	lower  string
	schema *rdb.TableSchema
}

type selPlan struct {
	st      sqlparser.Select
	refs    []sqlparser.TableRef
	schemas []*rdb.TableSchema
	metas   []tableMeta
	steps   []selStep
	// textual records that placement order equals textual order, so a
	// step's visible environment is a prefix of the full one (needed
	// when conjuncts could not be statically resolved).
	textual    bool
	countAlias string // COUNT(*) aggregation when non-empty
	// agg is the GROUP BY / aggregate plan (nil without aggregation).
	agg *aggPlan
	// reordered marks a cost-based placement that differs from textual
	// order: joined rows are collected with their internal row ids and
	// replayed in baseline order (see the package comment).
	reordered bool
	// naive delegates the whole statement to SelectNaive: an ON
	// conjunct is fallible, and join-phase errors depend on the naive
	// executor's breadth-first join order.
	naive bool
	// deferredWhere evaluates the original WHERE expression per fully
	// joined row (no pushdown, no early termination): a WHERE conjunct
	// is fallible, and its per-row errors must surface exactly where
	// the naive executor raises them.
	deferredWhere bool
	// projFallible / keysFallible disable early termination and the
	// top-K heap: the baseline projects and sorts every row, so errors
	// past the LIMIT cutoff must still surface.
	projFallible bool
	keysFallible bool
}

func execSelect(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	p, err := planSelect(tx, st)
	if err != nil {
		return nil, err
	}
	return p.run(tx)
}

// Select executes a SELECT with the full optimized pipeline,
// cost-based join ordering included — the exported twin of the
// executor's internal entry point, paired with SelectTextual for the
// join-ordering measurement.
func Select(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	return execSelect(tx, st)
}

// SelectTextual executes a SELECT with cost-based join ordering
// disabled: placement stays purely textual. It is the measurement
// baseline for the join-ordering benchmark
// (BenchmarkB16_JoinOrdering); results are byte-identical to
// execSelect by the ordering contract.
func SelectTextual(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	p, err := planSelectMode(tx, st, true)
	if err != nil {
		return nil, err
	}
	return p.run(tx)
}

// conjuncts flattens top-level ANDs: a row passes the conjunction iff
// every conjunct evaluates to true, which matches SQL's three-valued
// AND for filtering purposes.
func conjunctsOf(e sqlparser.Expr, out []sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(sqlparser.Binary); ok && b.Op == sqlparser.OpAnd {
		return conjunctsOf(b.Right, conjunctsOf(b.Left, out))
	}
	return append(out, e)
}

// qualifyExpr rewrites every column reference to its qualified form
// and reports the set of tables the expression reads. ok is false
// when a reference is ambiguous or unknown; such conjuncts keep their
// original form and are evaluated late, where evalExpr reproduces the
// exact resolution error.
func qualifyExpr(e sqlparser.Expr, metas []tableMeta) (sqlparser.Expr, uint64, bool) {
	switch x := e.(type) {
	case sqlparser.Lit:
		return x, 0, true
	case sqlparser.ColRef:
		if x.Table != "" {
			want := strings.ToLower(x.Table)
			for i := range metas {
				if metas[i].lower == want {
					if metas[i].schema.ColumnIndex(x.Column) < 0 {
						return x, 0, false
					}
					return x, 1 << uint(i), true
				}
			}
			return x, 0, false
		}
		found := -1
		for i := range metas {
			if metas[i].schema.ColumnIndex(x.Column) >= 0 {
				if found >= 0 {
					return x, 0, false
				}
				found = i
			}
		}
		if found < 0 {
			return x, 0, false
		}
		return sqlparser.ColRef{Table: metas[found].eff, Column: x.Column}, 1 << uint(found), true
	case sqlparser.Neg:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.Neg{Inner: in}, m, ok
	case sqlparser.Not:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.Not{Inner: in}, m, ok
	case sqlparser.IsNull:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.IsNull{Inner: in, Negate: x.Negate}, m, ok
	case sqlparser.InList:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.InList{Inner: in, Values: x.Values, Negate: x.Negate}, m, ok
	case sqlparser.Binary:
		l, lm, lok := qualifyExpr(x.Left, metas)
		r, rm, rok := qualifyExpr(x.Right, metas)
		return sqlparser.Binary{Op: x.Op, Left: l, Right: r}, lm | rm, lok && rok
	default:
		return e, 0, false
	}
}

// TypeClass exposes the executor's comparison-class grouping to the
// translation layer: the FILTER/ORDER BY compilation proofs are stated
// in terms of exactly these classes, so sharing the function keeps the
// compiler and the executor in lockstep by construction.
func TypeClass(t rdb.ColType) int { return typeClass(t) }

// typeClass groups column types by comparison semantics; equality
// across classes is a type error in evalExpr, so index and hash paths
// only engage within one class.
func typeClass(t rdb.ColType) int {
	switch t {
	case rdb.TInt, rdb.TFloat:
		return 1
	case rdb.TVarchar, rdb.TText:
		return 2
	case rdb.TBool:
		return 3
	}
	return 0
}

func litClass(v rdb.Value) int {
	switch v.Kind {
	case rdb.KInt, rdb.KFloat:
		return 1
	case rdb.KString:
		return 2
	case rdb.KBool:
		return 3
	}
	return 0
}

// probeKey normalizes a probe value to the joined column's storage
// representation with Compare-equivalent semantics. ok=false means
// the equality can never hold (no error: Compare would simply return
// non-zero for every row).
func probeKey(v rdb.Value, t rdb.ColType) (rdb.Value, bool) {
	if v.IsNull() {
		return rdb.Null, false
	}
	switch t {
	case rdb.TInt:
		switch v.Kind {
		case rdb.KInt:
			return v, true
		case rdb.KFloat:
			if v.F == float64(int64(v.F)) {
				return rdb.Int(int64(v.F)), true
			}
			return rdb.Null, false
		}
	case rdb.TFloat:
		if f, err := v.AsFloat(); err == nil {
			return rdb.Float(f), true
		}
	case rdb.TVarchar, rdb.TText:
		if v.Kind == rdb.KString {
			return v, true
		}
	case rdb.TBool:
		if v.Kind == rdb.KBool {
			return v, true
		}
	}
	return rdb.Null, false
}

// hashKey normalizes a value for hash-join bucketing within one type
// class (numerics compare as floats, mirroring rdb.Compare).
func hashKey(v rdb.Value, class int) (string, bool) {
	if v.IsNull() {
		return "", false
	}
	switch class {
	case 1:
		f, err := v.AsFloat()
		if err != nil {
			return "", false
		}
		if f == 0 {
			f = 0 // -0.0 buckets with 0.0, matching rdb.Compare
		}
		return strconv.FormatFloat(f, 'b', -1, 64), true
	case 2:
		if v.Kind != rdb.KString {
			return "", false
		}
		return v.S, true
	case 3:
		if v.Kind != rdb.KBool {
			return "", false
		}
		if v.B {
			return "t", true
		}
		return "f", true
	}
	return "", false
}

type conjunct struct {
	expr       sqlparser.Expr
	mask       uint64
	resolvable bool
	used       bool
}

// ---- static fallibility analysis ------------------------------------

// classNull marks an expression that always evaluates to NULL (a NULL
// literal, or arithmetic over one): NULL short-circuits comparisons,
// LIKE and arithmetic before any type check, so such operands never
// raise errors.
const classNull = -1

// colRefClass resolves a column reference to its comparison class,
// mirroring the evaluator's resolution rules (qualified lookup, or a
// unique unqualified match). ok is false for unknown or ambiguous
// references — which error at evaluation time.
func colRefClass(cr sqlparser.ColRef, metas []tableMeta) (int, bool) {
	if cr.Table != "" {
		want := strings.ToLower(cr.Table)
		for i := range metas {
			if metas[i].lower == want {
				ci := metas[i].schema.ColumnIndex(cr.Column)
				if ci < 0 {
					return 0, false
				}
				return typeClass(metas[i].schema.Columns[ci].Type), true
			}
		}
		return 0, false
	}
	found := -1
	for i := range metas {
		if metas[i].schema.ColumnIndex(cr.Column) >= 0 {
			if found >= 0 {
				return 0, false
			}
			found = i
		}
	}
	if found < 0 {
		return 0, false
	}
	ci := metas[found].schema.ColumnIndex(cr.Column)
	return typeClass(metas[found].schema.Columns[ci].Type), true
}

// analyzeExpr classifies an expression by its result class (classNull,
// 0 unknown, or a typeClass) and whether evaluating it can raise an
// error for *any* row, given the schemas. The analysis is
// conservative: fallible means "might error", infallible is a proof
// that evalExpr returns (value, nil) for every possible row, which is
// what licenses predicate pushdown and early termination without
// changing which errors the statement surfaces.
func analyzeExpr(e sqlparser.Expr, metas []tableMeta) (class int, fallible bool) {
	switch x := e.(type) {
	case sqlparser.Lit:
		if x.Value.IsNull() {
			return classNull, false
		}
		return litClass(x.Value), false
	case sqlparser.ColRef:
		c, ok := colRefClass(x, metas)
		if !ok {
			return 0, true
		}
		return c, false
	case sqlparser.Neg:
		c, f := analyzeExpr(x.Inner, metas)
		if c == classNull {
			return classNull, f
		}
		return 1, f || c != 1
	case sqlparser.Not:
		c, f := analyzeExpr(x.Inner, metas)
		if c == classNull {
			return classNull, f
		}
		return 3, f || c != 3
	case sqlparser.IsNull:
		_, f := analyzeExpr(x.Inner, metas)
		return 3, f
	case sqlparser.InList:
		// rdb.Equal never errors; mixed-kind list values are simply
		// unequal.
		_, f := analyzeExpr(x.Inner, metas)
		return 3, f
	case sqlparser.Binary:
		lc, lf := analyzeExpr(x.Left, metas)
		rc, rf := analyzeExpr(x.Right, metas)
		f := lf || rf
		switch x.Op {
		case sqlparser.OpAnd, sqlparser.OpOr:
			// Three-valued AND/OR never errors on non-boolean operands;
			// it yields NULL instead.
			return 3, f
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			ok := lc == classNull || rc == classNull || (lc > 0 && lc == rc)
			return 3, f || !ok
		case sqlparser.OpLike:
			ok := (lc == 2 || lc == classNull) && (rc == 2 || rc == classNull)
			return 3, f || !ok
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul:
			if lc == classNull || rc == classNull {
				return classNull, f
			}
			return 1, f || lc != 1 || rc != 1
		case sqlparser.OpDiv:
			if lc == classNull || rc == classNull {
				return classNull, f
			}
			// Division only proves infallible against a non-zero numeric
			// literal divisor; any column divisor may hold zero.
			nonZero := false
			if lit, ok := x.Right.(sqlparser.Lit); ok {
				if fv, err := lit.Value.AsFloat(); err == nil && fv != 0 {
					nonZero = true
				}
			}
			return 1, f || lc != 1 || rc != 1 || !nonZero
		}
	}
	return 0, true
}

// anyFallible reports whether any conjunct in the list is unresolvable
// or can raise a per-row evaluation error.
func anyFallible(cs []conjunct, metas []tableMeta) bool {
	for _, c := range cs {
		if !c.resolvable {
			return true
		}
		if _, f := analyzeExpr(c.expr, metas); f {
			return true
		}
	}
	return false
}

func planSelect(tx *rdb.Tx, st sqlparser.Select) (*selPlan, error) {
	return planSelectMode(tx, st, false)
}

func planSelectMode(tx *rdb.Tx, st sqlparser.Select, forceTextual bool) (*selPlan, error) {
	p := &selPlan{st: st}
	p.refs = []sqlparser.TableRef{st.From}
	for _, j := range st.Joins {
		p.refs = append(p.refs, j.Ref)
	}
	p.schemas = make([]*rdb.TableSchema, len(p.refs))
	p.metas = make([]tableMeta, len(p.refs))
	for i, r := range p.refs {
		s, err := tx.Schema(r.Table)
		if err != nil {
			return nil, err
		}
		p.schemas[i] = s
		p.metas[i] = tableMeta{eff: r.EffectiveName(), lower: strings.ToLower(r.EffectiveName()), schema: s}
	}
	if len(st.Items) == 1 && st.Items[0].Agg == sqlparser.AggCount && st.Items[0].Expr == nil &&
		len(st.GroupBy) == 0 && len(st.Having) == 0 {
		p.countAlias = st.Items[0].Alias // lone COUNT(*): counting fast path
	} else {
		ap, err := newAggPlan(st)
		if err != nil {
			return nil, err
		}
		p.agg = ap
	}

	// Classify WHERE conjuncts and each join's ON conjuncts.
	var wheres []conjunct
	if st.Where != nil {
		for _, e := range conjunctsOf(st.Where, nil) {
			q, m, ok := qualifyExpr(e, p.metas)
			if !ok {
				q = e // keep the original form for faithful errors
			}
			wheres = append(wheres, conjunct{expr: q, mask: m, resolvable: ok})
		}
	}
	ons := make([][]conjunct, len(st.Joins))
	for ji, j := range st.Joins {
		for _, e := range conjunctsOf(j.On, nil) {
			q, m, ok := qualifyExpr(e, p.metas)
			if !ok {
				q = e
			}
			ons[ji] = append(ons[ji], conjunct{expr: q, mask: m, resolvable: ok})
		}
	}

	// Error-parity modes (see the package comment): fallible ON
	// conjuncts delegate to the naive executor; fallible WHERE
	// conjuncts defer the whole WHERE to the emit point; fallible
	// projections or sort keys disable early termination / the top-K
	// heap.
	for ji := range ons {
		if anyFallible(ons[ji], p.metas) {
			p.naive = true
			return p, nil
		}
	}
	p.deferredWhere = anyFallible(wheres, p.metas)
	for _, item := range st.Items {
		if item.Star || item.Agg != sqlparser.AggNone {
			continue
		}
		if _, f := analyzeExpr(item.Expr, p.metas); f {
			p.projFallible = true
		}
	}
	for _, k := range st.OrderBy {
		if _, f := analyzeExpr(k.Expr, p.metas); f {
			p.keysFallible = true
		}
	}
	hasLeft := false
	for _, j := range st.Joins {
		if j.LeftOuter {
			hasLeft = true
		}
	}

	// Placement strategy. Cost-based ordering engages when every
	// conjunct is statically resolved and infallible (non-deferred
	// mode — fallible ONs already delegated to the naive executor),
	// all joins are inner, aggregation is off (streaming aggregation
	// consumes rows in baseline order), and no ON conjunct references
	// a textually later table (the baseline's prefix environment
	// errors on such forward references, so the plan must too).
	// Everything else runs in textual placement.
	costBased := !forceTextual && !p.deferredWhere && !hasLeft &&
		p.agg == nil && len(st.Joins) > 0
	if costBased {
	forward:
		for ji := range ons {
			later := ^uint64(0) << uint(ji+2)
			for _, c := range ons[ji] {
				if c.mask&later != 0 {
					costBased = false
					break forward
				}
			}
		}
	}
	if costBased {
		if err := p.planCostBased(tx, st, wheres, ons); err != nil {
			return nil, err
		}
	} else {
		p.planTextual(tx, st, wheres, ons)
	}
	return p, nil
}

// planTextual builds the step list in textual order: base scan
// first, joins as written. Left steps collect their non-probe ON
// conjuncts separately (they decide matching, not filtering).
func (p *selPlan) planTextual(tx *rdb.Tx, st sqlparser.Select, wheres []conjunct, ons [][]conjunct) {
	p.textual = true
	p.steps = make([]selStep, 0, len(p.refs))
	p.steps = append(p.steps, selStep{ti: 0})
	placed := uint64(1)
	for ji := range st.Joins {
		step := selStep{ti: ji + 1, leftOuter: st.Joins[ji].LeftOuter}
		if eqIdx, pc, ok := p.equiJoinFor(ji, ons[ji], placed); ok {
			step.probeCol = pc
			step.probeName = p.schemas[ji+1].Columns[pc].Name
			step.probeType = p.schemas[ji+1].Columns[pc].Type
			step.left = p.leftLocOf(ons[ji][eqIdx], ji+1)
			ons[ji][eqIdx].used = true
			if has, err := tx.HasIndex(p.refs[ji+1].Table, step.probeName); err == nil && has {
				step.access = accessProbe
			} else {
				step.access = accessHash
			}
		}
		for _, c := range ons[ji] {
			if !c.used {
				if step.leftOuter {
					step.on = append(step.on, c.expr)
				} else {
					step.residual = append(step.residual, c.expr)
				}
			}
		}
		placed |= uint64(1) << uint(ji+1)
		p.steps = append(p.steps, step)
	}
	p.assignConjunct(wheres)
	p.planBaseProbe(tx)
}

// planCostBased orders all tables — the FROM table included — by
// estimated cardinality from the statistics the MVCC versions
// maintain, pooling ON and WHERE conjuncts (interchangeable across
// inner joins). When the chosen order differs from textual the plan
// is marked reordered and execution re-sorts emission by internal
// row ids (see the package comment).
func (p *selPlan) planCostBased(tx *rdb.Tx, st sqlparser.Select, wheres []conjunct, ons [][]conjunct) error {
	pool := append([]conjunct{}, wheres...)
	for ji := range ons {
		pool = append(pool, ons[ji]...)
	}
	n := len(p.refs)
	rows := make([]float64, n)
	for i := range p.refs {
		r, err := tx.TableRows(p.refs[i].Table)
		if err != nil {
			return err
		}
		rows[i] = float64(r)
	}
	distinctOf := func(ti, ci int) (float64, bool) {
		d, indexed, err := tx.DistinctCount(p.refs[ti].Table, p.schemas[ti].Columns[ci].Name)
		if err != nil || !indexed || d <= 0 {
			return 0, false
		}
		return float64(d), true
	}
	// estimateFor is the expected per-outer-row yield of placing
	// table t next: an index-backed equality (join or literal)
	// estimates rows/distinct, a hash-joinable equality the full row
	// count, and no join condition at all a cartesian penalty.
	estimateFor := func(t int, placed uint64) float64 {
		est := rows[t]
		hasJoin := false
		for pi := range pool {
			c := &pool[pi]
			if c.used {
				continue
			}
			if tc, _, _, ok := p.equiSides(c, t, placed); ok {
				hasJoin = true
				e := rows[t]
				if d, okd := distinctOf(t, tc); okd {
					e = rows[t] / d
				}
				if e < est {
					est = e
				}
				continue
			}
			if tc, ok := p.litEqCol(c, t); ok {
				if d, okd := distinctOf(t, tc); okd {
					if e := rows[t] / d; e < est {
						est = e
					}
				}
			}
		}
		if placed != 0 && !hasJoin {
			est = rows[t] * 1e12 // cartesian product: avoid at all costs
		}
		return est
	}

	order := make([]int, 0, n)
	placed := uint64(0)
	for len(order) < n {
		best, bestEst := -1, 0.0
		for t := 0; t < n; t++ {
			if placed&(1<<uint(t)) != 0 {
				continue
			}
			if est := estimateFor(t, placed); best < 0 || est < bestEst {
				best, bestEst = t, est // ties keep textual order
			}
		}
		order = append(order, best)
		placed |= 1 << uint(best)
	}
	p.reordered = false
	for i, t := range order {
		if t != i {
			p.reordered = true
			break
		}
	}
	p.textual = !p.reordered

	// Build the steps in placement order, picking each table's access
	// path from the pool: an indexed typed equi-join probes, an
	// unindexed one hash-joins, anything else scans.
	p.steps = make([]selStep, 0, n)
	p.steps = append(p.steps, selStep{ti: order[0]})
	placed = uint64(1) << uint(order[0])
	for _, t := range order[1:] {
		step := selStep{ti: t}
		best, bestIndexed := -1, false
		var bestCol int
		var bestLeft colLoc
		for pi := range pool {
			c := &pool[pi]
			if c.used {
				continue
			}
			tc, ot, oc, ok := p.equiSides(c, t, placed)
			if !ok {
				continue
			}
			has, err := tx.HasIndex(p.refs[t].Table, p.schemas[t].Columns[tc].Name)
			indexed := err == nil && has
			if best < 0 || (indexed && !bestIndexed) {
				best, bestIndexed = pi, indexed
				bestCol, bestLeft = tc, colLoc{ti: ot, ci: oc}
			}
		}
		if best >= 0 {
			pool[best].used = true
			step.probeCol = bestCol
			step.probeName = p.schemas[t].Columns[bestCol].Name
			step.probeType = p.schemas[t].Columns[bestCol].Type
			step.left = bestLeft
			if bestIndexed {
				step.access = accessProbe
			} else {
				step.access = accessHash
			}
		}
		placed |= 1 << uint(t)
		p.steps = append(p.steps, step)
	}
	p.assignConjunct(pool)
	p.planBaseProbe(tx)
	return nil
}

// assignConjunct assigns each unused conjunct to the earliest step
// where its tables are all placed: single-table conjuncts become
// scan predicates (except on left steps, where pushdown would
// corrupt the match-or-null semantics), the rest residual filters.
// In deferred mode the WHERE is not split at all — the original
// expression evaluates per fully joined row at the emit point,
// reproducing the baseline's errors exactly.
func (p *selPlan) assignConjunct(cs []conjunct) {
	if p.deferredWhere {
		return
	}
	for _, c := range cs {
		if c.used {
			continue
		}
		si := len(p.steps) - 1
		placed := uint64(0)
		for i := range p.steps {
			placed |= uint64(1) << uint(p.steps[i].ti)
			if c.mask&^placed == 0 {
				si = i
				break
			}
		}
		if c.mask != 0 && c.mask == uint64(1)<<uint(p.steps[si].ti) && !p.steps[si].leftOuter {
			p.steps[si].preds = append(p.steps[si].preds, c.expr)
			continue
		}
		p.steps[si].residual = append(p.steps[si].residual, c.expr)
	}
}

// planBaseProbe turns a pushed-down "col = literal" on an indexed
// column of the base table into a point probe.
func (p *selPlan) planBaseProbe(tx *rdb.Tx) {
	base := &p.steps[0]
	ti := base.ti
	for _, e := range base.preds {
		b, ok := e.(sqlparser.Binary)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		var cr sqlparser.ColRef
		var lit sqlparser.Lit
		if c, cok := b.Left.(sqlparser.ColRef); cok {
			if l, lok := b.Right.(sqlparser.Lit); lok {
				cr, lit = c, l
			} else {
				continue
			}
		} else if c, cok := b.Right.(sqlparser.ColRef); cok {
			if l, lok := b.Left.(sqlparser.Lit); lok {
				cr, lit = c, l
			} else {
				continue
			}
		} else {
			continue
		}
		ci := p.schemas[ti].ColumnIndex(cr.Column)
		if ci < 0 {
			continue
		}
		col := &p.schemas[ti].Columns[ci]
		if litClass(lit.Value) == 0 || litClass(lit.Value) != typeClass(col.Type) {
			continue // cross-class equality errors row by row; keep it a filter
		}
		has, err := tx.HasIndex(p.refs[ti].Table, col.Name)
		if err != nil || !has {
			continue
		}
		key, ok := probeKey(lit.Value, col.Type)
		if !ok {
			base.impossible = true // e.g. 5.5 against an INTEGER key
			break
		}
		base.lit = &key
		base.probeName = col.Name
		break
	}
}

// equiSides decomposes a conjunct as a typed equi-join between
// table t and an already placed table: it returns t's column index
// and the placed side's location.
func (p *selPlan) equiSides(c *conjunct, t int, placed uint64) (tc, ot, oc int, ok bool) {
	if !c.resolvable {
		return 0, 0, 0, false
	}
	b, bok := c.expr.(sqlparser.Binary)
	if !bok || b.Op != sqlparser.OpEq {
		return 0, 0, 0, false
	}
	l, lok := b.Left.(sqlparser.ColRef)
	r, rok := b.Right.(sqlparser.ColRef)
	if !lok || !rok {
		return 0, 0, 0, false
	}
	lt, lc := p.locOf(l)
	rt, rc := p.locOf(r)
	if lt < 0 || rt < 0 || lc < 0 || rc < 0 {
		return 0, 0, 0, false
	}
	switch {
	case lt == t && rt != t && placed&(1<<uint(rt)) != 0:
		tc, ot, oc = lc, rt, rc
	case rt == t && lt != t && placed&(1<<uint(lt)) != 0:
		tc, ot, oc = rc, lt, lc
	default:
		return 0, 0, 0, false
	}
	if typeClass(p.schemas[t].Columns[tc].Type) == 0 ||
		typeClass(p.schemas[t].Columns[tc].Type) != typeClass(p.schemas[ot].Columns[oc].Type) {
		return 0, 0, 0, false
	}
	return tc, ot, oc, true
}

// litEqCol recognizes a conjunct of the form t.col = literal (either
// side) with matching comparison class, returning t's column index.
func (p *selPlan) litEqCol(c *conjunct, t int) (int, bool) {
	if !c.resolvable {
		return 0, false
	}
	b, bok := c.expr.(sqlparser.Binary)
	if !bok || b.Op != sqlparser.OpEq {
		return 0, false
	}
	var cr sqlparser.ColRef
	var lit sqlparser.Lit
	if cc, cok := b.Left.(sqlparser.ColRef); cok {
		if l, lok := b.Right.(sqlparser.Lit); lok {
			cr, lit = cc, l
		} else {
			return 0, false
		}
	} else if cc, cok := b.Right.(sqlparser.ColRef); cok {
		if l, lok := b.Left.(sqlparser.Lit); lok {
			cr, lit = cc, l
		} else {
			return 0, false
		}
	} else {
		return 0, false
	}
	ct, ci := p.locOf(cr)
	if ct != t || ci < 0 {
		return 0, false
	}
	if litClass(lit.Value) == 0 || litClass(lit.Value) != typeClass(p.schemas[t].Columns[ci].Type) {
		return 0, false
	}
	return ci, true
}

// equiJoinFor finds the first ON conjunct of join ji usable as a typed
// equi-join: newTable.col = placedTable.col with both columns in the
// same comparison class. It returns the conjunct index and the new
// table's column index.
func (p *selPlan) equiJoinFor(ji int, cs []conjunct, placed uint64) (int, int, bool) {
	self := ji + 1
	for i, c := range cs {
		if !c.resolvable {
			continue
		}
		b, ok := c.expr.(sqlparser.Binary)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		l, lok := b.Left.(sqlparser.ColRef)
		r, rok := b.Right.(sqlparser.ColRef)
		if !lok || !rok {
			continue
		}
		lt, lc := p.locOf(l)
		rt, rc := p.locOf(r)
		if lt < 0 || rt < 0 {
			continue
		}
		var selfCol, otherT, otherC int
		switch {
		case lt == self && rt != self && placed&(1<<uint(rt)) != 0:
			selfCol, otherT, otherC = lc, rt, rc
		case rt == self && lt != self && placed&(1<<uint(lt)) != 0:
			selfCol, otherT, otherC = rc, lt, lc
		default:
			continue
		}
		if typeClass(p.schemas[self].Columns[selfCol].Type) == 0 ||
			typeClass(p.schemas[self].Columns[selfCol].Type) != typeClass(p.schemas[otherT].Columns[otherC].Type) {
			continue
		}
		return i, selfCol, true
	}
	return -1, -1, false
}

func (p *selPlan) locOf(cr sqlparser.ColRef) (int, int) {
	want := strings.ToLower(cr.Table)
	for i := range p.metas {
		if p.metas[i].lower == want {
			return i, p.metas[i].schema.ColumnIndex(cr.Column)
		}
	}
	return -1, -1
}

// leftLocOf extracts the outer side of a used equi-join conjunct.
func (p *selPlan) leftLocOf(c conjunct, self int) colLoc {
	b := c.expr.(sqlparser.Binary)
	l := b.Left.(sqlparser.ColRef)
	r := b.Right.(sqlparser.ColRef)
	lt, lc := p.locOf(l)
	if lt == self {
		rt, rc := p.locOf(r)
		return colLoc{ti: rt, ci: rc}
	}
	return colLoc{ti: lt, ci: lc}
}

// idRow is one hash-bucket entry: the row and its internal id (the
// ordering token reordered plans sort emission by).
type idRow struct {
	id  int64
	row []rdb.Value
}

// collRow is one fully joined row collected under a reordered plan:
// per-table internal row ids in textual table order plus the row
// snapshots, replayed through emitRow after the id-tuple sort.
type collRow struct {
	ids  []int64
	rows [][]rdb.Value
}

// selExec is the runtime state of one execution.
type selExec struct {
	p    *selPlan
	tx   *rdb.Tx
	full *env // all tables in original order; rows filled as placed
	// stepEnvs[i] is the environment visible at step i: a prefix of
	// full in textual mode, full otherwise (safe because every
	// early-evaluated conjunct is statically qualified).
	stepEnvs []*env
	hashes   []map[string][]idRow // per step, built lazily
	// ids[ti] is the internal id of the row currently bound for table
	// ti; nullRows[ti] is the all-NULL tuple a left join extends with.
	ids      []int64
	nullRows [][]rdb.Value
	// collect buffers joined rows instead of emitting (reordered
	// plans): emission happens in replayed baseline order afterwards.
	collect   bool
	collected []collRow

	project func(*env) ([]rdb.Value, error)
	cols    []string

	// streaming collection
	rows    [][]rdb.Value
	seen    map[string]bool // DISTINCT
	target  int             // stop after this many rows (offset+limit); -1 = unbounded
	count   int             // COUNT(*) mode
	agg     *aggregator     // GROUP BY / aggregate mode
	sorting bool
	envs    []*env         // materialized for ORDER BY
	topk    *topkCollector // bounded heap for ORDER BY + LIMIT
	seq     int            // emission sequence, the heap's stability tiebreak
	keyBuf  []rdb.Value    // reusable sort-key scratch: rejected rows stay allocation-free

	// Streaming delivery (runStream): out receives each in-window row
	// the moment the pipeline produces it instead of appending to rows.
	// skip and limit apply OFFSET/LIMIT on the fly; emitted counts every
	// row that buffered mode would have appended, so the target-based
	// early stop fires at exactly the same point in both modes.
	out     func([]rdb.Value) (bool, error)
	skip    int
	limit   int
	sent    int
	emitted int
}

func (p *selPlan) run(tx *rdb.Tx) (*ResultSet, error) {
	if p.naive {
		// A fallible ON conjunct: join-phase errors depend on the
		// breadth-first join construction order, which only the
		// baseline reproduces exactly.
		return SelectNaive(tx, p.st)
	}
	x, err := p.prepare(tx)
	if err != nil {
		return nil, err
	}
	if err := x.drive(); err != nil {
		return nil, err
	}
	return x.finish()
}

// runStream executes the plan as a cursor: head receives the output
// column names once, then row receives each result row in order. The
// plain unordered path — DISTINCT, deferred WHERE and reordered plans
// included — delivers each in-window row the moment the pipeline
// produces it; paths that must see every row before the first output
// one (ORDER BY, aggregation, the naive error-parity baseline) run
// buffered and replay the materialized result. Either way the rows,
// their order and any error are byte-identical to run; row returning
// false cancels the remainder of the stream without error. On the
// buffered paths an execution error surfaces before head is called;
// on the streaming path it can surface mid-stream.
func (p *selPlan) runStream(tx *rdb.Tx, head func(cols []string) error, row func(vals []rdb.Value) (bool, error)) error {
	if p.naive || p.countAlias != "" || p.agg != nil || len(p.st.OrderBy) > 0 {
		rs, err := p.run(tx)
		if err != nil {
			return err
		}
		if err := head(rs.Columns); err != nil {
			return err
		}
		for _, r := range rs.Rows {
			cont, err := row(r)
			if err != nil || !cont {
				return err
			}
		}
		return nil
	}
	x, err := p.prepare(tx)
	if err != nil {
		return err
	}
	x.out = row
	if p.st.Offset > 0 {
		x.skip = p.st.Offset
	}
	x.limit = p.st.Limit
	if err := head(x.cols); err != nil {
		return err
	}
	return x.drive()
}

// prepare builds the runtime state of one execution: environments,
// projection, and the output-stage mode (count, aggregate, top-K,
// sort materialization or direct emission with a LIMIT target).
func (p *selPlan) prepare(tx *rdb.Tx) (*selExec, error) {
	x := &selExec{p: p, tx: tx, target: -1}
	x.full = &env{tables: make([]envTable, len(p.refs))}
	for i := range p.refs {
		x.full.tables[i] = envTable{name: p.metas[i].lower, schema: p.schemas[i]}
	}
	x.stepEnvs = make([]*env, len(p.steps))
	for i := range p.steps {
		if p.textual {
			x.stepEnvs[i] = &env{tables: x.full.tables[:i+1]}
		} else {
			x.stepEnvs[i] = x.full
		}
	}
	x.hashes = make([]map[string][]idRow, len(p.steps))
	x.ids = make([]int64, len(p.refs))
	x.nullRows = make([][]rdb.Value, len(p.refs))
	for i := range p.refs {
		x.nullRows[i] = make([]rdb.Value, len(p.schemas[i].Columns))
	}
	// Reordered plans buffer joined rows and replay them in baseline
	// order; lone COUNT(*) is order-independent and skips the buffer.
	x.collect = p.reordered && p.countAlias == ""

	st := p.st
	switch {
	case p.countAlias != "":
	case p.agg != nil:
		x.cols = p.agg.cols
		x.agg = newAggregator(p.agg)
	default:
		cols, project, err := buildProjection(st, p.schemas, p.refs)
		if err != nil {
			return nil, err
		}
		x.cols, x.project = cols, project
		x.sorting = len(st.OrderBy) > 0
		if st.Distinct {
			x.seen = map[string]bool{}
		}
		off := st.Offset
		if off < 0 {
			off = 0
		}
		switch {
		case x.sorting && st.Limit >= 0 && !st.Distinct && !p.keysFallible && !p.projFallible &&
			off+st.Limit >= st.Limit: // offset+limit must not overflow to a bogus capacity
			// Top-K: only the first offset+limit rows of the sorted
			// output survive, so a bounded heap replaces the full
			// materialize-and-sort. DISTINCT is excluded (dedup after
			// projection can need more than K sorted rows), as are
			// fallible keys/projections (the baseline evaluates them on
			// every row).
			x.topk = &topkCollector{keys: st.OrderBy, cap: off + st.Limit}
			x.keyBuf = make([]rdb.Value, len(st.OrderBy))
		case !x.sorting && st.Limit >= 0 && !p.deferredWhere && !p.projFallible:
			x.target = off + st.Limit
		}
	}

	return x, nil
}

// drive runs the join pipeline to completion: every produced row goes
// through emitRow (aggregation, top-K, sort materialization, or
// delivery — buffered append or the streaming out callback).
func (x *selExec) drive() error {
	p := x.p
	runPipeline := x.target != 0 || x.sorting || p.countAlias != "" || p.agg != nil
	if x.topk != nil && x.topk.cap == 0 && !p.deferredWhere {
		// ORDER BY + LIMIT 0 with nothing fallible: the result is
		// provably empty and no error can surface, so skip the scan
		// (deferred WHERE must still run — its per-row errors surface
		// regardless of the cutoff).
		runPipeline = false
	}
	if !p.steps[0].impossible && runPipeline {
		if _, err := x.step(0); err != nil {
			return err
		}
	}

	if x.collect {
		// Replay: sort by the id tuple in textual table order — the
		// exact order the textual nested loop emits, since every access
		// path visits ascending internal ids — then run each row
		// through the normal emission logic (projection, DISTINCT,
		// top-K, LIMIT target).
		sort.Slice(x.collected, func(i, j int) bool {
			a, b := x.collected[i], x.collected[j]
			for t := range a.ids {
				if a.ids[t] != b.ids[t] {
					return a.ids[t] < b.ids[t]
				}
			}
			return false
		})
		for _, cr := range x.collected {
			for t := range cr.rows {
				x.full.tables[t].row = cr.rows[t]
			}
			cont, err := x.emitRow()
			if err != nil {
				return err
			}
			if !cont {
				break
			}
		}
	}
	return nil
}

// finish materializes the output stage into a ResultSet: the count
// row, aggregate groups, the sorted/top-K emission, and OFFSET/LIMIT
// slicing.
func (x *selExec) finish() (*ResultSet, error) {
	p, st := x.p, x.p.st
	if p.countAlias != "" {
		return &ResultSet{Columns: []string{p.countAlias}, Rows: [][]rdb.Value{{rdb.Int(int64(x.count))}}}, nil
	}
	if p.agg != nil {
		return &ResultSet{Columns: x.cols, Rows: x.agg.finish()}, nil
	}
	if x.topk != nil {
		for _, r := range x.topk.finish() {
			row, err := x.project(r.env)
			if err != nil {
				return nil, err
			}
			x.rows = append(x.rows, row)
		}
	} else if x.sorting {
		if err := sortEnvs(x.envs, st.OrderBy); err != nil {
			return nil, err
		}
		for _, e := range x.envs {
			row, err := x.project(e)
			if err != nil {
				return nil, err
			}
			if x.seen != nil {
				k := rdb.KeyOf(row)
				if x.seen[k] {
					continue
				}
				x.seen[k] = true
			}
			x.rows = append(x.rows, row)
		}
	}
	rs := &ResultSet{Columns: x.cols, Rows: x.rows}
	if st.Offset > 0 {
		if st.Offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:st.Limit]
	}
	return rs, nil
}

// step produces the rows of step si and recurses; it returns false to
// stop the whole pipeline (LIMIT satisfied).
func (x *selExec) step(si int) (bool, error) {
	if si == len(x.p.steps) {
		return x.emit()
	}
	s := &x.p.steps[si]
	if s.impossible {
		return true, nil
	}
	if s.leftOuter {
		return x.stepLeft(si)
	}
	var iterErr error
	visit := func(id int64, row []rdb.Value) bool {
		x.full.tables[s.ti].row = row
		x.ids[s.ti] = id
		ok, err := x.filterAndDescend(si)
		if err != nil {
			iterErr = err
			return false
		}
		return ok
	}
	cont := true
	switch s.access {
	case accessProbe:
		left := x.full.tables[s.left.ti].row[s.left.ci]
		key, ok := probeKey(left, s.probeType)
		if !ok {
			return true, nil // NULL or unrepresentable: no match, no error
		}
		err := x.tx.MatchColumn(x.p.refs[s.ti].Table, s.probeName, key, func(id int64, row []rdb.Value) bool {
			cont = visit(id, row)
			return cont
		})
		if err != nil {
			return false, err
		}
	case accessHash:
		h, err := x.hashFor(si)
		if err != nil {
			return false, err
		}
		left := x.full.tables[s.left.ti].row[s.left.ci]
		key, ok := hashKey(left, typeClass(s.probeType))
		if !ok {
			return true, nil
		}
		for _, ir := range h[key] {
			if cont = visit(ir.id, ir.row); !cont {
				break
			}
		}
	default:
		var err error
		if s.lit != nil {
			err = x.tx.MatchColumn(x.p.refs[s.ti].Table, s.probeName, *s.lit, func(id int64, row []rdb.Value) bool {
				cont = visit(id, row)
				return cont
			})
		} else {
			err = x.tx.Scan(x.p.refs[s.ti].Table, func(id int64, row []rdb.Value) bool {
				cont = visit(id, row)
				return cont
			})
		}
		if err != nil {
			return false, err
		}
	}
	if iterErr != nil {
		return false, iterErr
	}
	return cont, nil
}

// stepLeft runs a LEFT OUTER JOIN step: candidate rows stream through
// the step's ON conjuncts (the probe or hash key already enforces the
// used equality); if no candidate matches, the outer row survives
// extended with the all-NULL tuple. The step's residual conditions
// run in filterAndDescend after the extension — WHERE semantics.
func (x *selExec) stepLeft(si int) (bool, error) {
	s := &x.p.steps[si]
	matched := false
	cont := true
	var iterErr error
	tryRow := func(id int64, row []rdb.Value) bool {
		x.full.tables[s.ti].row = row
		x.ids[s.ti] = id
		e := x.stepEnvs[si]
		for _, c := range s.on {
			v, err := evalExpr(e, c)
			if err != nil {
				iterErr = err
				return false
			}
			if !isTrue(v) {
				return true // candidate fails ON: not a match, keep looking
			}
		}
		matched = true
		ok, err := x.filterAndDescend(si)
		if err != nil {
			iterErr = err
			return false
		}
		cont = ok
		return ok
	}
	switch s.access {
	case accessProbe:
		left := x.full.tables[s.left.ti].row[s.left.ci]
		if key, ok := probeKey(left, s.probeType); ok {
			if err := x.tx.MatchColumn(x.p.refs[s.ti].Table, s.probeName, key, tryRow); err != nil {
				return false, err
			}
		}
		// A NULL or unrepresentable probe value means the ON equality
		// matches nothing: fall through to the null extension.
	case accessHash:
		h, err := x.hashFor(si)
		if err != nil {
			return false, err
		}
		left := x.full.tables[s.left.ti].row[s.left.ci]
		if key, ok := hashKey(left, typeClass(s.probeType)); ok {
			for _, ir := range h[key] {
				if !tryRow(ir.id, ir.row) {
					break
				}
			}
		}
	default:
		if err := x.tx.Scan(x.p.refs[s.ti].Table, tryRow); err != nil {
			return false, err
		}
	}
	if iterErr != nil {
		return false, iterErr
	}
	if !cont {
		return false, nil
	}
	if !matched {
		x.full.tables[s.ti].row = x.nullRows[s.ti]
		x.ids[s.ti] = -1
		return x.filterAndDescend(si)
	}
	return true, nil
}

// filterAndDescend applies the step's pushed predicates and residual
// conditions to the current row, then recurses into the next step.
func (x *selExec) filterAndDescend(si int) (bool, error) {
	e := x.stepEnvs[si]
	s := &x.p.steps[si]
	for _, pred := range s.preds {
		v, err := evalExpr(e, pred)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	for _, res := range s.residual {
		v, err := evalExpr(e, res)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	return x.step(si + 1)
}

// hashFor lazily builds the hash table of a hash-join step, applying
// the step's pushed predicates while building (rows stay in scan
// order inside each bucket, preserving the baseline's row order).
func (x *selExec) hashFor(si int) (map[string][]idRow, error) {
	if x.hashes[si] != nil {
		return x.hashes[si], nil
	}
	s := &x.p.steps[si]
	h := make(map[string][]idRow)
	scratch := singleEnv(x.p.refs[s.ti].EffectiveName(), x.p.schemas[s.ti], nil)
	class := typeClass(s.probeType)
	var buildErr error
	err := x.tx.Scan(x.p.refs[s.ti].Table, func(id int64, row []rdb.Value) bool {
		key, ok := hashKey(row[s.probeCol], class)
		if !ok {
			return true // NULL join keys match nothing
		}
		scratch.tables[0].row = row
		for _, pred := range s.preds {
			v, err := evalExpr(scratch, pred)
			if err != nil {
				buildErr = err
				return false
			}
			if !isTrue(v) {
				return true
			}
		}
		h[key] = append(h[key], idRow{id: id, row: row})
		return true
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}
	x.hashes[si] = h
	return h, nil
}

// emit handles one fully joined row.
func (x *selExec) emit() (bool, error) {
	if x.p.deferredWhere {
		// Deferred mode: evaluate the original WHERE expression on the
		// complete row, exactly as the baseline does after
		// materializing the joins — same errors, same first error,
		// same three-valued filtering.
		v, err := evalExpr(x.full, x.p.st.Where)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	if x.collect {
		// Reordered plan: buffer the row with its id tuple; emission
		// happens after the pipeline, in replayed baseline order. No
		// early stop — the first target rows in placement order are
		// not the first in baseline order.
		ids := append([]int64(nil), x.ids...)
		rows := make([][]rdb.Value, len(x.full.tables))
		for t := range x.full.tables {
			rows[t] = x.full.tables[t].row
		}
		x.collected = append(x.collected, collRow{ids: ids, rows: rows})
		return true, nil
	}
	return x.emitRow()
}

// emitRow feeds the current full row into the output stage:
// aggregation, counting, the top-K heap, sort materialization or
// direct projection. It is called from emit in streaming plans and
// from the replay loop in reordered ones.
func (x *selExec) emitRow() (bool, error) {
	if x.agg != nil {
		if err := x.agg.add(x.full); err != nil {
			return false, err
		}
		return true, nil
	}
	if x.p.countAlias != "" {
		x.count++
		return true, nil
	}
	if x.topk != nil {
		for i, k := range x.topk.keys {
			v, err := evalExpr(x.full, k.Expr)
			if err != nil {
				return false, err // unreachable: heap requires infallible keys
			}
			x.keyBuf[i] = v
		}
		// Admission is decided on the scratch keys alone; the key copy
		// and environment snapshot happen only for rows the heap
		// actually keeps — once it is full, the common case is
		// rejection with zero allocations.
		if x.topk.admits(x.keyBuf, x.seq) {
			keys := append([]rdb.Value(nil), x.keyBuf...)
			snap := make([]envTable, len(x.full.tables))
			copy(snap, x.full.tables)
			x.topk.add(topkRow{keys: keys, seq: x.seq, env: &env{tables: snap}})
		}
		x.seq++
		return true, nil
	}
	if x.sorting {
		snap := make([]envTable, len(x.full.tables))
		copy(snap, x.full.tables)
		x.envs = append(x.envs, &env{tables: snap})
		return true, nil
	}
	row, err := x.project(x.full)
	if err != nil {
		return false, err
	}
	if x.seen != nil {
		k := rdb.KeyOf(row)
		if x.seen[k] {
			return true, nil
		}
		x.seen[k] = true
	}
	return x.deliver(row)
}

// deliver hands a projected in-order row to the output stage: the
// buffered append (run) or the streaming callback (runStream). In
// streaming mode OFFSET/LIMIT apply on the fly; emitted counts every
// row buffered mode would have appended, so the target-based early
// stop fires at exactly the same point in both modes.
func (x *selExec) deliver(row []rdb.Value) (bool, error) {
	if x.out == nil {
		x.rows = append(x.rows, row)
		return x.target < 0 || len(x.rows) < x.target, nil
	}
	if x.skip > 0 {
		x.skip--
	} else if x.limit < 0 || x.sent < x.limit {
		cont, err := x.out(row)
		if err != nil {
			return false, err
		}
		x.sent++
		if !cont {
			return false, nil
		}
	}
	x.emitted++
	return x.target < 0 || x.emitted < x.target, nil
}

// ---- GROUP BY / aggregate functions ---------------------------------

// aggItem is one projected item of an aggregating SELECT: either an
// aggregate over an expression (COUNT's expression may be nil for
// COUNT(*)) or a pass-through of GROUP BY key gidx.
type aggItem struct {
	fn   sqlparser.AggFunc
	expr sqlparser.Expr
	gidx int
}

// aggPlan is the validated shape of an aggregating SELECT. items may
// extend past the visible projection: HAVING constraints over
// aggregates outside the SELECT list accumulate as hidden trailing
// items, and finish truncates result rows to vis columns.
type aggPlan struct {
	groupBy []sqlparser.Expr
	items   []aggItem
	cols    []string
	vis     int
	having  []havingCheck
}

// havingCheck is one compiled HAVING conjunct: the accumulator item it
// constrains and the comparison against its literal.
type havingCheck struct {
	item int
	op   sqlparser.BinOp
	val  rdb.Value
}

func aggName(fn sqlparser.AggFunc) string {
	switch fn {
	case sqlparser.AggCount:
		return "COUNT"
	case sqlparser.AggSum:
		return "SUM"
	case sqlparser.AggAvg:
		return "AVG"
	case sqlparser.AggMin:
		return "MIN"
	case sqlparser.AggMax:
		return "MAX"
	}
	return "?"
}

// newAggPlan validates and compiles the aggregate shape of a SELECT.
// It returns (nil, nil) when the statement does not aggregate. Every
// non-aggregate item must be a GROUP BY column; DISTINCT, ORDER BY,
// LIMIT and OFFSET do not combine with aggregation in this subset.
func newAggPlan(st sqlparser.Select) (*aggPlan, error) {
	agg := len(st.GroupBy) > 0 || len(st.Having) > 0
	for _, item := range st.Items {
		if item.Agg != sqlparser.AggNone {
			agg = true
		}
	}
	if !agg {
		return nil, nil
	}
	if st.Distinct {
		return nil, fmt.Errorf("sqlexec: DISTINCT cannot be combined with aggregation")
	}
	if len(st.OrderBy) > 0 || st.Limit >= 0 || st.Offset >= 0 {
		return nil, fmt.Errorf("sqlexec: ORDER BY / LIMIT / OFFSET cannot be combined with aggregation")
	}
	groupRefs := make([]sqlparser.ColRef, len(st.GroupBy))
	for i, g := range st.GroupBy {
		cr, ok := g.(sqlparser.ColRef)
		if !ok {
			return nil, fmt.Errorf("sqlexec: GROUP BY supports column references only")
		}
		groupRefs[i] = cr
	}
	p := &aggPlan{groupBy: st.GroupBy}
	for _, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("sqlexec: * cannot be combined with aggregation")
		}
		if item.Agg == sqlparser.AggNone {
			cr, ok := item.Expr.(sqlparser.ColRef)
			gidx := -1
			if ok {
				for gi, g := range groupRefs {
					if strings.EqualFold(cr.Table, g.Table) && strings.EqualFold(cr.Column, g.Column) {
						gidx = gi
						break
					}
				}
			}
			if gidx < 0 {
				return nil, fmt.Errorf("sqlexec: non-aggregate select item must be a GROUP BY column")
			}
			name := item.Alias
			if name == "" {
				name = cr.Column
			}
			p.items = append(p.items, aggItem{fn: sqlparser.AggNone, gidx: gidx})
			p.cols = append(p.cols, name)
			continue
		}
		if item.Agg != sqlparser.AggCount && item.Expr == nil {
			return nil, fmt.Errorf("sqlexec: %s requires an argument", aggName(item.Agg))
		}
		name := item.Alias
		if name == "" {
			name = strings.ToLower(aggName(item.Agg))
		}
		p.items = append(p.items, aggItem{fn: item.Agg, expr: item.Expr})
		p.cols = append(p.cols, name)
	}
	p.vis = len(p.items)
	for _, hc := range st.Having {
		switch hc.Op {
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt,
			sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		default:
			return nil, fmt.Errorf("sqlexec: HAVING requires a comparison operator")
		}
		if hc.Agg == sqlparser.AggNone {
			return nil, fmt.Errorf("sqlexec: HAVING requires an aggregate call")
		}
		if hc.Agg != sqlparser.AggCount && hc.Expr == nil {
			return nil, fmt.Errorf("sqlexec: %s requires an argument", aggName(hc.Agg))
		}
		idx := -1
		for i, it := range p.items {
			if it.fn == hc.Agg && havingExprMatch(it.expr, hc.Expr) {
				idx = i
				break
			}
		}
		if idx < 0 {
			// An aggregate outside the projection: accumulate it as a
			// hidden trailing item.
			idx = len(p.items)
			p.items = append(p.items, aggItem{fn: hc.Agg, expr: hc.Expr})
		}
		p.having = append(p.having, havingCheck{item: idx, op: hc.Op, val: hc.Val})
	}
	return p, nil
}

// havingExprMatch reports whether a HAVING aggregate argument names
// the same column as an existing aggregate item's.
func havingExprMatch(a, b sqlparser.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ac, aok := a.(sqlparser.ColRef)
	bc, bok := b.(sqlparser.ColRef)
	return aok && bok && strings.EqualFold(ac.Table, bc.Table) && strings.EqualFold(ac.Column, bc.Column)
}

// aggAcc is one aggregate's accumulator within one group. SUM and AVG
// accumulate int64 while every input is an integer and switch to the
// float sum — accumulated per value in arrival order — once a float
// appears, matching the mediator's native evaluation arithmetic
// exactly.
type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	isF   bool
	mm    rdb.Value
	has   bool
}

type aggGroup struct {
	keys []rdb.Value
	accs []aggAcc
}

// aggregator folds rows into groups in one streaming pass, keeping
// groups in first-appearance order — which is baseline row order,
// since aggregation forces textual placement.
type aggregator struct {
	p      *aggPlan
	order  []string
	groups map[string]*aggGroup
}

func newAggregator(p *aggPlan) *aggregator {
	return &aggregator{p: p, groups: map[string]*aggGroup{}}
}

func (a *aggregator) add(e *env) error {
	keys := make([]rdb.Value, len(a.p.groupBy))
	for i, g := range a.p.groupBy {
		v, err := evalExpr(e, g)
		if err != nil {
			return err
		}
		keys[i] = v
	}
	k := rdb.KeyOf(keys)
	grp := a.groups[k]
	if grp == nil {
		grp = &aggGroup{keys: keys, accs: make([]aggAcc, len(a.p.items))}
		a.groups[k] = grp
		a.order = append(a.order, k)
	}
	for i, it := range a.p.items {
		if it.fn == sqlparser.AggNone {
			continue
		}
		acc := &grp.accs[i]
		if it.fn == sqlparser.AggCount && it.expr == nil {
			acc.count++ // COUNT(*) counts rows, NULLs included
			continue
		}
		v, err := evalExpr(e, it.expr)
		if err != nil {
			return err
		}
		if v.IsNull() {
			continue // aggregates skip NULL inputs
		}
		acc.count++
		switch it.fn {
		case sqlparser.AggSum, sqlparser.AggAvg:
			switch v.Kind {
			case rdb.KInt:
				acc.sumI += v.I
				acc.sumF += float64(v.I)
			case rdb.KFloat:
				acc.isF = true
				acc.sumF += v.F
			default:
				return fmt.Errorf("sqlexec: %s requires numeric values, got %s", aggName(it.fn), v.Kind)
			}
		case sqlparser.AggMin:
			if !acc.has || compareForSort(v, acc.mm) < 0 {
				acc.mm = v
			}
			acc.has = true
		case sqlparser.AggMax:
			if !acc.has || compareForSort(v, acc.mm) > 0 {
				acc.mm = v
			}
			acc.has = true
		}
	}
	return nil
}

// finish produces the result rows. Without GROUP BY an empty input
// still yields one row (COUNT 0, other aggregates NULL); with GROUP
// BY it yields none. HAVING constraints drop failing groups — the
// synthetic empty group included — and hidden accumulator columns are
// truncated off the emitted rows.
func (a *aggregator) finish() [][]rdb.Value {
	if len(a.p.groupBy) == 0 && len(a.order) == 0 {
		a.groups[""] = &aggGroup{accs: make([]aggAcc, len(a.p.items))}
		a.order = append(a.order, "")
	}
	rows := make([][]rdb.Value, 0, len(a.order))
group:
	for _, k := range a.order {
		grp := a.groups[k]
		row := make([]rdb.Value, len(a.p.items))
		for i, it := range a.p.items {
			acc := &grp.accs[i]
			switch it.fn {
			case sqlparser.AggNone:
				row[i] = grp.keys[it.gidx]
			case sqlparser.AggCount:
				row[i] = rdb.Int(acc.count)
			case sqlparser.AggSum:
				switch {
				case acc.count == 0:
					row[i] = rdb.Null
				case acc.isF:
					row[i] = rdb.Float(acc.sumF)
				default:
					row[i] = rdb.Int(acc.sumI)
				}
			case sqlparser.AggAvg:
				switch {
				case acc.count == 0:
					row[i] = rdb.Null
				case acc.isF:
					row[i] = rdb.Float(acc.sumF / float64(acc.count))
				default:
					row[i] = rdb.Float(float64(acc.sumI) / float64(acc.count))
				}
			case sqlparser.AggMin, sqlparser.AggMax:
				if acc.has {
					row[i] = acc.mm
				} else {
					row[i] = rdb.Null
				}
			}
		}
		for _, hc := range a.p.having {
			v := row[hc.item]
			if v.IsNull() || !havingLexHolds(v.Text(), hc.val.Text(), hc.op) {
				continue group
			}
		}
		rows = append(rows, row[:a.p.vis])
	}
	return rows
}

// havingLexHolds decides one HAVING comparison over the two operands'
// lexical forms: numeric when both parse as float64, string order when
// neither does, false on a type-class mismatch. The rule deliberately
// mirrors the mediator's native SPARQL evaluator byte for byte — both
// engines must keep or drop exactly the same groups.
func havingLexHolds(l, r string, op sqlparser.BinOp) bool {
	lf, lerr := strconv.ParseFloat(l, 64)
	rf, rerr := strconv.ParseFloat(r, 64)
	var c int
	switch {
	case lerr == nil && rerr == nil:
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	case lerr != nil && rerr != nil:
		c = strings.Compare(l, r)
	default:
		return false
	}
	switch op {
	case sqlparser.OpEq:
		return c == 0
	case sqlparser.OpNe:
		return c != 0
	case sqlparser.OpLt:
		return c < 0
	case sqlparser.OpLe:
		return c <= 0
	case sqlparser.OpGt:
		return c > 0
	case sqlparser.OpGe:
		return c >= 0
	}
	return false
}

// ---- bounded top-K for ORDER BY + LIMIT -----------------------------

// topkRow is one candidate row: its evaluated sort keys, the emission
// sequence number (the stable-sort tiebreak), and a snapshot of the
// joined environment for projection.
type topkRow struct {
	keys []rdb.Value
	seq  int
	env  *env
}

// topkCollector keeps the first cap rows of the stable sort order in a
// max-heap: the root is the worst kept row, so an incoming row either
// displaces it or is discarded in O(log cap). Because ties break on
// the emission sequence, the comparison is a total order and the final
// output is byte-identical to stably sorting everything and slicing.
type topkCollector struct {
	keys  []sqlparser.OrderKey
	cap   int
	items []topkRow
}

// cmp orders rows by the sort keys (DESC inverting per key) with the
// emission sequence as the final tiebreak; it never returns 0 for
// distinct rows.
func (h *topkCollector) cmp(a, b topkRow) int {
	for i, k := range h.keys {
		c := compareForSort(a.keys[i], b.keys[i])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return a.seq - b.seq
}

func (h *topkCollector) Len() int           { return len(h.items) }
func (h *topkCollector) Less(i, j int) bool { return h.cmp(h.items[i], h.items[j]) > 0 } // max-heap
func (h *topkCollector) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topkCollector) Push(v any)         { h.items = append(h.items, v.(topkRow)) }
func (h *topkCollector) Pop() (v any) {
	n := len(h.items)
	v, h.items = h.items[n-1], h.items[:n-1]
	return v
}

// admits reports whether a row with these keys would be kept — the
// pre-snapshot check that keeps rejected rows allocation-free.
func (h *topkCollector) admits(keys []rdb.Value, seq int) bool {
	if h.cap <= 0 {
		return false
	}
	if len(h.items) < h.cap {
		return true
	}
	return h.cmp(h.items[0], topkRow{keys: keys, seq: seq}) > 0
}

// add offers a row to the collector.
func (h *topkCollector) add(r topkRow) {
	if !h.admits(r.keys, r.seq) {
		return
	}
	if len(h.items) < h.cap {
		heap.Push(h, r)
		return
	}
	h.items[0] = r
	heap.Fix(h, 0)
}

// finish returns the kept rows in final sorted order.
func (h *topkCollector) finish() []topkRow {
	sort.Slice(h.items, func(i, j int) bool { return h.cmp(h.items[i], h.items[j]) < 0 })
	return h.items
}

// sortEnvs orders materialized rows by the ORDER BY keys. The first
// evaluation error wins — earlier versions let later comparisons
// overwrite it, losing errors raised by all but the last failing key.
func sortEnvs(envs []*env, keys []sqlparser.OrderKey) error {
	var sortErr error
	sort.SliceStable(envs, func(i, j int) bool {
		for _, k := range keys {
			a, err := evalExpr(envs[i], k.Expr)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			b, err := evalExpr(envs[j], k.Expr)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			c := compareForSort(a, b)
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// ---- nested-loop baseline -------------------------------------------

// SelectNaive executes a SELECT with the original
// materialize-everything nested-loop strategy: every table is scanned
// in full, joins build the filtered cross product in memory, and
// WHERE applies last. It is kept as the measurement baseline for the
// streaming executor (BenchmarkB12_QueryJoin) and as a second referee
// in differential tests.
func SelectNaive(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	// Build the joined row set with nested loops.
	refs := []sqlparser.TableRef{st.From}
	for _, j := range st.Joins {
		refs = append(refs, j.Ref)
	}
	schemas := make([]*rdb.TableSchema, len(refs))
	for i, r := range refs {
		s, err := tx.Schema(r.Table)
		if err != nil {
			return nil, err
		}
		schemas[i] = s
	}

	var envs []*env
	// Seed with the FROM table.
	err := tx.Scan(st.From.Table, func(_ int64, row []rdb.Value) bool {
		envs = append(envs, &env{tables: []envTable{{
			name: strings.ToLower(st.From.EffectiveName()), schema: schemas[0], row: row,
		}}})
		return true
	})
	if err != nil {
		return nil, err
	}
	for ji, j := range st.Joins {
		var joinRows [][]rdb.Value
		if err := tx.Scan(j.Ref.Table, func(_ int64, row []rdb.Value) bool {
			joinRows = append(joinRows, row)
			return true
		}); err != nil {
			return nil, err
		}
		name := strings.ToLower(j.Ref.EffectiveName())
		nullRow := make([]rdb.Value, len(schemas[ji+1].Columns))
		var next []*env
		for _, base := range envs {
			matched := false
			for _, row := range joinRows {
				cand := &env{tables: append(append([]envTable{}, base.tables...), envTable{
					name: name, schema: schemas[ji+1], row: row,
				})}
				v, err := evalExpr(cand, j.On)
				if err != nil {
					return nil, err
				}
				if isTrue(v) {
					matched = true
					next = append(next, cand)
				}
			}
			if !matched && j.LeftOuter {
				// LEFT OUTER JOIN: the unmatched outer row survives,
				// NULL-extended.
				next = append(next, &env{tables: append(append([]envTable{}, base.tables...), envTable{
					name: name, schema: schemas[ji+1], row: nullRow,
				})})
			}
		}
		envs = next
	}

	if st.Where != nil {
		var kept []*env
		for _, e := range envs {
			v, err := evalExpr(e, st.Where)
			if err != nil {
				return nil, err
			}
			if isTrue(v) {
				kept = append(kept, e)
			}
		}
		envs = kept
	}

	// Aggregation: lone COUNT(*) keeps the counting fast path, every
	// other aggregate shape folds through the shared aggregator — the
	// same code the pipeline runs at its emit point, so results and
	// errors agree by construction.
	if len(st.Items) == 1 && st.Items[0].Agg == sqlparser.AggCount && st.Items[0].Expr == nil &&
		len(st.GroupBy) == 0 && len(st.Having) == 0 {
		return &ResultSet{Columns: []string{st.Items[0].Alias}, Rows: [][]rdb.Value{{rdb.Int(int64(len(envs)))}}}, nil
	}
	if ap, err := newAggPlan(st); err != nil {
		return nil, err
	} else if ap != nil {
		agg := newAggregator(ap)
		for _, e := range envs {
			if err := agg.add(e); err != nil {
				return nil, err
			}
		}
		return &ResultSet{Columns: ap.cols, Rows: agg.finish()}, nil
	}

	// ORDER BY before projection so keys may use any column.
	if len(st.OrderBy) > 0 {
		if err := sortEnvs(envs, st.OrderBy); err != nil {
			return nil, err
		}
	}

	// Projection.
	cols, project, err := buildProjection(st, schemas, refs)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: cols}
	for _, e := range envs {
		row, err := project(e)
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, row)
	}

	if st.Distinct {
		seen := map[string]bool{}
		var kept [][]rdb.Value
		for _, row := range rs.Rows {
			k := rdb.KeyOf(row)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		rs.Rows = kept
	}
	if st.Offset > 0 {
		if st.Offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:st.Limit]
	}
	return rs, nil
}

// compareForSort orders values with NULLs first and falls back to a
// stable cross-kind order when Compare fails.
func compareForSort(a, b rdb.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if c, err := rdb.Compare(a, b); err == nil {
		return c
	}
	return strings.Compare(a.String(), b.String())
}

// buildProjection computes the output column names and a projector
// function from the select items.
func buildProjection(st sqlparser.Select, schemas []*rdb.TableSchema, refs []sqlparser.TableRef) ([]string, func(*env) ([]rdb.Value, error), error) {
	multi := len(refs) > 1
	var cols []string
	type getter func(*env) (rdb.Value, error)
	var getters []getter

	for _, item := range st.Items {
		switch {
		case item.Star:
			for ti, s := range schemas {
				prefix := ""
				if multi {
					prefix = strings.ToLower(refs[ti].EffectiveName()) + "."
				}
				for ci := range s.Columns {
					cols = append(cols, prefix+s.Columns[ci].Name)
					ti2, ci2 := ti, ci
					getters = append(getters, func(e *env) (rdb.Value, error) {
						return e.tables[ti2].row[ci2], nil
					})
				}
			}
		default:
			name := item.Alias
			if name == "" {
				if cr, ok := item.Expr.(sqlparser.ColRef); ok {
					name = cr.Column
				} else {
					name = fmt.Sprintf("expr%d", len(cols)+1)
				}
			}
			cols = append(cols, name)
			expr := item.Expr
			getters = append(getters, func(e *env) (rdb.Value, error) {
				return evalExpr(e, expr)
			})
		}
	}
	project := func(e *env) ([]rdb.Value, error) {
		row := make([]rdb.Value, len(getters))
		for i, g := range getters {
			v, err := g(e)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}
	return cols, project, nil
}
