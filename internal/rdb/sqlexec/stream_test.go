package sqlexec

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
)

// seedJoinData loads a small but join-rich data set: teams, authors
// referencing them (FK secondary index), publications and link rows.
func seedJoinData(t testing.TB, db *rdb.Database) {
	t.Helper()
	if _, err := Run(db, `
INSERT INTO team (id, name, code) VALUES
  (1, 'Software Engineering', 'SEAL'),
  (2, 'Database Technology', 'DBTG'),
  (3, 'Software Engineering', 'SE2');
INSERT INTO author (id, title, email, firstname, lastname, team) VALUES
  (1, 'Dr', 'a1@example.org', 'Matthias', 'Hert', 1),
  (2, NULL, 'a2@example.org', 'Gerald', 'Reif', 1),
  (3, 'Dr', NULL, 'Harald', 'Gall', 2),
  (4, NULL, 'a4@example.org', 'Chris', 'Bizer', NULL);
INSERT INTO pubtype (id, type) VALUES (1, 'inproceedings'), (2, 'article');
INSERT INTO publisher (id, name) VALUES (1, 'Springer'), (2, 'Software Engineering');
INSERT INTO publication (id, title, year, type, publisher) VALUES
  (10, 'Updating Relational Data', 2009, 1, 1),
  (11, 'RDF Views', 2008, 2, 1),
  (12, 'Mapping Languages', 2010, 1, 2);
INSERT INTO publication_author (publication, author) VALUES
  (10, 1), (10, 2), (11, 1), (12, 3);
`); err != nil {
		t.Fatal(err)
	}
}

// TestStreamingMatchesNaive runs a battery of SELECT shapes through
// both executors and requires byte-identical result sets — columns,
// rows and row order. The battery covers every access path of the
// streaming planner: base index probes, pk and secondary-index join
// probes, hash joins on unindexed columns, nested fallbacks, WHERE
// pushdown, DISTINCT, ORDER BY, LIMIT/OFFSET and COUNT(*).
func TestStreamingMatchesNaive(t *testing.T) {
	db := paperDB(t)
	seedJoinData(t, db)
	queries := []string{
		// base scans and pushdown
		`SELECT id, lastname FROM author`,
		`SELECT id FROM author WHERE team = 1`,      // secondary-index base probe
		`SELECT id, name FROM team WHERE id = 2`,    // pk base probe
		`SELECT id FROM team WHERE id = 99`,         // pk miss
		`SELECT id FROM author WHERE email IS NULL`, // IS NULL filter
		`SELECT id FROM author WHERE email IS NOT NULL AND team = 1`,
		`SELECT id FROM author WHERE id = 2.0`, // integral float probes the pk
		`SELECT id FROM author WHERE id = 2.5`, // unsatisfiable typed equality
		// joins: pk probe, secondary probe, hash, nested
		`SELECT a.lastname, t.name FROM author a JOIN team t ON a.team = t.id`,
		`SELECT t.name, a.lastname FROM team t JOIN author a ON a.team = t.id`,
		`SELECT a.lastname, t.code FROM author a JOIN team t ON t.id = a.team WHERE t.name = 'Software Engineering'`,
		`SELECT t.name, p.name FROM team t JOIN publisher p ON t.name = p.name`, // hash join (no index on name)
		`SELECT a.id, t.id FROM author a JOIN team t ON a.id < t.id`,            // nested fallback (non-equi)
		`SELECT p.title, a.lastname FROM publication p JOIN publication_author pa ON pa.publication = p.id JOIN author a ON a.id = pa.author`,
		`SELECT p.title, a.lastname FROM publication p JOIN publication_author pa ON pa.publication = p.id JOIN author a ON a.id = pa.author WHERE p.year = 2009`,
		// unqualified columns across joins
		`SELECT lastname, code FROM author a JOIN team t ON a.team = t.id WHERE firstname = 'Matthias'`,
		// modifiers
		`SELECT DISTINCT t.name FROM author a JOIN team t ON a.team = t.id`,
		`SELECT id FROM author ORDER BY lastname DESC`,
		`SELECT id, email FROM author ORDER BY email, id DESC`, // NULLs first, tie-broken
		`SELECT id FROM author ORDER BY team, lastname LIMIT 2`,
		`SELECT id FROM author LIMIT 2`,
		`SELECT id FROM author LIMIT 2 OFFSET 1`,
		`SELECT id FROM author LIMIT 0`,
		`SELECT id FROM author OFFSET 2`,
		`SELECT DISTINCT team FROM author LIMIT 1`,
		`SELECT COUNT(*) FROM author WHERE team = 1`,
		`SELECT COUNT(*) AS n FROM author a JOIN team t ON a.team = t.id`,
		`SELECT lastname FROM author WHERE lastname LIKE '%er%'`,
		`SELECT id FROM publication WHERE year IN (2008, 2010) ORDER BY id`,
		// comparison pushdown (the compiled FILTER shapes)
		`SELECT id FROM publication WHERE year > 2008`,
		`SELECT id FROM publication WHERE year >= 2008 AND year <> 2009`,
		`SELECT p.id, a.id FROM publication p JOIN publication_author pa ON pa.publication = p.id JOIN author a ON a.id = pa.author WHERE p.year <= 2009`,
		`SELECT id FROM team WHERE name < code`,
		// top-K heap: ORDER BY + LIMIT/OFFSET, ties at the boundary,
		// DESC keys, exceeding limits, LIMIT 0
		`SELECT id FROM team ORDER BY name LIMIT 2`, // two teams tie on the key
		`SELECT id FROM team ORDER BY name LIMIT 1 OFFSET 1`,
		`SELECT id FROM author ORDER BY team DESC, lastname LIMIT 2 OFFSET 1`,
		`SELECT a.id, t.id FROM author a JOIN team t ON a.team = t.id ORDER BY t.name DESC, a.id LIMIT 3`,
		`SELECT id, email FROM author ORDER BY email LIMIT 10 OFFSET 2`, // NULL keys inside the heap
		`SELECT id FROM author ORDER BY lastname LIMIT 0`,
		`SELECT id FROM publication WHERE year > 2008 ORDER BY year DESC, id LIMIT 2`,
		// offset+limit overflowing int must not produce a bogus heap
		// capacity; the full-sort path takes over
		`SELECT id FROM author ORDER BY lastname LIMIT 9223372036854775806 OFFSET 2`,
		// deferred WHERE: fallible conjuncts evaluate per joined row
		`SELECT id FROM team WHERE id = 99 AND name = 5`,
		`SELECT a.id FROM author a JOIN team t ON a.team = t.id WHERE t.name = 5`,
		// LEFT OUTER JOIN: pk probe, secondary probe, hash, non-equi
		// scan, extra ON conjuncts, WHERE after the null extension
		`SELECT a.lastname, t.name FROM author a LEFT JOIN team t ON a.team = t.id`,
		`SELECT a.lastname, t.name FROM author a LEFT OUTER JOIN team t ON a.team = t.id`,
		`SELECT t.id, a.id FROM team t LEFT JOIN author a ON a.team = t.id`,
		`SELECT t.name, p.name FROM team t LEFT JOIN publisher p ON t.name = p.name`,
		`SELECT a.id, t.id FROM author a LEFT JOIN team t ON a.id < t.id`,
		`SELECT a.id, t.id FROM author a LEFT JOIN team t ON a.team = t.id AND t.name = 'Software Engineering'`,
		`SELECT a.lastname FROM author a LEFT JOIN team t ON a.team = t.id WHERE t.name IS NULL`,
		`SELECT a.lastname, t.code FROM author a LEFT JOIN team t ON a.team = t.id WHERE t.code = 'SEAL'`,
		`SELECT a.id, t.id FROM author a LEFT JOIN team t ON a.team = t.id ORDER BY t.id DESC, a.id LIMIT 3`,
		`SELECT p.title, pa.author FROM publication p LEFT JOIN publication_author pa ON pa.publication = p.id JOIN author a ON a.team = 1`,
		`SELECT COUNT(*) AS n FROM author a LEFT JOIN team t ON a.team = t.id`,
		// aggregates and GROUP BY, with and without matching rows
		`SELECT COUNT(*) AS n, MIN(year) AS mn, MAX(year) AS mx, SUM(year) AS s, AVG(year) AS a FROM publication`,
		`SELECT COUNT(email) AS ne FROM author`,
		`SELECT type, COUNT(*) AS n FROM publication GROUP BY type`,
		`SELECT team, COUNT(email) AS ne, MIN(lastname) AS mn FROM author GROUP BY team`,
		`SELECT t.name, COUNT(*) AS n FROM author a JOIN team t ON a.team = t.id GROUP BY t.name`,
		`SELECT t.name, COUNT(a.email) AS n FROM team t LEFT JOIN author a ON a.team = t.id GROUP BY t.name`,
		`SELECT AVG(year) AS a FROM publication WHERE year > 2100`,
		`SELECT type, COUNT(*) AS n FROM publication WHERE year > 2100 GROUP BY type`,
		`SELECT SUM(lastname) AS s FROM author`,                           // non-numeric: error in both
		`SELECT lastname, COUNT(*) AS n FROM author`,                      // non-grouped item: error in both
		`SELECT MAX(year) AS m FROM publication GROUP BY type ORDER BY m`, // modifier clash: error in both
	}
	for _, q := range queries {
		q := q
		t.Run(q, func(t *testing.T) {
			stmt, err := sqlparser.ParseStatement(q)
			if err != nil {
				t.Fatal(err)
			}
			sel := stmt.(sqlparser.Select)
			err = db.View(func(tx *rdb.Tx) error {
				got, gerr := execSelect(tx, sel)
				want, werr := SelectNaive(tx, sel)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("error divergence: streaming %v vs naive %v", gerr, werr)
				}
				if gerr != nil {
					return nil
				}
				if !reflect.DeepEqual(got.Columns, want.Columns) {
					t.Errorf("columns %v vs %v", got.Columns, want.Columns)
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("rows %v vs %v", got.Rows, want.Rows)
				}
				for i := range got.Rows {
					if !reflect.DeepEqual(got.Rows[i], want.Rows[i]) {
						t.Errorf("row %d: %v vs %v", i, got.Rows[i], want.Rows[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStreamingErrorParity checks that planning does not swallow the
// evaluation errors the naive executor reports for malformed queries.
func TestStreamingErrorParity(t *testing.T) {
	db := paperDB(t)
	seedJoinData(t, db)
	queries := []string{
		`SELECT id FROM team WHERE name = 5`,                                // cross-type comparison
		`SELECT id FROM author WHERE nosuch = 1`,                            // unknown column
		`SELECT id FROM author WHERE x.id = 1`,                              // unknown alias
		`SELECT id FROM author a JOIN team t ON a.team = t.id WHERE id = 1`, // ambiguous
		`SELECT id FROM team WHERE code LIKE 5`,                             // LIKE on non-string
	}
	for _, q := range queries {
		stmt, err := sqlparser.ParseStatement(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sel := stmt.(sqlparser.Select)
		db.View(func(tx *rdb.Tx) error {
			_, gerr := execSelect(tx, sel)
			_, werr := SelectNaive(tx, sel)
			if gerr == nil || werr == nil {
				t.Errorf("%s: expected both executors to fail, got streaming=%v naive=%v", q, gerr, werr)
			}
			return nil
		})
	}
}

// TestPushdownDeferredErrorParity is the regression test for the two
// formerly documented streaming-vs-naive divergences (DESIGN.md §5):
//
//  1. predicate pushdown surfaced a per-row type error on a row the
//     naive join order would have eliminated first;
//  2. conjunct short-circuiting let a false conjunct suppress the
//     error its neighbour raises on the same row.
//
// Both must now behave exactly like the baseline: the planner defers
// fallible WHERE conjuncts to the fully joined row.
func TestPushdownDeferredErrorParity(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, `
INSERT INTO team (id, name, code) VALUES (1, 'T', 'c');
INSERT INTO author (id, email, lastname, team) VALUES
  (1, 'x@example.org', 'Solo', NULL),
  (2, NULL, 'Joined', 1);
`); err != nil {
		t.Fatal(err)
	}
	// Divergence 1: author 1 has the only non-NULL email but joins
	// nothing (NULL team). The naive executor joins first and never
	// evaluates "email = 5" on it — the old pushdown evaluated it in
	// the base scan and errored. Both must now succeed with no rows.
	q := `SELECT a.id FROM author a JOIN team t ON a.team = t.id WHERE a.email = 5`
	stmt, err := sqlparser.ParseStatement(q)
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *rdb.Tx) error {
		got, gerr := execSelect(tx, stmt.(sqlparser.Select))
		want, werr := SelectNaive(tx, stmt.(sqlparser.Select))
		if gerr != nil || werr != nil {
			t.Fatalf("pushdown type-error divergence: streaming %v vs naive %v", gerr, werr)
		}
		if len(got.Rows) != 0 || len(want.Rows) != 0 {
			t.Fatalf("rows: %v vs %v", got.Rows, want.Rows)
		}
		return nil
	})
	// Divergence 2: "id = 99" is false for every author, but the
	// baseline still evaluates "email = 5" on each row and errors on
	// author 1. The old pushdown turned id = 99 into a pk probe, found
	// nothing, and returned an empty result with no error.
	q = `SELECT id FROM author WHERE id = 99 AND email = 5`
	stmt, err = sqlparser.ParseStatement(q)
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *rdb.Tx) error {
		_, gerr := execSelect(tx, stmt.(sqlparser.Select))
		_, werr := SelectNaive(tx, stmt.(sqlparser.Select))
		if gerr == nil || werr == nil {
			t.Fatalf("conjunct short-circuit divergence: streaming %v vs naive %v", gerr, werr)
		}
		if gerr.Error() != werr.Error() {
			t.Fatalf("first error diverges: streaming %q vs naive %q", gerr, werr)
		}
		return nil
	})
	// An error past the LIMIT cutoff must still surface: the baseline
	// filters every row before slicing.
	q = `SELECT id FROM author WHERE email = 5 LIMIT 0`
	stmt, err = sqlparser.ParseStatement(q)
	if err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *rdb.Tx) error {
		_, gerr := execSelect(tx, stmt.(sqlparser.Select))
		_, werr := SelectNaive(tx, stmt.(sqlparser.Select))
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("LIMIT 0 error divergence: streaming %v vs naive %v", gerr, werr)
		}
		return nil
	})
}

// TestTopKMatchesFullSort drives the bounded ORDER BY + LIMIT heap
// over a data set large enough for real evictions and requires
// byte-identical output to the full-sort baseline, including stable
// tie-breaks among equal keys.
func TestTopKMatchesFullSort(t *testing.T) {
	db := paperDB(t)
	var b strings.Builder
	b.WriteString("INSERT INTO author (id, lastname, team) VALUES (1, 'L1', NULL)")
	for i := 2; i <= 500; i++ {
		// Only a handful of distinct keys: ties dominate, so a heap
		// without the sequence tiebreak would emit a different order.
		fmt.Fprintf(&b, ", (%d, 'L%d', NULL)", i, i%7)
	}
	if _, err := Run(db, b.String()); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT id FROM author ORDER BY lastname LIMIT 10`,
		`SELECT id FROM author ORDER BY lastname DESC LIMIT 25 OFFSET 5`,
		`SELECT id, lastname FROM author ORDER BY lastname, id DESC LIMIT 3 OFFSET 490`,
	} {
		stmt, err := sqlparser.ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		sel := stmt.(sqlparser.Select)
		db.View(func(tx *rdb.Tx) error {
			got, gerr := execSelect(tx, sel)
			want, werr := SelectNaive(tx, sel)
			if gerr != nil || werr != nil {
				t.Fatalf("%s: %v / %v", q, gerr, werr)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Errorf("%s: top-K diverges from full sort:\n%v\nvs\n%v", q, got.Rows, want.Rows)
			}
			return nil
		})
	}
}

// TestOrderByErrorNotSwallowed is the regression test for the ORDER BY
// comparator: an evaluation error raised while sorting must surface
// from the executor — including errors raised by a non-final sort key
// — instead of being overwritten by later, successful comparisons.
func TestOrderByErrorNotSwallowed(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, `INSERT INTO team (id, name, code) VALUES
	  (1, 'A', NULL), (2, 'B', NULL), (3, 'C', 'x'), (4, 'D', NULL)`); err != nil {
		t.Fatal(err)
	}
	// code + 1 is NULL for NULL codes (no error) but a type error for
	// 'x'; the error pair is hit mid-sort, with further error-free
	// comparisons after it. A second key keeps the comparator running
	// past the first one.
	for _, q := range []string{
		`SELECT id FROM team ORDER BY code + 1`,
		`SELECT id FROM team ORDER BY code + 1, id`,
		`SELECT id FROM team ORDER BY id - id, code + 1`,
	} {
		stmt, err := sqlparser.ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		sel := stmt.(sqlparser.Select)
		db.View(func(tx *rdb.Tx) error {
			if _, err := execSelect(tx, sel); err == nil {
				t.Errorf("%s: streaming executor swallowed the sort error", q)
			} else if !strings.Contains(err.Error(), "not numeric") {
				t.Errorf("%s: unexpected error %v", q, err)
			}
			if _, err := SelectNaive(tx, sel); err == nil {
				t.Errorf("%s: naive executor swallowed the sort error", q)
			}
			return nil
		})
	}
}

// TestOrderByMixedTypeKeys pins the comparator's behaviour on mixed
// sort keys: NULLs order first, a string key and a numeric key compose
// left to right, and DESC inverts per key.
func TestOrderByMixedTypeKeys(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, `INSERT INTO author (id, email, lastname, team) VALUES
	  (1, 'z@x', 'Gall', NULL),
	  (2, NULL, 'Hert', NULL),
	  (3, 'a@x', 'Gall', NULL),
	  (4, NULL, 'Auer', NULL)`); err != nil {
		t.Fatal(err)
	}
	rs, err := Query(db, `SELECT id FROM author ORDER BY lastname, email DESC`)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range rs.Rows {
		got = append(got, row[0].I)
	}
	// Auer(4) < Gall email DESC: z@x(1) before a@x(3) < Hert(2).
	want := []int64{4, 1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
	// NULL emails sort first on an ascending key.
	rs, err = Query(db, `SELECT id FROM author ORDER BY email, id`)
	if err != nil {
		t.Fatal(err)
	}
	got = got[:0]
	for _, row := range rs.Rows {
		got = append(got, row[0].I)
	}
	want = []int64{2, 4, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("null-first order = %v, want %v", got, want)
	}
}

// TestLimitStopsEarly verifies the streaming executor's early
// termination: a LIMIT over a huge scan touches only the prefix it
// needs (the naive baseline would materialize the full cross
// product).
func TestLimitStopsEarly(t *testing.T) {
	db := paperDB(t)
	var b strings.Builder
	b.WriteString("INSERT INTO team (id, name, code) VALUES (1, 't', 'c')")
	for i := 2; i <= 2000; i++ {
		b.WriteString(", (")
		b.WriteString(strconv.Itoa(i))
		b.WriteString(", 't', 'c')")
	}
	if _, err := Run(db, b.String()); err != nil {
		t.Fatal(err)
	}
	rs, err := Query(db, `SELECT t1.id, t2.id FROM team t1 JOIN team t2 ON t1.code = t2.code LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	// ASK-style probe: one row decides.
	rs, err = Query(db, `SELECT id FROM team WHERE code = 'c' LIMIT 1`)
	if err != nil || len(rs.Rows) != 1 {
		t.Fatalf("probe rows = %v, %v", rs, err)
	}
}

// TestJoinReorderKeepsBaselineOrder pins the ordering contract on a
// query the cost-based planner may reorder (a hash join mixed with
// index-backed joins): the streaming executor must return
// byte-identical rows in byte-identical order to both the textual
// placement and the nested-loop baseline — reordered plans replay
// their collected rows in baseline id order.
func TestJoinReorderKeepsBaselineOrder(t *testing.T) {
	db := paperDB(t)
	seedJoinData(t, db)
	// publisher 2 shares team 1/3's name, team 1 has two authors.
	const q = `SELECT t.id, p.id, a.id FROM team t JOIN publisher p ON p.name = t.name JOIN author a ON a.team = t.id`
	stmt, err := sqlparser.ParseStatement(q)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(sqlparser.Select)
	db.View(func(tx *rdb.Tx) error {
		first, err := execSelect(tx, sel)
		if err != nil {
			t.Fatal(err)
		}
		again, err := execSelect(tx, sel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Errorf("streaming executor is not deterministic:\n%v\nvs\n%v", first.Rows, again.Rows)
		}
		textual, err := SelectTextual(tx, sel)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SelectNaive(tx, sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Rows) == 0 {
			t.Fatal("battery query matched nothing; seed data drifted")
		}
		if !reflect.DeepEqual(first.Rows, want.Rows) {
			t.Errorf("rows diverge from the naive baseline:\n%v\nvs\n%v", first.Rows, want.Rows)
		}
		if !reflect.DeepEqual(first.Rows, textual.Rows) {
			t.Errorf("rows diverge from textual placement:\n%v\nvs\n%v", first.Rows, textual.Rows)
		}
		return nil
	})
}

// TestCostBasedReorderMatchesBaseline builds a skewed join — a large
// fact table, a selective indexed literal filter on a late table —
// where the cost-based planner provably departs from textual order,
// and requires byte-identical output (rows AND order) to SelectTextual
// and SelectNaive across modifier shapes.
func TestCostBasedReorderMatchesBaseline(t *testing.T) {
	db := paperDB(t)
	var b strings.Builder
	b.WriteString(`INSERT INTO team (id, name, code) VALUES (1, 'T1', 'c1'), (2, 'T2', 'c2'), (3, 'T3', 'c3');`)
	b.WriteString("INSERT INTO author (id, lastname, team) VALUES (1, 'A1', 1)")
	for i := 2; i <= 300; i++ {
		fmt.Fprintf(&b, ", (%d, 'A%d', %d)", i, i, i%3+1)
	}
	b.WriteString(";")
	if _, err := Run(db, b.String()); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		// author (300 rows) is textually first, but the 3-row team
		// table is the cheapest start; the FK index then probes author
		// per team row. Cost-based placement inverts the textual order.
		`SELECT a.id, t.id FROM author a JOIN team t ON a.team = t.id WHERE t.code = 'c2'`,
		`SELECT a.lastname, t.code FROM author a JOIN team t ON a.team = t.id WHERE t.code = 'c2' ORDER BY a.lastname`,
		`SELECT a.id, t.id FROM author a JOIN team t ON a.team = t.id WHERE t.code LIKE 'c%' LIMIT 5`,
		`SELECT a.id, t.id FROM author a JOIN team t ON a.team = t.id WHERE t.code LIKE 'c%' LIMIT 7 OFFSET 3`,
		`SELECT DISTINCT t.code FROM author a JOIN team t ON a.team = t.id WHERE t.code LIKE 'c%'`,
		`SELECT COUNT(*) AS n FROM author a JOIN team t ON a.team = t.id WHERE t.code = 'c2'`,
	}
	reordered := 0
	for _, q := range queries {
		stmt, err := sqlparser.ParseStatement(q)
		if err != nil {
			t.Fatal(err)
		}
		sel := stmt.(sqlparser.Select)
		db.View(func(tx *rdb.Tx) error {
			if p, err := planSelect(tx, sel); err != nil {
				t.Fatal(err)
			} else if p.reordered {
				reordered++
			}
			got, err := execSelect(tx, sel)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			textual, err := SelectTextual(tx, sel)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			naive, err := SelectNaive(tx, sel)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if !reflect.DeepEqual(got.Rows, textual.Rows) {
				t.Errorf("%s: cost-based diverges from textual:\n%v\nvs\n%v", q, got.Rows, textual.Rows)
			}
			if !reflect.DeepEqual(got.Rows, naive.Rows) {
				t.Errorf("%s: cost-based diverges from naive:\n%v\nvs\n%v", q, got.Rows, naive.Rows)
			}
			if !reflect.DeepEqual(got.Columns, textual.Columns) {
				t.Errorf("%s: columns diverge: %v vs %v", q, got.Columns, textual.Columns)
			}
			return nil
		})
	}
	if reordered == 0 {
		t.Error("no query produced a reordered plan; the scenario no longer exercises cost-based ordering")
	}
}

// TestAggregateFloatArithmetic pins SUM/AVG semantics on DOUBLE
// columns and mixed inputs: integer accumulation switches to the
// per-value float sum once a float appears, AVG divides as float64.
func TestAggregateFloatArithmetic(t *testing.T) {
	db := rdb.NewDatabase("agg")
	if _, err := Run(db, `
CREATE TABLE m (id INTEGER PRIMARY KEY, grp INTEGER, x DOUBLE, n INTEGER);
INSERT INTO m (id, grp, x, n) VALUES
  (1, 1, 1.5, 10), (2, 1, 2.25, 1), (3, 2, NULL, 4), (4, 2, 0.5, NULL), (5, 1, NULL, 2);
`); err != nil {
		t.Fatal(err)
	}
	rs, err := Query(db, `SELECT grp, SUM(x) AS sx, AVG(x) AS ax, SUM(n) AS sn, AVG(n) AS an, COUNT(x) AS cx FROM m GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	g1, g2 := rs.Rows[0], rs.Rows[1]
	if g1[0] != rdb.Int(1) || g1[1] != rdb.Float(3.75) || g1[2] != rdb.Float(1.875) ||
		g1[3] != rdb.Int(13) || g1[4] != rdb.Float(13.0/3.0) || g1[5] != rdb.Int(2) {
		t.Errorf("group 1 = %v", g1)
	}
	if g2[0] != rdb.Int(2) || g2[1] != rdb.Float(0.5) || g2[3] != rdb.Int(4) || g2[4] != rdb.Float(4) {
		t.Errorf("group 2 = %v", g2)
	}
	// All-NULL input: COUNT 0, SUM/AVG/MIN/MAX NULL — and with no
	// GROUP BY an empty input still yields exactly one row.
	rs, err = Query(db, `SELECT COUNT(x) AS c, SUM(x) AS s, AVG(x) AS a, MIN(x) AS mn, MAX(x) AS mx FROM m WHERE id > 100`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("empty-input rows = %v", rs.Rows)
	}
	row := rs.Rows[0]
	if row[0] != rdb.Int(0) || !row[1].IsNull() || !row[2].IsNull() || !row[3].IsNull() || !row[4].IsNull() {
		t.Errorf("empty-input aggregates = %v", row)
	}
}

// TestNegativeZeroJoinAndProbe guards the key normalization shared by
// the hash-join bucketing and the index encoding: rdb.Compare treats
// -0.0 and 0.0 as equal, so index probes and hash joins must too.
func TestNegativeZeroJoinAndProbe(t *testing.T) {
	db := rdb.NewDatabase("z")
	if _, err := Run(db, `
CREATE TABLE l (id INTEGER PRIMARY KEY, v DOUBLE);
CREATE TABLE r (id INTEGER PRIMARY KEY, v DOUBLE);
`); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, `CREATE TABLE u (id INTEGER PRIMARY KEY, v DOUBLE UNIQUE)`); err != nil {
		t.Fatal(err)
	}
	negZero := math.Copysign(0, -1)
	err := db.Update(func(tx *rdb.Tx) error {
		if err := tx.Insert("l", map[string]rdb.Value{"id": rdb.Int(1), "v": rdb.Float(0)}); err != nil {
			return err
		}
		if err := tx.Insert("r", map[string]rdb.Value{"id": rdb.Int(1), "v": rdb.Float(negZero)}); err != nil {
			return err
		}
		return tx.Insert("u", map[string]rdb.Value{"id": rdb.Int(1), "v": rdb.Float(negZero)})
	}, "l", "r", "u")
	if err != nil {
		t.Fatal(err)
	}
	// Hash join on the unindexed DOUBLE columns: 0.0 must meet -0.0.
	rs, err := Query(db, `SELECT l.id, r.id FROM l JOIN r ON l.v = r.v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Errorf("hash join dropped the -0.0 match: %v", rs.Rows)
	}
	// MatchColumn through a scan (r.v, unindexed) and through the
	// secondary index's encoded keys (u.v, UNIQUE) — both must
	// normalize -0.0 like rdb.Compare does.
	db.View(func(tx *rdb.Tx) error {
		for _, table := range []string{"r", "u"} {
			n := 0
			if err := tx.MatchColumn(table, "v", rdb.Float(0), func(int64, []rdb.Value) bool {
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n != 1 {
				t.Errorf("MatchColumn(%s, 0.0) found %d rows for stored -0.0", table, n)
			}
		}
		return nil
	})
}
