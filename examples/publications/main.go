// Publications: the paper's complete use case end to end. Loads the
// Figure 1 schema and Table 1 mapping, replays the Section 5 and
// Section 7 listings (9, 13, 15, 17, 11), printing the translated SQL
// for each, and finally dumps the RDF view of the database.
package main

import (
	"fmt"
	"log"

	"ontoaccess/internal/core"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
	"ontoaccess/internal/workload"
)

func main() {
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	steps := []struct {
		title   string
		request string
	}{
		{"Listing 13: insert a team", workload.Listing13},
		{"Listing 15: insert the complete data set", workload.Listing15},
		{"Listing 17: delete the author's email", workload.Listing17},
		{"Listing 9 again: re-insert the email (becomes an UPDATE)", workload.Listing9},
		{"Listing 11: MODIFY the email address", workload.Listing11},
	}
	for _, step := range steps {
		fmt.Println("==", step.title)
		res, err := m.ExecuteString(step.request)
		if err != nil {
			log.Fatalf("%s failed: %v", step.title, err)
		}
		for _, sql := range res.SQL() {
			fmt.Println("  ", sql)
		}
		for _, op := range res.Ops {
			if op.Operation == "MODIFY" {
				fmt.Printf("   (MODIFY matched %d binding(s))\n", op.Bindings)
			}
		}
		fmt.Println()
	}

	fmt.Println("== Row counts")
	for _, name := range m.DB().TableNames() {
		n, _ := m.DB().RowCount(name)
		fmt.Printf("  %-20s %d\n", name, n)
	}

	fmt.Println("\n== RDF view of the database")
	g, err := m.Export()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(turtle.Serialize(g, rdf.CommonPrefixes()))

	fmt.Println("\n== SPARQL over the mapped data")
	qr, err := m.Query(workload.Prologue + `
SELECT ?title ?last ?team WHERE {
  ?pub dc:creator ?a ; dc:title ?title .
  ?a foaf:family_name ?last ; ont:team ?t .
  ?t foaf:name ?team .
}`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("translated to:", qr.SQL)
	for _, sol := range qr.Solutions {
		fmt.Printf("  %s by %s (%s)\n", sol["title"].Value, sol["last"].Value, sol["team"].Value)
	}
}
