// Package sqlexec executes parsed SQL statements against the rdb
// engine. It is the binding layer between the textual SQL that
// OntoAccess's translator generates (exactly as the paper's prototype
// emitted SQL strings over JDBC) and the storage kernel.
//
// DML and SELECT statements run inside a caller-provided transaction
// via Exec; Run provides auto-commit execution of whole scripts,
// including DDL.
package sqlexec

import (
	"fmt"
	"strings"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
)

// ResultSet is the outcome of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]rdb.Value
}

// Format renders the result set as an aligned text table.
func (rs *ResultSet) Format() string {
	widths := make([]int, len(rs.Columns))
	for i, c := range rs.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(rs.Rows))
	for r, row := range rs.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.Text()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	for i, c := range rs.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range rs.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Result is the outcome of one statement.
type Result struct {
	// RowsAffected counts inserted/updated/deleted rows for DML.
	RowsAffected int
	// Set holds SELECT results; nil for DML/DDL.
	Set *ResultSet
}

// Exec executes a DML or SELECT statement inside the transaction.
// DDL must go through Run (DDL is auto-commit, as in most RDBMSs).
func Exec(tx *rdb.Tx, stmt sqlparser.Statement) (Result, error) {
	switch st := stmt.(type) {
	case sqlparser.Insert:
		return execInsert(tx, st)
	case sqlparser.Update:
		return execUpdate(tx, st)
	case sqlparser.Delete:
		return execDelete(tx, st)
	case sqlparser.Select:
		rs, err := execSelect(tx, st)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: len(rs.Rows), Set: rs}, nil
	case sqlparser.CreateTable, sqlparser.DropTable:
		return Result{}, fmt.Errorf("sqlexec: DDL statements are auto-commit; use Run")
	default:
		return Result{}, fmt.Errorf("sqlexec: unsupported statement %T", stmt)
	}
}

// SelectFunc executes a SELECT as a cursor inside the caller's
// transaction: head receives the output column names once, then row
// receives each result row in order; row returning false cancels the
// rest of the stream without error. Column names, rows, their order
// and any error are byte-identical to Exec on the same statement.
//
// Plans whose output stage needs every input row before the first
// output one (ORDER BY, aggregation, the naive error-parity baseline)
// materialize internally and replay — for those an execution error
// always surfaces before head is called. Plain unordered plans
// (DISTINCT, OFFSET/LIMIT, deferred-WHERE and reordered plans
// included) stream with O(1) result buffering, so a per-row
// evaluation error can surface mid-stream, after head and a prefix of
// the rows. A cancelled or completed cursor never buffers more than
// the rows already delivered.
//
// The rows are read off tx's MVCC snapshot, which stays pinned (and
// immutable) for the transaction's lifetime: a cursor held open
// across concurrent writers is safe and sees a single consistent
// version. Row slices are owned by the callee only during the row
// call; copy them to retain.
func SelectFunc(tx *rdb.Tx, st sqlparser.Select, head func(cols []string) error, row func(vals []rdb.Value) (bool, error)) error {
	p, err := planSelect(tx, st)
	if err != nil {
		return err
	}
	return p.runStream(tx, head, row)
}

// ExecSQL parses one statement and executes it in the transaction.
func ExecSQL(tx *rdb.Tx, sql string) (Result, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return Result{}, err
	}
	return Exec(tx, stmt)
}

// Query runs a single SELECT inside a read-only view and returns its
// result set.
func Query(db *rdb.Database, sql string) (*ResultSet, error) {
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(sqlparser.Select)
	if !ok {
		return nil, fmt.Errorf("sqlexec: Query requires a SELECT statement")
	}
	var rs *ResultSet
	err = db.View(func(tx *rdb.Tx) error {
		var e error
		rs, e = execSelect(tx, sel)
		return e
	})
	return rs, err
}

// Run executes a whole script in auto-commit mode: each DML statement
// gets its own transaction, DDL applies directly. It stops at the
// first error and returns the per-statement results so far.
func Run(db *rdb.Database, script string) ([]Result, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var results []Result
	for i, stmt := range stmts {
		switch st := stmt.(type) {
		case sqlparser.CreateTable:
			if err := db.CreateTable(st.Schema); err != nil {
				return results, fmt.Errorf("statement %d: %w", i+1, err)
			}
			results = append(results, Result{})
		case sqlparser.DropTable:
			if err := db.DropTable(st.Table); err != nil {
				return results, fmt.Errorf("statement %d: %w", i+1, err)
			}
			results = append(results, Result{})
		default:
			var res Result
			run := func(tx *rdb.Tx) error {
				var e error
				res, e = Exec(tx, stmt)
				return e
			}
			// Each statement declares its write set, so script execution
			// takes only the touched table's lock (SELECTs are lock-free
			// snapshot reads).
			var err error
			switch st := stmt.(type) {
			case sqlparser.Insert:
				err = db.Update(run, st.Table)
			case sqlparser.Update:
				err = db.Update(run, st.Table)
			case sqlparser.Delete:
				err = db.Update(run, st.Table)
			case sqlparser.Select:
				err = db.View(run)
			default:
				err = db.Update(run)
			}
			if err != nil {
				return results, fmt.Errorf("statement %d: %w", i+1, err)
			}
			results = append(results, res)
		}
	}
	return results, nil
}

// RunTx executes a script's DML statements inside one existing
// transaction (DDL is rejected). This is what the OntoAccess
// translator uses: all statements of one SPARQL/Update operation in a
// single transaction, per the paper's atomicity requirement.
func RunTx(tx *rdb.Tx, script string) ([]Result, error) {
	stmts, err := sqlparser.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var results []Result
	for i, stmt := range stmts {
		res, err := Exec(tx, stmt)
		if err != nil {
			return results, fmt.Errorf("statement %d: %w", i+1, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func execInsert(tx *rdb.Tx, st sqlparser.Insert) (Result, error) {
	schema, err := tx.Schema(st.Table)
	if err != nil {
		return Result{}, err
	}
	cols := st.Columns
	if cols == nil {
		cols = make([]string, len(schema.Columns))
		for i, c := range schema.Columns {
			cols[i] = c.Name
		}
	}
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(cols) {
			return Result{}, fmt.Errorf("sqlexec: INSERT into %s: %d values for %d columns",
				st.Table, len(row), len(cols))
		}
		vals := make(map[string]rdb.Value, len(cols))
		for i, c := range cols {
			vals[c] = row[i]
		}
		if err := tx.Insert(st.Table, vals); err != nil {
			return Result{}, err
		}
		n++
	}
	return Result{RowsAffected: n}, nil
}

func execUpdate(tx *rdb.Tx, st sqlparser.Update) (Result, error) {
	schema, err := tx.Schema(st.Table)
	if err != nil {
		return Result{}, err
	}
	type pending struct {
		id  int64
		set map[string]rdb.Value
	}
	var updates []pending
	scanErr := error(nil)
	tx.Scan(st.Table, func(id int64, row []rdb.Value) bool {
		env := singleEnv(st.Table, schema, row)
		if st.Where != nil {
			v, err := evalExpr(env, st.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !isTrue(v) {
				return true
			}
		}
		set := make(map[string]rdb.Value, len(st.Set))
		for _, a := range st.Set {
			v, err := evalExpr(env, a.Value)
			if err != nil {
				scanErr = err
				return false
			}
			set[a.Column] = v
		}
		updates = append(updates, pending{id: id, set: set})
		return true
	})
	if scanErr != nil {
		return Result{}, scanErr
	}
	for _, u := range updates {
		if err := tx.UpdateByID(st.Table, u.id, u.set); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(updates)}, nil
}

func execDelete(tx *rdb.Tx, st sqlparser.Delete) (Result, error) {
	schema, err := tx.Schema(st.Table)
	if err != nil {
		return Result{}, err
	}
	var ids []int64
	scanErr := error(nil)
	tx.Scan(st.Table, func(id int64, row []rdb.Value) bool {
		if st.Where != nil {
			v, err := evalExpr(singleEnv(st.Table, schema, row), st.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !isTrue(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if scanErr != nil {
		return Result{}, scanErr
	}
	for _, id := range ids {
		if err := tx.DeleteByID(st.Table, id); err != nil {
			return Result{}, err
		}
	}
	return Result{RowsAffected: len(ids)}, nil
}
