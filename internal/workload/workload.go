// Package workload provides the paper's publication use case —
// Figure 1 schema, Table 1 mapping, the listing data — and a
// deterministic synthetic generator that scales the same shape up for
// the benchmark suite (the paper's feasibility study uses a handful
// of rows; the B-series experiments need 10²-10⁵).
package workload

import (
	_ "embed"
	"fmt"
	"math/rand"
	"strings"

	"ontoaccess/internal/core"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
)

// MappingTTL is the canonical R3M mapping of the paper's Table 1.
//
//go:embed assets/mapping.ttl
var MappingTTL string

// SchemaSQL is the Figure 1 schema as SQL DDL.
//
//go:embed assets/schema.sql
var SchemaSQL string

// OntologyTTL is the Figure 2 domain ontology (FOAF + DC + ONT terms
// with the domains/ranges the figure draws).
//
//go:embed assets/ontology.ttl
var OntologyTTL string

// Prologue is the PREFIX block shared by the paper's SPARQL/Update
// listings.
const Prologue = `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX ont: <http://example.org/ontology#>
PREFIX ex: <http://example.org/db/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

// Paper listings, verbatim modulo whitespace.
const (
	// Listing9 inserts author6 (Section 5.1 walkthrough).
	Listing9 = Prologue + `
INSERT DATA {
  ex:author6 foaf:title "Mr" ;
      foaf:firstName "Matthias" ;
      foaf:family_name "Hert" ;
      foaf:mbox <mailto:hert@ifi.uzh.ch> ;
      ont:team ex:team5 .
}`

	// Listing11 is the MODIFY replacing Hert's mailbox.
	Listing11 = Prologue + `
MODIFY
DELETE {
  ?x foaf:mbox ?mbox .
}
INSERT {
  ?x foaf:mbox <mailto:hert@example.com> .
}
WHERE {
  ?x rdf:type foaf:Person ;
     foaf:firstName "Matthias" ;
     foaf:family_name "Hert" ;
     foaf:mbox ?mbox .
}`

	// Listing13 inserts team4.
	Listing13 = Prologue + `
INSERT DATA {
  ex:team4 foaf:name "Database Technology" ;
      ont:teamCode "DBTG" .
}`

	// Listing15 inserts the complete data set (all six tables).
	Listing15 = Prologue + `
INSERT DATA {
  ex:pub12 dc:title "Relational..." ;
      ont:pubYear "2009" ;
      ont:pubType ex:pubtype4 ;
      dc:publisher ex:publisher3 ;
      dc:creator ex:author6 .

  ex:author6 foaf:title "Mr" ;
      foaf:firstName "Matthias" ;
      foaf:family_name "Hert" ;
      foaf:mbox <mailto:hert@ifi.uzh.ch> ;
      ont:team ex:team5 .

  ex:team5 foaf:name "Software Engineering" ;
      ont:teamCode "SEAL" .

  ex:pubtype4 ont:type "inproceedings" .

  ex:publisher3 ont:name "Springer" .
}`

	// Listing17 removes author6's email.
	Listing17 = Prologue + `
DELETE DATA {
  ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> .
}`
)

// NewDatabase builds an empty Figure 1 database.
func NewDatabase() (*rdb.Database, error) {
	db := rdb.NewDatabase("publications")
	if _, err := sqlexec.Run(db, SchemaSQL); err != nil {
		return nil, fmt.Errorf("workload: creating schema: %w", err)
	}
	return db, nil
}

// OpenDatabase opens (or creates) a durable Figure 1 database rooted
// at dataDir: prior state is recovered from the checkpoint + WAL, and
// the schema DDL is applied only when nothing was recovered (recovery
// replays the original CREATE TABLEs itself).
func OpenDatabase(dataDir string) (*rdb.Database, bool, error) {
	db, recovered, err := rdb.Open("publications", rdb.Options{DataDir: dataDir})
	if err != nil {
		return nil, false, err
	}
	if !recovered {
		if _, err := sqlexec.Run(db, SchemaSQL); err != nil {
			db.Close()
			return nil, false, fmt.Errorf("workload: creating schema: %w", err)
		}
	}
	return db, recovered, nil
}

// LoadMapping parses the canonical Table 1 mapping.
func LoadMapping() (*r3m.Mapping, error) {
	return r3m.Load(MappingTTL)
}

// NewMediator wires a fresh database with the canonical mapping.
func NewMediator(opts core.Options) (*core.Mediator, error) {
	db, err := NewDatabase()
	if err != nil {
		return nil, err
	}
	mapping, err := LoadMapping()
	if err != nil {
		return nil, err
	}
	return core.New(db, mapping, opts)
}

// NewMediatorWithOptions wires the canonical mapping over a database
// opened with explicit storage options (data directory, shard count,
// snapshot history depth). It reports whether prior durable state was
// recovered; with an empty DataDir it is memory-only and recovered is
// always false.
func NewMediatorWithOptions(opts core.Options, dbOpts rdb.Options) (*core.Mediator, bool, error) {
	db, recovered, err := rdb.Open("publications", dbOpts)
	if err != nil {
		return nil, false, err
	}
	if !recovered {
		if _, err := sqlexec.Run(db, SchemaSQL); err != nil {
			db.Close()
			return nil, false, fmt.Errorf("workload: creating schema: %w", err)
		}
	}
	mapping, err := LoadMapping()
	if err != nil {
		db.Close()
		return nil, false, err
	}
	m, err := core.New(db, mapping, opts)
	if err != nil {
		db.Close()
		return nil, false, err
	}
	return m, recovered, nil
}

// NewPersistentMediator is NewMediator on a durable database rooted
// at dataDir; it reports whether prior state was recovered. Callers
// own the shutdown: m.Close() checkpoints and closes the WAL.
func NewPersistentMediator(dataDir string, opts core.Options) (*core.Mediator, bool, error) {
	db, recovered, err := OpenDatabase(dataDir)
	if err != nil {
		return nil, false, err
	}
	mapping, err := LoadMapping()
	if err != nil {
		db.Close()
		return nil, false, err
	}
	m, err := core.New(db, mapping, opts)
	if err != nil {
		db.Close()
		return nil, false, err
	}
	return m, recovered, nil
}

// Generator produces deterministic synthetic update streams shaped
// like the paper's listings. The same seed yields the same stream, so
// mediator and baseline runs see identical requests.
type Generator struct {
	rng *rand.Rand
	// Pools sized like a real bibliography: few teams/publishers/
	// types, many authors and publications.
	Teams      int
	Publishers int
	PubTypes   int
}

// NewGenerator returns a generator with the default pool sizes.
func NewGenerator(seed int64) *Generator {
	return &Generator{
		rng:        rand.New(rand.NewSource(seed)),
		Teams:      20,
		Publishers: 10,
		PubTypes:   6,
	}
}

var (
	lastNames  = []string{"Hert", "Reif", "Gall", "Bizer", "Auer", "Seaborne", "Erling", "Calvanese", "Keller", "Dayal"}
	firstNames = []string{"Matthias", "Gerald", "Harald", "Chris", "Soeren", "Andy", "Orri", "Diego", "Arthur", "Umeshwar"}
	teamNames  = []string{"Software Engineering", "Database Technology", "Information Systems", "Artificial Intelligence", "Distributed Systems"}
	pubTitles  = []string{"Updating Relational Data", "RDF Views", "Triple Stores Considered", "Mapping Languages", "Mediation Architectures"}
	typeNames  = []string{"inproceedings", "article", "techreport", "book", "phdthesis", "misc"}
)

// SetupRequests returns INSERT DATA requests that create the shared
// pools (teams, publishers, pubtypes); run them once before the
// author/publication stream.
func (g *Generator) SetupRequests() []string {
	var out []string
	for i := 1; i <= g.Teams; i++ {
		out = append(out, fmt.Sprintf(`%s
INSERT DATA {
  ex:team%d foaf:name "%s %d" ;
      ont:teamCode "T%d" .
}`, Prologue, i, teamNames[i%len(teamNames)], i, i))
	}
	for i := 1; i <= g.Publishers; i++ {
		out = append(out, fmt.Sprintf(`%s
INSERT DATA { ex:publisher%d ont:name "Publisher %d" . }`, Prologue, i, i))
	}
	for i := 1; i <= g.PubTypes; i++ {
		out = append(out, fmt.Sprintf(`%s
INSERT DATA { ex:pubtype%d ont:type "%s" . }`, Prologue, i, typeNames[(i-1)%len(typeNames)]))
	}
	return out
}

// AuthorInsert builds the INSERT DATA for author i (Listing 9 shape).
func (g *Generator) AuthorInsert(i int) string {
	team := g.rng.Intn(g.Teams) + 1
	return fmt.Sprintf(`%s
INSERT DATA {
  ex:author%d foaf:title "Dr" ;
      foaf:firstName "%s" ;
      foaf:family_name "%s%d" ;
      foaf:mbox <mailto:a%d@example.org> ;
      ont:team ex:team%d .
}`, Prologue, i,
		firstNames[g.rng.Intn(len(firstNames))],
		lastNames[g.rng.Intn(len(lastNames))], i, i, team)
}

// PublicationInsert builds a Listing 15-shaped INSERT DATA: one
// publication linked to an existing author (both pool entities must
// exist).
func (g *Generator) PublicationInsert(pubID, authorID int) string {
	return fmt.Sprintf(`%s
INSERT DATA {
  ex:pub%d dc:title "%s %d" ;
      ont:pubYear "%d" ;
      ont:pubType ex:pubtype%d ;
      dc:publisher ex:publisher%d ;
      dc:creator ex:author%d .
}`, Prologue, pubID,
		pubTitles[g.rng.Intn(len(pubTitles))], pubID,
		2000+g.rng.Intn(10),
		g.rng.Intn(g.PubTypes)+1,
		g.rng.Intn(g.Publishers)+1,
		authorID)
}

// EmailDelete builds a Listing 17-shaped DELETE DATA for author i.
func (g *Generator) EmailDelete(i int) string {
	return fmt.Sprintf(`%s
DELETE DATA { ex:author%d foaf:mbox <mailto:a%d@example.org> . }`, Prologue, i, i)
}

// EmailModify builds a Listing 11-shaped MODIFY for author i.
func (g *Generator) EmailModify(i int) string {
	return fmt.Sprintf(`%s
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:new%d@example.org> . }
WHERE { ?x foaf:mbox ?m . FILTER (STR(?m) = "mailto:a%d@example.org") }`, Prologue, i, i)
}

// EmailModifyBGP is EmailModify with a pure BGP WHERE (translatable
// to a single SELECT, the paper's Algorithm 2 path).
func (g *Generator) EmailModifyBGP(i int) string {
	return fmt.Sprintf(`%s
MODIFY
DELETE { ex:author%d foaf:mbox ?m . }
INSERT { ex:author%d foaf:mbox <mailto:new%d@example.org> . }
WHERE { ex:author%d foaf:mbox ?m . }`, Prologue, i, i, i, i)
}

// Stream produces a mixed update stream of n requests over a universe
// of maxAuthor authors: 60% author inserts, 25% publication inserts,
// 10% modifies, 5% deletes — roughly the write mix of a bibliography
// system ingesting new records.
func (g *Generator) Stream(n, startID int) []string {
	var out []string
	pubID := startID
	var insertedAuthors []int
	for len(out) < n {
		r := g.rng.Float64()
		switch {
		case r < 0.60 || len(insertedAuthors) == 0:
			id := startID + len(insertedAuthors)
			insertedAuthors = append(insertedAuthors, id)
			out = append(out, g.AuthorInsert(id))
		case r < 0.85:
			pubID++
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, g.PublicationInsert(pubID+1000000, author))
		case r < 0.95:
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, g.EmailModifyBGP(author))
		default:
			// Re-inserting an email then deleting keeps the stream
			// valid regardless of prior modifies: delete the freshest
			// known address via MODIFY instead.
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, fmt.Sprintf(`%s
MODIFY
DELETE { ex:author%d foaf:mbox ?m . }
INSERT { }
WHERE { ex:author%d foaf:mbox ?m . }`, Prologue, author, author))
		}
	}
	return out
}

// ModifyHeavyStream produces an update stream dominated by MODIFY:
// 30% author inserts, 55% mailbox-rotating BGP MODIFYs, 10% delete
// MODIFYs, 5% publication inserts — the richest per-request workload
// the compiled MODIFY pipeline serves (the B7 MODIFY-mix experiment).
func (g *Generator) ModifyHeavyStream(n, startID int) []string {
	var out []string
	pubID := startID
	var insertedAuthors []int
	seq := 0
	for len(out) < n {
		r := g.rng.Float64()
		switch {
		case r < 0.30 || len(insertedAuthors) == 0:
			id := startID + len(insertedAuthors)
			insertedAuthors = append(insertedAuthors, id)
			out = append(out, g.AuthorInsert(id))
		case r < 0.85:
			seq++
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, fmt.Sprintf(`%s
MODIFY
DELETE { ex:author%d foaf:mbox ?m . }
INSERT { ex:author%d foaf:mbox <mailto:rot%d_%d@example.org> . }
WHERE { ex:author%d foaf:mbox ?m . }`, Prologue, author, author, author, seq, author))
		case r < 0.95:
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, fmt.Sprintf(`%s
MODIFY
DELETE { ex:author%d foaf:mbox ?m . }
INSERT { }
WHERE { ex:author%d foaf:mbox ?m . }`, Prologue, author, author))
		default:
			pubID++
			author := insertedAuthors[g.rng.Intn(len(insertedAuthors))]
			out = append(out, g.PublicationInsert(pubID+1000000, author))
		}
	}
	return out
}

// CountRequestKinds summarizes a stream for reporting.
func CountRequestKinds(stream []string) map[string]int {
	out := map[string]int{}
	for _, s := range stream {
		switch {
		case strings.Contains(s, "MODIFY"):
			out["MODIFY"]++
		case strings.Contains(s, "DELETE DATA"):
			out["DELETE DATA"]++
		default:
			out["INSERT DATA"]++
		}
	}
	return out
}
