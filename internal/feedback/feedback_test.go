package feedback

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/turtle"
)

func TestViolationErrorMessage(t *testing.T) {
	v := &Violation{
		Constraint: "ForeignKey",
		Table:      "author", Column: "team",
		Subject:  "http://example.org/db/author6",
		Property: "http://example.org/ontology#team",
		Value:    "5", RefTable: "team",
		Hint: "insert the referenced entity first",
	}
	msg := v.Error()
	for _, want := range []string{"ForeignKey violation", "author.team",
		"<http://example.org/db/author6>", "\"5\"", "referencing team",
		"insert the referenced entity first"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q missing %q", msg, want)
		}
	}
	// Minimal violation renders too.
	minimal := &Violation{Constraint: "Mapping"}
	if minimal.Error() != "Mapping violation" {
		t.Errorf("minimal = %q", minimal.Error())
	}
}

func TestFromConstraintErrorKinds(t *testing.T) {
	cases := []struct {
		kind rdb.ConstraintKind
		name string
		hint string
	}{
		{rdb.ViolationNotNull, "NotNull", "mandatory"},
		{rdb.ViolationPrimaryKey, "PrimaryKey", "fresh instance URI"},
		{rdb.ViolationForeignKey, "ForeignKey", "referenced entity"},
		{rdb.ViolationUnique, "Unique", "already in use"},
		{rdb.ViolationType, "Type", "column type"},
		{rdb.ViolationRestrict, "Restrict", "referencing entities"},
	}
	for _, tc := range cases {
		ce := &rdb.ConstraintError{Kind: tc.kind, Table: "t", Column: "c", Value: rdb.Int(1)}
		v := FromConstraintError(ce, "http://e/s", "http://o/p")
		if v.Constraint != tc.name {
			t.Errorf("kind %v -> %q, want %q", tc.kind, v.Constraint, tc.name)
		}
		if !strings.Contains(v.Hint, tc.hint) {
			t.Errorf("%s hint %q missing %q", tc.name, v.Hint, tc.hint)
		}
		if v.Subject != "http://e/s" || v.Property != "http://o/p" || v.Value != "1" {
			t.Errorf("context lost: %+v", v)
		}
	}
	// Constraint names must be IRI-safe (used in fb:<name>Violation).
	for _, tc := range cases {
		if strings.ContainsAny(tc.name, " -") {
			t.Errorf("constraint name %q is not IRI-safe", tc.name)
		}
	}
}

func TestSuccessAndFailureReports(t *testing.T) {
	s := Success("INSERT DATA", []string{"INSERT INTO t (id) VALUES (1);"})
	if !s.OK || len(s.SQL) != 1 {
		t.Errorf("success = %+v", s)
	}
	// Failure from a violation keeps the structure.
	v := &Violation{Constraint: "NotNull", Table: "author", Column: "lastname"}
	f := Failure("INSERT DATA", v, nil)
	if f.OK || len(f.Violations) != 1 || f.Violations[0] != v {
		t.Errorf("failure = %+v", f)
	}
	// Failure from a wrapped constraint error lifts it.
	ce := &rdb.ConstraintError{Kind: rdb.ViolationUnique, Table: "t", Column: "email"}
	f = Failure("INSERT DATA", fmt.Errorf("statement 2: %w", ce), []string{"sql1"})
	if len(f.Violations) != 1 || f.Violations[0].Constraint != "Unique" {
		t.Errorf("failure from wrapped error = %+v", f)
	}
	// Failure from a plain error has no violations but a message.
	f = Failure("parse", errors.New("boom"), nil)
	if len(f.Violations) != 0 || f.Message != "boom" {
		t.Errorf("plain failure = %+v", f)
	}
}

func TestReportGraphAndTurtle(t *testing.T) {
	v := &Violation{
		Constraint: "ForeignKey", Table: "author", Column: "team",
		Subject: "http://e/author6", Property: "http://o/team",
		Value: "5", RefTable: "team", Hint: "do the thing",
	}
	r := Failure("INSERT DATA", v, []string{"INSERT INTO x (id) VALUES (1);"})
	g := r.Graph()
	if g.Len() == 0 {
		t.Fatal("empty graph")
	}
	ttl := r.Turtle()
	for _, want := range []string{
		"fb:Failure", "fb:ForeignKeyViolation", "fb:hasViolation",
		`fb:operation "INSERT DATA"`, `fb:table "author"`, `fb:column "team"`,
		`fb:referencedTable "team"`, `fb:hint "do the thing"`,
		"fb:subject <http://e/author6>", "fb:property <http://o/team>",
		"fb:translatedStatement",
	} {
		if !strings.Contains(ttl, want) {
			t.Errorf("Turtle missing %q:\n%s", want, ttl)
		}
	}
	// The report must be parseable RDF.
	if _, _, err := turtle.Parse(ttl); err != nil {
		t.Errorf("report Turtle does not parse: %v\n%s", err, ttl)
	}
}

func TestSuccessReportTurtle(t *testing.T) {
	r := Success("request", []string{"UPDATE t SET a = 1;"})
	ttl := r.Turtle()
	if !strings.Contains(ttl, "fb:Success") || !strings.Contains(ttl, "UPDATE t SET a = 1;") {
		t.Errorf("success Turtle:\n%s", ttl)
	}
	if _, _, err := turtle.Parse(ttl); err != nil {
		t.Errorf("success Turtle does not parse: %v", err)
	}
}

func TestViolationAsError(t *testing.T) {
	var err error = &Violation{Constraint: "NotNull"}
	var v *Violation
	if !errors.As(err, &v) {
		t.Error("errors.As must find *Violation")
	}
	wrapped := fmt.Errorf("op failed: %w", err)
	if !errors.As(wrapped, &v) {
		t.Error("errors.As must unwrap")
	}
}
