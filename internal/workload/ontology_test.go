package workload

import (
	"testing"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
)

// TestFigure2Ontology verifies the encoded Figure 2: the five domain
// classes, the property set per class, and the property kinds.
func TestFigure2Ontology(t *testing.T) {
	g, _, err := turtle.Parse(OntologyTTL)
	if err != nil {
		t.Fatalf("parsing ontology: %v", err)
	}
	const (
		foaf = "http://xmlns.com/foaf/0.1/"
		dc   = "http://purl.org/dc/elements/1.1/"
		ont  = "http://example.org/ontology#"
		owl  = "http://www.w3.org/2002/07/owl#"
		rdfs = "http://www.w3.org/2000/01/rdf-schema#"
	)
	typ := rdf.IRI(rdf.RDFType)
	isA := func(subj, class string) bool {
		return g.Contains(rdf.NewTriple(rdf.IRI(subj), typ, rdf.IRI(class)))
	}
	for _, class := range []string{foaf + "Document", foaf + "Person", foaf + "Group",
		ont + "Publisher", ont + "PubType"} {
		if !isA(class, owl+"Class") {
			t.Errorf("class %s missing from Figure 2 encoding", class)
		}
	}
	domains := map[string]string{
		dc + "title":         foaf + "Document",
		ont + "pubYear":      foaf + "Document",
		ont + "pubType":      foaf + "Document",
		dc + "publisher":     foaf + "Document",
		dc + "creator":       foaf + "Document",
		foaf + "title":       foaf + "Person",
		foaf + "mbox":        foaf + "Person",
		foaf + "firstName":   foaf + "Person",
		foaf + "family_name": foaf + "Person",
		ont + "team":         foaf + "Person",
		foaf + "name":        foaf + "Group",
		ont + "teamCode":     foaf + "Group",
		ont + "name":         ont + "Publisher",
		ont + "type":         ont + "PubType",
	}
	for prop, domain := range domains {
		if !g.Contains(rdf.NewTriple(rdf.IRI(prop), rdf.IRI(rdfs+"domain"), rdf.IRI(domain))) {
			t.Errorf("property %s lacks domain %s", prop, domain)
		}
	}
	objectProps := []string{ont + "pubType", dc + "publisher", dc + "creator", foaf + "mbox", ont + "team"}
	for _, p := range objectProps {
		if !isA(p, owl+"ObjectProperty") {
			t.Errorf("%s must be an ObjectProperty (Figure 2 arrows to classes/IRIs)", p)
		}
	}
}

// TestMappingAgreesWithOntology cross-checks Table 1 against Figure
// 2: every class and property the mapping uses is declared in the
// ontology, with matching object/data property kinds.
func TestMappingAgreesWithOntology(t *testing.T) {
	g, _, err := turtle.Parse(OntologyTTL)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := LoadMapping()
	if err != nil {
		t.Fatal(err)
	}
	typ := rdf.IRI(rdf.RDFType)
	const owl = "http://www.w3.org/2002/07/owl#"
	for _, tm := range mapping.Tables {
		if !g.Contains(rdf.NewTriple(tm.Class, typ, rdf.IRI(owl+"Class"))) {
			t.Errorf("mapped class %s not declared in the ontology", tm.Class)
		}
		for _, am := range tm.Attributes {
			if am.Property.IsZero() {
				continue
			}
			wantKind := owl + "DatatypeProperty"
			if am.IsObject {
				wantKind = owl + "ObjectProperty"
			}
			if !g.Contains(rdf.NewTriple(am.Property, typ, rdf.IRI(wantKind))) {
				t.Errorf("mapped property %s is not a %s in the ontology", am.Property, wantKind)
			}
		}
	}
	for _, lt := range mapping.LinkTables {
		if !g.Contains(rdf.NewTriple(lt.Property, typ, rdf.IRI(owl+"ObjectProperty"))) {
			t.Errorf("link property %s is not an ObjectProperty", lt.Property)
		}
	}
}
