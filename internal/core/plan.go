package core

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sqlgen"
	"ontoaccess/internal/update"
)

// This file implements the compiled-plan pipeline. An UpdatePlan is
// the reusable artifact of Algorithm 1's shape-level work — parse,
// identify-table, mapping-level constraint checks, SQL statement
// generation and foreign-key sorting — compiled once per request
// shape and re-executed with fresh parameter bindings. Repeated
// INSERT DATA / DELETE DATA requests of the same shape skip straight
// to parameter binding, existence probes and direct storage
// operations (no SQL re-parsing), inside a transaction that locks
// only the plan's tables (rdb.BeginWrite), so writers on disjoint
// tables run in parallel.
//
// The data-dependent parts of Algorithm 1 cannot be compiled away and
// stay in the executor: the INSERT-vs-UPDATE existence probe, the
// DELETE DATA covers-all-remaining analysis, and every storage-level
// constraint check.

// errUnplannable marks an operation whose shape the compiler does not
// support; the caller falls back to the uncompiled path, which either
// handles it or produces the authoritative error feedback.
var errUnplannable = errors.New("core: operation is not plannable")

// errPlanStale marks a bound execution whose parameters broke a
// shape-level assumption (e.g. a subject URI that now identifies a
// different table). The caller re-executes through the uncompiled
// path.
var errPlanStale = errors.New("core: plan is stale for these parameters")

// ---- LRU cache ----------------------------------------------------

// CacheStats reports plan/parse cache effectiveness.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Size                    int
}

type lruEntry[V any] struct {
	key string
	val V
}

// lruCache is a concurrency-safe LRU map used for the plan cache and
// the parse memo.
type lruCache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element
	stats    CacheStats
}

func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(lruEntry[V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

func (c *lruCache[V]) put(key string, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = lruEntry[V]{key: key, val: v}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(lruEntry[V]{key: key, val: v})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(lruEntry[V]).key)
		c.stats.Evictions++
	}
}

func (c *lruCache[V]) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.ll.Len()
	return s
}

// ---- plan representation -------------------------------------------

// convKind selects the bind-time conversion of a parameterized
// lexical form into a column value.
type convKind uint8

const (
	convConst       convKind = iota // value precomputed at compile time
	convLiteral                     // literal lexical -> column type
	convIRIPrefix                   // IRI with ValuePrefix stripped
	convKey                         // instance URI -> referenced key
	convFilterNum                   // numeric FILTER constant -> Int/Float
	convFilterCanon                 // string-family FILTER constant -> canonical column value
)

// valueSrc produces one column value at bind time.
type valueSrc struct {
	segs     []shapeSeg // nil: constant lexical (raw)
	raw      string     // compile-time lexical form
	conv     convKind
	constVal rdb.Value
	col      *rdb.Column
	refTM    *r3m.TableMap
	refSch   *rdb.TableSchema
	prefix   string
	prop     string
}

func (v *valueSrc) lexical(args []string) string {
	if v.segs == nil {
		return v.raw
	}
	return bindSegs(v.segs, args)
}

// bind converts the source into a column value, mirroring the
// uncompiled path's conversions and feedback exactly.
func (m *Mediator) bindValue(v *valueSrc, subject string, args []string) (rdb.Value, error) {
	switch v.conv {
	case convConst:
		return v.constVal, nil
	case convLiteral:
		return literalToValue(rdf.Literal(v.lexical(args)), v.col, subject, v.prop)
	case convIRIPrefix:
		val := v.lexical(args)
		if v.prefix != "" {
			if !strings.HasPrefix(val, v.prefix) {
				return rdb.Null, &feedback.Violation{
					Constraint: "Mapping", Subject: subject, Property: v.prop, Value: val,
					Hint: fmt.Sprintf("object IRIs for this property must start with %q", v.prefix),
				}
			}
			val = strings.TrimPrefix(val, v.prefix)
		}
		return rdb.String_(val), nil
	case convKey:
		uri := v.lexical(args)
		tm, vals, err := m.mapping.IdentifyTable(uri)
		if err != nil || tm != v.refTM {
			return rdb.Null, &feedback.Violation{
				Constraint: "Mapping", Subject: subject, Property: v.prop, Value: uri,
				RefTable: v.refTM.Name,
				Hint:     fmt.Sprintf("the object URI must match the %q URI pattern %q", v.refTM.Name, v.refTM.URIPattern),
			}
		}
		return m.keyValueFromPattern(v.refSch, vals, subject, v.prop)
	case convFilterNum:
		// A FILTER constant that no longer parses numerically (or, for
		// convFilterCanon, is no longer canonical) makes the bound plan
		// stale, never wrong: the uncompiled path re-decides from
		// scratch.
		if val, ok := filterNumericValue(v.lexical(args)); ok {
			return val, nil
		}
		return rdb.Null, errPlanStale
	case convFilterCanon:
		if val, ok := filterCanonValue(v.lexical(args), v.col); ok {
			return val, nil
		}
		return rdb.Null, errPlanStale
	}
	return rdb.Null, fmt.Errorf("core: unknown conversion")
}

// subjectSrc reconstructs a group's subject URI and primary key.
type subjectSrc struct {
	// occurrences holds the seg template of every triple whose subject
	// belongs to this group; bind verifies they agree.
	occurrences [][]shapeSeg
	constURI    string    // set when the subject carries no slots
	constPK     rdb.Value // precomputed key for constant subjects
}

// attrPlan is one mapped attribute supplied by the request shape.
type attrPlan struct {
	name string
	col  *rdb.Column
	am   *r3m.AttributeMap
	prop string
	val  valueSrc
}

// linkPlan is one link-table triple of the shape.
type linkPlan struct {
	lt   *r3m.LinkTableMap
	prop string
	obj  valueSrc
}

// groupPlan is the compiled form of one subject group (Algorithm 1
// steps one to four for that group).
type groupPlan struct {
	tm      *r3m.TableMap
	schema  *rdb.TableSchema
	pkName  string
	subject subjectSrc
	// attrs in schema column order (INSERT); sortedAttrs indexes attrs
	// in column-name order (UPDATE SET, DELETE analysis).
	attrs       []attrPlan
	sortedAttrs []int
	links       []linkPlan
	hasType     bool
	// missingMandatory is the first NotNull-without-default attribute
	// the shape does not supply; INSERT DATA rejects the group with it
	// when the entity does not already exist (the check is shape-level
	// but only applies on the INSERT branch).
	missingMandatory *r3m.AttributeMap
}

// UpdatePlan is a compiled SPARQL/Update data operation: the
// post-parse, post-identify, post-constraint-check artifact of
// Algorithm 1, keyed on the request shape and re-executable with
// fresh parameter bindings.
//
// Plans pin schema pointers and table ranks captured at compile
// time. Like the mapping itself — validated against the schema once,
// in New — they assume the mediated tables are not dropped or
// re-created while the mediator is live; DDL on a mediated database
// is unsupported after construction.
type UpdatePlan struct {
	key   string
	kind  string // "INSERT DATA" or "DELETE DATA"
	slots int
	// writeTables is the exact write lock set for execution; lockSig
	// is its precomputed scheduler routing key.
	writeTables []string
	lockSig     string
	// shardable marks the write tables eligible for keyed (shard)
	// write locks — single-column primary key, no non-key UNIQUE
	// column, no self-referencing foreign key (rdb.ShardableTable).
	// Bound executions narrow those tables' locks to the shards their
	// primary keys hash to; the rest stay whole-table.
	shardable map[string]bool
	// topoPos ranks tables parents-first for statement sorting
	// (Algorithm 1 step five), precomputed from the schema.
	topoPos map[string]int
	groups  []*groupPlan
}

// Kind returns the operation kind the plan compiles.
func (p *UpdatePlan) Kind() string { return p.kind }

// Key returns the normalized request shape the plan is cached under.
func (p *UpdatePlan) Key() string { return p.key }

// Slots returns the number of parameter slots.
func (p *UpdatePlan) Slots() int { return p.slots }

// Tables returns the tables the plan writes.
func (p *UpdatePlan) Tables() []string {
	out := make([]string, len(p.writeTables))
	copy(out, p.writeTables)
	return out
}

// Explain renders the plan's statement templates with ?n parameter
// markers, in compile order (the executor sorts the instantiated
// statements along foreign-key dependencies).
func (p *UpdatePlan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s plan: %d group(s), %d slot(s), writes %s\n",
		p.kind, len(p.groups), p.slots, strings.Join(p.writeTables, ", "))
	for _, g := range p.groups {
		fmt.Fprintf(&b, "  %s[%s=%s]:", g.tm.Name, g.pkName, g.subject.describe())
		for _, a := range g.attrs {
			fmt.Fprintf(&b, " %s=%s", a.name, a.val.describe())
		}
		for _, l := range g.links {
			fmt.Fprintf(&b, " link %s(%s)", l.lt.Name, l.obj.describe())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (v *valueSrc) describe() string {
	if v.segs == nil {
		return v.raw
	}
	var b strings.Builder
	for _, s := range v.segs {
		if s.slot < 0 {
			b.WriteString(s.lit)
		} else {
			fmt.Fprintf(&b, "?%d", s.slot)
		}
	}
	return b.String()
}

func (s *subjectSrc) describe() string {
	if len(s.occurrences) == 0 {
		return s.constURI
	}
	v := valueSrc{segs: s.occurrences[0]}
	return v.describe()
}

// ---- compilation ---------------------------------------------------

// schemaFn resolves a table schema during plan compilation. Outside a
// transaction it is Database.Schema; inside one (per-binding MODIFY
// compiles) it must be backed by the open transaction — the
// database-level accessor re-takes the catalog lock this goroutine
// already holds shared, and a queued DDL writer would deadlock the
// recursive read-lock.
type schemaFn func(name string) (*rdb.TableSchema, bool)

// txSchema adapts an open transaction to schemaFn.
func txSchema(tx *rdb.Tx) schemaFn {
	return func(name string) (*rdb.TableSchema, bool) {
		s, err := tx.Schema(name)
		return s, err == nil
	}
}

// compileDataPlan builds an UpdatePlan from the normalized triples of
// an INSERT DATA / DELETE DATA operation. Shapes the compiler cannot
// prove equivalent to the uncompiled path return errUnplannable;
// shapes that are invalid per se also return errUnplannable so the
// uncompiled path produces the authoritative violation feedback.
func (m *Mediator) compileDataPlan(kind, key string, slots int, nts []normTriple, lookupSchema schemaFn) (*UpdatePlan, error) {
	p := &UpdatePlan{key: key, kind: kind, slots: slots, topoPos: m.topoPos}
	if p.topoPos == nil {
		return nil, errUnplannable
	}
	byURI := make(map[string]*groupPlan)
	var order []string
	for _, nt := range nts {
		uri := nt.s.term.Value
		g := byURI[uri]
		if g == nil {
			tm, _, err := m.mapping.IdentifyTable(uri)
			if err != nil {
				return nil, errUnplannable
			}
			schema, ok := lookupSchema(tm.Name)
			if !ok || len(schema.PrimaryKey) != 1 {
				return nil, errUnplannable
			}
			// A self-referencing foreign key makes same-table statement
			// order significant, which plan re-binding does not preserve.
			for _, fk := range schema.ForeignKeys {
				if strings.EqualFold(fk.RefTable, tm.Name) {
					return nil, errUnplannable
				}
			}
			g = &groupPlan{tm: tm, schema: schema, pkName: schema.PrimaryKey[0]}
			if nt.s.segs == nil {
				pk, err := m.constSubjectKey(g, uri)
				if err != nil {
					return nil, errUnplannable
				}
				g.subject.constURI = uri
				g.subject.constPK = pk
			}
			byURI[uri] = g
			order = append(order, uri)
		}
		if nt.s.segs != nil {
			g.subject.occurrences = append(g.subject.occurrences, nt.s.segs)
		} else if g.subject.constURI != uri {
			return nil, errUnplannable
		}
		if err := m.compileTriple(g, nt, lookupSchema); err != nil {
			return nil, err
		}
	}
	// Deterministic group order: sort by compile-time subject, like
	// groupTriples does. (Bind-time subjects of different groups never
	// collide — the executor verifies that.)
	sort.Strings(order)
	for _, uri := range order {
		g := byURI[uri]
		g.finishAttrOrder()
		p.groups = append(p.groups, g)
	}
	if kind == "INSERT DATA" {
		// Algorithm 1's mandatory-attribute check is shape-level — it
		// depends only on which properties the request supplies — but
		// it applies only when the entity does not exist yet (the
		// INSERT branch). Record the first missing mandatory attribute
		// here; the executor raises the violation on that branch.
		for _, g := range p.groups {
			g.missingMandatory = firstMissingMandatory(g.tm, g.suppliesAttr)
		}
	}
	seen := map[string]bool{}
	for _, g := range p.groups {
		if !seen[g.tm.Name] {
			seen[g.tm.Name] = true
			p.writeTables = append(p.writeTables, g.tm.Name)
		}
		for _, l := range g.links {
			if !seen[l.lt.Name] {
				seen[l.lt.Name] = true
				p.writeTables = append(p.writeTables, l.lt.Name)
			}
		}
	}
	sort.Strings(p.writeTables)
	p.lockSig = lockSignature(p.writeTables, nil)
	for _, t := range p.writeTables {
		if m.db.ShardableTable(t) {
			if p.shardable == nil {
				p.shardable = make(map[string]bool, len(p.writeTables))
			}
			p.shardable[t] = true
		}
	}
	return p, nil
}

// constSubjectKey precomputes the primary key of a constant subject.
func (m *Mediator) constSubjectKey(g *groupPlan, uri string) (rdb.Value, error) {
	_, vals, err := m.mapping.IdentifyTable(uri)
	if err != nil {
		return rdb.Null, err
	}
	return m.keyValueFromPattern(g.schema, vals, uri, "")
}

// compileTriple folds one triple into its group plan, mirroring
// partitionGroup.
func (m *Mediator) compileTriple(g *groupPlan, nt normTriple, lookupSchema schemaFn) error {
	prop := nt.p.Value
	if prop == rdf.RDFType {
		if nt.o.term != g.tm.Class {
			return errUnplannable // the uncompiled path reports the violation
		}
		g.hasType = true
		return nil
	}
	if lt, ok := m.mapping.LinkTableForProperty(nt.p); ok {
		subjRef, _ := lt.SubjectAttr.ForeignKeyRef()
		subjTM, _ := m.mapping.ResolveTableRef(subjRef)
		if subjTM == nil || subjTM.Name != g.tm.Name {
			return errUnplannable
		}
		objRef, _ := lt.ObjectAttr.ForeignKeyRef()
		objTM, _ := m.mapping.ResolveTableRef(objRef)
		if objTM == nil {
			return errUnplannable
		}
		objSchema, ok := lookupSchema(objTM.Name)
		if !ok {
			return errUnplannable
		}
		src, err := m.compileValueSrc(nt.o, nil, nil, objTM, objSchema, prop)
		if err != nil {
			return err
		}
		g.links = append(g.links, linkPlan{lt: lt, prop: prop, obj: *src})
		return nil
	}
	am, ok := g.tm.AttributeForProperty(nt.p)
	if !ok {
		return errUnplannable
	}
	col, ok := g.schema.Column(am.Name)
	if !ok {
		return errUnplannable
	}
	var src *valueSrc
	var err error
	if ref, isFK := am.ForeignKeyRef(); isFK {
		refTM, found := m.mapping.ResolveTableRef(ref)
		if !found {
			return errUnplannable
		}
		refSchema, ok := lookupSchema(refTM.Name)
		if !ok {
			return errUnplannable
		}
		src, err = m.compileValueSrc(nt.o, nil, nil, refTM, refSchema, prop)
	} else if am.IsObject {
		src, err = m.compileValueSrc(nt.o, nil, am, nil, nil, prop)
	} else {
		src, err = m.compileValueSrc(nt.o, col, nil, nil, nil, prop)
	}
	if err != nil {
		return err
	}
	// The relational model stores one value per attribute; shapes that
	// mention an attribute twice need value comparison, which is
	// data-dependent — leave them to the uncompiled path.
	for _, a := range g.attrs {
		if a.name == am.Name {
			return errUnplannable
		}
	}
	g.attrs = append(g.attrs, attrPlan{name: am.Name, col: col, am: am, prop: prop, val: *src})
	return nil
}

// compileValueSrc builds the value source for an object term. Exactly
// one of col (data literal), am (IRI-valued attribute) or refTM/refSch
// (foreign key / link object) is set.
func (m *Mediator) compileValueSrc(o normTerm, col *rdb.Column, am *r3m.AttributeMap, refTM *r3m.TableMap, refSch *rdb.TableSchema, prop string) (*valueSrc, error) {
	src := &valueSrc{raw: o.term.Value, segs: o.segs, prop: prop}
	switch {
	case refTM != nil:
		if !o.term.IsIRI() {
			return nil, errUnplannable
		}
		src.conv = convKey
		src.refTM = refTM
		src.refSch = refSch
	case am != nil:
		if !o.term.IsIRI() {
			return nil, errUnplannable
		}
		src.conv = convIRIPrefix
		src.prefix = am.ValuePrefix
	default:
		if !o.term.IsLiteral() {
			return nil, errUnplannable
		}
		src.conv = convLiteral
		src.col = col
	}
	if o.segs == nil {
		v, err := m.bindValue(src, "", nil)
		if err != nil {
			return nil, errUnplannable
		}
		src.conv = convConst
		src.constVal = v
	}
	return src, nil
}

// finishAttrOrder orders attrs by schema column position (the INSERT
// column order) and records the name-sorted view.
func (g *groupPlan) finishAttrOrder() {
	sort.SliceStable(g.attrs, func(i, j int) bool {
		return g.schema.ColumnIndex(g.attrs[i].name) < g.schema.ColumnIndex(g.attrs[j].name)
	})
	g.sortedAttrs = make([]int, len(g.attrs))
	for i := range g.attrs {
		g.sortedAttrs[i] = i
	}
	sort.Slice(g.sortedAttrs, func(i, j int) bool {
		return g.attrs[g.sortedAttrs[i]].name < g.attrs[g.sortedAttrs[j]].name
	})
}

// suppliesAttr reports whether the shape supplies the named
// attribute (the `supplied` predicate for firstMissingMandatory and
// coversRemaining).
func (g *groupPlan) suppliesAttr(name string) bool {
	for _, a := range g.attrs {
		if a.name == name {
			return true
		}
	}
	return false
}

// ---- execution -----------------------------------------------------

// boundGroup is a group plan instantiated with one argument vector.
type boundGroup struct {
	g    *groupPlan
	uri  string
	pk   rdb.Value
	vals []rdb.Value // aligned with g.attrs
	objs []rdb.Value // aligned with g.links
}

// bindGroups instantiates every group, verifying the shape-level
// assumptions that re-binding could break: all subject occurrences of
// a group agree, distinct groups stay distinct, and every subject
// still identifies the compiled table.
func (p *UpdatePlan) bindGroups(m *Mediator, args []string) ([]boundGroup, error) {
	if len(args) != p.slots {
		return nil, errPlanStale
	}
	bound := make([]boundGroup, len(p.groups))
	seen := make(map[string]bool, len(p.groups))
	for gi, g := range p.groups {
		bg := boundGroup{g: g}
		if len(g.subject.occurrences) == 0 {
			bg.uri = g.subject.constURI
			bg.pk = g.subject.constPK
		} else {
			bg.uri = bindSegs(g.subject.occurrences[0], args)
			for _, occ := range g.subject.occurrences[1:] {
				if bindSegs(occ, args) != bg.uri {
					return nil, errPlanStale
				}
			}
			tm, vals, err := m.mapping.IdentifyTable(bg.uri)
			if err != nil {
				return nil, &feedback.Violation{
					Constraint: "Mapping", Subject: bg.uri,
					Hint: "the subject URI matches no table mapping; check the URI pattern and prefix",
				}
			}
			if tm != g.tm {
				return nil, errPlanStale
			}
			pk, err := m.keyValueFromPattern(g.schema, vals, bg.uri, "")
			if err != nil {
				return nil, err
			}
			bg.pk = pk
		}
		if seen[bg.uri] {
			return nil, errPlanStale
		}
		seen[bg.uri] = true
		bg.vals = make([]rdb.Value, len(g.attrs))
		for ai := range g.attrs {
			v, err := m.bindValue(&g.attrs[ai].val, bg.uri, args)
			if err != nil {
				return nil, err
			}
			bg.vals[ai] = v
		}
		bg.objs = make([]rdb.Value, len(g.links))
		for li := range g.links {
			v, err := m.bindValue(&g.links[li].obj, bg.uri, args)
			if err != nil {
				return nil, err
			}
			bg.objs[li] = v
		}
		bound[gi] = bg
	}
	return bound, nil
}

// planStmt is one instantiated statement awaiting sorted execution.
type planStmt struct {
	sql     string
	table   string
	kind    stmtKind
	subject string
	seq     int
	apply   func(tx *rdb.Tx) (int, error)
}

// sortPlanStmts applies Algorithm 1 step five using the precomputed
// table ranks (the shared sorter in sort.go).
func (p *UpdatePlan) sortPlanStmts(stmts []planStmt, disable bool) []planStmt {
	if disable || len(stmts) < 2 {
		return stmts
	}
	sortByFKOrder(stmts, p.topoPos,
		func(s *planStmt) stmtKind { return s.kind },
		func(s *planStmt) string { return s.table },
		func(s *planStmt) int { return s.seq })
	return stmts
}

// run executes sorted statements, recording SQL and rows affected and
// enriching constraint errors with subject context, like
// executeStatements does.
func runPlanStmts(tx *rdb.Tx, stmts []planStmt, res *OpResult) error {
	for _, st := range stmts {
		res.SQL = append(res.SQL, st.sql)
		n, err := st.apply(tx)
		if err != nil {
			if ce, ok := asConstraintError(err); ok {
				return feedback.FromConstraintError(ce, st.subject, "")
			}
			return err
		}
		res.RowsAffected += n
	}
	return nil
}

// execBound runs the plan with already-bound groups. Binding is a
// pure function of the argument vector, so bound groups are cacheable
// per request string; the probes and constraint checks here run per
// execution.
func (p *UpdatePlan) execBound(m *Mediator, tx *rdb.Tx, bound []boundGroup) (*OpResult, error) {
	res := &OpResult{Operation: p.kind}
	var stmts []planStmt
	var err error
	if p.kind == "INSERT DATA" {
		stmts, err = p.planInsert(m, tx, bound)
	} else {
		stmts, err = p.planDelete(m, tx, bound)
	}
	if err != nil {
		return res, err
	}
	stmts = p.sortPlanStmts(stmts, m.opts.DisableSort)
	return res, runPlanStmts(tx, stmts, res)
}

// planInsert mirrors execInsertData: probe existence per group on the
// pre-operation state, then emit INSERT or UPDATE plus idempotent
// link-row inserts.
func (p *UpdatePlan) planInsert(m *Mediator, tx *rdb.Tx, bound []boundGroup) ([]planStmt, error) {
	var stmts []planStmt
	seq := 0
	for bi := range bound {
		bg := &bound[bi]
		g := bg.g
		rowID, _, exists, err := tx.LookupPK(g.tm.Name, []rdb.Value{bg.pk})
		if err != nil {
			return nil, err
		}
		switch {
		case exists && len(g.attrs) > 0:
			set := make([]sqlgen.Assign, 0, len(g.attrs))
			setMap := make(map[string]rdb.Value, len(g.attrs))
			for _, ai := range g.sortedAttrs {
				set = append(set, sqlgen.Assign{Column: g.attrs[ai].name, Value: bg.vals[ai]})
				setMap[g.attrs[ai].name] = bg.vals[ai]
			}
			table, subject := g.tm.Name, bg.uri
			stmts = append(stmts, planStmt{
				sql:   sqlgen.Update(table, set, []sqlgen.Cond{{Column: g.pkName, Value: bg.pk}}),
				table: table, kind: kindUpdate, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					return 1, tx.UpdateByID(table, rowID, setMap)
				},
			})
			seq++
		case !exists:
			if am := g.missingMandatory; am != nil {
				return nil, mandatoryViolation(g.tm.Name, bg.uri, am)
			}
			cols := make([]string, 0, len(g.attrs)+1)
			vals := make([]rdb.Value, 0, len(g.attrs)+1)
			cols = append(cols, g.pkName)
			vals = append(vals, bg.pk)
			insMap := make(map[string]rdb.Value, len(g.attrs)+1)
			insMap[g.pkName] = bg.pk
			for ai := range g.attrs {
				// A property mapped onto the primary key column (pk
				// doubling as FK) must not override the URI-derived
				// key — the uncompiled path skips it the same way.
				if strings.EqualFold(g.attrs[ai].name, g.pkName) {
					continue
				}
				cols = append(cols, g.attrs[ai].name)
				vals = append(vals, bg.vals[ai])
				insMap[g.attrs[ai].name] = bg.vals[ai]
			}
			table, subject := g.tm.Name, bg.uri
			stmts = append(stmts, planStmt{
				sql:   sqlgen.Insert(table, cols, vals),
				table: table, kind: kindInsert, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					return 1, tx.Insert(table, insMap)
				},
			})
			seq++
		}
		for li := range g.links {
			l := &g.links[li]
			eq := map[string]rdb.Value{
				l.lt.SubjectAttr.Name: bg.pk,
				l.lt.ObjectAttr.Name:  bg.objs[li],
			}
			ids, err := tx.Match(l.lt.Name, eq)
			if err != nil {
				return nil, err
			}
			if len(ids) > 0 {
				continue // RDF set semantics: the relationship exists
			}
			table, subject := l.lt.Name, bg.uri
			insMap := map[string]rdb.Value{
				l.lt.SubjectAttr.Name: bg.pk,
				l.lt.ObjectAttr.Name:  bg.objs[li],
			}
			stmts = append(stmts, planStmt{
				sql: sqlgen.Insert(table,
					[]string{l.lt.SubjectAttr.Name, l.lt.ObjectAttr.Name},
					[]rdb.Value{bg.pk, bg.objs[li]}),
				table: table, kind: kindInsert, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					return 1, tx.Insert(table, insMap)
				},
			})
			seq++
		}
	}
	return stmts, nil
}

// planDelete mirrors execDeleteData: analyze each group against the
// stored tuple, then emit link deletes plus a row DELETE or a
// NULL-ing UPDATE.
func (p *UpdatePlan) planDelete(m *Mediator, tx *rdb.Tx, bound []boundGroup) ([]planStmt, error) {
	var stmts []planStmt
	seq := 0
	for bi := range bound {
		bg := &bound[bi]
		g := bg.g
		rowID, row, exists, err := tx.LookupPK(g.tm.Name, []rdb.Value{bg.pk})
		if err != nil {
			return nil, err
		}
		if !exists {
			return nil, &feedback.Violation{
				Constraint: "Mapping", Subject: bg.uri, Table: g.tm.Name,
				Hint: "the entity does not exist; DELETE DATA removes known triples only",
			}
		}
		for _, ai := range g.sortedAttrs {
			a := &g.attrs[ai]
			ci := g.schema.ColumnIndex(a.name)
			if !rdb.Equal(row[ci], bg.vals[ai]) {
				return nil, &feedback.Violation{
					Constraint: "Mapping", Subject: bg.uri, Property: a.prop,
					Table: g.tm.Name, Column: a.name, Value: bg.vals[ai].Text(),
					Hint: "the triple to delete is not present in the data",
				}
			}
		}
		for li := range g.links {
			l := &g.links[li]
			eq := map[string]rdb.Value{
				l.lt.SubjectAttr.Name: bg.pk,
				l.lt.ObjectAttr.Name:  bg.objs[li],
			}
			ids, err := tx.Match(l.lt.Name, eq)
			if err != nil {
				return nil, err
			}
			if len(ids) == 0 {
				return nil, &feedback.Violation{
					Constraint: "Mapping", Subject: bg.uri, Property: l.prop,
					Table: l.lt.Name, Value: bg.objs[li].Text(),
					Hint: "the relationship to delete is not present in the data",
				}
			}
			table, subject := l.lt.Name, bg.uri
			stmts = append(stmts, planStmt{
				sql: sqlgen.Delete(table, []sqlgen.Cond{
					{Column: l.lt.SubjectAttr.Name, Value: bg.pk},
					{Column: l.lt.ObjectAttr.Name, Value: bg.objs[li]},
				}),
				table: table, kind: kindDelete, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					ids, err := tx.Match(table, eq)
					if err != nil {
						return 0, err
					}
					for _, id := range ids {
						if err := tx.DeleteByID(table, id); err != nil {
							return 0, err
						}
					}
					return len(ids), nil
				},
			})
			seq++
		}

		if len(g.attrs) == 0 && !g.hasType {
			continue // only link triples for this subject
		}

		covers := planCoversAllRemaining(g, row)
		switch {
		case covers:
			table, subject := g.tm.Name, bg.uri
			stmts = append(stmts, planStmt{
				sql:   sqlgen.Delete(table, []sqlgen.Cond{{Column: g.pkName, Value: bg.pk}}),
				table: table, kind: kindDelete, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					return 1, tx.DeleteByID(table, rowID)
				},
			})
			seq++
		case g.hasType:
			return nil, &feedback.Violation{
				Constraint: "Mapping", Subject: bg.uri, Table: g.tm.Name,
				Hint: "removing the rdf:type triple deletes the entity; the request must also cover all its remaining data",
			}
		default:
			set := make([]sqlgen.Assign, 0, len(g.attrs))
			conds := []sqlgen.Cond{{Column: g.pkName, Value: bg.pk}}
			setMap := make(map[string]rdb.Value, len(g.attrs))
			for _, ai := range g.sortedAttrs {
				a := &g.attrs[ai]
				if a.am != nil && a.am.HasConstraint(r3m.ConstraintNotNull) {
					return nil, &feedback.Violation{
						Constraint: "NotNull", Subject: bg.uri, Property: a.prop,
						Table: g.tm.Name, Column: a.name,
						Hint: "this mandatory property can only be removed by deleting the whole entity",
					}
				}
				set = append(set, sqlgen.Assign{Column: a.name, Value: rdb.Null})
				conds = append(conds, sqlgen.Cond{Column: a.name, Value: bg.vals[ai]})
				setMap[a.name] = rdb.Null
			}
			table, subject := g.tm.Name, bg.uri
			stmts = append(stmts, planStmt{
				sql:   sqlgen.Update(table, set, conds),
				table: table, kind: kindUpdate, subject: subject, seq: seq,
				apply: func(tx *rdb.Tx) (int, error) {
					return 1, tx.UpdateByID(table, rowID, setMap)
				},
			})
			seq++
		}
	}
	return stmts, nil
}

// planCoversAllRemaining applies the shared DELETE-vs-UPDATE decision
// (coversRemaining) to a compiled group.
func planCoversAllRemaining(g *groupPlan, row []rdb.Value) bool {
	return coversRemaining(g.tm, g.schema, g.pkName, row, g.suppliesAttr,
		len(g.attrs) > 0, g.hasType)
}

// ---- mediator integration ------------------------------------------

// plannedUnit is a plan bound to one concrete argument vector —
// everything shape- and parameter-dependent precomputed, with only
// the data-dependent probes left for execution time. Cached per
// request string alongside the parse memo. Exactly one of plan
// (INSERT DATA / DELETE DATA) or mplan (MODIFY) is set.
type plannedUnit struct {
	plan  *UpdatePlan
	bound []boundGroup

	mplan  *ModifyPlan
	mbound *boundModify
}

// cachedRequest is a parse-memo entry: the parsed request plus the
// bound plan of every plannable operation (nil entries take the
// uncompiled path).
type cachedRequest struct {
	req     *update.Request
	planned []*plannedUnit
}

// buildCachedRequest compiles and binds every plannable operation of
// a parsed request. Operations that are unplannable — or whose shape
// or parameters are invalid, so the uncompiled path must produce the
// authoritative feedback — get a nil entry.
func (m *Mediator) buildCachedRequest(req *update.Request) *cachedRequest {
	cr := &cachedRequest{req: req, planned: make([]*plannedUnit, len(req.Ops))}
	for i, op := range req.Ops {
		if mo, isModify := op.(update.Modify); isModify {
			key, args, nm, ok := normalizeModify(mo)
			if !ok {
				continue
			}
			plan, ok := m.modifyPlanForShape(key, len(args), mo, nm)
			if !ok {
				continue
			}
			bm, err := plan.bind(m, args)
			if err != nil {
				continue
			}
			cr.planned[i] = &plannedUnit{mplan: plan, mbound: bm}
			continue
		}
		key, args, nts, kind, ok := normalizeOp(op)
		if !ok {
			continue
		}
		plan, ok := m.planForShape(kind, key, len(args), nts, m.db.Schema)
		if !ok {
			continue
		}
		bound, err := plan.bindGroups(m, args)
		if err != nil {
			continue
		}
		cr.planned[i] = &plannedUnit{plan: plan, bound: bound}
	}
	return cr
}

// planForShape returns the cached or freshly compiled plan for a
// shape. Unplannable shapes are cached as negative entries, so hot
// shapes the compiler rejects pay for compilation once, not per
// request; ok is false for them.
func (m *Mediator) planForShape(kind, key string, slots int, nts []normTriple, lookupSchema schemaFn) (*UpdatePlan, bool) {
	if plan, hit := m.plans.get(key); hit {
		return plan, plan != nil
	}
	plan, err := m.compileDataPlan(kind, key, slots, nts, lookupSchema)
	if err != nil {
		m.plans.put(key, nil)
		return nil, false
	}
	m.plans.put(key, plan)
	return plan, true
}

// writeShards computes one bound execution's per-table lock demand:
// write tables proven shardable at compile time narrow to the shards
// their bound primary keys hash to; everything else — and any key
// whose shard cannot be determined — demands the whole table (a zero
// mask). A nil result means no table narrowed at all, so the caller
// uses the precomputed whole-table signature.
func (p *UpdatePlan) writeShards(m *Mediator, bound []boundGroup) []rdb.TableShards {
	if len(p.shardable) == 0 {
		return nil
	}
	masks := make(map[string]rdb.ShardSet, len(p.shardable))
	whole := make(map[string]bool, len(p.shardable))
	for i := range bound {
		name := bound[i].g.tm.Name
		if !p.shardable[name] || whole[name] {
			continue
		}
		if s, ok := m.db.ShardOfPK(name, bound[i].pk); ok {
			masks[name] = masks[name].With(s)
		} else {
			whole[name] = true
			delete(masks, name)
		}
	}
	if len(masks) == 0 {
		return nil
	}
	out := make([]rdb.TableShards, len(p.writeTables))
	for i, t := range p.writeTables {
		out[i] = rdb.TableShards{Table: t, Shards: masks[t]}
	}
	return out
}

// runPlanned executes a bound plan under the plan's declared locks —
// through the group-commit scheduler when batching is on (coalescing
// it with concurrent operations sharing the lock signature), in its
// own transaction otherwise. Shardable write tables are locked by key
// shard, so executions on disjoint key ranges of the same table run in
// parallel. Staleness is fully decided during binding (bindGroups); a
// keyed execution that still reaches outside its declared shards at
// run time (e.g. the probe path degenerated to a scan) is retried once
// under whole-table locks — in a batch the stale operation has already
// been rolled back to its savepoint, so the retry never double-applies.
func (m *Mediator) runPlanned(plan *UpdatePlan, bound []boundGroup) (*OpResult, error) {
	exec := func(tx *rdb.Tx) (*OpResult, error) {
		return plan.execBound(m, tx, bound)
	}
	shards := plan.writeShards(m, bound)
	res, err := m.runLocked(plan.lockSig, plan.writeTables, nil, shards, exec)
	if err != nil && shards != nil {
		var le *rdb.LockError
		if errors.As(err, &le) && le.Keyed {
			m.keyedFallbacks.Add(1)
			return m.runLocked(plan.lockSig, plan.writeTables, nil, nil, exec)
		}
	}
	return res, err
}

// tryPlanned attempts the compiled path for one operation. handled is
// false when the operation is unplannable or the bound execution went
// stale; the caller then runs the uncompiled path.
func (m *Mediator) tryPlanned(op update.Operation) (*OpResult, error, bool) {
	if mo, isModify := op.(update.Modify); isModify {
		return m.tryPlannedModify(mo)
	}
	key, args, nts, kind, ok := normalizeOp(op)
	if !ok {
		return nil, nil, false
	}
	plan, ok := m.planForShape(kind, key, len(args), nts, m.db.Schema)
	if !ok {
		return nil, nil, false
	}
	bound, err := plan.bindGroups(m, args)
	if err != nil {
		if errors.Is(err, errPlanStale) {
			return nil, nil, false
		}
		return &OpResult{Operation: plan.kind}, err, true
	}
	res, err := m.runPlanned(plan, bound)
	return res, err, true
}

// PlanCacheStats reports hit/miss/eviction counters and current size
// of the plan cache.
func (m *Mediator) PlanCacheStats() CacheStats {
	if m.plans == nil {
		return CacheStats{}
	}
	return m.plans.snapshot()
}

// ParseCacheStats reports the request parse memo's counters.
func (m *Mediator) ParseCacheStats() CacheStats {
	if m.parses == nil {
		return CacheStats{}
	}
	return m.parses.snapshot()
}

// PlanFor compiles (or fetches) the plan for the given request source
// without executing it — introspection for tests and tooling.
func (m *Mediator) PlanFor(src string) (*UpdatePlan, error) {
	req, err := update.Parse(src)
	if err != nil {
		return nil, err
	}
	if len(req.Ops) != 1 {
		return nil, fmt.Errorf("core: PlanFor expects exactly one operation")
	}
	key, args, nts, kind, ok := normalizeOp(req.Ops[0])
	if !ok {
		return nil, errUnplannable
	}
	plan, ok := m.planForShape(kind, key, len(args), nts, m.db.Schema)
	if !ok {
		return nil, errUnplannable
	}
	return plan, nil
}
