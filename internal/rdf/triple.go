package rdf

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is an RDF triple. Like Term it is a comparable value type.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three components.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// String renders the triple in N-Triples syntax (without final newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}

// CompareTriples orders triples by subject, predicate, object.
func CompareTriples(a, b Triple) int {
	if c := CompareTerms(a.S, b.S); c != 0 {
		return c
	}
	if c := CompareTerms(a.P, b.P); c != 0 {
		return c
	}
	return CompareTerms(a.O, b.O)
}

// Graph is a set of triples. The zero value is not usable; create
// graphs with NewGraph. Iteration order via Triples is deterministic
// (sorted), insertion is O(1) amortized.
type Graph struct {
	set map[Triple]struct{}
}

// NewGraph returns an empty graph, optionally seeded with triples.
func NewGraph(triples ...Triple) *Graph {
	g := &Graph{set: make(map[Triple]struct{}, len(triples))}
	for _, t := range triples {
		g.set[t] = struct{}{}
	}
	return g
}

// Add inserts a triple; duplicates are ignored (set semantics). It
// reports whether the triple was newly added.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	return true
}

// AddAll inserts all triples from another graph.
func (g *Graph) AddAll(other *Graph) {
	for t := range other.set {
		g.set[t] = struct{}{}
	}
}

// Remove deletes a triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.set[t]; !ok {
		return false
	}
	delete(g.set, t)
	return true
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples.
func (g *Graph) Len() int { return len(g.set) }

// Triples returns all triples in canonical (sorted) order.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return CompareTriples(out[i], out[j]) < 0 })
	return out
}

// Each calls fn for every triple in unspecified order, stopping early
// if fn returns false.
func (g *Graph) Each(fn func(Triple) bool) {
	for t := range g.set {
		if !fn(t) {
			return
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{set: make(map[Triple]struct{}, len(g.set))}
	for t := range g.set {
		c.set[t] = struct{}{}
	}
	return c
}

// Equal reports whether both graphs contain exactly the same triples.
// Blank node isomorphism is not considered; OntoAccess graphs are
// ground (mappings use IRIs and literals), so set equality suffices.
func (g *Graph) Equal(other *Graph) bool {
	if g.Len() != other.Len() {
		return false
	}
	for t := range g.set {
		if !other.Contains(t) {
			return false
		}
	}
	return true
}

// Diff returns the triples present in g but not in other, sorted.
func (g *Graph) Diff(other *Graph) []Triple {
	var out []Triple
	for t := range g.set {
		if !other.Contains(t) {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return CompareTriples(out[i], out[j]) < 0 })
	return out
}

// String renders the whole graph in N-Triples, sorted, one per line.
func (g *Graph) String() string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
