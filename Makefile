# Reproduces the CI gate locally: `make ci` runs exactly what
# .github/workflows/ci.yml runs.

GO ?= go

.PHONY: ci fmt-check vet build test race cover crash-recovery metamorphic fuzz-smoke load-smoke bench bench-smoke bench-json clean

ci: fmt-check vet build race cover crash-recovery metamorphic fuzz-smoke load-smoke bench-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gates: the translation core, the SQL executor (the
# compiled read path's engine), the write-ahead log, the storage
# engine (statistics included) and the SPARQL engine (aggregation
# included) must all stay above 70%.
cover:
	$(GO) test -coverprofile=cover.out ./internal/core
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "core coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "core coverage %.1f%% (gate 70%%)\n", $$3 }'
	$(GO) test -coverprofile=cover.out ./internal/rdb/sqlexec
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "sqlexec coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "sqlexec coverage %.1f%% (gate 70%%)\n", $$3 }'
	$(GO) test -coverprofile=cover.out ./internal/rdb/wal
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "wal coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "wal coverage %.1f%% (gate 70%%)\n", $$3 }'
	$(GO) test -coverprofile=cover.out ./internal/rdb
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "rdb coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "rdb coverage %.1f%% (gate 70%%)\n", $$3 }'
	$(GO) test -coverprofile=cover.out ./internal/sparql
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "sparql coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "sparql coverage %.1f%% (gate 70%%)\n", $$3 }'

# The durability gate: recovery replay, torn-tail handling and the
# kill-and-recover differential (hard stop mid-stream, reopen, compare
# byte-for-byte against a memory reference fed the acked prefix).
crash-recovery:
	$(GO) test -run 'Recover|Torn|Checkpoint|Wal|WAL' ./internal/rdb ./internal/rdb/wal
	$(GO) test -run TestKillAndRecoverDifferential ./internal/workload

# The read-path metamorphic invariants: query-to-query relations
# (UNION vs OR, always-false OPTIONAL, COUNT(*) vs length, LIMIT
# prefix) that hold in every execution mode.
metamorphic:
	$(GO) test -run 'TestMetamorphic' -v ./internal/workload

# 60s of native fuzzing across the parser/normalizer targets, the
# statistics invariant and the sharded publish protocol — regressions
# land in testdata/fuzz/ as seeds.
fuzz-smoke:
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 10s -run '^$$' ./internal/update
	$(GO) test -fuzz FuzzParseQuery -fuzztime 10s -run '^$$' ./internal/sparql
	$(GO) test -fuzz FuzzParseSelect -fuzztime 10s -run '^$$' ./internal/rdb/sqlparser
	$(GO) test -fuzz FuzzNormalizeShape -fuzztime 10s -run '^$$' ./internal/core
	$(GO) test -fuzz FuzzStatsInvariant -fuzztime 10s -run '^$$' ./internal/rdb
	$(GO) test -fuzz FuzzShardedPublish -fuzztime 10s -run '^$$' ./internal/rdb

# The HTTP load gate: the closed-loop harness (mixed reads/writes over
# a live endpoint with shedding and deadlines armed) must come back
# clean at low load — percentiles populated, nothing shed or timed out.
load-smoke:
	$(GO) test -run TestLoadSmoke -v .

# One iteration of every benchmark: catches bit-rot without timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The real measurement run (B-series + E-series).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Machine-readable benchmark record: runs the E- and B-series and
# writes BENCH_E.json / BENCH_B.json (ns/op, allocs, custom metrics
# like ops/sec) so the perf trajectory is recorded per PR. BENCHTIME
# trades accuracy for speed: CI uses a short run to keep the gate
# fast; use >=1s locally for numbers worth quoting.
BENCHTIME ?= 100x
# Concurrency benchmarks (B7 writer/reader throughput, B11 batched
# same-table writes, B15 fsync batching) additionally sweep -cpu so
# BENCH_B.json records a scaling curve, not just the 1-core story.
CONCBENCH = BenchmarkB(7|11|15)_
bench-json:
	( $(GO) test -bench 'Benchmark[EB][0-9]' -skip '$(CONCBENCH)' -benchmem -benchtime $(BENCHTIME) -run '^$$' . && \
	  $(GO) test -bench '$(CONCBENCH)' -benchmem -benchtime $(BENCHTIME) -cpu 1,2,4,8 -run '^$$' . ) | $(GO) run ./cmd/benchjson -dir .

clean:
	$(GO) clean ./...
