package rdb

// Durability for the MVCC engine: logical write-ahead logging,
// snapshot checkpointing, and crash recovery.
//
// The unit of logging is the *publish* — the commit step that installs
// the next database snapshot. Every publish appends exactly one record
// whose sequence number equals the version of the snapshot it
// produces, and fsyncs it before the snapshot becomes visible
// (write-ahead rule). Because the group-commit scheduler runs a whole
// drained batch inside one transaction and therefore one publish, the
// WAL inherits its amortization for free: one record and one fsync
// cover every operation in the batch, the same way one lock
// acquisition already does.
//
// Records carry logical operations, not pages: for a commit, the
// tables touched and the per-row inserts/updates/deletes with their
// typed, post-coercion values and internal row ids; for DDL, the
// serialized schema. Replay re-applies them at the tableVersion level
// without re-validating constraints — the rows were validated and
// coerced when the original commit ran, and re-deriving the exact same
// versions (asserted via the logged row ids) is what makes the
// recovered export byte-identical to the acknowledged prefix.
//
// Sequence numbers are dense: every publish is logged, so replay can
// demand seq == version+1 and detect a lost record as a hard error
// rather than silently skipping history. Records at or below the
// checkpoint version are skipped — they can legitimately linger in old
// segments when a crash lands between checkpoint write and segment
// removal.
//
// Checkpointing rotates the log under the publish lock (so every
// record not covered by the checkpoint lives in segments at or after
// the returned index), serializes the immutable snapshot outside any
// lock, atomically replaces the checkpoint file, and only then removes
// the covered segments. A crash at any point leaves either the old
// checkpoint plus a longer log, or the new checkpoint plus a log whose
// stale prefix replay skips.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"ontoaccess/internal/rdb/wal"
)

const (
	recCommit byte = 'C'
	recCreate byte = 'T'
	recDrop   byte = 'X'

	walInsert byte = 'i'
	walUpdate byte = 'u'
	walDelete byte = 'd'

	checkpointFile  = "checkpoint.db"
	checkpointMagic = "OACP1"
	// Incremental checkpoints: checkpoint.db becomes a manifest
	// (manifestMagic) referencing one immutable per-table file
	// (tableFileMagic) per table, named by the snapshot version that
	// last changed the table — so a checkpoint rewrites only the
	// tables dirtied since the previous one. The legacy monolithic
	// format (checkpointMagic) is still read for old data dirs.
	manifestMagic  = "OACM1"
	tableFileMagic = "OATB1"

	// DefaultCheckpointBytes is the WAL growth between automatic
	// checkpoints when Options.CheckpointBytes is zero.
	DefaultCheckpointBytes = 4 << 20
)

// Options configures persistence for Open.
type Options struct {
	// DataDir roots the WAL segments and the checkpoint file. Empty
	// means ephemeral: a memory-only database identical to NewDatabase.
	DataDir string
	// CheckpointBytes is the WAL growth that triggers an automatic
	// background checkpoint; zero selects DefaultCheckpointBytes,
	// negative disables automatic checkpointing (Checkpoint can still
	// be called explicitly).
	CheckpointBytes int64
}

// walChange is one logical row mutation captured by a transaction for
// the commit record: the post-coercion row exactly as the derived
// tableVersion stores it.
type walChange struct {
	table string
	op    byte
	id    int64
	row   []Value // nil for deletes
}

// persister holds a database's durability state.
type persister struct {
	log *wal.Log
	dir string

	checkpointBytes int64
	bytesSinceCkpt  atomic.Int64
	lastCkptVersion atomic.Uint64
	checkpoints     atomic.Uint64
	recovered       atomic.Uint64
	checkpointing   atomic.Bool
	// ckptWritten / ckptSkipped count per-table checkpoint files
	// written vs reused across incremental checkpoints (dirty-table
	// skipping made observable).
	ckptWritten atomic.Uint64
	ckptSkipped atomic.Uint64
	// ckptMu serializes Checkpoint against itself (explicit calls vs
	// the automatic background trigger); ckptWG lets Close wait for an
	// in-flight background checkpoint so it cannot recreate files
	// after the caller tears the data directory down.
	ckptMu sync.Mutex
	ckptWG sync.WaitGroup
}

// append writes one record and makes it durable. Callers hold
// whatever lock fixes the record's sequence number (pubMu for
// commits, the exclusive catalog lock for DDL), so records land in
// the log in sequence order.
func (p *persister) append(payload []byte) error {
	if err := p.log.Append(payload); err != nil {
		return err
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	p.bytesSinceCkpt.Add(int64(len(payload)))
	return nil
}

// maybeCheckpoint kicks off a background checkpoint when the WAL has
// grown past the threshold and none is already running. A failed
// background checkpoint leaves the counters untouched, so the next
// publish over the threshold simply retries.
func (p *persister) maybeCheckpoint(db *Database) {
	if p.checkpointBytes <= 0 || p.bytesSinceCkpt.Load() < p.checkpointBytes {
		return
	}
	if !p.checkpointing.CompareAndSwap(false, true) {
		return
	}
	p.ckptWG.Add(1)
	go func() {
		defer p.ckptWG.Done()
		defer p.checkpointing.Store(false)
		db.Checkpoint() //nolint:errcheck // retried on the next trigger
	}()
}

// DurabilityStats is the operator-facing view of the durability
// layer, surfaced through /healthz.
type DurabilityStats struct {
	Enabled bool
	DataDir string
	// WALBytes / WALRecords / WALSegments describe the live log;
	// Fsyncs counts physical fsyncs (compare against the scheduler's
	// batch count for the amortization ratio).
	WALBytes    int64
	WALRecords  uint64
	WALSegments uint64
	Fsyncs      uint64
	// LastCheckpointVersion is the snapshot version the newest durable
	// checkpoint covers; Checkpoints counts completed checkpoints.
	LastCheckpointVersion uint64
	Checkpoints           uint64
	// CheckpointTablesWritten / CheckpointTablesSkipped count per-table
	// checkpoint files written vs reused unchanged across incremental
	// checkpoints — skipped tables were clean since the last checkpoint.
	CheckpointTablesWritten uint64
	CheckpointTablesSkipped uint64
	// RecoveredRecords counts WAL records replayed by Open.
	RecoveredRecords uint64
}

// DurabilityStats reports the durability layer's counters; the zero
// value (Enabled=false) for an ephemeral database.
func (db *Database) DurabilityStats() DurabilityStats {
	p := db.persist
	if p == nil {
		return DurabilityStats{}
	}
	ls := p.log.Stats()
	return DurabilityStats{
		Enabled:                 true,
		DataDir:                 p.dir,
		WALBytes:                ls.Bytes,
		WALRecords:              ls.Records,
		WALSegments:             ls.Segments,
		Fsyncs:                  ls.Fsyncs,
		LastCheckpointVersion:   p.lastCkptVersion.Load(),
		Checkpoints:             p.checkpoints.Load(),
		CheckpointTablesWritten: p.ckptWritten.Load(),
		CheckpointTablesSkipped: p.ckptSkipped.Load(),
		RecoveredRecords:        p.recovered.Load(),
	}
}

// Open returns a database backed by the data directory in o,
// recovering any state a previous process left there: the newest
// valid checkpoint is loaded, the WAL tail is replayed on top of it,
// and a torn final frame (a crash mid-append) is truncated away. The
// recovered result reports whether any prior state was found — when
// true the schema already exists and callers must not re-apply DDL.
// With an empty DataDir, Open degenerates to NewDatabase.
func Open(name string, o Options) (*Database, bool, error) {
	db := NewDatabase(name)
	if o.DataDir == "" {
		return db, false, nil
	}
	p := &persister{dir: o.DataDir, checkpointBytes: o.CheckpointBytes}
	if p.checkpointBytes == 0 {
		p.checkpointBytes = DefaultCheckpointBytes
	}
	l, err := wal.Open(o.DataDir)
	if err != nil {
		return nil, false, err
	}
	p.log = l

	hadState := false
	var ckptVersion uint64
	if data, rerr := os.ReadFile(filepath.Join(o.DataDir, checkpointFile)); rerr == nil {
		hadState = true
		ckptVersion, err = db.restoreCheckpoint(o.DataDir, data)
		if err != nil {
			l.Close()
			return nil, false, fmt.Errorf("rdb: loading checkpoint: %w", err)
		}
	} else if !os.IsNotExist(rerr) {
		l.Close()
		return nil, false, rerr
	}

	// Recovery decodes and CRC-verifies sealed segments in parallel;
	// records still apply strictly in log order (replayRecord enforces
	// the dense commit sequence).
	var replayed uint64
	if _, err := l.ReplayParallel(func(payload []byte) error {
		return db.replayRecord(payload, &replayed)
	}); err != nil {
		l.Close()
		return nil, false, fmt.Errorf("rdb: replaying WAL: %w", err)
	}
	p.recovered.Store(replayed)
	p.lastCkptVersion.Store(ckptVersion)
	db.persist = p
	return db, hadState || replayed > 0, nil
}

// Checkpoint serializes the current snapshot to the checkpoint file
// and prunes the WAL segments it covers. Safe to call concurrently
// with commits; a no-op on an ephemeral database.
func (db *Database) Checkpoint() error {
	p := db.persist
	if p == nil {
		return nil
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	// Under pubMu no publish can intervene between reading the
	// snapshot and rotating, so every record not covered by this
	// checkpoint lives in segments >= seg.
	db.pubMu.Lock()
	snap := db.snap.Load()
	seg, err := p.log.Rotate()
	db.pubMu.Unlock()
	if err != nil {
		return err
	}
	// The snapshot is immutable: serialization needs no lock. Each
	// table serializes to its own immutable file named by the snapshot
	// version that last changed it, so only tables dirtied since the
	// previous checkpoint are rewritten; the manifest then flips the
	// whole checkpoint atomically.
	for _, key := range snap.order {
		v := snap.tables[key]
		path := filepath.Join(p.dir, tableFileName(key, v.asOf))
		if _, serr := os.Stat(path); serr == nil {
			p.ckptSkipped.Add(1)
			continue
		} else if !os.IsNotExist(serr) {
			return serr
		}
		if err := wal.WriteFileAtomic(path, encodeTableFile(v)); err != nil {
			return err
		}
		p.ckptWritten.Add(1)
	}
	if err := wal.WriteFileAtomic(filepath.Join(p.dir, checkpointFile), encodeManifest(snap)); err != nil {
		return err
	}
	p.lastCkptVersion.Store(snap.version)
	p.bytesSinceCkpt.Store(0)
	p.checkpoints.Add(1)
	// Prune table files the just-installed manifest no longer
	// references. A crash before this point merely leaves extra files;
	// a failure here is cosmetic, so it does not fail the checkpoint.
	keep := make(map[string]bool, len(snap.order))
	for _, key := range snap.order {
		keep[tableFileName(key, snap.tables[key].asOf)] = true
	}
	if entries, derr := os.ReadDir(p.dir); derr == nil {
		for _, e := range entries {
			n := e.Name()
			if strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".tbl") && !keep[n] {
				os.Remove(filepath.Join(p.dir, n)) //nolint:errcheck // cosmetic
			}
		}
	}
	return p.log.RemoveBefore(seg)
}

// tableFileName names the immutable per-table checkpoint file for a
// table key at the snapshot version that last changed it.
func tableFileName(key string, asOf uint64) string {
	return fmt.Sprintf("ckpt-%s-%d.tbl", key, asOf)
}

// Close checkpoints and closes the WAL. The database must not be used
// afterwards. A no-op on an ephemeral database.
func (db *Database) Close() error {
	p := db.persist
	if p == nil {
		return nil
	}
	// Commits happen-before Close, so every background checkpoint has
	// already been registered; wait it out before the final one.
	p.ckptWG.Wait()
	err := db.Checkpoint()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Record and checkpoint encoding. Everything is varint-based except
// floats (fixed 8-byte IEEE bits); strings are length-prefixed.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KInt:
		b = binary.AppendVarint(b, v.I)
	case KFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case KString:
		b = appendString(b, v.S)
	case KBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendRow(b []byte, row []Value) []byte {
	b = binary.AppendUvarint(b, uint64(len(row)))
	for _, v := range row {
		b = appendValue(b, v)
	}
	return b
}

func appendSchema(b []byte, s *TableSchema) []byte {
	b = appendString(b, s.Name)
	b = binary.AppendUvarint(b, uint64(len(s.Columns)))
	for i := range s.Columns {
		c := &s.Columns[i]
		b = appendString(b, c.Name)
		b = append(b, byte(c.Type))
		b = binary.AppendUvarint(b, uint64(c.Length))
		flags := byte(0)
		if c.NotNull {
			flags |= 1
		}
		if c.Unique {
			flags |= 2
		}
		if c.AutoIncrement {
			flags |= 4
		}
		if c.Default != nil {
			flags |= 8
		}
		b = append(b, flags)
		if c.Default != nil {
			b = appendValue(b, *c.Default)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.PrimaryKey)))
	for _, pk := range s.PrimaryKey {
		b = appendString(b, pk)
	}
	b = binary.AppendUvarint(b, uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		b = appendString(b, fk.Column)
		b = appendString(b, fk.RefTable)
	}
	return b
}

// encodeCommitRecord serializes one publish: the changes grouped by
// table in first-touch order, preserving the per-table operation
// order (which is what fixes replayed insert-id assignment).
func encodeCommitRecord(seq uint64, changes []walChange) []byte {
	var order []string
	groups := make(map[string][]walChange)
	for _, c := range changes {
		if _, ok := groups[c.table]; !ok {
			order = append(order, c.table)
		}
		groups[c.table] = append(groups[c.table], c)
	}
	b := []byte{recCommit}
	b = binary.AppendUvarint(b, seq)
	b = binary.AppendUvarint(b, uint64(len(order)))
	for _, t := range order {
		b = appendString(b, t)
		g := groups[t]
		b = binary.AppendUvarint(b, uint64(len(g)))
		for _, c := range g {
			b = append(b, c.op)
			b = binary.AppendUvarint(b, uint64(c.id))
			if c.op != walDelete {
				b = appendRow(b, c.row)
			}
		}
	}
	return b
}

func encodeCreateRecord(seq uint64, s *TableSchema) []byte {
	b := []byte{recCreate}
	b = binary.AppendUvarint(b, seq)
	return appendSchema(b, s)
}

func encodeDropRecord(seq uint64, name string) []byte {
	b := []byte{recDrop}
	b = binary.AppendUvarint(b, seq)
	return appendString(b, name)
}

// encodeManifest serializes a checkpoint manifest: magic, version,
// every table key in creation order with the snapshot version that
// last changed it (which names its table file), and a trailing CRC-32C.
func encodeManifest(s *dbSnapshot) []byte {
	b := []byte(manifestMagic)
	b = binary.AppendUvarint(b, s.version)
	b = binary.AppendUvarint(b, uint64(len(s.order)))
	for _, key := range s.order {
		b = appendString(b, key)
		b = binary.AppendUvarint(b, s.tables[key].asOf)
	}
	sum := crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(b, sum)
}

// encodeTableFile serializes one table version: magic, schema, id
// counters, rows in insertion order, and a trailing CRC-32C.
func encodeTableFile(v *tableVersion) []byte {
	b := []byte(tableFileMagic)
	b = appendSchema(b, v.schema)
	b = binary.AppendVarint(b, v.nextID)
	b = binary.AppendVarint(b, v.nextAuto)
	b = binary.AppendUvarint(b, uint64(v.rows.len()))
	v.scan(func(id int64, row []Value) bool {
		b = binary.AppendUvarint(b, uint64(id))
		b = appendRow(b, row)
		return true
	})
	sum := crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(b, sum)
}

// ---------------------------------------------------------------------------
// Decoding.

// walDec is a cursor over an encoded record; the first failed read
// poisons it, so callers check err once at the end.
type walDec struct {
	b   []byte
	err error
}

func (d *walDec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("rdb: truncated or corrupt record")
	}
}

func (d *walDec) u64() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) i64() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) byte_() byte {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *walDec) str() string {
	n := d.u64()
	if uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *walDec) value() Value {
	switch ValueKind(d.byte_()) {
	case KNull:
		return Null
	case KInt:
		return Int(d.i64())
	case KFloat:
		if len(d.b) < 8 {
			d.fail()
			return Null
		}
		bits := binary.LittleEndian.Uint64(d.b)
		d.b = d.b[8:]
		return Float(math.Float64frombits(bits))
	case KString:
		return String_(d.str())
	case KBool:
		return Bool(d.byte_() != 0)
	}
	d.fail()
	return Null
}

func (d *walDec) row() []Value {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)) { // each value takes >= 1 byte
		d.fail()
		return nil
	}
	row := make([]Value, n)
	for i := range row {
		row[i] = d.value()
	}
	return row
}

func (d *walDec) schema() *TableSchema {
	s := &TableSchema{Name: d.str()}
	ncols := d.u64()
	if d.err != nil || ncols > uint64(len(d.b)) {
		d.fail()
		return s
	}
	s.Columns = make([]Column, ncols)
	for i := range s.Columns {
		c := &s.Columns[i]
		c.Name = d.str()
		c.Type = ColType(d.byte_())
		c.Length = int(d.u64())
		flags := d.byte_()
		c.NotNull = flags&1 != 0
		c.Unique = flags&2 != 0
		c.AutoIncrement = flags&4 != 0
		if flags&8 != 0 {
			v := d.value()
			c.Default = &v
		}
	}
	npk := d.u64()
	for i := uint64(0); i < npk && d.err == nil; i++ {
		s.PrimaryKey = append(s.PrimaryKey, d.str())
	}
	nfk := d.u64()
	for i := uint64(0); i < nfk && d.err == nil; i++ {
		col := d.str()
		ref := d.str()
		s.ForeignKeys = append(s.ForeignKeys, ForeignKey{Column: col, RefTable: ref})
	}
	return s
}

// restoreCheckpoint rebuilds the database from the checkpoint file
// blob — an incremental manifest referencing per-table files in dir,
// or the legacy monolithic format — and returns the snapshot version
// it covers. Runs single-threaded during Open, before the database is
// shared.
func (db *Database) restoreCheckpoint(dir string, data []byte) (uint64, error) {
	if len(data) >= len(manifestMagic) && string(data[:len(manifestMagic)]) == manifestMagic {
		return db.restoreManifest(dir, data)
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return 0, fmt.Errorf("not a checkpoint file")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint checksum mismatch")
	}
	d := &walDec{b: body[len(checkpointMagic):]}
	version := d.u64()
	ntables := d.u64()
	restored := make(map[string]*tableVersion, ntables)
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		v, err := db.loadTableBody(d)
		if err != nil {
			return 0, err
		}
		if d.err != nil {
			break
		}
		v.asOf = version // legacy format has no per-table versions
		restored[lowerName(v.schema.Name)] = v
	}
	if d.err != nil {
		return 0, d.err
	}
	db.installSnapshot(restored, version)
	return version, nil
}

// restoreManifest rebuilds the database from an incremental manifest:
// each listed table loads from its immutable per-table file, keeping
// the per-table asOf version so the next checkpoint can reuse the
// files of tables that stayed clean.
func (db *Database) restoreManifest(dir string, data []byte) (uint64, error) {
	if len(data) < len(manifestMagic)+4 {
		return 0, fmt.Errorf("truncated checkpoint manifest")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint manifest checksum mismatch")
	}
	d := &walDec{b: body[len(manifestMagic):]}
	version := d.u64()
	ntables := d.u64()
	restored := make(map[string]*tableVersion, ntables)
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		key := d.str()
		asOf := d.u64()
		if d.err != nil {
			break
		}
		v, err := db.loadTableFile(filepath.Join(dir, tableFileName(key, asOf)))
		if err != nil {
			return 0, err
		}
		v.asOf = asOf
		restored[key] = v
	}
	if d.err != nil {
		return 0, d.err
	}
	db.installSnapshot(restored, version)
	return version, nil
}

// loadTableFile reads, verifies, and decodes one per-table checkpoint
// file referenced by a manifest.
func (db *Database) loadTableFile(path string) (*tableVersion, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(data) < len(tableFileMagic)+4 || string(data[:len(tableFileMagic)]) != tableFileMagic {
		return nil, fmt.Errorf("%s: not a checkpoint table file", name)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%s: checksum mismatch", name)
	}
	d := &walDec{b: body[len(tableFileMagic):]}
	v, err := db.loadTableBody(d)
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, fmt.Errorf("%s: %w", name, d.err)
	}
	return v, nil
}

// loadTableBody decodes one table (schema, id counters, rows) from a
// checkpoint stream, registers the table in the catalog, and builds
// its version with bulk-load transient nodes (frozen by the caller's
// installSnapshot).
func (db *Database) loadTableBody(d *walDec) (*tableVersion, error) {
	s := d.schema()
	nextID := d.i64()
	nextAuto := d.i64()
	nrows := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if err := db.CreateTable(s); err != nil {
		return nil, err
	}
	v := newTableVersion(s)
	o := newOwner() // bulk load: transient nodes, frozen on return
	for r := uint64(0); r < nrows && d.err == nil; r++ {
		id := int64(d.u64())
		row := d.row()
		if d.err != nil {
			break
		}
		v.rows = v.rows.withO(uint64(id), row, o)
		v.pk = v.pk.withO(v.pkKey(row), id, o)
		for si := range v.sec {
			e := &v.sec[si]
			e.idx = idxAdd(e.idx, encodeKey(row[e.col:e.col+1]), id, o)
		}
	}
	v.nextID = nextID
	v.nextAuto = nextAuto
	return v, nil
}

// installSnapshot overwrites table versions and pins the snapshot
// version — recovery's replacement for publish, which would assign
// version+1 and (once persistence is attached) re-log the records.
func (db *Database) installSnapshot(updated map[string]*tableVersion, version uint64) {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	cur := db.snap.Load()
	ns := &dbSnapshot{
		version:      version,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	for k, v := range cur.tables {
		ns.tables[k] = v
	}
	for k, v := range updated {
		v.owner = nil // freeze before sharing; callers set asOf
		ns.tables[k] = v
	}
	db.snap.Store(ns)
}

// replayRecord applies one WAL record during Open. Records at or
// below the current version are stale (their effects are inside the
// checkpoint); beyond that, sequence numbers must be dense — a gap
// means a lost record and recovery refuses to guess.
func (db *Database) replayRecord(payload []byte, replayed *uint64) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	d := &walDec{b: payload[1:]}
	kind := payload[0]
	seq := d.u64()
	if d.err != nil {
		return d.err
	}
	cur := db.snapshot()
	if seq <= cur.version {
		return nil // covered by the checkpoint
	}
	if seq != cur.version+1 {
		return fmt.Errorf("sequence gap: have version %d, next record is %d", cur.version, seq)
	}
	switch kind {
	case recCommit:
		ntables := d.u64()
		updated := make(map[string]*tableVersion, ntables)
		o := newOwner() // replay owns every node it copies
		for t := uint64(0); t < ntables && d.err == nil; t++ {
			name := d.str()
			key := lowerName(name)
			v, ok := updated[key]
			if !ok {
				if v, ok = cur.tables[key]; !ok {
					return fmt.Errorf("record %d touches unknown table %q", seq, name)
				}
			}
			nchanges := d.u64()
			for c := uint64(0); c < nchanges && d.err == nil; c++ {
				op := d.byte_()
				id := int64(d.u64())
				switch op {
				case walInsert:
					row := d.row()
					if d.err != nil {
						break
					}
					nv, gotID := v.insert(row, o)
					if gotID != id {
						return fmt.Errorf("record %d: replayed insert into %q got id %d, logged %d",
							seq, name, gotID, id)
					}
					v = nv
				case walUpdate:
					row := d.row()
					if d.err != nil {
						break
					}
					if _, ok := v.row(id); !ok {
						return fmt.Errorf("record %d: update of missing row %d in %q", seq, id, name)
					}
					v = v.update(id, row, o)
				case walDelete:
					if _, ok := v.row(id); !ok {
						return fmt.Errorf("record %d: delete of missing row %d in %q", seq, id, name)
					}
					v = v.remove(id, o)
				default:
					return fmt.Errorf("record %d: unknown op %q", seq, op)
				}
			}
			updated[key] = v
		}
		if d.err != nil {
			return d.err
		}
		for _, v := range updated {
			v.asOf = seq
		}
		db.installSnapshot(updated, seq)
	case recCreate:
		s := d.schema()
		if d.err != nil {
			return d.err
		}
		// persist is still nil during replay, so CreateTable does not
		// re-log; its publishCatalog assigns version+1 == seq.
		if err := db.CreateTable(s); err != nil {
			return err
		}
	case recDrop:
		name := d.str()
		if d.err != nil {
			return d.err
		}
		if err := db.DropTable(name); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown record kind %q", kind)
	}
	*replayed++
	return nil
}
