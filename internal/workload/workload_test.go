package workload

import (
	"os"
	"path/filepath"
	"testing"

	"ontoaccess/internal/core"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
	"ontoaccess/internal/update"
)

func TestAssetsMatchTestdata(t *testing.T) {
	// The embedded mapping and testdata/mapping.ttl must not drift.
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", "mapping.ttl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != MappingTTL {
		t.Error("internal/workload/assets/mapping.ttl and testdata/mapping.ttl differ")
	}
}

func TestNewMediatorAndListings(t *testing.T) {
	m, err := NewMediator(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []string{Listing15, Listing17, Listing11} {
		if _, err := m.ExecuteString(req); err != nil {
			t.Fatalf("listing failed: %v\n%s", err, req)
		}
	}
	if m.DB().TotalRows() != 6 {
		t.Errorf("rows = %d", m.DB().TotalRows())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	sa, sb := a.Stream(50, 1), b.Stream(50, 1)
	if len(sa) != 50 || len(sb) != 50 {
		t.Fatalf("stream sizes %d/%d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
	c := NewGenerator(8)
	sc := c.Stream(50, 1)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamExecutesOnMediator(t *testing.T) {
	m, err := NewMediator(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGenerator(42)
	for _, req := range g.SetupRequests() {
		if _, err := m.ExecuteString(req); err != nil {
			t.Fatalf("setup: %v\n%s", err, req)
		}
	}
	for i, req := range g.Stream(120, 1) {
		if _, err := m.ExecuteString(req); err != nil {
			t.Fatalf("request %d failed: %v\n%s", i, err, req)
		}
	}
	if m.DB().TotalRows() == 0 {
		t.Error("stream inserted nothing")
	}
}

func TestStreamExecutesOnNativeStore(t *testing.T) {
	g := NewGenerator(42)
	store := triplestore.New()
	reqs := append(g.SetupRequests(), g.Stream(120, 1)...)
	for i, src := range reqs {
		req, err := update.Parse(src)
		if err != nil {
			t.Fatalf("request %d: %v\n%s", i, err, src)
		}
		if _, err := update.Apply(store, req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if store.Len() == 0 {
		t.Error("stream inserted nothing")
	}
}

func TestStreamEquivalenceMediatorVsNative(t *testing.T) {
	// The deterministic stream drives both systems into equivalent
	// states (B1's validity precondition).
	m, err := NewMediator(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := triplestore.New()
	g1, g2 := NewGenerator(3), NewGenerator(3)
	reqs1 := append(g1.SetupRequests(), g1.Stream(60, 1)...)
	reqs2 := append(g2.SetupRequests(), g2.Stream(60, 1)...)
	for i := range reqs1 {
		if _, err := m.ExecuteString(reqs1[i]); err != nil {
			t.Fatalf("mediator request %d: %v", i, err)
		}
		req, err := update.Parse(reqs2[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := update.Apply(store, req); err != nil {
			t.Fatal(err)
		}
	}
	exported, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	nativeGraph := store.Graph()
	// Compare ignoring rdf:type triples (derived by the mapping).
	diff := 0
	exported.Each(func(tr rdf.Triple) bool {
		if tr.P.Value == "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
			return true
		}
		if !nativeGraph.Contains(tr) {
			diff++
		}
		return true
	})
	nativeGraph.Each(func(tr rdf.Triple) bool {
		if !exported.Contains(tr) {
			diff++
		}
		return true
	})
	if diff != 0 {
		t.Errorf("views differ in %d triples", diff)
	}
}

func TestCountRequestKinds(t *testing.T) {
	g := NewGenerator(1)
	stream := g.Stream(100, 1)
	counts := CountRequestKinds(stream)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 100 {
		t.Errorf("counts = %v", counts)
	}
	if counts["INSERT DATA"] == 0 || counts["MODIFY"] == 0 {
		t.Errorf("mix missing kinds: %v", counts)
	}
}
