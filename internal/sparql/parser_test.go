package sparql

import (
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
)

func TestParseSelectBasic(t *testing.T) {
	q, err := ParseQuery(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?mbox WHERE {
  ?x a foaf:Person ;
     foaf:firstName "Matthias" ;
     foaf:family_name "Hert" ;
     foaf:mbox ?mbox .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormSelect {
		t.Errorf("Form = %v", q.Form)
	}
	if len(q.Vars) != 2 || q.Vars[0] != "x" || q.Vars[1] != "mbox" {
		t.Errorf("Vars = %v", q.Vars)
	}
	if len(q.Where.Triples) != 4 {
		t.Fatalf("triples = %d, want 4", len(q.Where.Triples))
	}
	tp := q.Where.Triples[0]
	if !tp.S.IsVar || tp.S.Var != "x" {
		t.Errorf("subject = %v", tp.S)
	}
	if tp.P.Term != rdf.IRI(rdf.RDFType) {
		t.Errorf("'a' not expanded: %v", tp.P)
	}
	if q.Where.Triples[1].O.Term != rdf.Literal("Matthias") {
		t.Errorf("object literal = %v", q.Where.Triples[1].O)
	}
}

func TestParseSelectStarDistinctModifiers(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT DISTINCT * WHERE { ?s ex:p ?o . } ORDER BY DESC(?o) ?s LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || !q.Distinct {
		t.Error("Star/Distinct not set")
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[0].Var != "o" || q.OrderBy[1].Desc {
		t.Errorf("OrderBy = %v", q.OrderBy)
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("Limit/Offset = %d/%d", q.Limit, q.Offset)
	}
}

func TestParseAsk(t *testing.T) {
	q, err := ParseQuery(`ASK { <http://e/s> <http://e/p> 42 . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormAsk || len(q.Where.Triples) != 1 {
		t.Errorf("bad ASK parse: %+v", q)
	}
	gt, ok := q.Where.Triples[0].AsTriple()
	if !ok {
		t.Fatal("pattern should be ground")
	}
	if gt.O != rdf.TypedLiteral("42", rdf.XSDInteger) {
		t.Errorf("object = %v", gt.O)
	}
}

func TestParseConstruct(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
CONSTRUCT { ?s ex:q ?o . } WHERE { ?s ex:p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormConstruct || len(q.Template) != 1 {
		t.Fatalf("bad CONSTRUCT: %+v", q)
	}
}

func TestParseFilter(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT ?s WHERE { ?s ex:year ?y . FILTER (?y >= 2005 && ?y < 2010) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 1 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
	want := "((?y >= \"2005\"^^<http://www.w3.org/2001/XMLSchema#integer>) && (?y < \"2010\"^^<http://www.w3.org/2001/XMLSchema#integer>))"
	if got := q.Where.Filters[0].String(); got != want {
		t.Errorf("filter = %s", got)
	}
}

func TestParseFilterBuiltins(t *testing.T) {
	q, err := ParseQuery(`
SELECT ?s WHERE {
  ?s ?p ?o .
  FILTER REGEX(STR(?o), "^mailto:", "i")
  FILTER (BOUND(?o) && ISIRI(?s) && !ISBLANK(?s))
  FILTER (DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#string> || LANG(?o) != "")
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 3 {
		t.Fatalf("filters = %d", len(q.Where.Filters))
	}
}

func TestParseOptionalAndUnion(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE {
  ?s ex:p ?o .
  OPTIONAL { ?s ex:q ?q . }
  { ?s ex:r ?r . } UNION { ?s ex:t ?r . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Optionals) != 1 {
		t.Fatalf("optionals = %d", len(q.Where.Optionals))
	}
	if len(q.Where.Unions) != 1 || len(q.Where.Unions[0]) != 2 {
		t.Fatalf("unions = %v", q.Where.Unions)
	}
}

func TestParseObjectListAndPredicateList(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE { ?s ex:p ex:a , ex:b ; ex:q "x" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Triples) != 3 {
		t.Fatalf("triples = %d, want 3", len(q.Where.Triples))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ name, src string }{
		{"empty", ""},
		{"describe", "DESCRIBE <http://e/x>"},
		{"graph", "SELECT * WHERE { GRAPH ?g { ?s ?p ?o } }"},
		{"from", "SELECT * FROM <http://e/g> WHERE { ?s ?p ?o }"},
		{"unknown prefix", "SELECT * WHERE { ex:s ?p ?o }"},
		{"unterminated group", "SELECT * WHERE { ?s ?p ?o "},
		{"trailing junk", "ASK { ?s ?p ?o } garbage"},
		{"missing vars", "SELECT WHERE { ?s ?p ?o }"},
		{"literal subject", `SELECT * WHERE { "s" ?p ?o }`},
		{"literal predicate", `SELECT * WHERE { ?s "p" ?o }`},
		{"a as subject", "SELECT * WHERE { a ?p ?o }"},
		{"bad limit", "SELECT * WHERE { ?s ?p ?o } LIMIT ?x"},
		{"empty var", "SELECT ? WHERE { ?s ?p ?o }"},
		{"bnode predicate", "SELECT * WHERE { ?s _:b ?o }"},
		{"bad filter start", "SELECT * WHERE { ?s ?p ?o FILTER ?x }"},
		{"regex arity", `SELECT * WHERE { ?s ?p ?o FILTER REGEX(?o) }`},
		{"order without key", "SELECT * WHERE { ?s ?p ?o } ORDER BY LIMIT 3"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseQuery(tc.src); err == nil {
				t.Errorf("ParseQuery(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := ParseQuery("SELECT *\nWHERE { ?s ?p }")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	p, err := NewParser(`?a + ?b * ?c = ?d || ?e && ?f`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := p.ParseExpr()
	if err != nil {
		t.Fatal(err)
	}
	// * binds tighter than +, = tighter than &&, && tighter than ||.
	want := "(((?a + (?b * ?c)) = ?d) || (?e && ?f))"
	if got := e.String(); got != want {
		t.Errorf("precedence tree = %s, want %s", got, want)
	}
}

func TestParseIRIVsLessThan(t *testing.T) {
	q, err := ParseQuery(`SELECT * WHERE { ?s ?p ?o . FILTER (?o < 5 && ?s = <http://e/x>) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.Filters) != 1 {
		t.Fatal("filter missing")
	}
	if !strings.Contains(q.Where.Filters[0].String(), "<http://e/x>") {
		t.Errorf("IRI lost: %s", q.Where.Filters[0])
	}
}

func TestParseBooleanLiterals(t *testing.T) {
	q, err := ParseQuery(`SELECT * WHERE { ?s ?p true . FILTER (?x = false) }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Triples[0].O.Term != rdf.BooleanLiteral(true) {
		t.Errorf("object = %v", q.Where.Triples[0].O)
	}
}

func TestParseTypedAndLangLiterals(t *testing.T) {
	q, err := ParseQuery(`
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT * WHERE { ?s ?p "2009"^^xsd:int . ?s ?q "hi"@en . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Triples[0].O.Term != rdf.TypedLiteral("2009", rdf.XSDInt) {
		t.Errorf("typed literal = %v", q.Where.Triples[0].O)
	}
	if q.Where.Triples[1].O.Term != rdf.LangLiteral("hi", "en") {
		t.Errorf("lang literal = %v", q.Where.Triples[1].O)
	}
}

func TestGroupVars(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE {
  ?s ex:p ?o .
  OPTIONAL { ?s ex:q ?extra . }
  { ?s ex:r ?u1 . } UNION { ?s ex:r ?u2 . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	got := q.Where.Vars()
	want := []string{"extra", "o", "s", "u1", "u2"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
}

func TestDollarVariables(t *testing.T) {
	q, err := ParseQuery(`SELECT $x WHERE { $x ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Vars[0] != "x" {
		t.Errorf("dollar var = %v", q.Vars)
	}
}
