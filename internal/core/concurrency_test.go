package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMediation fires requests from several goroutines; the
// mediator serializes them through the database's transaction lock,
// and every accepted request lands exactly once.
func TestConcurrentMediation(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i + 1
				req := fmt.Sprintf(`%s
INSERT DATA {
  ex:author%d foaf:family_name "L%d" ;
      foaf:mbox <mailto:a%d@example.org> ;
      ont:team ex:team5 .
}`, paperPrologue, id, id, id)
				if _, err := m.ExecuteString(req); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent request failed: %v", err)
	}
	if n, _ := m.DB().RowCount("author"); n != workers*perWorker {
		t.Errorf("author rows = %d, want %d", n, workers*perWorker)
	}
}

// TestConcurrentReadsDuringWrites interleaves queries with updates.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "L%d" . }`, paperPrologue, i, i)
			if _, err := m.ExecuteString(req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := m.Query(paperPrologue + `SELECT ?x WHERE { ?x foaf:family_name ?n . }`); err != nil {
			t.Fatalf("query during writes: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
