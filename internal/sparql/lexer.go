// Package sparql implements a SPARQL 1.0 query engine: tokenizer,
// abstract syntax, parser, expression evaluation, and a solution-
// sequence evaluator that runs over any triple Matcher.
//
// The supported subset is the one the paper relies on (and a bit
// more): SELECT / ASK / CONSTRUCT forms, basic graph patterns,
// FILTER with the SPARQL operator set and the common built-ins,
// OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT and OFFSET.
//
// The tokenizer is shared with package update, which parses the
// SPARQL/Update member submission (INSERT DATA, DELETE DATA, MODIFY)
// on top of it — exactly as the paper notes that "the reuse of the
// SPARQL grammar in SPARQL/Update makes a translation in multiple
// steps possible" (Section 5.2).
package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind enumerates SPARQL token kinds.
type TokKind int

// Token kinds. Keywords are scanned as TokKeyword with the canonical
// upper-case spelling in Val.
const (
	TokEOF TokKind = iota
	TokVar         // ?x or $x (Val holds the name without sigil)
	TokIRIRef
	TokPName
	TokBlankNode
	TokString
	TokInteger
	TokDecimal
	TokDouble
	TokLangTag
	TokKeyword // SELECT, WHERE, FILTER, INSERT, DATA, ...
	TokA       // lower-case 'a' used as rdf:type in patterns
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokDot
	TokSemicolon
	TokComma
	TokStar
	TokCaretCaret
	TokEq     // =
	TokNe     // !=
	TokLt     // <
	TokLe     // <=
	TokGt     // >
	TokGe     // >=
	TokAndAnd // &&
	TokOrOr   // ||
	TokBang   // !
	TokPlus
	TokMinus
	TokSlash
	TokAnon // []
)

func (k TokKind) String() string {
	names := map[TokKind]string{
		TokEOF: "end of input", TokVar: "variable", TokIRIRef: "IRI",
		TokPName: "prefixed name", TokBlankNode: "blank node", TokString: "string",
		TokInteger: "integer", TokDecimal: "decimal", TokDouble: "double",
		TokLangTag: "language tag", TokKeyword: "keyword", TokA: "'a'",
		TokLBrace: "'{'", TokRBrace: "'}'", TokLParen: "'('", TokRParen: "')'",
		TokDot: "'.'", TokSemicolon: "';'", TokComma: "','", TokStar: "'*'",
		TokCaretCaret: "'^^'", TokEq: "'='", TokNe: "'!='", TokLt: "'<'",
		TokLe: "'<='", TokGt: "'>'", TokGe: "'>='", TokAndAnd: "'&&'",
		TokOrOr: "'||'", TokBang: "'!'", TokPlus: "'+'", TokMinus: "'-'",
		TokSlash: "'/'", TokAnon: "'[]'",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Val  string
	Line int
	Col  int
}

// keywords recognized by the shared SPARQL / SPARQL-Update grammar.
var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "CONSTRUCT": true, "DESCRIBE": true,
	"WHERE": true, "FILTER": true, "OPTIONAL": true, "UNION": true,
	"PREFIX": true, "BASE": true, "DISTINCT": true, "REDUCED": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "FROM": true, "NAMED": true, "GRAPH": true,
	// Aggregation (SPARQL 1.1 subset):
	"GROUP": true, "HAVING": true, "AS": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true,
	// SPARQL/Update member submission:
	"MODIFY": true, "INSERT": true, "DELETE": true, "DATA": true,
	"INTO": true, "LOAD": true, "CLEAR": true, "CREATE": true, "DROP": true,
	// Built-in functions used in FILTER:
	"BOUND": true, "REGEX": true, "STR": true, "LANG": true, "DATATYPE": true,
	"ISIRI": true, "ISURI": true, "ISLITERAL": true, "ISBLANK": true,
	"LANGMATCHES": true, "SAMETERM": true, "TRUE": true, "FALSE": true,
}

// Lexer scans SPARQL/SPARQL-Update source into tokens.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("sparql: line %d col %d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// Next scans the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpace()
	t := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		t.Kind = TokEOF
		return t, nil
	}
	c := lx.peek()
	switch {
	case c == '?' || c == '$':
		lx.advance()
		var b strings.Builder
		for lx.pos < len(lx.src) && isVarChar(rune(lx.peek())) {
			b.WriteByte(lx.advance())
		}
		if b.Len() == 0 {
			return t, lx.errorf("empty variable name after %q", c)
		}
		t.Kind = TokVar
		t.Val = b.String()
		return t, nil
	case c == '<':
		return lx.lexLtOrIRI(t)
	case c == '"' || c == '\'':
		return lx.lexString(t)
	case c == '_' && lx.peekAt(1) == ':':
		lx.advance()
		lx.advance()
		var b strings.Builder
		for lx.pos < len(lx.src) && isNameChar(rune(lx.peek())) {
			b.WriteByte(lx.advance())
		}
		if b.Len() == 0 {
			return t, lx.errorf("empty blank node label")
		}
		t.Kind = TokBlankNode
		t.Val = b.String()
		return t, nil
	case c == '@':
		lx.advance()
		var b strings.Builder
		for lx.pos < len(lx.src) {
			ch := lx.peek()
			if ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '-' || ch >= '0' && ch <= '9' {
				b.WriteByte(lx.advance())
			} else {
				break
			}
		}
		if b.Len() == 0 {
			return t, lx.errorf("empty language tag")
		}
		t.Kind = TokLangTag
		t.Val = b.String()
		return t, nil
	case c == '{':
		lx.advance()
		t.Kind = TokLBrace
		return t, nil
	case c == '}':
		lx.advance()
		t.Kind = TokRBrace
		return t, nil
	case c == '(':
		lx.advance()
		t.Kind = TokLParen
		return t, nil
	case c == ')':
		lx.advance()
		t.Kind = TokRParen
		return t, nil
	case c == '.':
		if isDigitB(lx.peekAt(1)) {
			return lx.lexNumber(t)
		}
		lx.advance()
		t.Kind = TokDot
		return t, nil
	case c == ';':
		lx.advance()
		t.Kind = TokSemicolon
		return t, nil
	case c == ',':
		lx.advance()
		t.Kind = TokComma
		return t, nil
	case c == '*':
		lx.advance()
		t.Kind = TokStar
		return t, nil
	case c == '^':
		if lx.peekAt(1) != '^' {
			return t, lx.errorf("expected '^^'")
		}
		lx.advance()
		lx.advance()
		t.Kind = TokCaretCaret
		return t, nil
	case c == '=':
		lx.advance()
		t.Kind = TokEq
		return t, nil
	case c == '!':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			t.Kind = TokNe
		} else {
			t.Kind = TokBang
		}
		return t, nil
	case c == '>':
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			t.Kind = TokGe
		} else {
			t.Kind = TokGt
		}
		return t, nil
	case c == '&':
		if lx.peekAt(1) != '&' {
			return t, lx.errorf("expected '&&'")
		}
		lx.advance()
		lx.advance()
		t.Kind = TokAndAnd
		return t, nil
	case c == '|':
		if lx.peekAt(1) != '|' {
			return t, lx.errorf("expected '||'")
		}
		lx.advance()
		lx.advance()
		t.Kind = TokOrOr
		return t, nil
	case c == '+':
		if isDigitB(lx.peekAt(1)) {
			return lx.lexNumber(t)
		}
		lx.advance()
		t.Kind = TokPlus
		return t, nil
	case c == '-':
		if isDigitB(lx.peekAt(1)) {
			return lx.lexNumber(t)
		}
		lx.advance()
		t.Kind = TokMinus
		return t, nil
	case c == '/':
		lx.advance()
		t.Kind = TokSlash
		return t, nil
	case c == '[':
		lx.advance()
		lx.skipSpace()
		if lx.peek() == ']' {
			lx.advance()
			t.Kind = TokAnon
			return t, nil
		}
		return t, lx.errorf("blank node property lists '[...]' are not supported in this SPARQL subset")
	case isDigitB(c):
		return lx.lexNumber(t)
	default:
		return lx.lexNameOrKeyword(t)
	}
}

// lexLtOrIRI disambiguates '<' (less-than / less-equal) from '<iri>'.
// If a '>' appears before any whitespace or quote, the token is an
// IRI reference; otherwise it is a comparison operator.
func (lx *Lexer) lexLtOrIRI(t Token) (Token, error) {
	for i := 1; lx.pos+i < len(lx.src); i++ {
		c := lx.src[lx.pos+i]
		switch c {
		case '>':
			// It is an IRI reference.
			lx.advance() // '<'
			var b strings.Builder
			for lx.peek() != '>' {
				b.WriteByte(lx.advance())
			}
			lx.advance() // '>'
			t.Kind = TokIRIRef
			t.Val = b.String()
			return t, nil
		case ' ', '\t', '\n', '\r', '"', '\'', '{', '}':
			goto operator
		}
	}
operator:
	lx.advance()
	if lx.peek() == '=' {
		lx.advance()
		t.Kind = TokLe
	} else {
		t.Kind = TokLt
	}
	return t, nil
}

func (lx *Lexer) lexString(t Token) (Token, error) {
	quote := lx.advance()
	long := false
	if lx.peek() == quote && lx.peekAt(1) == quote {
		lx.advance()
		lx.advance()
		long = true
	}
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return t, lx.errorf("unterminated string")
		}
		c := lx.advance()
		if c == quote {
			if !long {
				break
			}
			if lx.peek() == quote && lx.peekAt(1) == quote {
				lx.advance()
				lx.advance()
				break
			}
			b.WriteByte(c)
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return t, lx.errorf("newline in string literal")
		}
		if c == '\\' {
			if lx.pos >= len(lx.src) {
				return t, lx.errorf("unterminated escape")
			}
			switch esc := lx.advance(); esc {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'b':
				b.WriteByte('\b')
			case 'f':
				b.WriteByte('\f')
			case '"', '\'', '\\':
				b.WriteByte(esc)
			case 'u', 'U':
				n := 4
				if esc == 'U' {
					n = 8
				}
				var v rune
				for i := 0; i < n; i++ {
					if lx.pos >= len(lx.src) {
						return t, lx.errorf("unterminated unicode escape")
					}
					h := lx.advance()
					var d rune
					switch {
					case h >= '0' && h <= '9':
						d = rune(h - '0')
					case h >= 'a' && h <= 'f':
						d = rune(h-'a') + 10
					case h >= 'A' && h <= 'F':
						d = rune(h-'A') + 10
					default:
						return t, lx.errorf("invalid hex digit %q", h)
					}
					v = v*16 + d
				}
				b.WriteRune(v)
			default:
				return t, lx.errorf("invalid escape '\\%c'", esc)
			}
			continue
		}
		b.WriteByte(c)
	}
	t.Kind = TokString
	t.Val = b.String()
	return t, nil
}

func (lx *Lexer) lexNumber(t Token) (Token, error) {
	var b strings.Builder
	if c := lx.peek(); c == '+' || c == '-' {
		b.WriteByte(lx.advance())
	}
	for isDigitB(lx.peek()) {
		b.WriteByte(lx.advance())
	}
	kind := TokInteger
	if lx.peek() == '.' && isDigitB(lx.peekAt(1)) {
		kind = TokDecimal
		b.WriteByte(lx.advance())
		for isDigitB(lx.peek()) {
			b.WriteByte(lx.advance())
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		kind = TokDouble
		b.WriteByte(lx.advance())
		if c := lx.peek(); c == '+' || c == '-' {
			b.WriteByte(lx.advance())
		}
		if !isDigitB(lx.peek()) {
			return t, lx.errorf("malformed double")
		}
		for isDigitB(lx.peek()) {
			b.WriteByte(lx.advance())
		}
	}
	t.Kind = kind
	t.Val = b.String()
	return t, nil
}

func (lx *Lexer) lexNameOrKeyword(t Token) (Token, error) {
	var b strings.Builder
	sawColon := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if c == ':' {
			sawColon = true
			b.WriteByte(lx.advance())
			continue
		}
		if isNameChar(rune(c)) || c == '.' && isNameChar(rune(lx.peekAt(1))) {
			b.WriteByte(lx.advance())
			continue
		}
		break
	}
	word := b.String()
	if word == "" {
		return t, lx.errorf("unexpected character %q", lx.peek())
	}
	if sawColon {
		t.Kind = TokPName
		t.Val = word
		return t, nil
	}
	if word == "a" {
		t.Kind = TokA
		return t, nil
	}
	up := strings.ToUpper(word)
	if keywords[up] {
		t.Kind = TokKeyword
		t.Val = up
		return t, nil
	}
	return t, lx.errorf("unexpected bare word %q", word)
}

func isDigitB(c byte) bool { return c >= '0' && c <= '9' }

func isVarChar(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' ||
		r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r))
}

func isNameChar(r rune) bool {
	return isVarChar(r) || r == '-'
}
