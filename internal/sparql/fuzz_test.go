package sparql

import (
	"testing"
)

// FuzzParseQuery feeds arbitrary query text through the SPARQL
// parser: it must never panic, and whatever it accepts must be
// structurally sound enough for the evaluator (a query form in range
// and a non-nil WHERE group for SELECT/ASK).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT * WHERE { ?x rdf:type foaf:Person ; foaf:family_name "Hert" . }`,
		`SELECT DISTINCT ?x WHERE { ?x <http://b/p> ?y . FILTER (?y > 3) } ORDER BY DESC(?x) LIMIT 5 OFFSET 2`,
		// the comparison-FILTER / solution-modifier shapes the plan
		// pipeline compiles since PR 5
		`SELECT ?x ?l WHERE { ?x <http://b/name> ?l . FILTER (?l >= "A" && ?l < "M" && ?l != "F") } ORDER BY ?l LIMIT 0`,
		`SELECT ?a WHERE { ?a <http://b/y> ?y ; <http://b/r> ?r . FILTER (?y < ?r) } ORDER BY DESC(?y) OFFSET 3`,
		`SELECT ?p WHERE { ?p <http://b/year> ?y . FILTER (?y = "2009") }`,
		`ASK { <http://a/1> <http://b/p> "v" . }`,
		`CONSTRUCT { ?x <http://b/q> ?y . } WHERE { ?x <http://b/p> ?y . }`,
		`SELECT ?x WHERE { { ?x <http://b/p> "a" . } UNION { ?x <http://b/p> "b" . } }`,
		`SELECT ?x WHERE { ?x <http://b/p> ?y . OPTIONAL { ?x <http://b/q> ?z . } }`,
		`SELECT ?x WHERE { ?x <http://b/p> "2009"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		// the rich surface compiled since PR 7: aggregates, GROUP BY,
		// FILTER disjunctions, OPTIONAL groups, UNION under modifiers
		`SELECT (COUNT(*) AS ?n) WHERE { ?x <http://b/p> ?y . }`,
		`SELECT ?t (COUNT(?x) AS ?n) (SUM(?y) AS ?s) (AVG(?y) AS ?a) WHERE { ?x <http://b/t> ?t ; <http://b/y> ?y . } GROUP BY ?t`,
		`SELECT (MIN(?y) AS ?lo) (MAX(?y) AS ?hi) WHERE { ?p <http://b/y> ?y . }`,
		`SELECT ?x WHERE { ?x <http://b/name> ?l . FILTER (?l = "A" || ?l = "B" || ?l > "X") }`,
		`SELECT ?x ?z WHERE { ?x <http://b/p> ?y . OPTIONAL { ?x <http://b/fk> ?t . ?t <http://b/q> ?z . } }`,
		`SELECT ?n WHERE { { ?t <http://b/name> ?n . } UNION { ?x <http://b/last> ?n . } } ORDER BY ?n LIMIT 4`,
		`SELECT (COUNT(?x AS ?n) WHERE { ?x <http://b/p> ?y . }`,
		`SELECT (SUM(*) AS ?s) WHERE { ?x <http://b/p> ?y . }`,
		`SELECT ?x (COUNT(*) AS ?n) WHERE { ?x <http://b/p> ?y . } GROUP BY`,
		`SELECT`, `ASK {`, "\x00", `SELECT ?x WHERE`, `PREFIX : <u> SELECT ?x WHERE { :a :b ?x }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
		switch q.Form {
		case FormSelect, FormAsk, FormConstruct:
		default:
			t.Fatalf("parsed query has invalid form %v", q.Form)
		}
		if q.Where == nil && q.Form != FormConstruct {
			t.Fatalf("parsed %s query has nil WHERE", q.Form)
		}
	})
}
