package sparql

import (
	"sort"
	"strings"

	"ontoaccess/internal/rdf"
)

// QueryForm distinguishes the supported query forms.
type QueryForm int

// Supported query forms.
const (
	FormSelect QueryForm = iota
	FormAsk
	FormConstruct
)

func (f QueryForm) String() string {
	switch f {
	case FormSelect:
		return "SELECT"
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	}
	return "?"
}

// PatternTerm is one position of a triple pattern: either a variable
// or a concrete RDF term.
type PatternTerm struct {
	// Var is the variable name (without sigil) when IsVar is set.
	Var   string
	IsVar bool
	// Term is the concrete term when IsVar is unset.
	Term rdf.Term
}

// VarTerm returns a variable pattern term.
func VarTerm(name string) PatternTerm { return PatternTerm{Var: name, IsVar: true} }

// ConstTerm returns a concrete pattern term.
func ConstTerm(t rdf.Term) PatternTerm { return PatternTerm{Term: t} }

// String renders the pattern term in SPARQL syntax.
func (pt PatternTerm) String() string {
	if pt.IsVar {
		return "?" + pt.Var
	}
	return pt.Term.String()
}

// Resolve substitutes a binding into the term: variables bound in b
// are replaced by their value; unbound variables yield ok=false.
func (pt PatternTerm) Resolve(b Binding) (rdf.Term, bool) {
	if !pt.IsVar {
		return pt.Term, true
	}
	t, ok := b[pt.Var]
	return t, ok
}

// TriplePattern is a triple with variables allowed in any position.
type TriplePattern struct {
	S, P, O PatternTerm
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Vars returns the variable names used in the pattern.
func (tp TriplePattern) Vars() []string {
	var out []string
	for _, pt := range []PatternTerm{tp.S, tp.P, tp.O} {
		if pt.IsVar {
			out = append(out, pt.Var)
		}
	}
	return out
}

// IsGround reports whether the pattern contains no variables.
func (tp TriplePattern) IsGround() bool {
	return !tp.S.IsVar && !tp.P.IsVar && !tp.O.IsVar
}

// AsTriple converts a ground pattern to a concrete triple.
func (tp TriplePattern) AsTriple() (rdf.Triple, bool) {
	if !tp.IsGround() {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term}, true
}

// Instantiate substitutes the binding into the pattern, producing a
// ground triple. It fails if any variable is unbound.
func (tp TriplePattern) Instantiate(b Binding) (rdf.Triple, bool) {
	s, ok := tp.S.Resolve(b)
	if !ok {
		return rdf.Triple{}, false
	}
	p, ok := tp.P.Resolve(b)
	if !ok {
		return rdf.Triple{}, false
	}
	o, ok := tp.O.Resolve(b)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// GroupPattern is a SPARQL group graph pattern: a sequence of triple
// patterns, FILTER constraints, OPTIONAL sub-groups, and UNION
// alternatives, evaluated in order.
type GroupPattern struct {
	Triples   []TriplePattern
	Filters   []Expr
	Optionals []*GroupPattern
	// Unions holds UNION alternative lists: each element is the list
	// of branches of one "{A} UNION {B} UNION {C}" construct.
	Unions [][]*GroupPattern
}

// Vars returns the sorted set of variables appearing anywhere in the
// group (including sub-groups).
func (g *GroupPattern) Vars() []string {
	set := map[string]bool{}
	g.collectVars(set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (g *GroupPattern) collectVars(set map[string]bool) {
	for _, tp := range g.Triples {
		for _, v := range tp.Vars() {
			set[v] = true
		}
	}
	for _, o := range g.Optionals {
		o.collectVars(set)
	}
	for _, alts := range g.Unions {
		for _, a := range alts {
			a.collectVars(set)
		}
	}
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  string
	Desc bool
}

// Query is a parsed SPARQL query.
type Query struct {
	Form     QueryForm
	Prefixes *rdf.PrefixMap
	// Select projection. Star means "SELECT *".
	Vars     []string
	Star     bool
	Distinct bool
	// Construct template (FormConstruct only).
	Template []TriplePattern
	Where    *GroupPattern
	OrderBy  []OrderKey
	// Limit and Offset; negative means unset.
	Limit  int
	Offset int
	// Aggs, when non-nil, is aligned index-for-index with Vars: entry i
	// describes how projection variable Vars[i] is computed — a plain
	// group-by variable (Fn empty) or an aggregate over Var. GroupBy
	// lists the grouping variables. The parser guarantees aggregation
	// never combines with DISTINCT, ORDER BY, LIMIT or OFFSET.
	Aggs    []AggSpec
	GroupBy []string
	// Having lists the HAVING constraints, one per conjunct: groups
	// whose aggregate value fails the comparison are dropped. Non-nil
	// only when Aggs is.
	Having []HavingCond
}

// HavingCond is one HAVING conjunct: an aggregate call compared with a
// literal. The comparison is lexical-numeric — both sides compare as
// float64 when both lexical forms parse as one, as strings when
// neither does, and fail otherwise (so do unbound aggregate results).
type HavingCond struct {
	Agg AggSpec
	Op  BinOp
	Lit rdf.Term
}

// AggSpec describes one SELECT projection item of an aggregating
// query. Fn is COUNT, SUM, AVG, MIN or MAX — or empty for a plain
// group-by variable. Var is the argument variable; empty Var with
// COUNT means COUNT(*).
type AggSpec struct {
	Fn  string
	Var string
}

// Binding maps variable names to RDF terms. A missing key means the
// variable is unbound in this solution.
type Binding map[string]rdf.Term

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}

// String renders the binding deterministically, for tests and logs.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("?" + k + "=" + b[k].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Compatible reports whether two bindings agree on every shared
// variable (the SPARQL join condition).
func (b Binding) Compatible(other Binding) bool {
	for k, v := range b {
		if ov, ok := other[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Merge returns the union of two compatible bindings.
func (b Binding) Merge(other Binding) Binding {
	m := b.Clone()
	for k, v := range other {
		m[k] = v
	}
	return m
}
