package rdb

// Durability for the MVCC engine: logical write-ahead logging,
// snapshot checkpointing, and crash recovery.
//
// The unit of logging is the *publish* — the commit step that installs
// the next database snapshot. Every publish appends exactly one record
// whose sequence number equals the version of the snapshot it
// produces, and fsyncs it before the snapshot becomes visible
// (write-ahead rule). Because the group-commit scheduler runs a whole
// drained batch inside one transaction and therefore one publish, the
// WAL inherits its amortization for free: one record and one fsync
// cover every operation in the batch, the same way one lock
// acquisition already does.
//
// Records carry logical operations, not pages: for a commit, the
// tables touched and the per-row inserts/updates/deletes with their
// typed, post-coercion values and internal row ids; for DDL, the
// serialized schema. Replay re-applies them at the tableVersion level
// without re-validating constraints — the rows were validated and
// coerced when the original commit ran, and re-deriving the exact same
// versions (asserted via the logged row ids) is what makes the
// recovered export byte-identical to the acknowledged prefix.
//
// Sequence numbers are dense: every publish is logged, so replay can
// demand seq == version+1 and detect a lost record as a hard error
// rather than silently skipping history. Records at or below the
// checkpoint version are skipped — they can legitimately linger in old
// segments when a crash lands between checkpoint write and segment
// removal.
//
// Checkpointing rotates the log under the publish lock (so every
// record not covered by the checkpoint lives in segments at or after
// the returned index), serializes the immutable snapshot outside any
// lock, atomically replaces the checkpoint file, and only then removes
// the covered segments. A crash at any point leaves either the old
// checkpoint plus a longer log, or the new checkpoint plus a log whose
// stale prefix replay skips.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ontoaccess/internal/rdb/wal"
)

const (
	recCommit byte = 'C'
	recCreate byte = 'T'
	recDrop   byte = 'X'
	// Branch-DAG records: ref creation ('R') and removal ('Q'), a
	// commit published on a branch head ('B'), and a merge between a
	// branch and main ('M'). Like every record their sequence number is
	// the global commit seq the operation consumed, so one dense
	// sequence covers the whole DAG and replay rebuilds it exactly.
	recBranchCreate byte = 'R'
	recBranchDrop   byte = 'Q'
	recBranchCommit byte = 'B'
	recMerge        byte = 'M'

	walInsert byte = 'i'
	walUpdate byte = 'u'
	walDelete byte = 'd'

	checkpointFile  = "checkpoint.db"
	checkpointMagic = "OACP1"
	// Incremental checkpoints: checkpoint.db becomes a manifest
	// (manifestMagic) referencing one immutable per-table file
	// (tableFileMagic) per table, named by the snapshot version that
	// last changed the table — so a checkpoint rewrites only the
	// tables dirtied since the previous one. V2 manifests
	// (manifestMagicV2) additionally carry the global commit seq and a
	// refs block (every named branch with its head and base snapshots),
	// so recovery restores the commit DAG, not just the main head. The
	// legacy formats (manifestMagic, checkpointMagic) are still read
	// for old data dirs.
	manifestMagic   = "OACM1"
	manifestMagicV2 = "OACM2"
	tableFileMagic  = "OATB1"

	// DefaultCheckpointBytes is the WAL growth between automatic
	// checkpoints when Options.CheckpointBytes is zero.
	DefaultCheckpointBytes = 4 << 20
)

// Options configures persistence for Open.
type Options struct {
	// DataDir roots the WAL segments and the checkpoint file. Empty
	// means ephemeral: a memory-only database identical to NewDatabase.
	DataDir string
	// CheckpointBytes is the WAL growth that triggers an automatic
	// background checkpoint; zero selects DefaultCheckpointBytes,
	// negative disables automatic checkpointing (Checkpoint can still
	// be called explicitly).
	CheckpointBytes int64
	// ShardCount is the number of key-range lock shards per table — a
	// power of two in [1, MaxShardCount]; zero selects
	// DefaultShardCount. More shards admit more concurrent keyed
	// writers per table at the cost of wider reader lock fan-out.
	ShardCount int
	// HistoryDepth bounds the retained-snapshot ring for AS OF reads;
	// zero selects DefaultHistoryDepth, negative disables retention.
	HistoryDepth int
}

// walChange is one logical row mutation captured by a transaction for
// the commit record: the post-coercion row exactly as the derived
// tableVersion stores it.
type walChange struct {
	table string
	op    byte
	id    int64
	row   []Value // nil for deletes
}

// persister holds a database's durability state.
type persister struct {
	log *wal.Log
	dir string

	checkpointBytes int64
	bytesSinceCkpt  atomic.Int64
	lastCkptVersion atomic.Uint64
	checkpoints     atomic.Uint64
	recovered       atomic.Uint64
	checkpointing   atomic.Bool
	// ckptWritten / ckptSkipped count per-table checkpoint files
	// written vs reused across incremental checkpoints (dirty-table
	// skipping made observable).
	ckptWritten atomic.Uint64
	ckptSkipped atomic.Uint64
	// ckptMu serializes Checkpoint against itself (explicit calls vs
	// the automatic background trigger); ckptWG lets Close wait for an
	// in-flight background checkpoint so it cannot recreate files
	// after the caller tears the data directory down.
	ckptMu sync.Mutex
	ckptWG sync.WaitGroup
}

// append writes one record and makes it durable. Callers hold
// whatever lock fixes the record's sequence number (pubMu for
// commits, the exclusive catalog lock for DDL), so records land in
// the log in sequence order.
func (p *persister) append(payload []byte) error {
	if err := p.log.Append(payload); err != nil {
		return err
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	p.bytesSinceCkpt.Add(int64(len(payload)))
	return nil
}

// maybeCheckpoint kicks off a background checkpoint when the WAL has
// grown past the threshold and none is already running. A failed
// background checkpoint leaves the counters untouched, so the next
// publish over the threshold simply retries.
func (p *persister) maybeCheckpoint(db *Database) {
	if p.checkpointBytes <= 0 || p.bytesSinceCkpt.Load() < p.checkpointBytes {
		return
	}
	if !p.checkpointing.CompareAndSwap(false, true) {
		return
	}
	p.ckptWG.Add(1)
	go func() {
		defer p.ckptWG.Done()
		defer p.checkpointing.Store(false)
		db.Checkpoint() //nolint:errcheck // retried on the next trigger
	}()
}

// DurabilityStats is the operator-facing view of the durability
// layer, surfaced through /healthz.
type DurabilityStats struct {
	Enabled bool
	DataDir string
	// WALBytes / WALRecords / WALSegments describe the live log;
	// Fsyncs counts physical fsyncs (compare against the scheduler's
	// batch count for the amortization ratio).
	WALBytes    int64
	WALRecords  uint64
	WALSegments uint64
	Fsyncs      uint64
	// LastCheckpointVersion is the snapshot version the newest durable
	// checkpoint covers; Checkpoints counts completed checkpoints.
	LastCheckpointVersion uint64
	Checkpoints           uint64
	// CheckpointTablesWritten / CheckpointTablesSkipped count per-table
	// checkpoint files written vs reused unchanged across incremental
	// checkpoints — skipped tables were clean since the last checkpoint.
	CheckpointTablesWritten uint64
	CheckpointTablesSkipped uint64
	// RecoveredRecords counts WAL records replayed by Open.
	RecoveredRecords uint64
}

// DurabilityStats reports the durability layer's counters; the zero
// value (Enabled=false) for an ephemeral database.
func (db *Database) DurabilityStats() DurabilityStats {
	p := db.persist
	if p == nil {
		return DurabilityStats{}
	}
	ls := p.log.Stats()
	return DurabilityStats{
		Enabled:                 true,
		DataDir:                 p.dir,
		WALBytes:                ls.Bytes,
		WALRecords:              ls.Records,
		WALSegments:             ls.Segments,
		Fsyncs:                  ls.Fsyncs,
		LastCheckpointVersion:   p.lastCkptVersion.Load(),
		Checkpoints:             p.checkpoints.Load(),
		CheckpointTablesWritten: p.ckptWritten.Load(),
		CheckpointTablesSkipped: p.ckptSkipped.Load(),
		RecoveredRecords:        p.recovered.Load(),
	}
}

// Open returns a database backed by the data directory in o,
// recovering any state a previous process left there: the newest
// valid checkpoint is loaded, the WAL tail is replayed on top of it,
// and a torn final frame (a crash mid-append) is truncated away. The
// recovered result reports whether any prior state was found — when
// true the schema already exists and callers must not re-apply DDL.
// With an empty DataDir, Open degenerates to NewDatabase.
func Open(name string, o Options) (*Database, bool, error) {
	db, err := newDatabaseWith(name, o)
	if err != nil {
		return nil, false, err
	}
	if o.DataDir == "" {
		return db, false, nil
	}
	p := &persister{dir: o.DataDir, checkpointBytes: o.CheckpointBytes}
	if p.checkpointBytes == 0 {
		p.checkpointBytes = DefaultCheckpointBytes
	}
	l, err := wal.Open(o.DataDir)
	if err != nil {
		return nil, false, err
	}
	p.log = l

	hadState := false
	var ckptVersion uint64
	if data, rerr := os.ReadFile(filepath.Join(o.DataDir, checkpointFile)); rerr == nil {
		hadState = true
		ckptVersion, err = db.restoreCheckpoint(o.DataDir, data)
		if err != nil {
			l.Close()
			return nil, false, fmt.Errorf("rdb: loading checkpoint: %w", err)
		}
	} else if !os.IsNotExist(rerr) {
		l.Close()
		return nil, false, rerr
	}

	// Recovery decodes and CRC-verifies sealed segments in parallel;
	// records still apply strictly in log order (replayRecord enforces
	// the dense commit sequence).
	var replayed uint64
	if _, err := l.ReplayParallel(func(payload []byte) error {
		return db.replayRecord(payload, &replayed)
	}); err != nil {
		l.Close()
		return nil, false, fmt.Errorf("rdb: replaying WAL: %w", err)
	}
	p.recovered.Store(replayed)
	p.lastCkptVersion.Store(ckptVersion)
	db.persist = p
	return db, hadState || replayed > 0, nil
}

// Checkpoint serializes the current snapshot to the checkpoint file
// and prunes the WAL segments it covers. Safe to call concurrently
// with commits; a no-op on an ephemeral database.
func (db *Database) Checkpoint() error {
	p := db.persist
	if p == nil {
		return nil
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	// Under pubMu no publish can intervene between reading the state
	// and rotating, so every record not covered by this checkpoint
	// lives in segments >= seg. The refs map only mutates under pubMu
	// (branch create/drop hold it), so it is safe to capture here — and
	// capturing it at the same instant as the seq is what keeps "record
	// covered by checkpoint" and "branch present in manifest" in sync.
	db.pubMu.Lock()
	snap := db.snap.Load()
	seq := db.seq.Load()
	refs := make([]ckptRef, 0, len(db.refs))
	for name, b := range db.refs {
		refs = append(refs, ckptRef{name: name, createdAt: b.createdAt,
			head: b.head.Load(), base: b.base.Load()})
	}
	seg, err := p.log.Rotate()
	db.pubMu.Unlock()
	if err != nil {
		return err
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].name < refs[j].name })
	// The snapshots are immutable: serialization needs no lock. Each
	// table serializes to its own immutable file named by the snapshot
	// version that last changed it, so only tables dirtied since the
	// previous checkpoint are rewritten; the manifest then flips the
	// whole checkpoint atomically. Branch heads and bases share almost
	// every table version with main or with each other, and the
	// (key, asOf) naming dedupes those files for free.
	need := make(map[string]*tableVersion)
	collect := func(s *dbSnapshot) {
		for _, key := range s.order {
			v := s.tables[key]
			need[tableFileName(key, v.asOf)] = v
		}
	}
	collect(snap)
	for _, r := range refs {
		collect(r.head)
		collect(r.base)
	}
	for name, v := range need {
		path := filepath.Join(p.dir, name)
		if _, serr := os.Stat(path); serr == nil {
			p.ckptSkipped.Add(1)
			continue
		} else if !os.IsNotExist(serr) {
			return serr
		}
		if err := wal.WriteFileAtomic(path, encodeTableFile(v)); err != nil {
			return err
		}
		p.ckptWritten.Add(1)
	}
	if err := wal.WriteFileAtomic(filepath.Join(p.dir, checkpointFile), encodeManifest(seq, snap, refs)); err != nil {
		return err
	}
	p.lastCkptVersion.Store(snap.version)
	p.bytesSinceCkpt.Store(0)
	p.checkpoints.Add(1)
	// Prune table files the just-installed manifest no longer
	// references. A crash before this point merely leaves extra files;
	// a failure here is cosmetic, so it does not fail the checkpoint.
	keep := need
	if entries, derr := os.ReadDir(p.dir); derr == nil {
		for _, e := range entries {
			n := e.Name()
			if _, referenced := keep[n]; !referenced &&
				strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".tbl") {
				os.Remove(filepath.Join(p.dir, n)) //nolint:errcheck // cosmetic
			}
		}
	}
	return p.log.RemoveBefore(seg)
}

// tableFileName names the immutable per-table checkpoint file for a
// table key at the snapshot version that last changed it.
func tableFileName(key string, asOf uint64) string {
	return fmt.Sprintf("ckpt-%s-%d.tbl", key, asOf)
}

// Close checkpoints and closes the WAL. The database must not be used
// afterwards. A no-op on an ephemeral database.
func (db *Database) Close() error {
	p := db.persist
	if p == nil {
		return nil
	}
	// Commits happen-before Close, so every background checkpoint has
	// already been registered; wait it out before the final one.
	p.ckptWG.Wait()
	err := db.Checkpoint()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Record and checkpoint encoding. Everything is varint-based except
// floats (fixed 8-byte IEEE bits); strings are length-prefixed.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KInt:
		b = binary.AppendVarint(b, v.I)
	case KFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
	case KString:
		b = appendString(b, v.S)
	case KBool:
		if v.B {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendRow(b []byte, row []Value) []byte {
	b = binary.AppendUvarint(b, uint64(len(row)))
	for _, v := range row {
		b = appendValue(b, v)
	}
	return b
}

func appendSchema(b []byte, s *TableSchema) []byte {
	b = appendString(b, s.Name)
	b = binary.AppendUvarint(b, uint64(len(s.Columns)))
	for i := range s.Columns {
		c := &s.Columns[i]
		b = appendString(b, c.Name)
		b = append(b, byte(c.Type))
		b = binary.AppendUvarint(b, uint64(c.Length))
		flags := byte(0)
		if c.NotNull {
			flags |= 1
		}
		if c.Unique {
			flags |= 2
		}
		if c.AutoIncrement {
			flags |= 4
		}
		if c.Default != nil {
			flags |= 8
		}
		b = append(b, flags)
		if c.Default != nil {
			b = appendValue(b, *c.Default)
		}
	}
	b = binary.AppendUvarint(b, uint64(len(s.PrimaryKey)))
	for _, pk := range s.PrimaryKey {
		b = appendString(b, pk)
	}
	b = binary.AppendUvarint(b, uint64(len(s.ForeignKeys)))
	for _, fk := range s.ForeignKeys {
		b = appendString(b, fk.Column)
		b = appendString(b, fk.RefTable)
	}
	return b
}

// appendChanges serializes a change list grouped by table in
// first-touch order, preserving the per-table operation order (which
// is what fixes replayed insert-id assignment). Shared by commit,
// branch-commit and merge records.
func appendChanges(b []byte, changes []walChange) []byte {
	var order []string
	groups := make(map[string][]walChange)
	for _, c := range changes {
		if _, ok := groups[c.table]; !ok {
			order = append(order, c.table)
		}
		groups[c.table] = append(groups[c.table], c)
	}
	b = binary.AppendUvarint(b, uint64(len(order)))
	for _, t := range order {
		b = appendString(b, t)
		g := groups[t]
		b = binary.AppendUvarint(b, uint64(len(g)))
		for _, c := range g {
			b = append(b, c.op)
			b = binary.AppendUvarint(b, uint64(c.id))
			if c.op != walDelete {
				b = appendRow(b, c.row)
			}
		}
	}
	return b
}

// encodeCommitRecord serializes one main-branch publish.
func encodeCommitRecord(seq uint64, changes []walChange) []byte {
	b := []byte{recCommit}
	b = binary.AppendUvarint(b, seq)
	return appendChanges(b, changes)
}

// encodeBranchCreateRecord serializes a branch create: the ref name
// and the main head version it forked (logged for replay validation).
func encodeBranchCreateRecord(seq uint64, name string, baseVersion uint64) []byte {
	b := []byte{recBranchCreate}
	b = binary.AppendUvarint(b, seq)
	b = appendString(b, name)
	return binary.AppendUvarint(b, baseVersion)
}

// encodeBranchDropRecord serializes a branch drop.
func encodeBranchDropRecord(seq uint64, name string) []byte {
	b := []byte{recBranchDrop}
	b = binary.AppendUvarint(b, seq)
	return appendString(b, name)
}

// encodeBranchCommitRecord serializes one publish on a branch head.
func encodeBranchCommitRecord(seq uint64, name string, changes []walChange) []byte {
	b := []byte{recBranchCommit}
	b = binary.AppendUvarint(b, seq)
	b = appendString(b, name)
	return appendChanges(b, changes)
}

// encodeMergeRecord serializes a merge between a branch and main. A
// fast-forward carries no changes (the merged head adopts the source's
// tables); a three-way carries the transplanted change list, already
// validated against the destination.
func encodeMergeRecord(seq uint64, from, into string, ff bool, changes []walChange) []byte {
	b := []byte{recMerge}
	b = binary.AppendUvarint(b, seq)
	b = appendString(b, from)
	b = appendString(b, into)
	if ff {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return appendChanges(b, changes)
}

func encodeCreateRecord(seq uint64, s *TableSchema) []byte {
	b := []byte{recCreate}
	b = binary.AppendUvarint(b, seq)
	return appendSchema(b, s)
}

func encodeDropRecord(seq uint64, name string) []byte {
	b := []byte{recDrop}
	b = binary.AppendUvarint(b, seq)
	return appendString(b, name)
}

// ckptRef is one named branch captured for a checkpoint manifest.
type ckptRef struct {
	name       string
	createdAt  uint64
	head, base *dbSnapshot
}

// appendSnapshotMeta serializes one snapshot's identity and table list:
// version, parent, publishing branch, and every table key in creation
// order with the snapshot version that last changed it (which names
// its table file).
func appendSnapshotMeta(b []byte, s *dbSnapshot) []byte {
	b = binary.AppendUvarint(b, s.version)
	b = binary.AppendUvarint(b, s.parent)
	b = appendString(b, s.branch)
	b = binary.AppendUvarint(b, uint64(len(s.order)))
	for _, key := range s.order {
		b = appendString(b, key)
		b = binary.AppendUvarint(b, s.tables[key].asOf)
	}
	return b
}

// encodeManifest serializes a V2 checkpoint manifest: magic, the
// global commit seq, the main head snapshot, the refs block (every
// named branch with its head and base snapshots), and a trailing
// CRC-32C.
func encodeManifest(seq uint64, s *dbSnapshot, refs []ckptRef) []byte {
	b := []byte(manifestMagicV2)
	b = binary.AppendUvarint(b, seq)
	b = appendSnapshotMeta(b, s)
	b = binary.AppendUvarint(b, uint64(len(refs)))
	for _, r := range refs {
		b = appendString(b, r.name)
		b = binary.AppendUvarint(b, r.createdAt)
		b = appendSnapshotMeta(b, r.head)
		b = appendSnapshotMeta(b, r.base)
	}
	sum := crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(b, sum)
}

// encodeTableFile serializes one table version: magic, schema, id
// counters, rows in insertion order, and a trailing CRC-32C.
func encodeTableFile(v *tableVersion) []byte {
	b := []byte(tableFileMagic)
	b = appendSchema(b, v.schema)
	b = binary.AppendVarint(b, v.nextID)
	b = binary.AppendVarint(b, v.nextAuto)
	b = binary.AppendUvarint(b, uint64(v.rows.len()))
	v.scan(func(id int64, row []Value) bool {
		b = binary.AppendUvarint(b, uint64(id))
		b = appendRow(b, row)
		return true
	})
	sum := crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
	return binary.LittleEndian.AppendUint32(b, sum)
}

// ---------------------------------------------------------------------------
// Decoding.

// walDec is a cursor over an encoded record; the first failed read
// poisons it, so callers check err once at the end.
type walDec struct {
	b   []byte
	err error
}

func (d *walDec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("rdb: truncated or corrupt record")
	}
}

func (d *walDec) u64() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) i64() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *walDec) byte_() byte {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *walDec) str() string {
	n := d.u64()
	if uint64(len(d.b)) < n {
		d.fail()
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *walDec) value() Value {
	switch ValueKind(d.byte_()) {
	case KNull:
		return Null
	case KInt:
		return Int(d.i64())
	case KFloat:
		if len(d.b) < 8 {
			d.fail()
			return Null
		}
		bits := binary.LittleEndian.Uint64(d.b)
		d.b = d.b[8:]
		return Float(math.Float64frombits(bits))
	case KString:
		return String_(d.str())
	case KBool:
		return Bool(d.byte_() != 0)
	}
	d.fail()
	return Null
}

func (d *walDec) row() []Value {
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)) { // each value takes >= 1 byte
		d.fail()
		return nil
	}
	row := make([]Value, n)
	for i := range row {
		row[i] = d.value()
	}
	return row
}

func (d *walDec) schema() *TableSchema {
	s := &TableSchema{Name: d.str()}
	ncols := d.u64()
	if d.err != nil || ncols > uint64(len(d.b)) {
		d.fail()
		return s
	}
	s.Columns = make([]Column, ncols)
	for i := range s.Columns {
		c := &s.Columns[i]
		c.Name = d.str()
		c.Type = ColType(d.byte_())
		c.Length = int(d.u64())
		flags := d.byte_()
		c.NotNull = flags&1 != 0
		c.Unique = flags&2 != 0
		c.AutoIncrement = flags&4 != 0
		if flags&8 != 0 {
			v := d.value()
			c.Default = &v
		}
	}
	npk := d.u64()
	for i := uint64(0); i < npk && d.err == nil; i++ {
		s.PrimaryKey = append(s.PrimaryKey, d.str())
	}
	nfk := d.u64()
	for i := uint64(0); i < nfk && d.err == nil; i++ {
		col := d.str()
		ref := d.str()
		s.ForeignKeys = append(s.ForeignKeys, ForeignKey{Column: col, RefTable: ref})
	}
	return s
}

// restoreCheckpoint rebuilds the database from the checkpoint file
// blob — a V2 manifest with a refs block, a legacy incremental
// manifest, or the legacy monolithic format — and returns the main
// head version it covers. Runs single-threaded during Open, before the
// database is shared.
func (db *Database) restoreCheckpoint(dir string, data []byte) (uint64, error) {
	if len(data) >= len(manifestMagicV2) && string(data[:len(manifestMagicV2)]) == manifestMagicV2 {
		return db.restoreManifestV2(dir, data)
	}
	if len(data) >= len(manifestMagic) && string(data[:len(manifestMagic)]) == manifestMagic {
		return db.restoreManifest(dir, data)
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return 0, fmt.Errorf("not a checkpoint file")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint checksum mismatch")
	}
	d := &walDec{b: body[len(checkpointMagic):]}
	version := d.u64()
	ntables := d.u64()
	restored := make(map[string]*tableVersion, ntables)
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		v, err := db.loadTableBody(d)
		if err != nil {
			return 0, err
		}
		if d.err != nil {
			break
		}
		if err := db.CreateTable(v.schema); err != nil {
			return 0, err
		}
		v.asOf = version // legacy format has no per-table versions
		restored[lowerName(v.schema.Name)] = v
	}
	if d.err != nil {
		return 0, d.err
	}
	db.installSnapshot(restored, version, legacyParent(version), MainBranch)
	db.resetHistory()
	return version, nil
}

// legacyParent reconstructs the parent version for pre-DAG formats,
// whose publishes were dense on one branch.
func legacyParent(version uint64) uint64 {
	if version == 0 {
		return 0
	}
	return version - 1
}

// restoreManifest rebuilds the database from a legacy incremental
// manifest (no refs block): each listed table loads from its immutable
// per-table file, keeping the per-table asOf version so the next
// checkpoint can reuse the files of tables that stayed clean.
func (db *Database) restoreManifest(dir string, data []byte) (uint64, error) {
	if len(data) < len(manifestMagic)+4 {
		return 0, fmt.Errorf("truncated checkpoint manifest")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint manifest checksum mismatch")
	}
	d := &walDec{b: body[len(manifestMagic):]}
	version := d.u64()
	ntables := d.u64()
	restored := make(map[string]*tableVersion, ntables)
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		key := d.str()
		asOf := d.u64()
		if d.err != nil {
			break
		}
		v, err := db.loadTableFile(filepath.Join(dir, tableFileName(key, asOf)))
		if err != nil {
			return 0, err
		}
		if err := db.CreateTable(v.schema); err != nil {
			return 0, err
		}
		v.asOf = asOf
		restored[key] = v
	}
	if d.err != nil {
		return 0, d.err
	}
	db.installSnapshot(restored, version, legacyParent(version), MainBranch)
	db.resetHistory()
	return version, nil
}

// snapMeta is one decoded snapshot descriptor from a V2 manifest.
type snapMeta struct {
	version uint64
	parent  uint64
	branch  string
	keys    []string
	asOf    []uint64
}

func decodeSnapshotMeta(d *walDec) snapMeta {
	m := snapMeta{version: d.u64(), parent: d.u64(), branch: d.str()}
	n := d.u64()
	if d.err != nil || n > uint64(len(d.b)) {
		d.fail()
		return m
	}
	m.keys = make([]string, 0, n)
	m.asOf = make([]uint64, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.keys = append(m.keys, d.str())
		m.asOf = append(m.asOf, d.u64())
	}
	return m
}

// buildReferencedBy rebuilds the FK back-reference map of a restored
// snapshot from its schemas (a branch snapshot cannot borrow the
// catalog's: it may pin tables dropped from main after the fork).
func buildReferencedBy(s *dbSnapshot) map[string][]fkBackRef {
	out := make(map[string][]fkBackRef)
	for _, key := range s.order {
		for _, fk := range s.tables[key].schema.ForeignKeys {
			ref := lowerName(fk.RefTable)
			out[ref] = append(out[ref], fkBackRef{table: key, column: fk.Column})
		}
	}
	return out
}

// restoreManifestV2 rebuilds the database — main head, global commit
// seq, and every named branch with its head and base snapshots — from
// a V2 manifest. Table files are loaded once per (key, asOf) pair and
// shared by pointer across every snapshot that references them, so the
// restored DAG keeps the table-level structural sharing that makes
// diffs and merges cheap.
func (db *Database) restoreManifestV2(dir string, data []byte) (uint64, error) {
	if len(data) < len(manifestMagicV2)+4 {
		return 0, fmt.Errorf("truncated checkpoint manifest")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("checkpoint manifest checksum mismatch")
	}
	d := &walDec{b: body[len(manifestMagicV2):]}
	seq := d.u64()
	main := decodeSnapshotMeta(d)
	nrefs := d.u64()
	type refMeta struct {
		name       string
		createdAt  uint64
		head, base snapMeta
	}
	var refMetas []refMeta
	for i := uint64(0); i < nrefs && d.err == nil; i++ {
		rm := refMeta{name: d.str(), createdAt: d.u64()}
		rm.head = decodeSnapshotMeta(d)
		rm.base = decodeSnapshotMeta(d)
		refMetas = append(refMetas, rm)
	}
	if d.err != nil {
		return 0, d.err
	}

	loaded := make(map[string]*tableVersion)
	load := func(key string, asOf uint64) (*tableVersion, error) {
		fname := tableFileName(key, asOf)
		if v, ok := loaded[fname]; ok {
			return v, nil
		}
		v, err := db.loadTableFile(filepath.Join(dir, fname))
		if err != nil {
			return nil, err
		}
		v.asOf = asOf
		v.owner = nil // frozen: shared across restored snapshots
		loaded[fname] = v
		return v, nil
	}

	restored := make(map[string]*tableVersion, len(main.keys))
	for i, key := range main.keys {
		v, err := load(key, main.asOf[i])
		if err != nil {
			return 0, err
		}
		if err := db.CreateTable(v.schema); err != nil {
			return 0, err
		}
		restored[key] = v
	}
	db.installSnapshot(restored, main.version, main.parent, MainBranch)

	snapByVersion := map[uint64]*dbSnapshot{main.version: db.snap.Load()}
	buildSnap := func(m snapMeta) (*dbSnapshot, error) {
		if s, ok := snapByVersion[m.version]; ok {
			return s, nil // versions are unique: same version, same snapshot
		}
		s := &dbSnapshot{
			version: m.version,
			parent:  m.parent,
			branch:  m.branch,
			tables:  make(map[string]*tableVersion, len(m.keys)),
			order:   append([]string(nil), m.keys...),
		}
		for i, key := range m.keys {
			v, err := load(key, m.asOf[i])
			if err != nil {
				return nil, err
			}
			s.tables[key] = v
		}
		s.referencedBy = buildReferencedBy(s)
		snapByVersion[m.version] = s
		return s, nil
	}
	for _, rm := range refMetas {
		head, err := buildSnap(rm.head)
		if err != nil {
			return 0, err
		}
		base, err := buildSnap(rm.base)
		if err != nil {
			return 0, err
		}
		b := &branch{name: rm.name, createdAt: rm.createdAt}
		b.head.Store(head)
		b.base.Store(base)
		db.refs[rm.name] = b
	}
	if seq > db.seq.Load() {
		db.seq.Store(seq)
	}
	db.resetHistory()
	return main.version, nil
}

// resetHistory discards snapshots retained while the restore phase
// rebuilt the catalog (those interim publishes never existed
// historically) and re-seeds the ring with the restored heads, so AS
// OF of the current version works immediately after recovery.
func (db *Database) resetHistory() {
	db.hist.reset()
	seen := map[uint64]bool{}
	rec := func(s *dbSnapshot) {
		if s != nil && !seen[s.version] {
			seen[s.version] = true
			db.hist.record(s)
		}
	}
	rec(db.snap.Load())
	for _, b := range db.refs {
		rec(b.head.Load())
		rec(b.base.Load())
	}
}

// loadTableFile reads, verifies, and decodes one per-table checkpoint
// file referenced by a manifest.
func (db *Database) loadTableFile(path string) (*tableVersion, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(data) < len(tableFileMagic)+4 || string(data[:len(tableFileMagic)]) != tableFileMagic {
		return nil, fmt.Errorf("%s: not a checkpoint table file", name)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%s: checksum mismatch", name)
	}
	d := &walDec{b: body[len(tableFileMagic):]}
	v, err := db.loadTableBody(d)
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, fmt.Errorf("%s: %w", name, d.err)
	}
	return v, nil
}

// loadTableBody decodes one table (schema, id counters, rows) from a
// checkpoint stream and builds its version with bulk-load transient
// nodes (frozen by the caller). It does not register the table in the
// catalog — branch snapshots may pin tables main has dropped, so
// registration is the caller's call.
func (db *Database) loadTableBody(d *walDec) (*tableVersion, error) {
	s := d.schema()
	nextID := d.i64()
	nextAuto := d.i64()
	nrows := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	v := newTableVersion(s)
	o := newOwner() // bulk load: transient nodes, frozen on return
	for r := uint64(0); r < nrows && d.err == nil; r++ {
		id := int64(d.u64())
		row := d.row()
		if d.err != nil {
			break
		}
		v.rows = v.rows.withO(uint64(id), row, o)
		v.pk = v.pk.withO(v.pkKey(row), id, o)
		for si := range v.sec {
			e := &v.sec[si]
			e.idx = idxAdd(e.idx, encodeKey(row[e.col:e.col+1]), id, o)
		}
	}
	v.nextID = nextID
	v.nextAuto = nextAuto
	return v, nil
}

// installSnapshot overwrites table versions and pins the snapshot's
// DAG coordinates — recovery's replacement for publish, which would
// assign fresh sequence numbers and (once persistence is attached)
// re-log the records.
func (db *Database) installSnapshot(updated map[string]*tableVersion, version, parent uint64, branchName string) {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	cur := db.snap.Load()
	ns := &dbSnapshot{
		version:      version,
		parent:       parent,
		branch:       branchName,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	for k, v := range cur.tables {
		ns.tables[k] = v
	}
	for k, v := range updated {
		v.owner = nil // freeze before sharing; callers set asOf
		ns.tables[k] = v
	}
	if version > db.seq.Load() {
		db.seq.Store(version)
	}
	db.snap.Store(ns)
	db.hist.record(ns)
}

// installBranchSnapshot is installSnapshot for a branch head during
// replay: it derives the next head from the current one and moves the
// ref.
func (db *Database) installBranchSnapshot(b *branch, updated map[string]*tableVersion, seq uint64) {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	cur := b.head.Load()
	ns := &dbSnapshot{
		version:      seq,
		parent:       cur.version,
		branch:       b.name,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	for k, v := range cur.tables {
		ns.tables[k] = v
	}
	for k, v := range updated {
		v.owner = nil // freeze before sharing; callers set asOf
		ns.tables[k] = v
	}
	db.seq.Store(seq)
	b.head.Store(ns)
	db.hist.record(ns)
}

// decodeChanges re-derives table versions by replaying an encoded
// change body (appendChanges) against base's versions.
func decodeChanges(d *walDec, base *dbSnapshot, seq uint64) (map[string]*tableVersion, error) {
	ntables := d.u64()
	updated := make(map[string]*tableVersion, ntables)
	o := newOwner() // replay owns every node it copies
	for t := uint64(0); t < ntables && d.err == nil; t++ {
		name := d.str()
		key := lowerName(name)
		v, ok := updated[key]
		if !ok {
			if v, ok = base.tables[key]; !ok {
				return nil, fmt.Errorf("record %d touches unknown table %q", seq, name)
			}
		}
		nchanges := d.u64()
		for c := uint64(0); c < nchanges && d.err == nil; c++ {
			op := d.byte_()
			id := int64(d.u64())
			switch op {
			case walInsert:
				row := d.row()
				if d.err != nil {
					break
				}
				nv, gotID := v.insert(row, o)
				if gotID != id {
					return nil, fmt.Errorf("record %d: replayed insert into %q got id %d, logged %d",
						seq, name, gotID, id)
				}
				v = nv
			case walUpdate:
				row := d.row()
				if d.err != nil {
					break
				}
				if _, ok := v.row(id); !ok {
					return nil, fmt.Errorf("record %d: update of missing row %d in %q", seq, id, name)
				}
				v = v.update(id, row, o)
			case walDelete:
				if _, ok := v.row(id); !ok {
					return nil, fmt.Errorf("record %d: delete of missing row %d in %q", seq, id, name)
				}
				v = v.remove(id, o)
			default:
				return nil, fmt.Errorf("record %d: unknown op %q", seq, op)
			}
		}
		updated[key] = v
	}
	if d.err != nil {
		return nil, d.err
	}
	for _, v := range updated {
		v.asOf = seq
	}
	return updated, nil
}

// replayRecord applies one WAL record during Open. Records at or
// below the recovered commit seq are stale (their effects are inside
// the checkpoint); beyond that, sequence numbers must be dense — a gap
// means a lost record and recovery refuses to guess.
func (db *Database) replayRecord(payload []byte, replayed *uint64) error {
	if len(payload) == 0 {
		return fmt.Errorf("empty record")
	}
	d := &walDec{b: payload[1:]}
	kind := payload[0]
	seq := d.u64()
	if d.err != nil {
		return d.err
	}
	have := db.seq.Load()
	if seq <= have {
		return nil // covered by the checkpoint
	}
	if seq != have+1 {
		return fmt.Errorf("sequence gap: have seq %d, next record is %d", have, seq)
	}
	switch kind {
	case recCommit:
		cur := db.snapshot()
		updated, err := decodeChanges(d, cur, seq)
		if err != nil {
			return err
		}
		db.installSnapshot(updated, seq, cur.version, MainBranch)
	case recCreate:
		s := d.schema()
		if d.err != nil {
			return d.err
		}
		// persist is still nil during replay, so CreateTable does not
		// re-log; its publishCatalog assigns seq+1 == the record's seq.
		if err := db.CreateTable(s); err != nil {
			return err
		}
	case recDrop:
		name := d.str()
		if d.err != nil {
			return d.err
		}
		if err := db.DropTable(name); err != nil {
			return err
		}
	case recBranchCreate:
		name := d.str()
		baseVersion := d.u64()
		if d.err != nil {
			return d.err
		}
		if got := db.snapshot().version; got != baseVersion {
			return fmt.Errorf("record %d: branch %q forked version %d, replay head is %d",
				seq, name, baseVersion, got)
		}
		// Like recCreate: persist is nil, so CreateBranch assigns the
		// record's seq without re-logging.
		if err := db.CreateBranch(name); err != nil {
			return err
		}
	case recBranchDrop:
		name := d.str()
		if d.err != nil {
			return d.err
		}
		if err := db.DropBranch(name); err != nil {
			return err
		}
	case recBranchCommit:
		name := d.str()
		if d.err != nil {
			return d.err
		}
		b, err := db.lookupBranch(name)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		updated, err := decodeChanges(d, b.head.Load(), seq)
		if err != nil {
			return err
		}
		db.installBranchSnapshot(b, updated, seq)
	case recMerge:
		from := d.str()
		into := d.str()
		ff := d.byte_() != 0
		if d.err != nil {
			return d.err
		}
		if err := db.replayMerge(d, seq, from, into, ff); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown record kind %q", kind)
	}
	*replayed++
	return nil
}

// replayMerge re-applies a logged merge. The record's change list was
// derived against the heads as they stood when the merge published;
// replay reproduces exactly those heads (records are dense and merges
// publish under pubMu with the pinned main head verified), so the
// transplant applies without re-running the three-way.
func (db *Database) replayMerge(d *walDec, seq uint64, from, into string, ff bool) error {
	adopt := func(src *dbSnapshot) (map[string]*tableVersion, error) {
		if n := d.u64(); d.err != nil || n != 0 {
			return nil, fmt.Errorf("record %d: fast-forward merge carries changes", seq)
		}
		updated := make(map[string]*tableVersion, len(src.tables))
		for k, v := range src.tables {
			updated[k] = v
		}
		return updated, nil
	}
	switch {
	case into == MainBranch:
		b, err := db.lookupBranch(from)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		cur := db.snapshot()
		var updated map[string]*tableVersion
		if ff {
			updated, err = adopt(b.head.Load())
		} else {
			updated, err = decodeChanges(d, cur, seq)
		}
		if err != nil {
			return err
		}
		db.installSnapshot(updated, seq, cur.version, MainBranch)
		ns := db.snapshot()
		b.head.Store(ns) // the branch converges on the merged head
		b.base.Store(ns)
	case from == MainBranch:
		b, err := db.lookupBranch(into)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		main := db.snapshot()
		var updated map[string]*tableVersion
		if ff {
			updated, err = adopt(main)
		} else {
			updated, err = decodeChanges(d, b.head.Load(), seq)
		}
		if err != nil {
			return err
		}
		db.installBranchSnapshot(b, updated, seq)
		b.base.Store(main)
	default:
		return fmt.Errorf("record %d: merge %q into %q has no main side", seq, from, into)
	}
	return nil
}
