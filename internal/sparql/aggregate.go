package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"ontoaccess/internal/rdf"
)

// SortSolutions sorts sols in place by the ORDER BY keys, using the
// evaluator's comparator. Exported for the mediator's UNION lowering,
// which concatenates per-branch SQL results and must then apply the
// identical solution-level tail the native evaluator applies.
func SortSolutions(sols Solutions, keys []OrderKey) { sortSolutions(sols, keys) }

// DistinctSolutions removes duplicate bindings, keeping first
// occurrences — the evaluator's DISTINCT step, exported for the same
// reason as SortSolutions.
func DistinctSolutions(sols Solutions) Solutions { return distinct(sols) }

// aggAcc accumulates one aggregate within one group. SUM and AVG
// accumulate int64 while every input parses as an integer and switch
// to the float sum — accumulated per value in arrival order — once a
// float appears. The SQL executor implements the identical
// arithmetic, so both engines produce byte-identical lexical results
// on integer-valued data.
type aggAcc struct {
	count int64
	sumI  int64
	sumF  float64
	isF   bool
	mm    string // winning MIN/MAX lexical form
	mmF   float64
	mmNum bool
	has   bool
}

type aggGroup struct {
	key  Binding
	accs []aggAcc
}

// aggregateSolutions folds the WHERE solutions into one solution per
// group, in group first-appearance order. All aggregate results are
// plain literals: COUNT and integer SUM format as base-10 integers,
// AVG and float SUM with strconv.FormatFloat(_, 'g', -1, 64), and
// MIN/MAX return the winning value's lexical form — exactly the
// mediator's SQL decode of the executor's aggregation, which is what
// keeps the two engines byte-identical.
func aggregateSolutions(sols Solutions, q *Query) (Solutions, error) {
	// HAVING constraints may reference aggregates outside the
	// projection; those accumulate as hidden trailing entries. hidx
	// maps each constraint to its accumulator index.
	aggs := q.Aggs
	hidx := make([]int, len(q.Having))
	if len(q.Having) > 0 {
		aggs = append([]AggSpec{}, q.Aggs...)
		for hi, hc := range q.Having {
			idx := -1
			for i, a := range aggs {
				if a.Fn == hc.Agg.Fn && a.Var == hc.Agg.Var {
					idx = i
					break
				}
			}
			if idx < 0 {
				idx = len(aggs)
				aggs = append(aggs, hc.Agg)
			}
			hidx[hi] = idx
		}
	}
	order := []string{}
	groups := map[string]*aggGroup{}
	for _, sol := range sols {
		var kb strings.Builder
		key := Binding{}
		for _, gv := range q.GroupBy {
			if t, ok := sol[gv]; ok {
				key[gv] = t
				kb.WriteString(t.String())
			}
			kb.WriteByte(0)
		}
		k := kb.String()
		grp := groups[k]
		if grp == nil {
			grp = &aggGroup{key: key, accs: make([]aggAcc, len(aggs))}
			groups[k] = grp
			order = append(order, k)
		}
		for i, a := range aggs {
			if a.Fn == "" {
				continue
			}
			acc := &grp.accs[i]
			if a.Fn == "COUNT" && a.Var == "" {
				acc.count++ // COUNT(*) counts solutions, unbound included
				continue
			}
			t, ok := sol[a.Var]
			if !ok {
				continue // aggregates skip unbound inputs
			}
			acc.count++
			lex := t.Value
			switch a.Fn {
			case "SUM", "AVG":
				if n, err := strconv.ParseInt(lex, 10, 64); err == nil {
					acc.sumI += n
					acc.sumF += float64(n)
				} else if f, err := strconv.ParseFloat(lex, 64); err == nil {
					acc.isF = true
					acc.sumF += f
				} else {
					return nil, fmt.Errorf("sparql: %s requires numeric values, got %q", a.Fn, lex)
				}
			case "MIN", "MAX":
				f, ferr := strconv.ParseFloat(lex, 64)
				num := ferr == nil
				better := false
				switch {
				case !acc.has:
					better = true
				case num && acc.mmNum:
					if a.Fn == "MIN" {
						better = f < acc.mmF
					} else {
						better = f > acc.mmF
					}
				default:
					if a.Fn == "MIN" {
						better = lex < acc.mm
					} else {
						better = lex > acc.mm
					}
				}
				if better {
					acc.mm, acc.mmF, acc.mmNum = lex, f, num
				}
				acc.has = true
			}
		}
	}
	// Without GROUP BY an empty input still yields one group (COUNT 0,
	// other aggregates unbound); with GROUP BY it yields none. HAVING
	// applies to the synthetic group like any other.
	if len(q.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &aggGroup{key: Binding{}, accs: make([]aggAcc, len(aggs))}
		order = append(order, "")
	}
	out := make(Solutions, 0, len(order))
group:
	for _, k := range order {
		grp := groups[k]
		for hi, hc := range q.Having {
			lex, bound := accLexical(aggs[hidx[hi]].Fn, &grp.accs[hidx[hi]])
			if !bound || !havingLexHolds(lex, hc.Lit.Value, hc.Op) {
				continue group
			}
		}
		b := Binding{}
		for i, a := range q.Aggs {
			name := q.Vars[i]
			if a.Fn == "" {
				if t, ok := grp.key[name]; ok {
					b[name] = t
				}
				continue
			}
			if lex, bound := accLexical(a.Fn, &grp.accs[i]); bound {
				b[name] = rdf.Literal(lex)
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// accLexical renders one aggregate accumulator's final lexical form;
// bound is false when the result is unbound (SUM/AVG/MIN/MAX over no
// inputs). The formatting here is the single source of the native
// engine's aggregate lexical forms — the projection and the HAVING
// filter both read it, so a group can never pass a constraint on a
// value different from the one it projects.
func accLexical(fn string, acc *aggAcc) (string, bool) {
	switch fn {
	case "COUNT":
		return strconv.FormatInt(acc.count, 10), true
	case "SUM":
		switch {
		case acc.count == 0:
			return "", false
		case acc.isF:
			return strconv.FormatFloat(acc.sumF, 'g', -1, 64), true
		default:
			return strconv.FormatInt(acc.sumI, 10), true
		}
	case "AVG":
		if acc.count == 0 {
			return "", false
		}
		sum := acc.sumF
		if !acc.isF {
			sum = float64(acc.sumI)
		}
		return strconv.FormatFloat(sum/float64(acc.count), 'g', -1, 64), true
	case "MIN", "MAX":
		if acc.has {
			return acc.mm, true
		}
	}
	return "", false
}

// havingLexHolds decides one HAVING comparison over two lexical forms:
// numeric when both parse as float64, string order when neither does,
// false on a type-class mismatch. The SQL executor implements the
// identical rule over its aggregate values' lexical renderings, so the
// engines keep or drop exactly the same groups.
func havingLexHolds(l, r string, op BinOp) bool {
	lf, lerr := strconv.ParseFloat(l, 64)
	rf, rerr := strconv.ParseFloat(r, 64)
	var c int
	switch {
	case lerr == nil && rerr == nil:
		switch {
		case lf < rf:
			c = -1
		case lf > rf:
			c = 1
		}
	case lerr != nil && rerr != nil:
		c = strings.Compare(l, r)
	default:
		return false
	}
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	}
	return false
}
