package sparql

import (
	"fmt"
	"regexp"
	"strings"

	"ontoaccess/internal/rdf"
)

// Expr is a SPARQL filter expression. Eval returns the value as an
// RDF term (booleans as xsd:boolean literals); a returned error is a
// SPARQL "type error", which FILTER treats as false.
type Expr interface {
	Eval(b Binding) (rdf.Term, error)
	String() string
}

// EffectiveBool computes the SPARQL effective boolean value of a term.
func EffectiveBool(t rdf.Term) (bool, error) {
	if !t.IsLiteral() {
		return false, fmt.Errorf("sparql: no effective boolean value for %s", t)
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.AsBool()
	case rdf.XSDString, "", rdf.RDFLangString:
		return t.Value != "", nil
	default:
		if t.IsNumeric() {
			f, err := t.AsFloat()
			if err != nil {
				return false, err
			}
			return f != 0, nil
		}
	}
	return false, fmt.Errorf("sparql: no effective boolean value for %s", t)
}

// ExprVar references a variable.
type ExprVar struct{ Name string }

// Eval implements Expr.
func (e ExprVar) Eval(b Binding) (rdf.Term, error) {
	t, ok := b[e.Name]
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: unbound variable ?%s", e.Name)
	}
	return t, nil
}

func (e ExprVar) String() string { return "?" + e.Name }

// ExprConst is a constant term.
type ExprConst struct{ Term rdf.Term }

// Eval implements Expr.
func (e ExprConst) Eval(Binding) (rdf.Term, error) { return e.Term, nil }

func (e ExprConst) String() string { return e.Term.String() }

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "&&", OpOr: "||", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// ExprBinary applies a binary operator.
type ExprBinary struct {
	Op          BinOp
	Left, Right Expr
}

func (e ExprBinary) String() string {
	return "(" + e.Left.String() + " " + binOpNames[e.Op] + " " + e.Right.String() + ")"
}

// Eval implements Expr with SPARQL operator semantics, including the
// special error handling of || and && (a type error on one side can
// still yield a definite result from the other).
func (e ExprBinary) Eval(b Binding) (rdf.Term, error) {
	switch e.Op {
	case OpAnd, OpOr:
		lv, lerr := evalBool(e.Left, b)
		rv, rerr := evalBool(e.Right, b)
		if e.Op == OpAnd {
			switch {
			case lerr == nil && rerr == nil:
				return rdf.BooleanLiteral(lv && rv), nil
			case lerr == nil && !lv, rerr == nil && !rv:
				return rdf.BooleanLiteral(false), nil
			default:
				return rdf.Term{}, firstErr(lerr, rerr)
			}
		}
		switch {
		case lerr == nil && rerr == nil:
			return rdf.BooleanLiteral(lv || rv), nil
		case lerr == nil && lv, rerr == nil && rv:
			return rdf.BooleanLiteral(true), nil
		default:
			return rdf.Term{}, firstErr(lerr, rerr)
		}
	}

	lt, err := e.Left.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	rt, err := e.Right.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}

	switch e.Op {
	case OpEq, OpNe:
		eq, err := termsEqual(lt, rt)
		if err != nil {
			return rdf.Term{}, err
		}
		if e.Op == OpNe {
			eq = !eq
		}
		return rdf.BooleanLiteral(eq), nil
	case OpLt, OpLe, OpGt, OpGe:
		c, err := compareOrdered(lt, rt)
		if err != nil {
			return rdf.Term{}, err
		}
		var v bool
		switch e.Op {
		case OpLt:
			v = c < 0
		case OpLe:
			v = c <= 0
		case OpGt:
			v = c > 0
		case OpGe:
			v = c >= 0
		}
		return rdf.BooleanLiteral(v), nil
	case OpAdd, OpSub, OpMul, OpDiv:
		lf, err := lt.AsFloat()
		if err != nil {
			return rdf.Term{}, err
		}
		rf, err := rt.AsFloat()
		if err != nil {
			return rdf.Term{}, err
		}
		var v float64
		switch e.Op {
		case OpAdd:
			v = lf + rf
		case OpSub:
			v = lf - rf
		case OpMul:
			v = lf * rf
		case OpDiv:
			if rf == 0 {
				return rdf.Term{}, fmt.Errorf("sparql: division by zero")
			}
			v = lf / rf
		}
		// Preserve integer typing when both operands are integers and
		// the result is integral (mirrors XPath op:numeric-* promotion
		// closely enough for the supported workloads).
		if lt.Datatype == rdf.XSDInteger && rt.Datatype == rdf.XSDInteger && v == float64(int64(v)) && e.Op != OpDiv {
			return rdf.IntegerLiteral(int64(v)), nil
		}
		return rdf.DoubleLiteral(v), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %d", e.Op)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func evalBool(e Expr, b Binding) (bool, error) {
	t, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	return EffectiveBool(t)
}

// termsEqual implements SPARQL '=' across term kinds.
func termsEqual(a, c rdf.Term) (bool, error) {
	if a.IsNumeric() && c.IsNumeric() {
		af, err := a.AsFloat()
		if err != nil {
			return false, err
		}
		cf, err := c.AsFloat()
		if err != nil {
			return false, err
		}
		return af == cf, nil
	}
	if a == c {
		return true, nil
	}
	// Different literals of incomparable datatypes: RDFterm-equal
	// raises a type error only when both are literals with unknown
	// datatypes; for the supported XSD set plain inequality is sound.
	return false, nil
}

// compareOrdered implements <, <=, >, >= for numerics, strings and
// booleans.
func compareOrdered(a, c rdf.Term) (int, error) {
	if a.IsNumeric() && c.IsNumeric() {
		af, _ := a.AsFloat()
		cf, _ := c.AsFloat()
		switch {
		case af < cf:
			return -1, nil
		case af > cf:
			return 1, nil
		}
		return 0, nil
	}
	if a.IsLiteral() && c.IsLiteral() {
		aStr := a.Datatype == rdf.XSDString || a.Datatype == ""
		cStr := c.Datatype == rdf.XSDString || c.Datatype == ""
		if aStr && cStr {
			return strings.Compare(a.Value, c.Value), nil
		}
		if a.Datatype == rdf.XSDBoolean && c.Datatype == rdf.XSDBoolean {
			av, _ := a.AsBool()
			cv, _ := c.AsBool()
			switch {
			case !av && cv:
				return -1, nil
			case av && !cv:
				return 1, nil
			}
			return 0, nil
		}
		if a.Datatype == rdf.XSDDateTime && c.Datatype == rdf.XSDDateTime ||
			a.Datatype == rdf.XSDDate && c.Datatype == rdf.XSDDate {
			// ISO 8601 lexical forms compare correctly as strings.
			return strings.Compare(a.Value, c.Value), nil
		}
	}
	return 0, fmt.Errorf("sparql: cannot order %s and %s", a, c)
}

// ExprNot is logical negation.
type ExprNot struct{ Inner Expr }

// Eval implements Expr.
func (e ExprNot) Eval(b Binding) (rdf.Term, error) {
	v, err := evalBool(e.Inner, b)
	if err != nil {
		return rdf.Term{}, err
	}
	return rdf.BooleanLiteral(!v), nil
}

func (e ExprNot) String() string { return "!" + e.Inner.String() }

// ExprNeg is arithmetic negation.
type ExprNeg struct{ Inner Expr }

// Eval implements Expr.
func (e ExprNeg) Eval(b Binding) (rdf.Term, error) {
	t, err := e.Inner.Eval(b)
	if err != nil {
		return rdf.Term{}, err
	}
	f, err := t.AsFloat()
	if err != nil {
		return rdf.Term{}, err
	}
	if t.Datatype == rdf.XSDInteger {
		return rdf.IntegerLiteral(-int64(f)), nil
	}
	return rdf.DoubleLiteral(-f), nil
}

func (e ExprNeg) String() string { return "-" + e.Inner.String() }

// ExprCall is a built-in function call.
type ExprCall struct {
	Name string // canonical upper-case
	Args []Expr
}

func (e ExprCall) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Eval implements Expr for the supported SPARQL built-ins.
func (e ExprCall) Eval(b Binding) (rdf.Term, error) {
	switch e.Name {
	case "BOUND":
		v, ok := e.Args[0].(ExprVar)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND requires a variable argument")
		}
		_, bound := b[v.Name]
		return rdf.BooleanLiteral(bound), nil
	case "STR":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		switch t.Kind {
		case rdf.KindIRI:
			return rdf.Literal(t.Value), nil
		case rdf.KindLiteral:
			return rdf.Literal(t.Value), nil
		}
		return rdf.Term{}, fmt.Errorf("sparql: STR of blank node")
	case "LANG":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		if !t.IsLiteral() {
			return rdf.Term{}, fmt.Errorf("sparql: LANG of non-literal")
		}
		return rdf.Literal(t.Lang), nil
	case "DATATYPE":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		if !t.IsLiteral() {
			return rdf.Term{}, fmt.Errorf("sparql: DATATYPE of non-literal")
		}
		dt := t.Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.IRI(dt), nil
	case "ISIRI", "ISURI":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.BooleanLiteral(t.IsIRI()), nil
	case "ISLITERAL":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.BooleanLiteral(t.IsLiteral()), nil
	case "ISBLANK":
		t, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.BooleanLiteral(t.IsBlank()), nil
	case "SAMETERM":
		a, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		c, err := e.Args[1].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.BooleanLiteral(a == c), nil
	case "LANGMATCHES":
		tag, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		rng, err := e.Args[1].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		if rng.Value == "*" {
			return rdf.BooleanLiteral(tag.Value != ""), nil
		}
		tl, rl := strings.ToLower(tag.Value), strings.ToLower(rng.Value)
		return rdf.BooleanLiteral(tl == rl || strings.HasPrefix(tl, rl+"-")), nil
	case "REGEX":
		text, err := e.Args[0].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		pat, err := e.Args[1].Eval(b)
		if err != nil {
			return rdf.Term{}, err
		}
		flags := ""
		if len(e.Args) > 2 {
			f, err := e.Args[2].Eval(b)
			if err != nil {
				return rdf.Term{}, err
			}
			flags = f.Value
		}
		expr := pat.Value
		if strings.Contains(flags, "i") {
			expr = "(?i)" + expr
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return rdf.BooleanLiteral(re.MatchString(text.Value)), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", e.Name)
}
