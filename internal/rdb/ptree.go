package rdb

import "math/bits"

// This file provides the persistent (immutable, path-copying) data
// structures the MVCC storage layer is built on. A table's committed
// state is a tree of shared nodes; a writer derives the next version
// by copying only the O(log n) nodes on the paths it touches, so
// commits publish new versions without ever disturbing readers, and
// rolling back is simply dropping the derived version.
//
//   - ptree[V]: a 32-way radix trie keyed by uint64, used for the row
//     store (row id -> tuple) and for the id sets inside secondary
//     indexes. Iteration is in ascending key order, which makes row-id
//     order the stable scan order.
//   - pmap[V]: a persistent string-keyed hash map layered over ptree
//     (hash -> small collision bucket), used for the primary-key and
//     secondary value indexes.
//
// Transient nodes: the *O mutators additionally take an ownership
// token (*ptOwner). A node stamped with the caller's live token is
// known to be reachable only through values derived since that token
// was issued, so it is mutated in place instead of path-copied; any
// other node (frozen, or owned by an older token) is copied and the
// copy stamped. A transaction issues a fresh token at begin and again
// at every savepoint, which makes repeated path copies within one
// batch collapse into in-place writes while keeping every published
// or savepoint-captured version immutable.

const (
	ptBits  = 5
	ptWidth = 1 << ptBits
	ptMask  = ptWidth - 1
)

// ptOwner is a transient-ownership token. Tokens are compared by
// identity: a node whose owner field holds the caller's live token may
// be mutated in place (see the package comment).
type ptOwner struct{ _ byte }

// newOwner issues a fresh ownership token.
func newOwner() *ptOwner { return new(ptOwner) }

// ptNode is one trie node. Inner nodes use kids, leaves use vals with
// a presence bitmap; both slices have length ptWidth when allocated.
// owner is the transient token the node was created under; nil marks
// a frozen (shareable) node.
type ptNode[V any] struct {
	kids    []*ptNode[V]
	vals    []V
	present uint32
	owner   *ptOwner
}

// editable reports whether n may be mutated in place under token o.
func (n *ptNode[V]) editable(o *ptOwner) bool {
	return n != nil && o != nil && n.owner == o
}

// ptree is a persistent uint64-keyed map. The zero value is empty.
// All mutating operations return a new tree sharing structure with
// the receiver; the receiver is never modified.
type ptree[V any] struct {
	root  *ptNode[V]
	shift uint
	size  int
}

// len returns the number of entries.
func (t ptree[V]) len() int { return t.size }

// get returns the value stored under k.
func (t ptree[V]) get(k uint64) (V, bool) {
	var zero V
	n := t.root
	if n == nil || k>>(t.shift+ptBits) != 0 {
		return zero, false
	}
	for shift := t.shift; shift > 0; shift -= ptBits {
		n = n.kids[(k>>shift)&ptMask]
		if n == nil {
			return zero, false
		}
	}
	i := k & ptMask
	if n.present&(1<<i) == 0 {
		return zero, false
	}
	return n.vals[i], true
}

// with returns a tree that additionally maps k to v.
func (t ptree[V]) with(k uint64, v V) ptree[V] { return t.withO(k, v, nil) }

// withO is with under an ownership token: nodes owned by a non-nil o
// are mutated in place, everything else is path-copied (and the copy
// stamped with o).
func (t ptree[V]) withO(k uint64, v V, o *ptOwner) ptree[V] {
	if t.root == nil {
		t.root = &ptNode[V]{vals: make([]V, ptWidth), owner: o}
		t.shift = 0
	}
	// Grow the root until k is addressable.
	for k>>(t.shift+ptBits) != 0 {
		nr := &ptNode[V]{kids: make([]*ptNode[V], ptWidth), owner: o}
		nr.kids[0] = t.root
		t.root = nr
		t.shift += ptBits
	}
	root, added := ptWith(t.root, t.shift, k, v, o)
	nt := ptree[V]{root: root, shift: t.shift, size: t.size}
	if added {
		nt.size++
	}
	return nt
}

// ptWith path-copies (or, when owned, edits) the nodes from n down to
// k's leaf. A nil n materializes a fresh subtree.
func ptWith[V any](n *ptNode[V], shift uint, k uint64, v V, o *ptOwner) (*ptNode[V], bool) {
	if shift == 0 {
		c := n
		if !n.editable(o) {
			c = &ptNode[V]{vals: make([]V, ptWidth), owner: o}
			if n != nil {
				copy(c.vals, n.vals)
				c.present = n.present
			}
		}
		i := k & ptMask
		added := c.present&(1<<i) == 0
		c.vals[i] = v
		c.present |= 1 << i
		return c, added
	}
	c := n
	if !n.editable(o) {
		c = &ptNode[V]{kids: make([]*ptNode[V], ptWidth), owner: o}
		if n != nil {
			copy(c.kids, n.kids)
		}
	}
	i := (k >> shift) & ptMask
	child, added := ptWith(c.kids[i], shift-ptBits, k, v, o)
	c.kids[i] = child
	return c, added
}

// without returns a tree with k removed (a no-op if absent). Emptied
// nodes are kept in place; the structure does not shrink.
func (t ptree[V]) without(k uint64) ptree[V] { return t.withoutO(k, nil) }

// withoutO is without under an ownership token (see withO).
func (t ptree[V]) withoutO(k uint64, o *ptOwner) ptree[V] {
	if _, ok := t.get(k); !ok {
		return t
	}
	return ptree[V]{root: ptWithout(t.root, t.shift, k, o), shift: t.shift, size: t.size - 1}
}

func ptWithout[V any](n *ptNode[V], shift uint, k uint64, o *ptOwner) *ptNode[V] {
	if shift == 0 {
		c := n
		if !n.editable(o) {
			c = &ptNode[V]{vals: make([]V, ptWidth), present: n.present, owner: o}
			copy(c.vals, n.vals)
		}
		i := k & ptMask
		var zero V
		c.vals[i] = zero // release the value for GC
		c.present &^= 1 << i
		return c
	}
	c := n
	if !n.editable(o) {
		c = &ptNode[V]{kids: make([]*ptNode[V], ptWidth), owner: o}
		copy(c.kids, n.kids)
	}
	i := (k >> shift) & ptMask
	c.kids[i] = ptWithout(c.kids[i], shift-ptBits, k, o)
	return c
}

// ascend visits entries in ascending key order; fn returning false
// stops the walk.
func (t ptree[V]) ascend(fn func(k uint64, v V) bool) {
	if t.root != nil {
		ptAscend(t.root, t.shift, 0, fn)
	}
}

func ptAscend[V any](n *ptNode[V], shift uint, prefix uint64, fn func(k uint64, v V) bool) bool {
	if shift == 0 {
		for p := n.present; p != 0; p &= p - 1 {
			i := uint64(bits.TrailingZeros32(p))
			if !fn(prefix|i, n.vals[i]) {
				return false
			}
		}
		return true
	}
	for i, c := range n.kids {
		if c != nil && !ptAscend(c, shift-ptBits, prefix|uint64(i)<<shift, fn) {
			return false
		}
	}
	return true
}

// idset is a persistent set of row ids (the posting list of one
// secondary-index key).
type idset = ptree[struct{}]

// ---- persistent string-keyed hash map ------------------------------

// pmHashBits bounds the hash key space so the backing trie stays at
// most pmHashBits/ptBits levels deep (four, for 20 bits); collisions
// land in buckets and stay negligible up to roughly a million keys
// per index, at the benefit of two fewer node copies per write.
const pmHashBits = 20

// pmHash is FNV-1a folded to pmHashBits bits.
func pmHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return (h ^ h>>pmHashBits ^ h>>(2*pmHashBits)) & (1<<pmHashBits - 1)
}

type pmEntry[V any] struct {
	key string
	val V
}

// pmap is a persistent string-keyed map. The zero value is empty; all
// mutating operations return a new map sharing structure.
type pmap[V any] struct {
	t ptree[[]pmEntry[V]]
	n int
}

// len returns the number of entries.
func (m pmap[V]) len() int { return m.n }

// get returns the value stored under key.
func (m pmap[V]) get(key string) (V, bool) {
	bucket, ok := m.t.get(pmHash(key))
	if ok {
		for _, e := range bucket {
			if e.key == key {
				return e.val, true
			}
		}
	}
	var zero V
	return zero, false
}

// with returns a map that additionally maps key to v.
func (m pmap[V]) with(key string, v V) pmap[V] { return m.withO(key, v, nil) }

// withO is with under an ownership token (see ptree.withO).
func (m pmap[V]) withO(key string, v V, o *ptOwner) pmap[V] {
	h := pmHash(key)
	bucket, _ := m.t.get(h)
	nb := make([]pmEntry[V], 0, len(bucket)+1)
	added := true
	for _, e := range bucket {
		if e.key == key {
			added = false
			continue
		}
		nb = append(nb, e)
	}
	nb = append(nb, pmEntry[V]{key: key, val: v})
	nm := pmap[V]{t: m.t.withO(h, nb, o), n: m.n}
	if added {
		nm.n++
	}
	return nm
}

// without returns a map with key removed (a no-op if absent).
func (m pmap[V]) without(key string) pmap[V] { return m.withoutO(key, nil) }

// withoutO is without under an ownership token (see ptree.withO).
func (m pmap[V]) withoutO(key string, o *ptOwner) pmap[V] {
	h := pmHash(key)
	bucket, ok := m.t.get(h)
	if !ok {
		return m
	}
	found := false
	nb := make([]pmEntry[V], 0, len(bucket))
	for _, e := range bucket {
		if e.key == key {
			found = true
			continue
		}
		nb = append(nb, e)
	}
	if !found {
		return m
	}
	if len(nb) == 0 {
		return pmap[V]{t: m.t.withoutO(h, o), n: m.n - 1}
	}
	return pmap[V]{t: m.t.withO(h, nb, o), n: m.n - 1}
}
