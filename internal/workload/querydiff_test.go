package workload

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"ontoaccess/internal/core"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/triplestore"
	"ontoaccess/internal/update"
)

// TestDifferentialQueryStreams drives a seeded random MODIFY stream to
// a final state, then executes a seeded random query stream three ways
// — the compiled query pipeline (plan cache + structured streaming
// executor), the uncompiled baseline (text SQL fast path + virtual
// view), and native SPARQL evaluation over the triple-store twin —
// asserting zero divergence on SELECT solutions (as multisets: the
// virtual and native paths do not share row order), ASK booleans and
// CONSTRUCT graphs.
func TestDifferentialQueryStreams(t *testing.T) {
	for _, seed := range []int64{5, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runQueryDifferential(t, seed, 120, 80)
		})
	}
}

func runQueryDifferential(t *testing.T, seed int64, nUpdates, nQueries int) {
	t.Helper()
	newM := func(opts core.Options) *core.Mediator {
		m, err := NewMediator(opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	compiled := newM(core.Options{})
	uncompiled := newM(core.Options{DisablePlanCache: true})
	native := triplestore.New()

	ds := NewDifferentialStream(seed, nUpdates)
	for _, req := range append(append([]string{}, ds.Setup...), ds.Requests...) {
		_, errC := compiled.ExecuteString(req)
		_, errU := uncompiled.ExecuteString(req)
		if (errC == nil) != (errU == nil) {
			t.Fatalf("update acceptance diverges: %v vs %v\nrequest:\n%s", errC, errU, req)
		}
		if errC != nil {
			continue // rejected everywhere; the baseline sees accepted requests only
		}
		parsed, err := update.Parse(req)
		if err != nil {
			t.Fatalf("baseline parse: %v", err)
		}
		if _, err := update.Apply(native, parsed); err != nil {
			t.Fatalf("baseline apply: %v\nrequest:\n%s", err, req)
		}
	}

	divergences := 0
	for _, q := range QueryStream(seed+1000, nQueries, 12) {
		rc, errC := compiled.Query(q)
		ru, errU := uncompiled.Query(q)
		if (errC == nil) != (errU == nil) {
			divergences++
			t.Errorf("query error divergence: %v vs %v\nquery:\n%s", errC, errU, q)
			continue
		}
		if errC != nil {
			continue
		}
		parsed, err := sparql.ParseQuery(q)
		if err != nil {
			t.Fatalf("query parse: %v", err)
		}
		switch parsed.Form {
		case sparql.FormSelect:
			// The deterministic solution-order contract binds the two
			// mediator paths: compiled and uncompiled execute the same
			// SELECT structure, so their solution sequences must be
			// byte-identical, order included.
			if !reflect.DeepEqual(rc.Solutions, ru.Solutions) {
				divergences++
				t.Errorf("solution-order contract broken:\ncompiled %v\nuncompiled %v\nquery:\n%s",
					rc.Solutions, ru.Solutions, q)
			}
			ns, err := sparql.Eval(native, parsed)
			if err != nil {
				t.Fatalf("native eval: %v\nquery:\n%s", err, q)
			}
			want := sortedSolutions(ns)
			for _, got := range []struct {
				mode string
				sols sparql.Solutions
			}{{"compiled", rc.Solutions}, {"uncompiled", ru.Solutions}} {
				if !reflect.DeepEqual(sortedSolutions(got.sols), want) {
					divergences++
					t.Errorf("%s SELECT divergence:\n%v\nvs native\n%v\nquery:\n%s",
						got.mode, sortedSolutions(got.sols), want, q)
				}
			}
		case sparql.FormAsk:
			nb, err := sparql.EvalAsk(native, parsed)
			if err != nil {
				t.Fatalf("native ask: %v", err)
			}
			if rc.Bool != nb || ru.Bool != nb {
				divergences++
				t.Errorf("ASK divergence: compiled=%v uncompiled=%v native=%v\nquery:\n%s",
					rc.Bool, ru.Bool, nb, q)
			}
		case sparql.FormConstruct:
			ng, err := sparql.EvalConstruct(native, parsed)
			if err != nil {
				t.Fatalf("native construct: %v", err)
			}
			if !rc.Graph.Equal(ng) || !ru.Graph.Equal(ng) {
				divergences++
				t.Errorf("CONSTRUCT divergence.\nonly compiled:\n%v\nonly native:\n%v\nquery:\n%s",
					rc.Graph.Diff(ng), ng.Diff(rc.Graph), q)
			}
		}
	}
	if divergences != 0 {
		t.Fatalf("query differential found %d divergence(s) for seed %d", divergences, seed)
	}
	// The harness must actually exercise the compiled read path — and
	// the baseline must not.
	if s := compiled.QueryPlanCacheStats(); s.Size == 0 || s.Misses == 0 {
		t.Errorf("compiled mode never compiled a query plan: %+v", s)
	}
	if s := uncompiled.QueryPlanCacheStats(); s.Size != 0 {
		t.Errorf("uncompiled mode compiled query plans: %+v", s)
	}
}

func sortedSolutions(sols sparql.Solutions) []string {
	out := make([]string, len(sols))
	for i, b := range sols {
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}
