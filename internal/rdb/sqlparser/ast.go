package sqlparser

import (
	"strings"

	"ontoaccess/internal/rdb"
)

// Statement is one parsed SQL statement.
type Statement interface{ isStatement() }

// CreateTable is a CREATE TABLE statement carrying the engine schema.
type CreateTable struct {
	Schema *rdb.TableSchema
}

func (CreateTable) isStatement() {}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Table string
}

func (DropTable) isStatement() {}

// Insert is INSERT INTO table (cols) VALUES (...), (...).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]rdb.Value
}

func (Insert) isStatement() {}

// Assignment is one "col = expr" in an UPDATE SET clause.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE table SET assignments [WHERE expr].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr // nil = all rows
}

func (Update) isStatement() {}

// Delete is DELETE FROM table [WHERE expr].
type Delete struct {
	Table string
	Where Expr // nil = all rows
}

func (Delete) isStatement() {}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// EffectiveName returns the alias if present, else the table name.
func (tr TableRef) EffectiveName() string {
	if tr.Alias != "" {
		return tr.Alias
	}
	return tr.Table
}

// Join is one JOIN clause: inner by default, a left outer join when
// LeftOuter is set (unmatched left rows survive, the joined table's
// columns NULL-extended).
type Join struct {
	Ref       TableRef
	On        Expr
	LeftOuter bool
}

// AggFunc identifies the aggregate function of a SELECT item.
type AggFunc int

const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// SelectItem is one projected column: an expression with an optional
// alias. A nil Expr with Star set projects every column. With Agg
// set, the item is an aggregate over the expression — COUNT with a
// nil Expr is COUNT(*).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	// Agg marks an aggregate item: COUNT(*), COUNT(col), SUM, AVG,
	// MIN or MAX.
	Agg AggFunc
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// HavingCond is one HAVING conjunct: an aggregate call compared with
// a literal. COUNT with a nil Expr is COUNT(*). Op is one of the six
// comparison operators.
type HavingCond struct {
	Agg  AggFunc
	Expr Expr
	Op   BinOp
	Val  rdb.Value
}

// Select is a SELECT statement over one or more joined tables.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []Join
	Where    Expr // nil = all rows
	GroupBy  []Expr
	Having   []HavingCond
	OrderBy  []OrderKey
	Limit    int // -1 = unset
	Offset   int // -1 = unset
}

func (Select) isStatement() {}

// ---- expressions ----

// Expr is a SQL scalar expression.
type Expr interface{ isExpr() }

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table  string // optional qualifier
	Column string
}

func (ColRef) isExpr() {}

// String renders the reference as [table.]column.
func (c ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// Lit is a literal value.
type Lit struct {
	Value rdb.Value
}

func (Lit) isExpr() {}

// BinOp enumerates binary SQL operators.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpLike
)

// Binary applies a binary operator.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

func (Binary) isExpr() {}

// Not is logical negation.
type Not struct {
	Inner Expr
}

func (Not) isExpr() {}

// Neg is arithmetic negation.
type Neg struct {
	Inner Expr
}

func (Neg) isExpr() {}

// IsNull is "expr IS [NOT] NULL".
type IsNull struct {
	Inner  Expr
	Negate bool
}

func (IsNull) isExpr() {}

// InList is "expr IN (v1, v2, ...)" over literal values.
type InList struct {
	Inner  Expr
	Values []rdb.Value
	Negate bool
}

func (InList) isExpr() {}

// LikeToMatcher converts a SQL LIKE pattern ('%' any run, '_' any
// single character) into a matching function.
func LikeToMatcher(pattern string) func(string) bool {
	// Translate into a simple recursive matcher over segments.
	return func(s string) bool { return likeMatch(pattern, s) }
}

func likeMatch(pat, s string) bool {
	// Dynamic-programming LIKE match, case-sensitive.
	pi, si := 0, 0
	starPi, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			pi++
			si++
		case pi < len(pat) && pat[pi] == '%':
			starPi, starSi = pi, si
			pi++
		case starPi >= 0:
			starSi++
			pi, si = starPi+1, starSi
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// typeFromKeyword maps a SQL type keyword to the engine column type.
func typeFromKeyword(kw string) (rdb.ColType, bool) {
	switch strings.ToUpper(kw) {
	case "INTEGER", "INT":
		return rdb.TInt, true
	case "VARCHAR":
		return rdb.TVarchar, true
	case "TEXT":
		return rdb.TText, true
	case "DOUBLE", "FLOAT":
		return rdb.TFloat, true
	case "BOOLEAN", "BOOL":
		return rdb.TBool, true
	}
	return 0, false
}
