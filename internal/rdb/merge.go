package rdb

import (
	"fmt"
	"sort"
)

// Merging branches with main.
//
// A merge three-ways the source and destination heads against the
// branch's recorded base (the fork point, or the head of the last
// merge). Both deltas come out of the structural diff, so a merge
// costs what the branches actually changed. The rules are
// conservative:
//
//   - The catalog must not have diverged (DDL is main-only, but main
//     may have created or dropped tables since the fork): diverged
//     table sets or schemas fail with a MergeError.
//   - A destination with no changes since the base fast-forwards: the
//     merged head adopts the source's table versions by pointer.
//   - Otherwise the deltas must touch disjoint primary keys per table.
//     Conflicting keys are reported in a MergeConflictError — never
//     resolved by guessing.
//   - A disjoint three-way merge transplants the source delta through
//     the ordinary transaction API — inserts parents-first, then
//     updates, then deletes children-last — so every constraint is
//     re-validated against the destination; a violation aborts the
//     merge with the underlying error.
//
// Merging a branch into main converges the branch on the result (its
// head and base move to the new main head), so the two lines are
// identical after the merge and a following merge in either direction
// is up-to-date. Merging main into a branch leaves main untouched and
// advances the branch's base to the merged-from main head.

// MergeError reports a merge that cannot proceed (invalid ref pair,
// diverged catalogs, or a constraint violation while transplanting).
type MergeError struct {
	From   string
	Into   string
	Reason string
}

// Error implements error.
func (e *MergeError) Error() string {
	return fmt.Sprintf("rdb: cannot merge %q into %q: %s", e.From, e.Into, e.Reason)
}

// MergeConflict lists the primary keys of one table that both sides
// changed since the base (rendered; capped at diffSampleKeys).
type MergeConflict struct {
	Table string
	Keys  []string
}

// MergeConflictError reports a merge whose sides changed overlapping
// keys. The conflicts are reported, not resolved.
type MergeConflictError struct {
	From      string
	Into      string
	Conflicts []MergeConflict
}

// Error implements error.
func (e *MergeConflictError) Error() string {
	n := 0
	for _, c := range e.Conflicts {
		n += len(c.Keys)
	}
	return fmt.Sprintf("rdb: merge of %q into %q conflicts on %d key(s) in %d table(s); first: %s(%s)",
		e.From, e.Into, n, len(e.Conflicts), e.Conflicts[0].Table, e.Conflicts[0].Keys[0])
}

// MergeResult describes a completed merge.
type MergeResult struct {
	From string
	Into string
	// FastForward: the destination had no changes since the base, so
	// the merged head adopts the source's table versions by pointer.
	FastForward bool
	// UpToDate: the source had nothing new; no commit was published.
	UpToDate bool
	// Version is the new head version of the destination (0 when
	// UpToDate).
	Version uint64
	// Applied counts the row changes transplanted by a three-way merge.
	Applied int
}

// Merge merges one ref into another. Exactly one side must be main.
func (db *Database) Merge(from, into string) (*MergeResult, error) {
	if from == into {
		return nil, &MergeError{From: from, Into: into, Reason: "identical refs"}
	}
	switch {
	case into == MainBranch:
		b, err := db.lookupBranch(from)
		if err != nil {
			return nil, err
		}
		return db.mergeIntoMain(b)
	case from == MainBranch:
		b, err := db.lookupBranch(into)
		if err != nil {
			return nil, err
		}
		return db.mergeIntoBranch(b)
	default:
		return nil, &MergeError{From: from, Into: into, Reason: "one side of a merge must be main"}
	}
}

// ---------------------------------------------------------------------------
// Deltas.

// mergeOp is one pk-level change a merge transplants.
type mergeOp struct {
	kind byte // walInsert / walUpdate / walDelete
	// sortKey is the encoded primary key the op applies at (the base
	// key for updates/deletes, the new key for inserts); ops apply in
	// sortKey order for determinism.
	sortKey string
	// oldPK holds the base-side primary key values (update/delete).
	oldPK []Value
	// newRow is the full source-side tuple (insert/update).
	newRow []Value
}

// mergeTableOps collects one table's delta between a base and a head:
// the ops to transplant plus every touched key (including the old key
// of a pk-changing update) for conflict detection.
type mergeTableOps struct {
	name    string
	v       *tableVersion // head-side version (schema source)
	ops     []mergeOp
	touched map[string]string // encoded pk -> rendered pk
}

func pkValues(v *tableVersion, row []Value) []Value {
	vals := make([]Value, len(v.pkCols))
	for i, ci := range v.pkCols {
		vals[i] = row[ci]
	}
	return vals
}

// buildDelta diffs every table between base and head (same table set;
// the caller has checked compatibility) into transplantable ops.
func buildDelta(base, head *dbSnapshot) map[string]*mergeTableOps {
	delta := make(map[string]*mergeTableOps)
	for _, key := range head.order {
		hv := head.tables[key]
		bv := base.tables[key]
		if bv == hv {
			continue
		}
		d := &mergeTableOps{name: hv.schema.Name, v: hv, touched: make(map[string]string)}
		diffTableRows(bv, hv, func(_ int64, fromRow, toRow []Value, inFrom, inTo bool) bool {
			switch {
			case inFrom && inTo:
				oldKey := bv.pkKey(fromRow)
				newKey := hv.pkKey(toRow)
				d.ops = append(d.ops, mergeOp{kind: walUpdate, sortKey: oldKey,
					oldPK: pkValues(bv, fromRow), newRow: toRow})
				d.touched[oldKey] = displayKey(bv, fromRow)
				d.touched[newKey] = displayKey(hv, toRow)
			case inTo:
				k := hv.pkKey(toRow)
				d.ops = append(d.ops, mergeOp{kind: walInsert, sortKey: k, newRow: toRow})
				d.touched[k] = displayKey(hv, toRow)
			default:
				k := bv.pkKey(fromRow)
				d.ops = append(d.ops, mergeOp{kind: walDelete, sortKey: k,
					oldPK: pkValues(bv, fromRow)})
				d.touched[k] = displayKey(bv, fromRow)
			}
			return true
		})
		if len(d.ops) > 0 {
			delta[key] = d
		}
	}
	return delta
}

// deltaConflicts intersects the touched key sets of two deltas.
func deltaConflicts(a, b map[string]*mergeTableOps) []MergeConflict {
	var out []MergeConflict
	keys := make([]string, 0, len(a))
	for key := range a {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		da, db := a[key], b[key]
		if db == nil {
			continue
		}
		var hit []string
		for enc, rendered := range da.touched {
			if _, ok := db.touched[enc]; ok {
				hit = append(hit, rendered)
			}
		}
		if len(hit) > 0 {
			sort.Strings(hit)
			if len(hit) > diffSampleKeys {
				hit = hit[:diffSampleKeys]
			}
			out = append(out, MergeConflict{Table: da.name, Keys: hit})
		}
	}
	return out
}

// schemasEqual compares table schemas structurally — recovery loads
// branch snapshots into fresh schema objects, so pointer identity is
// not enough.
func schemasEqual(a, b *TableSchema) bool {
	if a == b {
		return true
	}
	if a.Name != b.Name || len(a.Columns) != len(b.Columns) ||
		len(a.PrimaryKey) != len(b.PrimaryKey) || len(a.ForeignKeys) != len(b.ForeignKeys) {
		return false
	}
	for i := range a.Columns {
		ca, cb := &a.Columns[i], &b.Columns[i]
		if ca.Name != cb.Name || ca.Type != cb.Type || ca.Length != cb.Length ||
			ca.NotNull != cb.NotNull || ca.Unique != cb.Unique || ca.AutoIncrement != cb.AutoIncrement {
			return false
		}
		if (ca.Default == nil) != (cb.Default == nil) {
			return false
		}
		if ca.Default != nil && *ca.Default != *cb.Default {
			return false
		}
	}
	for i := range a.PrimaryKey {
		if a.PrimaryKey[i] != b.PrimaryKey[i] {
			return false
		}
	}
	for i := range a.ForeignKeys {
		if a.ForeignKeys[i] != b.ForeignKeys[i] {
			return false
		}
	}
	return true
}

// mergeCompatible verifies the three snapshots share one catalog:
// identical table sets and structurally equal schemas.
func mergeCompatible(base, src, dst *dbSnapshot, from, into string) error {
	for _, s := range []*dbSnapshot{src, dst} {
		if len(s.order) != len(base.order) {
			return &MergeError{From: from, Into: into, Reason: "table sets diverged since the merge base"}
		}
		for _, key := range base.order {
			v, ok := s.tables[key]
			if !ok {
				return &MergeError{From: from, Into: into,
					Reason: fmt.Sprintf("table %q dropped since the merge base", base.tables[key].schema.Name)}
			}
			if !schemasEqual(v.schema, base.tables[key].schema) {
				return &MergeError{From: from, Into: into,
					Reason: fmt.Sprintf("schema of %q diverged since the merge base", v.schema.Name)}
			}
		}
	}
	return nil
}

// rowMap renders a full tuple as the column map the Tx API takes.
// Every column is set explicitly (including NULLs), so defaults and
// auto-increment do not re-fire — the transplant reproduces the source
// row exactly.
func rowMap(s *TableSchema, row []Value) map[string]Value {
	m := make(map[string]Value, len(s.Columns))
	for i := range s.Columns {
		m[s.Columns[i].Name] = row[i]
	}
	return m
}

func sortedOps(d *mergeTableOps, kind byte) []mergeOp {
	var out []mergeOp
	for _, op := range d.ops {
		if op.kind == kind {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sortKey < out[j].sortKey })
	return out
}

// applyDelta transplants a source delta into the destination through
// the ordinary transaction API: inserts parents-first, then updates,
// then deletes children-first, each table's ops in key order. Every
// constraint re-validates against the destination.
func applyDelta(tx *Tx, delta map[string]*mergeTableOps) (int, error) {
	topo, err := tx.snap.topological()
	if err != nil {
		return 0, err
	}
	keys := make([]string, len(topo))
	for i, n := range topo {
		keys[i] = lowerName(n)
	}
	applied := 0
	apply := func(key string, kind byte) error {
		d := delta[key]
		if d == nil {
			return nil
		}
		for _, op := range sortedOps(d, kind) {
			switch kind {
			case walInsert:
				if err := tx.Insert(d.name, rowMap(d.v.schema, op.newRow)); err != nil {
					return err
				}
			case walUpdate:
				id, _, ok, err := tx.LookupPK(d.name, op.oldPK)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("row %v vanished from %s during merge", op.oldPK, d.name)
				}
				if err := tx.UpdateByID(d.name, id, rowMap(d.v.schema, op.newRow)); err != nil {
					return err
				}
			case walDelete:
				id, _, ok, err := tx.LookupPK(d.name, op.oldPK)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("row %v vanished from %s during merge", op.oldPK, d.name)
				}
				if err := tx.DeleteByID(d.name, id); err != nil {
					return err
				}
			}
			applied++
		}
		return nil
	}
	for _, key := range keys {
		if err := apply(key, walInsert); err != nil {
			return applied, err
		}
	}
	for _, key := range keys {
		if err := apply(key, walUpdate); err != nil {
			return applied, err
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		if err := apply(keys[i], walDelete); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

// ---------------------------------------------------------------------------
// The two merge directions.

// mergeIntoMain merges branch b into main. db.Begin freezes main for
// the duration (every table exclusively locked), so the three-way
// happens against stable heads; the branch mutex freezes b.
func (db *Database) mergeIntoMain(b *branch) (*MergeResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dropped.Load() {
		return nil, &BranchError{Branch: b.name, Reason: "no such branch"}
	}
	src := b.head.Load()
	base := b.base.Load()
	tx := db.Begin()
	defer tx.Rollback()
	dst := tx.snap
	if err := mergeCompatible(base, src, dst, b.name, MainBranch); err != nil {
		return nil, err
	}
	srcD := buildDelta(base, src)
	if len(srcD) == 0 {
		return &MergeResult{From: b.name, Into: MainBranch, UpToDate: true}, nil
	}
	dstD := buildDelta(base, dst)
	ff := len(dstD) == 0
	applied := 0
	if !ff {
		if conflicts := deltaConflicts(srcD, dstD); len(conflicts) > 0 {
			return nil, &MergeConflictError{From: b.name, Into: MainBranch, Conflicts: conflicts}
		}
		var err error
		if applied, err = applyDelta(tx, srcD); err != nil {
			return nil, &MergeError{From: b.name, Into: MainBranch, Reason: err.Error()}
		}
	}
	return db.publishMergeIntoMain(tx, b, src, ff, applied)
}

// publishMergeIntoMain publishes the merge commit on main — adopting
// src's tables for a fast-forward, installing the transplant
// transaction's derived versions otherwise — logs one 'M' record, and
// converges the branch on the result.
func (db *Database) publishMergeIntoMain(tx *Tx, b *branch, src *dbSnapshot, ff bool, applied int) (*MergeResult, error) {
	db.pubMu.Lock()
	cur := db.snap.Load() // == tx.snap: Begin holds every table exclusively
	ns := &dbSnapshot{
		version:      db.seq.Load() + 1,
		parent:       cur.version,
		branch:       MainBranch,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	if ff {
		for k, v := range src.tables {
			ns.tables[k] = v
		}
	} else {
		for k, v := range cur.tables {
			ns.tables[k] = v
		}
		for k, v := range tx.working {
			v.owner = nil // freeze before sharing
			v.asOf = ns.version
			ns.tables[k] = v
		}
	}
	if db.persist != nil {
		if err := db.persist.append(encodeMergeRecord(ns.version, b.name, MainBranch, ff, tx.changes)); err != nil {
			db.pubMu.Unlock()
			return nil, err
		}
	}
	db.seq.Store(ns.version)
	db.snap.Store(ns)
	b.head.Store(ns)
	b.base.Store(ns)
	db.hist.record(ns)
	db.pubMu.Unlock()
	if db.persist != nil {
		db.persist.maybeCheckpoint(db)
	}
	return &MergeResult{From: b.name, Into: MainBranch, FastForward: ff,
		Version: ns.version, Applied: applied}, nil
}

// mergeIntoBranch merges main into branch b. Main is not locked — its
// writers keep committing — so the merge pins a main head, transplants
// against it, and retries from scratch if main moved before the
// publish (the WAL record must mean "merged the then-current main
// head" for replay to be deterministic).
func (db *Database) mergeIntoBranch(b *branch) (*MergeResult, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dropped.Load() {
		return nil, &BranchError{Branch: b.name, Reason: "no such branch"}
	}
	const maxAttempts = 8
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, retry, err := db.tryMergeIntoBranch(b)
		if !retry {
			return res, err
		}
	}
	return nil, &MergeError{From: MainBranch, Into: b.name,
		Reason: "main advanced on every attempt; retries exhausted"}
}

func (db *Database) tryMergeIntoBranch(b *branch) (res *MergeResult, retry bool, err error) {
	db.mu.RLock() // exclude DDL while the transplant runs
	defer db.mu.RUnlock()
	src := db.snap.Load() // pinned main head this attempt merges
	dst := b.head.Load()
	base := b.base.Load()
	if err := mergeCompatible(base, src, dst, MainBranch, b.name); err != nil {
		return nil, false, err
	}
	srcD := buildDelta(base, src)
	if len(srcD) == 0 {
		return &MergeResult{From: MainBranch, Into: b.name, UpToDate: true}, false, nil
	}
	dstD := buildDelta(base, dst)
	ff := len(dstD) == 0
	var working map[string]*tableVersion
	var changes []walChange
	applied := 0
	if !ff {
		if conflicts := deltaConflicts(srcD, dstD); len(conflicts) > 0 {
			return nil, false, &MergeConflictError{From: MainBranch, Into: b.name, Conflicts: conflicts}
		}
		// A detached transplant transaction over the branch head: it
		// takes no locks (the caller holds the branch mutex) and is
		// never committed or rolled back — its derived versions publish
		// below.
		tx := &Tx{db: db, snap: dst, branch: b, owner: newOwner(), capture: db.persist != nil}
		if applied, err = applyDelta(tx, srcD); err != nil {
			tx.branch = nil // neutralize: release() must not touch our locks
			return nil, false, &MergeError{From: MainBranch, Into: b.name, Reason: err.Error()}
		}
		working, changes = tx.working, tx.changes
		tx.branch = nil
		tx.done = true
	}
	db.pubMu.Lock()
	if b.dropped.Load() {
		db.pubMu.Unlock()
		return nil, false, &BranchError{Branch: b.name, Reason: "no such branch"}
	}
	if db.snap.Load() != src {
		db.pubMu.Unlock()
		return nil, true, nil // main moved: the delta is stale, retry
	}
	ns := &dbSnapshot{
		version:      db.seq.Load() + 1,
		parent:       dst.version,
		branch:       b.name,
		tables:       make(map[string]*tableVersion, len(dst.tables)),
		order:        dst.order,
		referencedBy: dst.referencedBy,
	}
	if ff {
		for k, v := range src.tables {
			ns.tables[k] = v
		}
	} else {
		for k, v := range dst.tables {
			ns.tables[k] = v
		}
		for k, v := range working {
			v.owner = nil // freeze before sharing
			v.asOf = ns.version
			ns.tables[k] = v
		}
	}
	if db.persist != nil {
		if err := db.persist.append(encodeMergeRecord(ns.version, MainBranch, b.name, ff, changes)); err != nil {
			db.pubMu.Unlock()
			return nil, false, err
		}
	}
	db.seq.Store(ns.version)
	b.head.Store(ns)
	b.base.Store(src)
	db.hist.record(ns)
	db.pubMu.Unlock()
	if db.persist != nil {
		db.persist.maybeCheckpoint(db)
	}
	return &MergeResult{From: MainBranch, Into: b.name, FastForward: ff,
		Version: ns.version, Applied: applied}, false, nil
}
