package sparql

import (
	"encoding/json"
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
)

func sampleSolutions() ([]string, Solutions) {
	vars := []string{"x", "name", "tag"}
	sols := Solutions{
		{
			"x":    rdf.IRI("http://example.org/db/author6"),
			"name": rdf.Literal("Hert"),
			"tag":  rdf.LangLiteral("Zürich", "de"),
		},
		{
			"x":    rdf.Blank("b0"),
			"name": rdf.IntegerLiteral(42),
			// tag unbound in this row
		},
	}
	return vars, sols
}

func TestResultsJSONShape(t *testing.T) {
	vars, sols := sampleSolutions()
	data, err := ResultsJSON(vars, sols)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	s := string(data)
	for _, want := range []string{
		`"vars"`, `"bindings"`,
		`"type": "uri"`, `"type": "literal"`, `"type": "bnode"`,
		`"xml:lang": "de"`,
		`"datatype": "http://www.w3.org/2001/XMLSchema#integer"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
	// Plain xsd:string literals must not carry a datatype member.
	if strings.Contains(s, rdf.XSDString) {
		t.Errorf("xsd:string must be omitted:\n%s", s)
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	vars, sols := sampleSolutions()
	data, err := ResultsJSON(vars, sols)
	if err != nil {
		t.Fatal(err)
	}
	gotVars, gotSols, err := ParseResultsJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotVars) != 3 || gotVars[0] != "x" {
		t.Errorf("vars = %v", gotVars)
	}
	if len(gotSols) != 2 {
		t.Fatalf("solutions = %d", len(gotSols))
	}
	for i := range sols {
		for _, v := range vars {
			want, wok := sols[i][v]
			got, gok := gotSols[i][v]
			if wok != gok || (wok && want != got) {
				t.Errorf("row %d var %s: %v vs %v", i, v, want, got)
			}
		}
	}
}

func TestAskJSONRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		data, err := AskJSON(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ParseAskJSON(data)
		if err != nil || got != v {
			t.Errorf("round trip %v -> %v, %v", v, got, err)
		}
	}
}

func TestParseResultsJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"head":{},"boolean":true}`, // ASK doc fed to SELECT parser
		`{"head":{"vars":[]}}`,       // missing results
		`{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"alien","value":"?"}}]}}`,
	}
	for _, src := range cases {
		if _, _, err := ParseResultsJSON([]byte(src)); err == nil {
			t.Errorf("ParseResultsJSON(%q) succeeded", src)
		}
	}
	if _, err := ParseAskJSON([]byte(`{"head":{}}`)); err == nil {
		t.Error("ASK without boolean accepted")
	}
	if _, err := ParseAskJSON([]byte(`nope`)); err == nil {
		t.Error("junk ASK accepted")
	}
}

func TestEmptyResults(t *testing.T) {
	data, err := ResultsJSON(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, `"vars": []`) || !strings.Contains(s, `"bindings": []`) {
		t.Errorf("empty doc:\n%s", s)
	}
	vars, sols, err := ParseResultsJSON(data)
	if err != nil || len(vars) != 0 || len(sols) != 0 {
		t.Errorf("round trip empty: %v %v %v", vars, sols, err)
	}
}

func TestSortedVars(t *testing.T) {
	_, sols := sampleSolutions()
	vars := SortedVars(sols)
	if len(vars) != 3 || vars[0] != "name" || vars[1] != "tag" || vars[2] != "x" {
		t.Errorf("vars = %v", vars)
	}
}
