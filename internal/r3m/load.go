package r3m

import (
	"fmt"
	"sort"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
)

// Load parses an R3M mapping from a Turtle document (paper Listings
// 1-5) and validates it.
func Load(turtleSrc string) (*Mapping, error) {
	g, _, err := turtle.Parse(turtleSrc)
	if err != nil {
		return nil, fmt.Errorf("r3m: parsing mapping: %w", err)
	}
	return FromGraph(g)
}

// FromGraph extracts an R3M mapping from an RDF graph and validates
// it.
func FromGraph(g *rdf.Graph) (*Mapping, error) {
	r := &reader{g: g}
	dbNodes := r.subjectsOfType(ClassDatabaseMap)
	if len(dbNodes) == 0 {
		return nil, fmt.Errorf("r3m: no r3m:DatabaseMap found in mapping document")
	}
	if len(dbNodes) > 1 {
		return nil, fmt.Errorf("r3m: multiple r3m:DatabaseMap nodes found (%d)", len(dbNodes))
	}
	node := dbNodes[0]
	m := &Mapping{
		Node:       node,
		JDBCDriver: r.optString(node, PropJdbcDriver),
		JDBCURL:    r.optString(node, PropJdbcURL),
		Username:   r.optString(node, PropUsername),
		Password:   r.optString(node, PropPassword),
		URIPrefix:  r.optString(node, PropURIPrefix),
	}
	tables := r.objects(node, PropHasTable)
	if len(tables) == 0 {
		return nil, fmt.Errorf("r3m: DatabaseMap lists no tables")
	}
	for _, tnode := range tables {
		switch {
		case r.hasType(tnode, ClassTableMap):
			tm, err := r.readTableMap(tnode)
			if err != nil {
				return nil, err
			}
			m.Tables = append(m.Tables, tm)
		case r.hasType(tnode, ClassLinkTableMap):
			lt, err := r.readLinkTableMap(tnode)
			if err != nil {
				return nil, err
			}
			m.LinkTables = append(m.LinkTables, lt)
		default:
			return nil, fmt.Errorf("r3m: node %s listed by hasTable is neither TableMap nor LinkTableMap", tnode)
		}
	}
	sortTables(m)
	m.index()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// sortTables orders tables by name so loading is deterministic
// regardless of graph iteration order.
func sortTables(m *Mapping) {
	sort.Slice(m.Tables, func(i, j int) bool { return m.Tables[i].Name < m.Tables[j].Name })
	sort.Slice(m.LinkTables, func(i, j int) bool { return m.LinkTables[i].Name < m.LinkTables[j].Name })
}

type reader struct {
	g *rdf.Graph
}

func (r *reader) subjectsOfType(class rdf.Term) []rdf.Term {
	var out []rdf.Term
	r.g.Each(func(t rdf.Triple) bool {
		if t.P == rdf.IRI(rdf.RDFType) && t.O == class {
			out = append(out, t.S)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

func (r *reader) hasType(node, class rdf.Term) bool {
	return r.g.Contains(rdf.NewTriple(node, rdf.IRI(rdf.RDFType), class))
}

func (r *reader) objects(node rdf.Term, prop rdf.Term) []rdf.Term {
	var out []rdf.Term
	r.g.Each(func(t rdf.Triple) bool {
		if t.S == node && t.P == prop {
			out = append(out, t.O)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return rdf.CompareTerms(out[i], out[j]) < 0 })
	return out
}

func (r *reader) optObject(node rdf.Term, prop rdf.Term) (rdf.Term, bool) {
	objs := r.objects(node, prop)
	if len(objs) == 0 {
		return rdf.Term{}, false
	}
	return objs[0], true
}

func (r *reader) optString(node rdf.Term, prop rdf.Term) string {
	if o, ok := r.optObject(node, prop); ok {
		return o.Value
	}
	return ""
}

func (r *reader) requireString(node rdf.Term, prop rdf.Term, what string) (string, error) {
	o, ok := r.optObject(node, prop)
	if !ok {
		return "", fmt.Errorf("r3m: %s %s lacks %s", what, node, prop)
	}
	if !o.IsLiteral() || o.Value == "" {
		return "", fmt.Errorf("r3m: %s %s: %s must be a non-empty literal", what, node, prop)
	}
	return o.Value, nil
}

func (r *reader) readTableMap(node rdf.Term) (*TableMap, error) {
	name, err := r.requireString(node, PropHasTableName, "TableMap")
	if err != nil {
		return nil, err
	}
	class, ok := r.optObject(node, PropMapsToClass)
	if !ok || !class.IsIRI() {
		return nil, fmt.Errorf("r3m: TableMap %s (table %q) lacks r3m:mapsToClass", node, name)
	}
	pattern, err := r.requireString(node, PropURIPattern, "TableMap")
	if err != nil {
		return nil, err
	}
	tm := &TableMap{Node: node, Name: name, Class: class, URIPattern: pattern}
	for _, anode := range r.objects(node, PropHasAttribute) {
		am, err := r.readAttributeMap(anode)
		if err != nil {
			return nil, err
		}
		tm.Attributes = append(tm.Attributes, am)
	}
	sort.Slice(tm.Attributes, func(i, j int) bool { return tm.Attributes[i].Name < tm.Attributes[j].Name })
	if len(tm.Attributes) == 0 {
		return nil, fmt.Errorf("r3m: TableMap for %q has no attributes", name)
	}
	return tm, nil
}

func (r *reader) readAttributeMap(node rdf.Term) (*AttributeMap, error) {
	name, err := r.requireString(node, PropHasAttributeName, "AttributeMap")
	if err != nil {
		return nil, err
	}
	am := &AttributeMap{Node: node, Name: name}
	if p, ok := r.optObject(node, PropMapsToDataProperty); ok {
		am.Property = p
	}
	if p, ok := r.optObject(node, PropMapsToObjectProperty); ok {
		if !am.Property.IsZero() {
			return nil, fmt.Errorf("r3m: attribute %q maps to both a data and an object property", name)
		}
		am.Property = p
		am.IsObject = true
	}
	am.Datatype = r.optString(node, PropHasDatatype)
	am.ValuePrefix = r.optString(node, PropValuePrefix)
	for _, cnode := range r.objects(node, PropHasConstraint) {
		c, err := r.readConstraint(cnode, name)
		if err != nil {
			return nil, err
		}
		am.Constraints = append(am.Constraints, c)
	}
	sort.Slice(am.Constraints, func(i, j int) bool { return am.Constraints[i].Kind < am.Constraints[j].Kind })
	return am, nil
}

func (r *reader) readConstraint(node rdf.Term, attrName string) (Constraint, error) {
	switch {
	case r.hasType(node, ClassPrimaryKey):
		return Constraint{Kind: ConstraintPrimaryKey}, nil
	case r.hasType(node, ClassForeignKey):
		ref, ok := r.optObject(node, PropReferences)
		if !ok {
			return Constraint{}, fmt.Errorf("r3m: ForeignKey constraint on %q lacks r3m:references", attrName)
		}
		return Constraint{Kind: ConstraintForeignKey, References: ref.Value}, nil
	case r.hasType(node, ClassNotNull):
		return Constraint{Kind: ConstraintNotNull}, nil
	case r.hasType(node, ClassDefault):
		v := r.optString(node, PropHasDefaultValue)
		return Constraint{Kind: ConstraintDefault, Default: v}, nil
	default:
		return Constraint{}, fmt.Errorf("r3m: constraint node %s on attribute %q has no recognized type", node, attrName)
	}
}

func (r *reader) readLinkTableMap(node rdf.Term) (*LinkTableMap, error) {
	name, err := r.requireString(node, PropHasTableName, "LinkTableMap")
	if err != nil {
		return nil, err
	}
	prop, ok := r.optObject(node, PropMapsToObjectProperty)
	if !ok || !prop.IsIRI() {
		return nil, fmt.Errorf("r3m: LinkTableMap for %q lacks r3m:mapsToObjectProperty", name)
	}
	lt := &LinkTableMap{Node: node, Name: name, Property: prop}
	snode, ok := r.optObject(node, PropHasSubjectAttribute)
	if !ok {
		return nil, fmt.Errorf("r3m: LinkTableMap for %q lacks r3m:hasSubjectAttribute", name)
	}
	lt.SubjectAttr, err = r.readAttributeMap(snode)
	if err != nil {
		return nil, err
	}
	onode, ok := r.optObject(node, PropHasObjectAttribute)
	if !ok {
		return nil, fmt.Errorf("r3m: LinkTableMap for %q lacks r3m:hasObjectAttribute", name)
	}
	lt.ObjectAttr, err = r.readAttributeMap(onode)
	if err != nil {
		return nil, err
	}
	return lt, nil
}
