// Command rdbshell is a minimal interactive SQL shell over the
// embedded relational engine — a substrate demo and a debugging tool
// for inspecting the database behind an OntoAccess mediator.
//
// Usage:
//
//	rdbshell                  # empty database
//	rdbshell -paper           # the paper's Figure 1 schema
//	rdbshell -ddl schema.sql
//
// Statements end with ';'. DDL auto-commits, DML statements run in
// their own transaction. Type \d to list tables, \q to quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/workload"
)

func main() {
	paper := flag.Bool("paper", false, "start with the paper's Figure 1 schema")
	ddlPath := flag.String("ddl", "", "SQL DDL file to apply at startup")
	flag.Parse()

	db := rdb.NewDatabase("shell")
	if *paper {
		if _, err := sqlexec.Run(db, workload.SchemaSQL); err != nil {
			log.Fatalf("rdbshell: %v", err)
		}
	}
	if *ddlPath != "" {
		ddl, err := os.ReadFile(*ddlPath)
		if err != nil {
			log.Fatalf("rdbshell: %v", err)
		}
		if _, err := sqlexec.Run(db, string(ddl)); err != nil {
			log.Fatalf("rdbshell: %v", err)
		}
	}

	fmt.Println("rdbshell — embedded OntoAccess engine. \\d lists tables, \\q quits.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "sql> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "exit", "quit":
			return
		case `\d`:
			for _, name := range db.TableNames() {
				n, _ := db.RowCount(name)
				schema, _ := db.Schema(name)
				fmt.Printf("%s (%d rows)\n%s\n", name, n, schema.DDL())
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt = "...> "
			continue
		}
		prompt = "sql> "
		script := buf.String()
		buf.Reset()
		results, err := sqlexec.Run(db, script)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		for _, r := range results {
			if r.Set != nil {
				fmt.Print(r.Set.Format())
				fmt.Printf("(%d rows)\n", len(r.Set.Rows))
			} else {
				fmt.Printf("ok (%d rows affected)\n", r.RowsAffected)
			}
		}
	}
}
