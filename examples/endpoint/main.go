// Endpoint: starts the OntoAccess HTTP mediation endpoint (paper
// Section 6) in-process and drives it with an HTTP client — insert,
// constraint violation, MODIFY, SPARQL query, and the RDF export.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"ontoaccess"
	"ontoaccess/internal/workload"
)

func main() {
	m, err := workload.NewMediator(ontoaccess.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(ontoaccess.NewServer(m))
	defer ts.Close()
	fmt.Println("endpoint listening on", ts.URL)

	// 1. Insert the paper's complete data set.
	show("POST /update (Listing 15)", post(ts.URL+"/update", workload.Listing15))

	// 2. An invalid request: rich RDF feedback with HTTP 422.
	show("POST /update (invalid: missing lastname)", post(ts.URL+"/update",
		workload.Prologue+`INSERT DATA { ex:author9 foaf:firstName "Anon" . }`))

	// 3. MODIFY over HTTP.
	show("POST /update (Listing 11 MODIFY)", post(ts.URL+"/update", workload.Listing11))

	// 4. SPARQL query.
	q := url.QueryEscape(workload.Prologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	show("GET /sparql", get(ts.URL+"/sparql?query="+q))

	// 5. The full RDF view.
	show("GET /export", get(ts.URL+"/export"))
}

func post(u, body string) string {
	resp, err := http.Post(u, "application/sparql-update", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return fmt.Sprintf("HTTP %d\n%s", resp.StatusCode, data)
}

func get(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return fmt.Sprintf("HTTP %d\n%s", resp.StatusCode, data)
}

func show(title, body string) {
	fmt.Println("\n==", title)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		fmt.Println("  ", line)
	}
}
