package ntriples

import (
	"bytes"
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
)

func sample() *rdf.Graph {
	return rdf.NewGraph(
		rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.Literal("o")),
		rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/q"), rdf.IntegerLiteral(5)),
		rdf.NewTriple(rdf.Blank("b"), rdf.IRI("http://e/p"), rdf.LangLiteral("x", "de")),
	)
}

func TestFormatAndParseRoundTrip(t *testing.T) {
	g := sample()
	text := Format(g)
	g2, err := ParseString(text)
	if err != nil {
		t.Fatalf("ParseString: %v\n%s", err, text)
	}
	if !g.Equal(g2) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", Format(g), Format(g2))
	}
}

func TestWriteRead(t *testing.T) {
	g := sample()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Error("Write/Read round trip mismatch")
	}
}

func TestFormatDeterministic(t *testing.T) {
	a, b := Format(sample()), Format(sample())
	if a != b {
		t.Error("Format must be deterministic")
	}
	lines := strings.Split(strings.TrimSpace(a), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count = %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasSuffix(l, " .") {
			t.Errorf("line %q must end with ' .'", l)
		}
	}
}

func TestRejectDirectives(t *testing.T) {
	if _, err := ParseString("@prefix ex: <http://e/> .\nex:s ex:p ex:o ."); err == nil {
		t.Error("directives must be rejected")
	}
	if _, err := ParseString("PREFIX ex: <http://e/>"); err == nil {
		t.Error("SPARQL-style prefix must be rejected")
	}
}

func TestParseBadTriple(t *testing.T) {
	if _, err := ParseString("<http://e/s> <http://e/p> ."); err == nil {
		t.Error("truncated triple must fail")
	}
}
