package rdb

import (
	"fmt"
	"strings"
)

// Tx is a database transaction. It holds its table locks from Begin /
// BeginWrite / View until Commit or Rollback, providing serializable
// isolation over the tables it covers. Constraint checking is
// immediate: every Insert, Update and Delete validates NOT NULL,
// type, PRIMARY KEY, UNIQUE, FOREIGN KEY and RESTRICT rules at
// operation time — the behaviour of MySQL/InnoDB that makes statement
// ordering inside a transaction matter (paper Section 5.1, step
// five).
//
// Lock coverage is fixed at Begin time and acquired in one globally
// sorted pass, so transactions cannot deadlock against each other. A
// transaction that touches a table outside its lock set fails with an
// error instead of racing.
type Tx struct {
	db   *Database
	done bool
	undo []undoEntry
	// locks is the acquired lock set in acquisition order; mode maps a
	// lowercased table name to its lock entry.
	locks []lockPlanEntry
	mode  map[string]*lockPlanEntry
}

type undoKind int

const (
	undoInsert undoKind = iota // row was inserted: undo removes it
	undoUpdate                 // row was updated: undo restores oldRow
	undoDelete                 // row was deleted: undo reinserts oldRow
)

type undoEntry struct {
	table  *table
	kind   undoKind
	id     int64
	oldRow []Value
}

// begin acquires the given lock plan (already sorted) and returns the
// transaction. The catalog lock is held shared for the transaction's
// lifetime, keeping the table registry stable under it.
func (db *Database) begin(plan []lockPlanEntry) *Tx {
	mode := make(map[string]*lockPlanEntry, len(plan))
	for i := range plan {
		e := &plan[i]
		if e.write {
			e.t.mu.Lock()
		} else {
			e.t.mu.RLock()
		}
		mode[e.key] = e
	}
	return &Tx{db: db, locks: plan, mode: mode}
}

// Begin starts a transaction that write-locks every table — the
// serialized semantics the paper's single-connection prototype had.
// It blocks until all locks are available. Nested Begin on the same
// goroutine deadlocks, as with a single SQL connection.
func (db *Database) Begin() *Tx {
	db.mu.RLock()
	return db.begin(db.allTablesPlan(true))
}

// BeginWrite starts a transaction that write-locks only the named
// tables plus shared locks on their foreign-key parents and children
// (the tables integrity checks read). Transactions with disjoint
// write sets and non-conflicting read sets run in parallel. Touching
// a table outside the lock set fails instead of racing, so callers
// must declare every table they will modify.
func (db *Database) BeginWrite(writeTables ...string) *Tx {
	db.mu.RLock()
	return db.begin(db.lockPlan(writeTables, nil))
}

// BeginWriteRead is BeginWrite with an explicitly declared read set:
// the named read tables are locked shared in addition to the write
// set's foreign-key neighbourhood. Compiled MODIFY plans use it — the
// WHERE SELECT may scan tables that are neither written nor
// foreign-key neighbours of the written tables.
func (db *Database) BeginWriteRead(writeTables, readTables []string) *Tx {
	db.mu.RLock()
	return db.begin(db.lockPlan(writeTables, readTables))
}

// release drops all table locks in reverse acquisition order plus the
// catalog lock.
func (tx *Tx) release() {
	for i := len(tx.locks) - 1; i >= 0; i-- {
		e := tx.locks[i]
		if e.write {
			e.t.mu.Unlock()
		} else {
			e.t.mu.RUnlock()
		}
	}
	tx.locks = nil
	tx.mode = nil
	tx.db.mu.RUnlock()
}

// Commit makes the transaction's changes durable and releases its
// locks.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("rdb: transaction already finished")
	}
	tx.done = true
	tx.undo = nil
	tx.release()
	return nil
}

// Rollback reverts every change made in the transaction, in reverse
// order, and releases its locks. Rolling back a finished transaction
// is a no-op, so `defer tx.Rollback()` is safe.
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	for i := len(tx.undo) - 1; i >= 0; i-- {
		e := tx.undo[i]
		switch e.kind {
		case undoInsert:
			e.table.remove(e.id)
		case undoUpdate:
			e.table.update(e.id, e.oldRow)
		case undoDelete:
			// Reinsert with the original row id to keep undo entries
			// that reference the id valid.
			e.table.rows[e.id] = e.oldRow
			e.table.order = append(e.table.order, e.id)
			e.table.pk[e.table.pkKey(e.oldRow)] = e.id
			for ci, idx := range e.table.secondary {
				addToIdx(idx, encodeKey(e.oldRow[ci:ci+1]), e.id)
			}
		}
	}
	tx.undo = nil
	tx.release()
	return nil
}

// View runs fn inside a read-only transaction that is always rolled
// back, providing a consistent read snapshot. Every table is locked
// shared, so views run in parallel with each other and with writers
// of nothing.
func (db *Database) View(fn func(tx *Tx) error) error {
	db.mu.RLock()
	tx := db.begin(db.allTablesPlan(false))
	defer tx.Rollback()
	return fn(tx)
}

// Update runs fn inside a transaction, committing when fn returns nil
// and rolling back otherwise.
func (db *Database) Update(fn func(tx *Tx) error) error {
	tx := db.Begin()
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

func (tx *Tx) check() error {
	if tx.done {
		return fmt.Errorf("rdb: transaction already finished")
	}
	return nil
}

// table resolves a table and enforces the transaction's lock
// coverage: reads need any lock on the table, writes need the
// exclusive one.
func (tx *Tx) table(name string, write bool) (*table, error) {
	t, err := tx.db.getTable(name)
	if err != nil {
		return nil, err
	}
	e, covered := tx.mode[strings.ToLower(name)]
	if !covered {
		return nil, &LockError{Table: name}
	}
	if write && !e.write {
		return nil, &LockError{Table: name, ReadOnly: true}
	}
	return t, nil
}

// Schema returns the schema of the named table. Schemas are immutable
// after CreateTable, so no table lock is needed — but the transaction
// must still be open, since the catalog lock is released on finish.
func (tx *Tx) Schema(name string) (*TableSchema, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	t, err := tx.db.getTable(name)
	if err != nil {
		return nil, err
	}
	return t.schema, nil
}

// TopologicalTableOrder returns tables sorted parents-first by
// foreign-key dependency (see Database.TopologicalTableOrder), usable
// while the transaction holds the lock.
func (tx *Tx) TopologicalTableOrder() ([]string, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	return tx.db.topologicalLocked()
}

// TableNames lists tables in creation order; nil after the
// transaction finished (the catalog is no longer pinned).
func (tx *Tx) TableNames() []string {
	if tx.done {
		return nil
	}
	out := make([]string, len(tx.db.order))
	for i, key := range tx.db.order {
		out[i] = tx.db.tables[key].schema.Name
	}
	return out
}

// Insert adds a row given as a column-name -> value map. Missing
// columns receive their DEFAULT or NULL. All constraints are checked
// immediately.
func (tx *Tx) Insert(tableName string, vals map[string]Value) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.table(tableName, true)
	if err != nil {
		return err
	}
	s := t.schema
	row := make([]Value, len(s.Columns))
	seen := make(map[int]bool, len(vals))
	for name, v := range vals {
		ci := s.ColumnIndex(name)
		if ci < 0 {
			return &TableError{Table: s.Name, Column: name}
		}
		row[ci] = v
		seen[ci] = true
	}
	for i := range s.Columns {
		if !seen[i] && s.Columns[i].Default != nil {
			row[i] = *s.Columns[i].Default
		}
	}
	// AUTO_INCREMENT: assign max+1 to a NULL integer primary key.
	if len(t.pkCols) == 1 {
		pi := t.pkCols[0]
		if row[pi].IsNull() && s.Columns[pi].AutoIncrement && s.Columns[pi].Type == TInt {
			row[pi] = Int(t.nextAuto)
		}
	}
	if err := tx.validateRow(t, row, -1); err != nil {
		return err
	}
	for i := range row {
		row[i] = coerce(row[i], &s.Columns[i])
	}
	id := t.insert(row)
	tx.undo = append(tx.undo, undoEntry{table: t, kind: undoInsert, id: id})
	return nil
}

// UpdateByID modifies the identified row with the given column
// assignments.
func (tx *Tx) UpdateByID(tableName string, id int64, set map[string]Value) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.table(tableName, true)
	if err != nil {
		return err
	}
	s := t.schema
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("rdb: table %q has no row with internal id %d", s.Name, id)
	}
	row := make([]Value, len(old))
	copy(row, old)
	pkChanged := false
	for name, v := range set {
		ci := s.ColumnIndex(name)
		if ci < 0 {
			return &TableError{Table: s.Name, Column: name}
		}
		row[ci] = v
		if s.IsPrimaryKey(name) {
			pkChanged = true
		}
	}
	if err := tx.validateRow(t, row, id); err != nil {
		return err
	}
	if pkChanged {
		// Changing a referenced key is restricted, like ON UPDATE
		// RESTRICT in SQL.
		if err := tx.checkRestrict(t, old, "update"); err != nil {
			return err
		}
	}
	for i := range row {
		row[i] = coerce(row[i], &s.Columns[i])
	}
	oldCopy := make([]Value, len(old))
	copy(oldCopy, old)
	t.update(id, row)
	tx.undo = append(tx.undo, undoEntry{table: t, kind: undoUpdate, id: id, oldRow: oldCopy})
	return nil
}

// DeleteByID removes the identified row, enforcing RESTRICT against
// incoming foreign keys.
func (tx *Tx) DeleteByID(tableName string, id int64) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.table(tableName, true)
	if err != nil {
		return err
	}
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("rdb: table %q has no row with internal id %d", t.schema.Name, id)
	}
	if err := tx.checkRestrict(t, row, "delete"); err != nil {
		return err
	}
	oldCopy := make([]Value, len(row))
	copy(oldCopy, row)
	t.remove(id)
	tx.undo = append(tx.undo, undoEntry{table: t, kind: undoDelete, id: id, oldRow: oldCopy})
	return nil
}

// Scan visits all rows of a table in insertion order.
func (tx *Tx) Scan(tableName string, fn func(id int64, row []Value) bool) error {
	if err := tx.check(); err != nil {
		return err
	}
	t, err := tx.table(tableName, false)
	if err != nil {
		return err
	}
	t.scan(fn)
	return nil
}

// LookupPK returns the internal row id and row for the given primary
// key values.
func (tx *Tx) LookupPK(tableName string, pkVals []Value) (int64, []Value, bool, error) {
	if err := tx.check(); err != nil {
		return 0, nil, false, err
	}
	t, err := tx.table(tableName, false)
	if err != nil {
		return 0, nil, false, err
	}
	if len(pkVals) != len(t.pkCols) {
		return 0, nil, false, fmt.Errorf("rdb: table %q has a %d-column primary key, got %d values",
			t.schema.Name, len(t.pkCols), len(pkVals))
	}
	id, ok := t.lookupPK(pkVals)
	if !ok {
		return 0, nil, false, nil
	}
	return id, t.rows[id], true, nil
}

// validateRow checks type, NOT NULL, PRIMARY KEY, UNIQUE and FOREIGN
// KEY constraints for a candidate row. selfID identifies the row
// being updated (so it does not collide with itself); -1 for inserts.
func (tx *Tx) validateRow(t *table, row []Value, selfID int64) error {
	s := t.schema
	for i := range s.Columns {
		c := &s.Columns[i]
		v := row[i]
		if v.IsNull() {
			if c.NotNull || s.IsPrimaryKey(c.Name) {
				return &ConstraintError{Kind: ViolationNotNull, Table: s.Name, Column: c.Name,
					Detail: "column requires a value"}
			}
			continue
		}
		if err := checkType(v, c); err != nil {
			return &ConstraintError{Kind: ViolationType, Table: s.Name, Column: c.Name, Value: v,
				Detail: err.Error()}
		}
	}
	// PRIMARY KEY uniqueness.
	key := t.pkKey(row)
	if id, exists := t.pk[key]; exists && id != selfID {
		return &ConstraintError{Kind: ViolationPrimaryKey, Table: s.Name,
			Column: strings.Join(s.PrimaryKey, ","), Value: row[t.pkCols[0]],
			Detail: "duplicate primary key"}
	}
	// UNIQUE columns (NULLs exempt, as in SQL).
	for i := range s.Columns {
		if !s.Columns[i].Unique || row[i].IsNull() {
			continue
		}
		if set, ok := t.matchSecondary(i, row[i]); ok {
			for id := range set {
				if id != selfID {
					return &ConstraintError{Kind: ViolationUnique, Table: s.Name,
						Column: s.Columns[i].Name, Value: row[i], Detail: "duplicate value"}
				}
			}
		}
	}
	// FOREIGN KEYs: immediate existence check against the referenced
	// table's primary key.
	for _, fk := range s.ForeignKeys {
		ci := s.ColumnIndex(fk.Column)
		v := row[ci]
		if v.IsNull() {
			continue
		}
		ref, err := tx.table(fk.RefTable, false)
		if err != nil {
			return fmt.Errorf("rdb: foreign key %s.%s references missing table %q",
				s.Name, fk.Column, fk.RefTable)
		}
		if len(ref.pkCols) != 1 {
			return fmt.Errorf("rdb: foreign key %s.%s references table %q with a composite primary key",
				s.Name, fk.Column, fk.RefTable)
		}
		if _, ok := ref.lookupPK([]Value{coerce(v, &ref.schema.Columns[ref.pkCols[0]])}); !ok {
			return &ConstraintError{Kind: ViolationForeignKey, Table: s.Name, Column: fk.Column,
				Value: v, RefTable: ref.schema.Name,
				Detail: "referenced row does not exist"}
		}
	}
	return nil
}

// checkRestrict fails when other rows reference the given row's
// primary key (ON DELETE/UPDATE RESTRICT).
func (tx *Tx) checkRestrict(t *table, row []Value, action string) error {
	if len(t.pkCols) != 1 {
		return nil // composite keys cannot be FK targets here
	}
	pkVal := row[t.pkCols[0]]
	for _, back := range tx.db.referencedBy[strings.ToLower(t.schema.Name)] {
		refTable, err := tx.table(back.table, false)
		if err != nil {
			// A vanished referencing table cannot hold references; any
			// other failure (notably a lock-coverage bug) must surface
			// loudly rather than silently skip the RESTRICT check.
			if _, missing := err.(*TableError); missing {
				continue
			}
			return err
		}
		ci := refTable.schema.ColumnIndex(back.column)
		if set, ok := refTable.matchSecondary(ci, pkVal); ok && len(set) > 0 {
			return &ConstraintError{Kind: ViolationRestrict, Table: t.schema.Name,
				Column: t.schema.PrimaryKey[0], Value: pkVal, RefTable: refTable.schema.Name,
				Detail: fmt.Sprintf("cannot %s row still referenced by %s.%s",
					action, refTable.schema.Name, back.column)}
		}
	}
	return nil
}

// Match returns the internal row ids whose columns equal the given
// values, using a secondary index when one exists on any of the
// condition columns. Values are coerced to the column storage type
// before comparison, so lexically equivalent keys match. This is the
// index-backed probe the compiled-plan executor uses instead of
// re-parsing a generated SELECT.
func (tx *Tx) Match(tableName string, eq map[string]Value) ([]int64, error) {
	if err := tx.check(); err != nil {
		return nil, err
	}
	t, err := tx.table(tableName, false)
	if err != nil {
		return nil, err
	}
	s := t.schema
	type cond struct {
		ci int
		v  Value
	}
	conds := make([]cond, 0, len(eq))
	indexed := -1
	for name, v := range eq {
		ci := s.ColumnIndex(name)
		if ci < 0 {
			return nil, &TableError{Table: s.Name, Column: name}
		}
		cv := coerce(v, &s.Columns[ci])
		conds = append(conds, cond{ci: ci, v: cv})
		if _, ok := t.secondary[ci]; ok && indexed < 0 {
			indexed = len(conds) - 1
		}
	}
	matches := func(row []Value) bool {
		for _, c := range conds {
			if !Equal(row[c.ci], c.v) {
				return false
			}
		}
		return true
	}
	var out []int64
	if indexed >= 0 {
		set, _ := t.matchSecondary(conds[indexed].ci, conds[indexed].v)
		for id := range set {
			if row, ok := t.rows[id]; ok && matches(row) {
				out = append(out, id)
			}
		}
		return out, nil
	}
	t.scan(func(id int64, row []Value) bool {
		if matches(row) {
			out = append(out, id)
		}
		return true
	})
	return out, nil
}
