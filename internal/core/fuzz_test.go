package core

import (
	"testing"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/update"
)

// FuzzNormalizeShape drives arbitrary requests through the shape
// normalizer. The normalizer must never panic, and parameter binding
// must round-trip: re-assembling every parameterized term from the
// extracted argument vector must reproduce the original lexical forms,
// and re-normalizing must yield the identical cache key and arguments
// (the property the whole plan cache rests on — a shape key that did
// not determine its binding sites would execute one request's plan
// with another request's parameters).
func FuzzNormalizeShape(f *testing.F) {
	seeds := []string{
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont: <http://example.org/ontology#>
PREFIX ex: <http://example.org/db/>
INSERT DATA { ex:author6 foaf:firstName "Matthias" ; foaf:mbox <mailto:hert@ifi.uzh.ch> ; ont:team ex:team5 . }`,
		`PREFIX ex: <http://example.org/db/>
PREFIX ont: <http://example.org/ontology#>
DELETE DATA { ex:team41 ont:teamCode "T41" . }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ex: <http://example.org/db/>
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:new7@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`,
		`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:x@example.org> . }
WHERE { ?x rdf:type foaf:Person ; foaf:firstName "Matthias" ; foaf:mbox ?m . }`,
		`INSERT DATA { <http://a/s1> <http://b/p> "00123" . }`,
		`INSERT DATA { <http://a/90s17x4> <http://b/p> "v0" ; <http://b/q> <http://a/5> . }`,
		`INSERT DATA { <http://a/1> <http://b/p> "2009"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		`INSERT DATA { <http://a/1> <http://b/p> "hi"@en . }`,
		`CLEAR`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		req, err := update.Parse(src)
		if err != nil {
			return
		}
		for _, op := range req.Ops {
			switch o := op.(type) {
			case update.InsertData:
				checkDataShape(t, op, o.Triples)
			case update.DeleteData:
				checkDataShape(t, op, o.Triples)
			case update.Modify:
				key, args, nm, ok := normalizeModify(o)
				if !ok {
					continue
				}
				checkPatternRoundTrip(t, "DELETE", nm.del, o.Delete, args)
				checkPatternRoundTrip(t, "INSERT", nm.ins, o.Insert, args)
				checkPatternRoundTrip(t, "WHERE", nm.where, o.Where.Triples, args)
				key2, args2, _, ok2 := normalizeModify(o)
				if !ok2 || key2 != key || !equalStrings(args, args2) {
					t.Fatal("MODIFY normalization is not deterministic")
				}
			}
		}
	})
}

// checkDataShape verifies the normalize/bind round trip for one
// INSERT DATA / DELETE DATA operation.
func checkDataShape(t *testing.T, op update.Operation, triples []rdf.Triple) {
	t.Helper()
	key, args, nts, kind, ok := normalizeOp(op)
	if !ok {
		return
	}
	if len(nts) != len(triples) {
		t.Fatalf("%s: %d normalized triples for %d triples", kind, len(nts), len(triples))
	}
	for i, nt := range nts {
		if got := bindNormTerm(nt.s, args); got != triples[i].S.Value {
			t.Fatalf("subject %d does not round-trip: %q != %q", i, got, triples[i].S.Value)
		}
		if got := bindNormTerm(nt.o, args); got != triples[i].O.Value {
			t.Fatalf("object %d does not round-trip: %q != %q", i, got, triples[i].O.Value)
		}
		if nt.p != triples[i].P {
			t.Fatalf("predicate %d changed: %v != %v", i, nt.p, triples[i].P)
		}
	}
	key2, args2, _, _, ok2 := normalizeOp(op)
	if !ok2 || key2 != key || !equalStrings(args, args2) {
		t.Fatalf("%s: normalization is not deterministic", kind)
	}
}

// checkPatternRoundTrip verifies that materializing normalized MODIFY
// patterns with the extracted arguments reproduces the original
// patterns exactly.
func checkPatternRoundTrip(t *testing.T, section string, nps []normPattern, pats []sparql.TriplePattern, args []string) {
	t.Helper()
	if len(nps) != len(pats) {
		t.Fatalf("%s: %d normalized patterns for %d patterns", section, len(nps), len(pats))
	}
	got := materializePatterns(nps, args)
	for i := range pats {
		if got[i] != pats[i] {
			t.Fatalf("%s pattern %d does not round-trip:\ngot  %v\nwant %v", section, i, got[i], pats[i])
		}
	}
}

func bindNormTerm(nt normTerm, args []string) string {
	if nt.segs == nil {
		return nt.term.Value
	}
	return bindSegs(nt.segs, args)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
