package endpoint

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"ontoaccess/internal/core"
	"ontoaccess/internal/ntriples"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/turtle"
	"ontoaccess/internal/workload"
)

// get performs a GET /sparql with an optional Accept header through
// the in-process handler.
func get(t *testing.T, s *Server, query, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(workload.Prologue+query), nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// TestStreamedResponseParity pins the streaming endpoint to the seed's
// buffered rendering byte for byte, across every query regime: plain
// cursor-streamed SELECTs, the materialize-then-replay shapes
// (DISTINCT, ORDER BY, LIMIT/OFFSET, aggregates), OPTIONAL with
// unbound variables, UNION, the uncompiled expression fallback, empty
// results, ASK and CONSTRUCT — each in both the text table and
// SPARQL-results-JSON renderings.
func TestStreamedResponseParity(t *testing.T) {
	s, m := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	g := workload.NewGenerator(7)
	for i := 1; i <= 9; i++ {
		post(t, s, "/update", "application/sparql-update", g.AuthorInsert(i))
	}

	queries := []string{
		`SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }`,
		`SELECT DISTINCT ?t WHERE { ?x foaf:title ?t . }`,
		`SELECT ?l WHERE { ?x foaf:family_name ?l . } ORDER BY ?l`,
		`SELECT ?l WHERE { ?x foaf:family_name ?l . } ORDER BY ?l LIMIT 3 OFFSET 2`,
		`SELECT ?m WHERE { ?x foaf:mbox ?m . } LIMIT 4`,
		`SELECT ?m WHERE { ?x foaf:mbox ?m . } LIMIT 4 OFFSET 3`,
		`SELECT ?x ?f ?m WHERE { ?x foaf:firstName ?f . OPTIONAL { ?x foaf:mbox ?m . } }`,
		`SELECT ?n WHERE { { ?x foaf:name ?n . } UNION { ?x foaf:firstName ?n . } }`,
		`SELECT ?x WHERE { ?x foaf:family_name ?l . FILTER (STR(?l) = "Hert") }`,
		`SELECT (COUNT(?x) AS ?n) WHERE { ?x foaf:mbox ?m . }`,
		`SELECT ?n WHERE { ex:nosuchthing foaf:name ?n . }`,
		`ASK { ex:team5 foaf:name "Software Engineering" . }`,
		`ASK { ex:team5 foaf:name "No Such Team" . }`,
	}
	for _, q := range queries {
		res, err := m.Query(workload.Prologue + q)
		if err != nil {
			t.Fatalf("buffered query %q: %v", q, err)
		}
		var wantText, wantJSON string
		if res.Form == sparql.FormAsk {
			wantText = fmt.Sprintf("%v\n", res.Bool)
			data, err := sparql.AskJSON(res.Bool)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON = string(data)
		} else {
			wantText = sparql.FormatTable(res.Vars, res.Solutions)
			data, err := sparql.ResultsJSON(res.Vars, res.Solutions)
			if err != nil {
				t.Fatal(err)
			}
			wantJSON = string(data)
		}

		if rec := get(t, s, q, ""); rec.Code != http.StatusOK || rec.Body.String() != wantText {
			t.Errorf("text parity broken for %q (status %d):\ngot:\n%s\nwant:\n%s",
				q, rec.Code, rec.Body, wantText)
		}
		if rec := get(t, s, q, "application/sparql-results+json"); rec.Code != http.StatusOK || rec.Body.String() != wantJSON {
			t.Errorf("JSON parity broken for %q (status %d):\ngot:\n%s\nwant:\n%s",
				q, rec.Code, rec.Body, wantJSON)
		}
	}

	// CONSTRUCT streams Turtle subject block by subject block.
	cq := `CONSTRUCT { ?x foaf:name ?n . } WHERE { ?x foaf:name ?n . }`
	res, err := m.Query(workload.Prologue + cq)
	if err != nil {
		t.Fatal(err)
	}
	want := turtle.Serialize(res.Graph, rdf.CommonPrefixes())
	if rec := get(t, s, cq, ""); rec.Code != http.StatusOK || rec.Body.String() != want {
		t.Errorf("CONSTRUCT parity broken (status %d):\ngot:\n%s\nwant:\n%s", rec.Code, rec.Body, want)
	}

	// /export parity in both formats.
	eg, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/export", nil)
	req.Header.Set("Accept", "application/n-triples")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != ntriples.Format(eg) {
		t.Errorf("export N-Triples parity broken (status %d)", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/export", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Body.String() != turtle.Serialize(eg, rdf.CommonPrefixes()) {
		t.Errorf("export Turtle parity broken (status %d)", rec.Code)
	}
}

// bigMediator seeds one shared read-only mediator with enough rows
// (~25k authors) that a full-scan response far exceeds the kernel's
// socket buffering — the lever the slow-client and mid-stream tests
// need. Built once; the hardening tests only read from it.
var bigMediator = sync.OnceValues(func() (*core.Mediator, error) {
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := m.ExecuteString(seedTeamsSrc(20)); err != nil {
		return nil, err
	}
	for i := 0; i < 25000; i += 500 {
		var sb strings.Builder
		sb.WriteString(workload.Prologue)
		sb.WriteString("\nINSERT DATA {\n")
		for j := i + 1; j <= i+500; j++ {
			fmt.Fprintf(&sb, "  ex:author%d foaf:title \"Dr\" ; foaf:firstName \"F%d\" ; foaf:family_name \"L%d\" ; foaf:mbox <mailto:a%d@example.org> ; ont:team ex:team%d .\n",
				j, j, j, j, j%20+1)
		}
		sb.WriteString("}")
		if _, err := m.ExecuteString(sb.String()); err != nil {
			return nil, err
		}
	}
	return m, nil
})

func seedTeamsSrc(n int) string {
	var sb strings.Builder
	sb.WriteString(workload.Prologue)
	sb.WriteString("\nINSERT DATA {\n")
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&sb, "  ex:team%d foaf:name \"Team %d\" ; ont:teamCode \"T%d\" .\n", i, i, i)
	}
	sb.WriteString("}")
	return sb.String()
}

const scanQuery = `SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }`

// TestStreamErrorBeforeCommit pins the pre-commitment half of the
// mid-stream error contract: when nothing has reached the client yet,
// the staged buffer is dropped and the client sees a clean error
// status — 400 for query errors, 504 for an expired deadline — never
// a truncated body.
func TestStreamErrorBeforeCommit(t *testing.T) {
	s, _ := newServer(t)
	rec := get(t, s, `SELECT ?x WHERE { this is not sparql`, "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("parse error status = %d, want 400", rec.Code)
	}
	if strings.Contains(rec.Body.String(), "?x") {
		t.Errorf("error response leaked partial result:\n%s", rec.Body)
	}

	m, err := bigMediator()
	if err != nil {
		t.Fatal(err)
	}
	// A deadline that has always already expired: the sink's first
	// context check fails before any byte is staged.
	st := NewWithOptions(m, Options{RequestTimeout: time.Nanosecond})
	rec = get(t, st, scanQuery, "application/sparql-results+json")
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline status = %d, want 504; body:\n%s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "query timed out") {
		t.Errorf("504 body = %q", rec.Body.String())
	}
	if got := st.Stats(); got.TimedOut != 1 || got.Truncated != 0 {
		t.Errorf("stats = %+v, want TimedOut=1 Truncated=0", got)
	}

	// ASK is a whole-payload write, but it honors the deadline too: a
	// past-deadline ASK must 504, not serve a stale answer.
	rec = get(t, st, `ASK { ?x foaf:mbox ?m . }`, "")
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired-deadline ASK status = %d, want 504; body:\n%s", rec.Code, rec.Body)
	}
	if strings.Contains(rec.Body.String(), "true") {
		t.Errorf("expired-deadline ASK leaked a result:\n%s", rec.Body)
	}
	if got := st.Stats(); got.TimedOut != 2 {
		t.Errorf("stats = %+v, want TimedOut=2", got)
	}
}

// slowRead issues a GET against a live server, reads a first chunk,
// stalls past d, then drains the rest — forcing the server to commit
// the response head and then block on socket backpressure until the
// request deadline has passed.
func slowRead(t *testing.T, base, query, accept string, d time.Duration) (status int, body []byte, readErr error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/sparql?query="+url.QueryEscape(workload.Prologue+query), nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	first := make([]byte, 1024)
	n, err := io.ReadFull(resp.Body, first)
	if err != nil {
		t.Fatalf("reading response head: %v", err)
	}
	time.Sleep(d)
	rest, err := io.ReadAll(resp.Body)
	return resp.StatusCode, append(first[:n], rest...), err
}

// TestStreamErrorMidStreamTextTrailer pins the post-commitment
// contract for text bodies: once bytes are on the wire, an error
// cannot unsend them, so the stream ends with a comment trailer
// marking the truncation, and the truncated/timed-out counters tick.
// (The text table serializer only commits at Close — column widths are
// global — so this path is reached through write failures rather than
// per-row deadline checks; the contract is pinned at the failStream
// seam where both converge.)
func TestStreamErrorMidStreamTextTrailer(t *testing.T) {
	s, _ := newServer(t)
	rec := httptest.NewRecorder()
	cw := &countingResponseWriter{ResponseWriter: rec}
	bw := bufPool.Get().(*bufio.Writer)
	bw.Reset(cw)
	sink := &querySink{w: cw, bw: bw, ctx: context.Background()}
	if err := sink.Head([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	// Commit a prefix to the client, as a filled staging buffer would.
	fmt.Fprint(bw, "x\n----\nrow1\n")
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !cw.committed() {
		t.Fatal("prefix did not commit")
	}

	s.failStream(cw, sink, fmt.Errorf("decode failed: %w", context.DeadlineExceeded))
	body := rec.Body.String()
	if !strings.HasPrefix(body, "x\n----\nrow1\n") {
		t.Fatalf("committed prefix was unsent:\n%s", body)
	}
	if !strings.Contains(body, "# ERROR:") || !strings.Contains(body, "(response truncated)") {
		t.Fatalf("truncated text body lacks the error trailer:\n%s", body)
	}
	if rec.Code != http.StatusOK {
		t.Errorf("status rewritten to %d after commit", rec.Code)
	}
	if got := s.Stats(); got.Truncated != 1 || got.TimedOut != 1 {
		t.Errorf("stats = %+v, want Truncated=1 TimedOut=1", got)
	}

	// The same failure before commit yields a clean 504 instead.
	rec2 := httptest.NewRecorder()
	cw2 := &countingResponseWriter{ResponseWriter: rec2}
	bw2 := bufPool.Get().(*bufio.Writer)
	bw2.Reset(cw2)
	sink2 := &querySink{w: cw2, bw: bw2, ctx: context.Background()}
	if err := sink2.Head([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(bw2, "staged but never flushed")
	s.failStream(cw2, sink2, context.DeadlineExceeded)
	if rec2.Code != http.StatusGatewayTimeout {
		t.Errorf("pre-commit failure status = %d, want 504", rec2.Code)
	}
	if strings.Contains(rec2.Body.String(), "staged") {
		t.Errorf("staged bytes leaked into the error response:\n%s", rec2.Body)
	}
}

// TestStreamErrorMidStreamJSONAborts pins the JSON half: there is no
// in-band way to flag failure inside a JSON document that has started,
// so the endpoint aborts the chunked transfer — the client observes a
// transport-level error instead of parsing a truncated prefix as a
// complete result.
func TestStreamErrorMidStreamJSONAborts(t *testing.T) {
	m, err := bigMediator()
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithOptions(m, Options{RequestTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	status, _, readErr := slowRead(t, ts.URL, scanQuery, "application/sparql-results+json", 700*time.Millisecond)
	if status != http.StatusOK {
		t.Fatalf("status = %d (the head was committed before the deadline)", status)
	}
	if readErr == nil {
		t.Fatal("truncated JSON stream ended cleanly; want an aborted transfer")
	}
	if got := s.Stats(); got.Truncated != 1 || got.TimedOut != 1 {
		t.Errorf("stats = %+v, want Truncated=1 TimedOut=1", got)
	}
}

// TestLoadShedding saturates a MaxInFlight=1 endpoint with one pinned
// request and checks that concurrent requests get fast 503s with
// Retry-After instead of queueing, that the shed counter ticks, and
// that /healthz stays reachable and reports the saturation. The slot
// is pinned deterministically by a request whose body never finishes
// arriving — the handler blocks reading it, holding the semaphore,
// independent of socket buffer sizes.
func TestLoadShedding(t *testing.T) {
	m, err := bigMediator()
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithOptions(m, Options{MaxInFlight: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Declare a 1000-byte form body but send only a prefix: handleQuery's
	// ParseForm blocks on the remainder with the in-flight slot held.
	fmt.Fprintf(conn, "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 1000\r\n\r\nquery=")

	// Wait until the stalled request owns the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	const overload = 5
	start := time.Now()
	for i := 0; i < overload; i++ {
		resp, err := http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(workload.Prologue+`ASK { ex:team1 foaf:name "Team 1" . }`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("overload request %d: status = %d, body %q", i, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 lacks Retry-After")
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("shedding %d requests took %v; 503s must be fast", overload, d)
	}
	if got := s.Stats().Shed; got != overload {
		t.Errorf("shed = %d, want %d", got, overload)
	}

	// /healthz stays reachable while the gated routes are saturated.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under load: %v (status %v)", err, resp)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), fmt.Sprintf("%d shed", overload)) {
		t.Errorf("healthz does not report shed count:\n%s", body)
	}

	// Releasing the stalled request frees the slot; traffic flows again.
	conn.Close()
	deadline = time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never released after the stalled request died")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/sparql?query=" + url.QueryEscape(workload.Prologue+`ASK { ex:team1 foaf:name "Team 1" . }`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release request status = %d", resp.StatusCode)
	}
}

// TestSlowClientWriteTimeout wires the http.Server WriteTimeout that
// ontoaccessd installs and checks a stalled reader cannot pin a worker:
// the server cuts the connection, the handler unwinds, and the
// in-flight gauge returns to zero.
func TestSlowClientWriteTimeout(t *testing.T) {
	m, err := bigMediator()
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithOptions(m, Options{MaxInFlight: 4})
	ts := httptest.NewUnstartedServer(s)
	ts.Config.WriteTimeout = 300 * time.Millisecond
	ts.Start()
	defer ts.Close()

	// JSON flushes progressively (32 KiB batches), so the stalled
	// reader's small receive window blocks the handler mid-stream; the
	// write deadline then severs the connection out from under it.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(workload.Prologue+scanQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/sparql-results+json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	first := make([]byte, 512)
	if _, err := io.ReadFull(resp.Body, first); err != nil {
		t.Fatal(err)
	}
	// Stall well past the write deadline, then try to drain: the server
	// must have severed the connection rather than wait on us.
	time.Sleep(900 * time.Millisecond)
	if _, err := io.Copy(io.Discard, resp.Body); err == nil {
		t.Error("connection survived a stall past WriteTimeout")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker still pinned after write timeout (in flight = %d)", s.Stats().InFlight)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
