package turtle

import (
	"strings"
	"testing"
	"testing/quick"

	"ontoaccess/internal/rdf"
)

func TestSerializeSimple(t *testing.T) {
	g := rdf.NewGraph(rdf.NewTriple(
		rdf.IRI("http://example.org/db/author6"),
		rdf.IRI("http://xmlns.com/foaf/0.1/family_name"),
		rdf.Literal("Hert")))
	pm := rdf.CommonPrefixes()
	out := Serialize(g, pm)
	if !strings.Contains(out, `ex:author6 foaf:family_name "Hert" .`) {
		t.Errorf("unexpected serialization:\n%s", out)
	}
	if !strings.Contains(out, "@prefix foaf: <http://xmlns.com/foaf/0.1/> .") {
		t.Errorf("missing prefix declaration:\n%s", out)
	}
}

func TestSerializeTypeFirstAndGrouping(t *testing.T) {
	g := MustParse(`
@prefix ex: <http://e/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
ex:s ex:z "last" ; a ex:Klass ; ex:a "first" .
`)
	pm := rdf.NewPrefixMap()
	pm.Set("ex", "http://e/")
	out := Serialize(g, pm)
	aIdx := strings.Index(out, " a ex:Klass")
	if aIdx < 0 {
		t.Fatalf("rdf:type not rendered as 'a':\n%s", out)
	}
	if zIdx := strings.Index(out, "ex:z"); zIdx < aIdx {
		t.Errorf("rdf:type must come first:\n%s", out)
	}
}

func TestSerializeShorthandLiterals(t *testing.T) {
	g := rdf.NewGraph(
		rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/i"), rdf.IntegerLiteral(42)),
		rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/b"), rdf.BooleanLiteral(true)),
	)
	out := Serialize(g, nil)
	if !strings.Contains(out, " 42") {
		t.Errorf("integer shorthand missing:\n%s", out)
	}
	if !strings.Contains(out, " true") {
		t.Errorf("boolean shorthand missing:\n%s", out)
	}
}

func TestSerializeNilPrefixes(t *testing.T) {
	g := rdf.NewGraph(rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.LangLiteral("hi", "en")))
	out := Serialize(g, nil)
	if !strings.Contains(out, `<http://e/s> <http://e/p> "hi"@en .`) {
		t.Errorf("got:\n%s", out)
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	src := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ont: <http://example.org/ontology#> .
@prefix ex: <http://example.org/db/> .
@prefix dc: <http://purl.org/dc/elements/1.1/> .

ex:pub12 dc:title "Relational..." ;
    ont:pubYear "2009" ;
    ont:pubType ex:pubtype4 ;
    dc:publisher ex:publisher3 ;
    dc:creator ex:author6 .

ex:author6 foaf:title "Mr" ;
    foaf:firstName "Matthias" ;
    foaf:family_name "Hert" ;
    foaf:mbox <mailto:hert@ifi.uzh.ch> ;
    ont:team ex:team5 .

ex:team5 foaf:name "Software Engineering" ;
    ont:teamCode "SEAL" .
`
	g1 := MustParse(src)
	out := Serialize(g1, rdf.CommonPrefixes())
	g2, _, err := Parse(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\noutput:\n%s", err, out)
	}
	if !g1.Equal(g2) {
		t.Errorf("round trip changed graph.\nonly in g1: %v\nonly in g2: %v", g1.Diff(g2), g2.Diff(g1))
	}
}

func TestSerializeRoundTripProperty(t *testing.T) {
	// Property: any ground graph built from a constrained alphabet
	// survives serialize→parse unchanged.
	mkTerm := func(sel uint8, s string) rdf.Term {
		if s == "" {
			s = "x"
		}
		safe := strings.Map(func(r rune) rune {
			if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
				return r
			}
			return 'a' + (r % 26)
		}, s)
		switch sel % 4 {
		case 0:
			return rdf.IRI("http://e/" + safe)
		case 1:
			return rdf.Literal(s) // arbitrary string content
		case 2:
			return rdf.IntegerLiteral(int64(len(s)))
		default:
			return rdf.LangLiteral(s, "en")
		}
	}
	f := func(items [][3]string, sels [][3]uint8) bool {
		g := rdf.NewGraph()
		for i, it := range items {
			var sel [3]uint8
			if i < len(sels) {
				sel = sels[i]
			}
			s := mkTerm(0, it[0]) // subjects must be IRIs here
			p := mkTerm(0, it[1])
			o := mkTerm(sel[2], it[2])
			_ = sel[0]
			g.Add(rdf.NewTriple(s, p, o))
		}
		out := Serialize(g, nil)
		g2, _, err := Parse(out)
		if err != nil {
			return false
		}
		return g.Equal(g2)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSerializeDatatypeCompaction(t *testing.T) {
	g := rdf.NewGraph(rdf.NewTriple(
		rdf.IRI("http://e/s"), rdf.IRI("http://e/p"),
		rdf.TypedLiteral("2009", rdf.XSDInt)))
	out := Serialize(g, rdf.CommonPrefixes())
	if !strings.Contains(out, `"2009"^^xsd:int`) {
		t.Errorf("datatype not compacted:\n%s", out)
	}
}

func TestIsCanonicalInteger(t *testing.T) {
	for _, ok := range []string{"0", "42", "-7", "+3"} {
		if !isCanonicalInteger(ok) {
			t.Errorf("isCanonicalInteger(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "-", "+", "1.5", "1e3", "a1", "0x10"} {
		if isCanonicalInteger(bad) {
			t.Errorf("isCanonicalInteger(%q) = true", bad)
		}
	}
}

func BenchmarkParseListing15(b *testing.B) {
	src := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix dc: <http://purl.org/dc/elements/1.1/> .
@prefix ont: <http://example.org/ontology#> .
@prefix ex: <http://example.org/db/> .

ex:pub12 dc:title "Relational..." ;
    ont:pubYear "2009" ;
    ont:pubType ex:pubtype4 ;
    dc:publisher ex:publisher3 ;
    dc:creator ex:author6 .
ex:author6 foaf:title "Mr" ;
    foaf:firstName "Matthias" ;
    foaf:family_name "Hert" ;
    foaf:mbox <mailto:hert@ifi.uzh.ch> ;
    ont:team ex:team5 .
ex:team5 foaf:name "Software Engineering" ;
    ont:teamCode "SEAL" .
ex:pubtype4 ont:type "inproceedings" .
ex:publisher3 ont:name "Springer" .
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialize(b *testing.B) {
	g := rdf.NewGraph()
	for i := 0; i < 200; i++ {
		g.Add(rdf.NewTriple(
			rdf.IRI("http://e/s"+string(rune('a'+i%26))),
			rdf.IRI("http://e/p"),
			rdf.IntegerLiteral(int64(i))))
	}
	pm := rdf.CommonPrefixes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Serialize(g, pm)
	}
}
