package sparql

import (
	"testing"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
)

func nestedStore() *triplestore.Store {
	s := triplestore.New()
	add := func(sub, p string, o rdf.Term) {
		s.Add(rdf.NewTriple(rdf.IRI("http://e/"+sub), rdf.IRI("http://e/"+p), o))
	}
	add("a1", "kind", rdf.Literal("x"))
	add("a1", "score", rdf.IntegerLiteral(10))
	add("a2", "kind", rdf.Literal("x"))
	add("a3", "kind", rdf.Literal("y"))
	add("a3", "score", rdf.IntegerLiteral(30))
	return s
}

func TestOptionalInsideUnion(t *testing.T) {
	sols := mustEval(t, nestedStore(), `
PREFIX e: <http://e/>
SELECT ?s ?v WHERE {
  { ?s e:kind "x" . OPTIONAL { ?s e:score ?v . } }
  UNION
  { ?s e:kind "y" . ?s e:score ?v . }
} ORDER BY ?s`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %v", sols)
	}
	if v, ok := sols[0]["v"]; !ok || v != rdf.IntegerLiteral(10) {
		t.Errorf("a1 score = %v", sols[0])
	}
	if _, ok := sols[1]["v"]; ok {
		t.Errorf("a2 must have unbound score: %v", sols[1])
	}
	if sols[2]["s"] != rdf.IRI("http://e/a3") {
		t.Errorf("a3 row = %v", sols[2])
	}
}

func TestFilterInsideOptional(t *testing.T) {
	sols := mustEval(t, nestedStore(), `
PREFIX e: <http://e/>
SELECT ?s ?v WHERE {
  ?s e:kind ?k .
  OPTIONAL { ?s e:score ?v . FILTER (?v > 20) }
} ORDER BY ?s`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %v", sols)
	}
	// Only a3's score passes the inner filter; a1 keeps its row but
	// loses the binding (left-join semantics).
	if _, ok := sols[0]["v"]; ok {
		t.Errorf("a1 score must be filtered out inside OPTIONAL: %v", sols[0])
	}
	if v, ok := sols[2]["v"]; !ok || v != rdf.IntegerLiteral(30) {
		t.Errorf("a3 = %v", sols[2])
	}
}

func TestUnionThreeBranches(t *testing.T) {
	sols := mustEval(t, nestedStore(), `
PREFIX e: <http://e/>
SELECT ?s WHERE {
  { ?s e:kind "x" . } UNION { ?s e:kind "y" . } UNION { ?s e:kind "z" . }
}`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestNestedGroupActsAsConjunct(t *testing.T) {
	// A lone nested group (no UNION) joins with the outer pattern.
	sols := mustEval(t, nestedStore(), `
PREFIX e: <http://e/>
SELECT ?s WHERE {
  ?s e:kind "x" .
  { ?s e:score ?v . }
}`)
	if len(sols) != 1 || sols[0]["s"] != rdf.IRI("http://e/a1") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestOptionalChaining(t *testing.T) {
	sols := mustEval(t, nestedStore(), `
PREFIX e: <http://e/>
SELECT ?s ?v ?k WHERE {
  ?s e:kind ?k .
  OPTIONAL { ?s e:score ?v . }
  OPTIONAL { ?s e:missing ?m . }
} ORDER BY ?s`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %v", sols)
	}
	for _, sol := range sols {
		if _, ok := sol["m"]; ok {
			t.Errorf("m must be unbound: %v", sol)
		}
	}
}
