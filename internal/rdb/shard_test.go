package rdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func kvSchema() *TableSchema {
	return &TableSchema{
		Name: "kv",
		Columns: []Column{
			{Name: "id", Type: TInt, NotNull: true},
			{Name: "val", Type: TVarchar, Length: 100},
		},
		PrimaryKey: []string{"id"},
	}
}

func newKVDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase("shardtest")
	if err := db.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	return db
}

// dumpKV exports the table in scan (row id) order, so two runs agree
// only if their insert-id assignment agrees too.
func dumpKV(t *testing.T, db *Database) [][]Value {
	t.Helper()
	var rows [][]Value
	err := db.View(func(tx *Tx) error {
		return tx.Scan("kv", func(id int64, row []Value) bool {
			rows = append(rows, append([]Value(nil), row...))
			return true
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestLockPlanKeyedOrderAndUnion pins the acquisition-order and
// mode-union contract of the keyed lock planner: entries sorted by
// table key (the global deadlock-freedom order), keyed masks unioned,
// and a whole-table demand always winning over a keyed one.
func TestLockPlanKeyedOrderAndUnion(t *testing.T) {
	db := NewDatabase("lockplan")
	for _, name := range []string{"beta", "alpha", "gamma"} {
		s := kvSchema()
		s.Name = name
		if err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	plan := db.lockPlanKeyed([]TableShards{
		{Table: "beta", Shards: ShardSet(0).With(3)},
		{Table: "alpha", Shards: ShardSet(0).With(1)},
		{Table: "beta", Shards: ShardSet(0).With(5)},
	}, []string{"gamma"})
	if len(plan) != 3 {
		t.Fatalf("plan has %d entries, want 3", len(plan))
	}
	for i, want := range []struct {
		key    string
		write  bool
		shards ShardSet
	}{
		{"alpha", true, ShardSet(0).With(1)},
		{"beta", true, ShardSet(0).With(3).With(5)},
		{"gamma", false, 0},
	} {
		e := &plan[i]
		if e.key != want.key || e.write != want.write || e.shards != want.shards {
			t.Errorf("entry %d = {%s write=%v shards=%04x}, want {%s write=%v shards=%04x}",
				i, e.key, e.write, e.shards, want.key, want.write, want.shards)
		}
	}

	// Whole-table union: keyed + whole = whole, in either order.
	for _, writes := range [][]TableShards{
		{{Table: "alpha", Shards: ShardSet(0).With(1)}, {Table: "alpha"}},
		{{Table: "alpha"}, {Table: "alpha", Shards: ShardSet(0).With(1)}},
	} {
		plan := db.lockPlanKeyed(writes, nil)
		if len(plan) != 1 || plan[0].shards != 0 || !plan[0].write || plan[0].keyed() {
			t.Errorf("whole+keyed union for %v = %+v, want one whole-table write entry", writes, plan)
		}
	}

	// A read demand on a written table must not downgrade the write.
	plan = db.lockPlanKeyed([]TableShards{{Table: "alpha", Shards: ShardSet(0).With(2)}}, []string{"alpha"})
	if len(plan) != 1 || !plan[0].write || plan[0].shards != ShardSet(0).With(2) {
		t.Fatalf("write+read union = %+v, want the keyed write entry", plan)
	}
}

// TestShardOfPKCoherent: the exported shard mapping must agree with
// the transaction layer's coverage check — a key inserted under its
// declared ShardOfPK shard never trips the keyed enforcement.
func TestShardOfPKCoherent(t *testing.T) {
	db := newKVDB(t)
	for i := 0; i < 200; i++ {
		s, ok := db.ShardOfPK("kv", Int(int64(i)))
		if !ok {
			t.Fatalf("ShardOfPK failed for %d", i)
		}
		if s < 0 || s >= db.NumShards() {
			t.Fatalf("shard %d out of range for key %d", s, i)
		}
		tx := db.BeginWriteShards([]TableShards{{Table: "kv", Shards: ShardSet(0).With(s)}}, nil)
		err := tx.Insert("kv", map[string]Value{"id": Int(int64(i)), "val": String_("x")})
		if err == nil {
			err = tx.Commit()
		} else {
			tx.Rollback()
		}
		if err != nil {
			t.Fatalf("keyed insert of %d under its own shard %d failed: %v", i, s, err)
		}
	}
	if _, ok := db.ShardOfPK("missing", Int(1)); ok {
		t.Fatal("ShardOfPK succeeded for unknown table")
	}
}

// TestKeyedWriteOutsideShardFails: touching a key outside the declared
// shard set must fail with a keyed LockError (the compiled pipeline's
// fallback trigger), and must leave no partial state behind.
func TestKeyedWriteOutsideShardFails(t *testing.T) {
	db := newKVDB(t)
	in, _ := db.ShardOfPK("kv", Int(1))
	out := -1
	var outKey int64
	for k := int64(2); k < 1000; k++ {
		if s, _ := db.ShardOfPK("kv", Int(k)); s != in {
			out, outKey = s, k
			break
		}
	}
	if out == -1 {
		t.Fatal("no key hashing outside the first shard found")
	}
	tx := db.BeginWriteShards([]TableShards{{Table: "kv", Shards: ShardSet(0).With(in)}}, nil)
	defer tx.Rollback()
	if err := tx.Insert("kv", map[string]Value{"id": Int(1), "val": String_("ok")}); err != nil {
		t.Fatalf("in-shard insert failed: %v", err)
	}
	err := tx.Insert("kv", map[string]Value{"id": Int(outKey), "val": String_("nope")})
	le, ok := err.(*LockError)
	if !ok || !le.Keyed {
		t.Fatalf("out-of-shard insert returned %v, want keyed *LockError", err)
	}
	// Scans read every key range, which a keyed transaction must not.
	err = tx.Scan("kv", func(int64, []Value) bool { return true })
	if le, ok := err.(*LockError); !ok || !le.Keyed {
		t.Fatalf("scan under keyed locks returned %v, want keyed *LockError", err)
	}
}

// TestSameTableDisjointShardWritersParallel is the storage-level race
// test: concurrent writers on disjoint key ranges of one table, each
// under its own keyed transaction, must all commit and produce exactly
// the rows a serial run would.
func TestSameTableDisjointShardWritersParallel(t *testing.T) {
	db := newKVDB(t)
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * 1_000_000)
			for i := int64(0); i < perWorker; i++ {
				key := base + i
				s, ok := db.ShardOfPK("kv", Int(key))
				if !ok {
					errs <- fmt.Errorf("no shard for %d", key)
					return
				}
				tx := db.BeginWriteShards([]TableShards{{Table: "kv", Shards: ShardSet(0).With(s)}}, nil)
				err := tx.Insert("kv", map[string]Value{"id": Int(key), "val": String_(fmt.Sprintf("w%d-%d", w, i))})
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Rollback()
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d key %d: %w", w, key, err)
					return
				}
				// Update the key just written in a second keyed txn, so
				// the rebase path sees updates referencing remapped rows.
				tx = db.BeginWriteShards([]TableShards{{Table: "kv", Shards: ShardSet(0).With(s)}}, nil)
				id, _, found, err := tx.LookupPK("kv", []Value{Int(key)})
				if err == nil && !found {
					err = fmt.Errorf("own write of %d invisible", key)
				}
				if err == nil {
					err = tx.UpdateByID("kv", id, map[string]Value{"val": String_(fmt.Sprintf("w%d-%d'", w, i))})
				}
				if err == nil {
					err = tx.Commit()
				} else {
					tx.Rollback()
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d update %d: %w", w, key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var n int
	seen := map[int64]string{}
	db.View(func(tx *Tx) error {
		return tx.Scan("kv", func(id int64, row []Value) bool {
			n++
			seen[row[0].I] = row[1].S
			return true
		})
	})
	if n != workers*perWorker {
		t.Fatalf("kv rows = %d, want %d", n, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		for i := int64(0); i < perWorker; i++ {
			key := int64(w*1_000_000) + i
			if want := fmt.Sprintf("w%d-%d'", w, i); seen[key] != want {
				t.Fatalf("key %d = %q, want %q", key, seen[key], want)
			}
		}
	}
}

// FuzzShardedPublish drives two keyed transactions over disjoint shard
// groups with a fuzz-chosen operation interleaving and commit order,
// and pins the composed snapshot — including row-id assignment, which
// the publish-time rebase remaps — to a sequential whole-table
// reference run applying the same operations in commit order.
func FuzzShardedPublish(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 200, 201, 5, 6}, false)
	f.Add([]byte{10, 10, 10, 20, 20, 30}, true)
	f.Add([]byte{0, 255, 128, 64, 32, 16, 8, 4, 2, 1}, true)
	f.Fuzz(func(t *testing.T, stream []byte, commitBFirst bool) {
		if len(stream) == 0 {
			return
		}
		sharded := newKVDB(t)
		reference := newKVDB(t)

		// Split keys into two disjoint shard groups by their hash.
		groupB := func(k int64) bool {
			s, _ := sharded.ShardOfPK("kv", Int(k))
			return s >= sharded.NumShards()/2
		}
		var maskA, maskB ShardSet
		for _, b := range stream {
			k := int64(b)
			s, _ := sharded.ShardOfPK("kv", Int(k))
			if groupB(k) {
				maskB = maskB.With(s)
			} else {
				maskA = maskA.With(s)
			}
		}
		if maskA == 0 || maskB == 0 {
			return // single-group input exercises nothing concurrent
		}

		txA := sharded.BeginWriteShards([]TableShards{{Table: "kv", Shards: maskA}}, nil)
		txB := sharded.BeginWriteShards([]TableShards{{Table: "kv", Shards: maskB}}, nil)
		defer txA.Rollback()
		defer txB.Rollback()

		// One op per byte: upsert, or delete when bit 7 of the position
		// parity says so and the row exists in that transaction's view.
		apply := func(tx *Tx, k int64, del bool) error {
			id, _, found, err := tx.LookupPK("kv", []Value{Int(k)})
			if err != nil {
				return err
			}
			switch {
			case del && found:
				return tx.DeleteByID("kv", id)
			case del:
				return nil
			case found:
				return tx.UpdateByID("kv", id, map[string]Value{"val": String_(fmt.Sprintf("u%d", k))})
			default:
				return tx.Insert("kv", map[string]Value{"id": Int(k), "val": String_(fmt.Sprintf("i%d", k))})
			}
		}
		var opsA, opsB []func(tx *Tx) error
		for i, b := range stream {
			k := int64(b)
			del := i%5 == 4
			op := func(tx *Tx) error { return apply(tx, k, del) }
			if groupB(k) {
				opsB = append(opsB, op)
			} else {
				opsA = append(opsA, op)
			}
			// Execute immediately in stream order on the open txns.
			if groupB(k) {
				if err := apply(txB, k, del); err != nil {
					t.Fatalf("txB op %d: %v", i, err)
				}
			} else if err := apply(txA, k, del); err != nil {
				t.Fatalf("txA op %d: %v", i, err)
			}
		}
		first, second := txA, txB
		firstOps, secondOps := opsA, opsB
		if commitBFirst {
			first, second = txB, txA
			firstOps, secondOps = opsB, opsA
		}
		if err := first.Commit(); err != nil {
			t.Fatalf("first commit: %v", err)
		}
		// The second commit's base snapshot has moved: publish must
		// rebase its changes onto the first's result.
		if err := second.Commit(); err != nil {
			t.Fatalf("second commit (rebase): %v", err)
		}

		// Reference: the same per-group op sequences applied serially in
		// commit order under whole-table locks.
		for _, ops := range [][]func(tx *Tx) error{firstOps, secondOps} {
			tx := reference.BeginWrite("kv")
			for i, op := range ops {
				if err := op(tx); err != nil {
					tx.Rollback()
					t.Fatalf("reference op %d: %v", i, err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("reference commit: %v", err)
			}
		}
		got, want := dumpKV(t, sharded), dumpKV(t, reference)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded snapshot diverges from sequential reference:\n got %v\nwant %v", got, want)
		}
	})
}
