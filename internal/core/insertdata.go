package core

import (
	"fmt"
	"sort"
	"strings"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sqlgen"
	"ontoaccess/internal/update"
)

// stmtKind classifies planned statements for sorting.
type stmtKind int

const (
	kindInsert stmtKind = iota
	kindUpdate
	kindDelete
)

// plannedStmt is one generated SQL statement with the context needed
// for sorting (Algorithm 1 step five) and for rich error feedback.
type plannedStmt struct {
	sql     string
	table   string
	kind    stmtKind
	subject string
	// seq preserves generation order for stable sorting.
	seq int
}

// subjectGroup is Algorithm 1 step one's unit: all triples sharing a
// subject.
type subjectGroup struct {
	subject rdf.Term
	triples []rdf.Triple
}

// groupTriples implements Algorithm 1 step one, with deterministic
// group order (sorted by subject) and stable triple order inside each
// group.
func groupTriples(triples []rdf.Triple) []subjectGroup {
	byS := make(map[rdf.Term][]rdf.Triple)
	var order []rdf.Term
	for _, t := range triples {
		if _, seen := byS[t.S]; !seen {
			order = append(order, t.S)
		}
		byS[t.S] = append(byS[t.S], t)
	}
	sort.Slice(order, func(i, j int) bool { return rdf.CompareTerms(order[i], order[j]) < 0 })
	out := make([]subjectGroup, len(order))
	for i, s := range order {
		out[i] = subjectGroup{subject: s, triples: byS[s]}
	}
	return out
}

// partitionedGroup is a subject group split by mapping role.
type partitionedGroup struct {
	ent *subjectEntity
	// attrValues maps column names to converted values from data /
	// object-property triples, with the property that supplied each.
	attrValues map[string]rdb.Value
	attrProps  map[string]string
	// links are resolved link-table rows (property -> object keys).
	links []resolvedLink
	// hasType records an "s rdf:type Class" triple.
	hasType bool
}

type resolvedLink struct {
	lt       *r3m.LinkTableMap
	property string
	subjKey  rdb.Value
	objKey   rdb.Value
	objTable string
}

// partitionGroup implements Algorithm 1 steps two and three for one
// group: identify the table, resolve every triple against the
// mapping, convert objects to column values, and reject triples that
// do not fit the mapping (part of "check").
func (m *Mediator) partitionGroup(tx *rdb.Tx, g subjectGroup) (*partitionedGroup, error) {
	ent, err := m.resolveSubject(tx, g.subject)
	if err != nil {
		return nil, err
	}
	pg := &partitionedGroup{
		ent:        ent,
		attrValues: make(map[string]rdb.Value),
		attrProps:  make(map[string]string),
	}
	for _, tr := range g.triples {
		if !tr.P.IsIRI() {
			return nil, &feedback.Violation{
				Constraint: "Mapping", Subject: ent.uri, Value: tr.P.String(),
				Hint: "predicates must be IRIs",
			}
		}
		prop := tr.P.Value
		// rdf:type triples assert class membership.
		if prop == rdf.RDFType {
			if tr.O != ent.tm.Class {
				return nil, &feedback.Violation{
					Constraint: "Mapping", Subject: ent.uri, Property: prop, Value: tr.O.String(),
					Hint: fmt.Sprintf("subjects matching pattern %q belong to class %s", ent.tm.URIPattern, ent.tm.Class),
				}
			}
			pg.hasType = true
			continue
		}
		// Link-table property?
		if lt, ok := m.mapping.LinkTableForProperty(tr.P); ok {
			link, err := m.resolveLink(tx, lt, ent, tr)
			if err != nil {
				return nil, err
			}
			pg.links = append(pg.links, *link)
			continue
		}
		// Plain attribute of the subject's table.
		am, ok := ent.tm.AttributeForProperty(tr.P)
		if !ok {
			return nil, &feedback.Violation{
				Constraint: "Mapping", Subject: ent.uri, Property: prop,
				Hint: fmt.Sprintf("class %s has no attribute mapped to this property", ent.tm.Class),
			}
		}
		col, _ := ent.schema.Column(am.Name)
		val, err := m.tripleObjectToValue(tx, tr.O, am, col, ent.uri, prop)
		if err != nil {
			return nil, err
		}
		if prev, dup := pg.attrValues[am.Name]; dup && !rdb.Equal(prev, val) {
			return nil, &feedback.Violation{
				Constraint: "Mapping", Subject: ent.uri, Property: prop,
				Table: ent.tm.Name, Column: am.Name, Value: val.Text(),
				Hint: "the relational model stores one value per attribute; remove the conflicting triple",
			}
		}
		pg.attrValues[am.Name] = val
		pg.attrProps[am.Name] = prop
	}
	return pg, nil
}

// tripleObjectToValue converts a triple object by attribute flavour:
// foreign key, IRI-valued (valuePrefix), or data literal.
func (m *Mediator) tripleObjectToValue(tx *rdb.Tx, o rdf.Term, am *r3m.AttributeMap, col *rdb.Column, subject, property string) (rdb.Value, error) {
	if ref, isFK := am.ForeignKeyRef(); isFK {
		refTM, _ := m.mapping.ResolveTableRef(ref)
		return m.objectToKeyValue(tx, o, refTM, subject, property)
	}
	if am.IsObject {
		if !o.IsIRI() {
			return rdb.Null, &feedback.Violation{
				Constraint: "Mapping", Subject: subject, Property: property, Value: o.String(),
				Hint: "this property requires an IRI object",
			}
		}
		val := o.Value
		if am.ValuePrefix != "" {
			if !strings.HasPrefix(val, am.ValuePrefix) {
				return rdb.Null, &feedback.Violation{
					Constraint: "Mapping", Subject: subject, Property: property, Value: val,
					Hint: fmt.Sprintf("object IRIs for this property must start with %q", am.ValuePrefix),
				}
			}
			val = strings.TrimPrefix(val, am.ValuePrefix)
		}
		return rdb.String_(val), nil
	}
	return literalToValue(o, col, subject, property)
}

// resolveLink resolves a link-table triple into subject/object keys.
func (m *Mediator) resolveLink(tx *rdb.Tx, lt *r3m.LinkTableMap, ent *subjectEntity, tr rdf.Triple) (*resolvedLink, error) {
	subjRef, _ := lt.SubjectAttr.ForeignKeyRef()
	subjTM, _ := m.mapping.ResolveTableRef(subjRef)
	objRef, _ := lt.ObjectAttr.ForeignKeyRef()
	objTM, _ := m.mapping.ResolveTableRef(objRef)
	if subjTM == nil || objTM == nil {
		return nil, fmt.Errorf("core: link table %q has unresolved references", lt.Name)
	}
	if ent.tm.Name != subjTM.Name {
		return nil, &feedback.Violation{
			Constraint: "Mapping", Subject: ent.uri, Property: lt.Property.Value,
			Hint: fmt.Sprintf("subjects of this property must be instances of %s (table %q)", subjTM.Class, subjTM.Name),
		}
	}
	objKey, err := m.objectToKeyValue(tx, tr.O, objTM, ent.uri, lt.Property.Value)
	if err != nil {
		return nil, err
	}
	return &resolvedLink{
		lt: lt, property: lt.Property.Value,
		subjKey: ent.pkVal, objKey: objKey, objTable: objTM.Name,
	}, nil
}

// execInsertData implements Algorithm 1 for INSERT DATA.
func (m *Mediator) execInsertData(tx *rdb.Tx, op update.InsertData) (*OpResult, error) {
	res := &OpResult{Operation: op.Kind()}
	var stmts []plannedStmt
	seq := 0
	for _, g := range groupTriples(op.Triples) {
		pg, err := m.partitionGroup(tx, g)
		if err != nil {
			return res, err
		}
		ent := pg.ent
		// Existence probe decides INSERT vs UPDATE (Section 5.1).
		_, _, exists, err := tx.LookupPK(ent.tm.Name, []rdb.Value{ent.pkVal})
		if err != nil {
			return res, err
		}
		switch {
		case exists && len(pg.attrValues) > 0:
			var set []sqlgen.Assign
			for _, name := range sortedKeys(pg.attrValues) {
				set = append(set, sqlgen.Assign{Column: name, Value: pg.attrValues[name]})
			}
			stmts = append(stmts, plannedStmt{
				sql:   sqlgen.Update(ent.tm.Name, set, []sqlgen.Cond{{Column: ent.pkName, Value: ent.pkVal}}),
				table: ent.tm.Name, kind: kindUpdate, subject: ent.uri, seq: seq,
			})
			seq++
		case !exists:
			// Check step: every NotNull attribute without a default
			// must be supplied (paper Section 5.1 step three).
			if err := m.checkMandatoryAttributes(pg); err != nil {
				return res, err
			}
			cols := []string{ent.pkName}
			vals := []rdb.Value{ent.pkVal}
			// Column order follows the schema for readable SQL.
			for _, col := range ent.schema.Columns {
				if strings.EqualFold(col.Name, ent.pkName) {
					continue
				}
				if v, ok := pg.attrValues[col.Name]; ok {
					cols = append(cols, col.Name)
					vals = append(vals, v)
				}
			}
			stmts = append(stmts, plannedStmt{
				sql:   sqlgen.Insert(ent.tm.Name, cols, vals),
				table: ent.tm.Name, kind: kindInsert, subject: ent.uri, seq: seq,
			})
			seq++
		}
		// Link-table rows: idempotent inserts (RDF set semantics).
		for _, link := range pg.links {
			dup, err := m.linkRowExists(tx, link)
			if err != nil {
				return res, err
			}
			if dup {
				continue
			}
			stmts = append(stmts, plannedStmt{
				sql: sqlgen.Insert(link.lt.Name,
					[]string{link.lt.SubjectAttr.Name, link.lt.ObjectAttr.Name},
					[]rdb.Value{link.subjKey, link.objKey}),
				table: link.lt.Name, kind: kindInsert, subject: ent.uri, seq: seq,
			})
			seq++
		}
	}
	// Step five: sort by foreign-key dependencies; step six: execute.
	sorted, err := m.sortStatements(tx, stmts)
	if err != nil {
		return res, err
	}
	return res, m.executeStatements(tx, sorted, res)
}

// checkMandatoryAttributes rejects inserts that omit NotNull
// attributes without defaults — detected from the mapping before any
// SQL reaches the database, enabling property-level feedback.
func (m *Mediator) checkMandatoryAttributes(pg *partitionedGroup) error {
	am := firstMissingMandatory(pg.ent.tm, func(name string) bool {
		_, ok := pg.attrValues[name]
		return ok
	})
	if am == nil {
		return nil
	}
	return mandatoryViolation(pg.ent.tm.Name, pg.ent.uri, am)
}

// firstMissingMandatory returns the first NotNull attribute without a
// default (primary keys excluded) that the supplied set omits —
// shared by the uncompiled path and the compiled-plan executor.
func firstMissingMandatory(tm *r3m.TableMap, supplied func(string) bool) *r3m.AttributeMap {
	for _, am := range tm.Attributes {
		if !am.HasConstraint(r3m.ConstraintNotNull) || am.HasConstraint(r3m.ConstraintPrimaryKey) {
			continue
		}
		if _, hasDefault := am.DefaultValue(); hasDefault {
			continue
		}
		if !supplied(am.Name) {
			return am
		}
	}
	return nil
}

// mandatoryViolation is the shared feedback for a missing mandatory
// property.
func mandatoryViolation(table, subject string, am *r3m.AttributeMap) error {
	return &feedback.Violation{
		Constraint: "NotNull", Table: table, Column: am.Name,
		Subject: subject, Property: propertyOf(am),
		Hint: "the request must include a triple for this mandatory property",
	}
}

func propertyOf(am *r3m.AttributeMap) string {
	if am.Property.IsZero() {
		return ""
	}
	return am.Property.Value
}

// linkRowExists probes for an existing link row via SQL.
func (m *Mediator) linkRowExists(tx *rdb.Tx, link resolvedLink) (bool, error) {
	sql := sqlgen.Select(sqlgen.SelectSpec{
		Columns: []string{link.lt.SubjectAttr.Name},
		From:    link.lt.Name,
		Where: []sqlgen.WhereSpec{
			{Column: link.lt.SubjectAttr.Name, Value: link.subjKey},
			{Column: link.lt.ObjectAttr.Name, Value: link.objKey},
		},
		Limit:  -1,
		Offset: -1,
	})
	r, err := sqlexec.ExecSQL(tx, sql)
	if err != nil {
		return false, err
	}
	return len(r.Set.Rows) > 0, nil
}

// executeStatements runs planned statements through the SQL front-end
// inside the operation's transaction, enriching engine errors with
// subject context.
func (m *Mediator) executeStatements(tx *rdb.Tx, stmts []plannedStmt, res *OpResult) error {
	for _, st := range stmts {
		res.SQL = append(res.SQL, st.sql)
		r, err := sqlexec.ExecSQL(tx, st.sql)
		if err != nil {
			if ce, ok := asConstraintError(err); ok {
				return feedback.FromConstraintError(ce, st.subject, "")
			}
			return err
		}
		res.RowsAffected += r.RowsAffected
	}
	return nil
}

func asConstraintError(err error) (*rdb.ConstraintError, bool) {
	for e := err; e != nil; {
		if ce, ok := e.(*rdb.ConstraintError); ok {
			return ce, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		e = u.Unwrap()
	}
	return nil, false
}

func sortedKeys(mp map[string]rdb.Value) []string {
	out := make([]string, 0, len(mp))
	for k := range mp {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
