package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// forceParallel keeps the parallel replay machinery under test on
// single-CPU hosts, where ReplayParallel would otherwise take its
// GOMAXPROCS==1 sequential fallback.
func forceParallel(t *testing.T) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old == 1 {
		runtime.GOMAXPROCS(2)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// buildSegmented writes frames across several segments via Rotate and
// returns the payloads in append order.
func buildSegmented(t *testing.T, dir string, segments, perSeg int) [][]byte {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for s := 0; s < segments; s++ {
		if s > 0 {
			if _, err := l.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < perSeg; i++ {
			p := []byte(fmt.Sprintf("seg%d-frame%d-%s", s, i, strings.Repeat("x", i%17)))
			want = append(want, p)
			if err := l.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return want
}

// collectParallel replays via ReplayParallel into payload copies.
func collectParallel(t *testing.T, dir string) (payloads [][]byte, torn bool) {
	t.Helper()
	forceParallel(t)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	torn, err = l.ReplayParallel(func(p []byte) error {
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return payloads, torn
}

// TestReplayParallelMatchesSequential pins the parallel replay to the
// sequential one payload-for-payload, in order, across a multi-segment
// log (empty segments from lazy rotation included).
func TestReplayParallelMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	want := buildSegmented(t, dir, 5, 13)

	seq, seqTorn := collect(t, dir)
	par, parTorn := collectParallel(t, dir)
	if seqTorn || parTorn {
		t.Fatalf("clean log reported torn: seq=%v par=%v", seqTorn, parTorn)
	}
	if len(par) != len(want) || len(seq) != len(want) {
		t.Fatalf("replayed seq=%d par=%d frames, want %d", len(seq), len(par), len(want))
	}
	for i := range want {
		if !bytes.Equal(par[i], want[i]) {
			t.Fatalf("parallel frame %d = %q, want %q", i, par[i], want[i])
		}
		if !bytes.Equal(par[i], seq[i]) {
			t.Fatalf("parallel frame %d = %q, sequential %q", i, par[i], seq[i])
		}
	}
}

// TestReplayParallelSingleSegment exercises the sequential fallback.
func TestReplayParallelSingleSegment(t *testing.T) {
	dir := t.TempDir()
	want := buildSegmented(t, dir, 1, 7)
	got, torn := collectParallel(t, dir)
	if torn || len(got) != len(want) {
		t.Fatalf("got %d frames torn=%v, want %d clean", len(got), torn, len(want))
	}
}

// TestReplayParallelTornFinalTail checks that the torn-tail repair
// contract carries over: the newest segment's torn frame is truncated
// away and reported, and the log accepts appends afterwards.
func TestReplayParallelTornFinalTail(t *testing.T) {
	forceParallel(t)
	dir := t.TempDir()
	buildSegmented(t, dir, 3, 4)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := l.segs[len(l.segs)-1]
	l.Close()
	path := filepath.Join(dir, segName(last))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	torn, err := l2.ReplayParallel(func([]byte) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Fatal("torn final tail not reported")
	}
	if n != 3*4-1 {
		t.Fatalf("replayed %d frames, want %d", n, 3*4-1)
	}
	if err := l2.Append([]byte("after-repair")); err != nil {
		t.Fatalf("append after parallel replay: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn := collect(t, dir)
	if torn || len(got) != 3*4 || string(got[len(got)-1]) != "after-repair" {
		t.Fatalf("post-repair replay = %d frames torn=%v", len(got), torn)
	}
}

// TestReplayParallelTornSealedSegmentIsHardError mirrors the
// sequential contract: damage in a sealed (non-final) segment aborts
// recovery instead of silently dropping acknowledged records.
func TestReplayParallelTornSealedSegmentIsHardError(t *testing.T) {
	forceParallel(t)
	dir := t.TempDir()
	buildSegmented(t, dir, 3, 4)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := l.segs[0]
	l.Close()
	path := filepath.Join(dir, segName(sealed))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the sealed segment's last payload byte
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, err = l2.ReplayParallel(func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "truncated mid-log") {
		t.Fatalf("sealed corruption error = %v, want truncated mid-log", err)
	}
}

// TestReplayParallelCallbackErrorAborts: fn's first error surfaces and
// no later payload is applied, exactly as in the sequential replay.
func TestReplayParallelCallbackErrorAborts(t *testing.T) {
	forceParallel(t)
	dir := t.TempDir()
	want := buildSegmented(t, dir, 4, 3)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stopAt := 5
	var seen int
	boom := fmt.Errorf("boom")
	_, err = l.ReplayParallel(func(p []byte) error {
		if seen == stopAt {
			return boom
		}
		if !bytes.Equal(p, want[seen]) {
			t.Fatalf("frame %d = %q, want %q", seen, p, want[seen])
		}
		seen++
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("callback error = %v, want boom", err)
	}
	if seen != stopAt {
		t.Fatalf("applied %d frames before abort, want %d", seen, stopAt)
	}
}
