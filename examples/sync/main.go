// Sync: the bijective-mapping property in action. The same
// deterministic SPARQL/Update stream is applied to the OntoAccess
// mediator (relational storage) and to the native in-memory triple
// store; afterwards the mediator's exported RDF view must equal the
// native graph. This is the property the paper's related-work section
// derives from the view-update literature: R3M mappings are
// restricted so updates propagate unambiguously in both directions.
package main

import (
	"fmt"
	"log"

	"ontoaccess/internal/core"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
	"ontoaccess/internal/update"
	"ontoaccess/internal/workload"
)

func main() {
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	native := triplestore.New()

	g := workload.NewGenerator(2026)
	stream := append(g.SetupRequests(), g.Stream(200, 1)...)
	kinds := workload.CountRequestKinds(stream)
	fmt.Printf("replaying %d requests on both systems (%v)\n", len(stream), kinds)

	for i, src := range stream {
		if _, err := m.ExecuteString(src); err != nil {
			log.Fatalf("mediator rejected request %d: %v", i, err)
		}
		req, err := update.Parse(src)
		if err != nil {
			log.Fatalf("parse %d: %v", i, err)
		}
		if _, err := update.Apply(native, req); err != nil {
			log.Fatalf("native store rejected request %d: %v", i, err)
		}
	}

	exported, err := m.Export()
	if err != nil {
		log.Fatal(err)
	}
	nativeGraph := native.Graph()

	// The mediated view derives rdf:type triples from the mapping for
	// free; align the native side before comparing.
	exported.Each(func(t rdf.Triple) bool {
		if t.P == rdf.IRI(rdf.RDFType) {
			nativeGraph.Add(t)
		}
		return true
	})

	fmt.Printf("mediator rows: %d, exported triples: %d, native triples: %d\n",
		m.DB().TotalRows(), exported.Len(), nativeGraph.Len())

	if exported.Equal(nativeGraph) {
		fmt.Println("OK: the relational RDF view and the native triple store agree triple for triple.")
		return
	}
	fmt.Println("DIVERGENCE!")
	if d := exported.Diff(nativeGraph); len(d) > 0 {
		fmt.Println("only in mediated view:")
		for _, t := range d {
			fmt.Println("  ", t)
		}
	}
	if d := nativeGraph.Diff(exported); len(d) > 0 {
		fmt.Println("only in native store:")
		for _, t := range d {
			fmt.Println("  ", t)
		}
	}
	log.Fatal("views diverged")
}
