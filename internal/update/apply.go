package update

import (
	"fmt"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
)

// GraphStore is the mutable triple-store interface the native
// applicator operates on. The triplestore package's Store satisfies
// it; it embeds the read-only sparql.Matcher.
type GraphStore interface {
	sparql.Matcher
	Add(rdf.Triple) bool
	Remove(rdf.Triple) bool
	Clear()
}

// Stats reports what an Apply call changed.
type Stats struct {
	Inserted int // triples newly added
	Deleted  int // triples actually removed
	Bindings int // MODIFY WHERE solutions processed
}

// Apply executes a parsed request natively against a triple store,
// with the standard SPARQL/Update semantics: operations in order; for
// MODIFY, the WHERE pattern is evaluated first, then all deletions
// happen before all insertions. This is the reference behaviour the
// OntoAccess mediator must agree with on the exported RDF view.
func Apply(store GraphStore, req *Request) (Stats, error) {
	var st Stats
	for _, op := range req.Ops {
		s, err := ApplyOp(store, op)
		if err != nil {
			return st, err
		}
		st.Inserted += s.Inserted
		st.Deleted += s.Deleted
		st.Bindings += s.Bindings
	}
	return st, nil
}

// ApplyOp executes a single operation natively.
func ApplyOp(store GraphStore, op Operation) (Stats, error) {
	var st Stats
	switch o := op.(type) {
	case InsertData:
		for _, t := range o.Triples {
			if store.Add(t) {
				st.Inserted++
			}
		}
	case DeleteData:
		for _, t := range o.Triples {
			if store.Remove(t) {
				st.Deleted++
			}
		}
	case Modify:
		q := &sparql.Query{Form: sparql.FormSelect, Star: true, Where: o.Where, Limit: -1, Offset: -1}
		sols, err := sparql.Eval(store, q)
		if err != nil {
			return st, fmt.Errorf("update: MODIFY WHERE evaluation: %w", err)
		}
		st.Bindings = len(sols)
		var dels, inss []rdf.Triple
		for _, b := range sols {
			for _, tp := range o.Delete {
				if t, ok := tp.Instantiate(b); ok {
					dels = append(dels, t)
				}
			}
			for _, tp := range o.Insert {
				if t, ok := tp.Instantiate(b); ok {
					inss = append(inss, t)
				}
			}
		}
		for _, t := range dels {
			if store.Remove(t) {
				st.Deleted++
			}
		}
		for _, t := range inss {
			if store.Add(t) {
				st.Inserted++
			}
		}
	case Clear:
		store.Clear()
	default:
		return st, fmt.Errorf("update: unsupported operation %T", op)
	}
	return st, nil
}
