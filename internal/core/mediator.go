// Package core implements the OntoAccess translation engine — the
// paper's primary contribution. It mediates between SPARQL/Update
// requests expressed against a domain ontology and SQL DML executed
// on a relational database, guided by an R3M mapping:
//
//   - Algorithm 1 (Section 5.1) translates the triples of INSERT DATA
//     and DELETE DATA operations to SQL: group triples by subject,
//     identify the target table through the subject URI, check the
//     request against the recorded integrity constraints, generate
//     SQL, sort the statements along foreign-key dependencies, and
//     execute them in one transaction.
//   - INSERT DATA becomes INSERT or UPDATE depending on whether the
//     entity already exists; DELETE DATA becomes UPDATE ... = NULL or
//     a row DELETE depending on whether the operation covers all
//     remaining data of the entity.
//   - Algorithm 2 (Section 5.2) decomposes MODIFY into a SELECT over
//     the WHERE pattern plus per-binding DELETE DATA / INSERT DATA
//     operations, with the redundant-delete optimization.
//
// The package also provides read access: SPARQL queries are evaluated
// over a virtual RDF view of the database (SQL-backed pattern
// matching), and Export materializes the whole view for comparisons
// against the native triple-store baseline.
package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/update"
)

// Options tune translation behaviour; the zero value is the paper's
// behaviour plus the compiled-plan pipeline. The ablation flags exist
// for the B-series benchmarks (B2, B3, B7, B8).
type Options struct {
	// DisableSort skips Algorithm 1 step five (foreign-key sorting of
	// generated statements). With immediate constraint checking this
	// makes multi-table inserts fail, as Section 5.1 predicts.
	DisableSort bool
	// DisableModifyOptimization keeps DELETE DATA operations whose
	// triples are superseded by an INSERT of the same subject and
	// property (Section 5.2's optimization turned off).
	DisableModifyOptimization bool
	// DisablePlanCache turns off the compiled-plan pipeline: every
	// request is fully re-translated per call and executed under the
	// whole-database write lock, like the paper's prototype.
	DisablePlanCache bool
	// PlanCacheSize bounds the number of cached plans (shapes); 0
	// means DefaultPlanCacheSize.
	PlanCacheSize int
	// DisableWriteBatching turns off the group-commit scheduler:
	// every compiled plan commits in its own transaction instead of
	// being coalesced with concurrent operations that share its lock
	// signature (see batch.go). The B11 benchmark measures the
	// difference.
	DisableWriteBatching bool
}

// Default cache sizes for the compiled-plan pipeline.
const (
	DefaultPlanCacheSize  = 512
	defaultParseCacheSize = 256
)

// Mediator translates and executes SPARQL/Update against a mapped
// relational database. It is safe for concurrent use: compiled plans
// execute under per-table locks (writers on disjoint tables run in
// parallel), queries run under shared locks, and everything else
// serializes on the whole-database lock.
type Mediator struct {
	db      *rdb.Database
	mapping *r3m.Mapping
	opts    Options

	// plans caches compiled UpdatePlans, mplans compiled ModifyPlans
	// and qplans compiled QueryPlans, keyed on request shape; parses
	// memoizes raw update strings and qparses raw query strings to
	// parsed-and-bound requests. topoPos ranks tables parents-first for
	// plan-time statement sorting; nil disables planning (cyclic
	// schemas).
	plans   *lruCache[*UpdatePlan]
	mplans  *lruCache[*ModifyPlan]
	qplans  *lruCache[*QueryPlan]
	parses  *lruCache[*cachedRequest]
	qparses *lruCache[*cachedQuery]
	topoPos map[string]int

	// sched is the group-commit write scheduler; nil when
	// Options.DisableWriteBatching is set.
	sched *writeScheduler

	// queryCompiled / queryFallback count Query calls served by a
	// bound plan vs the uncompiled fallback (see QueryExecStats).
	queryCompiled atomic.Uint64
	queryFallback atomic.Uint64

	// keyedFallbacks counts keyed (shard-locked) executions that
	// reached outside their declared key shards at run time and were
	// retried under whole-table locks.
	keyedFallbacks atomic.Uint64
}

// New builds a mediator and cross-validates the mapping against the
// database schema: every mapped table, attribute and foreign key must
// exist and agree.
func New(db *rdb.Database, mapping *r3m.Mapping, opts Options) (*Mediator, error) {
	if err := mapping.Validate(); err != nil {
		return nil, err
	}
	m := &Mediator{db: db, mapping: mapping, opts: opts}
	if err := m.checkSchemaAlignment(); err != nil {
		return nil, err
	}
	size := opts.PlanCacheSize
	if size <= 0 {
		size = DefaultPlanCacheSize
	}
	m.plans = newLRU[*UpdatePlan](size)
	m.mplans = newLRU[*ModifyPlan](size)
	m.qplans = newLRU[*QueryPlan](size)
	m.parses = newLRU[*cachedRequest](defaultParseCacheSize)
	m.qparses = newLRU[*cachedQuery](defaultParseCacheSize)
	if !opts.DisableWriteBatching {
		m.sched = newWriteScheduler(db)
	}
	if order, err := db.TopologicalTableOrder(); err == nil {
		m.topoPos = make(map[string]int, len(order))
		for i, name := range order {
			m.topoPos[lowerASCII(name)] = i
		}
	}
	return m, nil
}

// DB exposes the backing database (read-mostly helpers and tooling).
func (m *Mediator) DB() *rdb.Database { return m.db }

// Mapping exposes the R3M mapping.
func (m *Mediator) Mapping() *r3m.Mapping { return m.mapping }

// DurabilityStats reports the backing database's durability counters
// (WAL size, checkpoints, fsyncs); zero-valued with Enabled=false for
// a memory-only database. The /healthz endpoint renders these.
func (m *Mediator) DurabilityStats() rdb.DurabilityStats { return m.db.DurabilityStats() }

// Close flushes the backing database's durability state (final
// checkpoint + WAL close) and must be called on shutdown of a durable
// mediator; it is a no-op for a memory-only one. The mediator must
// not be used afterwards.
func (m *Mediator) Close() error { return m.db.Close() }

// viewOn runs fn inside a lock-free read-only transaction pinned to
// the resolved read target: Database.View for the live head, a
// historical or branch-head snapshot otherwise. Every read entry point
// resolves its target exactly once, here, so a request never observes
// two different versions.
func (m *Mediator) viewOn(target rdb.ReadTarget, fn func(tx *rdb.Tx) error) error {
	if target.IsHead() {
		return m.db.View(fn)
	}
	s, err := m.db.Resolve(target)
	if err != nil {
		return err
	}
	return s.View(fn)
}

// ExecuteStringOn executes a SPARQL/Update request against a write
// target. The zero target is the main head (identical to
// ExecuteString, including the compiled-plan pipeline and the
// group-commit scheduler). A branch target routes every operation
// through the full translation path inside a branch-head transaction.
// An AS OF target is read-only and fails with *rdb.NonHeadWriteError
// before any operation runs.
func (m *Mediator) ExecuteStringOn(src string, target rdb.ReadTarget) (*Result, error) {
	if target.IsHead() {
		return m.ExecuteString(src)
	}
	if target.AsOf != 0 {
		err := &rdb.NonHeadWriteError{Target: target.String()}
		return &Result{Report: feedback.Failure("request", err, nil)}, err
	}
	req, err := update.Parse(src)
	if err != nil {
		return &Result{Report: feedback.Failure("parse", err, nil)}, err
	}
	res := &Result{}
	for _, op := range req.Ops {
		opRes, err := m.executeBranchOp(target.Branch, op)
		if opRes != nil {
			res.Ops = append(res.Ops, *opRes)
		}
		if err != nil {
			res.Report = feedback.Failure(op.Kind(), err, res.SQL())
			return res, err
		}
	}
	res.Report = feedback.Success("request", res.SQL())
	return res, nil
}

// executeBranchOp runs one operation in its own transaction against a
// branch head. Branch writes always take the uncompiled translation
// path: compiled plans and the group-commit scheduler are bound to the
// main head's lock domain, while a branch transaction serializes on
// the branch ref itself.
func (m *Mediator) executeBranchOp(branch string, op update.Operation) (*OpResult, error) {
	tx, err := m.db.BeginBranch(branch)
	if err != nil {
		return nil, err
	}
	defer tx.Rollback()
	opRes, err := m.executeOpInTx(tx, op)
	if err != nil {
		return opRes, err
	}
	if err := tx.Commit(); err != nil {
		return opRes, err
	}
	return opRes, nil
}

// checkSchemaAlignment verifies the mapping matches the live schema.
func (m *Mediator) checkSchemaAlignment() error {
	for _, tm := range m.mapping.Tables {
		schema, ok := m.db.Schema(tm.Name)
		if !ok {
			return fmt.Errorf("core: mapping references missing table %q", tm.Name)
		}
		for _, am := range tm.Attributes {
			col, ok := schema.Column(am.Name)
			if !ok {
				return fmt.Errorf("core: mapping references missing attribute %s.%s", tm.Name, am.Name)
			}
			if am.HasConstraint(r3m.ConstraintPrimaryKey) && !schema.IsPrimaryKey(am.Name) {
				return fmt.Errorf("core: mapping marks %s.%s as primary key but the schema does not", tm.Name, am.Name)
			}
			if ref, ok := am.ForeignKeyRef(); ok {
				fk, has := schema.ForeignKeyOn(am.Name)
				if !has {
					return fmt.Errorf("core: mapping marks %s.%s as foreign key but the schema does not", tm.Name, am.Name)
				}
				refTM, found := m.mapping.ResolveTableRef(ref)
				if !found || !strings.EqualFold(refTM.Name, fk.RefTable) {
					return fmt.Errorf("core: foreign key %s.%s references %q in the mapping but %q in the schema",
						tm.Name, am.Name, ref, fk.RefTable)
				}
			}
			_ = col
		}
		if len(schema.PrimaryKey) != 1 {
			return fmt.Errorf("core: mapped table %q must have a single-column primary key", tm.Name)
		}
	}
	for _, lt := range m.mapping.LinkTables {
		schema, ok := m.db.Schema(lt.Name)
		if !ok {
			return fmt.Errorf("core: mapping references missing link table %q", lt.Name)
		}
		for _, am := range []*r3m.AttributeMap{lt.SubjectAttr, lt.ObjectAttr} {
			if _, ok := schema.Column(am.Name); !ok {
				return fmt.Errorf("core: link table %q lacks attribute %q", lt.Name, am.Name)
			}
		}
	}
	return nil
}

// OpResult describes the execution of one SPARQL/Update operation.
type OpResult struct {
	// Operation is the operation kind, e.g. "INSERT DATA".
	Operation string
	// SQL lists the executed statements in execution order. For
	// MODIFY it includes the translated SELECT and the per-binding
	// DML.
	SQL []string
	// RowsAffected sums the rows touched by the DML statements.
	RowsAffected int
	// Bindings is the number of WHERE solutions (MODIFY only).
	Bindings int
}

// Result describes the execution of a whole request.
type Result struct {
	Ops []OpResult
	// Report carries the success/failure feedback for the request.
	Report *feedback.Report
}

// SQL returns all executed statements across operations.
func (r *Result) SQL() []string {
	var out []string
	for _, op := range r.Ops {
		out = append(out, op.SQL...)
	}
	return out
}

// ExecuteString parses and executes a SPARQL/Update request. On
// constraint violations the returned error unwraps to
// *feedback.Violation and Result.Report carries the rich feedback;
// the failing operation's transaction is rolled back.
//
// Repeated request strings skip re-parsing through an LRU memo, and
// repeated request shapes skip re-translation through the plan cache
// (see UpdatePlan), unless Options.DisablePlanCache is set.
func (m *Mediator) ExecuteString(src string) (*Result, error) {
	if !m.opts.DisablePlanCache {
		if cr, ok := m.parses.get(src); ok {
			return m.executeCachedRequest(cr)
		}
	}
	req, err := update.Parse(src)
	if err != nil {
		return &Result{Report: feedback.Failure("parse", err, nil)}, err
	}
	if !m.opts.DisablePlanCache {
		cr := m.buildCachedRequest(req)
		m.parses.put(src, cr)
		return m.executeCachedRequest(cr)
	}
	return m.ExecuteRequest(req)
}

// executeCachedRequest executes a memoized request, using each
// operation's bound plan when one exists.
func (m *Mediator) executeCachedRequest(cr *cachedRequest) (*Result, error) {
	res := &Result{}
	for i, op := range cr.req.Ops {
		var opRes *OpResult
		var err error
		switch u := cr.planned[i]; {
		case u != nil && u.mplan != nil:
			var handled bool
			opRes, err, handled = m.runPlannedModify(u.mplan, u.mbound)
			if !handled {
				// The bound execution went stale for the current data;
				// the uncompiled whole-database path is authoritative.
				opRes, err = m.executeUnplannedOp(op)
			}
		case u != nil:
			opRes, err = m.runPlanned(u.plan, u.bound)
		default:
			// Known unplannable (or invalid) at memoization time: go
			// straight to the uncompiled path instead of re-probing
			// the plan cache.
			opRes, err = m.executeUnplannedOp(op)
		}
		if opRes != nil {
			res.Ops = append(res.Ops, *opRes)
		}
		if err != nil {
			res.Report = feedback.Failure(op.Kind(), err, res.SQL())
			return res, err
		}
	}
	res.Report = feedback.Success("request", res.SQL())
	return res, nil
}

// ExecuteRequest executes a parsed request, operation by operation.
// Each operation runs in its own transaction (the paper's atomicity
// unit); the request stops at the first failing operation.
func (m *Mediator) ExecuteRequest(req *update.Request) (*Result, error) {
	res := &Result{}
	for _, op := range req.Ops {
		opRes, err := m.ExecuteOp(op)
		if opRes != nil {
			res.Ops = append(res.Ops, *opRes)
		}
		if err != nil {
			res.Report = feedback.Failure(op.Kind(), err, res.SQL())
			return res, err
		}
	}
	res.Report = feedback.Success("request", res.SQL())
	return res, nil
}

// ExecuteOp executes one operation inside a fresh transaction,
// committing on success and rolling back on error. Plannable data
// operations go through the compiled-plan pipeline, which locks only
// the plan's tables; everything else serializes on the whole-database
// lock.
func (m *Mediator) ExecuteOp(op update.Operation) (*OpResult, error) {
	if !m.opts.DisablePlanCache && m.plans != nil {
		if opRes, err, handled := m.tryPlanned(op); handled {
			return opRes, err
		}
	}
	return m.executeUnplannedOp(op)
}

// executeUnplannedOp runs one operation through the full translation
// path under the whole-database write lock.
func (m *Mediator) executeUnplannedOp(op update.Operation) (*OpResult, error) {
	tx := m.db.Begin()
	defer tx.Rollback()
	opRes, err := m.executeOpInTx(tx, op)
	if err != nil {
		return opRes, err
	}
	if err := tx.Commit(); err != nil {
		return opRes, err
	}
	return opRes, nil
}

func (m *Mediator) executeOpInTx(tx *rdb.Tx, op update.Operation) (*OpResult, error) {
	switch o := op.(type) {
	case update.InsertData:
		return m.execInsertData(tx, o)
	case update.DeleteData:
		return m.execDeleteData(tx, o)
	case update.Modify:
		return m.execModify(tx, o)
	case update.Clear:
		return m.execClear(tx)
	default:
		return nil, fmt.Errorf("core: unsupported operation %T", op)
	}
}

// execClear empties every mapped table, children before parents.
func (m *Mediator) execClear(tx *rdb.Tx) (*OpResult, error) {
	res := &OpResult{Operation: "CLEAR"}
	order, err := tx.TopologicalTableOrder()
	if err != nil {
		return res, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		if !m.tableMapped(name) {
			continue
		}
		var ids []int64
		tx.Scan(name, func(id int64, _ []rdb.Value) bool {
			ids = append(ids, id)
			return true
		})
		for _, id := range ids {
			if err := tx.DeleteByID(name, id); err != nil {
				return res, err
			}
			res.RowsAffected++
		}
		res.SQL = append(res.SQL, "DELETE FROM "+name+";")
	}
	return res, nil
}

func (m *Mediator) tableMapped(name string) bool {
	if _, ok := m.mapping.TableByName(name); ok {
		return true
	}
	_, ok := m.mapping.LinkTableByName(name)
	return ok
}
