package workload

import (
	"fmt"
	"reflect"
	"strconv"
	"testing"

	"ontoaccess/internal/core"
	"ontoaccess/internal/sparql"
)

// The metamorphic suite checks read-path invariants that relate
// *different* queries over the *same* data — properties that hold for
// any correct engine, so they need no per-query oracle. Each invariant
// is asserted in both execution modes (compiled plans and the
// uncompiled text/virtual path), and the two modes must also agree
// with each other, which pins the rich lowering (UNION, OPTIONAL,
// aggregates, FILTER disjunctions) from a second, independent angle to
// the differential harness.

// metamorphicMediators returns both execution modes loaded with the
// same seeded differential state.
func metamorphicMediators(t *testing.T) map[string]*core.Mediator {
	t.Helper()
	modes := map[string]*core.Mediator{}
	for name, opts := range map[string]core.Options{
		"compiled":   {},
		"uncompiled": {DisablePlanCache: true},
	} {
		m, err := NewMediator(opts)
		if err != nil {
			t.Fatal(err)
		}
		ds := NewDifferentialStream(77, 60)
		for _, req := range append(append([]string{}, ds.Setup...), ds.Requests...) {
			m.ExecuteString(req) // invalid requests are rejected identically in both modes
		}
		modes[name] = m
	}
	return modes
}

func querySolutions(t *testing.T, m *core.Mediator, q string) sparql.Solutions {
	t.Helper()
	res, err := m.Query(q)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, q)
	}
	return res.Solutions
}

// TestMetamorphicUnionVsDisjunction: a UNION of two branches filtered
// by disjoint ranges must return the same multiset as one branch
// filtered by the OR of the ranges.
func TestMetamorphicUnionVsDisjunction(t *testing.T) {
	union := Prologue + `
SELECT ?x ?l WHERE { { ?x foaf:family_name ?l . FILTER (?l < "Diff3") } UNION { ?x foaf:family_name ?l . FILTER (?l >= "Diff6") } }`
	or := Prologue + `
SELECT ?x ?l WHERE { ?x foaf:family_name ?l . FILTER (?l < "Diff3" || ?l >= "Diff6") }`
	var prev []string
	for name, m := range metamorphicMediators(t) {
		u := sortedSolutions(querySolutions(t, m, union))
		o := sortedSolutions(querySolutions(t, m, or))
		if !reflect.DeepEqual(u, o) {
			t.Errorf("%s: UNION of disjoint ranges != OR'd filter:\n%v\nvs\n%v", name, u, o)
		}
		if prev != nil && !reflect.DeepEqual(u, prev) {
			t.Errorf("%s: modes disagree on the union result", name)
		}
		prev = u
	}
}

// TestMetamorphicOptionalAlwaysFalse: an OPTIONAL group that can never
// match (a foreign-key hop pinned to a name no team has) must leave
// the solution multiset of the bare BGP exactly unchanged, since the
// projection never mentions the optional variables.
func TestMetamorphicOptionalAlwaysFalse(t *testing.T) {
	bare := Prologue + `
SELECT ?a ?l WHERE { ?a foaf:family_name ?l . }`
	opt := Prologue + `
SELECT ?a ?l WHERE { ?a foaf:family_name ?l . OPTIONAL { ?a ont:team ?t . ?t foaf:name "NoSuchTeam" . } }`
	for name, m := range metamorphicMediators(t) {
		b := querySolutions(t, m, bare)
		o := querySolutions(t, m, opt)
		if !reflect.DeepEqual(sortedSolutions(b), sortedSolutions(o)) {
			t.Errorf("%s: always-false OPTIONAL changed the solutions:\n%v\nvs\n%v", name, b, o)
		}
	}
}

// TestMetamorphicCountStar: COUNT(*) must equal the number of
// solutions the unaggregated query returns.
func TestMetamorphicCountStar(t *testing.T) {
	for _, shape := range []struct{ plain, count string }{
		{`SELECT ?x WHERE { ?x rdf:type foaf:Person . }`,
			`SELECT (COUNT(*) AS ?n) WHERE { ?x rdf:type foaf:Person . }`},
		{`SELECT ?p WHERE { ?p ont:pubYear ?y . }`,
			`SELECT (COUNT(*) AS ?n) WHERE { ?p ont:pubYear ?y . }`},
	} {
		for name, m := range metamorphicMediators(t) {
			plain := querySolutions(t, m, Prologue+shape.plain)
			count := querySolutions(t, m, Prologue+shape.count)
			if len(count) != 1 {
				t.Fatalf("%s: COUNT(*) returned %d solutions", name, len(count))
			}
			n, err := strconv.Atoi(count[0]["n"].Value)
			if err != nil {
				t.Fatalf("%s: COUNT(*) is not an integer: %v", name, count[0])
			}
			if n != len(plain) {
				t.Errorf("%s: COUNT(*) = %d but the query has %d solutions (%s)",
					name, n, len(plain), shape.plain)
			}
		}
	}
}

// TestMetamorphicLimitPrefix: LIMIT n over a tie-free ORDER BY must be
// exactly the n-prefix of the unlimited ordered result, for every n up
// to past the result size.
func TestMetamorphicLimitPrefix(t *testing.T) {
	unlimited := Prologue + `
SELECT ?a ?l WHERE { ?a foaf:family_name ?l . } ORDER BY ?l`
	seq := func(s sparql.Solutions) []string {
		out := make([]string, len(s))
		for i, b := range s {
			out[i] = b.String()
		}
		return out
	}
	for name, m := range metamorphicMediators(t) {
		full := querySolutions(t, m, unlimited)
		if len(full) == 0 {
			t.Fatalf("%s: the ordered query returned nothing to window", name)
		}
		for _, n := range []int{0, 1, 3, len(full), len(full) + 2} {
			limited := querySolutions(t, m, fmt.Sprintf("%s LIMIT %d", unlimited, n))
			want := full
			if n < len(full) {
				want = full[:n]
			}
			if !reflect.DeepEqual(seq(limited), seq(want)) {
				t.Errorf("%s: LIMIT %d is not the prefix:\n%v\nvs\n%v", name, n, limited, want)
			}
		}
	}
}
