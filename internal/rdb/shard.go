package rdb

import "math/bits"

// Key-range sharding of the per-table lock domain (not of the data).
//
// A table's committed state stays one immutable tableVersion; what is
// partitioned is the *write lock*: every table carries shardCount
// shard RWMutexes next to its table-level RWMutex, and a write
// transaction that declares the primary keys it will touch
// (BeginWriteShards) acquires the table lock *shared* plus the
// declared shards *exclusive*. Two writers on disjoint key ranges of
// the same table therefore run in parallel; a writer without
// statically known keys falls back to the table-level exclusive lock,
// which conflicts with every shard holder. Shared readers of a table
// (foreign-key neighbourhood, declared read tables) take the table
// lock shared plus *all* shard locks shared, so they still conflict
// with every sharded writer — the integrity checks they perform must
// not race row mutations in any key range.
//
// A key's shard is the top shardBits of its primary-key index hash
// (pmHash), i.e. the top-level branch of the pk-index trie the key
// lives under, so the lock partition follows the natural split of the
// persistent radix structures. The shard count is fixed per database
// at Open time (Options.ShardCount, a power of two up to MaxShardCount,
// default DefaultShardCount).
//
// Lock order stays globally sorted and deadlock-free: tables in
// lexicographic key order (as before), and within a table the table
// lock before its shard locks in ascending shard order.

const (
	// DefaultShardCount is the per-table lock-shard count when
	// Options.ShardCount is zero.
	DefaultShardCount = 16
	// MaxShardCount bounds Options.ShardCount: a shard set is one
	// uint64 bitmask.
	MaxShardCount = 64
)

// ShardSet is a bitmask of shard indexes. The zero value means "no
// declared shards" — i.e. the whole-table lock.
type ShardSet uint64

// With returns the set with shard i added.
func (s ShardSet) With(i int) ShardSet { return s | 1<<uint(i) }

// Has reports whether shard i is in the set.
func (s ShardSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Count returns the number of shards in the set.
func (s ShardSet) Count() int { return bits.OnesCount64(uint64(s)) }

// shardOf maps an encoded primary key to its lock shard: the top
// shardBits of the pk-index hash. Zero bits (a single shard) routes
// every key to shard 0.
func shardOf(encKey string, shardBits uint) int {
	if shardBits == 0 {
		return 0
	}
	return int(pmHash(encKey) >> (pmHashBits - shardBits))
}

// shardOfKey maps an encoded primary key to its lock shard under this
// database's configured shard domain.
func (db *Database) shardOfKey(encKey string) int { return shardOf(encKey, db.shardBits) }

// NumShards returns the per-table lock-shard count this database was
// configured with (Options.ShardCount; DefaultShardCount when unset).
func (db *Database) NumShards() int { return db.numShards }

// TableShards declares one write table of a keyed transaction together
// with the shards its primary keys hash to. A zero Shards mask means
// the keys are not statically known: the table is locked whole.
type TableShards struct {
	Table  string
	Shards ShardSet
}

// ShardOfPK returns the lock shard the given primary-key value hashes
// to for the named table, coercing the value to the key column's
// storage type first (so lexically equivalent keys route identically).
// It reports false for unknown tables and composite primary keys.
func (db *Database) ShardOfPK(table string, pk Value) (int, bool) {
	v, ok := db.snapshot().table(table)
	if !ok || len(v.pkCols) != 1 {
		return 0, false
	}
	cv := coerce(pk, &v.schema.Columns[v.pkCols[0]])
	return db.shardOfKey(encodeKey([]Value{cv})), true
}

// ShardableTable reports whether keyed (sharded) write transactions
// are sound for the named table: it must have a single-column primary
// key, no non-key UNIQUE columns (their duplicate checks read the
// whole table), and no self-referencing foreign key (its existence and
// RESTRICT checks read the table being written). Callers use it to
// decide between BeginWriteShards and a whole-table lock; the
// transaction layer enforces the same rules dynamically either way.
func (db *Database) ShardableTable(table string) bool {
	v, ok := db.snapshot().table(table)
	if !ok || len(v.pkCols) != 1 {
		return false
	}
	s := v.schema
	for i := range s.Columns {
		if s.Columns[i].Unique && i != v.pkCols[0] {
			return false
		}
	}
	for _, fk := range s.ForeignKeys {
		if lowerName(fk.RefTable) == lowerName(s.Name) {
			return false
		}
	}
	return true
}
