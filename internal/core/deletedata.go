package core

import (
	"strings"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/sqlgen"
	"ontoaccess/internal/update"
)

// execDeleteData implements Algorithm 1 for DELETE DATA (Section
// 5.1): per subject group the affected tuple is retrieved and
// analyzed; if the request covers only a subset of the entity's
// remaining data, the translation is an UPDATE setting the mentioned
// attributes to NULL (with the requested values as conditions, as in
// Listing 18); only if it covers all remaining non-NULL data does it
// become a row DELETE.
func (m *Mediator) execDeleteData(tx *rdb.Tx, op update.DeleteData) (*OpResult, error) {
	res := &OpResult{Operation: op.Kind()}
	var stmts []plannedStmt
	seq := 0
	for _, g := range groupTriples(op.Triples) {
		pg, err := m.partitionGroup(tx, g)
		if err != nil {
			return res, err
		}
		ent := pg.ent
		_, row, exists, err := tx.LookupPK(ent.tm.Name, []rdb.Value{ent.pkVal})
		if err != nil {
			return res, err
		}
		if !exists {
			return res, &feedback.Violation{
				Constraint: "Mapping", Subject: ent.uri, Table: ent.tm.Name,
				Hint: "the entity does not exist; DELETE DATA removes known triples only",
			}
		}
		// The requested values must match the stored tuple (the tuple
		// "must be retrieved and analyzed during the translation").
		for _, name := range sortedKeys(pg.attrValues) {
			want := pg.attrValues[name]
			ci := ent.schema.ColumnIndex(name)
			if !rdb.Equal(row[ci], want) {
				return res, &feedback.Violation{
					Constraint: "Mapping", Subject: ent.uri, Property: pg.attrProps[name],
					Table: ent.tm.Name, Column: name, Value: want.Text(),
					Hint: "the triple to delete is not present in the data",
				}
			}
		}
		// Link rows requested for deletion must exist.
		for _, link := range pg.links {
			found, err := m.linkRowExists(tx, link)
			if err != nil {
				return res, err
			}
			if !found {
				return res, &feedback.Violation{
					Constraint: "Mapping", Subject: ent.uri, Property: link.property,
					Table: link.lt.Name, Value: link.objKey.Text(),
					Hint: "the relationship to delete is not present in the data",
				}
			}
			stmts = append(stmts, plannedStmt{
				sql: sqlgen.Delete(link.lt.Name, []sqlgen.Cond{
					{Column: link.lt.SubjectAttr.Name, Value: link.subjKey},
					{Column: link.lt.ObjectAttr.Name, Value: link.objKey},
				}),
				table: link.lt.Name, kind: kindDelete, subject: ent.uri, seq: seq,
			})
			seq++
		}

		if len(pg.attrValues) == 0 && !pg.hasType {
			continue // only link triples for this subject
		}

		covers := m.coversAllRemaining(ent, row, pg)
		switch {
		case covers:
			stmts = append(stmts, plannedStmt{
				sql:   sqlgen.Delete(ent.tm.Name, []sqlgen.Cond{{Column: ent.pkName, Value: ent.pkVal}}),
				table: ent.tm.Name, kind: kindDelete, subject: ent.uri, seq: seq,
			})
			seq++
		case pg.hasType:
			return res, &feedback.Violation{
				Constraint: "Mapping", Subject: ent.uri, Table: ent.tm.Name,
				Hint: "removing the rdf:type triple deletes the entity; the request must also cover all its remaining data",
			}
		default:
			// Partial delete: NULL out the mentioned attributes, with
			// the paper's NOT NULL protection applied at check time.
			var set []sqlgen.Assign
			conds := []sqlgen.Cond{{Column: ent.pkName, Value: ent.pkVal}}
			for _, name := range sortedKeys(pg.attrValues) {
				am, _ := ent.tm.Attribute(name)
				if am != nil && am.HasConstraint(r3m.ConstraintNotNull) {
					return res, &feedback.Violation{
						Constraint: "NotNull", Subject: ent.uri, Property: pg.attrProps[name],
						Table: ent.tm.Name, Column: name,
						Hint: "this mandatory property can only be removed by deleting the whole entity",
					}
				}
				set = append(set, sqlgen.Assign{Column: name, Value: rdb.Null})
				conds = append(conds, sqlgen.Cond{Column: name, Value: pg.attrValues[name]})
			}
			stmts = append(stmts, plannedStmt{
				sql:   sqlgen.Update(ent.tm.Name, set, conds),
				table: ent.tm.Name, kind: kindUpdate, subject: ent.uri, seq: seq,
			})
			seq++
		}
	}
	sorted, err := m.sortStatements(tx, stmts)
	if err != nil {
		return res, err
	}
	return res, m.executeStatements(tx, sorted, res)
}

// coversAllRemaining reports whether the request mentions every
// non-NULL mapped attribute of the stored row (the paper's condition
// for translating to a row DELETE).
func (m *Mediator) coversAllRemaining(ent *subjectEntity, row []rdb.Value, pg *partitionedGroup) bool {
	mentioned := func(name string) bool {
		_, ok := pg.attrValues[name]
		return ok
	}
	return coversRemaining(ent.tm, ent.schema, ent.pkName, row, mentioned,
		len(pg.attrValues) > 0, pg.hasType)
}

// coversRemaining is the single implementation of the DELETE-vs-
// NULLing-UPDATE decision, shared by the uncompiled path and the
// compiled-plan executor so the two stay in lockstep (like
// sortByFKOrder for statement ordering).
func coversRemaining(tm *r3m.TableMap, schema *rdb.TableSchema, pkName string, row []rdb.Value, mentioned func(string) bool, hasAttrs, hasType bool) bool {
	for _, am := range tm.Attributes {
		if strings.EqualFold(am.Name, pkName) {
			continue
		}
		ci := schema.ColumnIndex(am.Name)
		if ci < 0 || row[ci].IsNull() {
			continue
		}
		if am.Property.IsZero() {
			// Unmapped attribute values are invisible in the RDF view
			// and do not block deletion.
			continue
		}
		if !mentioned(am.Name) {
			return false
		}
	}
	return hasAttrs || hasType
}
