package core

import (
	"fmt"
	"strings"

	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/rdb/sqlparser"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/sqlgen"
)

// SelectTranslation is the result of translating a SPARQL basic graph
// pattern to a single SQL SELECT (the paper's translateSelect step in
// Algorithm 2, and the read path the prototype had "under
// development"). Decode turns the SQL result set back into SPARQL
// solutions.
type SelectTranslation struct {
	// SQL is the generated statement.
	SQL string
	// Vars are the variables bound by Decode, in column order.
	Vars []string

	bindings []varBinding
	// binds maps every variable the pattern binds (projected or not) to
	// its binding — ORDER BY keys and FILTER operands may use variables
	// outside the projection.
	binds map[string]varBinding
	m     *Mediator
}

type bindKind int

const (
	bindSubject bindKind = iota
	bindColumn
	// bindAgg marks an aggregate projection item: the column value is
	// already the computed aggregate and decodes as a plain literal of
	// its engine text.
	bindAgg
)

type varBinding struct {
	name  string
	kind  bindKind
	alias string
	col   string
	// subject bindings reconstruct an instance URI of tm; schema is
	// also set for data-attribute bindings, where FILTER and ORDER BY
	// lowering needs the column type.
	tm     *r3m.TableMap
	schema *rdb.TableSchema
	// column bindings: refTM reconstructs a referenced-instance URI;
	// am renders data/IRI-valued attributes.
	refTM *r3m.TableMap
	am    *r3m.AttributeMap
	// nullable marks OPTIONAL-bound variables: a NULL leaves the
	// variable unbound instead of dropping the row. Aggregates are
	// nullable too (SUM over no rows).
	nullable bool
}

// node is one subject entity in the BGP, identified by variable name
// or constant URI.
type qnode struct {
	alias  string
	tm     *r3m.TableMap
	schema *rdb.TableSchema
	// uri is the constant subject URI ("" for variable nodes).
	uri string
	// occs collects the parameter templates of every occurrence of a
	// parameterized constant subject (compile mode only).
	occs [][]shapeSeg
}

// selectCompile switches the translator into plan-compilation mode:
// constant terms whose normalized form carries parameter slots (nm is
// aligned with the WHERE triples, fconds with the lowered FILTER
// conjuncts) contribute deferred value sources instead of compile-time
// values, and the resulting SelectSpec marks their conditions with
// 1-based indices into srcs.
type selectCompile struct {
	nm     []normPattern
	fconds []normFilterCond
	srcs   []valueSrc
	// checks lists, per parameterized constant subject, the templates
	// of all its occurrences; binding verifies they agree — and that
	// distinct subject nodes stay distinct, also against constURIs,
	// the unparameterized constant subjects. Nodes that collapse at
	// bind time would need the translator's node merging, so the plan
	// goes stale instead.
	checks    [][][]shapeSeg
	constURIs []string
}

func (c *selectCompile) subjSegs(ti int) []shapeSeg { return c.nm[ti].s.segs }
func (c *selectCompile) objSegs(ti int) []shapeSeg  { return c.nm[ti].o.segs }

// filterSegs returns the parameter template of filter conjunct fi's
// constant side, nil when the conjunct is variable-vs-variable or the
// compile carries no filter normalization.
func (c *selectCompile) filterSegs(fi int) []shapeSeg {
	if fi >= len(c.fconds) {
		return nil
	}
	return c.fconds[fi].r.segs
}

// addSrc registers a deferred value source and returns its 1-based
// parameter mark.
func (c *selectCompile) addSrc(src valueSrc) int {
	c.srcs = append(c.srcs, src)
	return len(c.srcs)
}

type translator struct {
	m       *Mediator
	tx      *rdb.Tx
	comp    *selectCompile // nil outside plan compilation
	nodes   map[string]*qnode
	order   []string
	aliasN  int
	joins   []sqlgen.JoinSpec
	wheres  []sqlgen.WhereSpec
	links   []linkUse
	bind    map[string]varBinding
	bindSeq []string
	// leftJoins collects OPTIONAL lowerings; they attach after the
	// inner joins so their ON clauses only reference joined aliases.
	leftJoins []sqlgen.JoinSpec
}

type linkUse struct {
	alias string
	lt    *r3m.LinkTableMap
}

// TranslateSelect translates a group pattern of triple patterns and
// comparison FILTERs into one SQL SELECT over the mapped schema.
// Patterns using OPTIONAL, UNION, variable predicates, variable
// classes, or FILTER shapes the lowering cannot prove equivalent are
// not translatable and return an error; callers fall back to
// evaluation over the virtual RDF view.
func (m *Mediator) TranslateSelect(tx *rdb.Tx, where *sparql.GroupPattern, projVars []string) (*SelectTranslation, error) {
	st, spec, err := m.translateSelect(tx, where, projVars, nil)
	if err != nil {
		return nil, err
	}
	st.SQL = sqlgen.Select(*spec)
	return st, nil
}

// translateSelect is the shared translation engine. With a non-nil
// comp it runs in plan-compilation mode: parameterized constants defer
// their values into comp.srcs, and the returned spec carries their
// Param marks so a compiled MODIFY can re-render the SQL per argument
// vector. Both modes share every structural decision, which keeps the
// compiled SELECT byte-identical to the uncompiled translation.
func (m *Mediator) translateSelect(tx *rdb.Tx, where *sparql.GroupPattern, projVars []string, comp *selectCompile) (*SelectTranslation, *sqlgen.SelectSpec, error) {
	if where == nil {
		return nil, nil, fmt.Errorf("core: nil WHERE pattern")
	}
	if len(where.Unions) > 0 {
		return nil, nil, fmt.Errorf("core: only basic graph patterns are translatable to a single SELECT")
	}
	if len(where.Optionals) > 0 && comp != nil {
		// Parameterized plans stay BGP-only; OPTIONAL queries compile on
		// the structural (zero-slot) rich-shape path.
		return nil, nil, fmt.Errorf("core: OPTIONAL is not translatable in a parameterized plan")
	}
	if len(where.Triples) == 0 {
		return nil, nil, fmt.Errorf("core: empty basic graph pattern")
	}
	tr := &translator{
		m: m, tx: tx, comp: comp,
		nodes: make(map[string]*qnode),
		bind:  make(map[string]varBinding),
	}
	// Pass one: pin every subject to a table.
	for ti, tp := range where.Triples {
		if err := tr.pinSubject(tp); err != nil {
			return nil, nil, err
		}
		if comp != nil && !tp.S.IsVar {
			if segs := comp.subjSegs(ti); segs != nil {
				key, _ := subjectKey(tp.S)
				if n := tr.nodes[key]; n != nil {
					n.occs = append(n.occs, segs)
				}
			}
		}
	}
	// Constant subjects pin their rows by primary key.
	if err := tr.emitSubjectConds(); err != nil {
		return nil, nil, err
	}
	// Pass two: conditions, joins and variable bindings.
	for ti, tp := range where.Triples {
		if err := tr.addPattern(ti, tp); err != nil {
			return nil, nil, err
		}
	}
	// Pass two-and-a-half: OPTIONAL groups lower to LEFT JOINs (or
	// drop, when they bind nothing). Before FILTERs, which must see the
	// nullable bindings to refuse them.
	for _, og := range where.Optionals {
		if err := tr.lowerOptional(og); err != nil {
			return nil, nil, err
		}
	}
	// Pass three: FILTER constraints lower onto the bound variables.
	if err := tr.addFilters(where.Filters); err != nil {
		return nil, nil, err
	}
	if projVars == nil {
		projVars = tr.bindSeq
	}
	st := &SelectTranslation{m: m, binds: tr.bind}
	var cols []string
	for _, v := range projVars {
		b, ok := tr.bind[v]
		if !ok {
			return nil, nil, fmt.Errorf("core: variable ?%s is not bound by the pattern", v)
		}
		st.Vars = append(st.Vars, v)
		st.bindings = append(st.bindings, b)
		cols = append(cols, b.alias+"."+b.col)
	}
	if len(cols) == 0 {
		// ASK-style probe: select the first node's key.
		first := tr.nodes[tr.order[0]]
		cols = []string{first.alias + "." + first.schema.PrimaryKey[0]}
	}
	spec, err := tr.buildSpec(cols)
	if err != nil {
		return nil, nil, err
	}
	// The SQL text is rendered by the caller once the spec is final:
	// the uncompiled read path first lowers the query's solution
	// modifiers onto it, and in compile mode Param-marked conditions
	// carry no values yet.
	return st, spec, nil
}

// emitSubjectConds adds the primary-key condition of every constant
// subject node, in pin order. In compile mode a parameterized subject
// defers its key through a convKey source, which re-verifies at bind
// time that the bound URI still identifies the compiled table.
func (tr *translator) emitSubjectConds() error {
	for _, key := range tr.order {
		n := tr.nodes[key]
		if n.uri == "" {
			continue
		}
		col := n.alias + "." + n.schema.PrimaryKey[0]
		if tr.comp != nil && len(n.occs) > 0 {
			src := valueSrc{segs: n.occs[0], raw: n.uri, conv: convKey, refTM: n.tm, refSch: n.schema}
			tr.comp.checks = append(tr.comp.checks, n.occs)
			tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, Param: tr.comp.addSrc(src)})
			continue
		}
		if tr.comp != nil {
			tr.comp.constURIs = append(tr.comp.constURIs, n.uri)
		}
		_, vals, err := tr.m.mapping.IdentifyTable(n.uri)
		if err != nil {
			return err
		}
		pk, err := tr.m.keyValueFromPattern(n.schema, vals, n.uri, "")
		if err != nil {
			return err
		}
		tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, Value: pk})
	}
	return nil
}

// subjectKey names a node: variable name or "<uri>".
func subjectKey(pt sparql.PatternTerm) (string, error) {
	if pt.IsVar {
		return pt.Var, nil
	}
	if pt.Term.IsIRI() {
		return "<" + pt.Term.Value + ">", nil
	}
	return "", fmt.Errorf("core: subjects must be variables or IRIs, got %s", pt.Term)
}

func (tr *translator) pinSubject(tp sparql.TriplePattern) error {
	key, err := subjectKey(tp.S)
	if err != nil {
		return err
	}
	if !tp.P.IsVar && tp.P.Term == rdf.IRI(rdf.RDFType) {
		if tp.O.IsVar {
			return fmt.Errorf("core: variable classes are not translatable")
		}
		tm, ok := tr.m.mapping.TableForClass(tp.O.Term)
		if !ok {
			return fmt.Errorf("core: class %s is not mapped", tp.O.Term)
		}
		return tr.pinNode(key, tm)
	}
	if tp.P.IsVar {
		return fmt.Errorf("core: variable predicates are not translatable")
	}
	// Property determines candidate tables.
	if lt, ok := tr.m.mapping.LinkTableForProperty(tp.P.Term); ok {
		subjRef, _ := lt.SubjectAttr.ForeignKeyRef()
		subjTM, _ := tr.m.mapping.ResolveTableRef(subjRef)
		if subjTM == nil {
			return fmt.Errorf("core: link table %q unresolved", lt.Name)
		}
		if err := tr.pinNode(key, subjTM); err != nil {
			return err
		}
		// A variable object of a link property pins that node too,
		// when the variable is used as a subject elsewhere; handled
		// lazily in addPattern.
		return nil
	}
	var candidates []*r3m.TableMap
	for _, tm := range tr.m.mapping.Tables {
		if _, ok := tm.AttributeForProperty(tp.P.Term); ok {
			candidates = append(candidates, tm)
		}
	}
	switch len(candidates) {
	case 0:
		return fmt.Errorf("core: property %s is not mapped", tp.P.Term)
	case 1:
		return tr.pinNode(key, candidates[0])
	default:
		// Ambiguous across classes: resolvable only if the node is
		// already pinned (by rdf:type or an earlier property).
		if n, ok := tr.nodes[key]; ok {
			for _, c := range candidates {
				if c == n.tm {
					return nil
				}
			}
		}
		// Constant subjects self-identify.
		if strings.HasPrefix(key, "<") {
			return tr.pinConstSubject(key)
		}
		return fmt.Errorf("core: property %s maps to several classes; add an rdf:type pattern for ?%s",
			tp.P.Term, key)
	}
}

func (tr *translator) pinConstSubject(key string) error {
	uri := strings.TrimSuffix(strings.TrimPrefix(key, "<"), ">")
	tm, _, err := tr.m.mapping.IdentifyTable(uri)
	if err != nil {
		return err
	}
	return tr.pinNode(key, tm)
}

func (tr *translator) pinNode(key string, tm *r3m.TableMap) error {
	if n, ok := tr.nodes[key]; ok {
		if n.tm != tm {
			return fmt.Errorf("core: %s is used as both %s and %s", key, n.tm.Class, tm.Class)
		}
		return nil
	}
	schema, err := tr.tx.Schema(tm.Name)
	if err != nil {
		return err
	}
	n := &qnode{alias: fmt.Sprintf("t%d", tr.aliasN), tm: tm, schema: schema}
	tr.aliasN++
	tr.nodes[key] = n
	tr.order = append(tr.order, key)
	if strings.HasPrefix(key, "<") {
		// The primary-key condition is emitted by emitSubjectConds once
		// all occurrences are known.
		n.uri = strings.TrimSuffix(strings.TrimPrefix(key, "<"), ">")
	} else {
		tr.bindVar(key, varBinding{
			name: key, kind: bindSubject, alias: n.alias,
			col: schema.PrimaryKey[0], tm: tm, schema: schema,
		})
	}
	return nil
}

func (tr *translator) bindVar(name string, b varBinding) {
	if prev, ok := tr.bind[name]; ok {
		// The variable already has a binding: require column equality.
		tr.wheres = append(tr.wheres, sqlgen.WhereSpec{
			Column: prev.alias + "." + prev.col, OtherColumn: b.alias + "." + b.col,
		})
		return
	}
	tr.bind[name] = b
	tr.bindSeq = append(tr.bindSeq, name)
}

func (tr *translator) addPattern(ti int, tp sparql.TriplePattern) error {
	key, _ := subjectKey(tp.S)
	n := tr.nodes[key]
	if n == nil {
		return fmt.Errorf("core: internal: unpinned subject %s", key)
	}
	prop := tp.P.Term
	if prop == rdf.IRI(rdf.RDFType) {
		return nil // consumed during pinning
	}
	if lt, ok := tr.m.mapping.LinkTableForProperty(prop); ok {
		return tr.addLinkPattern(ti, lt, n, tp)
	}
	am, ok := n.tm.AttributeForProperty(prop)
	if !ok {
		return fmt.Errorf("core: class %s has no attribute for property %s", n.tm.Class, prop)
	}
	col := n.alias + "." + am.Name
	ref, isFK := am.ForeignKeyRef()
	switch {
	case tp.O.IsVar:
		if isFK {
			refTM, _ := tr.m.mapping.ResolveTableRef(ref)
			// If the object variable is itself a pinned node, join the
			// referenced table; otherwise decode the key column.
			if on, pinned := tr.nodes[tp.O.Var]; pinned {
				tr.wheres = append(tr.wheres, sqlgen.WhereSpec{
					Column: col, OtherColumn: on.alias + "." + on.schema.PrimaryKey[0],
				})
			} else {
				tr.bindVar(tp.O.Var, varBinding{
					name: tp.O.Var, kind: bindColumn, alias: n.alias, col: am.Name, refTM: refTM,
				})
				tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, NotNull: true})
				return nil
			}
			tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, NotNull: true})
			return nil
		}
		tr.bindVar(tp.O.Var, varBinding{
			name: tp.O.Var, kind: bindColumn, alias: n.alias, col: am.Name, am: am, schema: n.schema,
		})
		tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, NotNull: true})
	default:
		if tr.comp != nil {
			if segs := tr.comp.objSegs(ti); segs != nil {
				return tr.deferObjectCond(col, am, n, normTerm{term: tp.O.Term, segs: segs}, prop.Value)
			}
		}
		schemaCol, _ := n.schema.Column(am.Name)
		v, err := tr.m.tripleObjectToValue(tr.tx, tp.O.Term, am, schemaCol, key, prop.Value)
		if err != nil {
			return err
		}
		tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, Value: v})
	}
	return nil
}

// deferObjectCond records a parameterized constant object as a
// deferred condition, mirroring tripleObjectToValue's three conversion
// flavours (foreign key, IRI-valued attribute, data literal).
func (tr *translator) deferObjectCond(col string, am *r3m.AttributeMap, n *qnode, o normTerm, prop string) error {
	var src *valueSrc
	var err error
	if ref, isFK := am.ForeignKeyRef(); isFK {
		refTM, found := tr.m.mapping.ResolveTableRef(ref)
		if !found {
			return fmt.Errorf("core: unresolved foreign key reference %q", ref)
		}
		refSchema, serr := tr.tx.Schema(refTM.Name)
		if serr != nil {
			return serr
		}
		src, err = tr.m.compileValueSrc(o, nil, nil, refTM, refSchema, prop)
	} else if am.IsObject {
		src, err = tr.m.compileValueSrc(o, nil, am, nil, nil, prop)
	} else {
		schemaCol, ok := n.schema.Column(am.Name)
		if !ok {
			return fmt.Errorf("core: missing column %q in %q", am.Name, n.tm.Name)
		}
		src, err = tr.m.compileValueSrc(o, schemaCol, nil, nil, nil, prop)
	}
	if err != nil {
		return err
	}
	tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: col, Param: tr.comp.addSrc(*src)})
	return nil
}

func (tr *translator) addLinkPattern(ti int, lt *r3m.LinkTableMap, n *qnode, tp sparql.TriplePattern) error {
	objRef, _ := lt.ObjectAttr.ForeignKeyRef()
	objTM, _ := tr.m.mapping.ResolveTableRef(objRef)
	if objTM == nil {
		return fmt.Errorf("core: link table %q unresolved", lt.Name)
	}
	alias := fmt.Sprintf("l%d", len(tr.links))
	tr.links = append(tr.links, linkUse{alias: alias, lt: lt})
	tr.joins = append(tr.joins, sqlgen.JoinSpec{
		Table: lt.Name, As: alias,
		Left: alias + "." + lt.SubjectAttr.Name, Right: n.alias + "." + n.schema.PrimaryKey[0],
	})
	switch {
	case tp.O.IsVar:
		if on, pinned := tr.nodes[tp.O.Var]; pinned {
			tr.wheres = append(tr.wheres, sqlgen.WhereSpec{
				Column: alias + "." + lt.ObjectAttr.Name, OtherColumn: on.alias + "." + on.schema.PrimaryKey[0],
			})
		} else {
			tr.bindVar(tp.O.Var, varBinding{
				name: tp.O.Var, kind: bindColumn, alias: alias, col: lt.ObjectAttr.Name, refTM: objTM,
			})
		}
	default:
		if tr.comp != nil {
			if segs := tr.comp.objSegs(ti); segs != nil {
				objSchema, serr := tr.tx.Schema(objTM.Name)
				if serr != nil {
					return serr
				}
				src, err := tr.m.compileValueSrc(normTerm{term: tp.O.Term, segs: segs},
					nil, nil, objTM, objSchema, lt.Property.Value)
				if err != nil {
					return err
				}
				tr.wheres = append(tr.wheres, sqlgen.WhereSpec{
					Column: alias + "." + lt.ObjectAttr.Name, Param: tr.comp.addSrc(*src),
				})
				return nil
			}
		}
		objKey, err := tr.m.objectToKeyValue(tr.tx, tp.O.Term, objTM, "", lt.Property.Value)
		if err != nil {
			return err
		}
		tr.wheres = append(tr.wheres, sqlgen.WhereSpec{Column: alias + "." + lt.ObjectAttr.Name, Value: objKey})
	}
	return nil
}

// buildSpec assembles the final SELECT: the first node is FROM, every
// other node joins through a shared condition, link tables join as
// recorded.
func (tr *translator) buildSpec(cols []string) (*sqlgen.SelectSpec, error) {
	if len(tr.order) == 0 {
		return nil, fmt.Errorf("core: no tables in pattern")
	}
	first := tr.nodes[tr.order[0]]
	spec := &sqlgen.SelectSpec{
		Columns: cols,
		From:    first.tm.Name,
		FromAs:  first.alias,
		Joins:   tr.joins,
		Limit:   -1,
		Offset:  -1,
	}
	joined := map[string]bool{first.alias: true}
	for _, j := range tr.joins {
		joined[j.As] = true
	}
	// Attach remaining nodes: find a column-equality condition
	// linking the node to an already-joined alias and promote it to a
	// JOIN ... ON; iterate until no progress.
	remaining := tr.order[1:]
	conds := tr.wheres
	for len(remaining) > 0 {
		progress := false
		var still []string
		for _, key := range remaining {
			n := tr.nodes[key]
			found := -1
			for ci, c := range conds {
				if c.OtherColumn == "" || c.Op != sqlgen.CmpEq {
					continue // ordered FILTER conds never join tables
				}
				la, _ := splitAlias(c.Column)
				ra, _ := splitAlias(c.OtherColumn)
				if la == n.alias && joined[ra] || ra == n.alias && joined[la] {
					found = ci
					break
				}
			}
			if found < 0 {
				still = append(still, key)
				continue
			}
			c := conds[found]
			conds = append(conds[:found:found], conds[found+1:]...)
			spec.Joins = append(spec.Joins, sqlgen.JoinSpec{
				Table: n.tm.Name, As: n.alias, Left: c.Column, Right: c.OtherColumn,
			})
			joined[n.alias] = true
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("core: basic graph pattern is not connected; cannot translate to joins")
		}
		remaining = still
	}
	// OPTIONAL left joins render last: their ON clauses reference inner
	// aliases, never the other way around.
	spec.Joins = append(spec.Joins, tr.leftJoins...)
	spec.Where = conds
	return spec, nil
}

func splitAlias(qualified string) (alias, col string) {
	i := strings.IndexByte(qualified, '.')
	if i < 0 {
		return "", qualified
	}
	return qualified[:i], qualified[i+1:]
}

// Run executes the translation and decodes the result set into SPARQL
// solutions.
func (st *SelectTranslation) Run(tx *rdb.Tx) (sparql.Solutions, error) {
	stmt, err := sqlparser.ParseStatement(st.SQL)
	if err != nil {
		return nil, err
	}
	return st.runParsed(tx, stmt)
}

// runParsed executes an already-parsed statement of the translation —
// compiled MODIFY plans parse the bound SELECT once per argument
// vector and re-execute the parsed form.
func (st *SelectTranslation) runParsed(tx *rdb.Tx, stmt sqlparser.Statement) (sparql.Solutions, error) {
	res, err := sqlexec.Exec(tx, stmt)
	if err != nil {
		return nil, err
	}
	var sols sparql.Solutions
	for _, row := range res.Set.Rows {
		b := make(sparql.Binding, len(st.bindings))
		skip := false
		for i, vb := range st.bindings {
			v := row[i]
			if v.IsNull() {
				if vb.nullable {
					continue // OPTIONAL/aggregate NULL: variable stays unbound
				}
				skip = true
				break
			}
			term, err := st.decodeValue(tx, vb, v)
			if err != nil {
				return nil, err
			}
			b[vb.name] = term
		}
		if !skip {
			sols = append(sols, b)
		}
	}
	return sols, nil
}

// decodeValue converts one result column back into an RDF term. It
// resolves schemas through the open transaction — the database-level
// Schema accessor takes the catalog lock, which this goroutine
// already holds via tx, and a queued DDL writer would deadlock a
// recursive read-lock.
func (st *SelectTranslation) decodeValue(tx *rdb.Tx, vb varBinding, v rdb.Value) (rdf.Term, error) {
	switch {
	case vb.kind == bindAgg:
		// Aggregate results decode as plain literals of their engine
		// text — COUNT/integer SUM as base-10 integers, AVG/float SUM
		// via strconv.FormatFloat(_, 'g', -1, 64) — which the native
		// evaluator's aggregation reproduces byte-for-byte.
		return rdf.Literal(v.Text()), nil
	case vb.kind == bindSubject:
		uri, err := st.m.mapping.InstanceURI(vb.tm, map[string]string{vb.col: v.Text()})
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.IRI(uri), nil
	case vb.refTM != nil:
		refSchema, err := tx.Schema(vb.refTM.Name)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("core: missing schema for %q", vb.refTM.Name)
		}
		uri, err := st.m.mapping.InstanceURI(vb.refTM, map[string]string{refSchema.PrimaryKey[0]: v.Text()})
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.IRI(uri), nil
	case vb.am != nil && vb.am.IsObject:
		return rdf.IRI(vb.am.ValuePrefix + v.Text()), nil
	case vb.am != nil:
		return valueToTerm(v, vb.am), nil
	default:
		return rdf.Literal(v.Text()), nil
	}
}

// QueryResult is the outcome of Mediator.Query.
type QueryResult struct {
	Form sparql.QueryForm
	// Vars and Solutions are set for SELECT.
	Vars      []string
	Solutions sparql.Solutions
	// Graph is set for CONSTRUCT.
	Graph *rdf.Graph
	// Bool is set for ASK.
	Bool bool
	// SQL records the translated SELECT when the BGP fast path was
	// used; empty means the query ran over the virtual RDF view.
	SQL string
}

// Query evaluates a SPARQL query against the mapped database. Graph
// patterns with comparison FILTERs and solution modifiers compile once
// per shape into a QueryPlan — the WHERE translated to a parameterized
// SELECT spec (FILTER conjuncts as typed WHERE conditions, DISTINCT /
// ORDER BY / LIMIT / OFFSET lowered onto it) executed directly by the
// streaming index-aware executor over the pinned snapshot — and
// repeated query strings skip straight to the bound plan through the
// parse memo. Richer queries (OPTIONAL, UNION, non-comparison FILTER
// shapes), and every query when Options.DisablePlanCache is set, take
// the uncompiled path: the text-SQL fast path for translatable
// SELECTs, then evaluation over the virtual RDF view, exactly the
// paper's read path.
func (m *Mediator) Query(src string) (*QueryResult, error) {
	return m.QueryOn(src, rdb.ReadTarget{})
}

// QueryOn evaluates a SPARQL query against a read target: the live
// head (zero target), a retained historical version (AsOf), or a
// branch head (Branch). Compiled plans, the parse memo and both
// fallback paths all run against the same resolved snapshot, so the
// result is byte-identical to what Query returned when that version
// was the head.
func (m *Mediator) QueryOn(src string, target rdb.ReadTarget) (*QueryResult, error) {
	if !m.opts.DisablePlanCache {
		if cq, hit := m.qparses.get(src); hit {
			if out, err, handled := m.runCachedQuery(cq, target); handled {
				m.queryCompiled.Add(1)
				return out, err
			}
			m.queryFallback.Add(1)
			return m.queryUncompiled(cq.q, target)
		}
	}
	q, err := sparql.ParseQuery(src)
	if err != nil {
		return nil, err
	}
	if !m.opts.DisablePlanCache {
		cq := m.buildCachedQuery(src, q)
		m.qparses.put(src, cq)
		if out, err, handled := m.runCachedQuery(cq, target); handled {
			m.queryCompiled.Add(1)
			return out, err
		}
	}
	m.queryFallback.Add(1)
	return m.queryUncompiled(q, target)
}

// QueryExecStats reports how many Query calls were served by a bound
// compiled plan versus the uncompiled fallback (text fast path or
// virtual-view evaluation) — the read-path effectiveness counter
// /healthz exposes.
func (m *Mediator) QueryExecStats() (compiled, fallback uint64) {
	return m.queryCompiled.Load(), m.queryFallback.Load()
}

// queryUncompiled is the paper-faithful read path: translate SELECTs —
// including comparison FILTERs and solution modifiers since the
// compiled pipeline learned them — to SQL text, parse and execute it;
// everything else (and any translation failure) evaluates over the
// virtual RDF view. It executes the exact SQL the compiled path lowers
// structurally, serving as the parity baseline for the plan pipeline.
func (m *Mediator) queryUncompiled(q *sparql.Query, target rdb.ReadTarget) (*QueryResult, error) {
	out := &QueryResult{Form: q.Form}
	err := m.viewOn(target, func(tx *rdb.Tx) error {
		// Fast path: SELECT over a translatable pattern — aggregating,
		// UNION-splitting, or plain, in that order of specificity.
		if q.Form == sparql.FormSelect && q.Where != nil {
			switch {
			case q.Aggs != nil:
				if st, sql, ok := m.runAggregateSelect(tx, q); ok {
					out.Vars = st.vars
					out.Solutions = st.sols
					out.SQL = sql
					return nil
				}
			case len(q.Where.Unions) == 1:
				if st, sql, ok := m.runUnionSelect(tx, q); ok {
					out.Vars = st.vars
					out.Solutions = st.sols
					out.SQL = sql
					return nil
				}
			case len(q.Where.Unions) == 0:
				proj := q.Vars
				if q.Star {
					proj = q.Where.Vars()
				}
				if st, spec, terr := m.translateSelect(tx, q.Where, proj, nil); terr == nil {
					if merr := applyQueryModifiers(st, q, spec); merr == nil {
						st.SQL = sqlgen.Select(*spec)
						sols, rerr := st.Run(tx)
						if rerr == nil {
							out.Vars = st.Vars
							out.Solutions = sols
							out.SQL = st.SQL
							return nil
						}
					}
				}
			}
		}
		// General path: evaluate over the virtual view.
		vg := m.VirtualGraph(tx)
		switch q.Form {
		case sparql.FormSelect:
			sols, err := sparql.Eval(vg, q)
			if err != nil {
				return err
			}
			out.Solutions = sols
			if q.Star {
				out.Vars = q.Where.Vars()
			} else {
				out.Vars = q.Vars
			}
		case sparql.FormAsk:
			b, err := sparql.EvalAsk(vg, q)
			if err != nil {
				return err
			}
			out.Bool = b
		case sparql.FormConstruct:
			g, err := sparql.EvalConstruct(vg, q)
			if err != nil {
				return err
			}
			out.Graph = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
