package rdf

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name string
		term Term
		kind TermKind
		str  string
	}{
		{"iri", IRI("http://example.org/a"), KindIRI, "<http://example.org/a>"},
		{"blank", Blank("b1"), KindBlank, "_:b1"},
		{"plain literal", Literal("hello"), KindLiteral, `"hello"`},
		{"typed literal", TypedLiteral("5", XSDInteger), KindLiteral, `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"lang literal", LangLiteral("hallo", "DE"), KindLiteral, `"hallo"@de`},
		{"integer helper", IntegerLiteral(42), KindLiteral, `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{"bool helper", BooleanLiteral(true), KindLiteral, `"true"^^<http://www.w3.org/2001/XMLSchema#boolean>`},
		{"escaped literal", Literal("a\"b\nc\\d"), KindLiteral, `"a\"b\nc\\d"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.term.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", tc.term.Kind, tc.kind)
			}
			if got := tc.term.String(); got != tc.str {
				t.Fatalf("String() = %s, want %s", got, tc.str)
			}
		})
	}
}

func TestTermEquality(t *testing.T) {
	if Literal("a") != TypedLiteral("a", XSDString) {
		t.Error("plain literal and explicit xsd:string literal must be equal")
	}
	if Literal("a") == TypedLiteral("a", XSDInteger) {
		t.Error("different datatypes must not be equal")
	}
	if LangLiteral("a", "EN") != LangLiteral("a", "en") {
		t.Error("language tags must be case-insensitive")
	}
	if IRI("x") == Blank("x") {
		t.Error("IRI and blank node with same value must differ")
	}
}

func TestTermPredicates(t *testing.T) {
	if !IRI("x").IsIRI() || IRI("x").IsLiteral() || IRI("x").IsBlank() {
		t.Error("IRI predicates wrong")
	}
	if !Literal("x").IsLiteral() {
		t.Error("literal predicate wrong")
	}
	if !Blank("x").IsBlank() {
		t.Error("blank predicate wrong")
	}
	var zero Term
	if !zero.IsZero() || IRI("x").IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestAsInt(t *testing.T) {
	tests := []struct {
		term    Term
		want    int64
		wantErr bool
	}{
		{IntegerLiteral(2009), 2009, false},
		{TypedLiteral("  7 ", XSDInt), 7, false},
		{TypedLiteral("2009.0", XSDDecimal), 2009, false},
		{TypedLiteral("2009.5", XSDDecimal), 0, true},
		{Literal("abc"), 0, true},
		{IRI("x"), 0, true},
	}
	for _, tc := range tests {
		got, err := tc.term.AsInt()
		if (err != nil) != tc.wantErr {
			t.Errorf("AsInt(%s) err = %v, wantErr %v", tc.term, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("AsInt(%s) = %d, want %d", tc.term, got, tc.want)
		}
	}
}

func TestAsFloatAndBool(t *testing.T) {
	if v, err := DoubleLiteral(1.5).AsFloat(); err != nil || v != 1.5 {
		t.Errorf("AsFloat = %v, %v", v, err)
	}
	if _, err := IRI("x").AsFloat(); err == nil {
		t.Error("AsFloat on IRI should fail")
	}
	if v, err := BooleanLiteral(true).AsBool(); err != nil || !v {
		t.Errorf("AsBool = %v, %v", v, err)
	}
	if v, err := TypedLiteral("0", XSDBoolean).AsBool(); err != nil || v {
		t.Errorf("AsBool(0) = %v, %v", v, err)
	}
	if _, err := Literal("maybe").AsBool(); err == nil {
		t.Error("AsBool on junk should fail")
	}
}

func TestIsNumeric(t *testing.T) {
	if !IntegerLiteral(1).IsNumeric() || !DoubleLiteral(1).IsNumeric() {
		t.Error("numeric literals must report numeric")
	}
	if Literal("1").IsNumeric() {
		t.Error("xsd:string is not numeric")
	}
	if IRI("1").IsNumeric() {
		t.Error("IRI is not numeric")
	}
}

func TestCompareTermsTotalOrder(t *testing.T) {
	// Property: CompareTerms is antisymmetric and consistent with ==.
	f := func(a, b uint8, v1, v2 string) bool {
		mk := func(k uint8, v string) Term {
			switch k % 3 {
			case 0:
				return IRI(v)
			case 1:
				return Literal(v)
			default:
				return Blank(v)
			}
		}
		x, y := mk(a, v1), mk(b, v2)
		cxy, cyx := CompareTerms(x, y), CompareTerms(y, x)
		if (cxy == 0) != (x == y) {
			return false
		}
		return sign(cxy) == -sign(cyx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestEscapeLiteralRoundTripSafety(t *testing.T) {
	// Property: escaping never leaves a raw quote, newline, CR or tab.
	f := func(s string) bool {
		e := EscapeLiteral(s)
		for i := 0; i < len(e); i++ {
			switch e[i] {
			case '\n', '\r', '\t':
				return false
			case '"':
				if i == 0 || e[i-1] != '\\' {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTermStringInvalid(t *testing.T) {
	var zero Term
	if got := zero.String(); got != "?!invalid" {
		t.Errorf("zero term String() = %q", got)
	}
	if TermKind(99).String() != "invalid" {
		t.Error("unknown kind name")
	}
	for k, want := range map[TermKind]string{KindIRI: "IRI", KindLiteral: "literal", KindBlank: "blank node"} {
		if k.String() != want {
			t.Errorf("kind %d String() = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkTermString(b *testing.B) {
	t := TypedLiteral("some moderately long literal value", XSDString)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = t.String()
	}
}

func BenchmarkIntegerLiteral(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = IntegerLiteral(int64(i))
	}
}

func TestIntegerLiteralRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := IntegerLiteral(v).AsInt()
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Also the formatted lexical form must match strconv.
	if IntegerLiteral(-17).Value != strconv.FormatInt(-17, 10) {
		t.Error("lexical form mismatch")
	}
}
