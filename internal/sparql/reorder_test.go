package sparql

import (
	"fmt"
	"testing"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
)

func TestReorderPutsSelectivePatternFirst(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE {
  ?a ex:p ?b .
  ?b ex:q ?c .
  ?c ex:r "constant" .
}`)
	if err != nil {
		t.Fatal(err)
	}
	r := reorderGroup(q.Where)
	// The pattern with the constant object must come first.
	if r.Triples[0].O.Term != rdf.Literal("constant") {
		t.Errorf("first pattern = %v", r.Triples[0])
	}
	// Chains follow boundness: after ?c is bound, "?b ex:q ?c" wins
	// over "?a ex:p ?b".
	if r.Triples[1].S.Var != "b" {
		t.Errorf("second pattern = %v", r.Triples[1])
	}
}

func TestReorderPreservesSemantics(t *testing.T) {
	store := triplestore.New()
	for i := 0; i < 50; i++ {
		s := rdf.IRI(fmt.Sprintf("http://e/s%d", i))
		store.Add(rdf.NewTriple(s, rdf.IRI("http://e/p"), rdf.IntegerLiteral(int64(i%7))))
		store.Add(rdf.NewTriple(s, rdf.IRI("http://e/q"), rdf.Literal(fmt.Sprintf("v%d", i%3))))
	}
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE {
  ?s ex:p ?n .
  ?s ex:q "v1" .
} ORDER BY ?s`)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := EvalWith(store, q, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := EvalWith(store, q, EvalOptions{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ordered) != len(naive) {
		t.Fatalf("cardinality differs: %d vs %d", len(ordered), len(naive))
	}
	for i := range ordered {
		if ordered[i].String() != naive[i].String() {
			t.Errorf("row %d differs: %v vs %v", i, ordered[i], naive[i])
		}
	}
}

func TestReorderRecursesIntoSubgroups(t *testing.T) {
	q, err := ParseQuery(`
PREFIX ex: <http://e/>
SELECT * WHERE {
  ?a ex:p ?b .
  OPTIONAL { ?x ex:o ?y . ?y ex:o2 ?z . ?z ex:o3 "k" . }
  { ?u ex:u1 ?v . ?v ex:u2 ?w . ?w ex:u3 "c" . } UNION { ?u ex:alt "c2" . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	r := reorderGroup(q.Where)
	if r.Optionals[0].Triples[0].O.Term != rdf.Literal("k") {
		t.Errorf("optional not reordered: %v", r.Optionals[0].Triples)
	}
	if r.Unions[0][0].Triples[0].O.Term != rdf.Literal("c") {
		t.Errorf("union branch not reordered: %v", r.Unions[0][0].Triples)
	}
}

func TestReorderShortPatternsUntouched(t *testing.T) {
	q, _ := ParseQuery(`SELECT * WHERE { ?a ?p ?b . ?b ?q "x" . }`)
	r := reorderGroup(q.Where)
	if r.Triples[0].S.Var != "a" {
		t.Error("two-pattern groups keep textual order")
	}
}

// chainStore builds a store where naive left-to-right evaluation of
// the benchmark query explodes (an unbound first pattern) while the
// reordered plan starts from a constant.
func chainStore(n int) *triplestore.Store {
	store := triplestore.New()
	for i := 0; i < n; i++ {
		a := rdf.IRI(fmt.Sprintf("http://e/a%d", i))
		b := rdf.IRI(fmt.Sprintf("http://e/b%d", i))
		c := rdf.IRI(fmt.Sprintf("http://e/c%d", i))
		store.Add(rdf.NewTriple(a, rdf.IRI("http://e/p"), b))
		store.Add(rdf.NewTriple(b, rdf.IRI("http://e/q"), c))
		store.Add(rdf.NewTriple(c, rdf.IRI("http://e/r"), rdf.IntegerLiteral(int64(i))))
	}
	return store
}

const chainQuery = `
PREFIX ex: <http://e/>
SELECT ?a WHERE {
  ?a ex:p ?b .
  ?b ex:q ?c .
  ?c ex:r 7 .
}`

func TestChainQueryBothPlansAgree(t *testing.T) {
	store := chainStore(100)
	q, err := ParseQuery(chainQuery)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := EvalWith(store, q, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := EvalWith(store, q, EvalOptions{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != 1 || len(slow) != 1 {
		t.Fatalf("cardinalities: %d vs %d", len(fast), len(slow))
	}
	if fast[0]["a"] != slow[0]["a"] {
		t.Errorf("results differ: %v vs %v", fast[0], slow[0])
	}
}

// BenchmarkB7_JoinOrderAblation quantifies the reordering: the naive
// plan enumerates every ex:p edge first; the reordered plan starts at
// the single ex:r match.
func BenchmarkB7_JoinOrderAblation(b *testing.B) {
	store := chainStore(2000)
	q, err := ParseQuery(chainQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Reordered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sols, err := EvalWith(store, q, EvalOptions{})
			if err != nil || len(sols) != 1 {
				b.Fatalf("sols=%d err=%v", len(sols), err)
			}
		}
	})
	b.Run("TextualOrder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sols, err := EvalWith(store, q, EvalOptions{NoReorder: true})
			if err != nil || len(sols) != 1 {
				b.Fatalf("sols=%d err=%v", len(sols), err)
			}
		}
	})
}
