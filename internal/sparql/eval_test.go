package sparql

import (
	"fmt"
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/triplestore"
)

// paperStore builds a store holding the RDF view of the paper's
// publication use case (Figure 1 data mapped per Table 1).
func paperStore() *triplestore.Store {
	const foaf = "http://xmlns.com/foaf/0.1/"
	const ont = "http://example.org/ontology#"
	const dc = "http://purl.org/dc/elements/1.1/"
	const ex = "http://example.org/db/"
	s := triplestore.New()
	add := func(sub, p string, o rdf.Term) {
		s.Add(rdf.NewTriple(rdf.IRI(sub), rdf.IRI(p), o))
	}
	add(ex+"author6", rdf.RDFType, rdf.IRI(foaf+"Person"))
	add(ex+"author6", foaf+"title", rdf.Literal("Mr"))
	add(ex+"author6", foaf+"firstName", rdf.Literal("Matthias"))
	add(ex+"author6", foaf+"family_name", rdf.Literal("Hert"))
	add(ex+"author6", foaf+"mbox", rdf.IRI("mailto:hert@ifi.uzh.ch"))
	add(ex+"author6", ont+"team", rdf.IRI(ex+"team5"))
	add(ex+"author7", rdf.RDFType, rdf.IRI(foaf+"Person"))
	add(ex+"author7", foaf+"firstName", rdf.Literal("Gerald"))
	add(ex+"author7", foaf+"family_name", rdf.Literal("Reif"))
	add(ex+"author7", foaf+"mbox", rdf.IRI("mailto:reif@ifi.uzh.ch"))
	add(ex+"team5", rdf.RDFType, rdf.IRI(foaf+"Group"))
	add(ex+"team5", foaf+"name", rdf.Literal("Software Engineering"))
	add(ex+"team5", ont+"teamCode", rdf.Literal("SEAL"))
	add(ex+"pub12", rdf.RDFType, rdf.IRI(foaf+"Document"))
	add(ex+"pub12", dc+"title", rdf.Literal("Relational..."))
	add(ex+"pub12", ont+"pubYear", rdf.IntegerLiteral(2009))
	add(ex+"pub12", dc+"creator", rdf.IRI(ex+"author6"))
	add(ex+"pub13", rdf.RDFType, rdf.IRI(foaf+"Document"))
	add(ex+"pub13", dc+"title", rdf.Literal("OntoAccess"))
	add(ex+"pub13", ont+"pubYear", rdf.IntegerLiteral(2010))
	add(ex+"pub13", dc+"creator", rdf.IRI(ex+"author6"))
	add(ex+"pub13", dc+"creator", rdf.IRI(ex+"author7"))
	return s
}

const prologue = `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ont: <http://example.org/ontology#>
PREFIX dc: <http://purl.org/dc/elements/1.1/>
PREFIX ex: <http://example.org/db/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
`

func mustEval(t *testing.T, store *triplestore.Store, src string) Solutions {
	t.Helper()
	q, err := ParseQuery(prologue + src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sols, err := Eval(store, q)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return sols
}

func TestEvalPaperModifyWhere(t *testing.T) {
	// The WHERE clause of the paper's Listing 11.
	sols := mustEval(t, paperStore(), `
SELECT ?x ?mbox WHERE {
  ?x rdf:type foaf:Person ;
     foaf:firstName "Matthias" ;
     foaf:family_name "Hert" ;
     foaf:mbox ?mbox .
}`)
	if len(sols) != 1 {
		t.Fatalf("solutions = %d, want 1: %v", len(sols), sols)
	}
	if sols[0]["x"] != rdf.IRI("http://example.org/db/author6") {
		t.Errorf("?x = %v", sols[0]["x"])
	}
	if sols[0]["mbox"] != rdf.IRI("mailto:hert@ifi.uzh.ch") {
		t.Errorf("?mbox = %v", sols[0]["mbox"])
	}
}

func TestEvalJoin(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?title ?last WHERE {
  ?pub dc:creator ?a ;
       dc:title ?title .
  ?a foaf:family_name ?last .
} ORDER BY ?title ?last`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %d, want 3: %v", len(sols), sols)
	}
	if sols[0]["title"] != rdf.Literal("OntoAccess") || sols[0]["last"] != rdf.Literal("Hert") {
		t.Errorf("row0 = %v", sols[0])
	}
	if sols[1]["last"] != rdf.Literal("Reif") {
		t.Errorf("row1 = %v", sols[1])
	}
}

func TestEvalFilterNumeric(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?pub WHERE { ?pub ont:pubYear ?y . FILTER (?y > 2009) }`)
	if len(sols) != 1 || sols[0]["pub"] != rdf.IRI("http://example.org/db/pub13") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestEvalFilterRegexAndStr(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?p WHERE { ?p foaf:mbox ?m . FILTER REGEX(STR(?m), "^mailto:reif") }`)
	if len(sols) != 1 || sols[0]["p"] != rdf.IRI("http://example.org/db/author7") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestEvalOptional(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?p ?title WHERE {
  ?p a foaf:Person .
  OPTIONAL { ?p foaf:title ?title . }
} ORDER BY ?p`)
	if len(sols) != 2 {
		t.Fatalf("solutions = %d: %v", len(sols), sols)
	}
	if sols[0]["title"] != rdf.Literal("Mr") {
		t.Errorf("author6 title = %v", sols[0]["title"])
	}
	if _, bound := sols[1]["title"]; bound {
		t.Errorf("author7 title should be unbound: %v", sols[1])
	}
}

func TestEvalOptionalWithBoundFilter(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?p WHERE {
  ?p a foaf:Person .
  OPTIONAL { ?p foaf:title ?t . }
  FILTER (!BOUND(?t))
}`)
	if len(sols) != 1 || sols[0]["p"] != rdf.IRI("http://example.org/db/author7") {
		t.Fatalf("solutions = %v", sols)
	}
}

func TestEvalUnion(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?name WHERE {
  { ?x foaf:name ?name . } UNION { ?x foaf:family_name ?name . }
} ORDER BY ?name`)
	if len(sols) != 3 {
		t.Fatalf("solutions = %d: %v", len(sols), sols)
	}
	want := []string{"Hert", "Reif", "Software Engineering"}
	for i, w := range want {
		if sols[i]["name"] != rdf.Literal(w) {
			t.Errorf("row %d = %v, want %q", i, sols[i]["name"], w)
		}
	}
}

func TestEvalDistinctLimitOffset(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT DISTINCT ?a WHERE { ?pub dc:creator ?a . } ORDER BY ?a`)
	if len(sols) != 2 {
		t.Fatalf("distinct creators = %d: %v", len(sols), sols)
	}
	sols = mustEval(t, paperStore(), `
SELECT DISTINCT ?a WHERE { ?pub dc:creator ?a . } ORDER BY ?a LIMIT 1 OFFSET 1`)
	if len(sols) != 1 || sols[0]["a"] != rdf.IRI("http://example.org/db/author7") {
		t.Fatalf("paged = %v", sols)
	}
	// Offset beyond result size.
	sols = mustEval(t, paperStore(), `
SELECT ?a WHERE { ?pub dc:creator ?a . } OFFSET 99`)
	if len(sols) != 0 {
		t.Fatalf("offset overflow = %v", sols)
	}
}

func TestEvalOrderByDesc(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?y WHERE { ?pub ont:pubYear ?y . } ORDER BY DESC(?y)`)
	if len(sols) != 2 {
		t.Fatal("want 2")
	}
	if v, _ := sols[0]["y"].AsInt(); v != 2010 {
		t.Errorf("first = %v", sols[0]["y"])
	}
}

func TestEvalRepeatedVariable(t *testing.T) {
	s := triplestore.New()
	s.Add(rdf.NewTriple(rdf.IRI("http://e/a"), rdf.IRI("http://e/knows"), rdf.IRI("http://e/a")))
	s.Add(rdf.NewTriple(rdf.IRI("http://e/a"), rdf.IRI("http://e/knows"), rdf.IRI("http://e/b")))
	sols := mustEval(t, s, `SELECT ?x WHERE { ?x <http://e/knows> ?x . }`)
	if len(sols) != 1 || sols[0]["x"] != rdf.IRI("http://e/a") {
		t.Fatalf("self-knows = %v", sols)
	}
}

func TestEvalAsk(t *testing.T) {
	q, err := ParseQuery(prologue + `ASK { ex:author6 foaf:family_name "Hert" . }`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalAsk(paperStore(), q)
	if err != nil || !ok {
		t.Fatalf("ASK = %v, %v", ok, err)
	}
	q, _ = ParseQuery(prologue + `ASK { ex:author6 foaf:family_name "Nobody" . }`)
	ok, _ = EvalAsk(paperStore(), q)
	if ok {
		t.Error("ASK should be false")
	}
}

func TestEvalConstruct(t *testing.T) {
	q, err := ParseQuery(prologue + `
CONSTRUCT { ?a <http://e/wrote> ?pub . } WHERE { ?pub dc:creator ?a . }`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := EvalConstruct(paperStore(), q)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("constructed %d triples:\n%s", g.Len(), g)
	}
	if !g.Contains(rdf.NewTriple(
		rdf.IRI("http://example.org/db/author7"),
		rdf.IRI("http://e/wrote"),
		rdf.IRI("http://example.org/db/pub13"))) {
		t.Error("expected triple missing")
	}
}

func TestEvalConstructOnSelectFails(t *testing.T) {
	q, _ := ParseQuery(`SELECT * WHERE { ?s ?p ?o . }`)
	if _, err := EvalConstruct(paperStore(), q); err == nil {
		t.Error("EvalConstruct must reject SELECT queries")
	}
}

func TestEvalEmptyPatternNoMatches(t *testing.T) {
	sols := mustEval(t, paperStore(), `SELECT ?x WHERE { ?x foaf:mbox <mailto:nobody@e> . }`)
	if len(sols) != 0 {
		t.Fatalf("want empty, got %v", sols)
	}
}

func TestEvalCartesianProduct(t *testing.T) {
	sols := mustEval(t, paperStore(), `
SELECT ?a ?t WHERE { ?a a foaf:Person . ?t a foaf:Group . }`)
	if len(sols) != 2 { // 2 persons x 1 group
		t.Fatalf("product size = %d", len(sols))
	}
}

func TestEvalFilterTypeErrorIsFalse(t *testing.T) {
	// Comparing an IRI with < is a type error: row dropped, not panic.
	sols := mustEval(t, paperStore(), `
SELECT ?x WHERE { ?x foaf:mbox ?m . FILTER (?m < 5) }`)
	if len(sols) != 0 {
		t.Fatalf("type-error filter must drop rows: %v", sols)
	}
}

func TestFormatTable(t *testing.T) {
	sols := Solutions{
		{"x": rdf.Literal("a")},
		{"x": rdf.Literal("bb"), "y": rdf.IntegerLiteral(5)},
	}
	out := FormatTable([]string{"x", "y"}, sols)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "?x") {
		t.Errorf("header = %q", lines[0])
	}
}

func TestBindingHelpers(t *testing.T) {
	b := Binding{"x": rdf.Literal("1")}
	c := b.Clone()
	c["y"] = rdf.Literal("2")
	if _, ok := b["y"]; ok {
		t.Error("Clone must not alias")
	}
	if !b.Compatible(Binding{"x": rdf.Literal("1"), "z": rdf.Literal("3")}) {
		t.Error("Compatible shared-var match failed")
	}
	if b.Compatible(Binding{"x": rdf.Literal("other")}) {
		t.Error("Compatible must fail on conflicting value")
	}
	m := b.Merge(Binding{"z": rdf.Literal("3")})
	if len(m) != 2 {
		t.Error("Merge failed")
	}
	if got := b.String(); got != `{?x="1"}` {
		t.Errorf("String = %s", got)
	}
}

func BenchmarkEvalBGPJoin(b *testing.B) {
	store := triplestore.New()
	for i := 0; i < 1000; i++ {
		pub := rdf.IRI(fmt.Sprintf("http://e/pub%d", i))
		au := rdf.IRI(fmt.Sprintf("http://e/author%d", i%100))
		store.Add(rdf.NewTriple(pub, rdf.IRI("http://purl.org/dc/elements/1.1/creator"), au))
		store.Add(rdf.NewTriple(pub, rdf.IRI("http://example.org/ontology#pubYear"), rdf.IntegerLiteral(int64(2000+i%10))))
		store.Add(rdf.NewTriple(au, rdf.IRI("http://xmlns.com/foaf/0.1/family_name"), rdf.Literal(fmt.Sprintf("Name%d", i%100))))
	}
	q, err := ParseQuery(prologue + `
SELECT ?pub ?last WHERE {
  ?pub dc:creator ?a ; ont:pubYear ?y .
  ?a foaf:family_name ?last .
  FILTER (?y >= 2005)
}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(store, q); err != nil {
			b.Fatal(err)
		}
	}
}
