package rdb

import "sync"

// table is the catalog entry for one relation. Since the storage
// moved to immutable versions (tableVersion in version.go, published
// through the database snapshot), the catalog entry only carries what
// cannot live in a snapshot: the writer lock.
type table struct {
	// mu serializes writers on this table. Transactions acquire it
	// exclusively for tables in their write set and shared for tables
	// their integrity checks read; see Database.Begin/BeginWrite.
	// Readers (View and snapshot queries) never touch it — they work
	// against the atomically published snapshot.
	mu sync.RWMutex
	// shards partitions the write lock domain by primary-key range
	// (shard.go): a keyed writer holds mu shared plus its key shards
	// exclusive, a shared reader holds mu shared plus every shard
	// shared, and a whole-table writer holds mu exclusive (conflicting
	// with both without touching the shard locks). The slice length is
	// the database's configured shard count; acquisition order within a
	// table is mu first, then shards ascending.
	shards []sync.RWMutex
	schema *TableSchema
}

func newTable(schema *TableSchema, shardCount int) *table {
	return &table{schema: schema, shards: make([]sync.RWMutex, shardCount)}
}
