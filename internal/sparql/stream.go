package sparql

import (
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"ontoaccess/internal/rdf"
)

// Incremental result writers: the streaming twins of ResultsJSON and
// FormatTable. Each consumes one solution at a time and writes (or
// stages) it immediately, so serializing an N-row result needs O(row)
// transient memory instead of an O(N) solutions slice plus an O(N)
// rendered payload. Output is byte-identical to the buffered
// counterparts — the endpoint parity tests pin this.

// ResultsJSONWriter emits the SPARQL results JSON format
// incrementally. The byte stream is exactly what ResultsJSON produces
// for the same head and solution sequence: same two-space indentation,
// same alphabetical key order inside each binding object, same
// HTML-escaped string encoding. Solutions are encoded into a reused
// scratch buffer and handed to w row by row; nothing is retained, so
// the caller may reuse the Binding between calls.
type ResultsJSONWriter struct {
	w       io.Writer
	vars    []string // head order (written once)
	sorted  []string // alphabetical — encoding/json map-key order
	rows    int
	scratch []byte
	err     error
}

// NewResultsJSONWriter writes the document head and the opening of
// results.bindings, and returns the writer for the rows.
func NewResultsJSONWriter(w io.Writer, vars []string) (*ResultsJSONWriter, error) {
	jw := &ResultsJSONWriter{w: w, vars: vars, scratch: make([]byte, 0, 256)}
	jw.sorted = append([]string(nil), vars...)
	sort.Strings(jw.sorted)
	b := jw.scratch
	b = append(b, "{\n  \"head\": {\n    \"vars\": ["...)
	for i, v := range vars {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, "\n      "...)
		b = appendJSONString(b, v)
	}
	if len(vars) > 0 {
		b = append(b, "\n    "...)
	}
	b = append(b, "]\n  },\n  \"results\": {\n    \"bindings\": ["...)
	jw.scratch = b[:0]
	if _, err := w.Write(b); err != nil {
		jw.err = err
		return nil, err
	}
	return jw, nil
}

// WriteSolution encodes one binding object. Variables absent from the
// binding are omitted, per the specification (and per ResultsJSON).
func (jw *ResultsJSONWriter) WriteSolution(bnd Binding) error {
	if jw.err != nil {
		return jw.err
	}
	b := jw.scratch
	if jw.rows > 0 {
		b = append(b, ',')
	}
	b = append(b, "\n      {"...)
	n := 0
	for _, v := range jw.sorted {
		t, ok := bnd[v]
		if !ok {
			continue
		}
		if n > 0 {
			b = append(b, ',')
		}
		n++
		b = append(b, "\n        "...)
		b = appendJSONString(b, v)
		b = append(b, ": {\n          \"type\": "...)
		switch t.Kind {
		case rdf.KindIRI:
			b = append(b, `"uri"`...)
		case rdf.KindBlank:
			b = append(b, `"bnode"`...)
		default:
			b = append(b, `"literal"`...)
		}
		b = append(b, ",\n          \"value\": "...)
		b = appendJSONString(b, t.Value)
		if t.Kind != rdf.KindIRI && t.Kind != rdf.KindBlank {
			if t.Lang != "" {
				b = append(b, ",\n          \"xml:lang\": "...)
				b = appendJSONString(b, t.Lang)
			} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
				b = append(b, ",\n          \"datatype\": "...)
				b = appendJSONString(b, t.Datatype)
			}
		}
		b = append(b, "\n        }"...)
	}
	if n > 0 {
		b = append(b, "\n      "...)
	}
	b = append(b, '}')
	jw.rows++
	jw.scratch = b[:0]
	if _, err := jw.w.Write(b); err != nil {
		jw.err = err
		return err
	}
	return nil
}

// Close writes the document trailer. It does not close the underlying
// writer.
func (jw *ResultsJSONWriter) Close() error {
	if jw.err != nil {
		return jw.err
	}
	b := jw.scratch
	if jw.rows > 0 {
		b = append(b, "\n    "...)
	}
	b = append(b, "]\n  }\n}"...)
	jw.scratch = b[:0]
	if _, err := jw.w.Write(b); err != nil {
		jw.err = err
		return err
	}
	return nil
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as
// encoding/json encodes it with HTML escaping on (the default the
// buffered path uses): `"`/`\` backslash-escaped, \b \f \n \r \t
// named, other control bytes and < > & as \u00xx, invalid UTF-8 as
// �, and U+2028/U+2029 escaped. Pinned against json.Marshal by
// TestAppendJSONStringMatchesEncodingJSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// TableWriter renders the aligned text table incrementally. Column
// widths depend on every row, so the writer stages rendered cell
// strings (one copy of the payload) and emits the aligned table at
// Close — still strictly less memory than the buffered path's
// solutions slice plus fully rendered string, and it never retains
// the caller's bindings. Output is byte-identical to FormatTable.
type TableWriter struct {
	w      io.Writer
	vars   []string
	widths []int
	rows   [][]string
}

// NewTableWriter stages a table with the given column order.
func NewTableWriter(w io.Writer, vars []string) *TableWriter {
	tw := &TableWriter{w: w, vars: vars, widths: make([]int, len(vars))}
	for i, v := range vars {
		tw.widths[i] = len(v) + 1
	}
	return tw
}

// WriteSolution stages one row; the binding is not retained.
func (tw *TableWriter) WriteSolution(b Binding) error {
	row := make([]string, len(tw.vars))
	for i, v := range tw.vars {
		if t, ok := b[v]; ok {
			row[i] = t.String()
		}
		if len(row[i]) > tw.widths[i] {
			tw.widths[i] = len(row[i])
		}
	}
	tw.rows = append(tw.rows, row)
	return nil
}

// Close writes the aligned table. It does not close the underlying
// writer.
func (tw *TableWriter) Close() error {
	var sb strings.Builder
	for i, v := range tw.vars {
		sb.WriteString(pad("?"+v, tw.widths[i]+2))
	}
	sb.WriteByte('\n')
	if _, err := io.WriteString(tw.w, sb.String()); err != nil {
		return err
	}
	for _, row := range tw.rows {
		sb.Reset()
		for i, cell := range row {
			sb.WriteString(pad(cell, tw.widths[i]+2))
		}
		sb.WriteByte('\n')
		if _, err := io.WriteString(tw.w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}
