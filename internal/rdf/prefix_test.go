package rdf

import "testing"

func TestPrefixExpand(t *testing.T) {
	pm := CommonPrefixes()
	tests := []struct {
		pname   string
		want    string
		wantErr bool
	}{
		{"foaf:name", "http://xmlns.com/foaf/0.1/name", false},
		{"dc:creator", "http://purl.org/dc/elements/1.1/creator", false},
		{"r3m:TableMap", "http://ontoaccess.org/r3m#TableMap", false},
		{"ex:author6", "http://example.org/db/author6", false},
		{"nope:x", "", true},
		{"nocolon", "", true},
	}
	for _, tc := range tests {
		got, err := pm.Expand(tc.pname)
		if (err != nil) != tc.wantErr {
			t.Errorf("Expand(%q) err = %v, wantErr %v", tc.pname, err, tc.wantErr)
			continue
		}
		if got != tc.want {
			t.Errorf("Expand(%q) = %q, want %q", tc.pname, got, tc.want)
		}
	}
}

func TestPrefixCompact(t *testing.T) {
	pm := NewPrefixMap()
	pm.Set("ex", "http://example.org/")
	pm.Set("exdb", "http://example.org/db/")
	got, ok := pm.Compact("http://example.org/db/author6")
	if !ok || got != "exdb:author6" {
		t.Errorf("Compact = %q, %v; want exdb:author6 (longest namespace wins)", got, ok)
	}
	got, ok = pm.Compact("http://example.org/thing")
	if !ok || got != "ex:thing" {
		t.Errorf("Compact = %q, %v", got, ok)
	}
	if _, ok := pm.Compact("http://other.org/x"); ok {
		t.Error("Compact must fail for unknown namespace")
	}
	// Local names with unsafe characters must not be compacted.
	if _, ok := pm.Compact("http://example.org/a/b#c"); ok {
		t.Error("Compact must refuse unsafe local names")
	}
}

func TestPrefixBindingsSortedAndClone(t *testing.T) {
	pm := NewPrefixMap()
	pm.Set("b", "http://b/")
	pm.Set("a", "http://a/")
	bs := pm.Bindings()
	if len(bs) != 2 || bs[0][0] != "a" || bs[1][0] != "b" {
		t.Errorf("Bindings = %v", bs)
	}
	c := pm.Clone()
	c.Set("z", "http://z/")
	if pm.Len() != 2 || c.Len() != 3 {
		t.Error("Clone must be independent")
	}
	if iri, ok := pm.Get("a"); !ok || iri != "http://a/" {
		t.Error("Get failed")
	}
	if _, ok := pm.Get("zz"); ok {
		t.Error("Get must fail for unknown prefix")
	}
}

func TestExpandCompactRoundTrip(t *testing.T) {
	pm := CommonPrefixes()
	for _, pname := range []string{"foaf:Person", "dc:title", "ont:pubYear", "r3m:hasTable", "xsd:int"} {
		iri, err := pm.Expand(pname)
		if err != nil {
			t.Fatalf("Expand(%q): %v", pname, err)
		}
		back, ok := pm.Compact(iri)
		if !ok || back != pname {
			t.Errorf("round trip %q -> %q -> %q", pname, iri, back)
		}
	}
}

func TestIsSafeLocalName(t *testing.T) {
	safe := []string{"", "a", "author6", "a_b-c.d", "X9"}
	unsafe := []string{".a", "a.", "-a", "a/b", "a#b", "a b", "ü"}
	for _, s := range safe {
		if !isSafeLocalName(s) {
			t.Errorf("isSafeLocalName(%q) = false, want true", s)
		}
	}
	for _, s := range unsafe {
		if isSafeLocalName(s) {
			t.Errorf("isSafeLocalName(%q) = true, want false", s)
		}
	}
}
