package rdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Named branches (refs) over the commit DAG.
//
// A branch is a named ref pointing at a head snapshot plus the merge
// base it last converged with main at. Creating a branch forks the
// current main head by pointer — structural sharing makes that O(1) —
// and branch writers then derive new heads exactly like main writers
// do, except that the publish moves the ref instead of the database's
// main snapshot pointer. Branch write transactions take no table
// locks: the per-branch mutex serializes branch writers, and a branch
// head is unreachable from any other transaction's lock set, so main
// writers and writers of other branches proceed concurrently.
//
// Branch create, drop, branch commits and merges all consume global
// commit sequence numbers and are WAL-logged ('R', 'Q', 'B', 'M'
// records; persist.go), so recovery rebuilds the DAG exactly. DDL is
// main-only: a branch pins the catalog of the snapshot it forked.

// MainBranch is the reserved name of the trunk — the branch the
// database's snapshot pointer publishes.
const MainBranch = "main"

// branch is one named ref. head and base are atomic so lock-free
// readers can pin them; mu serializes writers (branch commits and
// merges targeting this branch).
type branch struct {
	name      string
	mu        sync.Mutex
	head      atomic.Pointer[dbSnapshot]
	base      atomic.Pointer[dbSnapshot]
	createdAt uint64
	// dropped flips under pubMu when the ref is removed, failing any
	// in-flight commit against the branch at publish time.
	dropped atomic.Bool
}

// BranchError reports a branch operation against a missing, duplicate
// or invalid ref.
type BranchError struct {
	Branch string
	Reason string
}

// Error implements error.
func (e *BranchError) Error() string {
	return fmt.Sprintf("rdb: branch %q: %s", e.Branch, e.Reason)
}

// NonHeadWriteError reports a write addressed at a read-only target —
// an AS OF version, or a snapshot that is not a live branch head.
// Writes are only valid against the head of main or of a named branch.
type NonHeadWriteError struct {
	Target string
}

// Error implements error.
func (e *NonHeadWriteError) Error() string {
	return fmt.Sprintf("rdb: cannot write to %s: writes must target a branch head", e.Target)
}

// validBranchName enforces the ref naming rules: nonempty, not the
// reserved trunk name, at most 64 bytes of letters, digits, dot, dash
// and underscore.
func validBranchName(name string) error {
	if name == "" {
		return &BranchError{Branch: name, Reason: "empty name"}
	}
	if name == MainBranch {
		return &BranchError{Branch: name, Reason: "reserved name"}
	}
	if len(name) > 64 {
		return &BranchError{Branch: name, Reason: "name longer than 64 bytes"}
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '.' || c == '-' || c == '_' {
			continue
		}
		return &BranchError{Branch: name, Reason: fmt.Sprintf("invalid character %q", c)}
	}
	return nil
}

// CreateBranch forks a named branch off the current main head. The
// fork is O(1): the new ref shares every table version with the head
// snapshot.
func (db *Database) CreateBranch(name string) error {
	if err := validBranchName(name); err != nil {
		return err
	}
	db.mu.RLock() // exclude DDL: it assigns sequence numbers outside pubMu
	defer db.mu.RUnlock()
	db.refMu.Lock()
	defer db.refMu.Unlock()
	if _, exists := db.refs[name]; exists {
		return &BranchError{Branch: name, Reason: "already exists"}
	}
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	head := db.snap.Load()
	seq := db.seq.Load() + 1
	if db.persist != nil {
		if err := db.persist.append(encodeBranchCreateRecord(seq, name, head.version)); err != nil {
			return err
		}
	}
	db.seq.Store(seq)
	b := &branch{name: name, createdAt: seq}
	b.head.Store(head)
	b.base.Store(head)
	db.refs[name] = b
	return nil
}

// DropBranch removes a named branch. A branch transaction in flight
// when the ref disappears fails at Commit instead of resurrecting it.
func (db *Database) DropBranch(name string) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.refMu.Lock()
	defer db.refMu.Unlock()
	b, exists := db.refs[name]
	if !exists {
		return &BranchError{Branch: name, Reason: "no such branch"}
	}
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	seq := db.seq.Load() + 1
	if db.persist != nil {
		if err := db.persist.append(encodeBranchDropRecord(seq, name)); err != nil {
			return err
		}
	}
	db.seq.Store(seq)
	b.dropped.Store(true)
	delete(db.refs, name)
	return nil
}

// BranchInfo describes one named ref for ListBranches and the
// /branches admin surface.
type BranchInfo struct {
	// Name is the ref name; Head/HeadParent the branch head's commit
	// and its parent; Base the snapshot the branch last diverged from
	// main at (fork point or last merge); CreatedAt the sequence number
	// the create consumed.
	Name       string
	Head       uint64
	HeadParent uint64
	Base       uint64
	CreatedAt  uint64
}

// ListBranches returns the live refs sorted by name.
func (db *Database) ListBranches() []BranchInfo {
	db.refMu.RLock()
	defer db.refMu.RUnlock()
	out := make([]BranchInfo, 0, len(db.refs))
	for _, b := range db.refs {
		h := b.head.Load()
		out = append(out, BranchInfo{
			Name:       b.name,
			Head:       h.version,
			HeadParent: h.parent,
			Base:       b.base.Load().version,
			CreatedAt:  b.createdAt,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookupBranch resolves a live ref by name.
func (db *Database) lookupBranch(name string) (*branch, error) {
	db.refMu.RLock()
	b := db.refs[name]
	db.refMu.RUnlock()
	if b == nil {
		return nil, &BranchError{Branch: name, Reason: "no such branch"}
	}
	return b, nil
}

// BeginBranch starts a write transaction against the head of the
// named branch. It blocks until the branch's writer mutex is
// available; the transaction covers every table of the branch
// snapshot (no table locks are taken — see the branch type).
func (db *Database) BeginBranch(name string) (*Tx, error) {
	b, err := db.lookupBranch(name)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	db.mu.RLock() // keep DDL out: branch publishes consume sequence numbers
	if b.dropped.Load() {
		db.mu.RUnlock()
		b.mu.Unlock()
		return nil, &BranchError{Branch: name, Reason: "no such branch"}
	}
	return &Tx{
		db:      db,
		snap:    b.head.Load(),
		branch:  b,
		owner:   newOwner(),
		capture: db.persist != nil,
	}, nil
}

// publishBranch installs a branch transaction's derived versions as
// the branch's next head. The caller holds the branch mutex, so the
// head cannot have moved since the transaction pinned it — no rebase
// is ever needed. The WAL record ('B') is fsynced before the ref
// moves, mirroring publish's write-ahead rule.
func (db *Database) publishBranch(b *branch, updated map[string]*tableVersion, changes []walChange) error {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	if b.dropped.Load() {
		return &BranchError{Branch: b.name, Reason: "dropped while the transaction was open"}
	}
	cur := b.head.Load()
	ns := &dbSnapshot{
		version:      db.seq.Load() + 1,
		parent:       cur.version,
		branch:       b.name,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	for k, v := range cur.tables {
		ns.tables[k] = v
	}
	for k, v := range updated {
		v.owner = nil // freeze before sharing
		v.asOf = ns.version
		ns.tables[k] = v
	}
	if db.persist != nil {
		if err := db.persist.append(encodeBranchCommitRecord(ns.version, b.name, changes)); err != nil {
			return err
		}
	}
	db.seq.Store(ns.version)
	b.head.Store(ns)
	db.hist.record(ns)
	if db.persist != nil {
		db.persist.maybeCheckpoint(db)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Read targets.

// ReadTarget addresses the state a read runs against: the zero value
// is the main head, AsOf pins a retained historical version (by global
// commit seq), Branch pins the head of a named ref. Setting both is an
// error — a version already identifies a unique commit across all
// branches.
type ReadTarget struct {
	AsOf   uint64
	Branch string
}

// IsHead reports whether the target is the live main head.
func (t ReadTarget) IsHead() bool {
	return t.AsOf == 0 && (t.Branch == "" || t.Branch == MainBranch)
}

// String renders the target for error messages.
func (t ReadTarget) String() string {
	switch {
	case t.AsOf != 0:
		return fmt.Sprintf("version %d", t.AsOf)
	case t.Branch != "" && t.Branch != MainBranch:
		return fmt.Sprintf("branch %q", t.Branch)
	default:
		return "head"
	}
}

// Snapshot is a pinned, immutable read handle over one published
// database state — the resolution of a ReadTarget. It stays valid
// (and byte-stable) for as long as the caller holds it, regardless of
// concurrent writes, retention evictions or branch drops.
type Snapshot struct {
	db *Database
	s  *dbSnapshot
}

// Resolve pins the snapshot a read target addresses: the main head for
// the zero target, a retained historical version for AsOf, a branch
// head for Branch.
func (db *Database) Resolve(t ReadTarget) (*Snapshot, error) {
	switch {
	case t.AsOf != 0 && t.Branch != "" && t.Branch != MainBranch:
		return nil, &BranchError{Branch: t.Branch, Reason: "a read target cannot combine asOf and branch"}
	case t.AsOf != 0:
		if cur := db.snap.Load(); cur.version == t.AsOf {
			return &Snapshot{db: db, s: cur}, nil
		}
		if s, ok := db.hist.lookup(t.AsOf); ok {
			return &Snapshot{db: db, s: s}, nil
		}
		return nil, &VersionError{Version: t.AsOf, Evicted: t.AsOf <= db.seq.Load()}
	case t.Branch != "" && t.Branch != MainBranch:
		b, err := db.lookupBranch(t.Branch)
		if err != nil {
			return nil, err
		}
		return &Snapshot{db: db, s: b.head.Load()}, nil
	default:
		return &Snapshot{db: db, s: db.snap.Load()}, nil
	}
}

// Version returns the pinned snapshot's commit version.
func (s *Snapshot) Version() uint64 { return s.s.version }

// Parent returns the commit version the pinned snapshot was derived
// from (0 for the initial empty snapshot).
func (s *Snapshot) Parent() uint64 { return s.s.parent }

// Branch returns the ref name the pinned snapshot was published on.
func (s *Snapshot) Branch() string { return s.s.branch }

// View runs fn inside a lock-free read-only transaction pinned to this
// snapshot, exactly like Database.View but against the resolved target
// instead of the live head.
func (s *Snapshot) View(fn func(tx *Tx) error) error {
	tx := &Tx{db: s.db, snap: s.s, readonly: true}
	defer tx.Rollback()
	return fn(tx)
}

// ViewAt runs fn against the retained snapshot published as the given
// version — Database.View, time-traveled.
func (db *Database) ViewAt(version uint64, fn func(tx *Tx) error) error {
	s, err := db.Resolve(ReadTarget{AsOf: version})
	if err != nil {
		return err
	}
	return s.View(fn)
}

// ViewBranch runs fn against the current head of the named branch.
func (db *Database) ViewBranch(name string, fn func(tx *Tx) error) error {
	s, err := db.Resolve(ReadTarget{Branch: name})
	if err != nil {
		return err
	}
	return s.View(fn)
}
