package core

import (
	"reflect"
	"sort"
	"testing"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/sparql"
)

// solutionSet renders solutions order-insensitively: the native
// evaluator emits groups in first-appearance order while the SQL
// engines emit them in scan order, so cross-engine comparison must
// treat the result as a multiset.
func solutionSet(sols sparql.Solutions) []string {
	out := make([]string, len(sols))
	for i, s := range sols {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}

// TestHavingEngineParity is the HAVING differential regime: every
// query runs through the compiled mediator, the uncompiled baseline
// and the native SPARQL evaluator over the virtual view, and all
// three must agree. Compiled and baseline must match byte for byte
// (same solutions in the same order, same generated SQL); the native
// referee is compared as a multiset.
//
// Fixture groups (GROUP BY ?l over ev:live):
//
//	false: alpha(y=1998,r=3), gamma(y=2010,r=2020) — COUNT 2, SUM(y) 4008, AVG 2004, MIN(r) 3
//	true:  beta(y=2005,r=1),  delta(y=2007,r=2007) — COUNT 2, SUM(y) 4012, AVG 2006, MIN(r) 1
func TestHavingEngineParity(t *testing.T) {
	m := eventMediator(t, Options{})
	baseline := eventMediator(t, Options{DisablePlanCache: true})
	for _, tc := range []struct {
		name string
		q    string
		rows int
		// fallback marks shapes that must refuse SQL lowering and be
		// answered by the native evaluator (empty QueryResult.SQL).
		fallback bool
	}{
		{"count threshold keeps all groups",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (COUNT(*) >= 2)`,
			2, false},
		{"hidden accumulator: SUM constrained but not projected",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (SUM(?y) > 4010)`,
			1, false},
		{"decimal threshold on hidden SUM",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (SUM(?y) > 4010.5)`,
			1, false},
		{"conjunction over projected and hidden aggregates",
			`SELECT ?l (SUM(?y) AS ?s) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (COUNT(*) >= 2 && SUM(?y) <= 4010)`,
			1, false},
		{"two constraint groups",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:rank ?r ; ev:live ?l . } GROUP BY ?l HAVING (AVG(?y) >= 2000) (MIN(?r) < 2)`,
			1, false},
		{"inequality on AVG float formatting",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (AVG(?y) != 2004)`,
			1, false},
		{"empty input: synthetic group dropped",
			`SELECT (COUNT(*) AS ?n) WHERE { ?e ev:year ?y . FILTER (?y > 3000) } HAVING (COUNT(*) > 0)`,
			0, false},
		{"empty input: synthetic group kept",
			`SELECT (COUNT(*) AS ?n) WHERE { ?e ev:year ?y . FILTER (?y > 3000) } HAVING (COUNT(*) = 0)`,
			1, false},
		// MIN over a VARCHAR attribute is outside the aggregate lowering
		// subset (non-COUNT aggregates need numeric storage), so string
		// HAVING comparisons run on the native evaluator.
		{"string comparison on MIN falls back to native",
			`SELECT ?l (MIN(?na) AS ?mn) WHERE { ?e ev:name ?na ; ev:live ?l . } GROUP BY ?l HAVING (MIN(?na) > "alpha")`,
			1, true},
		// Mixed numeric aggregate vs string literal: neither side's rule
		// matches, the comparison is false, every group drops — in both
		// engines, by the shared lexical comparison rule.
		{"mixed-form comparison drops all groups",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:year ?y ; ev:live ?l . } GROUP BY ?l HAVING (SUM(?y) > "foo")`,
			0, false},
		// ev:code carries a custom datatype, which the lowering refuses
		// (its SPARQL comparison rules are not plain string order in
		// general); the native evaluator answers.
		{"custom-datatype argument falls back to native",
			`SELECT ?l (COUNT(*) AS ?n) WHERE { ?e ev:code ?c ; ev:live ?l . } GROUP BY ?l HAVING (MIN(?c) > "C1")`,
			1, true},
	} {
		src := eventPrologue + tc.q
		got, err := m.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := baseline.Query(src)
		if err != nil {
			t.Fatalf("%s: baseline: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got.Solutions, want.Solutions) {
			t.Errorf("%s:\ncompiled %v\nbaseline %v", tc.name, got.Solutions, want.Solutions)
		}
		if got.SQL != want.SQL {
			t.Errorf("%s: compiled SQL %q, baseline SQL %q", tc.name, got.SQL, want.SQL)
		}
		if tc.fallback != (got.SQL == "") {
			t.Errorf("%s: fallback=%v but SQL=%q", tc.name, tc.fallback, got.SQL)
		}
		if len(got.Solutions) != tc.rows {
			t.Errorf("%s: %d solutions, want %d:\n%v", tc.name, len(got.Solutions), tc.rows, got.Solutions)
		}
		parsed, err := sparql.ParseQuery(src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m.DB().View(func(tx *rdb.Tx) error {
			ns, err := sparql.Eval(m.VirtualGraph(tx), parsed)
			if err != nil {
				t.Fatalf("%s: virtual eval: %v", tc.name, err)
			}
			if !reflect.DeepEqual(solutionSet(ns), solutionSet(got.Solutions)) {
				t.Errorf("%s:\ncompiled %v\nnative   %v", tc.name, got.Solutions, ns)
			}
			return nil
		})
	}
}

// TestHavingParseErrors pins the parser-level contract: HAVING needs
// an aggregate query and a parenthesized aggregate comparison.
func TestHavingParseErrors(t *testing.T) {
	for _, q := range []string{
		`SELECT ?n WHERE { ?e ev:name ?n . } HAVING (COUNT(*) > 1)`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?e ev:name ?n . } HAVING COUNT(*) > 1`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?e ev:name ?n . } HAVING (?n > 1)`,
	} {
		if _, err := sparql.ParseQuery(eventPrologue + q); err == nil {
			t.Errorf("parsed but should not have:\n%s", q)
		}
	}
}
