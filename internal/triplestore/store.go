// Package triplestore implements a native in-memory RDF triple store
// with SPO/POS/OSP indexes.
//
// In the reproduction it plays two roles:
//
//  1. It is the baseline comparator: the paper's introduction argues
//     for mediation over native triple storage partly on performance
//     and compatibility grounds (citing the Berlin SPARQL benchmark
//     results, reference [7]). Benchmarks B1/B6 run the same update
//     and query streams against this store and against the OntoAccess
//     mediator.
//  2. It provides the reference semantics for SPARQL/Update: a MODIFY
//     executed through the mediator must leave the exported RDF view
//     of the database in the same state a native store would reach
//     (the bijective-mapping property discussed in the paper's
//     related-work section on view updates).
//
// The store implements sparql.Matcher, so the SPARQL engine evaluates
// queries over it directly.
package triplestore

import (
	"sync"

	"ontoaccess/internal/rdf"
)

// Store is an indexed set of triples, safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	spo map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}
	pos map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}
	osp map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}
	n   int
}

// New returns an empty store.
func New() *Store {
	return &Store{
		spo: make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}),
		pos: make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}),
		osp: make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}),
	}
}

// FromGraph builds a store containing all triples of g.
func FromGraph(g *rdf.Graph) *Store {
	s := New()
	g.Each(func(t rdf.Triple) bool {
		s.Add(t)
		return true
	})
	return s
}

func idxAdd(idx map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}, a, b, c rdf.Term) bool {
	m2, ok := idx[a]
	if !ok {
		m2 = make(map[rdf.Term]map[rdf.Term]struct{})
		idx[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[rdf.Term]struct{})
		m2[b] = m3
	}
	if _, exists := m3[c]; exists {
		return false
	}
	m3[c] = struct{}{}
	return true
}

func idxRemove(idx map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{}, a, b, c rdf.Term) bool {
	m2, ok := idx[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, exists := m3[c]; !exists {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(idx, a)
		}
	}
	return true
}

// Add inserts a triple, reporting whether it was new.
func (s *Store) Add(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !idxAdd(s.spo, t.S, t.P, t.O) {
		return false
	}
	idxAdd(s.pos, t.P, t.O, t.S)
	idxAdd(s.osp, t.O, t.S, t.P)
	s.n++
	return true
}

// Remove deletes a triple, reporting whether it was present.
func (s *Store) Remove(t rdf.Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !idxRemove(s.spo, t.S, t.P, t.O) {
		return false
	}
	idxRemove(s.pos, t.P, t.O, t.S)
	idxRemove(s.osp, t.O, t.S, t.P)
	s.n--
	return true
}

// Contains reports whether the triple is present.
func (s *Store) Contains(t rdf.Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m2, ok := s.spo[t.S]
	if !ok {
		return false
	}
	m3, ok := m2[t.P]
	if !ok {
		return false
	}
	_, ok = m3[t.O]
	return ok
}

// Len returns the number of triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

// Clear removes all triples.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spo = make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{})
	s.pos = make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{})
	s.osp = make(map[rdf.Term]map[rdf.Term]map[rdf.Term]struct{})
	s.n = 0
}

// Match streams every triple matching the pattern to fn; zero-valued
// terms in the pattern act as wildcards. Iteration stops early when
// fn returns false. The most selective index available for the bound
// positions is used.
func (s *Store) Match(pattern rdf.Triple, fn func(rdf.Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sB, pB, oB := !pattern.S.IsZero(), !pattern.P.IsZero(), !pattern.O.IsZero()
	switch {
	case sB && pB && oB:
		if m2, ok := s.spo[pattern.S]; ok {
			if m3, ok := m2[pattern.P]; ok {
				if _, ok := m3[pattern.O]; ok {
					fn(pattern)
				}
			}
		}
	case sB && pB:
		if m2, ok := s.spo[pattern.S]; ok {
			for o := range m2[pattern.P] {
				if !fn(rdf.Triple{S: pattern.S, P: pattern.P, O: o}) {
					return
				}
			}
		}
	case sB && oB:
		if m2, ok := s.osp[pattern.O]; ok {
			for p := range m2[pattern.S] {
				if !fn(rdf.Triple{S: pattern.S, P: p, O: pattern.O}) {
					return
				}
			}
		}
	case pB && oB:
		if m2, ok := s.pos[pattern.P]; ok {
			for sub := range m2[pattern.O] {
				if !fn(rdf.Triple{S: sub, P: pattern.P, O: pattern.O}) {
					return
				}
			}
		}
	case sB:
		if m2, ok := s.spo[pattern.S]; ok {
			for p, m3 := range m2 {
				for o := range m3 {
					if !fn(rdf.Triple{S: pattern.S, P: p, O: o}) {
						return
					}
				}
			}
		}
	case pB:
		if m2, ok := s.pos[pattern.P]; ok {
			for o, m3 := range m2 {
				for sub := range m3 {
					if !fn(rdf.Triple{S: sub, P: pattern.P, O: o}) {
						return
					}
				}
			}
		}
	case oB:
		if m2, ok := s.osp[pattern.O]; ok {
			for sub, m3 := range m2 {
				for p := range m3 {
					if !fn(rdf.Triple{S: sub, P: p, O: pattern.O}) {
						return
					}
				}
			}
		}
	default:
		for sub, m2 := range s.spo {
			for p, m3 := range m2 {
				for o := range m3 {
					if !fn(rdf.Triple{S: sub, P: p, O: o}) {
						return
					}
				}
			}
		}
	}
}

// CountMatches returns how many triples match the pattern.
func (s *Store) CountMatches(pattern rdf.Triple) int {
	n := 0
	s.Match(pattern, func(rdf.Triple) bool { n++; return true })
	return n
}

// Graph materializes all triples into a Graph.
func (s *Store) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	s.Match(rdf.Triple{}, func(t rdf.Triple) bool {
		g.Add(t)
		return true
	})
	return g
}
