package r3m

import (
	"fmt"
	"strings"
)

// Validate checks a mapping for internal consistency and for the
// updatability (bijectivity) conditions the paper's related-work
// section derives from the view-update literature: if the mapping is
// not invertible, updates on the RDF view cannot be propagated
// unambiguously to the base tables. The enforced rules are:
//
//  1. table names are unique across TableMaps and LinkTableMaps;
//  2. every table maps to a distinct ontology class;
//  3. within a table, attribute names and mapped properties are
//     unique, and properties do not collide with link-table
//     properties;
//  4. every TableMap has at least one PrimaryKey attribute, and every
//     URI pattern references exactly the primary key attributes (so
//     the URI identifies the row and vice versa);
//  5. URI patterns compile and are mutually distinguishable;
//  6. every ForeignKey reference resolves to a known TableMap, and
//     object properties are only mapped from foreign key attributes;
//  7. link-table subject/object attributes carry resolvable
//     ForeignKey constraints.
func (m *Mapping) Validate() error {
	if m.byName == nil {
		m.index()
	}
	if len(m.Tables) == 0 {
		return fmt.Errorf("r3m: mapping contains no table maps")
	}

	names := map[string]string{} // lower name -> kind
	classes := map[string]string{}
	props := map[string]string{} // property IRI -> "table.attr" or "link table"
	for _, lt := range m.LinkTables {
		props[lt.Property.Value] = "link table " + lt.Name
	}

	for _, tm := range m.Tables {
		lower := strings.ToLower(tm.Name)
		if prev, dup := names[lower]; dup {
			return fmt.Errorf("r3m: table %q mapped twice (%s)", tm.Name, prev)
		}
		names[lower] = "TableMap"

		if prev, dup := classes[tm.Class.Value]; dup {
			return fmt.Errorf("r3m: class %s mapped from both %s and %s — not invertible",
				tm.Class, prev, tm.Name)
		}
		classes[tm.Class.Value] = tm.Name

		attrNames := map[string]bool{}
		tableProps := map[string]string{}
		pkCount := 0
		for _, a := range tm.Attributes {
			al := strings.ToLower(a.Name)
			if attrNames[al] {
				return fmt.Errorf("r3m: table %q: attribute %q mapped twice", tm.Name, a.Name)
			}
			attrNames[al] = true
			if a.HasConstraint(ConstraintPrimaryKey) {
				pkCount++
			}
			if !a.Property.IsZero() {
				if prev, dup := tableProps[a.Property.Value]; dup {
					return fmt.Errorf("r3m: table %q: property %s mapped from both %q and %q — not invertible",
						tm.Name, a.Property, prev, a.Name)
				}
				tableProps[a.Property.Value] = a.Name
				// The same property may appear on different classes
				// (the subject's table disambiguates), but it must not
				// collide with a link-table property, which is
				// resolved without a class context.
				if owner, dup := props[a.Property.Value]; dup && strings.HasPrefix(owner, "link table") {
					return fmt.Errorf("r3m: property %s used by both %s and attribute %s.%s",
						a.Property, owner, tm.Name, a.Name)
				}
			}
			// Object properties either follow a foreign key (values are
			// instance URIs of the referenced table) or are IRI-valued
			// data attributes (optionally with a ValuePrefix, like the
			// paper's mailto: mailboxes). Both are invertible; a
			// ValuePrefix on a foreign key attribute is contradictory.
			if a.ValuePrefix != "" {
				if _, ok := a.ForeignKeyRef(); ok {
					return fmt.Errorf("r3m: table %q: attribute %q has both a ForeignKey and a valuePrefix",
						tm.Name, a.Name)
				}
				if !a.IsObject {
					return fmt.Errorf("r3m: table %q: attribute %q has a valuePrefix but maps to a data property",
						tm.Name, a.Name)
				}
			}
			if ref, ok := a.ForeignKeyRef(); ok {
				if _, found := m.ResolveTableRef(ref); !found {
					return fmt.Errorf("r3m: table %q: attribute %q references unknown table map %q",
						tm.Name, a.Name, ref)
				}
			}
		}
		if pkCount == 0 {
			return fmt.Errorf("r3m: table %q has no PrimaryKey attribute — updates cannot address rows", tm.Name)
		}

		// URI pattern must reference exactly the primary key attributes.
		patAttrs, err := tm.PatternAttributes(m.URIPrefix)
		if err != nil {
			return err
		}
		if len(patAttrs) == 0 {
			return fmt.Errorf("r3m: table %q: URI pattern %q contains no attribute placeholder — instances are indistinguishable",
				tm.Name, tm.URIPattern)
		}
		patSet := map[string]bool{}
		for _, pa := range patAttrs {
			if !attrNames[strings.ToLower(pa)] {
				return fmt.Errorf("r3m: table %q: URI pattern references unknown attribute %q", tm.Name, pa)
			}
			patSet[strings.ToLower(pa)] = true
		}
		for _, a := range tm.PrimaryKeyAttributes() {
			if !patSet[strings.ToLower(a.Name)] {
				return fmt.Errorf("r3m: table %q: URI pattern %q omits primary key attribute %q — URIs would not be unique",
					tm.Name, tm.URIPattern, a.Name)
			}
		}
	}

	for _, lt := range m.LinkTables {
		lower := strings.ToLower(lt.Name)
		if prev, dup := names[lower]; dup {
			return fmt.Errorf("r3m: table %q mapped twice (%s and LinkTableMap)", lt.Name, prev)
		}
		names[lower] = "LinkTableMap"
		for _, pair := range []struct {
			role string
			am   *AttributeMap
		}{{"subject", lt.SubjectAttr}, {"object", lt.ObjectAttr}} {
			if pair.am == nil {
				return fmt.Errorf("r3m: link table %q lacks a %s attribute", lt.Name, pair.role)
			}
			ref, ok := pair.am.ForeignKeyRef()
			if !ok {
				return fmt.Errorf("r3m: link table %q: %s attribute %q lacks a ForeignKey constraint",
					lt.Name, pair.role, pair.am.Name)
			}
			if _, found := m.ResolveTableRef(ref); !found {
				return fmt.Errorf("r3m: link table %q: %s attribute references unknown table map %q",
					lt.Name, pair.role, ref)
			}
		}
	}

	// Patterns must be distinguishable. Prefix-nested patterns (the
	// paper's own pub / publisher / pubtype) are resolved by the
	// longest-literal-match rule in IdentifyTable, so only true ties
	// are rejected: a probe URI built from one pattern matching a
	// different pattern with the same literal length means no rule
	// can tell the two tables apart.
	for _, tm := range m.Tables {
		cp, err := tm.compiled(m.URIPrefix)
		if err != nil {
			return err
		}
		probeVals := map[string]string{}
		for _, a := range cp.attrNames() {
			probeVals[a] = "0"
		}
		probe, err := cp.build(probeVals)
		if err != nil {
			return err
		}
		for _, other := range m.Tables {
			if other == tm {
				continue
			}
			ocp, err := other.compiled(m.URIPrefix)
			if err != nil {
				return err
			}
			if _, matches := ocp.match(probe); matches && ocp.literalLen == cp.literalLen {
				return fmt.Errorf("r3m: URI patterns of tables %q (%s) and %q (%s) are ambiguous: %q matches both",
					tm.Name, tm.URIPattern, other.Name, other.URIPattern, probe)
			}
		}
	}
	return nil
}
