// Command ontoaccessd runs the OntoAccess HTTP mediation endpoint
// (paper Section 6): an embedded relational database fronted by a
// SPARQL/Update + SPARQL interface through an R3M mapping.
//
// With no flags it serves the paper's publication use case (Figure 1
// schema, Table 1 mapping) from memory. Passing -data-dir makes the
// store durable: committed writes go to a write-ahead log before they
// are acknowledged, and a restart (clean or after a crash) recovers
// the acknowledged state from the checkpoint + WAL. Custom
// deployments pass their own DDL and mapping:
//
//	ontoaccessd -addr :8080 -data-dir /var/lib/ontoaccess
//	ontoaccessd -addr :8080 -ddl schema.sql -mapping mapping.ttl
//
// Routes: POST /update, GET/POST /sparql, GET /export, GET /mapping,
// GET /healthz, GET/POST /branches. The read routes accept
// ?asOf=<version> and ?branch=<name> time-travel targets; -history
// bounds how many historical snapshots AS OF reads can reach, and
// -shards tunes per-table write parallelism.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ontoaccess/internal/core"
	"ontoaccess/internal/endpoint"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	ddlPath := flag.String("ddl", "", "SQL DDL file (default: the paper's Figure 1 schema)")
	mappingPath := flag.String("mapping", "", "R3M mapping Turtle file (default: the paper's Table 1 mapping)")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty runs memory-only")
	seed := flag.Bool("seed", false, "preload the paper's Listing 15 data set")
	shards := flag.Int("shards", 0, "key-range lock shards per table, a power of two (0 = default)")
	history := flag.Int("history", 0, "retained snapshots for ?asOf= reads (0 = default, negative disables)")
	maxInFlight := flag.Int("max-inflight", 256, "bound on concurrent /sparql, /export and /update requests; excess requests get fast 503s (0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline on the gated routes (0 = none)")
	readTimeout := flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout: slow request senders are cut off (0 = none)")
	writeTimeout := flag.Duration("write-timeout", 2*time.Minute, "http.Server WriteTimeout: slow response readers cannot hold a worker forever (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 = none)")
	flag.Parse()

	dbOpts := rdb.Options{DataDir: *dataDir, ShardCount: *shards, HistoryDepth: *history}
	m, recovered, err := buildMediator(*ddlPath, *mappingPath, dbOpts)
	if err != nil {
		log.Fatalf("ontoaccessd: %v", err)
	}
	if recovered {
		st := m.DurabilityStats()
		hs := m.DB().HistoryStats()
		log.Printf("recovered %d rows from %s (%d WAL records replayed, checkpoint at version %d, %d branches)",
			m.DB().TotalRows(), *dataDir, st.RecoveredRecords, st.LastCheckpointVersion, hs.Branches)
	}
	if *seed && !recovered {
		if _, err := m.ExecuteString(workload.Listing15); err != nil {
			log.Fatalf("ontoaccessd: seeding: %v", err)
		}
		log.Printf("seeded the Listing 15 data set (%d rows)", m.DB().TotalRows())
	}
	// On SIGINT/SIGTERM, checkpoint and close the WAL so the next
	// start recovers without replay. A hard kill is also safe — that
	// is the point of the WAL — it just replays more on reopen.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		if err := m.Close(); err != nil {
			log.Printf("ontoaccessd: shutdown: %v", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
	srv := endpoint.NewWithOptions(m, endpoint.Options{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
	})
	// The server-level timeouts defend the accept loop: ReadTimeout
	// bounds slow senders, WriteTimeout bounds slow readers (a stalled
	// client gets its connection closed instead of pinning a streaming
	// response worker), IdleTimeout reaps dead keep-alives.
	hs := &http.Server{
		Addr:         *addr,
		Handler:      srv,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
	}
	log.Printf("OntoAccess endpoint listening on %s (tables: %v)", *addr, m.DB().TableNames())
	if err := hs.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func buildMediator(ddlPath, mappingPath string, dbOpts rdb.Options) (*core.Mediator, bool, error) {
	if ddlPath == "" && mappingPath == "" {
		return workload.NewMediatorWithOptions(core.Options{}, dbOpts)
	}
	if ddlPath == "" || mappingPath == "" {
		return nil, false, fmt.Errorf("provide both -ddl and -mapping, or neither")
	}
	ddl, err := os.ReadFile(ddlPath)
	if err != nil {
		return nil, false, err
	}
	db, recovered, err := rdb.Open("ontoaccess", dbOpts)
	if err != nil {
		return nil, false, err
	}
	// Recovery replays the original DDL from the checkpoint/WAL, so
	// the schema file only applies to a fresh data directory.
	if !recovered {
		if _, err := sqlexec.Run(db, string(ddl)); err != nil {
			db.Close()
			return nil, false, fmt.Errorf("applying DDL: %w", err)
		}
	}
	ttl, err := os.ReadFile(mappingPath)
	if err != nil {
		db.Close()
		return nil, false, err
	}
	mapping, err := r3m.Load(string(ttl))
	if err != nil {
		db.Close()
		return nil, false, err
	}
	m, err := core.New(db, mapping, core.Options{})
	if err != nil {
		db.Close()
		return nil, false, err
	}
	return m, recovered, nil
}
