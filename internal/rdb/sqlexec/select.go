package sqlexec

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
)

// env is the row environment for expression evaluation: one entry per
// table in FROM/JOIN order.
type env struct {
	tables []envTable
}

type envTable struct {
	name   string // effective name (alias if given), lower-cased
	schema *rdb.TableSchema
	row    []rdb.Value
}

func singleEnv(name string, schema *rdb.TableSchema, row []rdb.Value) *env {
	return &env{tables: []envTable{{name: strings.ToLower(name), schema: schema, row: row}}}
}

// resolve finds the value of a column reference, enforcing uniqueness
// for unqualified names across joined tables.
func (e *env) resolve(ref sqlparser.ColRef) (rdb.Value, error) {
	if ref.Table != "" {
		want := strings.ToLower(ref.Table)
		for _, t := range e.tables {
			if t.name == want {
				ci := t.schema.ColumnIndex(ref.Column)
				if ci < 0 {
					return rdb.Null, &rdb.TableError{Table: ref.Table, Column: ref.Column}
				}
				return t.row[ci], nil
			}
		}
		return rdb.Null, fmt.Errorf("sqlexec: unknown table or alias %q", ref.Table)
	}
	found := -1
	var val rdb.Value
	for _, t := range e.tables {
		if ci := t.schema.ColumnIndex(ref.Column); ci >= 0 {
			if found >= 0 {
				return rdb.Null, fmt.Errorf("sqlexec: ambiguous column %q", ref.Column)
			}
			found = 1
			val = t.row[ci]
		}
	}
	if found < 0 {
		return rdb.Null, fmt.Errorf("sqlexec: unknown column %q", ref.Column)
	}
	return val, nil
}

// evalExpr evaluates an expression with SQL three-valued logic:
// comparisons involving NULL yield NULL, which WHERE treats as not
// true.
func evalExpr(e *env, expr sqlparser.Expr) (rdb.Value, error) {
	switch x := expr.(type) {
	case sqlparser.Lit:
		return x.Value, nil
	case sqlparser.ColRef:
		return e.resolve(x)
	case sqlparser.Neg:
		v, err := evalExpr(e, x.Inner)
		if err != nil || v.IsNull() {
			return rdb.Null, err
		}
		switch v.Kind {
		case rdb.KInt:
			return rdb.Int(-v.I), nil
		case rdb.KFloat:
			return rdb.Float(-v.F), nil
		}
		return rdb.Null, fmt.Errorf("sqlexec: cannot negate %s", v.Kind)
	case sqlparser.Not:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		if v.IsNull() {
			return rdb.Null, nil
		}
		if v.Kind != rdb.KBool {
			return rdb.Null, fmt.Errorf("sqlexec: NOT applied to %s", v.Kind)
		}
		return rdb.Bool(!v.B), nil
	case sqlparser.IsNull:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		res := v.IsNull()
		if x.Negate {
			res = !res
		}
		return rdb.Bool(res), nil
	case sqlparser.InList:
		v, err := evalExpr(e, x.Inner)
		if err != nil {
			return rdb.Null, err
		}
		if v.IsNull() {
			return rdb.Null, nil
		}
		found := false
		for _, item := range x.Values {
			if rdb.Equal(v, item) {
				found = true
				break
			}
		}
		if x.Negate {
			found = !found
		}
		return rdb.Bool(found), nil
	case sqlparser.Binary:
		return evalBinary(e, x)
	default:
		return rdb.Null, fmt.Errorf("sqlexec: unsupported expression %T", expr)
	}
}

func evalBinary(e *env, x sqlparser.Binary) (rdb.Value, error) {
	// AND/OR implement SQL three-valued logic with short-circuit
	// behaviour consistent with it.
	if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
		l, err := evalExpr(e, x.Left)
		if err != nil {
			return rdb.Null, err
		}
		r, err := evalExpr(e, x.Right)
		if err != nil {
			return rdb.Null, err
		}
		lb, lok := boolOf(l)
		rb, rok := boolOf(r)
		if x.Op == sqlparser.OpAnd {
			switch {
			case lok && !lb, rok && !rb:
				return rdb.Bool(false), nil
			case lok && rok:
				return rdb.Bool(true), nil
			default:
				return rdb.Null, nil
			}
		}
		switch {
		case lok && lb, rok && rb:
			return rdb.Bool(true), nil
		case lok && rok:
			return rdb.Bool(false), nil
		default:
			return rdb.Null, nil
		}
	}

	l, err := evalExpr(e, x.Left)
	if err != nil {
		return rdb.Null, err
	}
	r, err := evalExpr(e, x.Right)
	if err != nil {
		return rdb.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return rdb.Null, nil // NULL propagates through comparisons and arithmetic
	}
	switch x.Op {
	case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
		c, err := rdb.Compare(l, r)
		if err != nil {
			return rdb.Null, err
		}
		var res bool
		switch x.Op {
		case sqlparser.OpEq:
			res = c == 0
		case sqlparser.OpNe:
			res = c != 0
		case sqlparser.OpLt:
			res = c < 0
		case sqlparser.OpLe:
			res = c <= 0
		case sqlparser.OpGt:
			res = c > 0
		case sqlparser.OpGe:
			res = c >= 0
		}
		return rdb.Bool(res), nil
	case sqlparser.OpLike:
		if l.Kind != rdb.KString || r.Kind != rdb.KString {
			return rdb.Null, fmt.Errorf("sqlexec: LIKE requires strings")
		}
		return rdb.Bool(sqlparser.LikeToMatcher(r.S)(l.S)), nil
	case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul, sqlparser.OpDiv:
		lf, err := l.AsFloat()
		if err != nil {
			return rdb.Null, err
		}
		rf, err := r.AsFloat()
		if err != nil {
			return rdb.Null, err
		}
		var v float64
		switch x.Op {
		case sqlparser.OpAdd:
			v = lf + rf
		case sqlparser.OpSub:
			v = lf - rf
		case sqlparser.OpMul:
			v = lf * rf
		case sqlparser.OpDiv:
			if rf == 0 {
				return rdb.Null, fmt.Errorf("sqlexec: division by zero")
			}
			v = lf / rf
		}
		if l.Kind == rdb.KInt && r.Kind == rdb.KInt && x.Op != sqlparser.OpDiv {
			return rdb.Int(int64(v)), nil
		}
		return rdb.Float(v), nil
	}
	return rdb.Null, fmt.Errorf("sqlexec: unsupported operator %d", x.Op)
}

func boolOf(v rdb.Value) (bool, bool) {
	if v.Kind == rdb.KBool {
		return v.B, true
	}
	return false, false
}

func isTrue(v rdb.Value) bool { return v.Kind == rdb.KBool && v.B }

// ---- streaming executor ---------------------------------------------
//
// execSelect plans and runs a SELECT as a streaming pipeline of scans
// and joins instead of materializing the full cross product:
//
//   - single-table WHERE conjuncts are pushed down to the scan that
//     produces their table's rows (an equality against an indexed
//     column turns the base scan into an index probe);
//   - equi-joins probe the joined table's primary-key or secondary
//     index per outer row, falling back to a one-time hash build when
//     the join column carries no index, and to a filtered nested loop
//     when the ON clause is not a typed equi-join;
//   - join order is planned greedily: among the joins whose ON
//     dependencies are satisfied, index-backed ones are placed first,
//     ties keeping textual order;
//   - with no ORDER BY, execution stops as soon as LIMIT/OFFSET is
//     satisfied — an ASK probe compiled as LIMIT 1 touches one row;
//   - ORDER BY + LIMIT keeps only the top offset+limit rows in a
//     bounded heap instead of materializing and sorting everything.
//
// While placement keeps textual order — always the case for
// translator-emitted SQL, whose joins are all index-backed and
// therefore tie — rows stream in exactly the order the nested-loop
// baseline produces (scans and index probes both visit ascending
// internal ids), so the compiled and uncompiled read paths return
// byte-identical result sets. A reorder (an indexed join overtaking a
// textually-earlier hash join, reachable only from hand-written SQL)
// changes the inter-row order but never the row multiset; it stays
// deterministic for a given statement. SelectNaive keeps the original
// executor as the comparison baseline.
//
// Error parity. The optimizations above reorder *evaluation*, and an
// expression evaluation can fail (cross-type comparison, LIKE on a
// non-string, division by zero, unknown column). The naive executor
// materializes every join, then evaluates the whole WHERE expression
// on every surviving row — so it surfaces the first error in (row,
// textual) order, and a conjunct that is false does not suppress an
// error in its neighbour. To return exactly the same errors (and the
// same first error), the planner statically classifies every
// expression as infallible — provably unable to raise an evaluation
// error for any row, given the column types — or fallible:
//
//   - a fallible or unresolvable ON conjunct delegates the whole
//     statement to SelectNaive (join-phase errors depend on the
//     naive executor's breadth-first join construction order);
//   - a fallible WHERE conjunct switches off predicate pushdown and
//     early LIMIT termination: placement stays textual and the
//     original WHERE expression is evaluated on each fully joined
//     row, in baseline row order — deferring every per-row predicate
//     error to exactly the point where the naive executor would
//     raise it;
//   - fallible projection items or ORDER BY keys switch off early
//     termination and the top-K heap respectively (the baseline
//     projects and sorts everything, surfacing errors past the
//     LIMIT cutoff).
//
// Translator-emitted SQL is infallible by construction (typed
// same-class comparisons only), so the compiled read path always runs
// the fully optimized pipeline.

type accessKind int

const (
	accessScan accessKind = iota
	accessProbe
	accessHash
)

type colLoc struct{ ti, ci int }

// selStep is one table of the pipeline in placement order.
type selStep struct {
	ti     int // index into refs/schemas (original position)
	access accessKind
	// probe/hash: the joined table's column and the outer column
	// feeding the probe value.
	probeCol  int
	probeName string
	probeType rdb.ColType
	left      colLoc
	// base-table literal probe (already normalized to storage kind).
	lit *rdb.Value
	// impossible short-circuits the whole query (a typed equality that
	// can never hold, e.g. probing an INTEGER key with 5.5).
	impossible bool
	// preds are single-table conjuncts pushed down to this step;
	// residual are multi-table or unresolvable conjuncts assigned to
	// the earliest step where their tables are all placed.
	preds    []sqlparser.Expr
	residual []sqlparser.Expr
}

type tableMeta struct {
	eff    string // effective name as written
	lower  string
	schema *rdb.TableSchema
}

type selPlan struct {
	st      sqlparser.Select
	refs    []sqlparser.TableRef
	schemas []*rdb.TableSchema
	metas   []tableMeta
	steps   []selStep
	// textual records that placement order equals textual order, so a
	// step's visible environment is a prefix of the full one (needed
	// when conjuncts could not be statically resolved).
	textual    bool
	countAlias string // COUNT(*) aggregation when non-empty
	// naive delegates the whole statement to SelectNaive: an ON
	// conjunct is fallible, and join-phase errors depend on the naive
	// executor's breadth-first join order.
	naive bool
	// deferredWhere evaluates the original WHERE expression per fully
	// joined row (no pushdown, no early termination): a WHERE conjunct
	// is fallible, and its per-row errors must surface exactly where
	// the naive executor raises them.
	deferredWhere bool
	// projFallible / keysFallible disable early termination and the
	// top-K heap: the baseline projects and sorts every row, so errors
	// past the LIMIT cutoff must still surface.
	projFallible bool
	keysFallible bool
}

func execSelect(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	p, err := planSelect(tx, st)
	if err != nil {
		return nil, err
	}
	return p.run(tx)
}

// conjuncts flattens top-level ANDs: a row passes the conjunction iff
// every conjunct evaluates to true, which matches SQL's three-valued
// AND for filtering purposes.
func conjunctsOf(e sqlparser.Expr, out []sqlparser.Expr) []sqlparser.Expr {
	if b, ok := e.(sqlparser.Binary); ok && b.Op == sqlparser.OpAnd {
		return conjunctsOf(b.Right, conjunctsOf(b.Left, out))
	}
	return append(out, e)
}

// qualifyExpr rewrites every column reference to its qualified form
// and reports the set of tables the expression reads. ok is false
// when a reference is ambiguous or unknown; such conjuncts keep their
// original form and are evaluated late, where evalExpr reproduces the
// exact resolution error.
func qualifyExpr(e sqlparser.Expr, metas []tableMeta) (sqlparser.Expr, uint64, bool) {
	switch x := e.(type) {
	case sqlparser.Lit:
		return x, 0, true
	case sqlparser.ColRef:
		if x.Table != "" {
			want := strings.ToLower(x.Table)
			for i := range metas {
				if metas[i].lower == want {
					if metas[i].schema.ColumnIndex(x.Column) < 0 {
						return x, 0, false
					}
					return x, 1 << uint(i), true
				}
			}
			return x, 0, false
		}
		found := -1
		for i := range metas {
			if metas[i].schema.ColumnIndex(x.Column) >= 0 {
				if found >= 0 {
					return x, 0, false
				}
				found = i
			}
		}
		if found < 0 {
			return x, 0, false
		}
		return sqlparser.ColRef{Table: metas[found].eff, Column: x.Column}, 1 << uint(found), true
	case sqlparser.Neg:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.Neg{Inner: in}, m, ok
	case sqlparser.Not:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.Not{Inner: in}, m, ok
	case sqlparser.IsNull:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.IsNull{Inner: in, Negate: x.Negate}, m, ok
	case sqlparser.InList:
		in, m, ok := qualifyExpr(x.Inner, metas)
		return sqlparser.InList{Inner: in, Values: x.Values, Negate: x.Negate}, m, ok
	case sqlparser.Binary:
		l, lm, lok := qualifyExpr(x.Left, metas)
		r, rm, rok := qualifyExpr(x.Right, metas)
		return sqlparser.Binary{Op: x.Op, Left: l, Right: r}, lm | rm, lok && rok
	default:
		return e, 0, false
	}
}

// TypeClass exposes the executor's comparison-class grouping to the
// translation layer: the FILTER/ORDER BY compilation proofs are stated
// in terms of exactly these classes, so sharing the function keeps the
// compiler and the executor in lockstep by construction.
func TypeClass(t rdb.ColType) int { return typeClass(t) }

// typeClass groups column types by comparison semantics; equality
// across classes is a type error in evalExpr, so index and hash paths
// only engage within one class.
func typeClass(t rdb.ColType) int {
	switch t {
	case rdb.TInt, rdb.TFloat:
		return 1
	case rdb.TVarchar, rdb.TText:
		return 2
	case rdb.TBool:
		return 3
	}
	return 0
}

func litClass(v rdb.Value) int {
	switch v.Kind {
	case rdb.KInt, rdb.KFloat:
		return 1
	case rdb.KString:
		return 2
	case rdb.KBool:
		return 3
	}
	return 0
}

// probeKey normalizes a probe value to the joined column's storage
// representation with Compare-equivalent semantics. ok=false means
// the equality can never hold (no error: Compare would simply return
// non-zero for every row).
func probeKey(v rdb.Value, t rdb.ColType) (rdb.Value, bool) {
	if v.IsNull() {
		return rdb.Null, false
	}
	switch t {
	case rdb.TInt:
		switch v.Kind {
		case rdb.KInt:
			return v, true
		case rdb.KFloat:
			if v.F == float64(int64(v.F)) {
				return rdb.Int(int64(v.F)), true
			}
			return rdb.Null, false
		}
	case rdb.TFloat:
		if f, err := v.AsFloat(); err == nil {
			return rdb.Float(f), true
		}
	case rdb.TVarchar, rdb.TText:
		if v.Kind == rdb.KString {
			return v, true
		}
	case rdb.TBool:
		if v.Kind == rdb.KBool {
			return v, true
		}
	}
	return rdb.Null, false
}

// hashKey normalizes a value for hash-join bucketing within one type
// class (numerics compare as floats, mirroring rdb.Compare).
func hashKey(v rdb.Value, class int) (string, bool) {
	if v.IsNull() {
		return "", false
	}
	switch class {
	case 1:
		f, err := v.AsFloat()
		if err != nil {
			return "", false
		}
		if f == 0 {
			f = 0 // -0.0 buckets with 0.0, matching rdb.Compare
		}
		return strconv.FormatFloat(f, 'b', -1, 64), true
	case 2:
		if v.Kind != rdb.KString {
			return "", false
		}
		return v.S, true
	case 3:
		if v.Kind != rdb.KBool {
			return "", false
		}
		if v.B {
			return "t", true
		}
		return "f", true
	}
	return "", false
}

type conjunct struct {
	expr       sqlparser.Expr
	mask       uint64
	resolvable bool
	used       bool
}

// ---- static fallibility analysis ------------------------------------

// classNull marks an expression that always evaluates to NULL (a NULL
// literal, or arithmetic over one): NULL short-circuits comparisons,
// LIKE and arithmetic before any type check, so such operands never
// raise errors.
const classNull = -1

// colRefClass resolves a column reference to its comparison class,
// mirroring the evaluator's resolution rules (qualified lookup, or a
// unique unqualified match). ok is false for unknown or ambiguous
// references — which error at evaluation time.
func colRefClass(cr sqlparser.ColRef, metas []tableMeta) (int, bool) {
	if cr.Table != "" {
		want := strings.ToLower(cr.Table)
		for i := range metas {
			if metas[i].lower == want {
				ci := metas[i].schema.ColumnIndex(cr.Column)
				if ci < 0 {
					return 0, false
				}
				return typeClass(metas[i].schema.Columns[ci].Type), true
			}
		}
		return 0, false
	}
	found := -1
	for i := range metas {
		if metas[i].schema.ColumnIndex(cr.Column) >= 0 {
			if found >= 0 {
				return 0, false
			}
			found = i
		}
	}
	if found < 0 {
		return 0, false
	}
	ci := metas[found].schema.ColumnIndex(cr.Column)
	return typeClass(metas[found].schema.Columns[ci].Type), true
}

// analyzeExpr classifies an expression by its result class (classNull,
// 0 unknown, or a typeClass) and whether evaluating it can raise an
// error for *any* row, given the schemas. The analysis is
// conservative: fallible means "might error", infallible is a proof
// that evalExpr returns (value, nil) for every possible row, which is
// what licenses predicate pushdown and early termination without
// changing which errors the statement surfaces.
func analyzeExpr(e sqlparser.Expr, metas []tableMeta) (class int, fallible bool) {
	switch x := e.(type) {
	case sqlparser.Lit:
		if x.Value.IsNull() {
			return classNull, false
		}
		return litClass(x.Value), false
	case sqlparser.ColRef:
		c, ok := colRefClass(x, metas)
		if !ok {
			return 0, true
		}
		return c, false
	case sqlparser.Neg:
		c, f := analyzeExpr(x.Inner, metas)
		if c == classNull {
			return classNull, f
		}
		return 1, f || c != 1
	case sqlparser.Not:
		c, f := analyzeExpr(x.Inner, metas)
		if c == classNull {
			return classNull, f
		}
		return 3, f || c != 3
	case sqlparser.IsNull:
		_, f := analyzeExpr(x.Inner, metas)
		return 3, f
	case sqlparser.InList:
		// rdb.Equal never errors; mixed-kind list values are simply
		// unequal.
		_, f := analyzeExpr(x.Inner, metas)
		return 3, f
	case sqlparser.Binary:
		lc, lf := analyzeExpr(x.Left, metas)
		rc, rf := analyzeExpr(x.Right, metas)
		f := lf || rf
		switch x.Op {
		case sqlparser.OpAnd, sqlparser.OpOr:
			// Three-valued AND/OR never errors on non-boolean operands;
			// it yields NULL instead.
			return 3, f
		case sqlparser.OpEq, sqlparser.OpNe, sqlparser.OpLt, sqlparser.OpLe, sqlparser.OpGt, sqlparser.OpGe:
			ok := lc == classNull || rc == classNull || (lc > 0 && lc == rc)
			return 3, f || !ok
		case sqlparser.OpLike:
			ok := (lc == 2 || lc == classNull) && (rc == 2 || rc == classNull)
			return 3, f || !ok
		case sqlparser.OpAdd, sqlparser.OpSub, sqlparser.OpMul:
			if lc == classNull || rc == classNull {
				return classNull, f
			}
			return 1, f || lc != 1 || rc != 1
		case sqlparser.OpDiv:
			if lc == classNull || rc == classNull {
				return classNull, f
			}
			// Division only proves infallible against a non-zero numeric
			// literal divisor; any column divisor may hold zero.
			nonZero := false
			if lit, ok := x.Right.(sqlparser.Lit); ok {
				if fv, err := lit.Value.AsFloat(); err == nil && fv != 0 {
					nonZero = true
				}
			}
			return 1, f || lc != 1 || rc != 1 || !nonZero
		}
	}
	return 0, true
}

// anyFallible reports whether any conjunct in the list is unresolvable
// or can raise a per-row evaluation error.
func anyFallible(cs []conjunct, metas []tableMeta) bool {
	for _, c := range cs {
		if !c.resolvable {
			return true
		}
		if _, f := analyzeExpr(c.expr, metas); f {
			return true
		}
	}
	return false
}

func planSelect(tx *rdb.Tx, st sqlparser.Select) (*selPlan, error) {
	p := &selPlan{st: st}
	p.refs = []sqlparser.TableRef{st.From}
	for _, j := range st.Joins {
		p.refs = append(p.refs, j.Ref)
	}
	p.schemas = make([]*rdb.TableSchema, len(p.refs))
	p.metas = make([]tableMeta, len(p.refs))
	for i, r := range p.refs {
		s, err := tx.Schema(r.Table)
		if err != nil {
			return nil, err
		}
		p.schemas[i] = s
		p.metas[i] = tableMeta{eff: r.EffectiveName(), lower: strings.ToLower(r.EffectiveName()), schema: s}
	}
	for _, item := range st.Items {
		if item.Count {
			if len(st.Items) != 1 {
				return nil, fmt.Errorf("sqlexec: COUNT(*) cannot be combined with other select items")
			}
			p.countAlias = item.Alias
		}
	}

	// Classify WHERE conjuncts and each join's ON conjuncts.
	var wheres []conjunct
	if st.Where != nil {
		for _, e := range conjunctsOf(st.Where, nil) {
			q, m, ok := qualifyExpr(e, p.metas)
			if !ok {
				q = e // keep the original form for faithful errors
			}
			wheres = append(wheres, conjunct{expr: q, mask: m, resolvable: ok})
		}
	}
	ons := make([][]conjunct, len(st.Joins))
	for ji, j := range st.Joins {
		for _, e := range conjunctsOf(j.On, nil) {
			q, m, ok := qualifyExpr(e, p.metas)
			if !ok {
				q = e
			}
			ons[ji] = append(ons[ji], conjunct{expr: q, mask: m, resolvable: ok})
		}
	}

	// Error-parity modes (see the package comment): fallible ON
	// conjuncts delegate to the naive executor; fallible WHERE
	// conjuncts defer the whole WHERE to the emit point; fallible
	// projections or sort keys disable early termination / the top-K
	// heap.
	for ji := range ons {
		if anyFallible(ons[ji], p.metas) {
			p.naive = true
			return p, nil
		}
	}
	p.deferredWhere = anyFallible(wheres, p.metas)
	for _, item := range st.Items {
		if item.Star || item.Count {
			continue
		}
		if _, f := analyzeExpr(item.Expr, p.metas); f {
			p.projFallible = true
		}
	}
	for _, k := range st.OrderBy {
		if _, f := analyzeExpr(k.Expr, p.metas); f {
			p.keysFallible = true
		}
	}

	// Placement: greedy join ordering when the WHERE runs at the
	// planned steps (every conjunct is then statically resolved, so
	// the environment is safe at any placement); textual order in
	// deferred mode, where emit-time evaluation must see rows in the
	// baseline's order. Within the candidates whose ON dependencies
	// are placed, index-backed equi-joins go first; ties keep textual
	// order, preserving the baseline's row order.
	order := make([]int, 0, len(st.Joins))
	if !p.deferredWhere {
		placed := uint64(1) // base table
		remaining := make([]int, len(st.Joins))
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			best, bestScore := -1, -1
			for _, ji := range remaining {
				deps := uint64(0)
				self := uint64(1) << uint(ji+1)
				for _, c := range ons[ji] {
					deps |= c.mask &^ self
				}
				if deps&^placed != 0 {
					continue
				}
				score := 0
				if _, pc, ok := p.equiJoinFor(ji, ons[ji], placed); ok {
					score = 1
					if has, err := tx.HasIndex(p.refs[ji+1].Table, p.schemas[ji+1].Columns[pc].Name); err == nil && has {
						score = 2
					}
				}
				if score > bestScore {
					best, bestScore = ji, score
				}
			}
			if best < 0 {
				// A join references a table placed after it; fall back to
				// textual order (its ON will fail at evaluation time with
				// the evaluator's own error).
				order = order[:0]
				for i := range st.Joins {
					order = append(order, i)
				}
				p.textual = true
				break
			}
			order = append(order, best)
			placed |= uint64(1) << uint(best+1)
			for i, ji := range remaining {
				if ji == best {
					remaining = append(remaining[:i], remaining[i+1:]...)
					break
				}
			}
		}
		if !p.textual {
			for i, ji := range order {
				if ji != i {
					break
				}
				if i == len(order)-1 {
					p.textual = true // placement happens to be textual
				}
			}
			if len(order) == 0 {
				p.textual = true
			}
		}
	} else {
		p.textual = true
		for i := range st.Joins {
			order = append(order, i)
		}
	}

	// Build the step list: base scan first, joins in placement order.
	p.steps = make([]selStep, 0, len(p.refs))
	p.steps = append(p.steps, selStep{ti: 0})
	placed := uint64(1)
	for _, ji := range order {
		step := selStep{ti: ji + 1}
		if eqIdx, pc, ok := p.equiJoinFor(ji, ons[ji], placed); ok {
			step.probeCol = pc
			step.probeName = p.schemas[ji+1].Columns[pc].Name
			step.probeType = p.schemas[ji+1].Columns[pc].Type
			step.left = p.leftLocOf(ons[ji][eqIdx], ji+1)
			ons[ji][eqIdx].used = true
			if has, err := tx.HasIndex(p.refs[ji+1].Table, step.probeName); err == nil && has {
				step.access = accessProbe
			} else {
				step.access = accessHash
			}
		}
		for _, c := range ons[ji] {
			if !c.used {
				step.residual = append(step.residual, c.expr)
			}
		}
		placed |= uint64(1) << uint(ji+1)
		p.steps = append(p.steps, step)
	}

	// Assign WHERE conjuncts to the earliest step where their tables
	// are placed: single-table conjuncts become scan predicates, the
	// rest residual filters. In deferred mode the WHERE is not split
	// at all — the original expression evaluates per fully joined row
	// at the emit point, reproducing the baseline's errors exactly.
	if !p.deferredWhere {
		for _, c := range wheres {
			si := len(p.steps) - 1
			placed := uint64(0)
			for i := range p.steps {
				placed |= uint64(1) << uint(p.steps[i].ti)
				if c.mask&^placed == 0 {
					si = i
					break
				}
			}
			if c.mask != 0 && c.mask == uint64(1)<<uint(p.steps[si].ti) {
				p.steps[si].preds = append(p.steps[si].preds, c.expr)
				continue
			}
			p.steps[si].residual = append(p.steps[si].residual, c.expr)
		}
	}

	// Base access: a pushed-down "col = literal" on an indexed column
	// turns the scan into a point probe.
	base := &p.steps[0]
	for _, e := range base.preds {
		b, ok := e.(sqlparser.Binary)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		var cr sqlparser.ColRef
		var lit sqlparser.Lit
		if c, cok := b.Left.(sqlparser.ColRef); cok {
			if l, lok := b.Right.(sqlparser.Lit); lok {
				cr, lit = c, l
			} else {
				continue
			}
		} else if c, cok := b.Right.(sqlparser.ColRef); cok {
			if l, lok := b.Left.(sqlparser.Lit); lok {
				cr, lit = c, l
			} else {
				continue
			}
		} else {
			continue
		}
		ci := p.schemas[0].ColumnIndex(cr.Column)
		if ci < 0 {
			continue
		}
		col := &p.schemas[0].Columns[ci]
		if litClass(lit.Value) == 0 || litClass(lit.Value) != typeClass(col.Type) {
			continue // cross-class equality errors row by row; keep it a filter
		}
		has, err := tx.HasIndex(p.refs[0].Table, col.Name)
		if err != nil || !has {
			continue
		}
		key, ok := probeKey(lit.Value, col.Type)
		if !ok {
			base.impossible = true // e.g. 5.5 against an INTEGER key
			break
		}
		base.lit = &key
		base.probeName = col.Name
		break
	}
	return p, nil
}

// equiJoinFor finds the first ON conjunct of join ji usable as a typed
// equi-join: newTable.col = placedTable.col with both columns in the
// same comparison class. It returns the conjunct index and the new
// table's column index.
func (p *selPlan) equiJoinFor(ji int, cs []conjunct, placed uint64) (int, int, bool) {
	self := ji + 1
	for i, c := range cs {
		if !c.resolvable {
			continue
		}
		b, ok := c.expr.(sqlparser.Binary)
		if !ok || b.Op != sqlparser.OpEq {
			continue
		}
		l, lok := b.Left.(sqlparser.ColRef)
		r, rok := b.Right.(sqlparser.ColRef)
		if !lok || !rok {
			continue
		}
		lt, lc := p.locOf(l)
		rt, rc := p.locOf(r)
		if lt < 0 || rt < 0 {
			continue
		}
		var selfCol, otherT, otherC int
		switch {
		case lt == self && rt != self && placed&(1<<uint(rt)) != 0:
			selfCol, otherT, otherC = lc, rt, rc
		case rt == self && lt != self && placed&(1<<uint(lt)) != 0:
			selfCol, otherT, otherC = rc, lt, lc
		default:
			continue
		}
		if typeClass(p.schemas[self].Columns[selfCol].Type) == 0 ||
			typeClass(p.schemas[self].Columns[selfCol].Type) != typeClass(p.schemas[otherT].Columns[otherC].Type) {
			continue
		}
		return i, selfCol, true
	}
	return -1, -1, false
}

func (p *selPlan) locOf(cr sqlparser.ColRef) (int, int) {
	want := strings.ToLower(cr.Table)
	for i := range p.metas {
		if p.metas[i].lower == want {
			return i, p.metas[i].schema.ColumnIndex(cr.Column)
		}
	}
	return -1, -1
}

// leftLocOf extracts the outer side of a used equi-join conjunct.
func (p *selPlan) leftLocOf(c conjunct, self int) colLoc {
	b := c.expr.(sqlparser.Binary)
	l := b.Left.(sqlparser.ColRef)
	r := b.Right.(sqlparser.ColRef)
	lt, lc := p.locOf(l)
	if lt == self {
		rt, rc := p.locOf(r)
		return colLoc{ti: rt, ci: rc}
	}
	return colLoc{ti: lt, ci: lc}
}

// selExec is the runtime state of one execution.
type selExec struct {
	p    *selPlan
	tx   *rdb.Tx
	full *env // all tables in original order; rows filled as placed
	// stepEnvs[i] is the environment visible at step i: a prefix of
	// full in textual mode, full otherwise (safe because every
	// early-evaluated conjunct is statically qualified).
	stepEnvs []*env
	hashes   []map[string][][]rdb.Value // per step, built lazily

	project func(*env) ([]rdb.Value, error)
	cols    []string

	// streaming collection
	rows    [][]rdb.Value
	seen    map[string]bool // DISTINCT
	target  int             // stop after this many rows (offset+limit); -1 = unbounded
	count   int             // COUNT(*) mode
	sorting bool
	envs    []*env         // materialized for ORDER BY
	topk    *topkCollector // bounded heap for ORDER BY + LIMIT
	seq     int            // emission sequence, the heap's stability tiebreak
	keyBuf  []rdb.Value    // reusable sort-key scratch: rejected rows stay allocation-free
}

func (p *selPlan) run(tx *rdb.Tx) (*ResultSet, error) {
	if p.naive {
		// A fallible ON conjunct: join-phase errors depend on the
		// breadth-first join construction order, which only the
		// baseline reproduces exactly.
		return SelectNaive(tx, p.st)
	}
	x := &selExec{p: p, tx: tx, target: -1}
	x.full = &env{tables: make([]envTable, len(p.refs))}
	for i := range p.refs {
		x.full.tables[i] = envTable{name: p.metas[i].lower, schema: p.schemas[i]}
	}
	x.stepEnvs = make([]*env, len(p.steps))
	for i := range p.steps {
		if p.textual {
			x.stepEnvs[i] = &env{tables: x.full.tables[:i+1]}
		} else {
			x.stepEnvs[i] = x.full
		}
	}
	x.hashes = make([]map[string][][]rdb.Value, len(p.steps))

	st := p.st
	if p.countAlias == "" {
		cols, project, err := buildProjection(st, p.schemas, p.refs)
		if err != nil {
			return nil, err
		}
		x.cols, x.project = cols, project
		x.sorting = len(st.OrderBy) > 0
		if st.Distinct {
			x.seen = map[string]bool{}
		}
		off := st.Offset
		if off < 0 {
			off = 0
		}
		switch {
		case x.sorting && st.Limit >= 0 && !st.Distinct && !p.keysFallible && !p.projFallible &&
			off+st.Limit >= st.Limit: // offset+limit must not overflow to a bogus capacity
			// Top-K: only the first offset+limit rows of the sorted
			// output survive, so a bounded heap replaces the full
			// materialize-and-sort. DISTINCT is excluded (dedup after
			// projection can need more than K sorted rows), as are
			// fallible keys/projections (the baseline evaluates them on
			// every row).
			x.topk = &topkCollector{keys: st.OrderBy, cap: off + st.Limit}
			x.keyBuf = make([]rdb.Value, len(st.OrderBy))
		case !x.sorting && st.Limit >= 0 && !p.deferredWhere && !p.projFallible:
			x.target = off + st.Limit
		}
	}

	runPipeline := x.target != 0 || x.sorting || p.countAlias != ""
	if x.topk != nil && x.topk.cap == 0 && !p.deferredWhere {
		// ORDER BY + LIMIT 0 with nothing fallible: the result is
		// provably empty and no error can surface, so skip the scan
		// (deferred WHERE must still run — its per-row errors surface
		// regardless of the cutoff).
		runPipeline = false
	}
	if !p.steps[0].impossible && runPipeline {
		if _, err := x.step(0); err != nil {
			return nil, err
		}
	}

	if p.countAlias != "" {
		return &ResultSet{Columns: []string{p.countAlias}, Rows: [][]rdb.Value{{rdb.Int(int64(x.count))}}}, nil
	}
	if x.topk != nil {
		for _, r := range x.topk.finish() {
			row, err := x.project(r.env)
			if err != nil {
				return nil, err
			}
			x.rows = append(x.rows, row)
		}
	} else if x.sorting {
		if err := sortEnvs(x.envs, st.OrderBy); err != nil {
			return nil, err
		}
		for _, e := range x.envs {
			row, err := x.project(e)
			if err != nil {
				return nil, err
			}
			if x.seen != nil {
				k := rdb.KeyOf(row)
				if x.seen[k] {
					continue
				}
				x.seen[k] = true
			}
			x.rows = append(x.rows, row)
		}
	}
	rs := &ResultSet{Columns: x.cols, Rows: x.rows}
	if st.Offset > 0 {
		if st.Offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:st.Limit]
	}
	return rs, nil
}

// step produces the rows of step si and recurses; it returns false to
// stop the whole pipeline (LIMIT satisfied).
func (x *selExec) step(si int) (bool, error) {
	if si == len(x.p.steps) {
		return x.emit()
	}
	s := &x.p.steps[si]
	if s.impossible {
		return true, nil
	}
	var iterErr error
	visit := func(row []rdb.Value) bool {
		x.full.tables[s.ti].row = row
		ok, err := x.filterAndDescend(si)
		if err != nil {
			iterErr = err
			return false
		}
		return ok
	}
	cont := true
	switch s.access {
	case accessProbe:
		left := x.full.tables[s.left.ti].row[s.left.ci]
		key, ok := probeKey(left, s.probeType)
		if !ok {
			return true, nil // NULL or unrepresentable: no match, no error
		}
		err := x.tx.MatchColumn(x.p.refs[s.ti].Table, s.probeName, key, func(_ int64, row []rdb.Value) bool {
			cont = visit(row)
			return cont
		})
		if err != nil {
			return false, err
		}
	case accessHash:
		h, err := x.hashFor(si)
		if err != nil {
			return false, err
		}
		left := x.full.tables[s.left.ti].row[s.left.ci]
		key, ok := hashKey(left, typeClass(s.probeType))
		if !ok {
			return true, nil
		}
		for _, row := range h[key] {
			if cont = visit(row); !cont {
				break
			}
		}
	default:
		var err error
		if s.lit != nil {
			err = x.tx.MatchColumn(x.p.refs[s.ti].Table, s.probeName, *s.lit, func(_ int64, row []rdb.Value) bool {
				cont = visit(row)
				return cont
			})
		} else {
			err = x.tx.Scan(x.p.refs[s.ti].Table, func(_ int64, row []rdb.Value) bool {
				cont = visit(row)
				return cont
			})
		}
		if err != nil {
			return false, err
		}
	}
	if iterErr != nil {
		return false, iterErr
	}
	return cont, nil
}

// filterAndDescend applies the step's pushed predicates and residual
// conditions to the current row, then recurses into the next step.
func (x *selExec) filterAndDescend(si int) (bool, error) {
	e := x.stepEnvs[si]
	s := &x.p.steps[si]
	for _, pred := range s.preds {
		v, err := evalExpr(e, pred)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	for _, res := range s.residual {
		v, err := evalExpr(e, res)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	return x.step(si + 1)
}

// hashFor lazily builds the hash table of a hash-join step, applying
// the step's pushed predicates while building (rows stay in scan
// order inside each bucket, preserving the baseline's row order).
func (x *selExec) hashFor(si int) (map[string][][]rdb.Value, error) {
	if x.hashes[si] != nil {
		return x.hashes[si], nil
	}
	s := &x.p.steps[si]
	h := make(map[string][][]rdb.Value)
	scratch := singleEnv(x.p.refs[s.ti].EffectiveName(), x.p.schemas[s.ti], nil)
	class := typeClass(s.probeType)
	var buildErr error
	err := x.tx.Scan(x.p.refs[s.ti].Table, func(_ int64, row []rdb.Value) bool {
		key, ok := hashKey(row[s.probeCol], class)
		if !ok {
			return true // NULL join keys match nothing
		}
		scratch.tables[0].row = row
		for _, pred := range s.preds {
			v, err := evalExpr(scratch, pred)
			if err != nil {
				buildErr = err
				return false
			}
			if !isTrue(v) {
				return true
			}
		}
		h[key] = append(h[key], row)
		return true
	})
	if err != nil {
		return nil, err
	}
	if buildErr != nil {
		return nil, buildErr
	}
	x.hashes[si] = h
	return h, nil
}

// emit handles one fully joined row.
func (x *selExec) emit() (bool, error) {
	if x.p.deferredWhere {
		// Deferred mode: evaluate the original WHERE expression on the
		// complete row, exactly as the baseline does after
		// materializing the joins — same errors, same first error,
		// same three-valued filtering.
		v, err := evalExpr(x.full, x.p.st.Where)
		if err != nil {
			return false, err
		}
		if !isTrue(v) {
			return true, nil
		}
	}
	if x.p.countAlias != "" {
		x.count++
		return true, nil
	}
	if x.topk != nil {
		for i, k := range x.topk.keys {
			v, err := evalExpr(x.full, k.Expr)
			if err != nil {
				return false, err // unreachable: heap requires infallible keys
			}
			x.keyBuf[i] = v
		}
		// Admission is decided on the scratch keys alone; the key copy
		// and environment snapshot happen only for rows the heap
		// actually keeps — once it is full, the common case is
		// rejection with zero allocations.
		if x.topk.admits(x.keyBuf, x.seq) {
			keys := append([]rdb.Value(nil), x.keyBuf...)
			snap := make([]envTable, len(x.full.tables))
			copy(snap, x.full.tables)
			x.topk.add(topkRow{keys: keys, seq: x.seq, env: &env{tables: snap}})
		}
		x.seq++
		return true, nil
	}
	if x.sorting {
		snap := make([]envTable, len(x.full.tables))
		copy(snap, x.full.tables)
		x.envs = append(x.envs, &env{tables: snap})
		return true, nil
	}
	row, err := x.project(x.full)
	if err != nil {
		return false, err
	}
	if x.seen != nil {
		k := rdb.KeyOf(row)
		if x.seen[k] {
			return true, nil
		}
		x.seen[k] = true
	}
	x.rows = append(x.rows, row)
	return x.target < 0 || len(x.rows) < x.target, nil
}

// ---- bounded top-K for ORDER BY + LIMIT -----------------------------

// topkRow is one candidate row: its evaluated sort keys, the emission
// sequence number (the stable-sort tiebreak), and a snapshot of the
// joined environment for projection.
type topkRow struct {
	keys []rdb.Value
	seq  int
	env  *env
}

// topkCollector keeps the first cap rows of the stable sort order in a
// max-heap: the root is the worst kept row, so an incoming row either
// displaces it or is discarded in O(log cap). Because ties break on
// the emission sequence, the comparison is a total order and the final
// output is byte-identical to stably sorting everything and slicing.
type topkCollector struct {
	keys  []sqlparser.OrderKey
	cap   int
	items []topkRow
}

// cmp orders rows by the sort keys (DESC inverting per key) with the
// emission sequence as the final tiebreak; it never returns 0 for
// distinct rows.
func (h *topkCollector) cmp(a, b topkRow) int {
	for i, k := range h.keys {
		c := compareForSort(a.keys[i], b.keys[i])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return a.seq - b.seq
}

func (h *topkCollector) Len() int           { return len(h.items) }
func (h *topkCollector) Less(i, j int) bool { return h.cmp(h.items[i], h.items[j]) > 0 } // max-heap
func (h *topkCollector) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *topkCollector) Push(v any)         { h.items = append(h.items, v.(topkRow)) }
func (h *topkCollector) Pop() (v any) {
	n := len(h.items)
	v, h.items = h.items[n-1], h.items[:n-1]
	return v
}

// admits reports whether a row with these keys would be kept — the
// pre-snapshot check that keeps rejected rows allocation-free.
func (h *topkCollector) admits(keys []rdb.Value, seq int) bool {
	if h.cap <= 0 {
		return false
	}
	if len(h.items) < h.cap {
		return true
	}
	return h.cmp(h.items[0], topkRow{keys: keys, seq: seq}) > 0
}

// add offers a row to the collector.
func (h *topkCollector) add(r topkRow) {
	if !h.admits(r.keys, r.seq) {
		return
	}
	if len(h.items) < h.cap {
		heap.Push(h, r)
		return
	}
	h.items[0] = r
	heap.Fix(h, 0)
}

// finish returns the kept rows in final sorted order.
func (h *topkCollector) finish() []topkRow {
	sort.Slice(h.items, func(i, j int) bool { return h.cmp(h.items[i], h.items[j]) < 0 })
	return h.items
}

// sortEnvs orders materialized rows by the ORDER BY keys. The first
// evaluation error wins — earlier versions let later comparisons
// overwrite it, losing errors raised by all but the last failing key.
func sortEnvs(envs []*env, keys []sqlparser.OrderKey) error {
	var sortErr error
	sort.SliceStable(envs, func(i, j int) bool {
		for _, k := range keys {
			a, err := evalExpr(envs[i], k.Expr)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			b, err := evalExpr(envs[j], k.Expr)
			if err != nil {
				if sortErr == nil {
					sortErr = err
				}
				return false
			}
			c := compareForSort(a, b)
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return sortErr
}

// ---- nested-loop baseline -------------------------------------------

// SelectNaive executes a SELECT with the original
// materialize-everything nested-loop strategy: every table is scanned
// in full, joins build the filtered cross product in memory, and
// WHERE applies last. It is kept as the measurement baseline for the
// streaming executor (BenchmarkB12_QueryJoin) and as a second referee
// in differential tests.
func SelectNaive(tx *rdb.Tx, st sqlparser.Select) (*ResultSet, error) {
	// Build the joined row set with nested loops.
	refs := []sqlparser.TableRef{st.From}
	for _, j := range st.Joins {
		refs = append(refs, j.Ref)
	}
	schemas := make([]*rdb.TableSchema, len(refs))
	for i, r := range refs {
		s, err := tx.Schema(r.Table)
		if err != nil {
			return nil, err
		}
		schemas[i] = s
	}

	var envs []*env
	// Seed with the FROM table.
	err := tx.Scan(st.From.Table, func(_ int64, row []rdb.Value) bool {
		envs = append(envs, &env{tables: []envTable{{
			name: strings.ToLower(st.From.EffectiveName()), schema: schemas[0], row: row,
		}}})
		return true
	})
	if err != nil {
		return nil, err
	}
	for ji, j := range st.Joins {
		var joinRows [][]rdb.Value
		if err := tx.Scan(j.Ref.Table, func(_ int64, row []rdb.Value) bool {
			joinRows = append(joinRows, row)
			return true
		}); err != nil {
			return nil, err
		}
		var next []*env
		for _, base := range envs {
			for _, row := range joinRows {
				cand := &env{tables: append(append([]envTable{}, base.tables...), envTable{
					name: strings.ToLower(j.Ref.EffectiveName()), schema: schemas[ji+1], row: row,
				})}
				v, err := evalExpr(cand, j.On)
				if err != nil {
					return nil, err
				}
				if isTrue(v) {
					next = append(next, cand)
				}
			}
		}
		envs = next
	}

	if st.Where != nil {
		var kept []*env
		for _, e := range envs {
			v, err := evalExpr(e, st.Where)
			if err != nil {
				return nil, err
			}
			if isTrue(v) {
				kept = append(kept, e)
			}
		}
		envs = kept
	}

	// COUNT(*) aggregation.
	for _, item := range st.Items {
		if item.Count {
			if len(st.Items) != 1 {
				return nil, fmt.Errorf("sqlexec: COUNT(*) cannot be combined with other select items")
			}
			return &ResultSet{Columns: []string{item.Alias}, Rows: [][]rdb.Value{{rdb.Int(int64(len(envs)))}}}, nil
		}
	}

	// ORDER BY before projection so keys may use any column.
	if len(st.OrderBy) > 0 {
		if err := sortEnvs(envs, st.OrderBy); err != nil {
			return nil, err
		}
	}

	// Projection.
	cols, project, err := buildProjection(st, schemas, refs)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: cols}
	for _, e := range envs {
		row, err := project(e)
		if err != nil {
			return nil, err
		}
		rs.Rows = append(rs.Rows, row)
	}

	if st.Distinct {
		seen := map[string]bool{}
		var kept [][]rdb.Value
		for _, row := range rs.Rows {
			k := rdb.KeyOf(row)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		rs.Rows = kept
	}
	if st.Offset > 0 {
		if st.Offset >= len(rs.Rows) {
			rs.Rows = nil
		} else {
			rs.Rows = rs.Rows[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(rs.Rows) {
		rs.Rows = rs.Rows[:st.Limit]
	}
	return rs, nil
}

// compareForSort orders values with NULLs first and falls back to a
// stable cross-kind order when Compare fails.
func compareForSort(a, b rdb.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if c, err := rdb.Compare(a, b); err == nil {
		return c
	}
	return strings.Compare(a.String(), b.String())
}

// buildProjection computes the output column names and a projector
// function from the select items.
func buildProjection(st sqlparser.Select, schemas []*rdb.TableSchema, refs []sqlparser.TableRef) ([]string, func(*env) ([]rdb.Value, error), error) {
	multi := len(refs) > 1
	var cols []string
	type getter func(*env) (rdb.Value, error)
	var getters []getter

	for _, item := range st.Items {
		switch {
		case item.Star:
			for ti, s := range schemas {
				prefix := ""
				if multi {
					prefix = strings.ToLower(refs[ti].EffectiveName()) + "."
				}
				for ci := range s.Columns {
					cols = append(cols, prefix+s.Columns[ci].Name)
					ti2, ci2 := ti, ci
					getters = append(getters, func(e *env) (rdb.Value, error) {
						return e.tables[ti2].row[ci2], nil
					})
				}
			}
		default:
			name := item.Alias
			if name == "" {
				if cr, ok := item.Expr.(sqlparser.ColRef); ok {
					name = cr.Column
				} else {
					name = fmt.Sprintf("expr%d", len(cols)+1)
				}
			}
			cols = append(cols, name)
			expr := item.Expr
			getters = append(getters, func(e *env) (rdb.Value, error) {
				return evalExpr(e, expr)
			})
		}
	}
	project := func(e *env) ([]rdb.Value, error) {
		row := make([]rdb.Value, len(getters))
		for i, g := range getters {
			v, err := g(e)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}
	return cols, project, nil
}
