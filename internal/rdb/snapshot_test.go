package rdb

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPtreeAgainstReferenceMap drives randomized with/without/get
// against a plain map and verifies every intermediate version stays
// intact (persistence) and iteration is ascending.
func TestPtreeAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var cur ptree[int]
	ref := make(map[uint64]int)
	type gen struct {
		t   ptree[int]
		ref map[uint64]int
	}
	var history []gen
	snapshotRef := func() map[uint64]int {
		c := make(map[uint64]int, len(ref))
		for k, v := range ref {
			c[k] = v
		}
		return c
	}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(5000))
		if rng.Intn(3) == 0 {
			cur = cur.without(k)
			delete(ref, k)
		} else {
			cur = cur.with(k, i)
			ref[k] = i
		}
		if i%500 == 0 {
			history = append(history, gen{t: cur, ref: snapshotRef()})
		}
	}
	history = append(history, gen{t: cur, ref: snapshotRef()})
	for gi, g := range history {
		if g.t.len() != len(g.ref) {
			t.Fatalf("generation %d: len = %d, want %d", gi, g.t.len(), len(g.ref))
		}
		for k, want := range g.ref {
			if got, ok := g.t.get(k); !ok || got != want {
				t.Fatalf("generation %d: get(%d) = %d,%v, want %d", gi, k, got, ok, want)
			}
		}
		last := int64(-1)
		n := 0
		g.t.ascend(func(k uint64, v int) bool {
			if int64(k) <= last {
				t.Fatalf("generation %d: iteration not ascending: %d after %d", gi, k, last)
			}
			last = int64(k)
			if want := g.ref[k]; v != want {
				t.Fatalf("generation %d: ascend(%d) = %d, want %d", gi, k, v, want)
			}
			n++
			return true
		})
		if n != len(g.ref) {
			t.Fatalf("generation %d: ascend visited %d, want %d", gi, n, len(g.ref))
		}
	}
}

// TestPmapAgainstReferenceMap does the same for the string-keyed
// persistent hash map, with keys dense enough to force bucket
// collisions through the folded hash.
func TestPmapAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var cur pmap[int]
	ref := make(map[string]int)
	keys := make([]string, 400)
	for i := range keys {
		keys[i] = string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%7))
	}
	var old pmap[int]
	var oldRef map[string]int
	for i := 0; i < 4000; i++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(4) == 0 {
			cur = cur.without(k)
			delete(ref, k)
		} else {
			cur = cur.with(k, i)
			ref[k] = i
		}
		if i == 2000 {
			old = cur
			oldRef = make(map[string]int, len(ref))
			for k, v := range ref {
				oldRef[k] = v
			}
		}
	}
	check := func(m pmap[int], ref map[string]int, label string) {
		t.Helper()
		if m.len() != len(ref) {
			t.Fatalf("%s: len = %d, want %d", label, m.len(), len(ref))
		}
		for _, k := range keys {
			got, ok := m.get(k)
			want, wantOK := ref[k]
			if ok != wantOK || got != want {
				t.Fatalf("%s: get(%q) = %d,%v, want %d,%v", label, k, got, ok, want, wantOK)
			}
		}
	}
	check(cur, ref, "current")
	check(old, oldRef, "mid-run version (persistence)")
}

// TestSnapshotReadersNotBlockedByWriters is the MVCC contract: a View
// completes — against the last committed state — while a writer holds
// the whole-database write lock mid-transaction. Under the previous
// lock-per-table reader design this deadlocked until commit.
func TestSnapshotReadersNotBlockedByWriters(t *testing.T) {
	db := paperSchema(t)
	if err := db.Update(func(tx *Tx) error {
		return tx.Insert("team", map[string]Value{"id": Int(1), "name": String_("A"), "code": String_("a")})
	}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin() // exclusive lock on every table
	if err := tx.Insert("team", map[string]Value{"id": Int(2), "name": String_("B"), "code": String_("b")}); err != nil {
		t.Fatal(err)
	}

	done := make(chan int, 1)
	go func() {
		var n int
		db.View(func(vtx *Tx) error {
			vtx.Scan("team", func(int64, []Value) bool { n++; return true })
			return nil
		})
		done <- n
	}()
	select {
	case n := <-done:
		if n != 1 {
			t.Fatalf("reader saw %d committed rows mid-write, want 1", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot reader blocked behind an open write transaction")
	}

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.RowCount("team"); n != 2 {
		t.Fatalf("rows after commit = %d, want 2", n)
	}
}

// TestViewPinsSnapshot: a View opened before a commit keeps seeing the
// pre-commit state for its whole lifetime.
func TestViewPinsSnapshot(t *testing.T) {
	db := paperSchema(t)
	db.Update(func(tx *Tx) error {
		return tx.Insert("team", map[string]Value{"id": Int(1), "name": String_("A"), "code": String_("a")})
	})
	release := make(chan struct{})
	counted := make(chan int, 2)
	go db.View(func(tx *Tx) error {
		n := 0
		tx.Scan("team", func(int64, []Value) bool { n++; return true })
		counted <- n
		<-release // a commit happens while this View is open
		n = 0
		tx.Scan("team", func(int64, []Value) bool { n++; return true })
		counted <- n
		return nil
	})
	if n := <-counted; n != 1 {
		t.Fatalf("first scan saw %d rows, want 1", n)
	}
	if err := db.Update(func(tx *Tx) error {
		return tx.Insert("team", map[string]Value{"id": Int(2), "name": String_("B"), "code": String_("b")})
	}); err != nil {
		t.Fatal(err)
	}
	close(release)
	if n := <-counted; n != 1 {
		t.Fatalf("open View observed a concurrent commit: saw %d rows, want the pinned 1", n)
	}
	db.View(func(tx *Tx) error {
		n := 0
		tx.Scan("team", func(int64, []Value) bool { n++; return true })
		if n != 2 {
			t.Fatalf("fresh View saw %d rows, want 2", n)
		}
		return nil
	})
}

// TestSavepointRollbackTo exercises the per-operation atomicity the
// group-commit scheduler builds on: several logical ops in one
// transaction, with a failed middle op rolled back to its savepoint.
func TestSavepointRollbackTo(t *testing.T) {
	db := paperSchema(t)
	tx := db.BeginWrite("team")
	if err := tx.Insert("team", map[string]Value{"id": Int(1), "name": String_("A"), "code": String_("a")}); err != nil {
		t.Fatal(err)
	}
	sp := tx.Savepoint()
	if err := tx.Insert("team", map[string]Value{"id": Int(2), "name": String_("B"), "code": String_("b")}); err != nil {
		t.Fatal(err)
	}
	// Duplicate key: the failed "operation" rolls back to its savepoint,
	// taking the id=2 insert with it but keeping id=1.
	if err := tx.Insert("team", map[string]Value{"id": Int(1), "name": String_("dup"), "code": String_("x")}); err == nil {
		t.Fatal("duplicate primary key must fail")
	}
	tx.RollbackTo(sp)
	if err := tx.Insert("team", map[string]Value{"id": Int(3), "name": String_("C"), "code": String_("c")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.View(func(tx *Tx) error {
		for id, want := range map[int64]bool{1: true, 2: false, 3: true} {
			_, _, found, _ := tx.LookupPK("team", []Value{Int(id)})
			if found != want {
				t.Errorf("team id=%d found=%v, want %v", id, found, want)
			}
		}
		return nil
	})
}

// TestUpdateDeclaredWriteSet: Update with declared tables enforces
// lock coverage like BeginWrite, and commits like before.
func TestUpdateDeclaredWriteSet(t *testing.T) {
	db := lockTestDB(t)
	err := db.Update(func(tx *Tx) error {
		return tx.Insert("parent", map[string]Value{"id": Int(1), "name": String_("p")})
	}, "parent")
	if err != nil {
		t.Fatal(err)
	}
	// Writing outside the declared set fails with a LockError and the
	// whole function's work rolls back.
	err = db.Update(func(tx *Tx) error {
		if err := tx.Insert("parent", map[string]Value{"id": Int(2), "name": String_("q")}); err != nil {
			return err
		}
		return tx.Insert("loner", map[string]Value{"id": Int(1), "v": String_("x")})
	}, "parent")
	if _, ok := err.(*LockError); !ok {
		t.Fatalf("want LockError for undeclared table, got %v", err)
	}
	if n, _ := db.RowCount("parent"); n != 1 {
		t.Fatalf("failed Update leaked rows: parent = %d, want 1", n)
	}
	// Disjoint declared write sets commit in parallel without racing.
	var wg sync.WaitGroup
	for w, tbl := range []string{"parent", "loner"} {
		wg.Add(1)
		go func(w int, tbl string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				db.Update(func(tx *Tx) error {
					return tx.Insert(tbl, map[string]Value{"id": Int(int64(100 + w*1000 + i))})
				}, tbl)
			}
		}(w, tbl)
	}
	wg.Wait()
	if n, _ := db.RowCount("loner"); n != 50 {
		t.Fatalf("loner rows = %d, want 50", n)
	}
}

// TestSnapshotVersionAdvances: the published version moves on every
// data commit and DDL, and read-only work leaves it unchanged.
func TestSnapshotVersionAdvances(t *testing.T) {
	db := paperSchema(t)
	v0 := db.SnapshotVersion()
	db.Update(func(tx *Tx) error {
		return tx.Insert("team", map[string]Value{"id": Int(1), "name": String_("A"), "code": String_("a")})
	})
	v1 := db.SnapshotVersion()
	if v1 != v0+1 {
		t.Fatalf("version after commit = %d, want %d", v1, v0+1)
	}
	// A rolled-back transaction publishes nothing.
	tx := db.Begin()
	tx.Insert("team", map[string]Value{"id": Int(2), "name": String_("B"), "code": String_("b")})
	tx.Rollback()
	db.View(func(*Tx) error { return nil })
	if v := db.SnapshotVersion(); v != v1 {
		t.Fatalf("version after rollback+view = %d, want %d", v, v1)
	}
}
