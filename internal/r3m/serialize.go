package r3m

import (
	"fmt"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
)

// Graph renders the mapping as an RDF graph using the R3M ontology,
// the exact inverse of FromGraph (modulo blank-node naming for
// constraints).
func (m *Mapping) Graph() *rdf.Graph {
	g := rdf.NewGraph()
	node := m.Node
	if node.IsZero() {
		node = rdf.IRI("http://example.org/mapping#database")
	}
	typ := rdf.IRI(rdf.RDFType)
	g.Add(rdf.NewTriple(node, typ, ClassDatabaseMap))
	addStr := func(s rdf.Term, p rdf.Term, v string) {
		if v != "" {
			g.Add(rdf.NewTriple(s, p, rdf.Literal(v)))
		}
	}
	addStr(node, PropJdbcDriver, m.JDBCDriver)
	addStr(node, PropJdbcURL, m.JDBCURL)
	addStr(node, PropUsername, m.Username)
	addStr(node, PropPassword, m.Password)
	addStr(node, PropURIPrefix, m.URIPrefix)

	bseq := 0
	freshBlank := func(hint string) rdf.Term {
		bseq++
		return rdf.Blank(fmt.Sprintf("c_%s_%d", hint, bseq))
	}

	writeAttr := func(am *AttributeMap) rdf.Term {
		anode := am.Node
		if anode.IsZero() {
			anode = freshBlank("attr")
		}
		g.Add(rdf.NewTriple(anode, typ, ClassAttributeMap))
		addStr(anode, PropHasAttributeName, am.Name)
		if !am.Property.IsZero() {
			p := PropMapsToDataProperty
			if am.IsObject {
				p = PropMapsToObjectProperty
			}
			g.Add(rdf.NewTriple(anode, p, am.Property))
		}
		if am.Datatype != "" {
			g.Add(rdf.NewTriple(anode, PropHasDatatype, rdf.IRI(am.Datatype)))
		}
		addStr(anode, PropValuePrefix, am.ValuePrefix)
		for _, c := range am.Constraints {
			cnode := freshBlank(am.Name)
			g.Add(rdf.NewTriple(anode, PropHasConstraint, cnode))
			switch c.Kind {
			case ConstraintPrimaryKey:
				g.Add(rdf.NewTriple(cnode, typ, ClassPrimaryKey))
			case ConstraintForeignKey:
				g.Add(rdf.NewTriple(cnode, typ, ClassForeignKey))
				refTerm := rdf.Literal(c.References)
				if isAbsoluteIRI(c.References) {
					refTerm = rdf.IRI(c.References)
				}
				g.Add(rdf.NewTriple(cnode, PropReferences, refTerm))
			case ConstraintNotNull:
				g.Add(rdf.NewTriple(cnode, typ, ClassNotNull))
			case ConstraintDefault:
				g.Add(rdf.NewTriple(cnode, typ, ClassDefault))
				addStr(cnode, PropHasDefaultValue, c.Default)
			}
		}
		return anode
	}

	for _, tm := range m.Tables {
		tnode := tm.Node
		if tnode.IsZero() {
			tnode = rdf.IRI("http://example.org/mapping#" + tm.Name)
		}
		g.Add(rdf.NewTriple(node, PropHasTable, tnode))
		g.Add(rdf.NewTriple(tnode, typ, ClassTableMap))
		addStr(tnode, PropHasTableName, tm.Name)
		g.Add(rdf.NewTriple(tnode, PropMapsToClass, tm.Class))
		addStr(tnode, PropURIPattern, tm.URIPattern)
		for _, am := range tm.Attributes {
			anode := writeAttr(am)
			g.Add(rdf.NewTriple(tnode, PropHasAttribute, anode))
		}
	}
	for _, lt := range m.LinkTables {
		lnode := lt.Node
		if lnode.IsZero() {
			lnode = rdf.IRI("http://example.org/mapping#" + lt.Name)
		}
		g.Add(rdf.NewTriple(node, PropHasTable, lnode))
		g.Add(rdf.NewTriple(lnode, typ, ClassLinkTableMap))
		addStr(lnode, PropHasTableName, lt.Name)
		g.Add(rdf.NewTriple(lnode, PropMapsToObjectProperty, lt.Property))
		g.Add(rdf.NewTriple(lnode, PropHasSubjectAttribute, writeAttr(lt.SubjectAttr)))
		g.Add(rdf.NewTriple(lnode, PropHasObjectAttribute, writeAttr(lt.ObjectAttr)))
	}
	return g
}

// Turtle renders the mapping as a Turtle document.
func (m *Mapping) Turtle() string {
	pm := rdf.CommonPrefixes()
	return turtle.Serialize(m.Graph(), pm)
}
