package sqlexec

import (
	"bytes"
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
)

func TestDumpRestoreRoundTrip(t *testing.T) {
	db := paperDB(t)
	if _, err := Run(db, listing16); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}
	script := buf.String()
	// Parents' DDL and rows precede children's.
	if strings.Index(script, "CREATE TABLE team") > strings.Index(script, "CREATE TABLE author") {
		t.Error("team DDL must precede author DDL")
	}
	if strings.Index(script, "INSERT INTO publication ") > strings.Index(script, "INSERT INTO publication_author ") {
		t.Error("publication rows must precede link rows")
	}

	db2, err := Restore("copy", &buf)
	if err != nil {
		t.Fatalf("restore: %v\nscript:\n%s", err, script)
	}
	if db2.TotalRows() != db.TotalRows() {
		t.Fatalf("rows = %d, want %d", db2.TotalRows(), db.TotalRows())
	}
	for _, table := range db.TableNames() {
		a, _ := Query(db, "SELECT * FROM "+table+" ORDER BY id")
		b, _ := Query(db2, "SELECT * FROM "+table+" ORDER BY id")
		if a.Format() != b.Format() {
			t.Errorf("table %s differs after restore:\n%s\nvs\n%s", table, a.Format(), b.Format())
		}
	}
	// Constraints survive: the restored DB still rejects violations.
	if _, err := Run(db2, `INSERT INTO author (id, firstname) VALUES (99, 'NoLast')`); err == nil {
		t.Error("restored schema lost NOT NULL")
	}
	if _, err := Run(db2, `INSERT INTO author (id, lastname, team) VALUES (99, 'X', 12345)`); err == nil {
		t.Error("restored schema lost FOREIGN KEY")
	}
}

func TestDumpEmptyDatabase(t *testing.T) {
	db := paperDB(t)
	var buf bytes.Buffer
	if err := Dump(db, &buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Restore("empty", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.TableNames()) != 6 || db2.TotalRows() != 0 {
		t.Errorf("restored: %v, %d rows", db2.TableNames(), db2.TotalRows())
	}
}

func TestDumpPreservesAutoIncrementBehaviour(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	var buf bytes.Buffer
	Dump(db, &buf)
	db2, err := Restore("copy", &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting a new link row without id continues above the
	// restored maximum.
	if _, err := Run(db2, `INSERT INTO publication_author (publication, author) VALUES (12, 6)`); err != nil {
		t.Fatal(err)
	}
	rs, _ := Query(db2, `SELECT COUNT(*) FROM publication_author WHERE id = 2`)
	if rs.Rows[0][0] != rdb.Int(1) {
		t.Errorf("auto id after restore: %v", rs.Rows)
	}
}

func TestRestoreRejectsBadScript(t *testing.T) {
	if _, err := Restore("x", strings.NewReader("NOT SQL")); err == nil {
		t.Error("junk restored")
	}
}
