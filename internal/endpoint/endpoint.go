// Package endpoint implements the OntoAccess HTTP mediation endpoint
// of the paper's Section 6: "Implemented as a HTTP endpoint, it
// allows clients to remotely manipulate the relational data. Incoming
// SPARQL/Update operations are parsed from the HTTP requests and
// forwarded to the translation module... a confirmation or error
// message is... converted to an RDF representation and sent back to
// the client."
//
// Routes:
//
//	POST /update  — SPARQL/Update request in the body (or an "update"
//	                form parameter); the response is the feedback
//	                report in Turtle (fb:Success / fb:Failure with
//	                violations and translated SQL).
//	GET/POST /sparql — SPARQL query ("query" parameter); SELECT/ASK
//	                return a plain-text table or boolean, CONSTRUCT
//	                returns Turtle.
//	GET /export   — the full RDF view as Turtle or N-Triples.
//	GET /mapping  — the active R3M mapping as Turtle.
//	GET /healthz  — liveness probe with row counts, the published
//	                snapshot version, group-commit statistics, and
//	                plan-cache effectiveness (update, MODIFY and
//	                query plans).
//
// Request handling is fully concurrent: queries and exports evaluate
// against lock-free database snapshots (they never wait for writers),
// and updates flow through the mediator's group-commit scheduler,
// which coalesces concurrent requests hitting the same tables into
// shared transactions. Repeated /sparql requests are served from
// compiled query plans: the shape is translated once, re-executions
// bind parameters and stream the index-aware SELECT off the pinned
// snapshot.
package endpoint

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"ontoaccess/internal/core"
	"ontoaccess/internal/ntriples"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/turtle"
)

// Server wraps a mediator in HTTP handlers.
type Server struct {
	mediator *core.Mediator
	mux      *http.ServeMux
}

// New builds the endpoint around a mediator.
func New(m *core.Mediator) *Server {
	s := &Server{mediator: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.HandleFunc("/export", s.handleExport)
	s.mux.HandleFunc("/mapping", s.handleMapping)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

const turtleMIME = "text/turtle; charset=utf-8"

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SPARQL/Update request", http.StatusMethodNotAllowed)
		return
	}
	src, err := readUpdateBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, execErr := s.mediator.ExecuteString(src)
	w.Header().Set("Content-Type", turtleMIME)
	if execErr != nil {
		// Constraint violations are client errors; everything the
		// client needs is in the RDF feedback report.
		w.WriteHeader(http.StatusUnprocessableEntity)
	}
	if res != nil && res.Report != nil {
		io.WriteString(w, res.Report.Turtle())
		return
	}
	fmt.Fprintf(w, "# no report\n")
}

// readUpdateBody accepts the raw body, a form-encoded "update"
// parameter, or "application/sparql-update" content.
func readUpdateBody(r *http.Request) (string, error) {
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-www-form-urlencoded") {
		if err := r.ParseForm(); err != nil {
			return "", fmt.Errorf("endpoint: parsing form: %w", err)
		}
		if u := r.PostForm.Get("update"); u != "" {
			return u, nil
		}
		return "", fmt.Errorf("endpoint: missing 'update' form parameter")
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("endpoint: reading body: %w", err)
	}
	if len(body) == 0 {
		return "", fmt.Errorf("endpoint: empty request body")
	}
	return string(body), nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var query string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		query = r.PostForm.Get("query")
		if query == "" {
			body, _ := io.ReadAll(io.LimitReader(r.Body, 16<<20))
			query = string(body)
		}
	default:
		http.Error(w, "GET or POST a SPARQL query", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(query) == "" {
		http.Error(w, "missing 'query' parameter", http.StatusBadRequest)
		return
	}
	res, err := s.mediator.Query(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	wantJSON := strings.Contains(r.Header.Get("Accept"), "application/sparql-results+json") ||
		strings.Contains(r.Header.Get("Accept"), "application/json")
	switch res.Form {
	case sparql.FormSelect:
		if wantJSON {
			data, err := sparql.ResultsJSON(res.Vars, res.Solutions)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/sparql-results+json")
			w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, sparql.FormatTable(res.Vars, res.Solutions))
	case sparql.FormAsk:
		if wantJSON {
			data, err := sparql.AskJSON(res.Bool)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/sparql-results+json")
			w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%v\n", res.Bool)
	case sparql.FormConstruct:
		w.Header().Set("Content-Type", turtleMIME)
		io.WriteString(w, turtle.Serialize(res.Graph, rdf.CommonPrefixes()))
	}
}

func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	g, err := s.mediator.Export()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/n-triples") {
		w.Header().Set("Content-Type", "application/n-triples")
		io.WriteString(w, ntriples.Format(g))
		return
	}
	w.Header().Set("Content-Type", turtleMIME)
	io.WriteString(w, turtle.Serialize(g, rdf.CommonPrefixes()))
}

func (s *Server) handleMapping(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", turtleMIME)
	io.WriteString(w, s.mediator.Mapping().Turtle())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	db := s.mediator.DB()
	fmt.Fprintf(w, "ok\ndatabase: %s\n", db.Name())
	fmt.Fprintf(w, "snapshot version: %d\n", db.SnapshotVersion())
	st := s.mediator.SchedulerStats()
	fmt.Fprintf(w, "write batches: %d (%d ops, max batch %d)\n", st.Batches, st.Ops, st.MaxBatch)
	var keyed uint64
	var hot []string
	for i, n := range st.ShardBatches {
		keyed += n
		if n > 0 {
			hot = append(hot, fmt.Sprintf("%d:%d", i, n))
		}
	}
	fmt.Fprintf(w, "shard batches: %d keyed claims, %d whole-table, %d keyed fallbacks\n",
		keyed, st.WholeTableBatches, st.KeyedFallbacks)
	if len(hot) > 0 {
		fmt.Fprintf(w, "shard batch counts: %s\n", strings.Join(hot, " "))
	}
	if ds := s.mediator.DurabilityStats(); ds.Enabled {
		fmt.Fprintf(w, "durability: %s\n", ds.DataDir)
		fmt.Fprintf(w, "wal: %d bytes, %d records, %d segments\n", ds.WALBytes, ds.WALRecords, ds.WALSegments)
		fmt.Fprintf(w, "checkpoints: %d (last at version %d)\n", ds.Checkpoints, ds.LastCheckpointVersion)
		fmt.Fprintf(w, "checkpoint tables: %d written, %d unchanged\n",
			ds.CheckpointTablesWritten, ds.CheckpointTablesSkipped)
		fmt.Fprintf(w, "recovered records: %d\n", ds.RecoveredRecords)
		if st.Batches > 0 {
			fmt.Fprintf(w, "fsyncs: %d (%.2f per batch)\n", ds.Fsyncs, float64(ds.Fsyncs)/float64(st.Batches))
		} else {
			fmt.Fprintf(w, "fsyncs: %d\n", ds.Fsyncs)
		}
	} else {
		fmt.Fprintf(w, "durability: disabled (memory-only)\n")
	}
	compiled, fallback := s.mediator.QueryExecStats()
	fmt.Fprintf(w, "query executions: %d compiled, %d fallback\n", compiled, fallback)
	for _, c := range []struct {
		name  string
		stats core.CacheStats
	}{
		{"update plans", s.mediator.PlanCacheStats()},
		{"modify plans", s.mediator.ModifyPlanCacheStats()},
		{"query plans", s.mediator.QueryPlanCacheStats()},
		{"query parses", s.mediator.QueryParseCacheStats()},
	} {
		fmt.Fprintf(w, "%s: %d cached, %d hits, %d misses, %d evictions\n",
			c.name, c.stats.Size, c.stats.Hits, c.stats.Misses, c.stats.Evictions)
	}
	// The statistics snapshot the cost-based join planner reads: row
	// counts plus per-index distinct counts, O(1) off the snapshot.
	stats := db.Stats()
	for _, name := range db.TableNames() {
		ts := stats.Tables[name]
		fmt.Fprintf(w, "table %s: %d rows", name, ts.Rows)
		cols := make([]string, 0, len(ts.Distinct))
		for c := range ts.Distinct {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			fmt.Fprintf(w, ", %s: %d distinct", c, ts.Distinct[c])
		}
		fmt.Fprintln(w)
	}
}
