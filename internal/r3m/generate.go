package r3m

import (
	"fmt"
	"sort"
	"strings"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
)

// GenerateOptions configure automatic mapping generation.
type GenerateOptions struct {
	// URIPrefix becomes the mapping-wide instance URI prefix
	// (default "http://example.org/db/").
	URIPrefix string
	// OntologyNS is the namespace for generated classes/properties
	// (default "http://example.org/ontology#").
	OntologyNS string
	// MapNS is the namespace for the mapping nodes themselves
	// (default "http://example.org/mapping#").
	MapNS string
	// ClassOverrides maps table names to existing ontology classes,
	// letting callers reuse domain vocabulary (the one step the paper
	// says cannot be automated).
	ClassOverrides map[string]rdf.Term
	// PropertyOverrides maps "table.attribute" (or a link table name)
	// to existing ontology properties.
	PropertyOverrides map[string]rdf.Term
}

func (o *GenerateOptions) defaults() {
	if o.URIPrefix == "" {
		o.URIPrefix = "http://example.org/db/"
	}
	if o.OntologyNS == "" {
		o.OntologyNS = "http://example.org/ontology#"
	}
	if o.MapNS == "" {
		o.MapNS = "http://example.org/mapping#"
	}
}

// Generate derives a basic R3M mapping from a database schema, as the
// paper's Section 4 describes: "A basic R3M mapping can be generated
// automatically from the database schema if it explicitly provides
// information about foreign key relationships." Tables become
// classes, attributes become properties (object properties for
// foreign keys), and tables consisting of a primary key plus exactly
// two foreign keys are detected as link tables. Overrides let the
// caller assign existing domain vocabulary.
func Generate(db *rdb.Database, opts GenerateOptions) (*Mapping, error) {
	opts.defaults()
	m := &Mapping{
		Node:      rdf.IRI(opts.MapNS + "database"),
		JDBCURL:   "embedded:" + db.Name(),
		URIPrefix: opts.URIPrefix,
	}
	names := db.TableNames()
	sort.Strings(names)
	for _, name := range names {
		schema, _ := db.Schema(name)
		if isLinkTable(schema) {
			lt, err := generateLinkTable(schema, opts)
			if err != nil {
				return nil, err
			}
			m.LinkTables = append(m.LinkTables, lt)
			continue
		}
		tm, err := generateTable(schema, opts)
		if err != nil {
			return nil, err
		}
		m.Tables = append(m.Tables, tm)
	}
	sortTables(m)
	m.index()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("r3m: generated mapping is invalid: %w", err)
	}
	return m, nil
}

// isLinkTable detects the N:M link-table shape: exactly two foreign
// keys and no data attributes beyond the primary key.
func isLinkTable(s *rdb.TableSchema) bool {
	if len(s.ForeignKeys) != 2 {
		return false
	}
	for _, c := range s.Columns {
		if s.IsPrimaryKey(c.Name) {
			continue
		}
		if _, isFK := s.ForeignKeyOn(c.Name); !isFK {
			return false
		}
	}
	return true
}

func generateTable(s *rdb.TableSchema, opts GenerateOptions) (*TableMap, error) {
	tm := &TableMap{
		Node: rdf.IRI(opts.MapNS + s.Name),
		Name: s.Name,
	}
	if class, ok := opts.ClassOverrides[s.Name]; ok {
		tm.Class = class
	} else {
		tm.Class = rdf.IRI(opts.OntologyNS + exportName(s.Name))
	}
	if len(s.PrimaryKey) != 1 {
		return nil, fmt.Errorf("r3m: cannot generate mapping for table %q with %d-column primary key",
			s.Name, len(s.PrimaryKey))
	}
	tm.URIPattern = s.Name + "%%" + s.PrimaryKey[0] + "%%"
	for i := range s.Columns {
		c := &s.Columns[i]
		am := &AttributeMap{
			Node: rdf.IRI(opts.MapNS + s.Name + "_" + c.Name),
			Name: c.Name,
		}
		fk, isFK := s.ForeignKeyOn(c.Name)
		if !s.IsPrimaryKey(c.Name) || isFK {
			if p, ok := opts.PropertyOverrides[s.Name+"."+c.Name]; ok {
				am.Property = p
			} else {
				am.Property = rdf.IRI(opts.OntologyNS + propertyName(s.Name, c.Name))
			}
		}
		switch {
		case isFK:
			am.IsObject = true
			am.Constraints = append(am.Constraints, Constraint{Kind: ConstraintForeignKey, References: fk.RefTable})
		default:
			am.Datatype = datatypeFor(c.Type)
		}
		if s.IsPrimaryKey(c.Name) {
			am.Constraints = append(am.Constraints, Constraint{Kind: ConstraintPrimaryKey})
			// The key is encoded in the instance URI, not exposed as a
			// property, matching the paper's use case where id maps to
			// no property.
			if !isFK {
				am.Property = rdf.Term{}
				am.Datatype = ""
			}
		}
		if c.NotNull && !s.IsPrimaryKey(c.Name) {
			am.Constraints = append(am.Constraints, Constraint{Kind: ConstraintNotNull})
		}
		if c.Default != nil {
			am.Constraints = append(am.Constraints, Constraint{Kind: ConstraintDefault, Default: c.Default.Text()})
		}
		tm.Attributes = append(tm.Attributes, am)
	}
	sort.Slice(tm.Attributes, func(i, j int) bool { return tm.Attributes[i].Name < tm.Attributes[j].Name })
	return tm, nil
}

func generateLinkTable(s *rdb.TableSchema, opts GenerateOptions) (*LinkTableMap, error) {
	lt := &LinkTableMap{
		Node: rdf.IRI(opts.MapNS + s.Name),
		Name: s.Name,
	}
	if p, ok := opts.PropertyOverrides[s.Name]; ok {
		lt.Property = p
	} else {
		lt.Property = rdf.IRI(opts.OntologyNS + lowerFirst(exportName(s.Name)))
	}
	// Deterministic subject/object assignment: declaration order of
	// the foreign keys (subject first), which matches the common
	// "subject_object" link-table naming convention.
	fks := s.ForeignKeys
	mk := func(fk rdb.ForeignKey, role string) *AttributeMap {
		return &AttributeMap{
			Node:        rdf.IRI(opts.MapNS + s.Name + "_" + role),
			Name:        fk.Column,
			Constraints: []Constraint{{Kind: ConstraintForeignKey, References: fk.RefTable}},
		}
	}
	lt.SubjectAttr = mk(fks[0], "subject")
	lt.ObjectAttr = mk(fks[1], "object")
	return lt, nil
}

// datatypeFor picks the XSD datatype for a column type.
func datatypeFor(t rdb.ColType) string {
	switch t {
	case rdb.TInt:
		return rdf.XSDInt
	case rdb.TFloat:
		return rdf.XSDDouble
	case rdb.TBool:
		return rdf.XSDBoolean
	default:
		return rdf.XSDString
	}
}

// exportName converts snake_case table names to CamelCase class names.
func exportName(s string) string {
	parts := strings.Split(s, "_")
	for i, p := range parts {
		if p == "" {
			continue
		}
		parts[i] = strings.ToUpper(p[:1]) + p[1:]
	}
	return strings.Join(parts, "")
}

// propertyName builds a camelCase property name from table and
// attribute.
func propertyName(table, attr string) string {
	return lowerFirst(exportName(table)) + exportName(attr)
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
