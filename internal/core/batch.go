package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ontoaccess/internal/rdb"
)

// This file implements the group-commit write scheduler. Compiled
// data plans and MODIFY plans declare their exact lock sets; the
// scheduler coalesces concurrently submitted operations with the same
// lock signature — in particular, writers hammering the same table —
// into one transaction: one lock acquisition, one snapshot publish.
//
// Without batching, N same-table writers serialize into N
// lock-acquire/commit/release cycles with a full lock handoff (and a
// snapshot publish) between each pair. With batching, the first
// submitter becomes the batch leader, drains everything queued behind
// it, and executes the whole batch under a single transaction while
// later arrivals queue for the next batch. Per-operation atomicity is
// preserved through savepoints: a failing operation rolls back to its
// own savepoint and reports its error, without touching its batch
// mates. Results are delivered only after the batch commit, so every
// caller observes its own write.
//
// The same decoupling pattern — many producers, one batched writer
// per target — is what streaming SQL pipelines such as metadb use to
// keep ingest at hardware speed; here it rides on the MVCC layer,
// whose savepoints are O(1) pointer copies.
//
// On a durable database the batch transaction's single Commit is also
// a single WAL append + fsync (rdb/persist.go): the whole drained
// batch becomes one checksummed commit record, fsynced once before
// any waiter is acknowledged. fsync cost is thereby amortized across
// the batch exactly like lock acquisition and snapshot publication
// already are — the /healthz fsyncs-per-batch ratio makes the
// amortization observable.

// maxBatchOps bounds one batch (and therefore lock hold time); jobs
// beyond it wait for the next batch of the same queue.
const maxBatchOps = 64

// SchedulerStats reports group-commit effectiveness.
type SchedulerStats struct {
	// Batches is the number of committed batch transactions; Ops the
	// operations executed through the scheduler. Ops/Batches is the
	// achieved coalescing factor.
	Batches, Ops uint64
	// MaxBatch is the largest batch committed so far.
	MaxBatch uint64
	// ShardBatches counts, per lock shard, the batches whose write set
	// claimed that shard exclusively (keyed writes); its length is the
	// database's configured shard count. WholeTableBatches counts
	// batches that took at least one whole-table write lock.
	ShardBatches []uint64
	// WholeTableBatches counts batches holding a whole-table write lock.
	WholeTableBatches uint64
	// KeyedFallbacks counts keyed executions that reached outside their
	// declared key shards at run time and were retried under whole-table
	// locks (or the uncompiled path).
	KeyedFallbacks uint64
}

type jobResult struct {
	res *OpResult
	err error
}

// writeJob is one queued operation: an executor to run inside the
// batch transaction and a channel for its post-commit result.
type writeJob struct {
	exec func(tx *rdb.Tx) (*OpResult, error)
	done chan jobResult
}

// writeQueue collects jobs that share one lock signature.
type writeQueue struct {
	writes []rdb.TableShards
	read   []string

	mu     sync.Mutex
	jobs   []*writeJob
	leader bool
}

// writeScheduler owns one queue per lock signature.
type writeScheduler struct {
	db *rdb.Database

	mu     sync.Mutex
	queues map[string]*writeQueue

	batches  atomic.Uint64
	ops      atomic.Uint64
	maxBatch atomic.Uint64
	// shardBatches[i] counts committed batches whose write set claimed
	// shard i (sized to the database's shard count); wholeBatches counts
	// batches with at least one whole-table write lock.
	shardBatches []atomic.Uint64
	wholeBatches atomic.Uint64
}

func newWriteScheduler(db *rdb.Database) *writeScheduler {
	return &writeScheduler{
		db:           db,
		queues:       make(map[string]*writeQueue),
		shardBatches: make([]atomic.Uint64, db.NumShards()),
	}
}

// lockSignature canonicalizes a whole-table lock set; plans precompute
// it at compile time so the per-operation scheduler path allocates
// nothing for routing. Lock sets are sorted at compile time, so equal
// sets produce equal signatures.
func lockSignature(write, read []string) string {
	return strings.Join(write, "\x00") + "\x01" + strings.Join(read, "\x00")
}

// lockSignatureShards canonicalizes a keyed lock demand: the routing
// key carries each write table's shard mask, so operations on disjoint
// key ranges of the same table land in different queues — and their
// batches, holding disjoint shard locks, commit in parallel.
func lockSignatureShards(writes []rdb.TableShards, read []string) string {
	var b strings.Builder
	for i, w := range writes {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(w.Table)
		if w.Shards != 0 {
			b.WriteByte(2)
			b.WriteString(strconv.FormatUint(uint64(w.Shards), 16))
		}
	}
	b.WriteByte(1)
	b.WriteString(strings.Join(read, "\x00"))
	return b.String()
}

// wholeShards wraps a whole-table write set in the shard-aware form
// (zero masks = whole-table locks).
func wholeShards(tables []string) []rdb.TableShards {
	out := make([]rdb.TableShards, len(tables))
	for i, t := range tables {
		out[i] = rdb.TableShards{Table: t}
	}
	return out
}

// queue returns (creating if needed) the queue for a lock signature.
func (s *writeScheduler) queue(sig string, writes []rdb.TableShards, read []string) *writeQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[sig]
	if !ok {
		q = &writeQueue{writes: writes, read: read}
		s.queues[sig] = q
	}
	return q
}

// run executes one operation through the scheduler and returns its
// result after the batch containing it committed. The calling
// goroutine either becomes the leader of a new batch (executing its
// own operation plus everything queued meanwhile) or enqueues behind
// the active leader and waits.
func (s *writeScheduler) run(sig string, writes []rdb.TableShards, read []string, exec func(tx *rdb.Tx) (*OpResult, error)) (*OpResult, error) {
	q := s.queue(sig, writes, read)
	q.mu.Lock()
	if q.leader {
		job := &writeJob{exec: exec, done: make(chan jobResult, 1)}
		q.jobs = append(q.jobs, job)
		q.mu.Unlock()
		r := <-job.done
		return r.res, r.err
	}
	q.leader = true
	q.mu.Unlock()

	res, err := s.commitBatch(q, exec)

	// Jobs that queued while this batch ran have no goroutine of their
	// own executing the queue; hand the leadership on.
	q.mu.Lock()
	if len(q.jobs) > 0 {
		go s.leadLoop(q)
	} else {
		q.leader = false
	}
	q.mu.Unlock()
	return res, err
}

// leadLoop drains a queue batch by batch until it is empty, then
// releases leadership.
func (s *writeScheduler) leadLoop(q *writeQueue) {
	for {
		q.mu.Lock()
		if len(q.jobs) == 0 {
			q.leader = false
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		s.commitBatch(q, nil)
	}
}

// commitBatch runs the leader's own operation (when non-nil) plus up
// to maxBatchOps queued jobs inside one transaction and delivers the
// queued jobs' results after the commit.
func (s *writeScheduler) commitBatch(q *writeQueue, own func(tx *rdb.Tx) (*OpResult, error)) (*OpResult, error) {
	q.mu.Lock()
	batch := q.jobs
	if len(batch) > maxBatchOps {
		q.jobs = append([]*writeJob(nil), batch[maxBatchOps:]...)
		batch = batch[:maxBatchOps]
	} else {
		q.jobs = nil
	}
	q.mu.Unlock()

	tx := s.db.BeginWriteShards(q.writes, q.read)
	defer tx.Rollback()

	var ownRes *OpResult
	var ownErr error
	n := uint64(len(batch))
	if own != nil {
		ownRes, ownErr = runSavepointed(tx, own)
		n++
	}
	results := make([]jobResult, len(batch))
	for i, job := range batch {
		res, err := runSavepointed(tx, job.exec)
		results[i] = jobResult{res: res, err: err}
	}
	if cerr := tx.Commit(); cerr != nil {
		// Commit failure loses the whole batch; surface it everywhere.
		if ownErr == nil {
			ownErr = cerr
		}
		for i := range results {
			if results[i].err == nil {
				results[i].err = cerr
			}
		}
	}
	// Deliver only after the commit, so every submitter observes its
	// own write as soon as it resumes.
	for i, job := range batch {
		job.done <- results[i]
	}
	s.batches.Add(1)
	s.ops.Add(n)
	whole := false
	for _, w := range q.writes {
		if w.Shards == 0 {
			whole = true
			continue
		}
		for i := range s.shardBatches {
			if w.Shards.Has(i) {
				s.shardBatches[i].Add(1)
			}
		}
	}
	if whole {
		s.wholeBatches.Add(1)
	}
	for {
		cur := s.maxBatch.Load()
		if n <= cur || s.maxBatch.CompareAndSwap(cur, n) {
			break
		}
	}
	return ownRes, ownErr
}

// runSavepointed brackets one operation with a savepoint so a failure
// (including a stale-plan abort) leaves its batch mates untouched. A
// panicking operation is converted into an error for the same reason:
// if it unwound the leader, every queued job would block forever on a
// result that never comes and the queue's leadership would wedge.
func runSavepointed(tx *rdb.Tx, exec func(tx *rdb.Tx) (*OpResult, error)) (res *OpResult, err error) {
	sp := tx.Savepoint()
	defer func() {
		if r := recover(); r != nil {
			tx.RollbackTo(sp)
			res, err = nil, fmt.Errorf("core: batched operation panicked: %v", r)
		}
	}()
	res, err = exec(tx)
	if err != nil {
		tx.RollbackTo(sp)
	}
	return res, err
}

// runLocked executes exec under the given lock demand — through the
// group-commit scheduler when batching is on, in its own transaction
// otherwise. wholeSig is the plan's precomputed whole-table routing
// signature; a non-nil shards narrows the write locks to key shards
// and routes by a shard-aware signature, so operations on disjoint key
// ranges of the same table batch — and commit — independently.
func (m *Mediator) runLocked(wholeSig string, writeTables, readTables []string, shards []rdb.TableShards, exec func(tx *rdb.Tx) (*OpResult, error)) (*OpResult, error) {
	sig, writes := wholeSig, shards
	if writes == nil {
		writes = wholeShards(writeTables)
	} else {
		sig = lockSignatureShards(writes, readTables)
	}
	if m.sched != nil {
		return m.sched.run(sig, writes, readTables, exec)
	}
	tx := m.db.BeginWriteShards(writes, readTables)
	defer tx.Rollback()
	res, err := exec(tx)
	if err != nil {
		return res, err
	}
	return res, tx.Commit()
}

// SchedulerStats reports the group-commit scheduler's counters; the
// batch counters are zero when batching is disabled (keyed fallbacks
// are counted either way).
func (m *Mediator) SchedulerStats() SchedulerStats {
	st := SchedulerStats{KeyedFallbacks: m.keyedFallbacks.Load()}
	if m.sched == nil {
		return st
	}
	st.Batches = m.sched.batches.Load()
	st.Ops = m.sched.ops.Load()
	st.MaxBatch = m.sched.maxBatch.Load()
	st.ShardBatches = make([]uint64, len(m.sched.shardBatches))
	for i := range m.sched.shardBatches {
		st.ShardBatches[i] = m.sched.shardBatches[i].Load()
	}
	st.WholeTableBatches = m.sched.wholeBatches.Load()
	return st
}
