package core

import (
	"fmt"
	"strconv"
	"strings"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
)

// literalToValue converts a triple object into the engine value for a
// column, driven by the column's declared type (the paper's Listing
// 15 writes ont:pubYear "2009" as a string literal that lands in an
// INTEGER column).
func literalToValue(o rdf.Term, col *rdb.Column, subject, property string) (rdb.Value, error) {
	if !o.IsLiteral() {
		return rdb.Null, &feedback.Violation{
			Constraint: "Mapping", Subject: subject, Property: property,
			Value: o.String(),
			Hint:  "this property maps to a data attribute and requires a literal object",
		}
	}
	lex := o.Value
	switch col.Type {
	case rdb.TInt:
		v, err := strconv.ParseInt(strings.TrimSpace(lex), 10, 64)
		if err != nil {
			return rdb.Null, &feedback.Violation{
				Constraint: "Type", Column: col.Name, Subject: subject, Property: property,
				Value: lex, Hint: "the column requires an integer value",
			}
		}
		return rdb.Int(v), nil
	case rdb.TFloat:
		v, err := strconv.ParseFloat(strings.TrimSpace(lex), 64)
		if err != nil {
			return rdb.Null, &feedback.Violation{
				Constraint: "Type", Column: col.Name, Subject: subject, Property: property,
				Value: lex, Hint: "the column requires a numeric value",
			}
		}
		return rdb.Float(v), nil
	case rdb.TBool:
		switch lex {
		case "true", "1":
			return rdb.Bool(true), nil
		case "false", "0":
			return rdb.Bool(false), nil
		}
		return rdb.Null, &feedback.Violation{
			Constraint: "Type", Column: col.Name, Subject: subject, Property: property,
			Value: lex, Hint: "the column requires a boolean value",
		}
	default:
		return rdb.String_(lex), nil
	}
}

// valueToTerm converts a stored value back into the RDF object term
// for a data attribute, honouring a declared datatype.
func valueToTerm(v rdb.Value, am *r3m.AttributeMap) rdf.Term {
	if am.Datatype != "" {
		return rdf.TypedLiteral(v.Text(), am.Datatype)
	}
	// Without a declared datatype the view uses plain literals, as the
	// paper's listings do (ont:pubYear "2009").
	return rdf.Literal(v.Text())
}

// objectToKeyValue resolves the object of a foreign-key property: it
// must be an instance URI of the referenced table; the referenced
// primary key value is extracted from the URI and converted to the
// referenced column's type.
func (m *Mediator) objectToKeyValue(tx *rdb.Tx, o rdf.Term, refTM *r3m.TableMap, subject, property string) (rdb.Value, error) {
	if !o.IsIRI() {
		return rdb.Null, &feedback.Violation{
			Constraint: "Mapping", Subject: subject, Property: property, Value: o.String(),
			RefTable: refTM.Name,
			Hint:     "this property maps to a foreign key and requires an instance URI of the referenced class",
		}
	}
	tm, vals, err := m.mapping.IdentifyTable(o.Value)
	if err != nil || tm.Name != refTM.Name {
		return rdb.Null, &feedback.Violation{
			Constraint: "Mapping", Subject: subject, Property: property, Value: o.Value,
			RefTable: refTM.Name,
			Hint:     fmt.Sprintf("the object URI must match the %q URI pattern %q", refTM.Name, refTM.URIPattern),
		}
	}
	schema, schemaErr := tx.Schema(refTM.Name)
	if schemaErr != nil {
		return rdb.Null, schemaErr
	}
	return m.keyValueFromPattern(schema, vals, subject, property)
}

// keyValueFromPattern converts the single extracted key lexical value
// to the referenced table's primary key type.
func (m *Mediator) keyValueFromPattern(schema *rdb.TableSchema, vals map[string]string, subject, property string) (rdb.Value, error) {
	if len(schema.PrimaryKey) != 1 {
		return rdb.Null, fmt.Errorf("core: table %q must have a single-column primary key", schema.Name)
	}
	pkName := schema.PrimaryKey[0]
	lex, ok := vals[pkName]
	if !ok {
		// Pattern attribute names are case-preserving; fall back to a
		// case-insensitive scan.
		for k, v := range vals {
			if strings.EqualFold(k, pkName) {
				lex, ok = v, true
				break
			}
		}
	}
	if !ok {
		return rdb.Null, fmt.Errorf("core: URI pattern for %q did not bind primary key %q", schema.Name, pkName)
	}
	col, _ := schema.Column(pkName)
	return literalToValue(rdf.Literal(lex), col, subject, property)
}

// subjectEntity is a subject URI resolved to its table and key.
type subjectEntity struct {
	uri    string
	tm     *r3m.TableMap
	schema *rdb.TableSchema
	pkName string
	pkVal  rdb.Value
}

// resolveSubject implements Algorithm 1 step two for one subject.
func (m *Mediator) resolveSubject(tx *rdb.Tx, s rdf.Term) (*subjectEntity, error) {
	if !s.IsIRI() {
		return nil, &feedback.Violation{
			Constraint: "Mapping", Subject: s.String(),
			Hint: "subjects must be instance URIs matching a mapped URI pattern (blank nodes cannot address rows)",
		}
	}
	tm, vals, err := m.mapping.IdentifyTable(s.Value)
	if err != nil {
		return nil, &feedback.Violation{
			Constraint: "Mapping", Subject: s.Value,
			Hint: "the subject URI matches no table mapping; check the URI pattern and prefix",
		}
	}
	schema, err := tx.Schema(tm.Name)
	if err != nil {
		return nil, err
	}
	pkVal, err := m.keyValueFromPattern(schema, vals, s.Value, "")
	if err != nil {
		return nil, err
	}
	return &subjectEntity{
		uri: s.Value, tm: tm, schema: schema,
		pkName: schema.PrimaryKey[0], pkVal: pkVal,
	}, nil
}

// instanceURIFor builds the RDF instance URI for a row of tm.
func (m *Mediator) instanceURIFor(tm *r3m.TableMap, schema *rdb.TableSchema, row []rdb.Value) (string, error) {
	attrs, err := tm.PatternAttributes(m.mapping.URIPrefix)
	if err != nil {
		return "", err
	}
	vals := make(map[string]string, len(attrs))
	for _, a := range attrs {
		ci := schema.ColumnIndex(a)
		if ci < 0 {
			return "", fmt.Errorf("core: pattern attribute %q missing from table %q", a, tm.Name)
		}
		vals[a] = row[ci].Text()
	}
	return m.mapping.InstanceURI(tm, vals)
}
