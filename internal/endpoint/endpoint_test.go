package endpoint

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"ontoaccess/internal/core"
	"ontoaccess/internal/ntriples"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/workload"
)

func newServer(t *testing.T) (*Server, *core.Mediator) {
	t.Helper()
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return New(m), m
}

func post(t *testing.T, s *Server, path, contentType, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", contentType)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestUpdateEndpointSuccess(t *testing.T) {
	s, m := newServer(t)
	rec := post(t, s, "/update", "application/sparql-update", workload.Listing15)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "fb:Success") {
		t.Errorf("body:\n%s", rec.Body)
	}
	if m.DB().TotalRows() != 6 {
		t.Errorf("rows = %d", m.DB().TotalRows())
	}
}

func TestUpdateEndpointFormEncoded(t *testing.T) {
	s, _ := newServer(t)
	form := url.Values{"update": {workload.Listing13}}
	rec := post(t, s, "/update", "application/x-www-form-urlencoded", form.Encode())
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", rec.Code, rec.Body)
	}
}

func TestUpdateEndpointConstraintViolation(t *testing.T) {
	s, _ := newServer(t)
	rec := post(t, s, "/update", "application/sparql-update", workload.Prologue+`
INSERT DATA { ex:author9 foaf:firstName "Anon" . }`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"fb:Failure", "fb:NotNullViolation", `"lastname"`} {
		if !strings.Contains(body, want) {
			t.Errorf("feedback missing %s:\n%s", want, body)
		}
	}
}

func TestUpdateEndpointParseError(t *testing.T) {
	s, _ := newServer(t)
	rec := post(t, s, "/update", "application/sparql-update", "THIS IS NOT SPARQL")
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "fb:Failure") {
		t.Errorf("parse failure body:\n%s", rec.Body)
	}
}

func TestUpdateEndpointRejectsGet(t *testing.T) {
	s, _ := newServer(t)
	req := httptest.NewRequest(http.MethodGet, "/update", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestUpdateEndpointEmptyBody(t *testing.T) {
	s, _ := newServer(t)
	rec := post(t, s, "/update", "application/sparql-update", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestQueryEndpointSelect(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	q := url.QueryEscape(workload.Prologue + `SELECT ?name WHERE { ex:team5 foaf:name ?name . }`)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+q, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body:\n%s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "Software Engineering") {
		t.Errorf("body:\n%s", rec.Body)
	}
}

func TestQueryEndpointAskAndConstruct(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	ask := url.QueryEscape(workload.Prologue + `ASK { ex:author6 foaf:family_name "Hert" . }`)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+ask, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if strings.TrimSpace(rec.Body.String()) != "true" {
		t.Errorf("ASK body = %q", rec.Body.String())
	}
	construct := url.QueryEscape(workload.Prologue + `CONSTRUCT { ?a ont:wrote ?p . } WHERE { ?p dc:creator ?a . }`)
	req = httptest.NewRequest(http.MethodGet, "/sparql?query="+construct, nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "ont:wrote") {
		t.Errorf("CONSTRUCT body:\n%s", rec.Body)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	s, _ := newServer(t)
	req := httptest.NewRequest(http.MethodGet, "/sparql", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing query: status = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/sparql?query=garbage", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad query: status = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodDelete, "/sparql?query=x", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("bad method: status = %d", rec.Code)
	}
}

func TestExportEndpoint(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	req := httptest.NewRequest(http.MethodGet, "/export", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "ex:author6") {
		t.Errorf("turtle export:\n%s", rec.Body)
	}
	req = httptest.NewRequest(http.MethodGet, "/export", nil)
	req.Header.Set("Accept", "application/n-triples")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	g, err := ntriples.ParseString(rec.Body.String())
	if err != nil {
		t.Fatalf("export is not valid N-Triples: %v", err)
	}
	if g.Len() != 19 {
		t.Errorf("exported %d triples", g.Len())
	}
}

func TestMappingAndHealthEndpoints(t *testing.T) {
	s, _ := newServer(t)
	req := httptest.NewRequest(http.MethodGet, "/mapping", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "r3m:DatabaseMap") {
		t.Errorf("mapping body:\n%s", rec.Body)
	}
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	for _, want := range []string{"table author: 0 rows", "snapshot version: ", "write batches: ",
		"shard batches: 0 keyed claims, 0 whole-table, 0 keyed fallbacks",
		"query executions: 0 compiled, 0 fallback",
		// the planner statistics: per-index distinct counts ride the row counts
		"id: 0 distinct", "team: 0 distinct"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("health body lacks %q:\n%s", want, rec.Body)
		}
	}
}

// TestHealthQueryExecStats checks that /healthz tracks the read path's
// plan effectiveness: a compiled FILTER+ORDER BY query counts as
// compiled, an expression shape the translator cannot lower (STR) as
// fallback.
func TestHealthQueryExecStats(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	for _, q := range []string{
		`SELECT ?l WHERE { ?x foaf:family_name ?l . FILTER (?l >= "A") } ORDER BY ?l LIMIT 2`,
		`SELECT ?x WHERE { ?x foaf:family_name ?l . FILTER (STR(?l) = "Hert") }`,
	} {
		req := httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(workload.Prologue+q), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("query %q status %d:\n%s", q, rec.Code, rec.Body)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "query executions: 1 compiled, 1 fallback") {
		t.Errorf("health body lacks the exec split:\n%s", rec.Body)
	}
}

func TestQueryEndpointJSONResults(t *testing.T) {
	s, _ := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	q := url.QueryEscape(workload.Prologue + `SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }`)
	req := httptest.NewRequest(http.MethodGet, "/sparql?query="+q, nil)
	req.Header.Set("Accept", "application/sparql-results+json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type = %q", ct)
	}
	vars, sols, err := sparql.ParseResultsJSON(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("invalid results JSON: %v\n%s", err, rec.Body)
	}
	if len(vars) != 2 || len(sols) != 1 {
		t.Fatalf("vars=%v sols=%v", vars, sols)
	}
	if sols[0]["m"].Value != "mailto:hert@ifi.uzh.ch" {
		t.Errorf("mbox = %v", sols[0]["m"])
	}
	// ASK as JSON.
	ask := url.QueryEscape(workload.Prologue + `ASK { ex:author6 foaf:family_name "Hert" . }`)
	req = httptest.NewRequest(http.MethodGet, "/sparql?query="+ask, nil)
	req.Header.Set("Accept", "application/json")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	b, err := sparql.ParseAskJSON(rec.Body.Bytes())
	if err != nil || !b {
		t.Errorf("ASK JSON = %v, %v:\n%s", b, err, rec.Body)
	}
}

// TestConcurrentQueryUpdateSnapshotConsistency hammers /update with a
// MODIFY stream that rotates two properties of one author in lockstep
// (both carry the same serial) while parallel /query readers assert
// every response shows the pair from a single committed snapshot —
// never a half-applied MODIFY. Run under -race this also validates
// the endpoint's lock-free read path against the write scheduler.
func TestConcurrentQueryUpdateSnapshotConsistency(t *testing.T) {
	s, _ := newServer(t)
	rec := post(t, s, "/update", "application/sparql-update", workload.Prologue+`
INSERT DATA { ex:team1 foaf:name "T" ; ont:teamCode "T1" . }
INSERT DATA {
  ex:author1 foaf:firstName "F0" ;
      foaf:family_name "Hert" ;
      foaf:mbox <mailto:s0@example.org> ;
      ont:team ex:team1 .
}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("seed status = %d:\n%s", rec.Code, rec.Body)
	}

	const modifies = 120
	const readers = 4
	writerDone := make(chan struct{})
	errs := make(chan error, readers+1)
	go func() {
		defer close(writerDone)
		for i := 1; i <= modifies; i++ {
			body := fmt.Sprintf(workload.Prologue+`
MODIFY
DELETE { ex:author1 foaf:firstName ?f ; foaf:mbox ?m . }
INSERT { ex:author1 foaf:firstName "F%d" ; foaf:mbox <mailto:s%d@example.org> . }
WHERE { ex:author1 foaf:firstName ?f ; foaf:mbox ?m . }`, i, i)
			rec := post(t, s, "/update", "application/sparql-update", body)
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("modify %d: status %d:\n%s", i, rec.Code, rec.Body)
				return
			}
		}
	}()

	query := url.QueryEscape(workload.Prologue +
		`SELECT ?f ?m WHERE { ex:author1 foaf:firstName ?f ; foaf:mbox ?m . }`)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				req := httptest.NewRequest(http.MethodGet, "/sparql?query="+query, nil)
				req.Header.Set("Accept", "application/sparql-results+json")
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("query status %d:\n%s", rec.Code, rec.Body)
					return
				}
				_, sols, err := sparql.ParseResultsJSON(rec.Body.Bytes())
				if err != nil {
					errs <- fmt.Errorf("results JSON: %v", err)
					return
				}
				if len(sols) != 1 {
					errs <- fmt.Errorf("saw %d solutions mid-MODIFY, want exactly 1", len(sols))
					return
				}
				f, m := sols[0]["f"].Value, sols[0]["m"].Value
				serial := strings.TrimPrefix(f, "F")
				if want := "mailto:s" + serial + "@example.org"; m != want {
					errs <- fmt.Errorf("torn snapshot: firstName %q paired with mbox %q", f, m)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-writerDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The final state carries the last serial, and health reflects the
	// write traffic.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	if strings.Contains(hrec.Body.String(), "snapshot version: 0") {
		t.Errorf("snapshot version did not advance:\n%s", hrec.Body)
	}
}

func TestEndToEndModifyOverHTTP(t *testing.T) {
	s, m := newServer(t)
	post(t, s, "/update", "application/sparql-update", workload.Listing15)
	rec := post(t, s, "/update", "application/sparql-update", workload.Listing11)
	if rec.Code != http.StatusOK {
		t.Fatalf("modify status = %d:\n%s", rec.Code, rec.Body)
	}
	res, err := m.Query(workload.Prologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["m"].Value != "mailto:hert@example.com" {
		t.Errorf("mbox after modify = %v", res.Solutions)
	}
}
