package sqlexec

import (
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
)

func TestLikeOperator(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES
	  (1, 'Software Engineering', 'SEAL'),
	  (2, 'Systems Group', 'SYS'),
	  (3, 'Databases', 'DB')`)
	rs, err := Query(db, `SELECT id FROM team WHERE name LIKE 'S%' ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team WHERE name NOT LIKE 'S%'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.Int(3) {
		t.Errorf("not-like = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team WHERE code LIKE '___'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.Int(2) {
		t.Errorf("underscore = %v", rs.Rows)
	}
	// LIKE on non-strings is an error.
	if _, err := Query(db, `SELECT id FROM team WHERE id LIKE 'x'`); err == nil {
		t.Error("LIKE on integer must fail")
	}
}

func TestInListOperator(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES (1, 'A', 'a'), (2, 'B', 'b'), (3, 'C', 'c'), (4, NULL, 'd')`)
	rs, err := Query(db, `SELECT id FROM team WHERE id IN (1, 3) ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || rs.Rows[1][0] != rdb.Int(3) {
		t.Errorf("in = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT id FROM team WHERE id NOT IN (1, 2, 3)`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.Int(4) {
		t.Errorf("not-in = %v", rs.Rows)
	}
	// NULL IN (...) is NULL, never true.
	rs, _ = Query(db, `SELECT id FROM team WHERE name IN ('A', 'missing') OR name IS NULL ORDER BY id`)
	if len(rs.Rows) != 2 {
		t.Errorf("null-in mix = %v", rs.Rows)
	}
}

func TestSelectExpressionsInProjection(t *testing.T) {
	db := paperDB(t)
	Run(db, listing16)
	rs, err := Query(db, `SELECT title, year + 1 AS next FROM publication`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Columns[1] != "next" || rs.Rows[0][1] != rdb.Int(2010) {
		t.Errorf("projection = %v %v", rs.Columns, rs.Rows)
	}
	// Unaliased expression gets a synthetic name.
	rs, _ = Query(db, `SELECT year * 2 FROM publication`)
	if !strings.HasPrefix(rs.Columns[0], "expr") {
		t.Errorf("synthetic column = %v", rs.Columns)
	}
}

func TestSelectNegationAndIsNullInWhere(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES (1, 'A', NULL), (2, 'B', 'x')`)
	rs, err := Query(db, `SELECT id FROM team WHERE NOT (code IS NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.Int(2) {
		t.Errorf("rows = %v", rs.Rows)
	}
	rs, _ = Query(db, `SELECT -id FROM team WHERE id = 2`)
	if rs.Rows[0][0] != rdb.Int(-2) {
		t.Errorf("neg = %v", rs.Rows)
	}
}

func TestUpdateAllRowsNoWhere(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES (1, 'A', 'a'), (2, 'B', 'b')`)
	res, err := Run(db, `UPDATE team SET code = 'z'`)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].RowsAffected != 2 {
		t.Errorf("affected = %d", res[0].RowsAffected)
	}
	rs, _ := Query(db, `SELECT DISTINCT code FROM team`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != rdb.String_("z") {
		t.Errorf("codes = %v", rs.Rows)
	}
}

func TestQueryRejectsNonSelect(t *testing.T) {
	db := paperDB(t)
	if _, err := Query(db, `DELETE FROM team`); err == nil {
		t.Error("Query must reject DML")
	}
}

func TestExecRejectsDDL(t *testing.T) {
	db := paperDB(t)
	err := db.Update(func(tx *rdb.Tx) error {
		_, err := ExecSQL(tx, `DROP TABLE team`)
		return err
	})
	if err == nil {
		t.Error("Exec must reject DDL")
	}
}

func TestRunDDLAndDrop(t *testing.T) {
	db := rdb.NewDatabase("d")
	if _, err := Run(db, `
CREATE TABLE a (id INTEGER PRIMARY KEY AUTO_INCREMENT, v VARCHAR);
INSERT INTO a (v) VALUES ('x'), ('y');
`); err != nil {
		t.Fatal(err)
	}
	rs, _ := Query(db, `SELECT id FROM a ORDER BY id`)
	if len(rs.Rows) != 2 || rs.Rows[0][0] != rdb.Int(1) || rs.Rows[1][0] != rdb.Int(2) {
		t.Errorf("auto ids = %v", rs.Rows)
	}
	// Explicit key bumps the counter.
	Run(db, `INSERT INTO a (id, v) VALUES (10, 'z'); INSERT INTO a (v) VALUES ('w')`)
	rs, _ = Query(db, `SELECT id FROM a WHERE v = 'w'`)
	if rs.Rows[0][0] != rdb.Int(11) {
		t.Errorf("post-explicit auto id = %v", rs.Rows)
	}
	if _, err := Run(db, `DROP TABLE a`); err != nil {
		t.Fatal(err)
	}
	if len(db.TableNames()) != 0 {
		t.Error("table not dropped")
	}
}

func TestWhereTypeErrorSurfacesFromScan(t *testing.T) {
	db := paperDB(t)
	Run(db, `INSERT INTO team (id, name, code) VALUES (1, 'A', 'a')`)
	// Comparing string with integer is an error, not silent falsity.
	if _, err := Query(db, `SELECT id FROM team WHERE name = 5`); err == nil {
		t.Error("cross-type comparison must error")
	}
	if _, err := Run(db, `UPDATE team SET code = 'x' WHERE name = 5`); err == nil {
		t.Error("update with bad where must error")
	}
	if _, err := Run(db, `DELETE FROM team WHERE name = 5`); err == nil {
		t.Error("delete with bad where must error")
	}
}
