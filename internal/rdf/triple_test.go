package rdf

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return NewTriple(IRI(s), IRI(p), Literal(o))
}

func TestGraphSetSemantics(t *testing.T) {
	g := NewGraph()
	a := tr("s", "p", "o")
	if !g.Add(a) {
		t.Fatal("first Add must report true")
	}
	if g.Add(a) {
		t.Fatal("duplicate Add must report false")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
	if !g.Contains(a) {
		t.Fatal("Contains must find added triple")
	}
	if !g.Remove(a) || g.Remove(a) {
		t.Fatal("Remove semantics wrong")
	}
	if g.Len() != 0 {
		t.Fatal("graph not empty after remove")
	}
}

func TestGraphTriplesSorted(t *testing.T) {
	g := NewGraph(tr("b", "p", "1"), tr("a", "p", "2"), tr("a", "p", "1"))
	ts := g.Triples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return CompareTriples(ts[i], ts[j]) < 0 }) {
		t.Error("Triples() not sorted")
	}
	if ts[0] != tr("a", "p", "1") {
		t.Errorf("first triple = %v", ts[0])
	}
}

func TestGraphCloneEqualDiff(t *testing.T) {
	g := NewGraph(tr("a", "p", "1"), tr("b", "p", "2"))
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone must equal original")
	}
	c.Add(tr("c", "p", "3"))
	if g.Equal(c) {
		t.Fatal("graphs of different size must differ")
	}
	d := c.Diff(g)
	if len(d) != 1 || d[0] != tr("c", "p", "3") {
		t.Fatalf("Diff = %v", d)
	}
	if len(g.Diff(c)) != 0 {
		t.Fatal("g has nothing c lacks")
	}
	// Same size, different content.
	e := NewGraph(tr("a", "p", "1"), tr("x", "p", "9"))
	if g.Equal(e) {
		t.Fatal("same-size different graphs must differ")
	}
}

func TestGraphAddAllAndEach(t *testing.T) {
	g := NewGraph(tr("a", "p", "1"))
	h := NewGraph(tr("a", "p", "1"), tr("b", "p", "2"))
	g.AddAll(h)
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	n := 0
	g.Each(func(Triple) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Each visited %d", n)
	}
	n = 0
	g.Each(func(Triple) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each with early stop visited %d", n)
	}
}

func TestGraphString(t *testing.T) {
	g := NewGraph(NewTriple(IRI("http://e/s"), IRI("http://e/p"), IRI("http://e/o")))
	want := "<http://e/s> <http://e/p> <http://e/o> .\n"
	if got := g.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !strings.HasSuffix(tr("s", "p", "o").String(), " .") {
		t.Error("triple String must end with ' .'")
	}
}

func TestCompareTriplesConsistent(t *testing.T) {
	f := func(s1, p1, o1, s2, p2, o2 string) bool {
		a, b := tr(s1, p1, o1), tr(s2, p2, o2)
		c1, c2 := CompareTriples(a, b), CompareTriples(b, a)
		if (c1 == 0) != (a == b) {
			return false
		}
		return sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphAddRemoveProperty(t *testing.T) {
	// Property: after adding a set of triples and removing a subset,
	// the graph contains exactly the set difference.
	f := func(keys []uint8, removeMask []bool) bool {
		g := NewGraph()
		want := map[Triple]bool{}
		for i, k := range keys {
			trp := tr("s", "p", string(rune('a'+k%26)))
			g.Add(trp)
			want[trp] = true
			if i < len(removeMask) && removeMask[i] {
				g.Remove(trp)
				delete(want, trp)
			}
		}
		if g.Len() != len(want) {
			return false
		}
		for trp := range want {
			if !g.Contains(trp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGraphAdd(b *testing.B) {
	b.ReportAllocs()
	g := NewGraph()
	for i := 0; i < b.N; i++ {
		g.Add(NewTriple(IRI("s"), IRI("p"), IntegerLiteral(int64(i))))
	}
}
