package update

import (
	"fmt"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
)

// Parse parses a SPARQL/Update request. A request may contain several
// operations after a shared prologue; operations may optionally be
// separated by ';'.
func Parse(src string) (*Request, error) {
	p, err := sparql.NewParser(src)
	if err != nil {
		return nil, err
	}
	if err := p.ParsePrologue(); err != nil {
		return nil, err
	}
	req := &Request{Prefixes: p.Prefixes}
	for {
		// Skip optional operation separators.
		for p.Tok().Kind == sparql.TokSemicolon {
			if err := p.Advance(); err != nil {
				return nil, err
			}
		}
		if p.Tok().Kind == sparql.TokEOF {
			break
		}
		op, err := parseOperation(p)
		if err != nil {
			return nil, err
		}
		req.Ops = append(req.Ops, op)
	}
	if len(req.Ops) == 0 {
		return nil, fmt.Errorf("update: request contains no operations")
	}
	return req, nil
}

func parseOperation(p *sparql.Parser) (Operation, error) {
	switch {
	case p.IsKeyword("INSERT"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.IsKeyword("DATA") {
			if err := p.Advance(); err != nil {
				return nil, err
			}
			ts, err := parseGroundBlock(p, "INSERT DATA")
			if err != nil {
				return nil, err
			}
			return InsertData{Triples: ts}, nil
		}
		// Standalone "INSERT { template } WHERE { pattern }".
		return parseTemplateWhere(p, nil)
	case p.IsKeyword("DELETE"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.IsKeyword("DATA") {
			if err := p.Advance(); err != nil {
				return nil, err
			}
			ts, err := parseGroundBlock(p, "DELETE DATA")
			if err != nil {
				return nil, err
			}
			return DeleteData{Triples: ts}, nil
		}
		// Standalone "DELETE { template } WHERE { pattern }".
		del, err := parseTemplateBlock(p)
		if err != nil {
			return nil, err
		}
		var ins []sparql.TriplePattern
		if p.IsKeyword("INSERT") {
			if err := p.Advance(); err != nil {
				return nil, err
			}
			ins, err = parseTemplateBlock(p)
			if err != nil {
				return nil, err
			}
		}
		where, err := parseWhere(p)
		if err != nil {
			return nil, err
		}
		return Modify{Delete: del, Insert: ins, Where: where}, nil
	case p.IsKeyword("MODIFY"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.Tok().Kind == sparql.TokIRIRef {
			return nil, p.Errorf("MODIFY with an explicit graph IRI is not supported (default graph only)")
		}
		var del, ins []sparql.TriplePattern
		var err error
		if p.IsKeyword("DELETE") {
			if err = p.Advance(); err != nil {
				return nil, err
			}
			del, err = parseTemplateBlock(p)
			if err != nil {
				return nil, err
			}
		}
		if p.IsKeyword("INSERT") {
			if err = p.Advance(); err != nil {
				return nil, err
			}
			ins, err = parseTemplateBlock(p)
			if err != nil {
				return nil, err
			}
		}
		if del == nil && ins == nil {
			return nil, p.Errorf("MODIFY requires at least one DELETE or INSERT clause")
		}
		where, err := parseWhere(p)
		if err != nil {
			return nil, err
		}
		return Modify{Delete: del, Insert: ins, Where: where}, nil
	case p.IsKeyword("CLEAR"):
		if err := p.Advance(); err != nil {
			return nil, err
		}
		if p.IsKeyword("GRAPH") {
			return nil, p.Errorf("CLEAR GRAPH is not supported (default graph only)")
		}
		return Clear{}, nil
	case p.IsKeyword("LOAD"), p.IsKeyword("CREATE"), p.IsKeyword("DROP"):
		return nil, p.Errorf("%s operations are not supported", p.Tok().Val)
	default:
		return nil, p.Errorf("expected an update operation (INSERT DATA, DELETE DATA, MODIFY), found %s %q",
			p.Tok().Kind, p.Tok().Val)
	}
}

// parseTemplateWhere handles "INSERT { template } WHERE { pattern }"
// after the INSERT keyword has been consumed.
func parseTemplateWhere(p *sparql.Parser, del []sparql.TriplePattern) (Operation, error) {
	if p.IsKeyword("INTO") {
		return nil, p.Errorf("INSERT INTO a named graph is not supported (default graph only)")
	}
	ins, err := parseTemplateBlock(p)
	if err != nil {
		return nil, err
	}
	where, err := parseWhere(p)
	if err != nil {
		return nil, err
	}
	return Modify{Delete: del, Insert: ins, Where: where}, nil
}

func parseWhere(p *sparql.Parser) (*sparql.GroupPattern, error) {
	if err := p.ExpectKeyword("WHERE"); err != nil {
		return nil, err
	}
	return p.ParseGroupGraphPattern()
}

// parseTemplateBlock parses "{ triples }" allowing variables.
func parseTemplateBlock(p *sparql.Parser) ([]sparql.TriplePattern, error) {
	if _, err := p.Expect(sparql.TokLBrace); err != nil {
		return nil, err
	}
	tps, err := p.ParseTriplesBlock()
	if err != nil {
		return nil, err
	}
	if _, err := p.Expect(sparql.TokRBrace); err != nil {
		return nil, err
	}
	if tps == nil {
		tps = []sparql.TriplePattern{}
	}
	return tps, nil
}

// parseGroundBlock parses "{ triples }" and requires every pattern to
// be ground (no variables), as INSERT DATA / DELETE DATA demand.
func parseGroundBlock(p *sparql.Parser, opName string) ([]rdf.Triple, error) {
	tps, err := parseTemplateBlock(p)
	if err != nil {
		return nil, err
	}
	out := make([]rdf.Triple, 0, len(tps))
	for _, tp := range tps {
		t, ok := tp.AsTriple()
		if !ok {
			return nil, fmt.Errorf("update: %s must not contain variables: %s", opName, tp)
		}
		out = append(out, t)
	}
	return out, nil
}
