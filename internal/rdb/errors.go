package rdb

import "fmt"

// ConstraintKind classifies integrity-constraint violations. The
// feedback package maps these onto the semantically rich RDF error
// reports the paper's Section 8 calls for.
type ConstraintKind int

// Constraint kinds.
const (
	ViolationNotNull ConstraintKind = iota
	ViolationPrimaryKey
	ViolationForeignKey
	ViolationUnique
	ViolationType
	ViolationRestrict // deleting a row that other rows reference
)

func (k ConstraintKind) String() string {
	switch k {
	case ViolationNotNull:
		return "NOT NULL"
	case ViolationPrimaryKey:
		return "PRIMARY KEY"
	case ViolationForeignKey:
		return "FOREIGN KEY"
	case ViolationUnique:
		return "UNIQUE"
	case ViolationType:
		return "TYPE"
	case ViolationRestrict:
		return "RESTRICT"
	}
	return "?"
}

// ConstraintError reports an integrity-constraint violation with
// enough structure for OntoAccess to produce meaningful client
// feedback (which table, which column, which value, which constraint).
type ConstraintError struct {
	Kind   ConstraintKind
	Table  string
	Column string
	Value  Value
	// RefTable is set for foreign key and restrict violations.
	RefTable string
	// Detail carries a human-oriented elaboration.
	Detail string
}

// Error implements error.
func (e *ConstraintError) Error() string {
	msg := fmt.Sprintf("rdb: %s constraint violation on %s", e.Kind, e.Table)
	if e.Column != "" {
		msg += "." + e.Column
	}
	if !e.Value.IsNull() || e.Kind == ViolationNotNull {
		msg += fmt.Sprintf(" (value %s)", e.Value)
	}
	if e.RefTable != "" {
		msg += fmt.Sprintf(" referencing %s", e.RefTable)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// LockError reports access to a table outside a transaction's
// declared lock set (or a write to a table locked read-only). It is a
// distinct type so callers holding per-table locks — the compiled-plan
// executors — can tell a coverage miss (fall back to the serialized
// whole-database path) from a genuine execution error.
type LockError struct {
	Table string
	// ReadOnly marks a write attempt on a shared-locked table; false
	// means the table was not covered at all.
	ReadOnly bool
	// Keyed marks an access outside a keyed (shard-locked)
	// transaction's declared key shards — a point access to an
	// undeclared key, or a scan/secondary probe that would read every
	// key range.
	Keyed bool
}

// Error implements error.
func (e *LockError) Error() string {
	if e.Keyed {
		return fmt.Sprintf("rdb: access to table %q outside this transaction's declared key shards", e.Table)
	}
	if e.ReadOnly {
		return fmt.Sprintf("rdb: table %q is locked read-only in this transaction", e.Table)
	}
	return fmt.Sprintf("rdb: table %q is outside this transaction's lock set", e.Table)
}

// TableError reports access to a missing table or column.
type TableError struct {
	Table  string
	Column string
}

// Error implements error.
func (e *TableError) Error() string {
	if e.Column != "" {
		return fmt.Sprintf("rdb: no column %q in table %q", e.Column, e.Table)
	}
	return fmt.Sprintf("rdb: no table %q", e.Table)
}
