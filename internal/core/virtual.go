package core

import (
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
)

// VirtualGraph exposes the mapped database as a read-only RDF graph:
// it implements sparql.Matcher by translating triple-pattern probes
// into primary-key lookups and table scans, so SPARQL queries and
// MODIFY WHERE clauses evaluate against the live relational data
// without materializing the view.
type VirtualGraph struct {
	m  *Mediator
	tx *rdb.Tx
}

// VirtualGraph returns the RDF view bound to an open transaction.
func (m *Mediator) VirtualGraph(tx *rdb.Tx) *VirtualGraph {
	return &VirtualGraph{m: m, tx: tx}
}

// Match implements sparql.Matcher. Zero-valued pattern terms are
// wildcards.
func (vg *VirtualGraph) Match(pattern rdf.Triple, fn func(rdf.Triple) bool) {
	emit := func(t rdf.Triple) bool {
		if !pattern.S.IsZero() && t.S != pattern.S {
			return true
		}
		if !pattern.P.IsZero() && t.P != pattern.P {
			return true
		}
		if !pattern.O.IsZero() && t.O != pattern.O {
			return true
		}
		return fn(t)
	}

	// Bound subject: a primary-key lookup instead of a scan.
	if pattern.S.IsIRI() {
		vg.matchSubject(pattern, emit)
		return
	}
	if pattern.S.IsZero() {
		switch {
		case pattern.P == rdf.IRI(rdf.RDFType):
			for _, tm := range vg.m.mapping.Tables {
				if !pattern.O.IsZero() && pattern.O != tm.Class {
					continue
				}
				if !vg.scanTable(tm, emit, true, nil) {
					return
				}
			}
		case !pattern.P.IsZero():
			if lt, ok := vg.m.mapping.LinkTableForProperty(pattern.P); ok {
				vg.scanLinkTable(lt, emit)
				return
			}
			for _, tm := range vg.m.mapping.Tables {
				if am, ok := tm.AttributeForProperty(pattern.P); ok {
					if !vg.scanTable(tm, emit, false, am) {
						return
					}
				}
			}
		default:
			for _, tm := range vg.m.mapping.Tables {
				if !vg.scanTable(tm, emit, true, nil) {
					return
				}
			}
			for _, lt := range vg.m.mapping.LinkTables {
				if !vg.scanLinkTable(lt, emit) {
					return
				}
			}
		}
	}
	// Blank-node or literal subjects never occur in the view.
}

// matchSubject resolves the subject URI to one row and emits its
// triples.
func (vg *VirtualGraph) matchSubject(pattern rdf.Triple, emit func(rdf.Triple) bool) {
	tm, vals, err := vg.m.mapping.IdentifyTable(pattern.S.Value)
	if err != nil {
		return // unmapped URI: no triples
	}
	schema, err := vg.tx.Schema(tm.Name)
	if err != nil {
		return
	}
	pkVal, err := vg.m.keyValueFromPattern(schema, vals, pattern.S.Value, "")
	if err != nil {
		return
	}
	_, row, exists, err := vg.tx.LookupPK(tm.Name, []rdb.Value{pkVal})
	if err != nil || !exists {
		return
	}
	if !vg.emitRowTriples(tm, schema, row, emit) {
		return
	}
	// Link rows where this row is the subject.
	for _, lt := range vg.m.mapping.LinkTables {
		subjRef, _ := lt.SubjectAttr.ForeignKeyRef()
		subjTM, _ := vg.m.mapping.ResolveTableRef(subjRef)
		if subjTM == nil || subjTM.Name != tm.Name {
			continue
		}
		if !vg.scanLinkTableFiltered(lt, &pkVal, emit) {
			return
		}
	}
}

// emitRowTriples produces the triples of one row: the rdf:type triple
// and one triple per mapped non-NULL attribute.
func (vg *VirtualGraph) emitRowTriples(tm *r3m.TableMap, schema *rdb.TableSchema, row []rdb.Value, emit func(rdf.Triple) bool) bool {
	uri, err := vg.m.instanceURIFor(tm, schema, row)
	if err != nil {
		return true
	}
	s := rdf.IRI(uri)
	if !emit(rdf.NewTriple(s, rdf.IRI(rdf.RDFType), tm.Class)) {
		return false
	}
	for _, am := range tm.Attributes {
		if am.Property.IsZero() {
			continue
		}
		ci := schema.ColumnIndex(am.Name)
		if ci < 0 || row[ci].IsNull() {
			continue
		}
		o, ok := vg.attrObjectTerm(am, row[ci])
		if !ok {
			continue
		}
		if !emit(rdf.NewTriple(s, am.Property, o)) {
			return false
		}
	}
	return true
}

// attrObjectTerm renders a stored value as the attribute's RDF object.
func (vg *VirtualGraph) attrObjectTerm(am *r3m.AttributeMap, v rdb.Value) (rdf.Term, bool) {
	if ref, isFK := am.ForeignKeyRef(); isFK {
		refTM, ok := vg.m.mapping.ResolveTableRef(ref)
		if !ok {
			return rdf.Term{}, false
		}
		refSchema, err := vg.tx.Schema(refTM.Name)
		if err != nil {
			return rdf.Term{}, false
		}
		uri, err := vg.m.mapping.InstanceURI(refTM, map[string]string{refSchema.PrimaryKey[0]: v.Text()})
		if err != nil {
			return rdf.Term{}, false
		}
		return rdf.IRI(uri), true
	}
	if am.IsObject {
		return rdf.IRI(am.ValuePrefix + v.Text()), true
	}
	return valueToTerm(v, am), true
}

// scanTable emits triples for every row; withType includes rdf:type
// triples and all attributes, a non-nil am restricts to one attribute.
func (vg *VirtualGraph) scanTable(tm *r3m.TableMap, emit func(rdf.Triple) bool, withType bool, am *r3m.AttributeMap) bool {
	schema, err := vg.tx.Schema(tm.Name)
	if err != nil {
		return true
	}
	cont := true
	vg.tx.Scan(tm.Name, func(_ int64, row []rdb.Value) bool {
		if am != nil {
			uri, err := vg.m.instanceURIFor(tm, schema, row)
			if err != nil {
				return true
			}
			ci := schema.ColumnIndex(am.Name)
			if ci < 0 || row[ci].IsNull() {
				return true
			}
			o, ok := vg.attrObjectTerm(am, row[ci])
			if !ok {
				return true
			}
			cont = emit(rdf.NewTriple(rdf.IRI(uri), am.Property, o))
			return cont
		}
		if withType {
			cont = vg.emitRowTriples(tm, schema, row, emit)
			return cont
		}
		return true
	})
	return cont
}

// scanLinkTable emits the property triples of a link table.
func (vg *VirtualGraph) scanLinkTable(lt *r3m.LinkTableMap, emit func(rdf.Triple) bool) bool {
	return vg.scanLinkTableFiltered(lt, nil, emit)
}

func (vg *VirtualGraph) scanLinkTableFiltered(lt *r3m.LinkTableMap, subjKey *rdb.Value, emit func(rdf.Triple) bool) bool {
	schema, err := vg.tx.Schema(lt.Name)
	if err != nil {
		return true
	}
	subjRef, _ := lt.SubjectAttr.ForeignKeyRef()
	subjTM, _ := vg.m.mapping.ResolveTableRef(subjRef)
	objRef, _ := lt.ObjectAttr.ForeignKeyRef()
	objTM, _ := vg.m.mapping.ResolveTableRef(objRef)
	if subjTM == nil || objTM == nil {
		return true
	}
	subjSchema, err := vg.tx.Schema(subjTM.Name)
	if err != nil {
		return true
	}
	objSchema, err := vg.tx.Schema(objTM.Name)
	if err != nil {
		return true
	}
	sci := schema.ColumnIndex(lt.SubjectAttr.Name)
	oci := schema.ColumnIndex(lt.ObjectAttr.Name)
	cont := true
	vg.tx.Scan(lt.Name, func(_ int64, row []rdb.Value) bool {
		if row[sci].IsNull() || row[oci].IsNull() {
			return true
		}
		if subjKey != nil && !rdb.Equal(row[sci], *subjKey) {
			return true
		}
		sURI, err := vg.m.mapping.InstanceURI(subjTM, map[string]string{subjSchema.PrimaryKey[0]: row[sci].Text()})
		if err != nil {
			return true
		}
		oURI, err := vg.m.mapping.InstanceURI(objTM, map[string]string{objSchema.PrimaryKey[0]: row[oci].Text()})
		if err != nil {
			return true
		}
		cont = emit(rdf.NewTriple(rdf.IRI(sURI), lt.Property, rdf.IRI(oURI)))
		return cont
	})
	return cont
}

// Export materializes the complete RDF view of the database — the
// graph a native triple store would hold after the same update
// history (used by the sync example and the bijectivity tests).
func (m *Mediator) Export() (*rdf.Graph, error) {
	return m.ExportOn(rdb.ReadTarget{})
}

// ExportOn materializes the RDF view of a read target — the graph a
// native triple store would have held when that version was the head
// (AsOf), or holds on a branch head (Branch).
func (m *Mediator) ExportOn(target rdb.ReadTarget) (*rdf.Graph, error) {
	g := rdf.NewGraph()
	err := m.viewOn(target, func(tx *rdb.Tx) error {
		vg := m.VirtualGraph(tx)
		vg.Match(rdf.Triple{}, func(t rdf.Triple) bool {
			g.Add(t)
			return true
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}
