package ontoaccess

import (
	"net/http/httptest"
	"testing"
	"time"

	"ontoaccess/internal/core"
	"ontoaccess/internal/endpoint"
	"ontoaccess/internal/workload"
)

// TestLoadSmoke runs the closed-loop HTTP load harness against the
// hardened endpoint at a load well under its limits: every request
// must succeed (no shedding, no timeouts), the latency percentiles
// must be populated and ordered, and both run modes (fixed-count and
// fixed-duration) must work. This is the CI gate (`make load-smoke`)
// that keeps the measurement harness behind BenchmarkE9 honest.
func TestLoadSmoke(t *testing.T) {
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := endpoint.NewWithOptions(m, endpoint.Options{
		MaxInFlight:    32,
		RequestTimeout: 30 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const authors = 50
	if err := workload.SeedLoad(ts.URL, authors, 1); err != nil {
		t.Fatal(err)
	}

	res, err := workload.RunLoad(workload.LoadOptions{
		BaseURL:           ts.URL,
		Workers:           4,
		RequestsPerWorker: 25,
		WriteFraction:     0.25,
		Authors:           authors,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*25 {
		t.Errorf("requests = %d, want %d", res.Requests, 4*25)
	}
	if res.Errors != 0 || res.Shed != 0 || res.TimedOut != 0 {
		t.Errorf("unloaded run must be clean: %d errors, %d shed, %d timed out",
			res.Errors, res.Shed, res.TimedOut)
	}
	if res.Throughput <= 0 {
		t.Errorf("throughput = %v", res.Throughput)
	}
	if res.P50 <= 0 || res.P50 > res.P95 || res.P95 > res.P99 {
		t.Errorf("percentiles unordered: p50=%v p95=%v p99=%v", res.P50, res.P95, res.P99)
	}
	st := srv.Stats()
	if st.Shed != 0 || st.TimedOut != 0 || st.Truncated != 0 {
		t.Errorf("endpoint stats after clean run: %+v", st)
	}
	if st.Streamed == 0 || st.Buffered == 0 || st.BytesWritten == 0 {
		t.Errorf("mixed traffic should hit both response modes: %+v", st)
	}

	dres, err := workload.RunLoad(workload.LoadOptions{
		BaseURL:       ts.URL,
		Workers:       2,
		Duration:      300 * time.Millisecond,
		WriteFraction: 0.25,
		Authors:       authors,
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dres.Requests == 0 || dres.Errors != 0 {
		t.Errorf("duration-mode run: %d requests, %d errors", dres.Requests, dres.Errors)
	}

	if _, err := workload.RunLoad(workload.LoadOptions{BaseURL: ts.URL}); err == nil {
		t.Error("RunLoad without a count or duration must refuse to run")
	}
}
