package experiments

import (
	"strings"
	"testing"
)

func run(t *testing.T, id string) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("experiment %q failed: %v", id, err)
	}
	return out
}

func TestAllRegistered(t *testing.T) {
	ids := []string{"figure1", "figure2", "table1", "listing9", "listing13", "listing15",
		"listing17", "listing11", "insert-as-update", "delete-as-delete"}
	all := All()
	if len(all) != len(ids) {
		t.Fatalf("experiments = %d, want %d", len(all), len(ids))
	}
	for i, id := range ids {
		if all[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestFigure1Golden(t *testing.T) {
	out := run(t, "figure1")
	for _, want := range []string{
		"CREATE TABLE team", "CREATE TABLE publication_author",
		"lastname VARCHAR NOT NULL", "year INTEGER NOT NULL",
		"team INTEGER REFERENCES team",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Golden(t *testing.T) {
	out := run(t, "figure2")
	for _, want := range []string{"foaf:Document a owl:Class", "ont:team a owl:ObjectProperty",
		"rdfs:domain foaf:Person"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 output missing %q:\n%s", want, out)
		}
	}
}

// TestTable1Golden locks the Table 1 reproduction to the paper's
// content.
func TestTable1Golden(t *testing.T) {
	out := run(t, "table1")
	wanted := []string{
		"publication -> foaf:Document",
		"title -> dc:title",
		"year -> ont:pubYear",
		"type -> ont:pubType",
		"publisher -> dc:publisher",
		"publisher -> ont:Publisher",
		"name -> ont:name",
		"pubtype -> ont:PubType",
		"type -> ont:type",
		"author -> foaf:Person",
		"title -> foaf:title",
		"email -> foaf:mbox",
		"firstname -> foaf:firstName",
		"lastname -> foaf:family_name",
		"team -> ont:team",
		"team -> foaf:Group",
		"name -> foaf:name",
		"code -> ont:teamCode",
		"publication_author -> -",
		"- -> dc:creator",
	}
	for _, w := range wanted {
		if !strings.Contains(out, w) {
			t.Errorf("Table 1 output missing %q:\n%s", w, out)
		}
	}
}

func TestListing9Golden(t *testing.T) {
	out := run(t, "listing9")
	want := "INSERT INTO author (id, title, email, firstname, lastname, team) " +
		"VALUES (6, 'Mr', 'hert@ifi.uzh.ch', 'Matthias', 'Hert', 5);"
	if !strings.Contains(out, want) {
		t.Errorf("missing Listing 10 SQL:\n%s", out)
	}
}

func TestListing13Golden(t *testing.T) {
	out := run(t, "listing13")
	if !strings.Contains(out, "INSERT INTO team (id, name, code) VALUES (4, 'Database Technology', 'DBTG');") {
		t.Errorf("missing Listing 14 SQL:\n%s", out)
	}
}

func TestListing15Golden(t *testing.T) {
	out := run(t, "listing15")
	stmts := []string{
		"INSERT INTO team (id, name, code) VALUES (5, 'Software Engineering', 'SEAL');",
		"INSERT INTO pubtype (id, type) VALUES (4, 'inproceedings');",
		"INSERT INTO publisher (id, name) VALUES (3, 'Springer');",
		"INSERT INTO publication (id, title, year, type, publisher) VALUES (12, 'Relational...', 2009, 4, 3);",
		"INSERT INTO author (id, title, email, firstname, lastname, team) VALUES (6, 'Mr', 'hert@ifi.uzh.ch', 'Matthias', 'Hert', 5);",
		"INSERT INTO publication_author (publication, author) VALUES (12, 6);",
	}
	for _, s := range stmts {
		if !strings.Contains(out, s) {
			t.Errorf("missing Listing 16 statement %q:\n%s", s, out)
		}
	}
	// Ordering: publication before its link row, pubtype before
	// publication.
	if strings.Index(out, "INSERT INTO pubtype") > strings.Index(out, "INSERT INTO publication (") {
		t.Error("pubtype must precede publication")
	}
	if strings.Index(out, "INSERT INTO publication (") > strings.Index(out, "INSERT INTO publication_author") {
		t.Error("publication must precede the link table")
	}
}

func TestListing17Golden(t *testing.T) {
	out := run(t, "listing17")
	if !strings.Contains(out, "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';") {
		t.Errorf("missing Listing 18 SQL:\n%s", out)
	}
}

func TestListing11Golden(t *testing.T) {
	out := run(t, "listing11")
	if !strings.Contains(out, "WHERE solutions (bindings): 1") {
		t.Errorf("missing binding count:\n%s", out)
	}
	if !strings.Contains(out, "SELECT") {
		t.Errorf("missing translated SELECT:\n%s", out)
	}
	if !strings.Contains(out, "email = 'hert@example.com'") {
		t.Errorf("missing final update:\n%s", out)
	}
}

func TestInsertAsUpdateGolden(t *testing.T) {
	out := run(t, "insert-as-update")
	if !strings.Contains(out, "UPDATE author SET") || !strings.Contains(out, "WHERE id = 7") {
		t.Errorf("missing UPDATE:\n%s", out)
	}
}

func TestDeleteAsDeleteGolden(t *testing.T) {
	out := run(t, "delete-as-delete")
	if !strings.Contains(out, "DELETE FROM team WHERE id = 9;") {
		t.Errorf("missing DELETE:\n%s", out)
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if strings.Contains(out, "REJECTED") {
			t.Errorf("%s unexpectedly rejected:\n%s", e.ID, out)
		}
		if len(out) == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
	}
}
