package sparql

import (
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
)

// evalExprSrc parses and evaluates a standalone expression against a
// binding.
func evalExprSrc(t *testing.T, src string, b Binding) (rdf.Term, error) {
	t.Helper()
	p, err := NewParser(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	e, err := p.ParseExpr()
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e.Eval(b)
}

func wantBool(t *testing.T, src string, b Binding, want bool) {
	t.Helper()
	v, err := evalExprSrc(t, src, b)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	got, err := EffectiveBool(v)
	if err != nil {
		t.Fatalf("ebv %q: %v", src, err)
	}
	if got != want {
		t.Errorf("%q = %v, want %v (binding %v)", src, got, want, b)
	}
}

func wantTypeError(t *testing.T, src string, b Binding) {
	t.Helper()
	v, err := evalExprSrc(t, src, b)
	if err != nil {
		return // eval-level type error
	}
	if _, err := EffectiveBool(v); err == nil {
		t.Errorf("%q = %v, want type error", src, v)
	}
}

func TestComparisonSemantics(t *testing.T) {
	b := Binding{
		"i": rdf.IntegerLiteral(5),
		"d": rdf.TypedLiteral("5.0", rdf.XSDDecimal),
		"s": rdf.Literal("abc"),
		"u": rdf.IRI("http://e/x"),
		"t": rdf.BooleanLiteral(true),
		"f": rdf.BooleanLiteral(false),
	}
	wantBool(t, `?i = 5`, b, true)
	wantBool(t, `?i = ?d`, b, true) // numeric promotion
	wantBool(t, `?i != 6`, b, true)
	wantBool(t, `?i < 6 && ?i > 4 && ?i <= 5 && ?i >= 5`, b, true)
	wantBool(t, `?s = "abc"`, b, true)
	wantBool(t, `?s < "abd"`, b, true)
	wantBool(t, `?u = <http://e/x>`, b, true)
	wantBool(t, `?u != <http://e/y>`, b, true)
	wantBool(t, `?t = true && ?f = false`, b, true)
	wantBool(t, `?f < ?t`, b, true) // false < true
	// Ordering IRIs is a type error.
	wantTypeError(t, `?u < <http://e/y>`, b)
	// Ordering string vs number is a type error.
	wantTypeError(t, `?s < 5`, b)
}

func TestArithmetic(t *testing.T) {
	b := Binding{"x": rdf.IntegerLiteral(7), "y": rdf.IntegerLiteral(2)}
	cases := []struct {
		src  string
		want float64
	}{
		{`?x + ?y`, 9},
		{`?x - ?y`, 5},
		{`?x * ?y`, 14},
		{`?x / ?y`, 3.5},
		{`-?x + 10`, 3},
		{`?x + ?y * 10`, 27},
		{`(?x + ?y) * 10`, 90},
	}
	for _, tc := range cases {
		v, err := evalExprSrc(t, tc.src, b)
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		f, err := v.AsFloat()
		if err != nil || f != tc.want {
			t.Errorf("%q = %v, want %v", tc.src, v, tc.want)
		}
	}
	// Integer-preserving ops.
	v, _ := evalExprSrc(t, `?x + ?y`, b)
	if v.Datatype != rdf.XSDInteger {
		t.Errorf("int + int datatype = %s", v.Datatype)
	}
	// Division by zero is a type error.
	if _, err := evalExprSrc(t, `?x / 0`, b); err == nil {
		t.Error("division by zero must error")
	}
}

func TestLogicalErrorHandling(t *testing.T) {
	// SPARQL: "unbound || true" is true; "unbound && false" is false;
	// "unbound && true" is an error.
	b := Binding{"ok": rdf.BooleanLiteral(true), "no": rdf.BooleanLiteral(false)}
	wantBool(t, `BOUND(?missing) || ?ok`, b, true)
	wantBool(t, `?ok || ?missing`, b, true)
	wantBool(t, `?missing && ?no`, b, false)
	wantBool(t, `!(?missing && ?no)`, b, true)
	if _, err := evalExprSrc(t, `?missing && ?ok`, b); err == nil {
		t.Error("error && true must stay an error")
	}
	if _, err := evalExprSrc(t, `?missing || ?no`, b); err == nil {
		t.Error("error || false must stay an error")
	}
}

func TestBuiltins(t *testing.T) {
	b := Binding{
		"iri":  rdf.IRI("mailto:hert@ifi.uzh.ch"),
		"lit":  rdf.Literal("Hert"),
		"lang": rdf.LangLiteral("Zürich", "de-CH"),
		"num":  rdf.IntegerLiteral(42),
		"bn":   rdf.Blank("b1"),
	}
	wantBool(t, `BOUND(?lit)`, b, true)
	wantBool(t, `!BOUND(?nope)`, b, true)
	wantBool(t, `ISIRI(?iri) && ISURI(?iri)`, b, true)
	wantBool(t, `ISLITERAL(?lit) && !ISLITERAL(?iri)`, b, true)
	wantBool(t, `ISBLANK(?bn) && !ISBLANK(?lit)`, b, true)
	wantBool(t, `STR(?iri) = "mailto:hert@ifi.uzh.ch"`, b, true)
	wantBool(t, `STR(?num) = "42"`, b, true)
	wantBool(t, `LANG(?lang) = "de-ch"`, b, true)
	wantBool(t, `LANG(?lit) = ""`, b, true)
	wantBool(t, `LANGMATCHES(LANG(?lang), "de")`, b, true)
	wantBool(t, `LANGMATCHES(LANG(?lang), "*")`, b, true)
	wantBool(t, `!LANGMATCHES(LANG(?lit), "*")`, b, true)
	wantBool(t, `DATATYPE(?num) = <http://www.w3.org/2001/XMLSchema#integer>`, b, true)
	wantBool(t, `DATATYPE(?lit) = <http://www.w3.org/2001/XMLSchema#string>`, b, true)
	wantBool(t, `SAMETERM(?lit, "Hert")`, b, true)
	wantBool(t, `!SAMETERM(?num, "42")`, b, true)
	// STR of a blank node is an error.
	if _, err := evalExprSrc(t, `STR(?bn)`, b); err == nil {
		t.Error("STR(blank) must error")
	}
	// LANG/DATATYPE of non-literals are errors.
	if _, err := evalExprSrc(t, `LANG(?iri)`, b); err == nil {
		t.Error("LANG(iri) must error")
	}
	if _, err := evalExprSrc(t, `DATATYPE(?iri)`, b); err == nil {
		t.Error("DATATYPE(iri) must error")
	}
}

func TestRegex(t *testing.T) {
	b := Binding{"m": rdf.Literal("mailto:hert@ifi.uzh.ch")}
	wantBool(t, `REGEX(?m, "^mailto:")`, b, true)
	wantBool(t, `REGEX(?m, "UZH", "i")`, b, true)
	wantBool(t, `!REGEX(?m, "^http:")`, b, true)
	if _, err := evalExprSrc(t, `REGEX(?m, "([")`, b); err == nil {
		t.Error("invalid regex must error")
	}
}

func TestEffectiveBool(t *testing.T) {
	cases := []struct {
		term    rdf.Term
		want    bool
		wantErr bool
	}{
		{rdf.BooleanLiteral(true), true, false},
		{rdf.BooleanLiteral(false), false, false},
		{rdf.Literal(""), false, false},
		{rdf.Literal("x"), true, false},
		{rdf.IntegerLiteral(0), false, false},
		{rdf.IntegerLiteral(3), true, false},
		{rdf.DoubleLiteral(0), false, false},
		{rdf.LangLiteral("x", "en"), true, false},
		{rdf.IRI("http://e/x"), false, true},
		{rdf.Blank("b"), false, true},
		{rdf.TypedLiteral("x", "http://unknown/dt"), false, true},
	}
	for _, tc := range cases {
		got, err := EffectiveBool(tc.term)
		if (err != nil) != tc.wantErr {
			t.Errorf("EBV(%s) err = %v, wantErr %v", tc.term, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("EBV(%s) = %v, want %v", tc.term, got, tc.want)
		}
	}
}

func TestExprStringRendering(t *testing.T) {
	p, _ := NewParser(`!BOUND(?x) && REGEX(STR(?m), "a", "i") || -?n < 3`)
	e, err := p.ParseExpr()
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	for _, want := range []string{"!BOUND(?x)", "REGEX(STR(?m)", "-?n", "||", "&&"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %s missing %s", s, want)
		}
	}
}

func TestNegateNonNumeric(t *testing.T) {
	b := Binding{"s": rdf.Literal("abc")}
	if _, err := evalExprSrc(t, `-?s`, b); err == nil {
		t.Error("negating a string must error")
	}
}

func TestDateTimeComparison(t *testing.T) {
	b := Binding{
		"a": rdf.TypedLiteral("2009-06-01T10:00:00Z", rdf.XSDDateTime),
		"b": rdf.TypedLiteral("2010-01-01T00:00:00Z", rdf.XSDDateTime),
	}
	wantBool(t, `?a < ?b`, b, true)
	wantBool(t, `?b > ?a`, b, true)
}
