package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
)

// collectSink copies each solution's ?t value; a small per-row sleep
// stretches the cursor's lifetime so concurrent writers overlap it.
type collectSink struct {
	vars   []string
	titles []string
	delay  time.Duration
}

func (s *collectSink) Head(vars []string) error { s.vars = vars; return nil }
func (s *collectSink) Solution(b sparql.Binding) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	t, ok := b["t"]
	if !ok {
		return fmt.Errorf("solution lacks ?t: %v", b)
	}
	s.titles = append(s.titles, t.Value) // copy: the binding is reused
	return nil
}
func (s *collectSink) Ask(bool) error         { return fmt.Errorf("unexpected ASK") }
func (s *collectSink) Graph(*rdf.Graph) error { return fmt.Errorf("unexpected graph") }

// TestQueryStreamSnapshotUnderModifyStream holds streaming cursors
// open across a concurrent MODIFY stream (run it with -race). The
// writer rewrites every person's title to "S<k>" in one MODIFY per
// step; because a cursor pins one MVCC snapshot for its whole
// lifetime, every row of one stream must carry the same serial, and
// serials must be non-decreasing across consecutive streams.
func TestQueryStreamSnapshotUnderModifyStream(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	const authors = 40
	var sb strings.Builder
	sb.WriteString(paperPrologue)
	sb.WriteString("INSERT DATA {\n")
	for i := 1; i <= authors; i++ {
		fmt.Fprintf(&sb, "  ex:author%d foaf:title \"S0\" ; foaf:family_name \"L%d\" ; foaf:mbox <mailto:a%d@example.org> ; ont:team ex:team5 .\n", i, i, i)
	}
	sb.WriteString("}")
	mustExec(t, m, sb.String())

	// The writer keeps rewriting titles until the reader has finished
	// its streams, so every stream is held open across live MODIFYs.
	const wantStreams = 5
	var readerDone atomic.Bool
	var steps atomic.Int64
	writerErr := make(chan error, 1)
	go func() {
		for k := 1; !readerDone.Load(); k++ {
			req := fmt.Sprintf(`%s
MODIFY
DELETE { ?x foaf:title ?t . }
INSERT { ?x foaf:title "S%d" . }
WHERE { ?x foaf:title ?t . }`, paperPrologue, k)
			if _, err := m.ExecuteString(req); err != nil {
				writerErr <- fmt.Errorf("step %d: %w", k, err)
				return
			}
			steps.Store(int64(k))
		}
		writerErr <- nil
	}()
	defer func() {
		readerDone.Store(true)
		if err := <-writerErr; err != nil {
			t.Fatal(err)
		}
	}()

	query := paperPrologue + `SELECT ?x ?t WHERE { ?x foaf:title ?t . }`
	lastSerial := -1
	streams := 0
	distinct := map[int]bool{}
	for streams < wantStreams {
		sink := &collectSink{delay: 100 * time.Microsecond}
		if err := m.QueryStream(query, sink); err != nil {
			t.Fatalf("stream %d: %v", streams, err)
		}
		if len(sink.titles) != authors {
			t.Fatalf("stream %d: %d rows, want %d", streams, len(sink.titles), authors)
		}
		serial, err := strconv.Atoi(strings.TrimPrefix(sink.titles[0], "S"))
		if err != nil {
			t.Fatalf("stream %d: bad title %q", streams, sink.titles[0])
		}
		for i, title := range sink.titles {
			if title != sink.titles[0] {
				t.Fatalf("stream %d row %d: title %q differs from row 0's %q — cursor read across snapshots",
					streams, i, title, sink.titles[0])
			}
		}
		if serial < lastSerial {
			t.Fatalf("stream %d: serial went backwards (%d after %d)", streams, serial, lastSerial)
		}
		lastSerial = serial
		distinct[serial] = true
		streams++
	}
	t.Logf("%d streams over %d MODIFY steps observed %d distinct snapshots",
		streams, steps.Load(), len(distinct))
}
