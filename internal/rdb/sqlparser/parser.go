package sqlparser

import (
	"fmt"
	"strconv"

	"ontoaccess/internal/rdb"
)

// Parser is a recursive-descent SQL parser.
type Parser struct {
	lx  *lexer
	tok token
}

// NewParser creates a parser over src and loads the first token.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseScript parses a sequence of ';'-separated statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for {
		for p.tok.kind == tSemicolon {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind == tEOF {
			return out, nil
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		switch p.tok.kind {
		case tSemicolon, tEOF:
		default:
			return nil, p.errorf("expected ';' or end of input after statement, found %s", p.tok.kind)
		}
	}
}

// ParseStatement parses exactly one statement.
func ParseStatement(src string) (Statement, error) {
	stmts, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *Parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: line %d col %d: %s", p.tok.line, p.tok.col, fmt.Sprintf(format, args...))
}

func (p *Parser) isKeyword(kw string) bool {
	return p.tok.kind == tKeyword && p.tok.val == kw
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %s, found %s %q", kw, p.tok.kind, p.tok.val)
	}
	return p.advance()
}

func (p *Parser) expect(kind tokKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errorf("expected %s, found %s %q", kind, p.tok.kind, p.tok.val)
	}
	t := p.tok
	return t, p.advance()
}

// expectIdent accepts an identifier. Reserved words are rejected;
// quote them ("type") if a schema really needs one — the common
// schema words of the paper (type, year, name, ...) are not reserved.
func (p *Parser) expectIdent() (string, error) {
	if p.tok.kind != tIdent {
		return "", p.errorf("expected identifier, found %s %q", p.tok.kind, p.tok.val)
	}
	v := p.tok.val
	return v, p.advance()
}

func (p *Parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("CREATE"):
		return p.parseCreateTable()
	case p.isKeyword("DROP"):
		return p.parseDropTable()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	default:
		return nil, p.errorf("expected a SQL statement, found %s %q", p.tok.kind, p.tok.val)
	}
}

func (p *Parser) parseCreateTable() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	schema := &rdb.TableSchema{Name: name}
	for {
		switch {
		case p.isKeyword("PRIMARY"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			schema.PrimaryKey = append(schema.PrimaryKey, cols...)
		case p.isKeyword("FOREIGN"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseParenIdentList()
			if err != nil {
				return nil, err
			}
			if len(cols) != 1 {
				return nil, p.errorf("only single-column foreign keys are supported")
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			// Optional referenced column list "(id)" is parsed and
			// ignored: references always target the primary key.
			if p.tok.kind == tLParen {
				if _, err := p.parseParenIdentList(); err != nil {
					return nil, err
				}
			}
			schema.ForeignKeys = append(schema.ForeignKeys, rdb.ForeignKey{Column: cols[0], RefTable: ref})
		default:
			col, pk, fk, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			schema.Columns = append(schema.Columns, col)
			if pk {
				schema.PrimaryKey = append(schema.PrimaryKey, col.Name)
			}
			if fk != nil {
				schema.ForeignKeys = append(schema.ForeignKeys, *fk)
			}
		}
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return CreateTable{Schema: schema}, nil
}

func (p *Parser) parseColumnDef() (rdb.Column, bool, *rdb.ForeignKey, error) {
	var col rdb.Column
	name, err := p.expectIdent()
	if err != nil {
		return col, false, nil, err
	}
	col.Name = name
	if p.tok.kind != tKeyword {
		return col, false, nil, p.errorf("expected column type, found %s", p.tok.kind)
	}
	ct, ok := typeFromKeyword(p.tok.val)
	if !ok {
		return col, false, nil, p.errorf("unknown column type %q", p.tok.val)
	}
	col.Type = ct
	if err := p.advance(); err != nil {
		return col, false, nil, err
	}
	if p.tok.kind == tLParen { // VARCHAR(n)
		if err := p.advance(); err != nil {
			return col, false, nil, err
		}
		n, err := p.expect(tNumber)
		if err != nil {
			return col, false, nil, err
		}
		length, err := strconv.Atoi(n.val)
		if err != nil || length <= 0 {
			return col, false, nil, p.errorf("invalid length %q", n.val)
		}
		col.Length = length
		if _, err := p.expect(tRParen); err != nil {
			return col, false, nil, err
		}
	}
	isPK := false
	var fk *rdb.ForeignKey
	for {
		switch {
		case p.isKeyword("NOT"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			if err := p.expectKeyword("NULL"); err != nil {
				return col, false, nil, err
			}
			col.NotNull = true
		case p.isKeyword("UNIQUE"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			col.Unique = true
		case p.isKeyword("AUTO_INCREMENT"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			col.AutoIncrement = true
		case p.isKeyword("DEFAULT"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			v, err := p.parseLiteralValue()
			if err != nil {
				return col, false, nil, err
			}
			col.Default = &v
		case p.isKeyword("PRIMARY"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			if err := p.expectKeyword("KEY"); err != nil {
				return col, false, nil, err
			}
			isPK = true
		case p.isKeyword("REFERENCES"):
			if err := p.advance(); err != nil {
				return col, false, nil, err
			}
			ref, err := p.expectIdent()
			if err != nil {
				return col, false, nil, err
			}
			if p.tok.kind == tLParen {
				if _, err := p.parseParenIdentList(); err != nil {
					return col, false, nil, err
				}
			}
			fk = &rdb.ForeignKey{Column: col.Name, RefTable: ref}
		default:
			return col, isPK, fk, nil
		}
	}
}

func (p *Parser) parseParenIdentList() ([]string, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseDropTable() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return DropTable{Table: name}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: table}
	if p.tok.kind == tLParen {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tLParen); err != nil {
			return nil, err
		}
		var row []rdb.Value
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return ins, nil
}

// parseLiteralValue parses a literal: number, string, NULL, TRUE,
// FALSE, with optional leading minus on numbers.
func (p *Parser) parseLiteralValue() (rdb.Value, error) {
	neg := false
	if p.tok.kind == tMinus {
		neg = true
		if err := p.advance(); err != nil {
			return rdb.Null, err
		}
	}
	switch {
	case p.tok.kind == tNumber:
		v, err := numberValue(p.tok.val, neg)
		if err != nil {
			return rdb.Null, p.errorf("%v", err)
		}
		return v, p.advance()
	case p.tok.kind == tString:
		if neg {
			return rdb.Null, p.errorf("cannot negate a string")
		}
		v := rdb.String_(p.tok.val)
		return v, p.advance()
	case p.isKeyword("NULL"):
		if neg {
			return rdb.Null, p.errorf("cannot negate NULL")
		}
		return rdb.Null, p.advance()
	case p.isKeyword("TRUE"):
		return rdb.Bool(true), p.advance()
	case p.isKeyword("FALSE"):
		return rdb.Bool(false), p.advance()
	default:
		return rdb.Null, p.errorf("expected literal value, found %s %q", p.tok.kind, p.tok.val)
	}
}

func numberValue(lex string, neg bool) (rdb.Value, error) {
	if i, err := strconv.ParseInt(lex, 10, 64); err == nil {
		if neg {
			i = -i
		}
		return rdb.Int(i), nil
	}
	f, err := strconv.ParseFloat(lex, 64)
	if err != nil {
		return rdb.Null, fmt.Errorf("malformed number %q", lex)
	}
	if neg {
		f = -f
	}
	return rdb.Float(f), nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tEq); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := Delete{Table: table}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

func (p *Parser) parseSelect() (Statement, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	sel := Select{Limit: -1, Offset: -1}
	if p.isKeyword("DISTINCT") {
		sel.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.From = from
	for {
		leftOuter := false
		if p.isKeyword("INNER") {
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.isKeyword("LEFT") {
			leftOuter = true
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.isKeyword("OUTER") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if !p.isKeyword("JOIN") {
			if leftOuter {
				return nil, p.errorf("expected JOIN after LEFT")
			}
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Joins = append(sel.Joins, Join{Ref: ref, On: on, LeftOuter: leftOuter})
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("HAVING") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			cond, err := p.parseHavingCond()
			if err != nil {
				return nil, err
			}
			sel.Having = append(sel.Having, cond)
			if p.isKeyword("AND") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.isKeyword("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isKeyword("DESC") {
				key.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, key)
			if p.tok.kind == tComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	for {
		switch {
		case p.isKeyword("LIMIT"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tNumber)
			if err != nil {
				return nil, err
			}
			sel.Limit, err = strconv.Atoi(n.val)
			if err != nil {
				return nil, p.errorf("invalid LIMIT %q", n.val)
			}
		case p.isKeyword("OFFSET"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			n, err := p.expect(tNumber)
			if err != nil {
				return nil, err
			}
			sel.Offset, err = strconv.Atoi(n.val)
			if err != nil {
				return nil, p.errorf("invalid OFFSET %q", n.val)
			}
		default:
			return sel, nil
		}
	}
}

// parseHavingCond parses one HAVING conjunct: an aggregate call
// compared with a literal value.
func (p *Parser) parseHavingCond() (HavingCond, error) {
	var cond HavingCond
	agg, _ := p.aggKeyword()
	if agg == AggNone {
		return cond, p.errorf("expected aggregate function in HAVING")
	}
	cond.Agg = agg
	if err := p.advance(); err != nil {
		return cond, err
	}
	if _, err := p.expect(tLParen); err != nil {
		return cond, err
	}
	if agg == AggCount && p.tok.kind == tStar {
		if err := p.advance(); err != nil {
			return cond, err
		}
	} else {
		e, err := p.parseExpr()
		if err != nil {
			return cond, err
		}
		cond.Expr = e
	}
	if _, err := p.expect(tRParen); err != nil {
		return cond, err
	}
	ops := map[tokKind]BinOp{tEq: OpEq, tNe: OpNe, tLt: OpLt, tLe: OpLe, tGt: OpGt, tGe: OpGe}
	op, ok := ops[p.tok.kind]
	if !ok {
		return cond, p.errorf("expected comparison operator in HAVING")
	}
	cond.Op = op
	if err := p.advance(); err != nil {
		return cond, err
	}
	v, err := p.parseLiteralValue()
	if err != nil {
		return cond, err
	}
	cond.Val = v
	return cond, nil
}

// aggKeyword maps the current token to an aggregate function and its
// default (lowercase) alias; AggNone when it is not an aggregate.
func (p *Parser) aggKeyword() (AggFunc, string) {
	switch {
	case p.isKeyword("COUNT"):
		return AggCount, "count"
	case p.isKeyword("SUM"):
		return AggSum, "sum"
	case p.isKeyword("AVG"):
		return AggAvg, "avg"
	case p.isKeyword("MIN"):
		return AggMin, "min"
	case p.isKeyword("MAX"):
		return AggMax, "max"
	}
	return AggNone, ""
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind == tStar {
		return SelectItem{Star: true}, p.advance()
	}
	if agg, name := p.aggKeyword(); agg != AggNone {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if _, err := p.expect(tLParen); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: agg, Alias: name}
		if agg == AggCount && p.tok.kind == tStar {
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return SelectItem{}, err
			}
			item.Expr = e
		}
		if _, err := p.expect(tRParen); err != nil {
			return SelectItem{}, err
		}
		if p.isKeyword("AS") {
			if err := p.advance(); err != nil {
				return SelectItem{}, err
			}
			alias, err := p.expectIdent()
			if err != nil {
				return SelectItem{}, err
			}
			item.Alias = alias
		}
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.tok.kind == tIdent {
		ref.Alias = p.tok.val
		if err := p.advance(); err != nil {
			return TableRef{}, err
		}
	}
	return ref, nil
}

// ---- expressions ----

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{Inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	switch {
	case p.tok.kind == tEq, p.tok.kind == tNe, p.tok.kind == tLt,
		p.tok.kind == tLe, p.tok.kind == tGt, p.tok.kind == tGe:
		op := map[tokKind]BinOp{tEq: OpEq, tNe: OpNe, tLt: OpLt, tLe: OpLe, tGt: OpGt, tGe: OpGe}[p.tok.kind]
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, Left: left, Right: right}, nil
	case p.isKeyword("IS"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		negate := false
		if p.isKeyword("NOT") {
			negate = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return IsNull{Inner: left, Negate: negate}, nil
	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Binary{Op: OpLike, Left: left, Right: right}, nil
	case p.isKeyword("NOT"):
		// NOT LIKE / NOT IN
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch {
		case p.isKeyword("LIKE"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return Not{Inner: Binary{Op: OpLike, Left: left, Right: right}}, nil
		case p.isKeyword("IN"):
			if err := p.advance(); err != nil {
				return nil, err
			}
			vals, err := p.parseParenValueList()
			if err != nil {
				return nil, err
			}
			return InList{Inner: left, Values: vals, Negate: true}, nil
		default:
			return nil, p.errorf("expected LIKE or IN after NOT")
		}
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		vals, err := p.parseParenValueList()
		if err != nil {
			return nil, err
		}
		return InList{Inner: left, Values: vals}, nil
	}
	return left, nil
}

func (p *Parser) parseParenValueList() ([]rdb.Value, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var out []rdb.Value
	for {
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		if p.tok.kind == tComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tPlus || p.tok.kind == tMinus {
		op := OpAdd
		if p.tok.kind == tMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tStar || p.tok.kind == tSlash {
		op := OpMul
		if p.tok.kind == tSlash {
			op = OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.kind == tMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return Neg{Inner: inner}, nil
	case p.tok.kind == tNumber, p.tok.kind == tString,
		p.isKeyword("NULL"), p.isKeyword("TRUE"), p.isKeyword("FALSE"):
		v, err := p.parseLiteralValue()
		if err != nil {
			return nil, err
		}
		return Lit{Value: v}, nil
	case p.tok.kind == tIdent:
		// Column reference, possibly qualified.
		first := p.tok.val
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tDot {
			if err := p.advance(); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return ColRef{Table: first, Column: col}, nil
		}
		return ColRef{Column: first}, nil
	default:
		return nil, p.errorf("unexpected %s %q in expression", p.tok.kind, p.tok.val)
	}
}
