// Package r3m implements R3M, the update-aware RDB-to-RDF mapping
// language of the paper's Section 4. A mapping bridges a relational
// schema and a domain ontology: tables map to classes, attributes to
// data/object properties, and link tables to object properties. R3M
// additionally records the schema's integrity constraints (primary
// keys, foreign keys, NOT NULL, defaults) so the translator can
// detect invalid update requests *before* they reach the database and
// produce semantically rich feedback.
//
// Mappings are expressed in RDF using the R3M ontology and are loaded
// from Turtle (Load), validated for updatability (Mapping.Validate),
// generated automatically from a live schema (Generate), and written
// back to Turtle (Mapping.Turtle).
package r3m

import (
	"fmt"
	"strings"

	"ontoaccess/internal/rdf"
)

// NS is the namespace of the R3M mapping ontology.
const NS = "http://ontoaccess.org/r3m#"

// R3M vocabulary IRIs.
var (
	ClassDatabaseMap  = rdf.IRI(NS + "DatabaseMap")
	ClassTableMap     = rdf.IRI(NS + "TableMap")
	ClassLinkTableMap = rdf.IRI(NS + "LinkTableMap")
	ClassAttributeMap = rdf.IRI(NS + "AttributeMap")

	ClassPrimaryKey = rdf.IRI(NS + "PrimaryKey")
	ClassForeignKey = rdf.IRI(NS + "ForeignKey")
	ClassNotNull    = rdf.IRI(NS + "NotNull")
	ClassDefault    = rdf.IRI(NS + "Default")

	PropJdbcDriver   = rdf.IRI(NS + "jdbcDriver")
	PropJdbcURL      = rdf.IRI(NS + "jdbcUrl")
	PropUsername     = rdf.IRI(NS + "username")
	PropPassword     = rdf.IRI(NS + "password")
	PropURIPrefix    = rdf.IRI(NS + "uriPrefix")
	PropHasTable     = rdf.IRI(NS + "hasTable")
	PropHasTableName = rdf.IRI(NS + "hasTableName")
	PropMapsToClass  = rdf.IRI(NS + "mapsToClass")
	PropURIPattern   = rdf.IRI(NS + "uriPattern")
	PropHasAttribute = rdf.IRI(NS + "hasAttribute")

	PropHasAttributeName     = rdf.IRI(NS + "hasAttributeName")
	PropMapsToDataProperty   = rdf.IRI(NS + "mapsToDataProperty")
	PropMapsToObjectProperty = rdf.IRI(NS + "mapsToObjectProperty")
	PropHasConstraint        = rdf.IRI(NS + "hasConstraint")
	PropReferences           = rdf.IRI(NS + "references")
	PropHasDefaultValue      = rdf.IRI(NS + "hasDefaultValue")
	PropHasSubjectAttribute  = rdf.IRI(NS + "hasSubjectAttribute")
	PropHasObjectAttribute   = rdf.IRI(NS + "hasObjectAttribute")
	PropHasDatatype          = rdf.IRI(NS + "hasDatatype")
	PropValuePrefix          = rdf.IRI(NS + "valuePrefix")
)

// ConstraintKind enumerates the constraint annotations an
// AttributeMap can carry (paper Section 4: "r3m:PrimaryKey,
// r3m:ForeignKey, r3m:NotNull, and r3m:Default").
type ConstraintKind int

// Constraint kinds.
const (
	ConstraintPrimaryKey ConstraintKind = iota
	ConstraintForeignKey
	ConstraintNotNull
	ConstraintDefault
)

func (k ConstraintKind) String() string {
	switch k {
	case ConstraintPrimaryKey:
		return "PrimaryKey"
	case ConstraintForeignKey:
		return "ForeignKey"
	case ConstraintNotNull:
		return "NotNull"
	case ConstraintDefault:
		return "Default"
	}
	return "?"
}

// Constraint is one constraint annotation on an attribute.
type Constraint struct {
	Kind ConstraintKind
	// References names the referenced TableMap (node name or table
	// name) for foreign keys.
	References string
	// Default holds the default value lexical form for Default
	// constraints.
	Default string
}

// AttributeMap maps one database attribute to an ontology property
// (paper Listing 3). Attributes of link tables carry no property and
// only record the attribute name plus its foreign key (Listing 5).
type AttributeMap struct {
	// Node is the RDF node naming this map (e.g. map:author_team).
	Node rdf.Term
	// Name is the database attribute name.
	Name string
	// Property is the mapped ontology property; zero for link-table
	// attributes.
	Property rdf.Term
	// IsObject is true when the attribute maps to an object property
	// (its values are resource URIs, typically via a foreign key).
	IsObject bool
	// Datatype optionally records the RDF datatype for literal values
	// (e.g. xsd:int for INTEGER attributes).
	Datatype string
	// ValuePrefix applies to object properties without a foreign key:
	// the database stores the object IRI with this prefix stripped
	// (the paper's email attribute stores 'hert@ifi.uzh.ch' while the
	// RDF view shows <mailto:hert@ifi.uzh.ch>; ValuePrefix is then
	// "mailto:"). This is an R3M extension (r3m:valuePrefix).
	ValuePrefix string
	// Constraints are the recorded integrity constraints.
	Constraints []Constraint
}

// HasConstraint reports whether a constraint of the given kind is
// present.
func (a *AttributeMap) HasConstraint(kind ConstraintKind) bool {
	for _, c := range a.Constraints {
		if c.Kind == kind {
			return true
		}
	}
	return false
}

// ForeignKeyRef returns the referenced table-map name when the
// attribute carries a ForeignKey constraint.
func (a *AttributeMap) ForeignKeyRef() (string, bool) {
	for _, c := range a.Constraints {
		if c.Kind == ConstraintForeignKey {
			return c.References, true
		}
	}
	return "", false
}

// DefaultValue returns the recorded default, if any.
func (a *AttributeMap) DefaultValue() (string, bool) {
	for _, c := range a.Constraints {
		if c.Kind == ConstraintDefault {
			return c.Default, true
		}
	}
	return "", false
}

// TableMap maps one database table to an ontology class (paper
// Listing 2).
type TableMap struct {
	// Node is the RDF node naming this map (e.g. map:author).
	Node rdf.Term
	// Name is the database table name.
	Name string
	// Class is the ontology class the table maps to.
	Class rdf.Term
	// URIPattern generates/matches instance URIs, with attribute
	// names between double percent signs (e.g. "author%%id%%").
	URIPattern string
	// Attributes maps the table's attributes.
	Attributes []*AttributeMap

	pattern *compiledPattern
}

// Attribute returns the attribute map with the given database name.
func (tm *TableMap) Attribute(name string) (*AttributeMap, bool) {
	for _, a := range tm.Attributes {
		if strings.EqualFold(a.Name, name) {
			return a, true
		}
	}
	return nil, false
}

// AttributeForProperty returns the attribute map carrying the given
// ontology property.
func (tm *TableMap) AttributeForProperty(prop rdf.Term) (*AttributeMap, bool) {
	for _, a := range tm.Attributes {
		if a.Property == prop {
			return a, true
		}
	}
	return nil, false
}

// PrimaryKeyAttributes returns the attributes annotated PrimaryKey.
func (tm *TableMap) PrimaryKeyAttributes() []*AttributeMap {
	var out []*AttributeMap
	for _, a := range tm.Attributes {
		if a.HasConstraint(ConstraintPrimaryKey) {
			out = append(out, a)
		}
	}
	return out
}

// LinkTableMap maps an N:M link table to an object property (paper
// Listing 4): a triple "s prop o" corresponds to a row whose subject
// attribute references s's table and whose object attribute
// references o's table.
type LinkTableMap struct {
	// Node is the RDF node naming this map.
	Node rdf.Term
	// Name is the database table name.
	Name string
	// Property is the object property the link table maps to.
	Property rdf.Term
	// SubjectAttr references the table of triple subjects.
	SubjectAttr *AttributeMap
	// ObjectAttr references the table of triple objects.
	ObjectAttr *AttributeMap
}

// Mapping is a complete R3M DatabaseMap (paper Listing 1).
type Mapping struct {
	// Node is the RDF node naming the database map.
	Node rdf.Term
	// Connection metadata, recorded for fidelity with the paper's
	// DatabaseMap (the embedded engine does not dial anything).
	JDBCDriver string
	JDBCURL    string
	Username   string
	Password   string
	// URIPrefix is the mapping-wide prefix for instance URIs.
	URIPrefix string

	Tables     []*TableMap
	LinkTables []*LinkTableMap

	byClass    map[rdf.Term]*TableMap
	byName     map[string]*TableMap
	byNode     map[rdf.Term]*TableMap
	linkByProp map[rdf.Term]*LinkTableMap
	linkByName map[string]*LinkTableMap
}

// index (re)builds the lookup maps; called by Load/Generate and after
// manual construction via Reindex.
func (m *Mapping) index() {
	m.byClass = make(map[rdf.Term]*TableMap, len(m.Tables))
	m.byName = make(map[string]*TableMap, len(m.Tables))
	m.byNode = make(map[rdf.Term]*TableMap, len(m.Tables))
	m.linkByProp = make(map[rdf.Term]*LinkTableMap, len(m.LinkTables))
	m.linkByName = make(map[string]*LinkTableMap, len(m.LinkTables))
	for _, tm := range m.Tables {
		m.byClass[tm.Class] = tm
		m.byName[strings.ToLower(tm.Name)] = tm
		if !tm.Node.IsZero() {
			m.byNode[tm.Node] = tm
		}
	}
	for _, lt := range m.LinkTables {
		m.linkByProp[lt.Property] = lt
		m.linkByName[strings.ToLower(lt.Name)] = lt
	}
}

// Reindex rebuilds internal lookup structures after the mapping was
// constructed or modified programmatically.
func (m *Mapping) Reindex() { m.index() }

// TableForClass returns the table map for an ontology class.
func (m *Mapping) TableForClass(class rdf.Term) (*TableMap, bool) {
	tm, ok := m.byClass[class]
	return tm, ok
}

// TableByName returns the table map for a database table name.
func (m *Mapping) TableByName(name string) (*TableMap, bool) {
	tm, ok := m.byName[strings.ToLower(name)]
	return tm, ok
}

// LinkTableForProperty returns the link-table map carrying the given
// object property.
func (m *Mapping) LinkTableForProperty(prop rdf.Term) (*LinkTableMap, bool) {
	lt, ok := m.linkByProp[prop]
	return lt, ok
}

// LinkTableByName returns the link-table map for a table name.
func (m *Mapping) LinkTableByName(name string) (*LinkTableMap, bool) {
	lt, ok := m.linkByName[strings.ToLower(name)]
	return lt, ok
}

// ResolveTableRef resolves a ForeignKey "references" value — either a
// map node name (map:team) or a plain table name — to a table map.
func (m *Mapping) ResolveTableRef(ref string) (*TableMap, bool) {
	if tm, ok := m.byName[strings.ToLower(ref)]; ok {
		return tm, ok
	}
	for node, tm := range m.byNode {
		if node.Value == ref {
			return tm, true
		}
	}
	return nil, false
}

// IdentifyTable implements step two of the paper's Algorithm 1: given
// a subject URI, find the table it belongs to and extract the key
// attribute values embedded in the URI. Patterns are tried most-
// specific (longest literal content) first; the first full match
// wins. Validation guarantees patterns are mutually distinguishable.
func (m *Mapping) IdentifyTable(uri string) (*TableMap, map[string]string, error) {
	var best *TableMap
	var bestVals map[string]string
	bestLit := -1
	for _, tm := range m.Tables {
		cp, err := tm.compiled(m.URIPrefix)
		if err != nil {
			return nil, nil, err
		}
		if vals, ok := cp.match(uri); ok {
			if cp.literalLen > bestLit {
				best, bestVals, bestLit = tm, vals, cp.literalLen
			}
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("r3m: URI %q matches no table mapping", uri)
	}
	return best, bestVals, nil
}

// InstanceURI builds the instance URI for a row of the mapped table
// given its attribute values (lexical forms). It is the inverse of
// IdentifyTable.
func (m *Mapping) InstanceURI(tm *TableMap, vals map[string]string) (string, error) {
	cp, err := tm.compiled(m.URIPrefix)
	if err != nil {
		return "", err
	}
	return cp.build(vals)
}

// compiled returns the compiled URI pattern, building it on first use.
func (tm *TableMap) compiled(prefix string) (*compiledPattern, error) {
	if tm.pattern != nil {
		return tm.pattern, nil
	}
	cp, err := compilePattern(prefix, tm.URIPattern)
	if err != nil {
		return nil, fmt.Errorf("r3m: table %q: %w", tm.Name, err)
	}
	tm.pattern = cp
	return cp, nil
}

// PatternAttributes returns the attribute names referenced by the
// table's URI pattern, in order.
func (tm *TableMap) PatternAttributes(prefix string) ([]string, error) {
	cp, err := tm.compiled(prefix)
	if err != nil {
		return nil, err
	}
	return cp.attrNames(), nil
}
