package workload

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Closed-loop HTTP load harness: N workers issue mixed read/write
// traffic against a running endpoint over its real HTTP surface, each
// worker sending its next request only after the previous response is
// fully read (closed loop — offered load adapts to the server instead
// of queueing unboundedly, so latency percentiles measure the server,
// not the client's backlog). The harness deliberately depends only on
// net/http and a base URL: it drives ontoaccessd, httptest servers and
// remote deployments alike, and the endpoint package's own tests can
// import it without a cycle.

// LoadOptions configures a load run.
type LoadOptions struct {
	// BaseURL is the endpoint root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the number of concurrent closed-loop clients.
	Workers int
	// RequestsPerWorker runs a fixed-count experiment; Duration (when
	// set) runs a fixed-time one instead.
	RequestsPerWorker int
	Duration          time.Duration
	// WriteFraction is the probability a request is a POST /update
	// (the rest split between table and JSON SELECTs and ASKs).
	WriteFraction float64
	// Authors is the pre-seeded author universe queried/modified; see
	// SeedLoad. Seed fixes the traffic mix's RNG.
	Authors int
	Seed    int64
	// ClientTimeout bounds each request on the client side
	// (default 30s).
	ClientTimeout time.Duration
}

// LoadResult aggregates one run.
type LoadResult struct {
	Requests int           // responses received
	Errors   int           // transport failures or unexpected statuses
	Shed     int           // 503s (load shedding)
	TimedOut int           // 504s (request deadline) + client timeouts
	Elapsed  time.Duration // wall-clock of the whole run
	// Latency percentiles over successful requests.
	P50, P95, P99 time.Duration
	// Throughput is successful requests per second.
	Throughput float64
	// PeakRSSMB is the process's VmHWM high-water mark in MiB (0 when
	// /proc is unavailable). With an in-process httptest server it
	// captures client and server together.
	PeakRSSMB float64
}

// SeedLoad populates the endpoint with the generator's shared pools
// plus `authors` authors through POST /update — the fixture RunLoad's
// mixed traffic reads and rewrites.
func SeedLoad(baseURL string, authors int, seed int64) error {
	g := NewGenerator(seed)
	client := &http.Client{Timeout: 30 * time.Second}
	reqs := g.SetupRequests()
	for i := 1; i <= authors; i++ {
		reqs = append(reqs, g.AuthorInsert(i))
	}
	for _, body := range reqs {
		resp, err := client.Post(baseURL+"/update", "application/sparql-update", strings.NewReader(body))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("workload: seeding update status %d", resp.StatusCode)
		}
	}
	return nil
}

// RunLoad drives the closed-loop mixed workload and reports latency
// percentiles, shed/timeout counts, throughput and peak RSS.
func RunLoad(o LoadOptions) (*LoadResult, error) {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Authors <= 0 {
		o.Authors = 100
	}
	if o.ClientTimeout <= 0 {
		o.ClientTimeout = 30 * time.Second
	}
	if o.RequestsPerWorker <= 0 && o.Duration <= 0 {
		return nil, fmt.Errorf("workload: RunLoad needs RequestsPerWorker or Duration")
	}

	type sample struct {
		d      time.Duration
		status int
		err    bool
	}
	perWorker := make([][]sample, o.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := time.Time{}
	if o.Duration > 0 {
		deadline = start.Add(o.Duration)
	}
	for w := 0; w < o.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed + int64(w)*7919))
			client := &http.Client{Timeout: o.ClientTimeout}
			serial := 0
			for n := 0; ; n++ {
				if o.Duration > 0 {
					if !time.Now().Before(deadline) {
						return
					}
				} else if n >= o.RequestsPerWorker {
					return
				}
				author := rng.Intn(o.Authors) + 1
				var (
					resp *http.Response
					err  error
				)
				t0 := time.Now()
				if rng.Float64() < o.WriteFraction {
					serial++
					body := fmt.Sprintf(`%s
MODIFY
DELETE { ex:author%d foaf:mbox ?m . }
INSERT { ex:author%d foaf:mbox <mailto:w%d-%d@example.org> . }
WHERE { ex:author%d foaf:mbox ?m . }`, Prologue, author, author, w, serial, author)
					resp, err = client.Post(o.BaseURL+"/update", "application/sparql-update", strings.NewReader(body))
				} else {
					var q string
					accept := ""
					switch rng.Intn(4) {
					case 0: // point lookup, JSON
						q = fmt.Sprintf(`SELECT ?f ?m WHERE { ex:author%d foaf:firstName ?f ; foaf:mbox ?m . }`, author)
						accept = "application/sparql-results+json"
					case 1: // point lookup, text table
						q = fmt.Sprintf(`SELECT ?f ?m WHERE { ex:author%d foaf:firstName ?f ; foaf:mbox ?m . }`, author)
					case 2: // scan: every mailbox, JSON
						q = `SELECT ?x ?m WHERE { ?x foaf:mbox ?m . }`
						accept = "application/sparql-results+json"
					default: // ASK
						q = fmt.Sprintf(`ASK { ex:author%d foaf:title "Dr" . }`, author)
					}
					req, rerr := http.NewRequest(http.MethodGet,
						o.BaseURL+"/sparql?query="+url.QueryEscape(Prologue+q), nil)
					if rerr != nil {
						err = rerr
					} else {
						if accept != "" {
							req.Header.Set("Accept", accept)
						}
						resp, err = client.Do(req)
					}
				}
				s := sample{d: time.Since(t0)}
				if err != nil {
					s.err = true
					if strings.Contains(err.Error(), "Client.Timeout") {
						s.status = http.StatusGatewayTimeout
					}
				} else {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					s.status = resp.StatusCode
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{Elapsed: elapsed, PeakRSSMB: PeakRSSMB()}
	var ok []time.Duration
	for _, samples := range perWorker {
		for _, s := range samples {
			res.Requests++
			switch {
			case s.status == http.StatusServiceUnavailable:
				res.Shed++
			case s.status == http.StatusGatewayTimeout:
				res.TimedOut++
			case s.err || s.status != http.StatusOK:
				res.Errors++
			default:
				ok = append(ok, s.d)
			}
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
	res.P50 = percentile(ok, 0.50)
	res.P95 = percentile(ok, 0.95)
	res.P99 = percentile(ok, 0.99)
	if elapsed > 0 {
		res.Throughput = float64(len(ok)) / elapsed.Seconds()
	}
	return res, nil
}

// percentile returns the q-th percentile of sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(float64(len(sorted))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// PeakRSSMB reads the process's resident-set high-water mark (VmHWM)
// in MiB; 0 when /proc/self/status is unavailable (non-Linux).
func PeakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "VmHWM:") {
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.ParseFloat(f[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	return 0
}
