package turtle

import (
	"strings"
	"testing"

	"ontoaccess/internal/rdf"
)

func mustParse(t *testing.T, src string) *rdf.Graph {
	t.Helper()
	g, _, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v\nsource:\n%s", err, src)
	}
	return g
}

func TestParseSimpleTriple(t *testing.T) {
	g := mustParse(t, `<http://e/s> <http://e/p> <http://e/o> .`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	want := rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.IRI("http://e/o"))
	if !g.Contains(want) {
		t.Fatalf("missing %v, got %v", want, g.Triples())
	}
}

func TestParsePrefixAndA(t *testing.T) {
	g := mustParse(t, `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/db/> .
ex:author6 a foaf:Person .
`)
	want := rdf.NewTriple(
		rdf.IRI("http://example.org/db/author6"),
		rdf.IRI(rdf.RDFType),
		rdf.IRI("http://xmlns.com/foaf/0.1/Person"))
	if !g.Contains(want) {
		t.Fatalf("got %v", g.Triples())
	}
}

func TestParseSparqlStylePrefix(t *testing.T) {
	g := mustParse(t, `
PREFIX ex: <http://example.org/>
ex:s ex:p ex:o .
`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	// The exact shape of the paper's Listing 9.
	src := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ont: <http://example.org/ontology#> .
@prefix ex: <http://example.org/db/> .

ex:author6 foaf:title "Mr" ;
    foaf:firstName "Matthias" ;
    foaf:family_name "Hert" ;
    foaf:mbox <mailto:hert@ifi.uzh.ch> ;
    ont:team ex:team5 .
`
	g := mustParse(t, src)
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5:\n%s", g.Len(), g)
	}
	if !g.Contains(rdf.NewTriple(
		rdf.IRI("http://example.org/db/author6"),
		rdf.IRI("http://xmlns.com/foaf/0.1/mbox"),
		rdf.IRI("mailto:hert@ifi.uzh.ch"))) {
		t.Error("mbox triple missing")
	}
	if !g.Contains(rdf.NewTriple(
		rdf.IRI("http://example.org/db/author6"),
		rdf.IRI("http://example.org/ontology#team"),
		rdf.IRI("http://example.org/db/team5"))) {
		t.Error("team triple missing")
	}
}

func TestParseObjectList(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ex:a , ex:b , ex:c .
`)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3", g.Len())
	}
}

func TestParseLiterals(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:s ex:str "plain" ;
     ex:lang "hello"@en ;
     ex:typed "2009"^^xsd:int ;
     ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:dbl 1.0e6 ;
     ex:bool true ;
     ex:esc "a\"b\nc" ;
     ex:long """multi
line""" .
`)
	s := rdf.IRI("http://e/s")
	checks := []rdf.Triple{
		{S: s, P: rdf.IRI("http://e/str"), O: rdf.Literal("plain")},
		{S: s, P: rdf.IRI("http://e/lang"), O: rdf.LangLiteral("hello", "en")},
		{S: s, P: rdf.IRI("http://e/typed"), O: rdf.TypedLiteral("2009", rdf.XSDInt)},
		{S: s, P: rdf.IRI("http://e/int"), O: rdf.TypedLiteral("42", rdf.XSDInteger)},
		{S: s, P: rdf.IRI("http://e/neg"), O: rdf.TypedLiteral("-7", rdf.XSDInteger)},
		{S: s, P: rdf.IRI("http://e/dec"), O: rdf.TypedLiteral("3.14", rdf.XSDDecimal)},
		{S: s, P: rdf.IRI("http://e/dbl"), O: rdf.TypedLiteral("1.0e6", rdf.XSDDouble)},
		{S: s, P: rdf.IRI("http://e/bool"), O: rdf.BooleanLiteral(true)},
		{S: s, P: rdf.IRI("http://e/esc"), O: rdf.Literal("a\"b\nc")},
		{S: s, P: rdf.IRI("http://e/long"), O: rdf.Literal("multi\nline")},
	}
	for _, want := range checks {
		if !g.Contains(want) {
			t.Errorf("missing triple %v", want)
		}
	}
}

func TestParseBlankNodePropertyList(t *testing.T) {
	// The R3M constraint idiom from the paper's Listing 3.
	src := `
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/mapping#> .
@prefix ont: <http://example.org/ontology#> .

map:author_team a r3m:AttributeMap ;
    r3m:hasAttributeName "team" ;
    r3m:mapsToObjectProperty ont:team ;
    r3m:hasConstraint [ a r3m:ForeignKey ;
                        r3m:references map:team ] .
`
	g := mustParse(t, src)
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6:\n%s", g.Len(), g)
	}
	// Find the constraint blank node via hasConstraint.
	var bnode rdf.Term
	g.Each(func(tr rdf.Triple) bool {
		if tr.P == rdf.IRI("http://ontoaccess.org/r3m#hasConstraint") {
			bnode = tr.O
			return false
		}
		return true
	})
	if !bnode.IsBlank() {
		t.Fatalf("hasConstraint object should be blank node, got %v", bnode)
	}
	if !g.Contains(rdf.NewTriple(bnode, rdf.IRI(rdf.RDFType), rdf.IRI("http://ontoaccess.org/r3m#ForeignKey"))) {
		t.Error("blank node type triple missing")
	}
	if !g.Contains(rdf.NewTriple(bnode, rdf.IRI("http://ontoaccess.org/r3m#references"), rdf.IRI("http://example.org/mapping#team"))) {
		t.Error("references triple missing")
	}
}

func TestParseAnonBlankAndLabeledBlank(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p [] .
_:b1 ex:q ex:o .
`)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Contains(rdf.NewTriple(rdf.Blank("b1"), rdf.IRI("http://e/q"), rdf.IRI("http://e/o"))) {
		t.Error("labeled blank triple missing")
	}
}

func TestParseBlankSubjectPropertyList(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
[ ex:p ex:o ] .
[ ex:p ex:o2 ] ex:q ex:r .
`)
	if g.Len() != 3 {
		t.Fatalf("Len = %d, want 3:\n%s", g.Len(), g)
	}
}

func TestParseBase(t *testing.T) {
	g := mustParse(t, `
@base <http://example.org/db/> .
<author1> <p> <author2> .
`)
	if !g.Contains(rdf.NewTriple(
		rdf.IRI("http://example.org/db/author1"),
		rdf.IRI("http://example.org/db/p"),
		rdf.IRI("http://example.org/db/author2"))) {
		t.Fatalf("base resolution failed: %v", g.Triples())
	}
}

func TestParseComments(t *testing.T) {
	g := mustParse(t, `
# leading comment
@prefix ex: <http://e/> . # trailing comment
ex:s ex:p ex:o . # done
`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	g := mustParse(t, `
@prefix ex: <http://e/> .
ex:s ex:p ex:o ; .
`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct {
		name, src string
	}{
		{"unterminated iri", `<http://e/s`},
		{"unterminated string", `<http://e/s> <http://e/p> "abc`},
		{"missing dot", `<http://e/s> <http://e/p> <http://e/o>`},
		{"unknown prefix", `ex:s ex:p ex:o .`},
		{"bare word", `hello <http://e/p> <http://e/o> .`},
		{"collection", `<http://e/s> <http://e/p> (1 2) .`},
		{"literal subject", `"s" <http://e/p> <http://e/o> .`},
		{"bad escape", `<http://e/s> <http://e/p> "a\x" .`},
		{"bad unicode escape", `<http://e/s> <http://e/p> "\u00G0" .`},
		{"newline in short string", "<http://e/s> <http://e/p> \"a\nb\" ."},
		{"prefix without colon", `@prefix ex <http://e/> .`},
		{"prefix without dot", `@prefix ex: <http://e/>`},
		{"single caret", `<http://e/s> <http://e/p> "x"^<http://t> .`},
		{"space in iri", `<http://e/a b> <http://e/p> <http://e/o> .`},
		{"empty blank label", `_: <http://e/p> <http://e/o> .`},
		{"lonely semicolon", `;`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Parse(tc.src); err == nil {
				t.Errorf("Parse(%q) succeeded, want error", tc.src)
			}
		})
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, _, err := Parse("<http://e/s> <http://e/p>\n  bogus .")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q lacks line info", err)
	}
}

func TestParseUnicodeEscapes(t *testing.T) {
	g := mustParse(t, `<http://e/s> <http://e/p> "Zürich" .`)
	if !g.Contains(rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.Literal("Zürich"))) {
		t.Fatalf("unicode escape mishandled: %v", g.Triples())
	}
	g = mustParse(t, `<http://e/s> <http://e/p> "\U0001F600" .`)
	if !g.Contains(rdf.NewTriple(rdf.IRI("http://e/s"), rdf.IRI("http://e/p"), rdf.Literal("😀"))) {
		t.Fatalf("long unicode escape mishandled")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic on bad input")
		}
	}()
	MustParse("not turtle at all ~~~")
}

func TestParsePercentInLocalName(t *testing.T) {
	// URI patterns like author%%id%% can appear in IRIs when mappings
	// are written compactly; ensure the lexer tolerates %.
	g := mustParse(t, `@prefix ex: <http://e/> .
ex:author%25 ex:p ex:o .`)
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
}
