// Package turtle implements a parser and serializer for the Terse RDF
// Triple Language (Turtle), the syntax the paper uses to express R3M
// mappings and RDF data.
//
// The supported subset covers everything the paper's listings use and
// more: @prefix and @base directives (plus SPARQL-style PREFIX/BASE),
// IRIs, prefixed names, blank node labels and anonymous blank nodes
// with property lists ([ ... ]), string literals with escapes and
// long (triple-quoted) forms, numeric and boolean shorthand literals,
// language tags, datatype annotations, the 'a' keyword, and
// predicate/object lists with ';' and ','. RDF collections "(...)"
// are intentionally not supported and produce a clear error; R3M does
// not use them.
package turtle

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIRIRef
	tokPName     // prefix:local or :local or prefix:
	tokBlankNode // _:label
	tokString    // lexical form already unescaped
	tokInteger
	tokDecimal
	tokDouble
	tokLangTag // @en (value without '@')
	tokDot
	tokSemicolon
	tokComma
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokCaretCaret
	tokA          // the keyword 'a'
	tokPrefixDecl // @prefix or PREFIX
	tokBaseDecl   // @base or BASE
	tokTrue
	tokFalse
	tokAnon // []
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of input", tokIRIRef: "IRI", tokPName: "prefixed name",
		tokBlankNode: "blank node", tokString: "string", tokInteger: "integer",
		tokDecimal: "decimal", tokDouble: "double", tokLangTag: "language tag",
		tokDot: "'.'", tokSemicolon: "';'", tokComma: "','",
		tokLBracket: "'['", tokRBracket: "']'", tokLParen: "'('", tokRParen: "')'",
		tokCaretCaret: "'^^'", tokA: "'a'", tokPrefixDecl: "@prefix",
		tokBaseDecl: "@base", tokTrue: "'true'", tokFalse: "'false'", tokAnon: "'[]'",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with source position for error messages.
type token struct {
	kind tokenKind
	val  string
	line int
	col  int
}

// lexer scans Turtle input into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// errorf builds a position-annotated lexical error.
func (lx *lexer) errorf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d col %d: %s", lx.line, lx.col, fmt.Sprintf(format, args...))
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipWhitespaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	lx.skipWhitespaceAndComments()
	start := token{line: lx.line, col: lx.col}
	if lx.pos >= len(lx.src) {
		start.kind = tokEOF
		return start, nil
	}
	c := lx.peek()
	switch {
	case c == '<':
		return lx.lexIRIRef(start)
	case c == '"' || c == '\'':
		return lx.lexString(start)
	case c == '_' && lx.peekAt(1) == ':':
		return lx.lexBlankNode(start)
	case c == '@':
		return lx.lexAtKeyword(start)
	case c == '.':
		// A dot may start a decimal like ".5"; Turtle requires a digit
		// after the dot for that, otherwise it is a statement terminator.
		if isDigit(lx.peekAt(1)) {
			return lx.lexNumber(start)
		}
		lx.advance()
		start.kind = tokDot
		return start, nil
	case c == ';':
		lx.advance()
		start.kind = tokSemicolon
		return start, nil
	case c == ',':
		lx.advance()
		start.kind = tokComma
		return start, nil
	case c == '[':
		lx.advance()
		// Recognize ANON "[]" (possibly with internal whitespace).
		save := *lx
		lx.skipWhitespaceAndComments()
		if lx.peek() == ']' {
			lx.advance()
			start.kind = tokAnon
			return start, nil
		}
		*lx = save
		start.kind = tokLBracket
		return start, nil
	case c == ']':
		lx.advance()
		start.kind = tokRBracket
		return start, nil
	case c == '(':
		lx.advance()
		start.kind = tokLParen
		return start, nil
	case c == ')':
		lx.advance()
		start.kind = tokRParen
		return start, nil
	case c == '^':
		if lx.peekAt(1) != '^' {
			return start, lx.errorf("expected '^^', found single '^'")
		}
		lx.advance()
		lx.advance()
		start.kind = tokCaretCaret
		return start, nil
	case c == '+' || c == '-' || isDigit(c):
		return lx.lexNumber(start)
	default:
		return lx.lexNameOrKeyword(start)
	}
}

func (lx *lexer) lexIRIRef(start token) (token, error) {
	lx.advance() // consume '<'
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return start, lx.errorf("unterminated IRI")
		}
		c := lx.advance()
		switch c {
		case '>':
			start.kind = tokIRIRef
			start.val = b.String()
			return start, nil
		case '\n', ' ':
			return start, lx.errorf("invalid character %q in IRI", c)
		case '\\':
			if lx.pos >= len(lx.src) {
				return start, lx.errorf("unterminated escape in IRI")
			}
			esc := lx.advance()
			switch esc {
			case 'u', 'U':
				r, err := lx.lexUnicodeEscape(esc)
				if err != nil {
					return start, err
				}
				b.WriteRune(r)
			default:
				return start, lx.errorf("invalid IRI escape '\\%c'", esc)
			}
		default:
			b.WriteByte(c)
		}
	}
}

func (lx *lexer) lexUnicodeEscape(kind byte) (rune, error) {
	n := 4
	if kind == 'U' {
		n = 8
	}
	var v rune
	for i := 0; i < n; i++ {
		if lx.pos >= len(lx.src) {
			return 0, lx.errorf("unterminated \\%c escape", kind)
		}
		c := lx.advance()
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, lx.errorf("invalid hex digit %q in \\%c escape", c, kind)
		}
		v = v*16 + d
	}
	if !utf8.ValidRune(v) {
		return 0, lx.errorf("escape \\%c denotes invalid code point %#x", kind, v)
	}
	return v, nil
}

func (lx *lexer) lexString(start token) (token, error) {
	quote := lx.advance()
	long := false
	if lx.peek() == quote && lx.peekAt(1) == quote {
		lx.advance()
		lx.advance()
		long = true
	}
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return start, lx.errorf("unterminated string literal")
		}
		c := lx.advance()
		if c == quote {
			if !long {
				break
			}
			if lx.peek() == quote && lx.peekAt(1) == quote {
				lx.advance()
				lx.advance()
				break
			}
			b.WriteByte(c)
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return start, lx.errorf("newline in short string literal")
		}
		if c == '\\' {
			if lx.pos >= len(lx.src) {
				return start, lx.errorf("unterminated escape in string")
			}
			esc := lx.advance()
			switch esc {
			case 't':
				b.WriteByte('\t')
			case 'b':
				b.WriteByte('\b')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 'f':
				b.WriteByte('\f')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			case 'u', 'U':
				r, err := lx.lexUnicodeEscape(esc)
				if err != nil {
					return start, err
				}
				b.WriteRune(r)
			default:
				return start, lx.errorf("invalid string escape '\\%c'", esc)
			}
			continue
		}
		b.WriteByte(c)
	}
	start.kind = tokString
	start.val = b.String()
	return start, nil
}

func (lx *lexer) lexBlankNode(start token) (token, error) {
	lx.advance() // '_'
	lx.advance() // ':'
	var b strings.Builder
	for lx.pos < len(lx.src) && isPNChar(rune(lx.peek())) {
		b.WriteByte(lx.advance())
	}
	if b.Len() == 0 {
		return start, lx.errorf("empty blank node label")
	}
	start.kind = tokBlankNode
	start.val = b.String()
	return start, nil
}

func (lx *lexer) lexAtKeyword(start token) (token, error) {
	lx.advance() // '@'
	var b strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.peek()
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '-' || isDigit(c) {
			b.WriteByte(lx.advance())
		} else {
			break
		}
	}
	word := b.String()
	switch word {
	case "prefix":
		start.kind = tokPrefixDecl
	case "base":
		start.kind = tokBaseDecl
	default:
		// Language tag: letters then optional -subtags.
		if word == "" {
			return start, lx.errorf("empty @ keyword")
		}
		start.kind = tokLangTag
		start.val = word
	}
	return start, nil
}

func (lx *lexer) lexNumber(start token) (token, error) {
	var b strings.Builder
	if lx.peek() == '+' || lx.peek() == '-' {
		b.WriteByte(lx.advance())
	}
	digits := 0
	for isDigit(lx.peek()) {
		b.WriteByte(lx.advance())
		digits++
	}
	kind := tokInteger
	if lx.peek() == '.' && isDigit(lx.peekAt(1)) {
		kind = tokDecimal
		b.WriteByte(lx.advance())
		for isDigit(lx.peek()) {
			b.WriteByte(lx.advance())
			digits++
		}
	}
	if c := lx.peek(); c == 'e' || c == 'E' {
		kind = tokDouble
		b.WriteByte(lx.advance())
		if c := lx.peek(); c == '+' || c == '-' {
			b.WriteByte(lx.advance())
		}
		if !isDigit(lx.peek()) {
			return start, lx.errorf("malformed double literal %q", b.String())
		}
		for isDigit(lx.peek()) {
			b.WriteByte(lx.advance())
		}
	}
	if digits == 0 {
		return start, lx.errorf("malformed numeric literal %q", b.String())
	}
	start.kind = kind
	start.val = b.String()
	return start, nil
}

// lexNameOrKeyword scans prefixed names and the bare keywords a /
// true / false / PREFIX / BASE.
func (lx *lexer) lexNameOrKeyword(start token) (token, error) {
	var b strings.Builder
	sawColon := false
	for lx.pos < len(lx.src) {
		c := lx.peek()
		r := rune(c)
		if c == ':' {
			sawColon = true
			b.WriteByte(lx.advance())
			continue
		}
		if isPNChar(r) || c == '.' && isPNChar(rune(lx.peekAt(1))) || c == '%' {
			if c == '%' {
				// Percent-encoded characters in local names (PN local escape);
				// keep verbatim — they also appear inside R3M URI patterns.
				b.WriteByte(lx.advance())
				continue
			}
			b.WriteByte(lx.advance())
			continue
		}
		break
	}
	word := b.String()
	if word == "" {
		return start, lx.errorf("unexpected character %q", lx.peek())
	}
	if !sawColon {
		switch word {
		case "a":
			start.kind = tokA
			return start, nil
		case "true":
			start.kind = tokTrue
			return start, nil
		case "false":
			start.kind = tokFalse
			return start, nil
		case "PREFIX", "prefix":
			start.kind = tokPrefixDecl
			return start, nil
		case "BASE", "base":
			start.kind = tokBaseDecl
			return start, nil
		}
		return start, lx.errorf("bare word %q is not valid Turtle (missing prefix?)", word)
	}
	start.kind = tokPName
	start.val = word
	return start, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// isPNChar reports whether r may appear in a prefixed-name part. This
// is a slightly permissive version of the Turtle PN_CHARS production
// that additionally admits all non-ASCII letters.
func isPNChar(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '_' || r == '-':
		return true
	case r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
		return true
	}
	return false
}
