// Command r3mgen generates a basic R3M mapping from a database
// schema, implementing the automation the paper's Section 4 sketches:
// tables become classes, attributes become properties, foreign keys
// become object properties, and id+two-foreign-key tables are
// detected as link tables.
//
// Usage:
//
//	r3mgen -ddl schema.sql [-prefix http://example.org/db/] [-ontns http://example.org/ontology#]
//	r3mgen            # demonstrates on the paper's Figure 1 schema
//
// The generated Turtle is written to stdout; hand-edit it afterwards
// to reuse existing domain vocabulary (the one step the paper says
// cannot be automated).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/workload"
)

func main() {
	ddlPath := flag.String("ddl", "", "SQL DDL file (default: the paper's Figure 1 schema)")
	prefix := flag.String("prefix", "http://example.org/db/", "instance URI prefix")
	ontNS := flag.String("ontns", "http://example.org/ontology#", "namespace for generated classes and properties")
	mapNS := flag.String("mapns", "http://example.org/mapping#", "namespace for the mapping nodes")
	flag.Parse()

	ddl := workload.SchemaSQL
	if *ddlPath != "" {
		data, err := os.ReadFile(*ddlPath)
		if err != nil {
			log.Fatalf("r3mgen: %v", err)
		}
		ddl = string(data)
	}
	db := rdb.NewDatabase("r3mgen")
	if _, err := sqlexec.Run(db, ddl); err != nil {
		log.Fatalf("r3mgen: applying DDL: %v", err)
	}
	mapping, err := r3m.Generate(db, r3m.GenerateOptions{
		URIPrefix:  *prefix,
		OntologyNS: *ontNS,
		MapNS:      *mapNS,
	})
	if err != nil {
		log.Fatalf("r3mgen: %v", err)
	}
	fmt.Print(mapping.Turtle())
}
