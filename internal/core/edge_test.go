package core

import (
	"strings"
	"testing"

	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/turtle"
	"ontoaccess/internal/update"
)

// TestDeleteTwoEntitiesChildFirst deletes an author and its team in
// one operation: the generated row DELETEs must run child-first
// (author before team) or the RESTRICT check fires.
func TestDeleteTwoEntitiesChildFirst(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, paperPrologue+`
INSERT DATA {
  ex:team5 foaf:name "SE" ; ont:teamCode "S" .
  ex:author6 foaf:family_name "Hert" ; ont:team ex:team5 .
}`)
	res := mustExec(t, m, paperPrologue+`
DELETE DATA {
  ex:author6 foaf:family_name "Hert" ; ont:team ex:team5 .
  ex:team5 foaf:name "SE" ; ont:teamCode "S" .
}`)
	sql := res.Ops[0].SQL
	if len(sql) != 2 {
		t.Fatalf("SQL = %v", sql)
	}
	if !strings.HasPrefix(sql[0], "DELETE FROM author") || !strings.HasPrefix(sql[1], "DELETE FROM team") {
		t.Errorf("child-first ordering violated:\n%s", strings.Join(sql, "\n"))
	}
	if m.DB().TotalRows() != 0 {
		t.Errorf("rows = %d", m.DB().TotalRows())
	}
	// The unsorted variant fails when generation order puts a row
	// delete before the link-row delete that references it: subject
	// groups are processed alphabetically, so ex:author6 (the row)
	// comes before ex:pub12 (whose group holds the link deletion).
	m2 := paperMediator(t, Options{DisableSort: true})
	// Seed in dependency order, one subject per operation, so the
	// unsorted mediator accepts the setup.
	for _, seed := range []string{
		seedTeam5,
		paperPrologue + `INSERT DATA { ex:pubtype4 ont:type "inproceedings" . }`,
		paperPrologue + `INSERT DATA { ex:publisher3 ont:name "Springer" . }`,
		listing9,
		paperPrologue + `INSERT DATA {
  ex:pub12 dc:title "Relational..." ; ont:pubYear "2009" ;
      ont:pubType ex:pubtype4 ; dc:publisher ex:publisher3 ;
      dc:creator ex:author6 . }`,
	} {
		mustExec(t, m2, seed)
	}
	req := paperPrologue + `
DELETE DATA {
  ex:pub12 dc:creator ex:author6 .
  ex:author6 foaf:title "Mr" ;
      foaf:firstName "Matthias" ;
      foaf:family_name "Hert" ;
      foaf:mbox <mailto:hert@ifi.uzh.ch> ;
      ont:team ex:team5 .
}`
	if _, err := m2.ExecuteString(req); err == nil {
		t.Error("unsorted row-before-link delete should fail under RESTRICT")
	}
	// With sorting the identical request succeeds.
	m3 := paperMediator(t, Options{})
	mustExec(t, m3, listing15)
	mustExec(t, m3, req)
	if n, _ := m3.DB().RowCount("author"); n != 0 {
		t.Errorf("author rows = %d", n)
	}
}

// TestDeleteForeignKeyTriple NULLs the FK column.
func TestDeleteForeignKeyTriple(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	res := mustExec(t, m, paperPrologue+`
DELETE DATA { ex:author6 ont:team ex:team5 . }`)
	want := "UPDATE author SET team = NULL WHERE id = 6 AND team = 5;"
	if len(res.Ops[0].SQL) != 1 || res.Ops[0].SQL[0] != want {
		t.Fatalf("SQL = %v", res.Ops[0].SQL)
	}
	rs, _ := sqlexec.Query(m.DB(), `SELECT team FROM author WHERE id = 6`)
	if !rs.Rows[0][0].IsNull() {
		t.Errorf("team = %v", rs.Rows[0][0])
	}
}

// TestModifyWithFilterFallsBack drives a MODIFY whose WHERE has a
// FILTER: not expressible as a single SELECT, so it evaluates on the
// virtual view; the effect must be identical.
func TestModifyWithFilterFallsBack(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	res := mustExec(t, m, paperPrologue+`
MODIFY
DELETE { ?x foaf:mbox ?mm . }
INSERT { ?x foaf:mbox <mailto:filtered@example.org> . }
WHERE { ?x foaf:mbox ?mm . FILTER REGEX(STR(?mm), "uzh") }`)
	if res.Ops[0].Bindings != 1 {
		t.Fatalf("bindings = %d", res.Ops[0].Bindings)
	}
	// No translated SELECT recorded on the fallback path.
	for _, s := range res.Ops[0].SQL {
		if strings.HasPrefix(s, "SELECT") {
			t.Errorf("unexpected SELECT in fallback path: %s", s)
		}
	}
	rs, _ := sqlexec.Query(m.DB(), `SELECT email FROM author WHERE id = 6`)
	if rs.Rows[0][0] != rdb.String_("filtered@example.org") {
		t.Errorf("email = %v", rs.Rows[0][0])
	}
}

// TestModifyInsertForNewEntity uses MODIFY to create a row for a new
// entity based on matches of existing ones ("not limited to replacing
// triples", Section 5.2).
func TestModifyInsertForNewEntity(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	res := mustExec(t, m, paperPrologue+`
MODIFY
DELETE { }
INSERT { ex:team77 foaf:name "Derived" ; ont:teamCode "DRV" . }
WHERE { ex:author6 foaf:family_name "Hert" . }`)
	if res.Ops[0].Bindings != 1 {
		t.Fatalf("bindings = %d", res.Ops[0].Bindings)
	}
	if _, found, _ := rowByPK(m, "team", 77); !found {
		t.Error("derived team row missing")
	}
}

func rowByPK(m *Mediator, table string, id int64) ([]rdb.Value, bool, error) {
	var row []rdb.Value
	found := false
	err := m.DB().View(func(tx *rdb.Tx) error {
		_, r, ok, err := tx.LookupPK(table, []rdb.Value{rdb.Int(id)})
		row, found = r, ok
		return err
	})
	return row, found, err
}

// TestMixedRequestSequence runs a request with several operations of
// different kinds; atomicity is per operation.
func TestMixedRequestSequence(t *testing.T) {
	m := paperMediator(t, Options{})
	res := mustExec(t, m, paperPrologue+`
INSERT DATA { ex:team5 foaf:name "SE" ; ont:teamCode "S" . } ;
INSERT DATA { ex:author6 foaf:family_name "Hert" ; foaf:mbox <mailto:a@b.c> ; ont:team ex:team5 . } ;
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:new@b.c> . }
WHERE { ?x foaf:mbox ?m . } ;
DELETE DATA { ex:author6 foaf:mbox <mailto:new@b.c> . }`)
	if len(res.Ops) != 4 {
		t.Fatalf("ops = %d", len(res.Ops))
	}
	rs, _ := sqlexec.Query(m.DB(), `SELECT email FROM author WHERE id = 6`)
	if !rs.Rows[0][0].IsNull() {
		t.Errorf("email = %v", rs.Rows[0][0])
	}
}

// TestImportGraph bulk-loads a Turtle document through Algorithm 1.
func TestImportGraph(t *testing.T) {
	m := paperMediator(t, Options{})
	g := turtle.MustParse(`
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix dc: <http://purl.org/dc/elements/1.1/> .
@prefix ont: <http://example.org/ontology#> .
@prefix ex: <http://example.org/db/> .

ex:team1 foaf:name "Imported Team" ; ont:teamCode "IMP" .
ex:author1 foaf:family_name "Importer" ; ont:team ex:team1 .
ex:pubtype1 ont:type "article" .
ex:publisher1 ont:name "Imported Press" .
ex:pub1 dc:title "Imported Paper" ; ont:pubYear "2010" ;
    ont:pubType ex:pubtype1 ; dc:publisher ex:publisher1 ;
    dc:creator ex:author1 .
`)
	res, err := m.ImportGraph(g)
	if err != nil {
		t.Fatalf("ImportGraph: %v", err)
	}
	if m.DB().TotalRows() != 6 {
		t.Errorf("rows = %d, want 6", m.DB().TotalRows())
	}
	if res.RowsAffected != 6 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	// Round trip: exporting yields a supergraph of the import (plus
	// type triples).
	exported, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	missing := g.Diff(exported)
	if len(missing) != 0 {
		t.Errorf("imported triples missing from export: %v", missing)
	}
	// Importing a graph that violates constraints fails atomically.
	bad := turtle.MustParse(`
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/db/> .
ex:team2 foaf:name "T2" .
ex:author2 foaf:firstName "NoLast" .
`)
	before := m.DB().TotalRows()
	if _, err := m.ImportGraph(bad); err == nil {
		t.Fatal("invalid import accepted")
	}
	if m.DB().TotalRows() != before {
		t.Error("failed import leaked rows")
	}
}

// TestEmptyInsertAndDeleteData: empty operations are valid no-ops.
func TestEmptyOperations(t *testing.T) {
	m := paperMediator(t, Options{})
	res, err := m.ExecuteRequest(&update.Request{Ops: []update.Operation{
		update.InsertData{},
		update.DeleteData{},
	}})
	if err != nil {
		t.Fatalf("empty ops: %v", err)
	}
	if len(res.Ops) != 2 || len(res.SQL()) != 0 {
		t.Errorf("res = %+v", res)
	}
}

// TestInsertExistingIdenticalLinkAndNewAttr mixes an UPDATE with an
// idempotent link insert in one group.
func TestInsertExistingWithLink(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	mustExec(t, m, paperPrologue+`INSERT DATA { ex:author7 foaf:family_name "Reif" . }`)
	res := mustExec(t, m, paperPrologue+`
INSERT DATA {
  ex:pub12 ont:pubYear "2010" ;
      dc:creator ex:author7 .
}`)
	sql := res.Ops[0].SQL
	if len(sql) != 2 {
		t.Fatalf("SQL = %v", sql)
	}
	joined := strings.Join(sql, "\n")
	if !strings.Contains(joined, "UPDATE publication SET year = 2010") {
		t.Errorf("missing year update:\n%s", joined)
	}
	if !strings.Contains(joined, "INSERT INTO publication_author (publication, author) VALUES (12, 7);") {
		t.Errorf("missing link insert:\n%s", joined)
	}
}

// TestNonIntegerPrimaryKeyTable exercises a schema keyed by VARCHAR.
func TestNonIntegerPrimaryKey(t *testing.T) {
	db := rdb.NewDatabase("d")
	if _, err := sqlexec.Run(db, `
CREATE TABLE country (
  code VARCHAR PRIMARY KEY,
  name VARCHAR NOT NULL
);`); err != nil {
		t.Fatal(err)
	}
	mapping, err := loadMappingTTL(`
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/mapping#> .
@prefix geo: <http://example.org/geo#> .

map:database a r3m:DatabaseMap ;
    r3m:uriPrefix "http://example.org/data/" ;
    r3m:hasTable map:country .

map:country a r3m:TableMap ;
    r3m:hasTableName "country" ;
    r3m:mapsToClass geo:Country ;
    r3m:uriPattern "country-%%code%%" ;
    r3m:hasAttribute map:country_code , map:country_name .

map:country_code a r3m:AttributeMap ;
    r3m:hasAttributeName "code" ;
    r3m:hasConstraint [ a r3m:PrimaryKey ] .

map:country_name a r3m:AttributeMap ;
    r3m:hasAttributeName "name" ;
    r3m:mapsToDataProperty geo:countryName ;
    r3m:hasConstraint [ a r3m:NotNull ] .
`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(db, mapping, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.ExecuteString(`
PREFIX geo: <http://example.org/geo#>
PREFIX d: <http://example.org/data/>
INSERT DATA { d:country-CH geo:countryName "Switzerland" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SQL()[0] != "INSERT INTO country (code, name) VALUES ('CH', 'Switzerland');" {
		t.Errorf("SQL = %v", res.SQL())
	}
	qr, err := m.Query(`
PREFIX geo: <http://example.org/geo#>
SELECT ?c WHERE { ?c geo:countryName "Switzerland" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Solutions) != 1 || qr.Solutions[0]["c"].Value != "http://example.org/data/country-CH" {
		t.Errorf("solutions = %v", qr.Solutions)
	}
}

func loadMappingTTL(src string) (*r3m.Mapping, error) {
	return r3m.Load(src)
}
