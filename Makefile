# Reproduces the CI gate locally: `make ci` runs exactly what
# .github/workflows/ci.yml runs.

GO ?= go

.PHONY: ci fmt-check vet build test race cover fuzz-smoke bench bench-smoke clean

ci: fmt-check vet build race cover fuzz-smoke bench-smoke

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Coverage gate: the translation core must stay above 70%.
cover:
	$(GO) test -coverprofile=cover.out ./internal/core
	@$(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); if ($$3+0 < 70) { printf "core coverage %.1f%% is below the 70%% gate\n", $$3; exit 1 } else printf "core coverage %.1f%% (gate 70%%)\n", $$3 }'

# 30s of native fuzzing across the three parsers/normalizer targets —
# regressions land in testdata/fuzz/ as seeds.
fuzz-smoke:
	$(GO) test -fuzz FuzzParseUpdate -fuzztime 10s -run '^$$' ./internal/update
	$(GO) test -fuzz FuzzParseQuery -fuzztime 10s -run '^$$' ./internal/sparql
	$(GO) test -fuzz FuzzNormalizeShape -fuzztime 10s -run '^$$' ./internal/core

# One iteration of every benchmark: catches bit-rot without timing.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# The real measurement run (B-series + E-series).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
