package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ontoaccess/internal/rdb"
)

// TestGroupCommitSameTableWriters drives concurrent same-table
// compiled inserts through the scheduler: every accepted request
// lands exactly once, the scheduler accounts for each operation, and
// the final state matches an unbatched mediator run of the same
// stream.
func TestGroupCommitSameTableWriters(t *testing.T) {
	batched := paperMediator(t, Options{})
	unbatched := paperMediator(t, Options{DisableWriteBatching: true})
	for _, m := range []*Mediator{batched, unbatched} {
		mustExec(t, m, seedTeam5)
	}
	const workers = 8
	const perWorker = 30
	req := func(id int) string {
		return fmt.Sprintf(`%s
INSERT DATA {
  ex:author%d foaf:family_name "L%d" ;
      foaf:mbox <mailto:a%d@example.org> ;
      ont:team ex:team5 .
}`, paperPrologue, id, id, id)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := batched.ExecuteString(req(w*perWorker + i + 1)); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("batched request failed: %v", err)
	}
	for i := 1; i <= workers*perWorker; i++ {
		mustExec(t, unbatched, req(i))
	}
	if n, _ := batched.DB().RowCount("author"); n != workers*perWorker {
		t.Errorf("author rows = %d, want %d", n, workers*perWorker)
	}
	s := batched.SchedulerStats()
	if s.Ops != uint64(1+workers*perWorker) { // +1: the seed request
		t.Errorf("scheduler ops = %d, want %d", s.Ops, 1+workers*perWorker)
	}
	if s.Batches == 0 || s.Batches > s.Ops {
		t.Errorf("implausible batch count %d for %d ops", s.Batches, s.Ops)
	}
	if us := unbatched.SchedulerStats(); us.Batches != 0 || us.Ops != 0 || us.KeyedFallbacks != 0 {
		t.Errorf("unbatched mediator reports scheduler stats %+v", us)
	}
	gb, err := batched.Export()
	if err != nil {
		t.Fatal(err)
	}
	gu, err := unbatched.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !gb.Equal(gu) {
		t.Errorf("batched and unbatched runs diverge.\nonly batched:\n%v\nonly unbatched:\n%v",
			gb.Diff(gu), gu.Diff(gb))
	}
}

// TestGroupCommitCoalesces forces one batch with several operations:
// the leader's operation blocks mid-execution while followers enqueue
// behind it, so the hand-off batch must carry them together.
func TestGroupCommitCoalesces(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	// Warm the plan so every request below takes the scheduler path.
	mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA { ex:author1000 foaf:family_name "Warm" ; ont:team ex:team5 . }`, paperPrologue))

	var wg sync.WaitGroup
	slow := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(slow)
		// The leader executes this request; while its batch runs, the
		// followers below enqueue.
		m.ExecuteString(fmt.Sprintf(`%s
INSERT DATA { ex:author1001 foaf:family_name "Leader" ; ont:team ex:team5 . }`, paperPrologue))
	}()
	<-slow
	const followers = 6
	for w := 0; w < followers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m.ExecuteString(fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "F%d" ; ont:team ex:team5 . }`, paperPrologue, 1002+w, w))
		}(w)
	}
	wg.Wait()
	if n, _ := m.DB().RowCount("author"); n != 2+followers {
		t.Fatalf("author rows = %d, want %d", n, 2+followers)
	}
	// Concurrency makes the exact batch shapes nondeterministic, but
	// with 7 concurrent submitters of one signature at least one batch
	// almost always coalesces; tolerate the unlucky fully serial run
	// but verify the accounting invariants always.
	s := m.SchedulerStats()
	if s.Ops != uint64(3+followers) { // seed + warm + leader + followers
		t.Fatalf("scheduler ops = %d, want %d", s.Ops, 3+followers)
	}
	if s.MaxBatch < 1 || s.MaxBatch > uint64(1+followers) {
		t.Fatalf("max batch = %d out of range", s.MaxBatch)
	}
}

// TestGroupCommitErrorIsolation batches valid and constraint-violating
// operations concurrently: the violations must fail with their own
// feedback while every valid batch mate commits untouched.
func TestGroupCommitErrorIsolation(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	const n = 40
	var wg sync.WaitGroup
	var okCount, errCount int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var req string
			if i%4 == 0 {
				// Invalid: references a team that does not exist.
				req = fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "X%d" ; ont:team ex:team99 . }`, paperPrologue, i+1, i)
			} else {
				req = fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "V%d" ; ont:team ex:team5 . }`, paperPrologue, i+1, i)
			}
			_, err := m.ExecuteString(req)
			mu.Lock()
			if err != nil {
				errCount++
			} else {
				okCount++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	wantErr := n / 4
	if errCount != wantErr || okCount != n-wantErr {
		t.Fatalf("ok=%d err=%d, want ok=%d err=%d", okCount, errCount, n-wantErr, wantErr)
	}
	if rows, _ := m.DB().RowCount("author"); rows != n-wantErr {
		t.Fatalf("author rows = %d, want %d", rows, n-wantErr)
	}
}

// TestGroupCommitVisibility: a caller resumed by the scheduler must
// immediately see its own write in a fresh snapshot (results are
// delivered post-commit).
func TestGroupCommitVisibility(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*20)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := w*100 + i + 1
				if _, err := m.ExecuteString(fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "R%d" ; ont:team ex:team5 . }`, paperPrologue, id, id)); err != nil {
					errs <- err
					return
				}
				res, err := m.Query(fmt.Sprintf(`%s
SELECT ?n WHERE { ex:author%d foaf:family_name ?n . }`, paperPrologue, id))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Solutions) != 1 {
					errs <- fmt.Errorf("own write of author%d invisible after commit: %d solutions", id, len(res.Solutions))
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("group-commit visibility test timed out (lost wakeup in the scheduler?)")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSchedulerStaleFallback: a compiled shape whose re-binding
// breaks a shape assumption (two distinct subject slots binding to
// the same URI) must abandon the batched/compiled path and fall back
// to the uncompiled whole-database path, which merges the groups.
func TestSchedulerStaleFallback(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	// Compile the two-subject shape.
	mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA {
  ex:author1 foaf:family_name "A" ; ont:team ex:team5 .
  ex:author2 foaf:family_name "B" ; ont:team ex:team5 .
}`, paperPrologue))
	// Re-bind with both subject slots naming the same entity: the bound
	// plan goes stale (distinct groups must stay distinct) and the
	// uncompiled path merges the triples into one entity.
	mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA {
  ex:author7 foaf:family_name "C" ; ont:team ex:team5 .
  ex:author7 foaf:family_name "C" ; ont:team ex:team5 .
}`, paperPrologue))
	q, err := m.Query(paperPrologue + `SELECT ?n WHERE { ex:author7 foaf:family_name ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["n"].Value != "C" {
		t.Fatalf("merged entity wrong: %+v", q.Solutions)
	}
	if n, _ := m.DB().RowCount("author"); n != 3 {
		t.Fatalf("author rows = %d, want 3", n)
	}
}

// TestUnbatchedOptionBypassesScheduler pins the ablation contract the
// B11 benchmark relies on.
func TestUnbatchedOptionBypassesScheduler(t *testing.T) {
	m := paperMediator(t, Options{DisableWriteBatching: true})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA { ex:author1 foaf:family_name "A" ; ont:team ex:team5 . }`, paperPrologue))
	if s := m.SchedulerStats(); s.Batches != 0 || s.Ops != 0 || s.KeyedFallbacks != 0 {
		t.Fatalf("scheduler ran despite DisableWriteBatching: %+v", s)
	}
}

// TestSchedulerContainsPanics: a panicking batched operation must
// surface as an error to its own caller, roll back to its savepoint,
// and leave the queue healthy — not wedge every later writer of the
// same signature behind a vanished leader.
func TestSchedulerContainsPanics(t *testing.T) {
	m := paperMediator(t, Options{})
	s := m.sched
	sig := lockSignature([]string{"team"}, nil)
	_, err := s.run(sig, wholeShards([]string{"team"}), nil, func(tx *rdb.Tx) (*OpResult, error) {
		tx.Insert("team", map[string]rdb.Value{
			"id": rdb.Int(1), "name": rdb.String_("doomed"), "code": rdb.String_("d")})
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job returned err = %v, want panic-derived error", err)
	}
	// The queue must still accept and commit work.
	_, err = s.run(sig, wholeShards([]string{"team"}), nil, func(tx *rdb.Tx) (*OpResult, error) {
		return &OpResult{}, tx.Insert("team", map[string]rdb.Value{
			"id": rdb.Int(2), "name": rdb.String_("B"), "code": rdb.String_("b")})
	})
	if err != nil {
		t.Fatalf("queue wedged after panic: %v", err)
	}
	// The panicked op's partial work was rolled back; the later op
	// committed.
	m.DB().View(func(tx *rdb.Tx) error {
		if _, _, found, _ := tx.LookupPK("team", []rdb.Value{rdb.Int(1)}); found {
			t.Error("panicked operation's insert survived")
		}
		if _, _, found, _ := tx.LookupPK("team", []rdb.Value{rdb.Int(2)}); !found {
			t.Error("post-panic operation did not commit")
		}
		return nil
	})
}

// TestSavepointedExecKeepsBatchMates drives the scheduler directly:
// one failing job between two succeeding ones, all in one queue.
func TestSavepointedExecKeepsBatchMates(t *testing.T) {
	m := paperMediator(t, Options{})
	s := m.sched
	ok1, err1 := s.run(lockSignature([]string{"team"}, nil), wholeShards([]string{"team"}), nil, func(tx *rdb.Tx) (*OpResult, error) {
		return &OpResult{}, tx.Insert("team", map[string]rdb.Value{
			"id": rdb.Int(1), "name": rdb.String_("A"), "code": rdb.String_("a")})
	})
	_, errBad := s.run(lockSignature([]string{"team"}, nil), wholeShards([]string{"team"}), nil, func(tx *rdb.Tx) (*OpResult, error) {
		return &OpResult{}, tx.Insert("team", map[string]rdb.Value{
			"id": rdb.Int(1), "name": rdb.String_("dup"), "code": rdb.String_("x")})
	})
	ok2, err2 := s.run(lockSignature([]string{"team"}, nil), wholeShards([]string{"team"}), nil, func(tx *rdb.Tx) (*OpResult, error) {
		return &OpResult{}, tx.Insert("team", map[string]rdb.Value{
			"id": rdb.Int(2), "name": rdb.String_("B"), "code": rdb.String_("b")})
	})
	if err1 != nil || err2 != nil || ok1 == nil || ok2 == nil {
		t.Fatalf("valid jobs failed: %v %v", err1, err2)
	}
	if errBad == nil {
		t.Fatal("duplicate-key job must fail")
	}
	if n, _ := m.DB().RowCount("team"); n != 2 {
		t.Fatalf("team rows = %d, want 2", n)
	}
}
