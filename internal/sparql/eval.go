package sparql

import (
	"fmt"
	"sort"
	"strings"

	"ontoaccess/internal/rdf"
)

// Matcher is the minimal triple-source interface the evaluator needs.
// Zero-valued terms in the pattern are wildcards. Both the native
// triple store and the mediated RDF view implement it.
type Matcher interface {
	Match(pattern rdf.Triple, fn func(rdf.Triple) bool)
}

// Solutions is an ordered sequence of variable bindings.
type Solutions []Binding

// EvalOptions tune the evaluator; the zero value is the default
// behaviour (basic graph patterns are reordered greedily by
// selectivity before evaluation).
type EvalOptions struct {
	// NoReorder evaluates triple patterns in textual order, as a
	// naive engine would; used by the B7 ablation benchmark.
	NoReorder bool
}

// Eval evaluates a parsed query against a matcher. SELECT returns the
// solution sequence; ASK returns zero or one empty binding (use
// EvalAsk for a boolean); CONSTRUCT should use EvalConstruct.
func Eval(m Matcher, q *Query) (Solutions, error) {
	return EvalWith(m, q, EvalOptions{})
}

// EvalWith is Eval with explicit evaluator options.
func EvalWith(m Matcher, q *Query, opts EvalOptions) (Solutions, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("sparql: query has no WHERE clause")
	}
	where := q.Where
	if !opts.NoReorder {
		where = reorderGroup(where)
	}
	sols := evalGroup(m, where, Solutions{Binding{}})

	if q.Aggs != nil {
		// The parser guarantees aggregation never combines with the
		// other solution modifiers, so grouping replaces the whole tail.
		return aggregateSolutions(sols, q)
	}

	if len(q.OrderBy) > 0 {
		sortSolutions(sols, q.OrderBy)
	}

	if q.Form == FormSelect && !q.Star {
		sols = project(sols, q.Vars)
	}
	if q.Distinct {
		sols = distinct(sols)
	}
	if q.Offset > 0 {
		if q.Offset >= len(sols) {
			sols = nil
		} else {
			sols = sols[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(sols) {
		sols = sols[:q.Limit]
	}
	return sols, nil
}

// EvalAsk evaluates an ASK query.
func EvalAsk(m Matcher, q *Query) (bool, error) {
	sols, err := Eval(m, q)
	if err != nil {
		return false, err
	}
	return len(sols) > 0, nil
}

// EvalConstruct evaluates a CONSTRUCT query, instantiating the
// template once per solution. Template blank nodes are renamed per
// solution, as the SPARQL semantics require.
func EvalConstruct(m Matcher, q *Query) (*rdf.Graph, error) {
	if q.Form != FormConstruct {
		return nil, fmt.Errorf("sparql: EvalConstruct on %s query", q.Form)
	}
	sols, err := Eval(m, q)
	if err != nil {
		return nil, err
	}
	out := rdf.NewGraph()
	for i, sol := range sols {
		for _, tp := range q.Template {
			t, ok := instantiateWithBlanks(tp, sol, i)
			if !ok {
				continue // unbound variable: skip this template triple
			}
			out.Add(t)
		}
	}
	return out, nil
}

func instantiateWithBlanks(tp TriplePattern, b Binding, solIdx int) (rdf.Triple, bool) {
	resolve := func(pt PatternTerm) (rdf.Term, bool) {
		t, ok := pt.Resolve(b)
		if !ok {
			return rdf.Term{}, false
		}
		if t.IsBlank() {
			return rdf.Blank(fmt.Sprintf("%s_sol%d", t.Value, solIdx)), true
		}
		return t, true
	}
	s, ok := resolve(tp.S)
	if !ok {
		return rdf.Triple{}, false
	}
	p, ok := resolve(tp.P)
	if !ok {
		return rdf.Triple{}, false
	}
	o, ok := resolve(tp.O)
	if !ok {
		return rdf.Triple{}, false
	}
	return rdf.Triple{S: s, P: p, O: o}, true
}

// evalGroup evaluates a group graph pattern given input solutions.
func evalGroup(m Matcher, g *GroupPattern, input Solutions) Solutions {
	cur := input
	// 1. Basic graph pattern.
	for _, tp := range g.Triples {
		cur = evalTriplePattern(m, tp, cur)
		if len(cur) == 0 {
			// Still need to honor FILTER semantics, but with no
			// solutions the result stays empty.
			return nil
		}
	}
	// 2. UNION constructs join with the current solutions.
	for _, alts := range g.Unions {
		var next Solutions
		for _, alt := range alts {
			next = append(next, evalGroup(m, alt, cur)...)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	// 3. OPTIONAL left-joins.
	for _, opt := range g.Optionals {
		var next Solutions
		for _, b := range cur {
			ext := evalGroup(m, opt, Solutions{b})
			if len(ext) == 0 {
				next = append(next, b)
			} else {
				next = append(next, ext...)
			}
		}
		cur = next
	}
	// 4. FILTER constraints.
	for _, f := range g.Filters {
		var kept Solutions
		for _, b := range cur {
			v, err := f.Eval(b)
			if err != nil {
				continue // type error: filter is false
			}
			ok, err := EffectiveBool(v)
			if err == nil && ok {
				kept = append(kept, b)
			}
		}
		cur = kept
	}
	return cur
}

// evalTriplePattern joins the pattern against every input binding.
func evalTriplePattern(m Matcher, tp TriplePattern, input Solutions) Solutions {
	var out Solutions
	for _, b := range input {
		// Substitute bound variables into the pattern.
		probe := rdf.Triple{}
		if t, ok := tp.S.Resolve(b); ok {
			probe.S = t
		}
		if t, ok := tp.P.Resolve(b); ok {
			probe.P = t
		}
		if t, ok := tp.O.Resolve(b); ok {
			probe.O = t
		}
		// Collect matches first: the matcher may hold a read lock
		// during iteration and downstream work may need the store.
		var matches []rdf.Triple
		m.Match(probe, func(t rdf.Triple) bool {
			matches = append(matches, t)
			return true
		})
		for _, t := range matches {
			if nb, ok := extendBinding(b, tp, t); ok {
				out = append(out, nb)
			}
		}
	}
	return out
}

// extendBinding binds the pattern's variables to the matched triple's
// terms, rejecting matches that are inconsistent with repeated
// variables (e.g. "?x p ?x").
func extendBinding(b Binding, tp TriplePattern, t rdf.Triple) (Binding, bool) {
	nb := b
	cloned := false
	bind := func(pt PatternTerm, val rdf.Term) bool {
		if !pt.IsVar {
			return true
		}
		if old, ok := nb[pt.Var]; ok {
			return old == val
		}
		if !cloned {
			nb = nb.Clone()
			cloned = true
		}
		nb[pt.Var] = val
		return true
	}
	if !bind(tp.S, t.S) || !bind(tp.P, t.P) || !bind(tp.O, t.O) {
		return nil, false
	}
	return nb, true
}

func project(sols Solutions, vars []string) Solutions {
	out := make(Solutions, len(sols))
	for i, b := range sols {
		nb := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := b[v]; ok {
				nb[v] = t
			}
		}
		out[i] = nb
	}
	return out
}

func distinct(sols Solutions) Solutions {
	seen := make(map[string]bool, len(sols))
	var out Solutions
	for _, b := range sols {
		k := b.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

func sortSolutions(sols Solutions, keys []OrderKey) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, k := range keys {
			a, aok := sols[i][k.Var]
			b, bok := sols[j][k.Var]
			var c int
			switch {
			case !aok && !bok:
				c = 0
			case !aok:
				c = -1 // unbound sorts first
			case !bok:
				c = 1
			default:
				var err error
				c, err = compareOrdered(a, b)
				if err != nil {
					c = rdf.CompareTerms(a, b)
				}
			}
			if c != 0 {
				if k.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
}

// FormatTable renders solutions as an aligned text table with the
// given column order, used by the CLI tools and the experiments.
func FormatTable(vars []string, sols Solutions) string {
	widths := make([]int, len(vars))
	for i, v := range vars {
		widths[i] = len(v) + 1
	}
	rows := make([][]string, len(sols))
	for r, b := range sols {
		row := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := b[v]; ok {
				row[i] = t.String()
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows[r] = row
	}
	var sb strings.Builder
	for i, v := range vars {
		sb.WriteString(pad("?"+v, widths[i]+2))
		_ = i
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		for i, cell := range row {
			sb.WriteString(pad(cell, widths[i]+2))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
