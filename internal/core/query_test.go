package core

import (
	"strings"
	"testing"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/sparql"
	"ontoaccess/internal/triplestore"
	"ontoaccess/internal/update"
)

const (
	foafNS = "http://xmlns.com/foaf/0.1/"
	dcNS   = "http://purl.org/dc/elements/1.1/"
	ontNS  = "http://example.org/ontology#"
	exNS   = "http://example.org/db/"
)

func TestQueryBGPTranslatedToSQL(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	// The WHERE clause of the paper's Listing 11, as a SELECT.
	res, err := m.Query(paperPrologue + `
SELECT ?x ?mbox WHERE {
  ?x rdf:type foaf:Person ;
     foaf:firstName "Matthias" ;
     foaf:family_name "Hert" ;
     foaf:mbox ?mbox .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SQL == "" {
		t.Error("BGP query should use the SQL fast path")
	}
	if !strings.Contains(res.SQL, "FROM author") {
		t.Errorf("SQL = %s", res.SQL)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	if res.Solutions[0]["x"] != rdf.IRI(exNS+"author6") {
		t.Errorf("?x = %v", res.Solutions[0]["x"])
	}
	if res.Solutions[0]["mbox"] != rdf.IRI("mailto:hert@ifi.uzh.ch") {
		t.Errorf("?mbox = %v", res.Solutions[0]["mbox"])
	}
}

func TestQueryJoinAcrossTables(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res, err := m.Query(paperPrologue + `
SELECT ?title ?last ?team WHERE {
  ?pub dc:creator ?a ;
       dc:title ?title .
  ?a foaf:family_name ?last ;
     ont:team ?t .
  ?t foaf:name ?team .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Fatalf("solutions = %v (SQL: %s)", res.Solutions, res.SQL)
	}
	s := res.Solutions[0]
	if s["title"] != rdf.Literal("Relational...") || s["last"] != rdf.Literal("Hert") ||
		s["team"] != rdf.Literal("Software Engineering") {
		t.Errorf("solution = %v", s)
	}
	if res.SQL == "" || !strings.Contains(res.SQL, "JOIN") {
		t.Errorf("expected a JOIN query, got %q", res.SQL)
	}
}

func TestQueryConstSubject(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res, err := m.Query(paperPrologue + `
SELECT ?name WHERE { ex:team5 foaf:name ?name . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["name"] != rdf.Literal("Software Engineering") {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	if !strings.Contains(res.SQL, "id = 5") {
		t.Errorf("const subject should pin the key: %s", res.SQL)
	}
}

func TestQueryConstFKObject(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res, err := m.Query(paperPrologue + `
SELECT ?a WHERE { ?a ont:team ex:team5 . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["a"] != rdf.IRI(exNS+"author6") {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	if !strings.Contains(res.SQL, "team = 5") {
		t.Errorf("SQL = %s", res.SQL)
	}
}

func TestQueryYearLiteralMatchesIntegerColumn(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	for _, q := range []string{
		`SELECT ?p WHERE { ?p ont:pubYear "2009" . }`,
		`SELECT ?p WHERE { ?p ont:pubYear 2009 . }`,
	} {
		res, err := m.Query(paperPrologue + q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if len(res.Solutions) != 1 || res.Solutions[0]["p"] != rdf.IRI(exNS+"pub12") {
			t.Errorf("%s -> %v", q, res.Solutions)
		}
	}
}

func TestQueryFilterFallsBackToVirtualView(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	// The view renders pubYear as a plain literal (as the paper's
	// listings do), so the filter compares strings.
	res, err := m.Query(paperPrologue + `
SELECT ?p WHERE { ?p ont:pubYear ?y . FILTER (?y >= "2009") }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SQL != "" {
		t.Error("FILTER queries cannot use the single-SELECT path")
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["p"] != rdf.IRI(exNS+"pub12") {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	// A numeric comparison against a plain literal is a SPARQL type
	// error: the row is filtered out, not an error.
	res, err = m.Query(paperPrologue + `
SELECT ?p WHERE { ?p ont:pubYear ?y . FILTER (?y >= 2009) }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("numeric filter on plain literal matched: %v", res.Solutions)
	}
}

func TestQueryAskAndConstruct(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	res, err := m.Query(paperPrologue + `ASK { ex:author6 foaf:family_name "Hert" . }`)
	if err != nil || !res.Bool {
		t.Fatalf("ASK = %v, %v", res, err)
	}
	res, err = m.Query(paperPrologue + `ASK { ex:author6 foaf:family_name "Nobody" . }`)
	if err != nil || res.Bool {
		t.Fatalf("negative ASK = %v, %v", res, err)
	}
	res, err = m.Query(paperPrologue + `
CONSTRUCT { ?a <http://e/wrote> ?p . } WHERE { ?p dc:creator ?a . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Len() != 1 {
		t.Fatalf("constructed:\n%s", res.Graph)
	}
}

func TestQueryModifiersViaVirtualView(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	mustExec(t, m, paperPrologue+`
INSERT DATA {
  ex:pub13 dc:title "Another" ; ont:pubYear "2010" .
  ex:pub14 dc:title "Third" ; ont:pubYear "2008" .
}`)
	res, err := m.Query(paperPrologue + `
SELECT ?t WHERE { ?p dc:title ?t ; ont:pubYear ?y . } ORDER BY DESC(?y) LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v", res.Solutions)
	}
	if res.Solutions[0]["t"] != rdf.Literal("Another") || res.Solutions[1]["t"] != rdf.Literal("Relational...") {
		t.Errorf("order = %v", res.Solutions)
	}
}

func TestTranslateSelectErrors(t *testing.T) {
	m := paperMediator(t, Options{})
	cases := []struct{ name, q string }{
		{"variable predicate", `SELECT ?p WHERE { ex:team5 ?p ?o . }`},
		{"variable class", `SELECT ?c WHERE { ?x a ?c . }`},
		{"unmapped property", `SELECT ?x WHERE { ?x <http://nope/p> ?o . }`},
		{"unmapped class", `SELECT ?x WHERE { ?x a <http://nope/C> . }`},
		{"disconnected", `SELECT ?a ?b WHERE { ?a foaf:name ?n . ?b ont:type ?t . }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := sparql.ParseQuery(paperPrologue + tc.q)
			if err != nil {
				t.Fatal(err)
			}
			err = m.DB().View(func(tx *rdb.Tx) error {
				if _, terr := m.TranslateSelect(tx, q.Where, nil); terr == nil {
					t.Errorf("TranslateSelect accepted %s", tc.name)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestExportMatchesNativeStore is the bijectivity property from the
// paper's related-work discussion: applying the same update stream to
// the mediator and to a native triple store yields the same graph
// (modulo the rdf:type triples the mapping derives for free).
func TestExportMatchesNativeStore(t *testing.T) {
	requests := []string{
		listing15,
		paperPrologue + `INSERT DATA { ex:author7 foaf:family_name "Reif" ; foaf:firstName "Gerald" . }`,
		paperPrologue + `INSERT DATA { ex:pub12 dc:creator ex:author7 . }`,
		paperPrologue + `DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }`,
		listing11Like,
	}
	m := paperMediator(t, Options{})
	native := triplestore.New()
	for _, req := range requests {
		mustExec(t, m, req)
		parsed, err := update.Parse(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := update.Apply(native, parsed); err != nil {
			t.Fatal(err)
		}
	}
	exported, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	// The mediated view also exposes rdf:type triples derived from
	// the mapping; add the same class assertions to the native graph
	// for comparison.
	nativeGraph := native.Graph()
	exported.Each(func(tr rdf.Triple) bool {
		if tr.P == rdf.IRI(rdf.RDFType) {
			nativeGraph.Add(tr)
		}
		return true
	})
	if !exported.Equal(nativeGraph) {
		t.Errorf("views diverge.\nonly mediated:\n%v\nonly native:\n%v",
			exported.Diff(nativeGraph), nativeGraph.Diff(exported))
	}
}

// listing11Like replaces Reif's first name (exercises MODIFY on both
// sides).
const listing11Like = paperPrologue + `
MODIFY
DELETE { ?x foaf:firstName ?n . }
INSERT { ?x foaf:firstName "G." . }
WHERE { ?x foaf:family_name "Reif" ; foaf:firstName ?n . }`

func TestVirtualGraphSubjectLookup(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	err := m.DB().View(func(tx *rdb.Tx) error {
		vg := m.VirtualGraph(tx)
		n := 0
		vg.Match(rdf.Triple{S: rdf.IRI(exNS + "author6")}, func(tr rdf.Triple) bool {
			n++
			return true
		})
		// type + title + email + firstname + lastname + team = 6
		if n != 6 {
			t.Errorf("author6 triples = %d, want 6", n)
		}
		// Bound S and P.
		n = 0
		vg.Match(rdf.Triple{S: rdf.IRI(exNS + "pub12"), P: rdf.IRI(dcNS + "creator")}, func(tr rdf.Triple) bool {
			n++
			if tr.O != rdf.IRI(exNS+"author6") {
				t.Errorf("creator = %v", tr.O)
			}
			return true
		})
		if n != 1 {
			t.Errorf("creator triples = %d", n)
		}
		// Unknown subject: nothing.
		vg.Match(rdf.Triple{S: rdf.IRI("http://other.org/x")}, func(rdf.Triple) bool {
			t.Error("unexpected triple for foreign URI")
			return false
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualGraphPropertyScan(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	err := m.DB().View(func(tx *rdb.Tx) error {
		vg := m.VirtualGraph(tx)
		// foaf:name is mapped on team only.
		n := 0
		vg.Match(rdf.Triple{P: rdf.IRI(foafNS + "name")}, func(tr rdf.Triple) bool {
			n++
			return true
		})
		if n != 1 {
			t.Errorf("foaf:name triples = %d", n)
		}
		// rdf:type scan with class filter.
		n = 0
		vg.Match(rdf.Triple{P: rdf.IRI(rdf.RDFType), O: rdf.IRI(foafNS + "Person")}, func(tr rdf.Triple) bool {
			n++
			return true
		})
		if n != 1 {
			t.Errorf("persons = %d", n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExportShape(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, listing15)
	g, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	// 5 entities x 1 type triple + 13 attribute triples (pub: 4, author:
	// 5, team: 2, pubtype: 1, publisher: 1) + 1 link triple = 19.
	if g.Len() != 19 {
		t.Errorf("exported %d triples:\n%s", g.Len(), g)
	}
	checks := []rdf.Triple{
		rdf.NewTriple(rdf.IRI(exNS+"author6"), rdf.IRI(rdf.RDFType), rdf.IRI(foafNS+"Person")),
		rdf.NewTriple(rdf.IRI(exNS+"author6"), rdf.IRI(foafNS+"mbox"), rdf.IRI("mailto:hert@ifi.uzh.ch")),
		rdf.NewTriple(rdf.IRI(exNS+"pub12"), rdf.IRI(ontNS+"pubYear"), rdf.Literal("2009")),
		rdf.NewTriple(rdf.IRI(exNS+"pub12"), rdf.IRI(dcNS+"creator"), rdf.IRI(exNS+"author6")),
		rdf.NewTriple(rdf.IRI(exNS+"pub12"), rdf.IRI(dcNS+"publisher"), rdf.IRI(exNS+"publisher3")),
	}
	for _, want := range checks {
		if !g.Contains(want) {
			t.Errorf("exported view missing %v", want)
		}
	}
}
