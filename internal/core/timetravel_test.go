package core

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ontoaccess/internal/ntriples"
	"ontoaccess/internal/rdb"
)

// TestAsOfCurrentEqualsPlainRead is the metamorphic anchor of the
// read-target contract: addressing the current head version
// explicitly must be indistinguishable from the plain read, across
// compiled, aggregate and fallback query shapes.
func TestAsOfCurrentEqualsPlainRead(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	head := m.DB().SnapshotVersion()
	for _, q := range []string{
		`SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`,
		`SELECT ?f ?l WHERE { ?x foaf:firstName ?f ; foaf:family_name ?l . } ORDER BY ?l`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?x foaf:family_name ?l . }`,
		`SELECT ?x WHERE { ?x foaf:family_name ?l . FILTER (STR(?l) = "Hert") }`,
		`ASK { ex:author6 ont:team ex:team5 . }`,
	} {
		src := paperPrologue + q
		plain, err := m.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		pinned, err := m.QueryOn(src, rdb.ReadTarget{AsOf: head})
		if err != nil {
			t.Fatalf("%s: as of %d: %v", q, head, err)
		}
		if !reflect.DeepEqual(plain, pinned) {
			t.Errorf("%s:\nplain  %+v\npinned %+v", q, plain, pinned)
		}
	}
	// The branch target "spelled main" — resolved through the ref — is
	// the same snapshot.
	g1, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := m.ExportOn(rdb.ReadTarget{AsOf: head})
	if err != nil {
		t.Fatal(err)
	}
	if ntriples.Format(g1) != ntriples.Format(g2) {
		t.Errorf("export differs:\n%s\nvs\n%s", ntriples.Format(g1), ntriples.Format(g2))
	}
}

// TestPinnedAsOfStableUnderModifyStream pins a snapshot version and
// asserts that re-reads of that version return byte-identical results
// while a concurrent MODIFY stream rewrites the row — the isolation
// half of the time-travel contract.
func TestPinnedAsOfStableUnderModifyStream(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	pinned := m.DB().SnapshotVersion()
	src := paperPrologue + `SELECT ?f ?m WHERE { ex:author6 foaf:firstName ?f ; foaf:mbox ?m . }`
	want, err := m.QueryOn(src, rdb.ReadTarget{AsOf: pinned})
	if err != nil {
		t.Fatal(err)
	}

	const modifies = 60
	done := make(chan struct{})
	var writerErr error
	go func() {
		defer close(done)
		for i := 0; i < modifies; i++ {
			_, err := m.ExecuteString(fmt.Sprintf(paperPrologue+`
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:v%d@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`, i))
			if err != nil {
				writerErr = err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				got, err := m.QueryOn(src, rdb.ReadTarget{AsOf: pinned})
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Solutions, want.Solutions) {
					errs <- fmt.Errorf("pinned read drifted: %v vs %v", got.Solutions, want.Solutions)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The head moved past the pinned version.
	head, err := m.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(head.Solutions, want.Solutions) {
		t.Errorf("head did not move: %v", head.Solutions)
	}
}

// TestNonHeadWriteRejected: updates addressed at a historical version
// fail with the typed error before touching any table.
func TestNonHeadWriteRejected(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	v := m.DB().SnapshotVersion()
	mustExec(t, m, listing9)
	_, err := m.ExecuteStringOn(listing9, rdb.ReadTarget{AsOf: v})
	var nh *rdb.NonHeadWriteError
	if !errors.As(err, &nh) {
		t.Fatalf("err = %v, want NonHeadWriteError", err)
	}
	rows := m.DB().TotalRows()
	if rows != 2 {
		t.Errorf("rows = %d after rejected write", rows)
	}
}

// TestBranchWriteRoutingAndMergeExport: a branch write lands on the
// branch head only; after a fast-forward merge, the main export is
// byte-identical to the branch export taken before the merge — the
// merge metamorphic invariant.
func TestBranchWriteRoutingAndMergeExport(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	if err := m.DB().CreateBranch("work"); err != nil {
		t.Fatal(err)
	}
	onBranch := rdb.ReadTarget{Branch: "work"}
	if _, err := m.ExecuteStringOn(paperPrologue+`
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:branch@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`, onBranch); err != nil {
		t.Fatal(err)
	}

	mainRes, err := m.Query(paperPrologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(mainRes.Solutions) != 1 || mainRes.Solutions[0]["m"].Value != "mailto:hert@ifi.uzh.ch" {
		t.Fatalf("main saw the branch write: %v", mainRes.Solutions)
	}
	branchRes, err := m.QueryOn(paperPrologue+`SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`, onBranch)
	if err != nil {
		t.Fatal(err)
	}
	if len(branchRes.Solutions) != 1 || branchRes.Solutions[0]["m"].Value != "mailto:branch@example.org" {
		t.Fatalf("branch missed its write: %v", branchRes.Solutions)
	}

	branchExport, err := m.ExportOn(onBranch)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.DB().Merge("work", rdb.MainBranch)
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastForward {
		t.Errorf("merge = %+v, want fast-forward", res)
	}
	mainExport, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	if ntriples.Format(mainExport) != ntriples.Format(branchExport) {
		t.Errorf("merged main differs from the branch:\n%s\nvs\n%s",
			ntriples.Format(mainExport), ntriples.Format(branchExport))
	}
}
