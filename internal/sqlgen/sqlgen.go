// Package sqlgen renders SQL DML statements as text. The OntoAccess
// translator emits SQL strings — exactly like the paper's prototype,
// which shipped generated SQL to MySQL over JDBC — and this package
// is the single place where that text is produced, so the feasibility
// study can compare generated statements with the paper's listings
// verbatim.
package sqlgen

import (
	"strconv"
	"strings"

	"ontoaccess/internal/rdb"
)

// Assign is one column assignment in an UPDATE SET clause.
type Assign struct {
	Column string
	Value  rdb.Value
}

// Cond is one equality condition in a WHERE clause; a NULL value
// renders as "col IS NULL".
type Cond struct {
	Column string
	Value  rdb.Value
}

// Insert renders "INSERT INTO table (cols) VALUES (vals);".
func Insert(table string, cols []string, vals []rdb.Value) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" (")
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(") VALUES (")
	for i, v := range vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteString(");")
	return b.String()
}

// Update renders "UPDATE table SET a = v, ... WHERE c = w AND ...;".
func Update(table string, set []Assign, where []Cond) string {
	var b strings.Builder
	b.WriteString("UPDATE ")
	b.WriteString(table)
	b.WriteString(" SET ")
	for i, a := range set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column)
		b.WriteString(" = ")
		b.WriteString(a.Value.String())
	}
	writeWhere(&b, where)
	b.WriteString(";")
	return b.String()
}

// Delete renders "DELETE FROM table WHERE ...;".
func Delete(table string, where []Cond) string {
	var b strings.Builder
	b.WriteString("DELETE FROM ")
	b.WriteString(table)
	writeWhere(&b, where)
	b.WriteString(";")
	return b.String()
}

func writeWhere(b *strings.Builder, where []Cond) {
	if len(where) == 0 {
		return
	}
	b.WriteString(" WHERE ")
	for i, c := range where {
		if i > 0 {
			b.WriteString(" AND ")
		}
		b.WriteString(c.Column)
		if c.Value.IsNull() {
			b.WriteString(" IS NULL")
		} else {
			b.WriteString(" = ")
			b.WriteString(c.Value.String())
		}
	}
}

// SelectSpec describes a SELECT statement for rendering: projected
// columns (already qualified), a FROM table with alias, JOIN clauses,
// and equality/IS NULL conditions.
type SelectSpec struct {
	Columns  []string
	Distinct bool
	From     string
	FromAs   string
	Joins    []JoinSpec
	Where    []WhereSpec
	// Limit caps the result rows when positive (0 renders no LIMIT
	// clause). Compiled ASK probes set 1: one row decides the answer.
	Limit int
}

// JoinSpec is one "JOIN table alias ON left = right".
type JoinSpec struct {
	Table string
	As    string
	Left  string // qualified column
	Right string // qualified column
}

// WhereSpec is one condition: either column-vs-value (Value set) or
// column-vs-column (OtherColumn set).
type WhereSpec struct {
	Column      string
	Value       rdb.Value
	OtherColumn string
	// IsNull renders "column IS NULL" (Value ignored).
	IsNull bool
	// NotNull renders "column IS NOT NULL".
	NotNull bool
	// Param carries compiled-plan metadata: a non-zero value marks the
	// condition's Value as a parameter slot (1-based index into the
	// plan's bind sources) to be filled before rendering. The renderer
	// itself ignores it.
	Param int
}

// Select renders the specification as SQL text.
func Select(spec SelectSpec) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if spec.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(spec.Columns) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(spec.Columns, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(spec.From)
	if spec.FromAs != "" {
		b.WriteString(" ")
		b.WriteString(spec.FromAs)
	}
	for _, j := range spec.Joins {
		b.WriteString(" JOIN ")
		b.WriteString(j.Table)
		if j.As != "" {
			b.WriteString(" ")
			b.WriteString(j.As)
		}
		b.WriteString(" ON ")
		b.WriteString(j.Left)
		b.WriteString(" = ")
		b.WriteString(j.Right)
	}
	for i, w := range spec.Where {
		if i == 0 {
			b.WriteString(" WHERE ")
		} else {
			b.WriteString(" AND ")
		}
		b.WriteString(w.Column)
		switch {
		case w.IsNull:
			b.WriteString(" IS NULL")
		case w.NotNull:
			b.WriteString(" IS NOT NULL")
		case w.OtherColumn != "":
			b.WriteString(" = ")
			b.WriteString(w.OtherColumn)
		default:
			b.WriteString(" = ")
			b.WriteString(w.Value.String())
		}
	}
	if spec.Limit > 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(spec.Limit))
	}
	b.WriteString(";")
	return b.String()
}
