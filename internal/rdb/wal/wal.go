// Package wal implements the byte-level mechanics of the write-ahead
// log the rdb engine persists committed operations to: an append-only
// sequence of segment files holding checksummed, length-prefixed
// frames, plus the atomic-rename file writer the checkpoint protocol
// uses. The package knows nothing about what a frame contains — rdb
// owns the logical record encoding — which keeps the dependency
// one-way (rdb imports wal, never the reverse) and makes the log
// independently testable.
//
// Frame format (little endian):
//
//	uint32 payload length | uint32 CRC-32C of the payload | payload
//
// Segments are named wal-%016x.log and numbered monotonically. A
// crash can tear the final frame of the newest segment (a partial
// write that never fsynced); Replay tolerates exactly that — the torn
// tail is truncated away and replay stops — while a short or
// corrupted frame in any sealed (non-final) segment is reported as an
// error, because sealed segments were fsynced before the next one was
// opened.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	frameHeaderSize = 8
	segPrefix       = "wal-"
	segSuffix       = ".log"
	// maxFrameSize bounds a single payload; a larger length prefix is
	// treated as corruption (or a torn header) rather than allocated.
	maxFrameSize = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Bytes is the total size of all live segment files; Segments the
	// number of live segment files.
	Bytes    int64
	Segments uint64
	// Records counts frames appended through this Log instance;
	// Fsyncs counts Sync calls that reached the disk.
	Records uint64
	Fsyncs  uint64
}

// Log is an append-only segmented frame log rooted at one directory.
// All methods are safe for concurrent use.
type Log struct {
	dir string

	mu       sync.Mutex
	f        *os.File // current segment, nil until first write
	segIndex uint64   // index of the current (newest) segment
	segs     []uint64 // live segment indexes, ascending
	segSize  int64    // bytes in the current segment
	bytes    int64    // bytes across all live segments
	records  uint64
	fsyncs   uint64
	replayed bool
}

func segName(index uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, index, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	idx, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return idx, true
}

// Open prepares a log rooted at dir, creating the directory when
// missing. When the directory may hold segments from a prior run,
// Replay must be called before the first Append: replay validates the
// existing frames and truncates a torn tail so new frames are never
// appended after garbage.
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, segIndex: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	for _, e := range entries {
		idx, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, idx)
		l.bytes += info.Size()
	}
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i] < l.segs[j] })
	if n := len(l.segs); n > 0 {
		l.segIndex = l.segs[n-1]
		info, err := os.Stat(filepath.Join(dir, segName(l.segIndex)))
		if err != nil {
			return nil, err
		}
		l.segSize = info.Size()
	} else {
		l.segs = []uint64{1}
		l.replayed = true // a fresh directory has nothing to validate
	}
	return l, nil
}

// Dir returns the log's root directory.
func (l *Log) Dir() string { return l.dir }

// Replay streams every valid frame payload, in segment order then
// file order, through fn; fn returning an error aborts the replay. A
// torn final frame in the newest segment is truncated away and
// reported through torn; a short or corrupt frame anywhere else is an
// error. After a successful replay the log is ready for Append.
func (l *Log) Replay(fn func(payload []byte) error) (torn bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		return false, fmt.Errorf("wal: Replay after Append")
	}
	return l.replayLocked(fn)
}

// ReplayParallel is Replay with segment-level parallelism: sealed
// segments are read and CRC-verified concurrently (bounded by
// GOMAXPROCS workers), while fn still observes every payload in exact
// Replay order — segment order then file order — because application
// waits on the per-segment results in sequence. Torn-tail handling,
// the mid-log truncation error, and the returned flags are identical
// to Replay; with one segment it degrades to the sequential path.
// Memory is bounded by the in-flight window of decoded segments
// (worker count × segment size), released as each segment applies.
func (l *Log) ReplayParallel(fn func(payload []byte) error) (torn bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		return false, fmt.Errorf("wal: Replay after Append")
	}
	if len(l.segs) <= 1 || runtime.GOMAXPROCS(0) == 1 {
		// Nothing to overlap — one segment, or one CPU (where the
		// collect-then-apply buffering is pure overhead). Reuse the
		// sequential logic without re-entering the lock.
		return l.replayLocked(fn)
	}

	type segResult struct {
		payloads [][]byte
		valid    int64
		torn     bool
		err      error
	}
	results := make([]chan segResult, len(l.segs))
	for i := range results {
		results[i] = make(chan segResult, 1)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(l.segs) {
		workers = len(l.segs)
	}
	sem := make(chan struct{}, workers)
	for i, idx := range l.segs {
		i, idx := i, idx
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			var r segResult
			r.valid, r.torn, r.err = replaySegment(
				filepath.Join(l.dir, segName(idx)),
				func(payload []byte) error {
					// replaySegment hands out slices of its own read
					// buffer, so collecting without copying is safe.
					r.payloads = append(r.payloads, payload)
					return nil
				})
			results[i] <- r
		}()
	}

	for i, idx := range l.segs {
		last := i == len(l.segs)-1
		r := <-results[i]
		results[i] = nil // free the decoded segment once applied
		if r.err != nil {
			err = r.err
		}
		if err != nil {
			continue // drain remaining workers, report the first error
		}
		if r.torn && !last {
			err = fmt.Errorf("wal: segment %s is truncated mid-log", segName(idx))
			continue
		}
		for _, payload := range r.payloads {
			if ferr := fn(payload); ferr != nil {
				err = ferr
				break
			}
		}
		if err != nil {
			continue
		}
		if r.torn {
			path := filepath.Join(l.dir, segName(idx))
			info, statErr := os.Stat(path)
			if statErr != nil {
				err = statErr
				continue
			}
			if terr := os.Truncate(path, r.valid); terr != nil {
				err = fmt.Errorf("wal: truncating torn tail of %s: %w", segName(idx), terr)
				continue
			}
			l.bytes -= info.Size() - r.valid
			l.segSize = r.valid
			torn = true
		}
	}
	if err != nil {
		return false, err
	}
	l.replayed = true
	return torn, nil
}

// replayLocked is Replay's body, shared with ReplayParallel's
// single-segment fallback. Caller holds l.mu.
func (l *Log) replayLocked(fn func(payload []byte) error) (torn bool, err error) {
	for i, idx := range l.segs {
		last := i == len(l.segs)-1
		path := filepath.Join(l.dir, segName(idx))
		valid, segTorn, serr := replaySegment(path, fn)
		if serr != nil {
			return false, serr
		}
		if segTorn {
			if !last {
				return false, fmt.Errorf("wal: segment %s is truncated mid-log", segName(idx))
			}
			info, statErr := os.Stat(path)
			if statErr != nil {
				return false, statErr
			}
			if err := os.Truncate(path, valid); err != nil {
				return false, fmt.Errorf("wal: truncating torn tail of %s: %w", segName(idx), err)
			}
			l.bytes -= info.Size() - valid
			l.segSize = valid
			torn = true
		}
	}
	l.replayed = true
	return torn, nil
}

// replaySegment reads one segment file, returning the offset of the
// last valid frame end and whether the tail beyond it is torn. A
// missing segment file plays as empty (Rotate creates segments
// lazily).
func replaySegment(path string, fn func(payload []byte) error) (valid int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	off := int64(0)
	for int64(len(data))-off >= frameHeaderSize {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > maxFrameSize || int64(length) > int64(len(data))-off-frameHeaderSize {
			return off, true, nil
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+int64(length)]
		if crc32.Checksum(payload, castagnoli) != sum {
			return off, true, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, false, err
			}
		}
		off += frameHeaderSize + int64(length)
	}
	return off, off < int64(len(data)), nil
}

// ensureSegment opens the current segment for appending.
func (l *Log) ensureSegment() error {
	if l.f != nil {
		return nil
	}
	if !l.replayed {
		return fmt.Errorf("wal: Append before Replay on a non-empty directory")
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.segIndex)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	return syncDir(l.dir)
}

// Append writes one frame. The frame is buffered by the OS until the
// next Sync; callers must Sync before acknowledging the payload as
// durable.
func (l *Log) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.ensureSegment(); err != nil {
		return err
	}
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeaderSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: appending frame: %w", err)
	}
	l.segSize += int64(len(frame))
	l.bytes += int64(len(frame))
	l.records++
	return nil
}

// Sync flushes appended frames to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.fsyncs++
	return nil
}

// Rotate seals the current segment (fsync + close) and directs future
// appends to a fresh one, returning the new segment's index. The
// checkpoint protocol rotates first so every record after the
// checkpointed state lives in segments >= the returned index.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return 0, err
		}
		l.fsyncs++
		if err := l.f.Close(); err != nil {
			return 0, err
		}
		l.f = nil
	}
	l.segIndex++
	l.segs = append(l.segs, l.segIndex)
	l.segSize = 0
	l.replayed = true
	return l.segIndex, nil
}

// RemoveBefore deletes every sealed segment with an index below keep —
// safe once a checkpoint covering their records is durable.
func (l *Log) RemoveBefore(keep uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var kept []uint64
	for _, idx := range l.segs {
		if idx >= keep {
			kept = append(kept, idx)
			continue
		}
		path := filepath.Join(l.dir, segName(idx))
		info, err := os.Stat(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("wal: removing %s: %w", segName(idx), err)
		}
		l.bytes -= info.Size()
	}
	if kept == nil {
		kept = []uint64{l.segIndex}
	}
	l.segs = kept
	return syncDir(l.dir)
}

// Close fsyncs and closes the current segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.fsyncs++
	err := l.f.Close()
	l.f = nil
	return err
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Bytes:    l.bytes,
		Segments: uint64(len(l.segs)),
		Records:  l.records,
		Fsyncs:   l.fsyncs,
	}
}

// WriteFileAtomic durably replaces path with data: write to a
// temporary file in the same directory, fsync it, rename over the
// target, fsync the directory. A crash leaves either the old complete
// file or the new complete file, never a mixture.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so entry creations/renames are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errorsIsInval(err) {
		return err
	}
	return nil
}

// errorsIsInval reports the EINVAL some filesystems return for
// directory fsync (notably certain overlay/network mounts); treating
// it as success matches what other WAL implementations do.
func errorsIsInval(err error) bool {
	return strings.Contains(err.Error(), "invalid argument")
}
