// Command ontoupdate applies a SPARQL/Update request to a mapped
// database from the command line and prints the translated SQL plus
// the RDF feedback report — the offline equivalent of POSTing to
// ontoaccessd's /update route.
//
// Usage:
//
//	ontoupdate -request update.ru               # paper schema+mapping
//	ontoupdate -ddl s.sql -mapping m.ttl -request update.ru
//	echo 'INSERT DATA {...}' | ontoupdate       # request from stdin
//
// With -seed the paper's Listing 15 data set is loaded first; with
// -export the resulting RDF view is printed after the update.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ontoaccess/internal/core"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
	"ontoaccess/internal/workload"
)

func main() {
	ddlPath := flag.String("ddl", "", "SQL DDL file (default: paper schema)")
	mappingPath := flag.String("mapping", "", "R3M mapping file (default: paper mapping)")
	requestPath := flag.String("request", "", "SPARQL/Update request file (default: stdin)")
	seed := flag.Bool("seed", false, "preload the paper's Listing 15 data set")
	export := flag.Bool("export", false, "print the RDF view after the update")
	flag.Parse()

	m, err := buildMediator(*ddlPath, *mappingPath)
	if err != nil {
		log.Fatalf("ontoupdate: %v", err)
	}
	if *seed {
		if _, err := m.ExecuteString(workload.Listing15); err != nil {
			log.Fatalf("ontoupdate: seeding: %v", err)
		}
	}
	src, err := readRequest(*requestPath)
	if err != nil {
		log.Fatalf("ontoupdate: %v", err)
	}

	res, execErr := m.ExecuteString(src)
	if res != nil {
		if sql := res.SQL(); len(sql) > 0 {
			fmt.Println("-- translated SQL (execution order):")
			for _, s := range sql {
				fmt.Println(s)
			}
			fmt.Println()
		}
		if res.Report != nil {
			fmt.Println("# feedback report:")
			fmt.Print(res.Report.Turtle())
		}
	}
	if execErr != nil {
		os.Exit(1)
	}
	if *export {
		g, err := m.Export()
		if err != nil {
			log.Fatalf("ontoupdate: export: %v", err)
		}
		fmt.Println("\n# RDF view after update:")
		fmt.Print(turtle.Serialize(g, rdf.CommonPrefixes()))
	}
}

func buildMediator(ddlPath, mappingPath string) (*core.Mediator, error) {
	if ddlPath == "" && mappingPath == "" {
		return workload.NewMediator(core.Options{})
	}
	if ddlPath == "" || mappingPath == "" {
		return nil, fmt.Errorf("provide both -ddl and -mapping, or neither")
	}
	ddl, err := os.ReadFile(ddlPath)
	if err != nil {
		return nil, err
	}
	db := rdb.NewDatabase("ontoupdate")
	if _, err := sqlexec.Run(db, string(ddl)); err != nil {
		return nil, err
	}
	ttl, err := os.ReadFile(mappingPath)
	if err != nil {
		return nil, err
	}
	mapping, err := r3m.Load(string(ttl))
	if err != nil {
		return nil, err
	}
	return core.New(db, mapping, core.Options{})
}

func readRequest(path string) (string, error) {
	if path != "" {
		data, err := os.ReadFile(path)
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}
