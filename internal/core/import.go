package core

import (
	"ontoaccess/internal/rdf"
	"ontoaccess/internal/update"
)

// ImportGraph bulk-loads an RDF graph into the mapped database: the
// graph is treated as one big INSERT DATA operation, so Algorithm 1
// applies unchanged — triples are grouped by subject, validated
// against the mapping's constraints, translated to SQL, sorted along
// foreign-key dependencies and executed in a single transaction.
//
// This generalizes the member submission's LOAD operation to
// in-memory graphs (the paper's prototype deferred LOAD; the
// translation path is identical to INSERT DATA).
func (m *Mediator) ImportGraph(g *rdf.Graph) (*OpResult, error) {
	op := update.InsertData{Triples: g.Triples()}
	return m.ExecuteOp(op)
}
