// Package ntriples implements the line-based N-Triples exchange
// format. It is used by the dump/load tools and as the canonical
// diff-friendly representation when comparing the mediated RDF view
// of the database against the native triple store baseline.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"ontoaccess/internal/rdf"
	"ontoaccess/internal/turtle"
)

// Write serializes a graph to w, one triple per line, in canonical
// sorted order.
func Write(w io.Writer, g *rdf.Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples() {
		if _, err := fmt.Fprintln(bw, t.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Format returns the graph as an N-Triples string.
func Format(g *rdf.Graph) string {
	var b strings.Builder
	for _, t := range g.Triples() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Read parses an N-Triples document from r. N-Triples is a strict
// subset of Turtle, so parsing is delegated to the Turtle parser
// after a cheap validation that no Turtle-only directives appear
// (which would indicate the caller is feeding the wrong format).
func Read(r io.Reader) (*rdf.Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ParseString(string(data))
}

// ParseString parses an N-Triples document from a string.
func ParseString(src string) (*rdf.Graph, error) {
	for i, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "@") || strings.HasPrefix(trimmed, "PREFIX") || strings.HasPrefix(trimmed, "BASE") {
			return nil, fmt.Errorf("ntriples: line %d: directives are not allowed in N-Triples", i+1)
		}
	}
	g, _, err := turtle.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return g, nil
}
