package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentMediation fires requests from several goroutines; the
// mediator serializes them through the database's transaction lock,
// and every accepted request lands exactly once.
func TestConcurrentMediation(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i + 1
				req := fmt.Sprintf(`%s
INSERT DATA {
  ex:author%d foaf:family_name "L%d" ;
      foaf:mbox <mailto:a%d@example.org> ;
      ont:team ex:team5 .
}`, paperPrologue, id, id, id)
				if _, err := m.ExecuteString(req); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent request failed: %v", err)
	}
	if n, _ := m.DB().RowCount("author"); n != workers*perWorker {
		t.Errorf("author rows = %d, want %d", n, workers*perWorker)
	}
}

// dmlTable extracts the target table of a generated DML statement;
// ok is false for SELECTs.
func dmlTable(sql string) (string, bool) {
	f := strings.Fields(sql)
	switch {
	case len(f) >= 3 && f[0] == "INSERT" && f[1] == "INTO":
		return f[2], true
	case len(f) >= 2 && f[0] == "UPDATE":
		return f[1], true
	case len(f) >= 3 && f[0] == "DELETE" && f[1] == "FROM":
		return f[2], true
	}
	return "", false
}

// selectTables extracts the FROM and JOIN tables of a generated
// SELECT.
func selectTables(sql string) []string {
	f := strings.Fields(sql)
	var out []string
	for i := 0; i < len(f)-1; i++ {
		if f[i] == "FROM" || f[i] == "JOIN" {
			out = append(out, f[i+1])
		}
	}
	return out
}

// TestModifyWriteSetCoversSQL proves the lock-coverage contract of
// compiled MODIFY plans: every DML statement a compiled execution
// emits targets a table in the plan's declared write set, and the
// WHERE SELECT only reads tables in the declared read or write sets —
// so BeginWriteRead's lock set always covers the execution.
func TestModifyWriteSetCoversSQL(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	mustExec(t, m, paperPrologue+`INSERT DATA { ex:pubtype1 ont:type "article" . }`)
	mustExec(t, m, paperPrologue+`INSERT DATA { ex:pub1 dc:title "T1" ; ont:pubYear "2009" ; ont:pubType ex:pubtype1 . }`)
	cases := []string{
		paperPrologue + `
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:cov1@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`,
		paperPrologue + `
MODIFY
DELETE { }
INSERT { ?p dc:creator ex:author6 . }
WHERE { ?p ont:pubYear "2009" . }`,
		paperPrologue + `
MODIFY
DELETE { ?x foaf:title ?t . }
INSERT { ?x foaf:title "Prof" . }
WHERE { ?x ont:team ex:team5 ; foaf:title ?t . }`,
	}
	for i, req := range cases {
		plan, err := m.ModifyPlanFor(req)
		if err != nil {
			t.Fatalf("case %d did not compile: %v", i, err)
		}
		writes := map[string]bool{}
		for _, tb := range plan.Tables() {
			writes[tb] = true
		}
		reads := map[string]bool{}
		for _, tb := range plan.ReadTables() {
			reads[tb] = true
		}
		res := mustExec(t, m, req)
		if len(res.Ops) != 1 || res.Ops[0].Bindings == 0 {
			t.Fatalf("case %d did not bind: %+v", i, res.Ops)
		}
		for _, sql := range res.SQL() {
			if table, isDML := dmlTable(sql); isDML {
				if !writes[table] {
					t.Errorf("case %d: DML on %q outside declared write set %v:\n%s",
						i, table, plan.Tables(), sql)
				}
				continue
			}
			for _, table := range selectTables(sql) {
				if !reads[table] && !writes[table] {
					t.Errorf("case %d: SELECT reads %q outside declared sets (w=%v r=%v):\n%s",
						i, table, plan.Tables(), plan.ReadTables(), sql)
				}
			}
		}
	}
}

// TestConcurrentDisjointModifies runs compiled MODIFYs over disjoint
// table sets (team renames vs publication retitles) from concurrent
// workers, with queries interleaved — under -race this validates the
// per-table locking of the MODIFY plan path; the final values validate
// isolation.
func TestConcurrentDisjointModifies(t *testing.T) {
	m := paperMediator(t, Options{})
	const entities = 6
	const rounds = 20
	for i := 1; i <= entities; i++ {
		mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA { ex:team%d foaf:name "Team %d" ; ont:teamCode "C%d" . }`, paperPrologue, i, i, i))
		mustExec(t, m, fmt.Sprintf(`%s
INSERT DATA { ex:pub%d dc:title "Title %d" ; ont:pubYear "2009" . }`, paperPrologue, i, i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := 1; i <= entities; i++ {
				req := fmt.Sprintf(`%s
MODIFY
DELETE { ex:team%d foaf:name ?n . }
INSERT { ex:team%d foaf:name "Renamed %d-%d" . }
WHERE { ex:team%d foaf:name ?n . }`, paperPrologue, i, i, i, r, i)
				if _, err := m.ExecuteString(req); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for i := 1; i <= entities; i++ {
				req := fmt.Sprintf(`%s
MODIFY
DELETE { ex:pub%d dc:title ?t . }
INSERT { ex:pub%d dc:title "Retitled %d-%d" . }
WHERE { ex:pub%d dc:title ?t . }`, paperPrologue, i, i, i, r, i)
				if _, err := m.ExecuteString(req); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 60; i++ {
			if _, err := m.Query(paperPrologue + `SELECT ?n WHERE { ex:team1 foaf:name ?n . }`); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	<-readerDone
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	last := rounds - 1
	q, err := m.Query(paperPrologue + `SELECT ?n WHERE { ex:team3 foaf:name ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["n"].Value != fmt.Sprintf("Renamed 3-%d", last) {
		t.Errorf("team3 after modifies = %v", q.Solutions)
	}
	q, err = m.Query(paperPrologue + `SELECT ?t WHERE { ex:pub2 dc:title ?t . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["t"].Value != fmt.Sprintf("Retitled 2-%d", last) {
		t.Errorf("pub2 after modifies = %v", q.Solutions)
	}
	if s := m.ModifyPlanCacheStats(); s.Hits == 0 {
		t.Errorf("concurrent modifies never hit the plan cache: %+v", s)
	}
}

// TestConcurrentSameModifyString hammers one memoized MODIFY request
// from many goroutines: they share the cached bound plan (including
// the pre-parsed SELECT), so under -race this validates that bound
// plans are read-only at execution time.
func TestConcurrentSameModifyString(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	req := paperPrologue + `
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:same@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`
	mustExec(t, m, req) // prime the parse memo and both plan caches
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := m.ExecuteString(req); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	q, err := m.Query(paperPrologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["m"].Value != "mailto:same@example.org" {
		t.Errorf("mailbox = %v", q.Solutions)
	}
}

// TestConcurrentReadsDuringWrites interleaves queries with updates.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := fmt.Sprintf(`%s
INSERT DATA { ex:author%d foaf:family_name "L%d" . }`, paperPrologue, i, i)
			if _, err := m.ExecuteString(req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := m.Query(paperPrologue + `SELECT ?x WHERE { ?x foaf:family_name ?n . }`); err != nil {
			t.Fatalf("query during writes: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}
