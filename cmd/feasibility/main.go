// Command feasibility regenerates the paper's Section 7 feasibility
// study: the Table 1 mapping overview and every listing pair
// (SPARQL/Update request -> translated SQL), produced by the real
// translation pipeline.
//
// Usage:
//
//	feasibility                  # run every experiment
//	feasibility -experiment id   # run one (table1, listing9, ...)
//	feasibility -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"ontoaccess/internal/experiments"
)

func main() {
	id := flag.String("experiment", "", "run a single experiment by id")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if *id != "" {
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(2)
		}
		runOne(e)
		return
	}
	for i, e := range experiments.All() {
		if i > 0 {
			fmt.Printf("\n%s\n\n", ruler)
		}
		runOne(e)
	}
}

const ruler = "================================================================"

func runOne(e experiments.Experiment) {
	out, err := e.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.ID, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
