package rdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Database is a named collection of tables. All access happens
// through transactions (Begin / BeginWrite / View). Concurrency
// control is two-level: a catalog RWMutex guards the table registry
// (DDL takes it exclusively, transactions share it), and every table
// carries its own RWMutex. Begin write-locks every table (the
// serialized semantics of the paper's single-connection prototype);
// BeginWrite locks only a declared write set plus its foreign-key
// neighbourhood, so writers on disjoint tables proceed in parallel;
// View read-locks all tables, so readers never block each other.
type Database struct {
	name string

	// mu is the catalog lock: it protects tables, order and
	// referencedBy. Transactions hold it shared for their whole
	// lifetime, which keeps the table registry stable under them.
	mu     sync.RWMutex
	tables map[string]*table
	order  []string
	// referencedBy maps a table name to the foreign keys (in other
	// tables) that reference it, for RESTRICT checks on delete.
	referencedBy map[string][]fkBackRef
}

type fkBackRef struct {
	table  string
	column string
}

// NewDatabase returns an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		name:         name,
		tables:       make(map[string]*table),
		referencedBy: make(map[string][]fkBackRef),
	}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// CreateTable registers a new table. Referenced tables must either
// already exist or be created later but before any data flows (the
// check happens at first use), which permits mutually referencing
// schemas to be declared in any order.
func (db *Database) CreateTable(schema *TableSchema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(schema.Name)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("rdb: table %q already exists", schema.Name)
	}
	db.tables[key] = newTable(schema)
	db.order = append(db.order, key)
	for _, fk := range schema.ForeignKeys {
		ref := strings.ToLower(fk.RefTable)
		db.referencedBy[ref] = append(db.referencedBy[ref], fkBackRef{table: key, column: fk.Column})
	}
	return nil
}

// DropTable removes a table and its contents. It fails if other
// tables declare foreign keys against it.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		return &TableError{Table: name}
	}
	if refs := db.referencedBy[key]; len(refs) > 0 {
		return fmt.Errorf("rdb: cannot drop %q: referenced by %s.%s", name, refs[0].table, refs[0].column)
	}
	delete(db.tables, key)
	for i, n := range db.order {
		if n == key {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	// Remove back references this table held on others.
	for ref, list := range db.referencedBy {
		var kept []fkBackRef
		for _, b := range list {
			if b.table != key {
				kept = append(kept, b)
			}
		}
		if len(kept) == 0 {
			delete(db.referencedBy, ref)
		} else {
			db.referencedBy[ref] = kept
		}
	}
	return nil
}

// Schema returns the schema of the named table. Schemas are immutable
// after CreateTable, so the catalog lock suffices.
func (db *Database) Schema(name string) (*TableSchema, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, false
	}
	return t.schema, true
}

// TableNames returns all table names in creation order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.order))
	for i, key := range db.order {
		out[i] = db.tables[key].schema.Name
	}
	return out
}

// RowCount returns the number of rows in the named table.
func (db *Database) RowCount(name string) (int, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return 0, &TableError{Table: name}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), nil
}

// TotalRows returns the number of rows across all tables.
func (db *Database) TotalRows() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, key := range db.order {
		t := db.tables[key]
		t.mu.RLock()
		n += len(t.rows)
		t.mu.RUnlock()
	}
	return n
}

// TopologicalTableOrder returns the table names sorted so that every
// table appears after the tables it references through foreign keys
// (parents first). This is the order Algorithm 1 step five needs for
// sorting INSERT statements; the reverse order is used for DELETEs.
// Self-references are ignored; cycles between distinct tables yield
// an error since no valid insert order exists under immediate
// constraint checking.
func (db *Database) TopologicalTableOrder() ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.topologicalLocked()
}

// topologicalLocked computes the order with the catalog lock already
// held (used by open transactions, which hold it shared).
func (db *Database) topologicalLocked() ([]string, error) {
	return topoOrder(db.order, func(key string) []string {
		var deps []string
		for _, fk := range db.tables[key].schema.ForeignKeys {
			ref := strings.ToLower(fk.RefTable)
			if ref != key {
				deps = append(deps, ref)
			}
		}
		return deps
	}, func(key string) string { return db.tables[key].schema.Name })
}

// topoOrder is a deterministic Kahn topological sort; nodes is the
// creation order, deps gives a node's prerequisites.
func topoOrder(nodes []string, deps func(string) []string, display func(string) string) ([]string, error) {
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string)
	nodeSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	for _, n := range nodes {
		for _, d := range deps(n) {
			if !nodeSet[d] {
				continue // dangling FK target: tolerated at schema level
			}
			indeg[n]++
			dependents[d] = append(dependents[d], n)
		}
	}
	// Ready queue kept sorted for deterministic output.
	var ready []string
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, display(n))
		newReady := false
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
				newReady = true
			}
		}
		if newReady {
			sort.Strings(ready)
		}
	}
	if len(out) != len(nodes) {
		var cyclic []string
		for _, n := range nodes {
			if indeg[n] > 0 {
				cyclic = append(cyclic, display(n))
			}
		}
		return nil, fmt.Errorf("rdb: foreign key cycle among tables: %s", strings.Join(cyclic, ", "))
	}
	return out, nil
}

// getTable fetches a table by name; callers hold the catalog lock
// (transactions hold it shared for their lifetime).
func (db *Database) getTable(name string) (*table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, &TableError{Table: name}
	}
	return t, nil
}

// lockPlanEntry is one table in a transaction's lock set.
type lockPlanEntry struct {
	key   string
	t     *table
	write bool
}

// lockPlan computes the ordered lock set for a write transaction:
// exclusive locks on the write set, shared locks on the tables the
// write set's integrity checks read — foreign-key parents (existence
// checks on INSERT/UPDATE) and children (RESTRICT checks on DELETE
// and key updates) — plus any explicitly declared read tables (the
// tables a compiled MODIFY's WHERE SELECT scans, which need not be
// foreign-key neighbours of the write set). Callers hold the catalog
// lock. Unknown names are ignored; touching them later fails with a
// TableError as before.
func (db *Database) lockPlan(writeTables, readTables []string) []lockPlanEntry {
	mode := make(map[string]bool, len(writeTables)*2)
	for _, name := range writeTables {
		key := strings.ToLower(name)
		t, ok := db.tables[key]
		if !ok {
			continue
		}
		mode[key] = true
		// Record read entries for the FK neighbourhood without ever
		// downgrading an existing write entry.
		addRead := func(ref string) {
			if _, exists := db.tables[ref]; !exists {
				return
			}
			if _, present := mode[ref]; !present {
				mode[ref] = false
			}
		}
		for _, fk := range t.schema.ForeignKeys {
			addRead(strings.ToLower(fk.RefTable))
		}
		for _, back := range db.referencedBy[key] {
			addRead(back.table)
		}
	}
	for _, name := range readTables {
		key := strings.ToLower(name)
		if _, exists := db.tables[key]; !exists {
			continue
		}
		if _, present := mode[key]; !present {
			mode[key] = false
		}
	}
	keys := make([]string, 0, len(mode))
	for key := range mode {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	plan := make([]lockPlanEntry, len(keys))
	for i, key := range keys {
		plan[i] = lockPlanEntry{key: key, t: db.tables[key], write: mode[key]}
	}
	return plan
}

// allTablesPlan locks every table in the given mode; callers hold the
// catalog lock.
func (db *Database) allTablesPlan(write bool) []lockPlanEntry {
	keys := make([]string, len(db.order))
	copy(keys, db.order)
	sort.Strings(keys)
	plan := make([]lockPlanEntry, len(keys))
	for i, key := range keys {
		plan[i] = lockPlanEntry{key: key, t: db.tables[key], write: write}
	}
	return plan
}
