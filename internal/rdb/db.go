package rdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Database is a named collection of tables. All access happens
// through transactions (Begin / BeginWrite / View). Concurrency
// control is multi-versioned:
//
//   - Readers (View, Snapshot-backed queries) load the atomically
//     published database snapshot and evaluate against immutable
//     table versions. They take no locks, never block writers and are
//     never blocked by them.
//   - Writers use two-phase per-table locking for serializability: a
//     catalog RWMutex guards the table registry (DDL takes it
//     exclusively, write transactions share it), and every table
//     carries a writer RWMutex. Begin write-locks every table (the
//     serialized semantics of the paper's single-connection
//     prototype); BeginWrite locks only a declared write set plus its
//     foreign-key neighbourhood, so writers on disjoint tables
//     proceed in parallel. Writers mutate copy-on-write table
//     versions and commit by publishing a new snapshot, so rollback
//     is simply discarding the derived versions.
type Database struct {
	name string

	// mu is the catalog lock: it protects tables, order and
	// referencedBy. Write transactions hold it shared for their whole
	// lifetime, which keeps the table registry stable under them.
	mu     sync.RWMutex
	tables map[string]*table
	order  []string
	// referencedBy maps a table name to the foreign keys (in other
	// tables) that reference it, for RESTRICT checks on delete.
	referencedBy map[string][]fkBackRef

	// snap is the current committed snapshot of the main branch; pubMu
	// serializes publishes (concurrent committers with disjoint lock
	// sets, branch commits, merges, and branch ref changes).
	snap  atomic.Pointer[dbSnapshot]
	pubMu sync.Mutex

	// seq is the global commit sequence: every publish on any branch —
	// data commits, DDL, branch create/drop, merges — consumes the next
	// value, and the snapshot it produces carries that value as its
	// version. Main-branch versions therefore may skip numbers consumed
	// by branch-side publishes. Writers assign it under pubMu (or the
	// exclusive catalog lock for DDL, which excludes all publishers);
	// readers load it atomically.
	seq atomic.Uint64

	// hist retains recently published snapshots (bounded ring,
	// Options.HistoryDepth) for AS OF historical reads; see history.go.
	hist history

	// refMu guards refs, the named-branch table; see branch.go.
	refMu sync.RWMutex
	refs  map[string]*branch

	// shardBits / numShards fix the per-table lock-shard domain
	// (Options.ShardCount; see shard.go).
	shardBits uint
	numShards int

	// persist is the durability layer (persist.go); nil for an
	// ephemeral, memory-only database.
	persist *persister
}

type fkBackRef struct {
	table  string
	column string
}

func lowerName(name string) string { return strings.ToLower(name) }

// NewDatabase returns an empty database with default shard count and
// history retention; Open applies Options for custom configurations.
func NewDatabase(name string) *Database {
	db, err := newDatabaseWith(name, Options{})
	if err != nil {
		panic(err) // zero Options always validate
	}
	return db
}

// newDatabaseWith builds an empty database configured by o (shard
// count, history retention); the durability fields of o are handled by
// Open on top of it.
func newDatabaseWith(name string, o Options) (*Database, error) {
	shards := o.ShardCount
	if shards == 0 {
		shards = DefaultShardCount
	}
	if shards < 1 || shards > MaxShardCount || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("rdb: ShardCount must be a power of two in [1,%d], got %d",
			MaxShardCount, o.ShardCount)
	}
	db := &Database{
		name:         name,
		tables:       make(map[string]*table),
		referencedBy: make(map[string][]fkBackRef),
		refs:         make(map[string]*branch),
		numShards:    shards,
	}
	for 1<<db.shardBits < shards {
		db.shardBits++
	}
	db.hist.init(o.HistoryDepth)
	db.snap.Store(&dbSnapshot{
		branch:       MainBranch,
		tables:       make(map[string]*tableVersion),
		referencedBy: make(map[string][]fkBackRef),
	})
	return db, nil
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// snapshot returns the current committed snapshot.
func (db *Database) snapshot() *dbSnapshot { return db.snap.Load() }

// SnapshotVersion returns the monotonically increasing version number
// of the published snapshot — it advances on every commit that
// changed data and on every DDL statement. Tooling uses it to observe
// write progress without locking.
func (db *Database) SnapshotVersion() uint64 { return db.snapshot().version }

// publish installs new table versions as the next snapshot, composing
// one consistent dbSnapshot with a single dense commit seq out of
// possibly concurrent writers.
//
// Writers of whole-locked tables own their tables exclusively, so
// their derived versions install by pointer swap (the fast path: the
// base version they derived from is still the published one). Writers
// of shard-locked tables may race writers of *other* shards of the
// same table; the loser's base version has moved, so its logical
// change list is rebased — re-applied onto the latest published
// version under pubMu, with row ids remapped to their final values —
// before the snapshot is stored. Shard locks guarantee the change
// lists touch disjoint keys, which is what makes the replay
// conflict-free.
//
// On a durable database the commit record (carrying the final,
// post-rebase row ids) is appended and fsynced BEFORE the snapshot is
// stored (the write-ahead rule): a commit the caller acknowledges is
// on disk, and an fsync failure aborts the publish — the error
// propagates out of Commit and the snapshot never moves. Records are
// written under pubMu so their sequence numbers land in the log in
// order.
func (db *Database) publish(base *dbSnapshot, updated map[string]*tableVersion, changes []walChange) error {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	cur := db.snap.Load()
	ns := &dbSnapshot{
		version:      db.seq.Load() + 1,
		parent:       cur.version,
		branch:       MainBranch,
		tables:       make(map[string]*tableVersion, len(cur.tables)),
		order:        cur.order,
		referencedBy: cur.referencedBy,
	}
	for k, v := range cur.tables {
		ns.tables[k] = v
	}
	rebased := map[string]*tableVersion{}
	for k, v := range updated {
		if cur.tables[k] == base.tables[k] {
			v.owner = nil // freeze before sharing
			v.asOf = ns.version
			ns.tables[k] = v
		} else {
			rebased[k] = nil // re-derive from cur below
		}
	}
	if len(rebased) > 0 {
		final, err := rebaseChanges(cur, rebased, changes, ns.version)
		if err != nil {
			return err
		}
		changes = final
		for k, v := range rebased {
			ns.tables[k] = v
		}
	}
	if db.persist != nil {
		if err := db.persist.append(encodeCommitRecord(ns.version, changes)); err != nil {
			return err
		}
	}
	db.seq.Store(ns.version)
	db.snap.Store(ns)
	db.hist.record(ns)
	if db.persist != nil {
		db.persist.maybeCheckpoint(db)
	}
	return nil
}

// rebaseChanges re-applies a transaction's logical change list onto
// the latest published versions of the tables in rebased (keyed by
// lowercased name, values filled in by this call). Row ids assigned to
// the transaction's own inserts are provisional — they were drawn from
// a base version that has since moved — so they are remapped to the
// ids the latest version assigns, and the returned change list carries
// the final ids (what the WAL logs and replay regenerates). Changes on
// tables not being rebased pass through untouched.
func rebaseChanges(cur *dbSnapshot, rebased map[string]*tableVersion, changes []walChange, version uint64) ([]walChange, error) {
	o := newOwner() // the replay owns every node it copies
	remap := map[string]map[int64]int64{}
	final := make([]walChange, len(changes))
	for i, c := range changes {
		key := lowerName(c.table)
		if _, ok := rebased[key]; !ok {
			final[i] = c
			continue
		}
		v := rebased[key]
		if v == nil {
			base, ok := cur.tables[key]
			if !ok {
				return nil, fmt.Errorf("rdb: rebase: table %q vanished", c.table)
			}
			v = base.derive(o)
			v.asOf = version
		}
		id := c.id
		if m := remap[key]; m != nil {
			if nid, ok := m[id]; ok {
				id = nid
			}
		}
		switch c.op {
		case walInsert:
			nv, gotID := v.insert(c.row, o)
			v = nv
			if gotID != id {
				if remap[key] == nil {
					remap[key] = map[int64]int64{}
				}
				remap[key][id] = gotID
				id = gotID
			}
		case walUpdate:
			if _, ok := v.row(id); !ok {
				return nil, fmt.Errorf("rdb: rebase: update of missing row %d in %q", id, c.table)
			}
			v = v.update(id, c.row, o)
		case walDelete:
			if _, ok := v.row(id); !ok {
				return nil, fmt.Errorf("rdb: rebase: delete of missing row %d in %q", id, c.table)
			}
			v = v.remove(id, o)
		default:
			return nil, fmt.Errorf("rdb: rebase: unknown op %q", c.op)
		}
		final[i] = walChange{table: c.table, op: c.op, id: id, row: c.row}
		rebased[key] = v
	}
	for key, v := range rebased {
		if v == nil {
			return nil, fmt.Errorf("rdb: rebase: no changes captured for moved table %q", key)
		}
		v.owner = nil // freeze before sharing
	}
	return final, nil
}

// publishCatalog rebuilds the snapshot from the catalog after DDL.
// Callers hold the catalog lock exclusively, so no transactions are
// open and no commit can race the rebuild.
func (db *Database) publishCatalog() {
	db.pubMu.Lock()
	defer db.pubMu.Unlock()
	cur := db.snap.Load()
	ns := &dbSnapshot{
		version:      db.seq.Load() + 1,
		parent:       cur.version,
		branch:       MainBranch,
		tables:       make(map[string]*tableVersion, len(db.tables)),
		order:        append([]string(nil), db.order...),
		referencedBy: make(map[string][]fkBackRef, len(db.referencedBy)),
	}
	for key, t := range db.tables {
		if v, ok := cur.tables[key]; ok {
			ns.tables[key] = v
		} else {
			nv := newTableVersion(t.schema)
			nv.asOf = ns.version
			ns.tables[key] = nv
		}
	}
	for ref, list := range db.referencedBy {
		ns.referencedBy[ref] = append([]fkBackRef(nil), list...)
	}
	db.seq.Store(ns.version)
	db.snap.Store(ns)
	db.hist.record(ns)
}

// CreateTable registers a new table. Referenced tables must either
// already exist or be created later but before any data flows (the
// check happens at first use), which permits mutually referencing
// schemas to be declared in any order.
func (db *Database) CreateTable(schema *TableSchema) error {
	if err := schema.validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	key := lowerName(schema.Name)
	if _, exists := db.tables[key]; exists {
		return fmt.Errorf("rdb: table %q already exists", schema.Name)
	}
	// Log the DDL before mutating the registry. The exclusive catalog
	// lock keeps every publisher out (writers and branch operations
	// hold it shared), so the commit sequence cannot move between
	// assigning the record's sequence number and publishing.
	if db.persist != nil {
		if err := db.persist.append(encodeCreateRecord(db.seq.Load()+1, schema)); err != nil {
			return err
		}
	}
	db.tables[key] = newTable(schema, db.numShards)
	db.order = append(db.order, key)
	for _, fk := range schema.ForeignKeys {
		ref := lowerName(fk.RefTable)
		db.referencedBy[ref] = append(db.referencedBy[ref], fkBackRef{table: key, column: fk.Column})
	}
	db.publishCatalog()
	return nil
}

// DropTable removes a table and its contents. It fails if other
// tables declare foreign keys against it.
func (db *Database) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := lowerName(name)
	if _, ok := db.tables[key]; !ok {
		return &TableError{Table: name}
	}
	if refs := db.referencedBy[key]; len(refs) > 0 {
		return fmt.Errorf("rdb: cannot drop %q: referenced by %s.%s", name, refs[0].table, refs[0].column)
	}
	if db.persist != nil {
		if err := db.persist.append(encodeDropRecord(db.seq.Load()+1, name)); err != nil {
			return err
		}
	}
	delete(db.tables, key)
	for i, n := range db.order {
		if n == key {
			db.order = append(db.order[:i], db.order[i+1:]...)
			break
		}
	}
	// Remove back references this table held on others.
	for ref, list := range db.referencedBy {
		var kept []fkBackRef
		for _, b := range list {
			if b.table != key {
				kept = append(kept, b)
			}
		}
		if len(kept) == 0 {
			delete(db.referencedBy, ref)
		} else {
			db.referencedBy[ref] = kept
		}
	}
	db.publishCatalog()
	return nil
}

// Schema returns the schema of the named table. Schemas are immutable
// after CreateTable, so the snapshot lookup suffices.
func (db *Database) Schema(name string) (*TableSchema, bool) {
	v, ok := db.snapshot().table(name)
	if !ok {
		return nil, false
	}
	return v.schema, true
}

// TableNames returns all table names in creation order.
func (db *Database) TableNames() []string {
	s := db.snapshot()
	out := make([]string, len(s.order))
	for i, key := range s.order {
		out[i] = s.tables[key].schema.Name
	}
	return out
}

// RowCount returns the number of rows in the named table.
func (db *Database) RowCount(name string) (int, error) {
	v, ok := db.snapshot().table(name)
	if !ok {
		return 0, &TableError{Table: name}
	}
	return v.rows.len(), nil
}

// TotalRows returns the number of rows across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, v := range db.snapshot().tables {
		n += v.rows.len()
	}
	return n
}

// TopologicalTableOrder returns the table names sorted so that every
// table appears after the tables it references through foreign keys
// (parents first). This is the order Algorithm 1 step five needs for
// sorting INSERT statements; the reverse order is used for DELETEs.
// Self-references are ignored; cycles between distinct tables yield
// an error since no valid insert order exists under immediate
// constraint checking.
func (db *Database) TopologicalTableOrder() ([]string, error) {
	return db.snapshot().topological()
}

// topoOrder is a deterministic Kahn topological sort; nodes is the
// creation order, deps gives a node's prerequisites.
func topoOrder(nodes []string, deps func(string) []string, display func(string) string) ([]string, error) {
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string)
	nodeSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		nodeSet[n] = true
	}
	for _, n := range nodes {
		for _, d := range deps(n) {
			if !nodeSet[d] {
				continue // dangling FK target: tolerated at schema level
			}
			indeg[n]++
			dependents[d] = append(dependents[d], n)
		}
	}
	// Ready queue kept sorted for deterministic output.
	var ready []string
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var out []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		out = append(out, display(n))
		newReady := false
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				ready = append(ready, m)
				newReady = true
			}
		}
		if newReady {
			sort.Strings(ready)
		}
	}
	if len(out) != len(nodes) {
		var cyclic []string
		for _, n := range nodes {
			if indeg[n] > 0 {
				cyclic = append(cyclic, display(n))
			}
		}
		return nil, fmt.Errorf("rdb: foreign key cycle among tables: %s", strings.Join(cyclic, ", "))
	}
	return out, nil
}

// lockPlanEntry is one table in a transaction's lock set. write with a
// zero shard set is the whole-table exclusive lock; write with a
// non-zero set is the keyed mode (table lock shared + the set's shard
// locks exclusive); a read entry is the table lock shared + every
// shard lock shared.
type lockPlanEntry struct {
	key    string
	t      *table
	write  bool
	shards ShardSet
}

// keyed reports whether the entry holds only a shard subset of the
// table's write lock domain.
func (e *lockPlanEntry) keyed() bool { return e.write && e.shards != 0 }

// lockPlan computes the ordered lock set for a write transaction:
// exclusive locks on the write set, shared locks on the tables the
// write set's integrity checks read — foreign-key parents (existence
// checks on INSERT/UPDATE) and children (RESTRICT checks on DELETE
// and key updates) — plus any explicitly declared read tables (the
// tables a compiled MODIFY's WHERE SELECT scans, which need not be
// foreign-key neighbours of the write set). Callers hold the catalog
// lock. Unknown names are ignored; touching them later fails with a
// TableError as before.
func (db *Database) lockPlan(writeTables, readTables []string) []lockPlanEntry {
	writes := make([]TableShards, len(writeTables))
	for i, name := range writeTables {
		writes[i] = TableShards{Table: name}
	}
	return db.lockPlanKeyed(writes, readTables)
}

// lockPlanKeyed is lockPlan with per-table shard declarations: a write
// entry with a non-zero shard set is locked in keyed mode. Demanding
// the same table whole and keyed (or keyed twice) unions towards the
// whole-table lock, never narrows.
func (db *Database) lockPlanKeyed(writes []TableShards, readTables []string) []lockPlanEntry {
	type ent struct {
		write  bool
		keyed  bool
		shards ShardSet
	}
	mode := make(map[string]*ent, len(writes)*2)
	for _, w := range writes {
		key := lowerName(w.Table)
		t, ok := db.tables[key]
		if !ok {
			continue
		}
		e := mode[key]
		if e == nil {
			e = &ent{write: true, keyed: w.Shards != 0, shards: w.Shards}
			mode[key] = e
		} else {
			if !e.write {
				e.write = true
				e.keyed = w.Shards != 0
				e.shards = w.Shards
			} else if e.keyed && w.Shards != 0 {
				e.shards |= w.Shards
			} else {
				e.keyed, e.shards = false, 0 // whole-table wins
			}
		}
		// Record read entries for the FK neighbourhood without ever
		// downgrading an existing write entry.
		addRead := func(ref string) {
			if _, exists := db.tables[ref]; !exists {
				return
			}
			if _, present := mode[ref]; !present {
				mode[ref] = &ent{}
			}
		}
		for _, fk := range t.schema.ForeignKeys {
			addRead(lowerName(fk.RefTable))
		}
		for _, back := range db.referencedBy[key] {
			addRead(back.table)
		}
	}
	for _, name := range readTables {
		key := lowerName(name)
		if _, exists := db.tables[key]; !exists {
			continue
		}
		if _, present := mode[key]; !present {
			mode[key] = &ent{}
		}
	}
	keys := make([]string, 0, len(mode))
	for key := range mode {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	plan := make([]lockPlanEntry, len(keys))
	for i, key := range keys {
		e := mode[key]
		shards := e.shards
		if !e.keyed {
			shards = 0
		}
		plan[i] = lockPlanEntry{key: key, t: db.tables[key], write: e.write, shards: shards}
	}
	return plan
}

// allTablesPlan locks every table in the given mode; callers hold the
// catalog lock.
func (db *Database) allTablesPlan(write bool) []lockPlanEntry {
	keys := make([]string, len(db.order))
	copy(keys, db.order)
	sort.Strings(keys)
	plan := make([]lockPlanEntry, len(keys))
	for i, key := range keys {
		plan[i] = lockPlanEntry{key: key, t: db.tables[key], write: write}
	}
	return plan
}
