// Command benchjson converts `go test -bench` output into
// machine-readable JSON, one file per benchmark series, so CI can
// record the performance trajectory of every PR as artifacts
// (BENCH_E.json for the paper's feasibility artifacts, BENCH_B.json
// for the quantified claims; see EXPERIMENTS.md).
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' . | go run ./cmd/benchjson -dir .
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Result is one benchmark line in JSON form.
type Result struct {
	// Name is the full benchmark name including sub-benchmarks,
	// without the -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Cpus is the GOMAXPROCS the benchmark ran under (the stripped
	// name suffix) — a `-cpu 1,2,4,8` sweep yields one Result per
	// setting, together forming the scaling curve.
	Cpus int `json:"cpus,omitempty"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported time per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values (ops/sec, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	dir := flag.String("dir", ".", "directory to write BENCH_*.json into")
	flag.Parse()

	series := map[string][]Result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent in CI logs
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		key := seriesOf(r.Name)
		series[key] = append(series[key], r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	for key, results := range series {
		path := filepath.Join(*dir, "BENCH_"+key+".json")
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d benchmarks)\n", path, len(results))
	}
}

// seriesOf buckets a benchmark into its series: BenchmarkE* -> E,
// BenchmarkB* -> B, everything else -> MISC.
func seriesOf(name string) string {
	rest := strings.TrimPrefix(name, "Benchmark")
	if len(rest) > 0 && (rest[0] == 'E' || rest[0] == 'B') {
		if len(rest) > 1 && rest[1] >= '0' && rest[1] <= '9' {
			return rest[:1]
		}
	}
	return "MISC"
}

// parseLine decodes one `go test -bench` result line, e.g.
//
//	BenchmarkB8/CacheOn-8  59772  5773 ns/op  123 ops/sec  4614 B/op  47 allocs/op
func parseLine(line string) (Result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Result{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	name := f[0]
	cpus := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix when it is numeric.
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, cpus = name[:i], n
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Cpus: cpus, Iterations: iters}
	// The remainder alternates value/unit.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			n := int64(v)
			r.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			r.AllocsPerOp = &n
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
