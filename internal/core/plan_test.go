package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ontoaccess/internal/feedback"
	"ontoaccess/internal/r3m"
	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlexec"
	"ontoaccess/internal/update"
)

// twoMediators builds a plan-cached and a plan-less mediator over
// identical fresh databases.
func twoMediators(t *testing.T) (planned, unplanned *Mediator) {
	t.Helper()
	return paperMediator(t, Options{}), paperMediator(t, Options{DisablePlanCache: true})
}

// TestPlannedMatchesUnplannedSQL drives the same request sequence
// through the compiled and uncompiled paths and requires identical
// generated SQL, rows affected, and final row counts — the parity
// contract of the plan pipeline.
func TestPlannedMatchesUnplannedSQL(t *testing.T) {
	planned, unplanned := twoMediators(t)
	requests := []string{
		seedTeam5,
		listing9, // INSERT (Listing 10 shape)
		paperPrologue + `INSERT DATA { ex:author6 foaf:firstName "Matt" . }`, // INSERT-as-UPDATE
		paperPrologue + `INSERT DATA { ex:team4 foaf:name "DB" ; ont:teamCode "DBTG" . }`,
		// Full data set: multi-table insert with FK sorting and a link row.
		paperPrologue + `
INSERT DATA {
  ex:pub12 dc:title "Relational..." ;
      ont:pubYear "2009" ;
      ont:pubType ex:pubtype4 ;
      dc:publisher ex:publisher3 ;
      dc:creator ex:author6 .
  ex:pubtype4 ont:type "inproceedings" .
  ex:publisher3 ont:name "Springer" .
}`,
		// Partial delete (Listing 17/18 shape).
		paperPrologue + `DELETE DATA { ex:author6 foaf:mbox <mailto:hert@ifi.uzh.ch> . }`,
		// Link-row delete.
		paperPrologue + `DELETE DATA { ex:pub12 dc:creator ex:author6 . }`,
		// Row delete: cover all remaining data of team4.
		paperPrologue + `DELETE DATA { ex:team4 foaf:name "DB" ; ont:teamCode "DBTG" . }`,
	}
	for i, req := range requests {
		pres, perr := planned.ExecuteString(req)
		ures, uerr := unplanned.ExecuteString(req)
		if (perr == nil) != (uerr == nil) {
			t.Fatalf("request %d: planned err %v vs unplanned err %v", i, perr, uerr)
		}
		if !reflect.DeepEqual(pres.SQL(), ures.SQL()) {
			t.Errorf("request %d SQL diverges:\nplanned:   %v\nunplanned: %v", i, pres.SQL(), ures.SQL())
		}
		var prows, urows int
		for _, op := range pres.Ops {
			prows += op.RowsAffected
		}
		for _, op := range ures.Ops {
			urows += op.RowsAffected
		}
		if prows != urows {
			t.Errorf("request %d rows affected: planned %d vs unplanned %d", i, prows, urows)
		}
	}
	if p, u := planned.DB().TotalRows(), unplanned.DB().TotalRows(); p != u {
		t.Errorf("final row counts diverge: planned %d vs unplanned %d", p, u)
	}
	if s := planned.PlanCacheStats(); s.Misses == 0 {
		t.Errorf("plan cache unused: %+v", s)
	}
}

// TestPlannedMatchesUnplannedViolations checks that invalid requests
// produce the same violation feedback on both paths.
func TestPlannedMatchesUnplannedViolations(t *testing.T) {
	planned, unplanned := twoMediators(t)
	for _, m := range []*Mediator{planned, unplanned} {
		mustExec(t, m, seedTeam5)
		mustExec(t, m, listing9)
	}
	cases := []string{
		// Missing mandatory lastname on a fresh entity.
		paperPrologue + `INSERT DATA { ex:author7 foaf:firstName "Anon" . }`,
		// Unknown property for the class.
		paperPrologue + `INSERT DATA { ex:team5 foaf:firstName "nope" . }`,
		// FK to a missing team.
		paperPrologue + `INSERT DATA { ex:author8 foaf:family_name "L" ; ont:team ex:team99 . }`,
		// Deleting a triple that is not present.
		paperPrologue + `DELETE DATA { ex:author6 foaf:firstName "Wrong" . }`,
		// Deleting a mandatory property without covering the entity.
		paperPrologue + `DELETE DATA { ex:author6 foaf:family_name "Hert" . }`,
		// Deleting from a non-existent entity.
		paperPrologue + `DELETE DATA { ex:author99 foaf:firstName "X" . }`,
		// Type literal into an integer column.
		paperPrologue + `INSERT DATA { ex:team6 foaf:name "T" ; ont:teamCode "C" . }
INSERT DATA { ex:pub13 dc:title "T" ; ont:pubYear "not-a-year" . }`,
	}
	for i, req := range cases {
		_, perr := planned.ExecuteString(req)
		_, uerr := unplanned.ExecuteString(req)
		if perr == nil || uerr == nil {
			t.Fatalf("case %d: expected errors, got planned=%v unplanned=%v", i, perr, uerr)
		}
		var pv, uv *feedback.Violation
		if !errors.As(perr, &pv) || !errors.As(uerr, &uv) {
			t.Fatalf("case %d: non-violation errors: planned=%v unplanned=%v", i, perr, uerr)
		}
		if pv.Constraint != uv.Constraint || pv.Column != uv.Column || pv.Table != uv.Table {
			t.Errorf("case %d: violations diverge:\nplanned:   %+v\nunplanned: %+v", i, pv, uv)
		}
	}
	if p, u := planned.DB().TotalRows(), unplanned.DB().TotalRows(); p != u {
		t.Errorf("row counts diverge after rollbacks: planned %d vs unplanned %d", p, u)
	}
}

// TestPlanCacheHitMissEviction exercises the LRU behaviour directly.
func TestPlanCacheHitMissEviction(t *testing.T) {
	m := paperMediator(t, Options{PlanCacheSize: 2})
	mustExec(t, m, seedTeam5)
	shapes := []string{
		paperPrologue + `INSERT DATA { ex:author%d foaf:family_name "L%d" . }`,
		// Note: literals parameterize away, so this must differ from
		// seedTeam5 structurally, not just in values.
		paperPrologue + `INSERT DATA { ex:team%d foaf:name "T%d" . }`,
		paperPrologue + `INSERT DATA { ex:publisher%d ont:name "P%d" . }`,
	}
	id := 10
	build := func(shape string) string {
		id++
		n := 0
		for i := 0; i < len(shape)-1; i++ {
			if shape[i] == '%' && shape[i+1] == 'd' {
				n++
			}
		}
		args := make([]any, n)
		for i := range args {
			args[i] = id
		}
		return fmt.Sprintf(shape, args...)
	}
	base := m.PlanCacheStats() // seedTeam5 compiled one plan already
	// Three distinct shapes through a 2-entry cache: the third compile
	// evicts the oldest.
	for _, shape := range shapes {
		mustExec(t, m, build(shape))
	}
	s := m.PlanCacheStats()
	if got := s.Misses - base.Misses; got != 3 {
		t.Errorf("misses = %d, want 3 (stats %+v)", got, s)
	}
	if s.Evictions == 0 {
		t.Errorf("expected evictions with cache size 2: %+v", s)
	}
	if s.Size != 2 {
		t.Errorf("size = %d, want 2", s.Size)
	}
	// Re-running the most recent shape hits.
	before := m.PlanCacheStats().Hits
	mustExec(t, m, build(shapes[2]))
	if m.PlanCacheStats().Hits != before+1 {
		t.Errorf("expected a hit on the cached shape: %+v", m.PlanCacheStats())
	}
	// The evicted shape recompiles: a miss, not a failure.
	beforeMiss := m.PlanCacheStats().Misses
	mustExec(t, m, build(shapes[0]))
	if m.PlanCacheStats().Misses != beforeMiss+1 {
		t.Errorf("expected a miss on the evicted shape: %+v", m.PlanCacheStats())
	}
}

// TestPlanStaleRebinding builds a plan from a request with two
// distinct subjects and re-executes the shape with colliding
// subjects; the executor must detect the collision and fall back to
// the uncompiled path, which merges the group and reports the
// one-value-per-attribute conflict.
func TestPlanStaleRebinding(t *testing.T) {
	planned, unplanned := twoMediators(t)
	shape := `INSERT DATA { ex:team%d foaf:name "%s" . ex:team%d foaf:name "%s" . }`
	for _, m := range []*Mediator{planned, unplanned} {
		// Compile/execute with distinct subjects.
		mustExec(t, m, paperPrologue+fmt.Sprintf(shape, 1, "A", 2, "B"))
	}
	// Same shape, colliding subjects, conflicting values.
	collide := paperPrologue + fmt.Sprintf(shape, 3, "A", 3, "B")
	_, perr := planned.ExecuteString(collide)
	_, uerr := unplanned.ExecuteString(collide)
	if perr == nil || uerr == nil {
		t.Fatalf("conflicting merged group must fail: planned=%v unplanned=%v", perr, uerr)
	}
	var pv, uv *feedback.Violation
	if !errors.As(perr, &pv) || !errors.As(uerr, &uv) {
		t.Fatalf("expected violations, got planned=%v unplanned=%v", perr, uerr)
	}
	if pv.Constraint != uv.Constraint || pv.Column != uv.Column {
		t.Errorf("violations diverge: planned=%+v unplanned=%+v", pv, uv)
	}
	// Colliding subjects with AGREEING values are valid: the groups
	// merge into one entity on both paths.
	agree := paperPrologue + fmt.Sprintf(shape, 4, "Same", 4, "Same")
	pres := mustExec(t, planned, agree)
	ures := mustExec(t, unplanned, agree)
	if !reflect.DeepEqual(pres.SQL(), ures.SQL()) {
		t.Errorf("merged-group SQL diverges:\nplanned:   %v\nunplanned: %v", pres.SQL(), ures.SQL())
	}
}

// TestPlanIntrospection covers PlanFor/Explain/Tables/Slots.
func TestPlanIntrospection(t *testing.T) {
	m := paperMediator(t, Options{})
	p, err := m.PlanFor(listing9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != "INSERT DATA" {
		t.Errorf("kind = %q", p.Kind())
	}
	if got := p.Tables(); len(got) != 1 || got[0] != "author" {
		t.Errorf("tables = %v", got)
	}
	if p.Slots() == 0 {
		t.Error("expected parameter slots")
	}
	if p.Explain() == "" {
		t.Error("empty Explain")
	}
	// PlanFor covers data operations; MODIFY introspection goes
	// through ModifyPlanFor.
	if _, err := m.PlanFor(paperPrologue + `
MODIFY DELETE { ?x foaf:title "Mr" . } INSERT { } WHERE { ?x foaf:title "Mr" . }`); err == nil {
		t.Error("PlanFor must reject MODIFY (use ModifyPlanFor)")
	}
}

// TestModifyPlanIntrospection covers the compiled-MODIFY plan surface:
// BGP WHERE clauses (with comparison FILTERs) compile, declare their
// lock sets, and re-executions hit the cache; non-comparison FILTER
// and OPTIONAL WHERE clauses stay unplannable and fall back to the
// uncompiled path.
func TestModifyPlanIntrospection(t *testing.T) {
	m := paperMediator(t, Options{})
	bgp := paperPrologue + `
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:new1@example.org> . }
WHERE { ?x rdf:type foaf:Person ; foaf:mbox ?m . }`
	p, err := m.ModifyPlanFor(bgp)
	if err != nil {
		t.Fatalf("plannable MODIFY did not compile: %v", err)
	}
	if p.Kind() != "MODIFY" {
		t.Errorf("kind = %q", p.Kind())
	}
	if got := p.Tables(); len(got) != 1 || got[0] != "author" {
		t.Errorf("write set = %v, want [author]", got)
	}
	if got := p.ReadTables(); len(got) != 1 || got[0] != "author" {
		t.Errorf("read set = %v, want [author]", got)
	}
	if p.Slots() == 0 {
		t.Error("expected parameter slots (the mailbox literal digits)")
	}
	if p.Explain() == "" {
		t.Error("empty Explain")
	}
	// A link-table template extends the write set to the link table.
	lp, err := m.ModifyPlanFor(paperPrologue + `
MODIFY
DELETE { }
INSERT { ?p dc:creator ex:author1 . }
WHERE { ?p rdf:type foaf:Document . }`)
	if err != nil {
		t.Fatalf("link-template MODIFY did not compile: %v", err)
	}
	if got := lp.Tables(); !reflect.DeepEqual(got, []string{"publication", "publication_author"}) {
		t.Errorf("link write set = %v", got)
	}
	// Comparison FILTERs lower into the compiled WHERE SELECT; the
	// filter constant becomes a parameter slot like any pattern literal.
	fp, err := m.ModifyPlanFor(paperPrologue + `
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { }
WHERE { ?x foaf:family_name ?l ; foaf:mbox ?m . FILTER (?l = "Hert") }`)
	if err != nil {
		t.Fatalf("comparison-FILTER MODIFY did not compile: %v", err)
	}
	if fp.Slots() == 0 {
		t.Error("expected the FILTER constant to become a parameter slot")
	}
	// Unplannable WHERE shapes: non-comparison FILTER (STR) and
	// OPTIONAL fall back.
	for _, src := range []string{
		paperPrologue + `
MODIFY DELETE { ?x foaf:mbox ?m . } INSERT { }
WHERE { ?x foaf:mbox ?m . FILTER (STR(?m) = "mailto:x@example.org") }`,
		paperPrologue + `
MODIFY DELETE { ?x foaf:title "Mr" . } INSERT { }
WHERE { ?x foaf:family_name "Hert" . OPTIONAL { ?x foaf:title "Mr" . } }`,
	} {
		if _, err := m.ModifyPlanFor(src); err == nil {
			t.Errorf("non-BGP MODIFY must not compile:\n%s", src)
		}
	}
}

// TestModifyPlanCacheHit proves repeated MODIFY shapes execute through
// the cache — and that the compiled path is actually taken, not
// silently falling back.
func TestModifyPlanCacheHit(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	mustExec(t, m, listing9)
	g := 0
	modify := func(i int) string {
		g++
		return paperPrologue + fmt.Sprintf(`
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:new%d@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`, i)
	}
	base := m.ModifyPlanCacheStats()
	res := mustExec(t, m, modify(1))
	if len(res.Ops) != 1 || res.Ops[0].Bindings != 1 {
		t.Fatalf("first MODIFY: %+v", res.Ops)
	}
	s := m.ModifyPlanCacheStats()
	if s.Misses-base.Misses != 1 || s.Size == 0 {
		t.Fatalf("expected one compile: %+v", s)
	}
	for i := 2; i <= 5; i++ {
		mustExec(t, m, modify(i))
	}
	s = m.ModifyPlanCacheStats()
	if got := s.Hits - base.Hits; got < 4 {
		t.Errorf("modify plan cache hits = %d, want >= 4 (%+v)", got, s)
	}
	// The mailbox really rotated through all five modifies.
	q, err := m.Query(paperPrologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["m"].Value != "mailto:new5@example.org" {
		t.Errorf("mailbox after modifies = %v", q.Solutions)
	}
	// An unplannable MODIFY (FILTER) still executes via fallback.
	mustExec(t, m, paperPrologue+`
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:filtered@example.org> . }
WHERE { ?x foaf:mbox ?m . FILTER (STR(?m) = "mailto:new5@example.org") }`)
	q, err = m.Query(paperPrologue + `SELECT ?m WHERE { ex:author6 foaf:mbox ?m . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Solutions) != 1 || q.Solutions[0]["m"].Value != "mailto:filtered@example.org" {
		t.Errorf("mailbox after FILTER fallback = %v", q.Solutions)
	}
}

// TestModifyPlannedMatchesUnplanned drives MODIFY-heavy request
// sequences through the compiled and uncompiled paths and requires
// identical SQL (including the translated SELECT), bindings, rows
// affected, and final state — the MODIFY parity contract.
func TestModifyPlannedMatchesUnplanned(t *testing.T) {
	planned, unplanned := twoMediators(t)
	seed := []string{
		seedTeam5, listing9,
		paperPrologue + `INSERT DATA { ex:author7 foaf:family_name "Reif" ; foaf:firstName "Gerald" ; ont:team ex:team5 . }`,
		paperPrologue + `INSERT DATA { ex:pubtype1 ont:type "article" . }`,
		paperPrologue + `INSERT DATA { ex:pub1 dc:title "T1" ; ont:pubYear "2009" ; ont:pubType ex:pubtype1 ; dc:creator ex:author6 . }`,
	}
	requests := []string{
		// Listing 11 shape: rebind a mailbox through a typed WHERE.
		paperPrologue + `
MODIFY
DELETE { ?x foaf:mbox ?mbox . }
INSERT { ?x foaf:mbox <mailto:hert@example.com> . }
WHERE { ?x rdf:type foaf:Person ; foaf:firstName "Matthias" ; foaf:family_name "Hert" ; foaf:mbox ?mbox . }`,
		// Constant-subject BGP (the B3/E6 shape), repeated for re-binding.
		paperPrologue + `
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:new7@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`,
		paperPrologue + `
MODIFY
DELETE { ex:author6 foaf:mbox ?m . }
INSERT { ex:author6 foaf:mbox <mailto:new8@example.org> . }
WHERE { ex:author6 foaf:mbox ?m . }`,
		// Zero-solution WHERE: only the SELECT runs.
		paperPrologue + `
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { }
WHERE { ?x foaf:family_name "Nobody" ; foaf:mbox ?m . }`,
		// Multi-binding MODIFY over every team member.
		paperPrologue + `
MODIFY
DELETE { }
INSERT { ?x foaf:title "Dr" . }
WHERE { ?x ont:team ex:team5 . }`,
		// Link-table template: connect every 2009 publication to author7.
		paperPrologue + `
MODIFY
DELETE { }
INSERT { ?p dc:creator ex:author7 . }
WHERE { ?p ont:pubYear "2009" . }`,
		// Delete-only MODIFY removing the link again.
		paperPrologue + `
MODIFY
DELETE { ?p dc:creator ex:author7 . }
INSERT { }
WHERE { ?p dc:creator ex:author7 . }`,
		// Comparison-FILTER WHERE: lowers into the compiled SELECT on
		// the planned side, into the uncompiled translation on the
		// other — identical SQL either way.
		paperPrologue + `
MODIFY
DELETE { ?x foaf:mbox ?m . }
INSERT { ?x foaf:mbox <mailto:eq@example.org> . }
WHERE { ?x foaf:family_name ?l ; foaf:mbox ?m . FILTER (?l = "Hert") }`,
		// Range FILTER over the publication year.
		paperPrologue + `
MODIFY
DELETE { }
INSERT { ?p dc:creator ex:author7 . }
WHERE { ?p ont:pubYear ?y . FILTER (?y >= "2009") }`,
		// Non-comparison FILTER (STR): both paths use virtual-view
		// evaluation.
		paperPrologue + `
MODIFY
DELETE { ?x foaf:title "Dr" . }
INSERT { ?x foaf:title "Prof" . }
WHERE { ?x foaf:title "Dr" . FILTER (STR(?x) = "http://example.org/db/author7") }`,
	}
	for _, m := range []*Mediator{planned, unplanned} {
		for _, req := range seed {
			mustExec(t, m, req)
		}
	}
	for i, req := range requests {
		pres, perr := planned.ExecuteString(req)
		ures, uerr := unplanned.ExecuteString(req)
		if (perr == nil) != (uerr == nil) {
			t.Fatalf("request %d: planned err %v vs unplanned err %v", i, perr, uerr)
		}
		if !reflect.DeepEqual(pres.SQL(), ures.SQL()) {
			t.Errorf("request %d SQL diverges:\nplanned:   %v\nunplanned: %v", i, pres.SQL(), ures.SQL())
		}
		for j := range pres.Ops {
			if j < len(ures.Ops) {
				if pres.Ops[j].Bindings != ures.Ops[j].Bindings {
					t.Errorf("request %d bindings: planned %d vs unplanned %d",
						i, pres.Ops[j].Bindings, ures.Ops[j].Bindings)
				}
				if pres.Ops[j].RowsAffected != ures.Ops[j].RowsAffected {
					t.Errorf("request %d rows: planned %d vs unplanned %d",
						i, pres.Ops[j].RowsAffected, ures.Ops[j].RowsAffected)
				}
			}
		}
	}
	if p, u := planned.DB().TotalRows(), unplanned.DB().TotalRows(); p != u {
		t.Errorf("final row counts diverge: planned %d vs unplanned %d", p, u)
	}
	pg, err := planned.Export()
	if err != nil {
		t.Fatal(err)
	}
	ug, err := unplanned.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !pg.Equal(ug) {
		t.Errorf("exported views diverge.\nonly planned:\n%v\nonly unplanned:\n%v",
			pg.Diff(ug), ug.Diff(pg))
	}
	if s := planned.ModifyPlanCacheStats(); s.Hits == 0 {
		t.Errorf("modify plan cache never hit: %+v", s)
	}
}

// TestModifyPlanStaleSubjectCollision compiles a MODIFY shape whose
// WHERE joins two distinct constant subjects, then re-executes the
// shape with both subjects equal. The translator merges equal
// subjects into one node, so the compiled SELECT's structure no
// longer matches; binding must detect the collision and fall back to
// the uncompiled path, keeping the SQL byte-identical across paths.
func TestModifyPlanStaleSubjectCollision(t *testing.T) {
	planned, unplanned := twoMediators(t)
	for _, m := range []*Mediator{planned, unplanned} {
		mustExec(t, m, seedTeam5)
		mustExec(t, m, paperPrologue+`INSERT DATA { ex:author6 foaf:family_name "Hert" ; ont:team ex:team5 . }`)
		mustExec(t, m, paperPrologue+`INSERT DATA { ex:author7 foaf:family_name "Reif" ; ont:team ex:team5 . }`)
	}
	shape := paperPrologue + `
MODIFY
DELETE { }
INSERT { ex:author%d foaf:title "Dr%d" . }
WHERE { ex:author%d ont:team ?t . ex:author%d ont:team ?t . }`
	for i, pair := range [][2]int{{6, 7}, {6, 6}} {
		req := fmt.Sprintf(shape, pair[0], i, pair[0], pair[1])
		pres, perr := planned.ExecuteString(req)
		ures, uerr := unplanned.ExecuteString(req)
		if (perr == nil) != (uerr == nil) {
			t.Fatalf("pair %v: planned err %v vs unplanned err %v", pair, perr, uerr)
		}
		if !reflect.DeepEqual(pres.SQL(), ures.SQL()) {
			t.Errorf("pair %v SQL diverges:\nplanned:   %v\nunplanned: %v", pair, pres.SQL(), ures.SQL())
		}
	}
}

// TestShapeKeyForgeryRejected pins the shape key's injectivity: the
// lexer admits arbitrary bytes inside IRIs, so an IRI embedding the
// key separator bytes could forge another shape's cache key. Such
// terms must be unplannable (both data ops and MODIFY), never a key
// collision.
func TestShapeKeyForgeryRejected(t *testing.T) {
	legit := `MODIFY DELETE { } INSERT { <http://a/x> <http://u/v> <http://o/w> . }
WHERE { <http://a/x> <http://p/q> ?m . <http://s/t> <http://u/v> <http://o/w> . }`
	forged := "MODIFY DELETE { } INSERT { <http://a/x> <http://u/v> <http://o/w> . }\n" +
		"WHERE { <http://a/x\x1fI:http://p/q\x1fV:m\x1eI:http://s/t> <http://u/v> <http://o/w> . }"
	parseModify := func(src string) update.Modify {
		req, err := update.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		mo, ok := req.Ops[0].(update.Modify)
		if !ok {
			t.Fatalf("not a MODIFY: %T", req.Ops[0])
		}
		return mo
	}
	legitKey, _, _, legitOK := normalizeModify(parseModify(legit))
	if !legitOK {
		t.Fatal("legitimate MODIFY must normalize")
	}
	forgedKey, _, _, forgedOK := normalizeModify(parseModify(forged))
	if forgedOK {
		if forgedKey == legitKey {
			t.Fatal("forged MODIFY collides with the legitimate shape key")
		}
		t.Fatal("IRI with separator bytes must be unplannable")
	}
	// Same hole on the data-op side: forged subject and predicate.
	for _, src := range []string{
		"INSERT DATA { <http://a/x\x1fb> <http://u/v> \"v\" . }",
		"INSERT DATA { <http://a/x> <http://u/v\x1eb> \"v\" . }",
	} {
		req, err := update.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if _, _, _, _, ok := normalizeOp(req.Ops[0]); ok {
			t.Errorf("data op with separator bytes must be unplannable: %q", src)
		}
	}
}

// TestParseMemoReuse checks that repeated request strings skip
// re-parsing via the memo.
func TestParseMemoReuse(t *testing.T) {
	m := paperMediator(t, Options{})
	mustExec(t, m, seedTeam5)
	req := paperPrologue + `INSERT DATA { ex:author1 foaf:family_name "Hert" ; ont:team ex:team5 . }`
	mustExec(t, m, req)
	mustExec(t, m, req) // becomes INSERT-as-UPDATE, via the memo
	s := m.ParseCacheStats()
	if s.Hits == 0 {
		t.Errorf("parse memo never hit: %+v", s)
	}
	if n, _ := m.DB().RowCount("author"); n != 1 {
		t.Errorf("author rows = %d, want 1", n)
	}
}

// TestPlannedPKMappedAttributeParity covers mappings where the
// primary key column doubles as a foreign key carrying a property
// (the shape r3mgen emits for pk-FK columns): the triple-supplied
// value must not override the URI-derived key on INSERT, on either
// path.
func TestPlannedPKMappedAttributeParity(t *testing.T) {
	const ddl = `
CREATE TABLE base (id INTEGER PRIMARY KEY, name VARCHAR);
CREATE TABLE extra (id INTEGER PRIMARY KEY REFERENCES base, note VARCHAR);
`
	const mapping = `
@prefix r3m: <http://ontoaccess.org/r3m#> .
@prefix map: <http://example.org/m#> .
@prefix o: <http://example.org/o#> .
map:db a r3m:DatabaseMap ;
  r3m:uriPrefix "http://example.org/db/" ;
  r3m:hasTable map:base , map:extra .
map:base a r3m:TableMap ;
  r3m:hasTableName "base" ; r3m:mapsToClass o:Base ;
  r3m:uriPattern "base%%id%%" ;
  r3m:hasAttribute map:base_id , map:base_name .
map:base_id a r3m:AttributeMap ; r3m:hasAttributeName "id" ;
  r3m:hasConstraint [ a r3m:PrimaryKey ] .
map:base_name a r3m:AttributeMap ; r3m:hasAttributeName "name" ;
  r3m:mapsToDataProperty o:name .
map:extra a r3m:TableMap ;
  r3m:hasTableName "extra" ; r3m:mapsToClass o:Extra ;
  r3m:uriPattern "extra%%id%%" ;
  r3m:hasAttribute map:extra_id , map:extra_note .
map:extra_id a r3m:AttributeMap ; r3m:hasAttributeName "id" ;
  r3m:mapsToObjectProperty o:of ;
  r3m:hasConstraint [ a r3m:PrimaryKey ] , [ a r3m:ForeignKey ; r3m:references "base" ] .
map:extra_note a r3m:AttributeMap ; r3m:hasAttributeName "note" ;
  r3m:mapsToDataProperty o:note .
`
	build := func(opts Options) *Mediator {
		db := rdb.NewDatabase("pkfk")
		if _, err := sqlexec.Run(db, ddl); err != nil {
			t.Fatal(err)
		}
		mp, err := r3m.Load(mapping)
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(db, mp, opts)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	planned := build(Options{})
	unplanned := build(Options{DisablePlanCache: true})
	const pro = `PREFIX o: <http://example.org/o#>
PREFIX db: <http://example.org/db/>
`
	requests := []string{
		pro + `INSERT DATA { db:base5 o:name "B" . }`,
		// pk-mapped property: value agrees with the URI-derived key.
		pro + `INSERT DATA { db:extra5 o:of db:base5 ; o:note "n" . }`,
		// Re-run the shape so the compiled plan executes (cache hit).
		pro + `INSERT DATA { db:base6 o:name "C" . }`,
		pro + `INSERT DATA { db:extra6 o:of db:base6 ; o:note "m" . }`,
	}
	for i, req := range requests {
		pres, perr := planned.ExecuteString(req)
		ures, uerr := unplanned.ExecuteString(req)
		if (perr == nil) != (uerr == nil) {
			t.Fatalf("request %d: planned err %v vs unplanned err %v", i, perr, uerr)
		}
		if !reflect.DeepEqual(pres.SQL(), ures.SQL()) {
			t.Errorf("request %d SQL diverges:\nplanned:   %v\nunplanned: %v", i, pres.SQL(), ures.SQL())
		}
	}
	// The URI-derived key won: db:extra5 resolves to row id=5.
	for _, m := range []*Mediator{planned, unplanned} {
		res, err := m.Query(pro + `SELECT ?n WHERE { db:extra5 o:note ?n . }`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Solutions) != 1 || res.Solutions[0]["n"].Value != "n" {
			t.Errorf("extra5 lookup = %v", res.Solutions)
		}
	}
}
