// Feedback: the paper's Sections 3 and 8 motivate semantically rich
// error reporting when SPARQL/Update requests violate relational
// constraints. This example fires a series of invalid requests at the
// paper's use case and prints the RDF feedback report each produces.
package main

import (
	"fmt"
	"log"

	"ontoaccess/internal/core"
	"ontoaccess/internal/workload"
)

func main() {
	m, err := workload.NewMediator(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.ExecuteString(workload.Listing15); err != nil {
		log.Fatal(err)
	}

	bad := []struct {
		title   string
		request string
	}{
		{
			"Missing mandatory attribute (author.lastname is NOT NULL)",
			workload.Prologue + `INSERT DATA { ex:author9 foaf:firstName "Anon" . }`,
		},
		{
			"Dangling foreign key (team99 does not exist)",
			workload.Prologue + `INSERT DATA { ex:author9 foaf:family_name "X" ; ont:team ex:team99 . }`,
		},
		{
			"Unknown property for the class (teams have no firstName)",
			workload.Prologue + `INSERT DATA { ex:team5 foaf:firstName "nope" . }`,
		},
		{
			"Type violation (pubYear must be an integer)",
			workload.Prologue + `INSERT DATA { ex:pub13 dc:title "T" ; ont:pubYear "two thousand" . }`,
		},
		{
			"Removing a mandatory property without deleting the entity",
			workload.Prologue + `DELETE DATA { ex:author6 foaf:family_name "Hert" . }`,
		},
		{
			"Deleting an entity other rows still reference (RESTRICT)",
			workload.Prologue + `DELETE DATA { ex:team5 foaf:name "Software Engineering" ;
  ont:teamCode "SEAL" . }`,
		},
	}
	for _, tc := range bad {
		fmt.Println("==", tc.title)
		res, err := m.ExecuteString(tc.request)
		if err == nil {
			fmt.Println("   unexpectedly accepted!")
			continue
		}
		fmt.Println("   rejected:", err)
		if res != nil && res.Report != nil {
			fmt.Println("   feedback report (Turtle):")
			fmt.Println(indent(res.Report.Turtle()))
		}
		fmt.Println()
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "      " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
