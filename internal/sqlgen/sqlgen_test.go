package sqlgen

import (
	"testing"

	"ontoaccess/internal/rdb"
	"ontoaccess/internal/rdb/sqlparser"
)

func TestInsertRendering(t *testing.T) {
	// Shape of the paper's Listing 10.
	got := Insert("author",
		[]string{"id", "title", "firstname", "lastname", "email", "team"},
		[]rdb.Value{rdb.Int(6), rdb.String_("Mr"), rdb.String_("Matthias"),
			rdb.String_("Hert"), rdb.String_("hert@ifi.uzh.ch"), rdb.Int(5)})
	want := "INSERT INTO author (id, title, firstname, lastname, email, team) " +
		"VALUES (6, 'Mr', 'Matthias', 'Hert', 'hert@ifi.uzh.ch', 5);"
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
}

func TestUpdateRendering(t *testing.T) {
	// Shape of the paper's Listing 18.
	got := Update("author",
		[]Assign{{Column: "email", Value: rdb.Null}},
		[]Cond{{Column: "id", Value: rdb.Int(6)}, {Column: "email", Value: rdb.String_("hert@ifi.uzh.ch")}})
	want := "UPDATE author SET email = NULL WHERE id = 6 AND email = 'hert@ifi.uzh.ch';"
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
}

func TestDeleteRendering(t *testing.T) {
	got := Delete("author", []Cond{{Column: "id", Value: rdb.Int(6)}})
	if got != "DELETE FROM author WHERE id = 6;" {
		t.Errorf("got %s", got)
	}
	if Delete("author", nil) != "DELETE FROM author;" {
		t.Error("unconditioned delete")
	}
}

func TestNullCondRendersIsNull(t *testing.T) {
	got := Update("t", []Assign{{Column: "a", Value: rdb.Int(1)}},
		[]Cond{{Column: "b", Value: rdb.Null}})
	if got != "UPDATE t SET a = 1 WHERE b IS NULL;" {
		t.Errorf("got %s", got)
	}
}

func TestStringEscaping(t *testing.T) {
	got := Insert("t", []string{"a"}, []rdb.Value{rdb.String_("O'Brien")})
	if got != "INSERT INTO t (a) VALUES ('O''Brien');" {
		t.Errorf("got %s", got)
	}
}

func TestSelectRendering(t *testing.T) {
	got := Select(SelectSpec{
		Columns: []string{"a.id", "a.email"},
		From:    "author", FromAs: "a",
		Joins: []JoinSpec{{Table: "team", As: "t", Left: "a.team", Right: "t.id"}},
		Where: []WhereSpec{
			{Column: "a.firstname", Value: rdb.String_("Matthias")},
			{Column: "a.email", NotNull: true},
		},
		Limit: -1, Offset: -1,
	})
	want := "SELECT a.id, a.email FROM author a JOIN team t ON a.team = t.id " +
		"WHERE a.firstname = 'Matthias' AND a.email IS NOT NULL;"
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
}

func TestSelectDefaultsAndVariants(t *testing.T) {
	if got := Select(SelectSpec{From: "t", Limit: -1, Offset: -1}); got != "SELECT * FROM t;" {
		t.Errorf("got %s", got)
	}
	got := Select(SelectSpec{Distinct: true, Columns: []string{"x"}, From: "t",
		Where: []WhereSpec{{Column: "x", IsNull: true}, {Column: "y", OtherColumn: "z"}},
		Limit: -1, Offset: -1})
	if got != "SELECT DISTINCT x FROM t WHERE x IS NULL AND y = z;" {
		t.Errorf("got %s", got)
	}
}

// TestSelectModifierRendering covers the solution-modifier clauses the
// compiled query pipeline lowers: comparison operators, ORDER BY,
// LIMIT (including the real "LIMIT 0") and OFFSET.
func TestSelectModifierRendering(t *testing.T) {
	got := Select(SelectSpec{
		Columns: []string{"t0.id", "t0.year"},
		From:    "publication", FromAs: "t0",
		Where: []WhereSpec{
			{Column: "t0.year", Op: CmpGe, Value: rdb.Int(2008)},
			{Column: "t0.year", Op: CmpNe, Value: rdb.Int(2009)},
			{Column: "t0.title", Op: CmpLt, OtherColumn: "t0.id"},
		},
		OrderBy: []OrderSpec{{Column: "t0.year", Desc: true}, {Column: "t0.id"}},
		Limit:   5,
		Offset:  2,
	})
	want := "SELECT t0.id, t0.year FROM publication t0 WHERE t0.year >= 2008 " +
		"AND t0.year <> 2009 AND t0.title < t0.id ORDER BY t0.year DESC, t0.id LIMIT 5 OFFSET 2;"
	if got != want {
		t.Errorf("got  %s\nwant %s", got, want)
	}
	// The LIMIT 0 regression: zero must render a real clause — only the
	// -1 sentinel suppresses it.
	if got := Select(SelectSpec{From: "t", Limit: 0, Offset: -1}); got != "SELECT * FROM t LIMIT 0;" {
		t.Errorf("LIMIT 0 lost: %s", got)
	}
}

// Every generated statement must be parseable by the engine's SQL
// parser — the contract between translator and executor.
func TestGeneratedSQLParses(t *testing.T) {
	statements := []string{
		Insert("author", []string{"id", "lastname"}, []rdb.Value{rdb.Int(1), rdb.String_("Hert")}),
		Update("author", []Assign{{Column: "email", Value: rdb.Null}},
			[]Cond{{Column: "id", Value: rdb.Int(6)}}),
		Delete("publication_author", []Cond{{Column: "publication", Value: rdb.Int(12)},
			{Column: "author", Value: rdb.Int(6)}}),
		Select(SelectSpec{Columns: []string{"a.id"}, From: "author", FromAs: "a",
			Joins: []JoinSpec{{Table: "team", As: "t", Left: "a.team", Right: "t.id"}},
			Where: []WhereSpec{{Column: "t.code", Value: rdb.String_("SEAL")}},
			Limit: -1, Offset: -1}),
		Select(SelectSpec{Columns: []string{"t0.id"}, From: "publication", FromAs: "t0",
			Where:   []WhereSpec{{Column: "t0.year", Op: CmpGt, Value: rdb.Int(2005)}},
			OrderBy: []OrderSpec{{Column: "t0.year", Desc: true}},
			Limit:   0, Offset: 3}),
	}
	for _, sql := range statements {
		if _, err := sqlparser.ParseStatement(sql); err != nil {
			t.Errorf("generated SQL does not parse: %v\n%s", err, sql)
		}
	}
}
